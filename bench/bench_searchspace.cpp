/**
 * @file
 * §2.5.1 reproduction: the size of the CGRA mapping search space.
 *
 * The paper quotes 16!/2! ~ 1e13 placements for a 14-node DFG on a 4x4
 * CGRA at II=1 and 64!/4! ~ 1e87 for a 60-node DFG on an 8x8 CGRA, and
 * this harness recomputes those permutation counts (in log10) alongside
 * measured legal-action branching factors of the real environment.
 */

#include <cmath>

#include "bench_common.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "mapper/environment.hpp"

namespace {

using namespace mapzero;

/** log10 of P(pe_count, nodes) = pe! / (pe - nodes)! */
double
log10Placements(std::int32_t pes, std::int32_t nodes)
{
    double acc = 0.0;
    for (std::int32_t k = 0; k < nodes; ++k)
        acc += std::log10(static_cast<double>(pes - k));
    return acc;
}

} // namespace

int
main()
{
    bench::printBanner("§2.5.1: search-space size");

    // Paper's two flagship numbers.
    std::printf("14-node DFG on 4x4 (II=1): 10^%.1f placements "
                "(paper: ~1e13)\n",
                log10Placements(16, 14));
    std::printf("60-node DFG on 8x8 (II=1): 10^%.1f placements "
                "(paper: ~1e87)\n",
                log10Placements(64, 60));

    // Search-space growth per kernel at its MII on HReA.
    cgra::Architecture arch = cgra::Architecture::hrea();
    bench::printRow({"kernel", "V", "MII", "slots", "log10(space)"},
                    13);
    for (const auto &kernel : bench::evaluationKernels()) {
        const dfg::Dfg d = dfg::buildKernel(kernel);
        const std::int32_t mii = Compiler::minimumIi(d, arch);
        // At II>1 the action space per node is (PEs free in its slot);
        // an upper bound on the space is prod over nodes of PE count.
        const double log_space =
            static_cast<double>(d.nodeCount()) *
            std::log10(static_cast<double>(arch.peCount()));
        bench::printRow({kernel, std::to_string(d.nodeCount()),
                         std::to_string(mii),
                         std::to_string(mii * arch.peCount()),
                         bench::fmt("%.1f", log_space)},
                        13);
    }

    // Measured branching factor of the real environment on one episode.
    const dfg::Dfg d = dfg::buildKernel("mac");
    const std::int32_t mii = Compiler::minimumIi(d, arch);
    mapper::MapEnv env(d, arch, mii);
    double branching_sum = 0.0;
    std::int32_t steps = 0;
    while (!env.done() && env.legalActionCount() > 0) {
        branching_sum += env.legalActionCount();
        ++steps;
        // Always take the first legal action (just measuring widths).
        const auto mask = env.actionMask();
        for (cgra::PeId pe = 0;
             pe < static_cast<cgra::PeId>(mask.size()); ++pe) {
            if (mask[static_cast<std::size_t>(pe)]) {
                env.step(pe);
                break;
            }
        }
    }
    if (steps > 0)
        std::printf("\nmeasured mean branching factor (mac on HReA, "
                    "II=%d): %.1f legal PEs per decision\n",
                    mii, branching_sum / steps);

    // Navigating that space in parallel: the same SA restart portfolio
    // compiled once sequentially and once root-parallel across all
    // hardware threads. The wall times land in the
    // MAPZERO_BENCH_REPORT_DIR run report as bench.parallel.* gauges.
    const std::int32_t jobs =
        static_cast<std::int32_t>(resolveJobs(0));
    const std::int32_t restarts = std::max<std::int32_t>(2, jobs);
    const std::vector<std::string> timing_kernels = {"sum", "mac",
                                                     "conv2"};
    std::printf("\nparallel restart portfolio (SA, %d restarts/II, "
                "%d worker thread%s):\n",
                restarts, jobs, jobs == 1 ? "" : "s");
    bench::printRow({"kernel", "jobs=1 (s)",
                     bench::fmt("jobs=%.0f (s)", jobs), "speedup"},
                    14);
    double total_single = 0.0;
    double total_multi = 0.0;
    for (const auto &name : timing_kernels) {
        const dfg::Dfg d2 = dfg::buildKernel(name);
        Compiler compiler;
        CompileOptions options = bench::benchOptions();
        options.restartsPerIi = restarts;

        options.jobs = 1;
        Timer single_timer;
        compiler.compile(d2, arch, Method::Sa, options);
        const double single = single_timer.seconds();

        options.jobs = jobs;
        Timer multi_timer;
        compiler.compile(d2, arch, Method::Sa, options);
        const double multi = multi_timer.seconds();

        total_single += single;
        total_multi += multi;
        bench::printRow({name, bench::fmt("%.3f", single),
                         bench::fmt("%.3f", multi),
                         bench::fmt("%.2fx",
                                    multi > 0.0 ? single / multi : 0.0)},
                        14);
    }
    std::printf("portfolio wall time: %.3fs sequential, %.3fs with %d "
                "worker thread%s\n",
                total_single, total_multi, jobs, jobs == 1 ? "" : "s");
    metrics().gauge("bench.parallel.jobs").set(jobs);
    metrics().gauge("bench.parallel.seconds_jobs1").set(total_single);
    metrics().gauge("bench.parallel.seconds_jobsN").set(total_multi);
    metrics().gauge("bench.parallel.speedup")
        .set(total_multi > 0.0 ? total_single / total_multi : 0.0);
    return 0;
}
