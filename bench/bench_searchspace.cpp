/**
 * @file
 * §2.5.1 reproduction: the size of the CGRA mapping search space.
 *
 * The paper quotes 16!/2! ~ 1e13 placements for a 14-node DFG on a 4x4
 * CGRA at II=1 and 64!/4! ~ 1e87 for a 60-node DFG on an 8x8 CGRA, and
 * this harness recomputes those permutation counts (in log10) alongside
 * measured legal-action branching factors of the real environment.
 */

#include <algorithm>
#include <cmath>
#include <limits>
#include <string_view>

#include "bench_common.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "mapper/environment.hpp"

namespace {

using namespace mapzero;

/** log10 of P(pe_count, nodes) = pe! / (pe - nodes)! */
double
log10Placements(std::int32_t pes, std::int32_t nodes)
{
    double acc = 0.0;
    for (std::int32_t k = 0; k < nodes; ++k)
        acc += std::log10(static_cast<double>(pes - k));
    return acc;
}

} // namespace

int
main(int argc, char **argv)
{
    // --check: exit nonzero when request tracing costs more than its
    // DESIGN.md §17 budget (the CI gate).
    bool check = false;
    for (int i = 1; i < argc; ++i)
        if (std::string_view(argv[i]) == "--check")
            check = true;

    bench::printBanner("§2.5.1: search-space size");

    // Paper's two flagship numbers.
    std::printf("14-node DFG on 4x4 (II=1): 10^%.1f placements "
                "(paper: ~1e13)\n",
                log10Placements(16, 14));
    std::printf("60-node DFG on 8x8 (II=1): 10^%.1f placements "
                "(paper: ~1e87)\n",
                log10Placements(64, 60));

    // Search-space growth per kernel at its MII on HReA.
    cgra::Architecture arch = cgra::Architecture::hrea();
    bench::printRow({"kernel", "V", "MII", "slots", "log10(space)"},
                    13);
    for (const auto &kernel : bench::evaluationKernels()) {
        const dfg::Dfg d = dfg::buildKernel(kernel);
        const std::int32_t mii = Compiler::minimumIi(d, arch);
        // At II>1 the action space per node is (PEs free in its slot);
        // an upper bound on the space is prod over nodes of PE count.
        const double log_space =
            static_cast<double>(d.nodeCount()) *
            std::log10(static_cast<double>(arch.peCount()));
        bench::printRow({kernel, std::to_string(d.nodeCount()),
                         std::to_string(mii),
                         std::to_string(mii * arch.peCount()),
                         bench::fmt("%.1f", log_space)},
                        13);
    }

    // Measured branching factor of the real environment on one episode.
    const dfg::Dfg d = dfg::buildKernel("mac");
    const std::int32_t mii = Compiler::minimumIi(d, arch);
    mapper::MapEnv env(d, arch, mii);
    double branching_sum = 0.0;
    std::int32_t steps = 0;
    while (!env.done() && env.legalActionCount() > 0) {
        branching_sum += env.legalActionCount();
        ++steps;
        // Always take the first legal action (just measuring widths).
        const auto mask = env.actionMask();
        for (cgra::PeId pe = 0;
             pe < static_cast<cgra::PeId>(mask.size()); ++pe) {
            if (mask[static_cast<std::size_t>(pe)]) {
                env.step(pe);
                break;
            }
        }
    }
    if (steps > 0)
        std::printf("\nmeasured mean branching factor (mac on HReA, "
                    "II=%d): %.1f legal PEs per decision\n",
                    mii, branching_sum / steps);

    // Navigating that space in parallel: the same SA restart portfolio
    // compiled once sequentially and once root-parallel across all
    // hardware threads. The wall times land in the
    // MAPZERO_BENCH_REPORT_DIR run report as bench.parallel.* gauges.
    const std::int32_t jobs =
        static_cast<std::int32_t>(resolveJobs(0));
    const std::int32_t restarts = std::max<std::int32_t>(2, jobs);
    const std::vector<std::string> timing_kernels = {"sum", "mac",
                                                     "conv2"};
    std::printf("\nparallel restart portfolio (SA, %d restarts/II, "
                "%d worker thread%s):\n",
                restarts, jobs, jobs == 1 ? "" : "s");
    bench::printRow({"kernel", "jobs=1 (s)",
                     bench::fmt("jobs=%.0f (s)", jobs), "speedup"},
                    14);
    double total_single = 0.0;
    double total_multi = 0.0;
    for (const auto &name : timing_kernels) {
        const dfg::Dfg d2 = dfg::buildKernel(name);
        Compiler compiler;
        CompileOptions options = bench::benchOptions();
        options.restartsPerIi = restarts;

        options.jobs = 1;
        Timer single_timer;
        compiler.compile(d2, arch, Method::Sa, options);
        const double single = single_timer.seconds();

        options.jobs = jobs;
        Timer multi_timer;
        compiler.compile(d2, arch, Method::Sa, options);
        const double multi = multi_timer.seconds();

        total_single += single;
        total_multi += multi;
        bench::printRow({name, bench::fmt("%.3f", single),
                         bench::fmt("%.3f", multi),
                         bench::fmt("%.2fx",
                                    multi > 0.0 ? single / multi : 0.0)},
                        14);
    }
    std::printf("portfolio wall time: %.3fs sequential, %.3fs with %d "
                "worker thread%s\n",
                total_single, total_multi, jobs, jobs == 1 ? "" : "s");
    metrics().gauge("bench.parallel.jobs").set(jobs);
    metrics().gauge("bench.parallel.seconds_jobs1").set(total_single);
    metrics().gauge("bench.parallel.seconds_jobsN").set(total_multi);
    metrics().gauge("bench.parallel.speedup")
        .set(total_multi > 0.0 ? total_single / total_multi : 0.0);

    // Request-tracing overhead: the same SA portfolio with and without
    // a bound TraceContext, alternating so thermal/cache drift hits
    // both modes equally; min-of-rounds suppresses scheduling noise.
    constexpr int kRounds = 5;
    // Enough compiles per timed round that each measurement is tens
    // of milliseconds - a single SA compile of these kernels is too
    // fast to resolve a 2% ratio against timer noise.
    constexpr int kCompilesPerRound = 50;
    constexpr double kOverheadBudget = 0.02; // DESIGN.md §17
    const dfg::Dfg traced_kernel = dfg::buildKernel("conv2");
    double untraced_min = std::numeric_limits<double>::infinity();
    double traced_min = std::numeric_limits<double>::infinity();
    for (int round = 0; round < kRounds; ++round) {
        for (int traced = 0; traced < 2; ++traced) {
            Compiler compiler;
            CompileOptions options = bench::benchOptions();
            options.restartsPerIi = 4;
            options.jobs = 1;
            TraceContext context("bench-" + std::to_string(round));
            if (traced == 0) {
                Timer timer;
                for (int i = 0; i < kCompilesPerRound; ++i)
                    compiler.compile(traced_kernel, arch, Method::Sa,
                                     options);
                untraced_min =
                    std::min(untraced_min, timer.seconds());
            } else {
                options.trace = &context;
                TraceBinding bind(&context);
                Timer timer;
                TraceScope stage("compile");
                for (int i = 0; i < kCompilesPerRound; ++i)
                    compiler.compile(traced_kernel, arch, Method::Sa,
                                     options);
                traced_min = std::min(traced_min, timer.seconds());
            }
        }
    }
    const double overhead =
        untraced_min > 0.0 ? traced_min / untraced_min - 1.0 : 0.0;
    std::printf("\nrequest-tracing overhead (conv2 SA portfolio, min "
                "of %d alternating rounds):\n"
                "  untraced %.4fs, traced %.4fs -> %+.2f%% (budget "
                "%.0f%%)\n",
                kRounds, untraced_min, traced_min, overhead * 100.0,
                kOverheadBudget * 100.0);
    metrics().gauge("bench.trace.seconds_untraced").set(untraced_min);
    metrics().gauge("bench.trace.seconds_traced").set(traced_min);
    metrics().gauge("bench.trace.overhead_pct").set(overhead * 100.0);
    // 10ms absolute slack keeps sub-second runs from failing on
    // scheduler noise alone.
    if (check &&
        traced_min > untraced_min * (1.0 + kOverheadBudget) + 0.010) {
        std::fprintf(stderr,
                     "FAIL: tracing overhead %.2f%% exceeds the "
                     "%.0f%% budget\n",
                     overhead * 100.0, kOverheadBudget * 100.0);
        return 1;
    }
    return 0;
}
