/**
 * @file
 * Fig. 10 reproduction: search effort on HyCube - backtracking
 * operations for MapZero versus annealing steps for CGRA-ME(SA) and
 * LISA (the paper counts annealings for the SA-family mappers; each
 * annealing step performs 100 random perturbations).
 *
 * Paper shape: MapZero needs orders of magnitude fewer search operations
 * than the annealing-based baselines.
 */

#include "bench_common.hpp"

namespace {

using namespace mapzero;

} // namespace

int
main()
{
    bench::printBanner(
        "Fig. 10: backtracks (MapZero) vs annealings (SA/LISA), HyCube");

    cgra::Architecture arch = cgra::Architecture::hycube();
    Compiler compiler = bench::compilerFor(arch);

    bench::printRow({"kernel", "MapZero", "SA", "LISA"}, 13);
    for (const auto &kernel : bench::evaluationKernels()) {
        const dfg::Dfg d = dfg::buildKernel(kernel);
        std::vector<std::string> row{kernel};
        for (Method m : {Method::MapZero, Method::Sa, Method::Lisa}) {
            const CompileResult r =
                compiler.compile(d, arch, m, bench::benchOptions());
            row.push_back(std::to_string(r.searchOps) +
                          (r.success ? "" : "(f)"));
        }
        bench::printRow(row, 13);
    }
    std::printf("(f) = failed within the time limit; annealing steps "
                "each cover 100 perturbations\n");
    return 0;
}
