/**
 * @file
 * Table 1 reproduction: the target CGRA x interconnect matrix.
 *
 * Prints each preset fabric with its active interconnect styles, size,
 * and derived properties (link count, memory-issue capacity, symmetry
 * group size used for data augmentation).
 */

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "cgra/symmetry.hpp"

namespace {

using namespace mapzero;

std::string
yesNo(bool b)
{
    return b ? "yes" : "-";
}

void
printTable1()
{
    bench::printBanner("Table 1: target CGRAs used in the evaluation");
    bench::printRow({"fabric", "size", "mesh", "1hop", "diag", "torus",
                     "xbar", "links", "memCap", "syms"},
                    9);
    for (const auto &arch : cgra::Architecture::table1Presets()) {
        bench::printRow(
            {arch.name(),
             std::to_string(arch.rows()) + "x" +
                 std::to_string(arch.cols()),
             yesNo(arch.hasLink(cgra::Interconnect::Mesh)),
             yesNo(arch.hasLink(cgra::Interconnect::OneHop)),
             yesNo(arch.hasLink(cgra::Interconnect::Diagonal)),
             yesNo(arch.hasLink(cgra::Interconnect::Toroidal)),
             yesNo(arch.hasLink(cgra::Interconnect::Crossbar)),
             std::to_string(arch.linkList().size()),
             std::to_string(arch.memoryIssueCapacity()),
             std::to_string(cgra::gridSymmetries(arch).size())},
            9);
    }
}

void
BM_BuildArchitecture(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(cgra::Architecture::baseline16());
    }
}
BENCHMARK(BM_BuildArchitecture);

void
BM_SymmetryAnalysis(benchmark::State &state)
{
    const auto arch = cgra::Architecture::hrea();
    for (auto _ : state) {
        benchmark::DoNotOptimize(cgra::gridSymmetries(arch));
    }
}
BENCHMARK(BM_SymmetryAnalysis);

} // namespace

int
main(int argc, char **argv)
{
    printTable1();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
