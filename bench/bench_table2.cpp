/**
 * @file
 * Table 2 reproduction: statistics of the benchmark DFGs.
 *
 * Prints the vertex/edge counts of every generated kernel next to the
 * numbers the paper reports, plus derived statistics (memory ops,
 * RecMII) the mappers rely on. Also runs a google-benchmark timing of
 * kernel construction so regeneration cost is tracked.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace mapzero;

void
printTable2()
{
    bench::printBanner("Table 2: statistics of the benchmark DFGs");
    bench::printRow({"kernel", "V(paper)", "V(ours)", "E(paper)",
                     "E(ours)", "memOps", "RecMII"},
                    11);
    for (const auto &info : dfg::kernelTable()) {
        const dfg::Dfg d = dfg::buildKernel(info.name);
        bench::printRow({info.name, std::to_string(info.vertices),
                         std::to_string(d.nodeCount()),
                         std::to_string(info.edges),
                         std::to_string(d.edgeCount()),
                         std::to_string(d.memoryOpCount()),
                         std::to_string(dfg::recMii(d))},
                        11);
    }
}

void
BM_BuildKernel(benchmark::State &state, const std::string &name)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(dfg::buildKernel(name));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    printTable2();
    for (const auto &info : mapzero::dfg::kernelTable()) {
        benchmark::RegisterBenchmark(
            ("BM_BuildKernel/" + info.name).c_str(),
            [name = info.name](benchmark::State &state) {
                BM_BuildKernel(state, name);
            });
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
