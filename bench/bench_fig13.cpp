/**
 * @file
 * Fig. 13 reproduction: scalability - compilation time for unrolled
 * kernels on the 8x8 and 16x16 baseline CGRAs.
 *
 * Paper shape: MapZero finds MII mappings on both fabrics while ILP and
 * the SA-family baselines fail or time out as the search space explodes
 * (a 16x16 fabric and a multi-hundred-node DFG).
 *
 * Scaled default: the two smaller unrolled kernels per fabric within the
 * bench time budget; set MAPZERO_BENCH_FULL=1 for all five.
 */

#include "bench_common.hpp"

namespace {

using namespace mapzero;

std::vector<std::string>
scalabilityKernels()
{
    if (std::getenv("MAPZERO_BENCH_FULL") != nullptr)
        return dfg::unrolledKernelNames();
    return {"filter_u", "stencil_u"};
}

void
runArch(const cgra::Architecture &arch)
{
    std::printf("\n--- %s ---\n", arch.name().c_str());
    Compiler compiler = bench::compilerFor(arch);
    bench::printRow({"kernel", "V", "MII", "method", "II", "seconds",
                     "status"},
                    11);
    for (const auto &kernel : scalabilityKernels()) {
        const dfg::Dfg d = dfg::buildKernel(kernel);
        const std::int32_t mii = Compiler::minimumIi(d, arch);
        for (Method m : {Method::Ilp, Method::Sa, Method::Lisa,
                         Method::MapZero}) {
            const CompileResult r = compiler.compile(
                d, arch, m, bench::benchOptions());
            bench::printRow(
                {kernel, std::to_string(d.nodeCount()),
                 std::to_string(mii), methodName(m),
                 r.success ? std::to_string(r.ii) : "-",
                 bench::fmt("%.3f", r.seconds),
                 r.success ? "ok" : (r.timedOut ? "timeout" : "fail")},
                11);
        }
    }
}

} // namespace

int
main()
{
    bench::printBanner(
        "Fig. 13: scalability to 8x8 and 16x16 baseline CGRAs");
    runArch(cgra::Architecture::baseline8());
    runArch(cgra::Architecture::baseline16());
    return 0;
}
