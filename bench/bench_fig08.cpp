/**
 * @file
 * Fig. 8 reproduction: mapping quality as the II ratio relative to MII
 * for CGRA-ME(ILP), CGRA-ME(SA), LISA, and MapZero on (a) HReA,
 * (b) MorphoSys, (c) ADRES, and (d) HyCube.
 *
 * The paper's headline shape: MapZero always reaches the MII (ratio 1.0)
 * while SA/LISA time out or miss on the tighter fabrics, and LISA is
 * only competitive on the crossbar-based HyCube. A failed mapping is
 * reported as ratio 0 (the paper's convention).
 */

#include "bench_common.hpp"

namespace {

using namespace mapzero;

void
runArch(const cgra::Architecture &arch,
        const std::vector<Method> &methods)
{
    std::printf("\n--- %s ---\n", arch.name().c_str());
    std::vector<std::string> header{"kernel", "MII"};
    for (Method m : methods)
        header.push_back(methodName(m));
    bench::printRow(header, 13);

    std::map<std::string, std::vector<double>> ratios;
    Compiler compiler = bench::compilerFor(arch);
    for (const auto &kernel : bench::evaluationKernels()) {
        const dfg::Dfg d = dfg::buildKernel(kernel);
        std::vector<std::string> row{
            kernel, std::to_string(Compiler::minimumIi(d, arch))};
        for (Method m : methods) {
            const CompileResult r =
                compiler.compile(d, arch, m, bench::benchOptions());
            ratios[methodName(m)].push_back(r.iiRatio());
            row.push_back(bench::fmt("%.2f", r.iiRatio()));
        }
        bench::printRow(row, 13);
    }

    std::vector<std::string> summary{"success", ""};
    for (Method m : methods) {
        const auto &v = ratios[methodName(m)];
        const auto ok = std::count_if(v.begin(), v.end(),
                                      [](double x) { return x > 0.0; });
        summary.push_back(std::to_string(ok) + "/" +
                          std::to_string(v.size()));
    }
    bench::printRow(summary, 13);
}

} // namespace

int
main()
{
    bench::printBanner(
        "Fig. 8: II ratio relative to MII (0 = mapping failed)");

    const std::vector<Method> all{Method::Ilp, Method::Sa, Method::Lisa,
                                  Method::MapZero};
    runArch(cgra::Architecture::hrea(), all);       // Fig. 8(a)
    runArch(cgra::Architecture::morphosys(), all);  // Fig. 8(b)
    runArch(cgra::Architecture::adres(), all);      // Fig. 8(c)
    // Fig. 8(d): LISA vs MapZero on HyCube (its home turf).
    runArch(cgra::Architecture::hycube(),
            {Method::Lisa, Method::MapZero});
    return 0;
}
