/**
 * @file
 * Fig. 11 reproduction: compilation-time comparison of CGRA-ME(ILP),
 * CGRA-ME(SA), LISA, and MapZero on (a) HReA, (b) MorphoSys, (c) ADRES,
 * and (d) HyCube, plus the geo-mean speedup summary the paper quotes
 * (50x/45x/274x vs ILP on the first three fabrics; 405x vs LISA and
 * 214x/594x vs ILP/SA on HyCube).
 *
 * Timeout cases are excluded from the geo-mean, matching §4.3.
 */

#include "bench_common.hpp"

#include "common/stats.hpp"

namespace {

using namespace mapzero;

void
runArch(const cgra::Architecture &arch,
        const std::vector<Method> &methods)
{
    std::printf("\n--- %s (seconds; (f)=failed/timeout) ---\n",
                arch.name().c_str());
    std::vector<std::string> header{"kernel"};
    for (Method m : methods)
        header.push_back(methodName(m));
    bench::printRow(header, 15);

    // Per-method times for speedup geo-means, only where both MapZero
    // and the baseline succeeded. "Hard" cases are those where the
    // baseline needed more than 0.5s - the regime the paper's
    // hundreds-of-times speedups live in (its baselines carry hours of
    // solver overhead that the lean B&B/SA stand-ins here do not; see
    // EXPERIMENTS.md).
    std::map<std::string, std::vector<double>> speedup_vs;
    std::map<std::string, std::vector<double>> speedup_vs_hard;
    std::map<std::string, std::int32_t> losses_or_fails;
    Compiler compiler = bench::compilerFor(arch);
    for (const auto &kernel : bench::evaluationKernels()) {
        const dfg::Dfg d = dfg::buildKernel(kernel);
        std::vector<std::string> row{kernel};
        std::map<std::string, CompileResult> results;
        for (Method m : methods) {
            results[methodName(m)] =
                compiler.compile(d, arch, m, bench::benchOptions());
            const CompileResult &r = results[methodName(m)];
            row.push_back(bench::fmt("%.3f", r.seconds) +
                          (r.success ? "" : "(f)"));
        }
        bench::printRow(row, 15);

        const auto &mapzero = results["MapZero"];
        if (mapzero.success) {
            for (Method m : methods) {
                if (m == Method::MapZero)
                    continue;
                const auto &r = results[methodName(m)];
                if (!r.success) {
                    ++losses_or_fails[methodName(m)];
                    continue;
                }
                if (mapzero.seconds > 0.0) {
                    const double s = r.seconds / mapzero.seconds;
                    speedup_vs[methodName(m)].push_back(s);
                    if (r.seconds > 0.5)
                        speedup_vs_hard[methodName(m)].push_back(s);
                }
            }
        }
    }

    for (const auto &[name, speedups] : speedup_vs) {
        if (speedups.empty())
            continue;
        std::printf("MapZero vs %-10s geo-mean speedup %6.2fx over %zu "
                    "mutual successes",
                    name.c_str(), geoMean(speedups), speedups.size());
        const auto &hard = speedup_vs_hard[name];
        if (!hard.empty())
            std::printf("; %6.1fx over the %zu hard cases (baseline "
                        "> 0.5s)",
                        geoMean(hard), hard.size());
        std::printf("; baseline failed/timed out %d times\n",
                    losses_or_fails[name]);
    }
}

} // namespace

int
main()
{
    bench::printBanner("Fig. 11: compilation time comparison");

    const std::vector<Method> all{Method::Ilp, Method::Sa, Method::Lisa,
                                  Method::MapZero};
    runArch(cgra::Architecture::hrea(), all);
    runArch(cgra::Architecture::morphosys(), all);
    runArch(cgra::Architecture::adres(), all);
    runArch(cgra::Architecture::hycube(), all);
    return 0;
}
