/**
 * @file
 * §4.7 ablation reproduction plus the design-choice ablations DESIGN.md
 * calls out.
 *
 * (1) MCTS removal: run the evaluation kernels on the four quality-study
 *     CGRAs with and without the MCTS escalation; the paper reports only
 *     35/52 MII successes without MCTS versus 52/52 with it.
 * (2) Backtracking removal (§3.6.2): guided search with a zero backtrack
 *     budget.
 * (3) Reward shaping: per-step hop cost versus terminal-only reward is a
 *     training-time property; here we report the per-step routing-cost
 *     signal magnitude the shaped reward provides.
 */

#include "bench_common.hpp"

#include "dfg/random_gen.hpp"
#include "rl/agent.hpp"
#include "rl/trainer.hpp"

namespace {

using namespace mapzero;

struct Arm {
    std::string name;
    rl::AgentConfig config;
};

/**
 * Training-side ablations (DESIGN.md §6): symmetry data augmentation
 * (§3.6.1), per-step reward shaping (§3.3), and curriculum ordering
 * (§3.6.2). Each arm trains a fresh agent on the same seed/budget and
 * reports self-play success plus held-out greedy evaluation.
 */
void
runTrainingAblations()
{
    std::printf("\n--- training ablations (%d episodes each, HReA) "
                "---\n",
                24);
    cgra::Architecture arch = cgra::Architecture::hrea();

    struct TrainArm {
        std::string name;
        rl::TrainerConfig config;
    };
    rl::TrainerConfig base;
    base.mcts.expansionsPerMove = 12;
    base.updatesPerEpisode = 2;
    base.minBufferForTraining = 32;

    std::vector<TrainArm> arms;
    arms.push_back({"baseline", base});
    {
        rl::TrainerConfig c = base;
        c.augment = false;
        arms.push_back({"noAugment", c});
    }
    {
        rl::TrainerConfig c = base;
        c.envHopCost = 0.0;
        arms.push_back({"noShaping", c});
    }
    {
        rl::TrainerConfig c = base;
        c.curriculum = false;
        arms.push_back({"noCurriculum", c});
    }

    // Held-out evaluation tasks.
    Rng eval_rng(5151);
    std::vector<dfg::Dfg> eval_tasks;
    for (int i = 0; i < 6; ++i) {
        dfg::RandomDfgParams p;
        p.nodes = 6 + static_cast<std::int32_t>(eval_rng.uniformInt(4u));
        eval_tasks.push_back(dfg::randomDfg(p, eval_rng));
    }

    bench::printRow({"arm", "selfPlayOk", "evalOk", "evalPenalty"}, 14);
    for (const auto &arm : arms) {
        rl::Trainer trainer(arch, arm.config, /*seed=*/77);
        const auto history =
            trainer.pretrain(24, 4, 10, Deadline(45.0));
        std::int32_t self_ok = 0;
        for (const auto &s : history)
            self_ok += s.success ? 1 : 0;

        std::int32_t eval_ok = 0;
        double penalty = 0.0;
        for (const auto &task : eval_tasks) {
            const std::int32_t mii = Compiler::minimumIi(task, arch);
            const auto eval = trainer.evaluateGreedy(task, mii);
            eval_ok += eval.success ? 1 : 0;
            penalty += eval.routingPenalty;
        }
        bench::printRow(
            {arm.name,
             std::to_string(self_ok) + "/" +
                 std::to_string(history.size()),
             std::to_string(eval_ok) + "/" +
                 std::to_string(eval_tasks.size()),
             bench::fmt("%.1f",
                        penalty /
                            static_cast<double>(eval_tasks.size()))},
            14);
    }
}

} // namespace

int
main()
{
    bench::printBanner("§4.7 ablation: MapZero variants");

    std::vector<cgra::Architecture> archs{
        cgra::Architecture::hrea(), cgra::Architecture::morphosys(),
        cgra::Architecture::adres(), cgra::Architecture::hycube()};

    std::vector<Arm> arms;
    {
        Arm full;
        full.name = "full";
        full.config.mcts.expansionsPerMove =
            config::kBenchMctsExpansions;
        arms.push_back(full);

        Arm no_mcts;
        no_mcts.name = "noMCTS";
        no_mcts.config.useMcts = false;
        arms.push_back(no_mcts);

        // MCTS without the guided search: what tree search alone buys.
        Arm mcts_only;
        mcts_only.name = "mctsOnly";
        mcts_only.config.useGuided = false;
        mcts_only.config.mcts.expansionsPerMove =
            config::kBenchMctsExpansions;
        arms.push_back(mcts_only);

        // No search assistance at all: one greedy policy rollout per
        // restart - the paper's "removing MCTS" condition, since there
        // the tree search IS the search assistance.
        Arm no_backtrack;
        no_backtrack.name = "greedy";
        no_backtrack.config.useMcts = false;
        no_backtrack.config.guidedBacktrackBudget = 0;
        arms.push_back(no_backtrack);
    }

    std::map<std::string, std::int32_t> mii_successes;
    std::int32_t total_cases = 0;

    bench::printRow({"arch", "kernel", "MII", "full", "noMCTS",
                     "mctsOnly", "greedy"},
                    13);
    for (const auto &arch : archs) {
        const auto net = pretrainedNetwork(arch, bench::benchBudget());
        for (const auto &kernel : bench::evaluationKernels()) {
            const dfg::Dfg d = dfg::buildKernel(kernel);
            const std::int32_t mii = Compiler::minimumIi(d, arch);
            ++total_cases;
            std::vector<std::string> row{arch.name(), kernel,
                                         std::to_string(mii)};
            for (const auto &arm : arms) {
                rl::MapZeroAgent agent(net, arm.config);
                const auto r = agent.map(
                    d, arch, mii,
                    Deadline(config::kBenchTimeLimitSeconds));
                if (r.success && r.ii == mii)
                    ++mii_successes[arm.name];
                row.push_back(r.success ? "MII" : "fail");
            }
            bench::printRow(row, 13);
        }
    }

    std::printf("\nMII successes out of %d cases:\n", total_cases);
    for (const auto &arm : arms)
        std::printf("  %-12s %d/%d\n", arm.name.c_str(),
                    mii_successes[arm.name], total_cases);
    std::printf("(paper: 35/52 without MCTS vs 52/52 with it; here the\n"
                " guided backtracking search carries the search-assist\n"
                " role, so 'greedy' is the paper's no-MCTS analogue)\n");

    runTrainingAblations();
    return 0;
}
