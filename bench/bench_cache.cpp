/**
 * @file
 * Persistent compile-cache replay benchmark (infrastructure tracking,
 * not a paper figure): a Zipf-distributed request stream - the shape of
 * real tenant traffic, where a few hot kernels dominate - replayed
 * through an in-process mapzerod over loopback TCP, once with the
 * persistent result tier off and once with it on. Latency is the
 * server-side compile time (JobStatus::runSeconds, frozen at the
 * terminal transition), so client poll granularity cannot pollute the
 * percentiles.
 *
 * Correctness guard: with the tier on, every warm repeat of a
 * successfully compiled kernel must FETCH a blob byte-identical to the
 * cold one's (the tier replays the stored original result, timing
 * fields included).
 *
 * Publishes "bench.cache.*" gauges for the standard run report. With
 * --check the binary exits non-zero unless the warm p50 clears 5x the
 * cold p50, at least one request was served from disk, and every warm
 * blob matched its cold original.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench_common.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "dfg/dot.hpp"
#include "svc/client.hpp"
#include "svc/daemon.hpp"

namespace {

using namespace mapzero;

/** One replayed request's outcome. */
struct Sample {
    std::size_t kernel = 0;
    double runSeconds = 0.0;
    bool success = false;
    std::string blob;
};

double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const std::size_t index = std::min(
        values.size() - 1,
        static_cast<std::size_t>(p * static_cast<double>(values.size())));
    return values[index];
}

/**
 * Replay @p sequence (indices into @p dots) through a fresh daemon.
 * @p cacheDir empty = persistent tier off. Requests run one at a time
 * so each runSeconds measures an uncontended compile.
 */
std::vector<Sample>
replay(const std::vector<std::string> &dots,
       const std::vector<std::size_t> &sequence,
       const std::string &cacheDir)
{
    svc::DaemonOptions options;
    options.workers = 1;
    options.service.persistDir = cacheDir;
    svc::Daemon daemon;
    if (!daemon.start(options))
        fatal("bench_cache: daemon failed to start");

    svc::Client client(daemon.port());
    std::vector<Sample> samples;
    samples.reserve(sequence.size());
    for (const std::size_t kernel : sequence) {
        svc::SubmitRequest request;
        request.dfgDot = dots[kernel];
        request.archName = "hrea";
        request.method = 3; // SA: search-heavy and model-free
        request.timeLimitSeconds = 10.0;
        // A production-shaped restart portfolio per request: the cold
        // cost the tier amortizes is the whole portfolio, not one
        // anneal.
        request.restartsPerIi = 8;

        std::uint64_t id = 0;
        std::uint32_t depth = 0;
        if (client.submit(request, id, depth) != svc::Status::Ok)
            fatal(cat("bench_cache: SUBMIT failed: ", client.lastError()));
        const auto status = client.waitForJob(id, 60.0);
        if (!status)
            fatal(cat("bench_cache: job ", id,
                      " never finished: ", client.lastError()));

        svc::JobResult result;
        if (client.fetch(id, result) != svc::Status::Ok)
            fatal(cat("bench_cache: FETCH failed: ", client.lastError()));

        Sample sample;
        sample.kernel = kernel;
        sample.runSeconds = status->runSeconds;
        sample.success = result.state == svc::JobState::Done &&
            result.blob.find("\"success\": true") != std::string::npos;
        sample.blob = std::move(result.blob);
        samples.push_back(std::move(sample));
    }
    daemon.stop();
    return samples;
}

} // namespace

int
main(int argc, char **argv)
{
    bool check = false;
    std::size_t requests = 48;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--check") == 0)
            check = true;
        else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc)
            requests = static_cast<std::size_t>(std::atoll(argv[++i]));
    }

    bench::printBanner(
        "bench_cache: persistent result tier under Zipf replay");

    // The paper's core kernel set, pre-rendered to the DOT text a real
    // SUBMIT carries. Ordered heaviest-first so the Zipf head lands on
    // the expensive kernels - the regime a result cache exists for
    // (nobody deploys one to amortize sub-millisecond compiles).
    std::vector<std::string> names = dfg::coreKernelNames();
    std::vector<dfg::Dfg> kernels;
    kernels.reserve(names.size());
    for (const std::string &name : names)
        kernels.push_back(dfg::buildKernel(name));
    std::vector<std::size_t> order(names.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&kernels](std::size_t a, std::size_t b) {
                  return kernels[a].nodeCount() > kernels[b].nodeCount();
              });
    std::vector<std::string> sorted_names;
    std::vector<std::string> dots;
    sorted_names.reserve(order.size());
    dots.reserve(order.size());
    for (const std::size_t i : order) {
        sorted_names.push_back(names[i]);
        dots.push_back(dfg::toDot(kernels[i]));
    }
    names = std::move(sorted_names);

    // Zipf(1.0) request stream: kernel k drawn with weight 1/(k+1).
    std::vector<double> weights(dots.size());
    for (std::size_t k = 0; k < weights.size(); ++k)
        weights[k] = 1.0 / static_cast<double>(k + 1);
    Rng rng(2024);
    std::vector<std::size_t> sequence;
    sequence.reserve(requests);
    for (std::size_t i = 0; i < requests; ++i)
        sequence.push_back(rng.weightedIndex(weights));

    const std::string cache_dir =
        (std::filesystem::temp_directory_path() /
         ("mapzero-bench-cache-" + std::to_string(getpid())))
            .string();
    std::filesystem::remove_all(cache_dir);

    const std::int64_t disk_hits_before =
        metrics().counter("cache.disk_hits").value();

    const std::vector<Sample> cold = replay(dots, sequence, "");
    const std::vector<Sample> warm = replay(dots, sequence, cache_dir);

    const std::int64_t disk_hits =
        metrics().counter("cache.disk_hits").value() - disk_hits_before;

    // Bit-identity: every warm repeat of a persisted kernel must equal
    // the warm stream's own first (cold-path) blob for that kernel.
    std::size_t repeats = 0, mismatches = 0;
    {
        std::map<std::size_t, const Sample *> first;
        for (const Sample &sample : warm) {
            const auto [it, inserted] =
                first.emplace(sample.kernel, &sample);
            if (inserted || !it->second->success)
                continue;
            ++repeats;
            if (sample.blob != it->second->blob) {
                ++mismatches;
                std::fprintf(stderr,
                             "warm blob of %s diverged from its cold "
                             "original\n",
                             names[sample.kernel].c_str());
            }
        }
    }

    const auto seconds_of = [](const std::vector<Sample> &samples) {
        std::vector<double> out;
        out.reserve(samples.size());
        for (const Sample &sample : samples)
            out.push_back(sample.runSeconds);
        return out;
    };
    const double cold_p50 = percentile(seconds_of(cold), 0.50);
    const double cold_p99 = percentile(seconds_of(cold), 0.99);
    const double warm_p50 = percentile(seconds_of(warm), 0.50);
    const double warm_p99 = percentile(seconds_of(warm), 0.99);
    const double speedup = warm_p50 > 0.0 ? cold_p50 / warm_p50 : 0.0;

    metrics().gauge("bench.cache.cold_p50_ms").set(cold_p50 * 1e3);
    metrics().gauge("bench.cache.cold_p99_ms").set(cold_p99 * 1e3);
    metrics().gauge("bench.cache.warm_p50_ms").set(warm_p50 * 1e3);
    metrics().gauge("bench.cache.warm_p99_ms").set(warm_p99 * 1e3);
    metrics().gauge("bench.cache.p50_speedup").set(speedup);
    metrics().gauge("bench.cache.disk_hits")
        .set(static_cast<double>(disk_hits));

    bench::printRow({"tier", "p50 ms", "p99 ms"}, 22);
    bench::printRow({"off (every request compiles)",
                     bench::fmt("%.3f", cold_p50 * 1e3),
                     bench::fmt("%.3f", cold_p99 * 1e3)},
                    22);
    bench::printRow({"on (Zipf repeats from disk)",
                     bench::fmt("%.3f", warm_p50 * 1e3),
                     bench::fmt("%.3f", warm_p99 * 1e3)},
                    22);
    std::printf("p50 speedup: %.1fx (CI floor 5x); %zu requests over "
                "%zu kernels, %lld disk hits, %zu warm repeats "
                "(%zu blob mismatches)\n",
                speedup, sequence.size(), dots.size(),
                static_cast<long long>(disk_hits), repeats, mismatches);

    std::filesystem::remove_all(cache_dir);

    if (check && mismatches > 0) {
        std::fprintf(stderr, "FAIL: warm results are not byte-identical "
                             "to their cold originals\n");
        return 1;
    }
    if (check && disk_hits <= 0) {
        std::fprintf(stderr,
                     "FAIL: the persistent tier never served a hit\n");
        return 1;
    }
    if (check && speedup < 5.0) {
        std::fprintf(stderr,
                     "FAIL: warm p50 is only %.2fx the cold p50 "
                     "(floor 5x)\n",
                     speedup);
        return 1;
    }
    return 0;
}
