/**
 * @file
 * Search-core throughput benchmark (infrastructure tracking, not a
 * paper figure): simulations/sec of the arena-allocated, virtual-loss
 * batched MCTS (rl::Mcts) against the pointer-tree baseline it
 * replaced. The baseline is embedded here file-locally — a faithful
 * copy of the old per-node-unique_ptr tree with one network call per
 * leaf and a full router search on every edge traversal — so the
 * comparison survives in CI after the old engine is gone.
 *
 * Correctness guard: with leafBatch=1 the arena engine must reproduce
 * the baseline's move sequence action for action (same tree policy,
 * same routes); the bench replays one episode per kernel under both
 * engines and compares traces before timing anything.
 *
 * Publishes "bench.mcts.*" gauges for the standard run report. With
 * --check the binary exits non-zero unless the arena engine clears 3x
 * the baseline's simulations/sec (the CI floor; the ISSUE target is
 * 5x) or any trace diverges.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "mapper/environment.hpp"
#include "rl/evaluator.hpp"
#include "rl/features.hpp"
#include "rl/mcts.hpp"
#include "rl/network.hpp"

namespace {

using namespace mapzero;

/**
 * The pre-arena search engine, verbatim minus metrics/journal hooks:
 * heap-allocated tree nodes, edges in per-node vectors, one
 * Evaluator::evaluate call per leaf, and env.step() re-running the
 * full router search on every traversal. Produces rl::MctsMoveResult
 * so the episode driver below serves both engines.
 */
class PointerTreeMcts
{
  public:
    PointerTreeMcts(rl::Evaluator &evaluator, rl::MctsConfig config)
        : eval_(&evaluator), config_(config)
    {}

    rl::MctsMoveResult
    runFromCurrent(mapper::MapEnv &env, Rng &rng)
    {
        (void)rng; // noise-free in this bench
        if (env.done())
            panic("MCTS from a finished episode");

        TreeNode root;
        rl::MctsMoveResult result;
        result.pi.assign(
            static_cast<std::size_t>(eval_->network().peCount()), 0.0);

        std::vector<std::int32_t> solved_path;
        for (std::int32_t sim = 0; sim < config_.expansionsPerMove;
             ++sim) {
            ++result.simulations;
            if (simulate(root, env, solved_path, result)) {
                result.solvedSuffix = solved_path;
                break;
            }
        }

        std::int32_t total_visits = 0;
        for (const auto &edge : root.edges)
            total_visits += edge.visits;
        if (total_visits == 0) {
            double best_prior = -1.0;
            for (const auto &edge : root.edges) {
                result.pi[static_cast<std::size_t>(edge.action)] =
                    edge.prior;
                if (edge.prior > best_prior) {
                    best_prior = edge.prior;
                    result.bestAction = edge.action;
                }
            }
            return result;
        }
        std::int32_t best_visits = -1;
        double weighted_value = 0.0;
        for (const auto &edge : root.edges) {
            result.pi[static_cast<std::size_t>(edge.action)] =
                static_cast<double>(edge.visits) /
                static_cast<double>(total_visits);
            weighted_value += edge.meanValue() *
                              static_cast<double>(edge.visits) /
                              static_cast<double>(total_visits);
            if (edge.visits > best_visits) {
                best_visits = edge.visits;
                result.bestAction = edge.action;
            }
        }
        result.rootValue = weighted_value * config_.valueScale;
        return result;
    }

  private:
    struct TreeNode {
        struct Edge {
            std::int32_t action = -1;
            double prior = 0.0;
            std::int32_t visits = 0;
            double totalValue = 0.0;
            std::unique_ptr<TreeNode> child;

            double
            meanValue() const
            {
                return visits > 0 ? totalValue / visits : 0.0;
            }
        };

        bool expanded = false;
        bool terminal = false;
        double terminalValue = 0.0;
        std::int32_t totalVisits = 0;
        std::vector<Edge> edges;
    };

    bool
    simulate(TreeNode &root, mapper::MapEnv &env,
             std::vector<std::int32_t> &solved_path,
             rl::MctsMoveResult &result)
    {
        struct PathEntry {
            TreeNode *parent;
            TreeNode::Edge *edge;
            double reward;
        };
        std::vector<PathEntry> path;
        std::vector<std::int32_t> actions;
        TreeNode *node = &root;
        double leaf_value = 0.0;
        bool solved = false;

        while (true) {
            if (env.done()) {
                node->terminal = true;
                node->terminalValue =
                    env.success() ? config_.successBonus : 0.0;
                leaf_value = node->terminalValue;
                if (env.success()) {
                    solved = true;
                    solved_path = actions;
                }
                break;
            }
            if (env.legalActionCount() == 0) {
                env.noteDeadEnd();
                node->terminal = true;
                node->terminalValue = -config_.deadEndPenalty;
                leaf_value = node->terminalValue;
                break;
            }

            if (!node->expanded) {
                const rl::Observation &obs = obsBuilder_.refresh(env);
                const rl::MapZeroNet::Output out = eval_->evaluate(obs);
                ++result.netCalls;
                ++result.netLeaves;
                leaf_value = static_cast<double>(out.value.item()) /
                             config_.valueScale;
                for (std::int32_t a = 0;
                     a <
                     static_cast<std::int32_t>(obs.actionMask.size());
                     ++a) {
                    if (!obs.actionMask[static_cast<std::size_t>(a)])
                        continue;
                    TreeNode::Edge edge;
                    edge.action = a;
                    edge.prior = std::exp(static_cast<double>(
                        out.logPolicy
                            .tensor()[static_cast<std::size_t>(a)]));
                    node->edges.push_back(std::move(edge));
                }
                node->expanded = true;
                break;
            }

            TreeNode::Edge *best = nullptr;
            double best_score =
                -std::numeric_limits<double>::infinity();
            const double sqrt_total = std::sqrt(
                static_cast<double>(node->totalVisits + 1));
            for (auto &edge : node->edges) {
                const double q = edge.meanValue() * config_.valueScale;
                const double u = config_.cExplore * edge.prior *
                                 sqrt_total /
                                 (1.0 + static_cast<double>(edge.visits));
                const double score = q + u;
                if (score > best_score) {
                    best_score = score;
                    best = &edge;
                }
            }
            if (best == nullptr)
                panic("pointer-tree MCTS: expanded node with no edges");

            const mapper::StepOutcome out = env.step(best->action);
            actions.push_back(best->action);
            path.push_back(PathEntry{node, best, out.reward});
            if (!best->child)
                best->child = std::make_unique<TreeNode>();
            node = best->child.get();
        }

        double suffix = leaf_value;
        for (auto it = path.rbegin(); it != path.rend(); ++it) {
            suffix += it->reward;
            it->edge->visits += 1;
            it->edge->totalValue += suffix;
            it->parent->totalVisits += 1;
            if (it->parent != &root)
                result.interiorVisits += 1;
        }
        result.maxDepth = std::max(
            result.maxDepth, static_cast<std::int32_t>(actions.size()));

        for (std::size_t i = 0; i < actions.size(); ++i)
            env.undo();
        return solved;
    }

    rl::Evaluator *eval_;
    rl::MctsConfig config_;
    rl::ObservationBuilder obsBuilder_;
};

/** Per-measurement accumulator. */
struct EpisodeStats {
    std::int64_t sims = 0;
    std::int64_t moves = 0;
    std::int64_t episodes = 0;
    std::int64_t netCalls = 0;
    std::int64_t netLeaves = 0;
    std::int32_t maxDepth = 0;
};

/**
 * One restart episode: search a move, play the most-visited action,
 * repeat until the episode ends (the same loop mctsSearch runs).
 * Appends the played actions to @p trace when provided.
 */
template <typename Engine>
void
runEpisode(Engine &engine, mapper::MapEnv &env, Rng &rng,
           EpisodeStats &stats, std::vector<std::int32_t> *trace)
{
    env.reset();
    ++stats.episodes;
    while (!env.done()) {
        if (env.legalActionCount() == 0) {
            env.noteDeadEnd();
            break;
        }
        const rl::MctsMoveResult move = engine.runFromCurrent(env, rng);
        stats.sims += move.simulations;
        stats.netCalls += move.netCalls;
        stats.netLeaves += move.netLeaves;
        stats.maxDepth = std::max(stats.maxDepth, move.maxDepth);
        ++stats.moves;
        if (move.solvedSuffix) {
            for (const std::int32_t a : *move.solvedSuffix) {
                env.step(a);
                if (trace != nullptr)
                    trace->push_back(a);
            }
            break;
        }
        if (move.bestAction < 0)
            break;
        env.step(move.bestAction);
        if (trace != nullptr)
            trace->push_back(move.bestAction);
    }
}

/** A kernel environment with its DFG kept alive alongside. */
struct Workload {
    std::unique_ptr<dfg::Dfg> dfg;
    std::unique_ptr<mapper::MapEnv> env;
};

/** Simulations/sec of @p engine cycling episodes over @p work. */
template <typename Engine>
double
simsPerSecond(Engine &engine, std::vector<Workload> &work,
              double seconds, EpisodeStats &stats)
{
    Rng rng(7);
    // Warm-up: fault in code paths, fill caches, grow the arena.
    for (auto &w : work) {
        EpisodeStats warm;
        runEpisode(engine, *w.env, rng, warm, nullptr);
    }
    const Timer timer;
    std::size_t next = 0;
    double elapsed = 0.0;
    do {
        runEpisode(engine, *work[next].env, rng, stats, nullptr);
        next = (next + 1) % work.size();
        elapsed = timer.seconds();
    } while (elapsed < seconds);
    return static_cast<double>(stats.sims) / elapsed;
}

} // namespace

int
main(int argc, char **argv)
{
    bool check = false;
    double seconds = 0.6;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--check") == 0)
            check = true;
        else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc)
            seconds = std::atof(argv[++i]);
    }

    bench::printBanner(
        "bench_mcts: search-core throughput (arena vs pointer tree)");

    // hycube: the multi-hop crossbar fabric, where every placement
    // step pays a full wire-level Dijkstra in the baseline — the cost
    // the memoized replay and cached frontiers eliminate.
    const cgra::Architecture arch = cgra::Architecture::hycube();
    Rng net_rng(12345);
    const rl::MapZeroNet net(arch.peCount(), rl::NetworkConfig{},
                             net_rng);

    std::vector<Workload> work;
    for (const char *kernel : {"conv2", "matmul", "conv3"}) {
        Workload w;
        w.dfg = std::make_unique<dfg::Dfg>(dfg::buildKernel(kernel));
        const std::int32_t mii = dfg::minimumIi(
            *w.dfg, arch.peCount(), arch.memoryIssueCapacity());
        w.env = std::make_unique<mapper::MapEnv>(*w.dfg, arch, mii);
        work.push_back(std::move(w));
    }

    rl::MctsConfig config;
    config.expansionsPerMove = 64;
    config.noiseFraction = 0.0;

    // --- Correctness guard: leafBatch=1 must replay the baseline ----
    bool traces_match = true;
    {
        rl::DirectEvaluator eval_a(net,
                                   std::make_shared<rl::EvalCache>());
        rl::DirectEvaluator eval_b(net,
                                   std::make_shared<rl::EvalCache>());
        PointerTreeMcts baseline(eval_a, config);
        rl::MctsConfig sequential = config;
        sequential.leafBatch = 1;
        rl::Mcts arena(eval_b, sequential);
        for (auto &w : work) {
            EpisodeStats ignore;
            std::vector<std::int32_t> trace_base, trace_arena;
            Rng rng_a(7), rng_b(7);
            runEpisode(baseline, *w.env, rng_a, ignore, &trace_base);
            runEpisode(arena, *w.env, rng_b, ignore, &trace_arena);
            if (trace_base != trace_arena) {
                traces_match = false;
                std::fprintf(stderr,
                             "trace divergence on %s: baseline %zu "
                             "moves, arena(leafBatch=1) %zu moves\n",
                             w.env->dfg().name().c_str(),
                             trace_base.size(), trace_arena.size());
            }
        }
    }

    // --- Throughput: baseline vs arena at the production leafBatch --
    rl::DirectEvaluator eval_legacy(net,
                                    std::make_shared<rl::EvalCache>());
    PointerTreeMcts legacy(eval_legacy, config);
    EpisodeStats legacy_stats;
    const double legacy_sps =
        simsPerSecond(legacy, work, seconds, legacy_stats);

    rl::DirectEvaluator eval_arena(net,
                                   std::make_shared<rl::EvalCache>());
    rl::Mcts arena(eval_arena, config);
    EpisodeStats arena_stats;
    const double arena_sps =
        simsPerSecond(arena, work, seconds, arena_stats);

    const double speedup = legacy_sps > 0.0 ? arena_sps / legacy_sps
                                            : 0.0;
    const double fill =
        arena_stats.netCalls > 0
            ? static_cast<double>(arena_stats.netLeaves) /
                  static_cast<double>(arena_stats.netCalls)
            : 0.0;
    const rl::Mcts::ArenaStats astats = arena.arenaStats();

    metrics().gauge("bench.mcts.legacy_sims_per_sec").set(legacy_sps);
    metrics().gauge("bench.mcts.arena_sims_per_sec").set(arena_sps);
    metrics().gauge("bench.mcts.speedup").set(speedup);
    metrics().gauge("bench.mcts.batch_fill").set(fill);

    bench::printRow({"engine", "sims/s", "speedup"}, 26);
    bench::printRow({"pointer tree (seed)",
                     bench::fmt("%.0f", legacy_sps), "1.00x"},
                    26);
    bench::printRow({"arena + batched waves",
                     bench::fmt("%.0f", arena_sps),
                     bench::fmt("%.2fx", speedup)},
                    26);
    std::printf("single-restart speedup: %.2fx (target 5x, CI floor "
                "3x); leaf batch fill %.1f leaves/net call "
                "(leafBatch=%d)\n",
                speedup, fill, config.leafBatch);
    std::printf("episodes: legacy %lld (%lld moves, depth<=%d, %lld "
                "sims, %lld evals), arena %lld (%lld moves, depth<=%d, "
                "%lld sims, %lld evals)\n",
                static_cast<long long>(legacy_stats.episodes),
                static_cast<long long>(legacy_stats.moves),
                legacy_stats.maxDepth,
                static_cast<long long>(legacy_stats.sims),
                static_cast<long long>(legacy_stats.netLeaves),
                static_cast<long long>(arena_stats.episodes),
                static_cast<long long>(arena_stats.moves),
                arena_stats.maxDepth,
                static_cast<long long>(arena_stats.sims),
                static_cast<long long>(arena_stats.netLeaves));
    std::printf("arena: %zu node cap, %zu edge cap, %zu memo cap, "
                "%zu bytes; leafBatch=1 trace check: %s\n",
                astats.nodeCapacity, astats.edgeCapacity,
                astats.memoCapacity, astats.bytes,
                traces_match ? "identical" : "DIVERGED");

    if (check && !traces_match) {
        std::fprintf(stderr, "FAIL: arena search with leafBatch=1 does "
                             "not reproduce the pointer-tree "
                             "baseline\n");
        return 1;
    }
    if (check && speedup < 3.0) {
        std::fprintf(stderr,
                     "FAIL: arena search is only %.2fx the pointer-tree "
                     "baseline (floor 3x)\n",
                     speedup);
        return 1;
    }
    return 0;
}
