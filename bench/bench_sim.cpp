/**
 * @file
 * Simulator throughput benchmarks (infrastructure tracking, not a paper
 * figure): cycles/second of the reference interpreter, the route-level
 * fabric simulator, and the bitstream-level hardware simulator, plus the
 * cost of one golden-model comparison.
 */

#include <benchmark/benchmark.h>

#include "baselines/exact_mapper.hpp"
#include "bench_common.hpp"
#include "common/log.hpp"
#include "core/bitstream.hpp"
#include "mapper/router.hpp"
#include "sim/fabric_sim.hpp"
#include "sim/hw_sim.hpp"
#include "sim/interpreter.hpp"

namespace {

using namespace mapzero;

/** Shared compiled mapping (built once). */
struct SimFixture {
    dfg::Dfg dfg = dfg::buildKernel("conv2");
    cgra::Architecture arch = cgra::Architecture::hrea();
    std::unique_ptr<cgra::Mrrg> mrrg;
    std::unique_ptr<mapper::MappingState> state;
    Bitstream bitstream;
    sim::ActivationSchedule activation;

    SimFixture()
    {
        const std::int32_t mii = dfg::minimumIi(
            dfg, arch.peCount(), arch.memoryIssueCapacity());
        baselines::ExactMapper exact;
        const auto r = exact.map(dfg, arch, mii, Deadline(60.0));
        auto schedule = dfg::moduloSchedule(dfg, mii,
                                            arch.memoryIssueCapacity());
        mrrg = std::make_unique<cgra::Mrrg>(arch, mii);
        state = std::make_unique<mapper::MappingState>(dfg, *mrrg,
                                                       *schedule);
        if (!mapper::Router::replayMapping(*state, r.placements))
            fatal("bench_sim: mapping replay failed");
        bitstream = generateBitstream(*state);
        activation.startTime = schedule->time;
        activation.ii = mii;
        activation.length = schedule->length();
    }
};

SimFixture &
fixture()
{
    static SimFixture instance;
    return instance;
}

void
BM_Interpreter(benchmark::State &state)
{
    const auto provider = sim::defaultProvider();
    const auto iterations = state.range(0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sim::interpret(fixture().dfg, iterations, provider));
    }
    state.SetItemsProcessed(state.iterations() * iterations);
}
BENCHMARK(BM_Interpreter)->Arg(16)->Arg(256);

void
BM_FabricSim(benchmark::State &state)
{
    const auto provider = sim::defaultProvider();
    const auto iterations = state.range(0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sim::simulateFabric(*fixture().state, iterations,
                                provider));
    }
    state.SetItemsProcessed(state.iterations() * iterations);
}
BENCHMARK(BM_FabricSim)->Arg(16)->Arg(256);

void
BM_HardwareSim(benchmark::State &state)
{
    const auto provider = sim::defaultProvider();
    const auto iterations = state.range(0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim::runHardware(
            fixture().bitstream, fixture().arch, fixture().activation,
            iterations, provider));
    }
    state.SetItemsProcessed(state.iterations() * iterations);
}
BENCHMARK(BM_HardwareSim)->Arg(16)->Arg(256);

void
BM_GoldenModelCheck(benchmark::State &state)
{
    const auto provider = sim::defaultProvider();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sim::compareWithReference(*fixture().state, 8, provider));
    }
}
BENCHMARK(BM_GoldenModelCheck);

void
BM_BitstreamGeneration(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(generateBitstream(*fixture().state));
    }
}
BENCHMARK(BM_BitstreamGeneration);

} // namespace

BENCHMARK_MAIN();
