/**
 * @file
 * Fig. 12 reproduction: learning curves during training on HReA -
 * (a) average total loss, (b) value loss, (c) policy loss, (d) average
 * reward, (e) routing penalty in evaluation, (f) learning rate.
 *
 * Training tasks are random DFGs of a fixed small size band (so the
 * reward curve reflects learning, not curriculum difficulty), and the
 * evaluation column replays a held-out fixed DFG with the greedy policy
 * after every episode - exactly the paper's "routing penalty (in
 * evaluation)" probe. Paper shapes: losses decline, reward ascends, the
 * learning rate follows warmup-then-decay, and with enough training the
 * evaluation penalty stays above -100 (every evaluation mapping valid).
 */

#include "bench_common.hpp"

#include "common/stats.hpp"
#include "dfg/random_gen.hpp"
#include "rl/trainer.hpp"

namespace {

using namespace mapzero;

} // namespace

int
main()
{
    bench::printBanner("Fig. 12: learning curves (training on HReA)");

    cgra::Architecture arch = cgra::Architecture::hrea();
    rl::TrainerConfig config;
    config.mcts.expansionsPerMove = 16;
    config.updatesPerEpisode = 4;
    config.minBufferForTraining = 48;
    rl::Trainer trainer(arch, config, 21);

    // Fixed-difficulty training stream + held-out evaluation task.
    Rng task_rng(97);
    dfg::RandomDfgParams params;
    params.nodes = 8;
    params.memFraction = 0.15;
    const dfg::Dfg eval_task = dfg::randomDfg(params, task_rng);
    const std::int32_t eval_ii = Compiler::minimumIi(eval_task, arch);

    const std::int32_t episodes = 64;
    const Deadline deadline(120.0);

    bench::printRow({"episode", "totalLoss", "valueLoss", "policyLoss",
                     "reward", "evalPen", "lr", "ok"},
                    11);
    std::vector<double> rewards;
    std::vector<double> losses;
    std::vector<double> eval_penalties;
    std::int32_t successes = 0;
    for (std::int32_t e = 0; e < episodes && !deadline.expired(); ++e) {
        dfg::RandomDfgParams p = params;
        p.nodes = 4 + static_cast<std::int32_t>(task_rng.uniformInt(5u));
        dfg::Dfg task = dfg::randomDfg(p, task_rng);
        const std::int32_t mii = Compiler::minimumIi(task, arch);
        const rl::EpisodeStats s = trainer.runEpisode(task, mii);
        const auto eval = trainer.evaluateGreedy(eval_task, eval_ii);

        bench::printRow({std::to_string(s.episode),
                         bench::fmt("%.3f", s.totalLoss),
                         bench::fmt("%.3f", s.valueLoss),
                         bench::fmt("%.3f", s.policyLoss),
                         bench::fmt("%.2f", s.reward),
                         bench::fmt("%.2f", eval.routingPenalty),
                         bench::fmt("%.5f", s.learningRate),
                         s.success ? "yes" : "no"},
                        11);
        rewards.push_back(s.reward);
        if (s.totalLoss != 0.0)
            losses.push_back(s.totalLoss);
        eval_penalties.push_back(eval.routingPenalty);
        successes += s.success ? 1 : 0;
    }

    // Trend summary (EMA-smoothed, like the darker lines of Fig. 12).
    if (rewards.size() >= 8) {
        const auto smooth = emaSmooth(rewards, 0.15);
        std::printf("\nsmoothed self-play reward: early %.2f -> late "
                    "%.2f (paper: steady ascent)\n",
                    smooth[smooth.size() / 4], smooth.back());
    }
    if (losses.size() >= 8) {
        const auto smooth = emaSmooth(losses, 0.15);
        std::printf("smoothed loss: early %.3f -> late %.3f "
                    "(paper: considerable decline)\n",
                    smooth[smooth.size() / 4], smooth.back());
    }
    if (eval_penalties.size() >= 8) {
        const auto smooth = emaSmooth(eval_penalties, 0.15);
        std::printf("smoothed eval penalty: early %.2f -> late %.2f "
                    "(> -100 means the evaluation mapping is valid)\n",
                    smooth[smooth.size() / 4], smooth.back());
    }
    std::printf("valid self-play mappings: %d/%zu\n", successes,
                rewards.size());
    return 0;
}
