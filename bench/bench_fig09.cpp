/**
 * @file
 * Fig. 9 reproduction: the number of backtracking operations MapZero
 * needs while mapping each benchmark on each target CGRA.
 *
 * Paper shape: "the number of backtracking operations required in most
 * situations is very small" - the agent's placements are mostly right
 * the first time, and backtracking merely patches occasional mistakes.
 */

#include "bench_common.hpp"

namespace {

using namespace mapzero;

} // namespace

int
main()
{
    bench::printBanner(
        "Fig. 9: MapZero backtracking operations per mapping");

    std::vector<cgra::Architecture> archs{
        cgra::Architecture::hrea(), cgra::Architecture::morphosys(),
        cgra::Architecture::adres(), cgra::Architecture::hycube()};

    std::vector<std::string> header{"kernel"};
    for (const auto &a : archs)
        header.push_back(a.name());
    bench::printRow(header, 13);

    for (const auto &kernel : bench::evaluationKernels()) {
        const dfg::Dfg d = dfg::buildKernel(kernel);
        std::vector<std::string> row{kernel};
        for (const auto &arch : archs) {
            Compiler compiler = bench::compilerFor(arch);
            const CompileResult r = compiler.compile(
                d, arch, Method::MapZero, bench::benchOptions());
            row.push_back(r.success ? std::to_string(r.searchOps)
                                    : "fail");
        }
        bench::printRow(row, 13);
    }
    return 0;
}
