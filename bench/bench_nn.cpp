/**
 * @file
 * Network inference microbenchmarks (infrastructure tracking, not a
 * paper figure): single-observation forward latency on the tape path vs
 * the no-grad fast path (nn::InferenceGuard + TensorArena), batched
 * forward throughput, and the eval-cache hit path.
 *
 * Publishes "bench.nn.*" gauges, so a run with
 * MAPZERO_BENCH_REPORT_DIR set leaves the numbers in the standard
 * metrics run report. With --check the binary exits non-zero unless
 * the no-grad path beats the tape path, which is the CI smoke test
 * for the inference fast path.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "mapper/environment.hpp"
#include "nn/autograd.hpp"
#include "rl/evaluator.hpp"
#include "rl/features.hpp"
#include "rl/network.hpp"

namespace {

using namespace mapzero;

/** Observations along a first-legal-action rollout of @p kernel. */
std::vector<rl::Observation>
rolloutObservations(const std::string &kernel,
                    const cgra::Architecture &arch)
{
    dfg::Dfg d = dfg::buildKernel(kernel);
    const std::int32_t mii =
        dfg::minimumIi(d, arch.peCount(), arch.memoryIssueCapacity());
    mapper::MapEnv env(d, arch, mii);
    std::vector<rl::Observation> observations;
    while (!env.done() && env.legalActionCount() > 0) {
        observations.push_back(rl::observe(env));
        const auto mask = env.actionMask();
        for (cgra::PeId pe = 0;
             pe < static_cast<cgra::PeId>(mask.size()); ++pe) {
            if (mask[static_cast<std::size_t>(pe)]) {
                env.step(pe);
                break;
            }
        }
    }
    return observations;
}

/**
 * Evaluations per second of @p body (which performs one evaluation per
 * call), measured over at least @p seconds of wall time.
 */
template <typename Fn>
double
evalsPerSecond(double seconds, Fn &&body)
{
    using Clock = std::chrono::steady_clock;
    // Warm-up: fault in code paths and fill the tensor arena.
    for (int i = 0; i < 8; ++i)
        body();
    std::int64_t evals = 0;
    const auto start = Clock::now();
    double elapsed = 0.0;
    do {
        for (int i = 0; i < 16; ++i)
            body();
        evals += 16;
        elapsed = std::chrono::duration<double>(Clock::now() - start)
                      .count();
    } while (elapsed < seconds);
    return static_cast<double>(evals) / elapsed;
}

} // namespace

int
main(int argc, char **argv)
{
    bool check = false;
    double seconds = 0.4;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--check") == 0)
            check = true;
        else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc)
            seconds = std::atof(argv[++i]);
    }

    bench::printBanner("bench_nn: inference fast path");

    cgra::Architecture arch = cgra::Architecture::hrea();
    Rng rng(12345);
    const rl::MapZeroNet net(arch.peCount(), rl::NetworkConfig{}, rng);

    std::vector<rl::Observation> observations;
    for (const char *kernel : {"sum", "mac", "conv2", "accumulate"})
        for (auto &obs : rolloutObservations(kernel, arch))
            observations.push_back(std::move(obs));
    std::size_t next = 0;
    const auto cycle = [&]() -> const rl::Observation & {
        const auto &obs = observations[next];
        next = (next + 1) % observations.size();
        return obs;
    };

    // 1. Tape path: the forward the trainer uses (autograd graph built).
    const double tape = evalsPerSecond(
        seconds, [&] { net.forward(cycle()); });

    // 2. No-grad path: what every evaluator runs during search.
    const double nograd = evalsPerSecond(seconds, [&] {
        const nn::InferenceGuard guard;
        net.forward(cycle());
    });

    // 3. Batched no-grad forward, 8 observations per pass.
    constexpr std::size_t kBatch = 8;
    const double batched = kBatch * evalsPerSecond(seconds, [&] {
        std::vector<const rl::Observation *> batch;
        for (std::size_t i = 0; i < kBatch; ++i)
            batch.push_back(&cycle());
        const nn::InferenceGuard guard;
        net.forwardBatch(batch);
    });

    // 4. Eval-cache hit path (steady state: everything cached).
    rl::DirectEvaluator cached(net, std::make_shared<rl::EvalCache>());
    for (const auto &obs : observations)
        cached.evaluate(obs);
    const double hits = evalsPerSecond(
        seconds, [&] { cached.evaluate(cycle()); });

    const double speedup = tape > 0.0 ? nograd / tape : 0.0;
    metrics().gauge("bench.nn.forward_tape_evals_per_sec").set(tape);
    metrics().gauge("bench.nn.forward_nograd_evals_per_sec").set(nograd);
    metrics().gauge("bench.nn.forward_speedup").set(speedup);
    metrics().gauge("bench.nn.batch8_evals_per_sec").set(batched);
    metrics().gauge("bench.nn.cached_evals_per_sec").set(hits);

    bench::printRow({"path", "evals/s", "vs tape"}, 26);
    bench::printRow({"forward (tape)", bench::fmt("%.0f", tape),
                     "1.00x"},
                    26);
    bench::printRow({"forward (no-grad)", bench::fmt("%.0f", nograd),
                     bench::fmt("%.2fx", speedup)},
                    26);
    bench::printRow({"forwardBatch(8, no-grad)",
                     bench::fmt("%.0f", batched),
                     bench::fmt("%.2fx", batched / tape)},
                    26);
    bench::printRow({"eval-cache hit", bench::fmt("%.0f", hits),
                     bench::fmt("%.2fx", hits / tape)},
                    26);
    std::printf("no-grad speedup over tape: %.2fx (%zu observations)\n",
                speedup, observations.size());
    const auto &arena = nn::TensorArena::thisThread();
    std::printf("arena: %llu reuses, %llu heap allocations, %zu pooled\n",
                static_cast<unsigned long long>(arena.reuses()),
                static_cast<unsigned long long>(arena.heapAllocations()),
                arena.pooledBuffers());

    if (check && speedup <= 1.0) {
        std::fprintf(stderr,
                     "FAIL: no-grad path is not faster than the tape "
                     "path (%.2fx)\n",
                     speedup);
        return 1;
    }
    return 0;
}
