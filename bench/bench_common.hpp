/**
 * @file
 * Shared helpers of the benchmark harness: the evaluation protocol of the
 * paper (MII-first sweeps, timeout handling, per-method tables) plus
 * table printing.
 *
 * Each bench binary regenerates one table/figure of the paper. Absolute
 * numbers differ from the publication (different machine, scaled budgets
 * - see DESIGN.md §7); the *shape* of each result is what is reproduced.
 */

#ifndef MAPZERO_BENCH_BENCH_COMMON_HPP
#define MAPZERO_BENCH_BENCH_COMMON_HPP

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "svc/telemetry_server.hpp"
#include "core/agent_cache.hpp"
#include "core/compiler.hpp"
#include "core/config.hpp"
#include "dfg/kernels.hpp"
#include "dfg/schedule.hpp"

namespace mapzero::bench {

/** Default compile options of the harness. */
inline CompileOptions
benchOptions(double time_limit = config::kBenchTimeLimitSeconds)
{
    CompileOptions opts;
    opts.timeLimitSeconds = time_limit;
    return opts;
}

/** Pre-training budget used by every bench (kept small; see DESIGN.md). */
inline PretrainBudget
benchBudget()
{
    PretrainBudget budget;
    budget.episodes = config::kBenchPretrainEpisodes;
    budget.seconds = config::kBenchPretrainSeconds;
    budget.mctsExpansions = 8;
    return budget;
}

/** A compiler with the cached pre-trained network for @p arch installed. */
inline Compiler
compilerFor(const cgra::Architecture &arch)
{
    Compiler compiler;
    compiler.setNetwork(pretrainedNetwork(arch, benchBudget()));
    return compiler;
}

/** The kernel set used for the per-architecture quality studies: all 13
 *  non-unrolled Table-2 kernels (the paper's Figs. 8-11 set). Set
 *  MAPZERO_BENCH_QUICK=1 to restrict to the smaller half. */
inline std::vector<std::string>
evaluationKernels()
{
    if (std::getenv("MAPZERO_BENCH_QUICK") != nullptr)
        return {"sum", "mac", "conv2", "accumulate", "matmul", "conv3",
                "mults1", "cap"};
    return dfg::coreKernelNames();
}

/** Run-report path for benchmark @p name under @p dir. */
inline std::string
runReportPath(const std::string &name, const std::string &dir)
{
    std::string file = name;
    for (char &c : file) {
        if (c == ' ' || c == '/' || c == ':' || c == '(' || c == ')')
            c = '_';
    }
    return dir + "/" + file + ".metrics.json";
}

/** Write the current metrics registry as a run report for @p name. */
inline void
dumpRunReport(const std::string &name, const std::string &dir)
{
    writeRunReport(runReportPath(name, dir));
}

/**
 * When MAPZERO_BENCH_REPORT_DIR is set, dump a metrics run report
 * there at process exit, named after the benchmark. Called from
 * printBanner() so every bench binary gets it for free.
 */
inline void
installRunReportAtExit(const std::string &what)
{
    static std::string path;
    if (!path.empty())
        return; // one report per process
    const char *dir = std::getenv("MAPZERO_BENCH_REPORT_DIR");
    if (dir == nullptr || *dir == '\0')
        return;
    path = runReportPath(what, dir);
    // atexit + fatal-hook flush: a bench that dies mid-run still
    // leaves its report behind (same contract as --metrics-out).
    setRunReportOutputPath(path);
}

/**
 * Bench binaries take no telemetry flags, so the stats port comes from
 * the environment: MAPZERO_STATS_PORT=0 serves /metrics on an
 * ephemeral port for the whole bench run (and is how the DESIGN.md §13
 * overhead budget is measured). Unset = no server, no sampler.
 */
inline void
installTelemetryFromEnv()
{
    if (const char *port = std::getenv("MAPZERO_STATS_PORT"))
        svc::ensureTelemetryServer(std::atoi(port));
}

/** Print a header banner with the run configuration. */
inline void
printBanner(const std::string &what)
{
    installRunReportAtExit(what);
    installTelemetryFromEnv();
    std::printf("==========================================================\n");
    std::printf("%s\n", what.c_str());
    std::printf("config: timeLimit=%.1fs mctsExpansions=%d "
                "pretrainEpisodes=%d (paper: %.0fh / %d / per-fabric "
                "hours; see DESIGN.md)\n",
                config::kBenchTimeLimitSeconds,
                config::kBenchMctsExpansions,
                config::kBenchPretrainEpisodes,
                config::kPaperTimeLimitSeconds / 3600.0,
                config::kPaperMctsExpansions);
    std::printf("==========================================================\n");
}

/** Fixed-width row printer for result tables. */
inline void
printRow(const std::vector<std::string> &cells, int width = 14)
{
    for (const auto &c : cells)
        std::printf("%-*s", width, c.c_str());
    std::printf("\n");
}

/** Format helper. */
inline std::string
fmt(const char *format, double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), format, value);
    return buffer;
}

} // namespace mapzero::bench

#endif // MAPZERO_BENCH_BENCH_COMMON_HPP
