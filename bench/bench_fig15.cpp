/**
 * @file
 * Fig. 14/15 reproduction: generality on a heterogeneous 4x4 CGRA where
 * PEs support different operation subsets. Reports, per kernel, the II
 * achieved by MapZero and the exact (ILP stand-in) mapper, MapZero's
 * compilation-time ratio to the ILP, and its backtracking count.
 *
 * Paper shape: MapZero reaches the same II as the ILP in a fraction of
 * the time with few backtracks.
 */

#include "bench_common.hpp"

#include "common/stats.hpp"

namespace {

using namespace mapzero;

} // namespace

int
main()
{
    bench::printBanner(
        "Fig. 15: heterogeneous architecture (Fig. 14 fabric)");

    cgra::Architecture arch = cgra::Architecture::heterogeneous();
    Compiler compiler = bench::compilerFor(arch);

    bench::printRow({"kernel", "MII", "II(ILP)", "II(MapZero)",
                     "time-ratio", "backtracks"},
                    13);
    std::vector<double> ratios;
    for (const auto &kernel : bench::evaluationKernels()) {
        const dfg::Dfg d = dfg::buildKernel(kernel);
        const CompileResult ilp = compiler.compile(
            d, arch, Method::Ilp, bench::benchOptions());
        const CompileResult mz = compiler.compile(
            d, arch, Method::MapZero, bench::benchOptions());

        std::string ratio = "-";
        if (ilp.success && mz.success && mz.seconds > 0.0) {
            ratio = bench::fmt("%.3f", mz.seconds / ilp.seconds);
            ratios.push_back(mz.seconds / ilp.seconds);
        }
        bench::printRow(
            {kernel, std::to_string(Compiler::minimumIi(d, arch)),
             ilp.success ? std::to_string(ilp.ii) : "fail",
             mz.success ? std::to_string(mz.ii) : "fail", ratio,
             mz.success ? std::to_string(mz.searchOps) : "-"},
            13);
    }
    if (!ratios.empty())
        std::printf("geo-mean MapZero/ILP time ratio: %.3f\n",
                    geoMean(ratios));
    return 0;
}
