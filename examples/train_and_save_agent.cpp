/**
 * @file
 * Offline pre-training workflow (paper §3.6.2): train an agent on a
 * curriculum of random DFGs for a chosen fabric, watch the learning
 * curve, save a checkpoint, and reload it for inference.
 *
 * Usage: train_and_save_agent [episodes] [checkpoint-path]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/compiler.hpp"
#include "dfg/kernels.hpp"
#include "nn/serialize.hpp"
#include "rl/trainer.hpp"

int
main(int argc, char **argv)
{
    using namespace mapzero;

    const std::int32_t episodes =
        argc > 1 ? std::atoi(argv[1]) : 16;
    const std::string path =
        argc > 2 ? argv[2] : "/tmp/mapzero_hrea.ckpt";

    const cgra::Architecture arch = cgra::Architecture::hrea();

    // Curriculum pre-training: random DFGs ordered easy to hard.
    rl::TrainerConfig config;
    config.mcts.expansionsPerMove = 12;
    rl::Trainer trainer(arch, config, /*seed=*/33);
    std::printf("training %d curriculum episodes on %s...\n", episodes,
                arch.name().c_str());
    const auto history =
        trainer.pretrain(episodes, 3, 12, Deadline(120.0));

    std::printf("%-8s %-10s %-10s %-8s\n", "episode", "loss", "reward",
                "valid");
    for (const auto &s : history)
        std::printf("%-8d %-10.3f %-10.2f %-8s\n", s.episode,
                    s.totalLoss, s.reward, s.success ? "yes" : "no");

    // Checkpoint.
    nn::saveModule(trainer.network(), path);
    std::printf("checkpoint written to %s (%zu parameters)\n",
                path.c_str(), trainer.network().parameterCount());

    // Reload into a fresh network and compile with it.
    Rng rng(1);
    auto restored = std::make_shared<rl::MapZeroNet>(
        arch.peCount(), rl::NetworkConfig{}, rng);
    nn::loadModule(*restored, path);

    Compiler compiler;
    compiler.setNetwork(restored);
    const dfg::Dfg kernel = dfg::buildKernel("sum");
    CompileOptions options;
    options.timeLimitSeconds = 15.0;
    const CompileResult r =
        compiler.compile(kernel, arch, Method::MapZero, options);
    std::printf("restored agent maps '%s': %s (II=%d, %.3fs)\n",
                kernel.name().c_str(), r.success ? "ok" : "failed",
                r.ii, r.seconds);
    return r.success ? 0 : 1;
}
