/**
 * @file
 * Full backend walkthrough: compile a kernel, visualize the placement,
 * generate the configuration bitstream, execute the mapping on the
 * cycle-accurate fabric simulator, and check it against the reference
 * DFG interpreter (the golden model).
 *
 * Usage: simulate_mapping [kernel] [iterations]
 */

#include <cstdio>
#include <cstdlib>

#include "baselines/exact_mapper.hpp"
#include "core/bitstream.hpp"
#include "dfg/kernels.hpp"
#include "dfg/schedule.hpp"
#include "mapper/router.hpp"
#include "mapper/visualize.hpp"
#include "sim/fabric_sim.hpp"

int
main(int argc, char **argv)
{
    using namespace mapzero;

    const std::string kernel_name = argc > 1 ? argv[1] : "mac";
    const std::int64_t iterations = argc > 2 ? std::atoll(argv[2]) : 6;

    const dfg::Dfg kernel = dfg::buildKernel(kernel_name);
    const cgra::Architecture arch = cgra::Architecture::hrea();
    const std::int32_t mii = dfg::minimumIi(kernel, arch.peCount(),
                                            arch.memoryIssueCapacity());

    // Compile (exact mapper keeps the example dependency-light).
    baselines::ExactMapper mapper;
    const auto attempt = mapper.map(kernel, arch, mii, Deadline(30.0));
    if (!attempt.success) {
        std::printf("could not map %s at II=%d\n", kernel_name.c_str(),
                    mii);
        return 1;
    }

    auto schedule = dfg::moduloSchedule(kernel, mii,
                                        arch.memoryIssueCapacity());
    cgra::Mrrg mrrg(arch, mii);
    mapper::MappingState state(kernel, mrrg, *schedule);
    if (!mapper::Router::replayMapping(state, attempt.placements)) {
        std::printf("replaying the mapping failed\n");
        return 1;
    }

    std::printf("%s mapped onto %s at II=%d\n\n", kernel_name.c_str(),
                arch.name().c_str(), mii);
    std::printf("%s\n", mapper::renderMappingGrid(state).c_str());

    // Configuration bitstream.
    const Bitstream bitstream = generateBitstream(state);
    std::printf("configuration assembly:\n%s\n",
                bitstreamToText(bitstream).c_str());

    // Cycle-accurate execution vs the golden model.
    const auto provider = sim::defaultProvider();
    const sim::FabricSimResult run =
        sim::simulateFabric(state, iterations, provider);
    std::printf("fabric executed %lld cycles, %zu stores\n",
                static_cast<long long>(run.cycles), run.stores.size());

    const std::string divergence =
        sim::compareWithReference(state, iterations, provider);
    if (!divergence.empty()) {
        std::printf("MISMATCH vs reference interpreter: %s\n",
                    divergence.c_str());
        return 1;
    }
    std::printf("fabric output matches the reference interpreter over "
                "%lld iterations\n",
                static_cast<long long>(iterations));
    return 0;
}
