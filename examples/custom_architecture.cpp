/**
 * @file
 * Define your own CGRA fabric and map onto it - the portability story
 * of the paper (§4.6): no per-architecture compiler changes, just a new
 * Architecture description.
 *
 * Builds a 4x6 fabric with mesh + diagonal links where only the two
 * outer columns can access memory, then compiles a stencil kernel onto
 * it with both the exact mapper and MapZero.
 */

#include <cstdio>

#include "core/agent_cache.hpp"
#include "core/compiler.hpp"
#include "dfg/kernels.hpp"

int
main()
{
    using namespace mapzero;

    // A custom fabric: 4x6, mesh+diagonal, memory only on the edges.
    cgra::Architecture arch(
        "custom4x6", 4, 6,
        cgra::linkMask({cgra::Interconnect::Mesh,
                        cgra::Interconnect::Diagonal}));
    for (std::int32_t r = 0; r < arch.rows(); ++r) {
        for (std::int32_t c = 1; c + 1 < arch.cols(); ++c)
            arch.pe(arch.peAt(r, c)).memory = false;
    }
    std::printf("fabric '%s': %d PEs, %d memory-capable\n",
                arch.name().c_str(), arch.peCount(),
                arch.memoryPeCount());

    const dfg::Dfg kernel = dfg::buildKernel("conv3");
    std::printf("kernel '%s': %d ops (%d memory), MII=%d\n",
                kernel.name().c_str(), kernel.nodeCount(),
                kernel.memoryOpCount(),
                Compiler::minimumIi(kernel, arch));

    Compiler compiler;
    PretrainBudget budget;
    budget.episodes = 10;
    budget.seconds = 10.0;
    compiler.setNetwork(pretrainedNetwork(arch, budget));

    CompileOptions options;
    options.timeLimitSeconds = 20.0;
    for (Method m : {Method::Ilp, Method::MapZero}) {
        const CompileResult r =
            compiler.compile(kernel, arch, m, options);
        std::printf("%-12s -> %s, II=%d, %.3fs\n", methodName(m),
                    r.success ? "ok" : "failed", r.ii, r.seconds);
        if (r.success) {
            // Check that every load/store landed on a memory column.
            for (dfg::NodeId v = 0; v < kernel.nodeCount(); ++v) {
                if (dfg::opClass(kernel.node(v).opcode) !=
                    dfg::OpClass::Memory)
                    continue;
                const auto pe =
                    r.placements[static_cast<std::size_t>(v)].pe;
                const std::int32_t col = arch.colOf(pe);
                if (col != 0 && col != arch.cols() - 1) {
                    std::printf("  !! memory op %d on non-memory "
                                "column %d\n",
                                v, col);
                    return 1;
                }
            }
            std::printf("  all %d memory ops on memory columns\n",
                        kernel.memoryOpCount());
        }
    }
    return 0;
}
