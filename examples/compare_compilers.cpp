/**
 * @file
 * Compare all four compilation engines on one kernel/fabric pair - the
 * scenario of the paper's evaluation in miniature. Prints II, time,
 * and search effort for MapZero, the exact (ILP stand-in) mapper, SA,
 * and LISA.
 *
 * Usage: compare_compilers [kernel] [fabric]
 *   kernel: any Table-2 name (default "conv2")
 *   fabric: hrea | morphosys | adres | hycube | hetero (default hrea)
 */

#include <cstdio>
#include <string>

#include "core/agent_cache.hpp"
#include "core/compiler.hpp"
#include "dfg/kernels.hpp"

namespace {

mapzero::cgra::Architecture
fabricByName(const std::string &name)
{
    using mapzero::cgra::Architecture;
    if (name == "morphosys")
        return Architecture::morphosys();
    if (name == "adres")
        return Architecture::adres();
    if (name == "hycube")
        return Architecture::hycube();
    if (name == "hetero")
        return Architecture::heterogeneous();
    return Architecture::hrea();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mapzero;

    const std::string kernel_name = argc > 1 ? argv[1] : "conv2";
    const std::string fabric_name = argc > 2 ? argv[2] : "hrea";

    const dfg::Dfg kernel = dfg::buildKernel(kernel_name);
    const cgra::Architecture arch = fabricByName(fabric_name);

    std::printf("%s (%d ops) on %s; MII=%d\n", kernel.name().c_str(),
                kernel.nodeCount(), arch.name().c_str(),
                Compiler::minimumIi(kernel, arch));

    Compiler compiler;
    PretrainBudget budget;
    budget.episodes = 10;
    budget.seconds = 10.0;
    compiler.setNetwork(pretrainedNetwork(arch, budget));

    CompileOptions options;
    options.timeLimitSeconds = 15.0;

    std::printf("%-16s %-6s %-10s %-12s %s\n", "method", "II",
                "seconds", "searchOps", "status");
    for (Method m : {Method::MapZero, Method::Ilp, Method::Sa,
                     Method::Lisa}) {
        const CompileResult r =
            compiler.compile(kernel, arch, m, options);
        std::printf("%-16s %-6s %-10.3f %-12lld %s\n", methodName(m),
                    r.success ? std::to_string(r.ii).c_str() : "-",
                    r.seconds, static_cast<long long>(r.searchOps),
                    r.success ? "ok"
                              : (r.timedOut ? "timeout" : "failed"));
    }
    return 0;
}
