/**
 * @file
 * Quickstart: map one loop kernel onto a CGRA with MapZero.
 *
 *   1. build (or load) a DFG,
 *   2. pick a target fabric,
 *   3. pre-train (or reuse) an agent for that fabric,
 *   4. compile and inspect the mapping.
 */

#include <cstdio>

#include "core/agent_cache.hpp"
#include "core/compiler.hpp"
#include "dfg/dot.hpp"
#include "dfg/kernels.hpp"

int
main()
{
    using namespace mapzero;

    // 1. A DFG: here the "mac" benchmark kernel; you can also parse a
    //    DOT file with dfg::fromDot() or assemble one with Dfg::addNode.
    const dfg::Dfg kernel = dfg::buildKernel("mac");
    std::printf("kernel '%s': %d ops, %d dependencies\n",
                kernel.name().c_str(), kernel.nodeCount(),
                kernel.edgeCount());

    // 2. A target fabric: the HReA preset (4x4, richly connected).
    const cgra::Architecture arch = cgra::Architecture::hrea();
    std::printf("fabric '%s': %dx%d, %zu links\n", arch.name().c_str(),
                arch.rows(), arch.cols(), arch.linkList().size());

    // 3. An agent. pretrainedNetwork() trains a small curriculum on
    //    first use and caches the result for the process lifetime.
    Compiler compiler;
    PretrainBudget budget;
    budget.episodes = 8;
    budget.seconds = 10.0;
    compiler.setNetwork(pretrainedNetwork(arch, budget));

    // 4. Compile: the MII sweep starts at max(ResMII, RecMII).
    CompileOptions options;
    options.timeLimitSeconds = 20.0;
    const CompileResult result =
        compiler.compile(kernel, arch, Method::MapZero, options);

    if (!result.success) {
        std::printf("mapping failed within %.1fs\n",
                    options.timeLimitSeconds);
        return 1;
    }

    std::printf("mapped at II=%d (MII=%d) in %.3fs with %lld "
                "backtracks\n",
                result.ii, result.mii, result.seconds,
                static_cast<long long>(result.searchOps));
    std::printf("\n op -> (PE, time):\n");
    for (dfg::NodeId v = 0; v < kernel.nodeCount(); ++v) {
        const auto &p = result.placements[static_cast<std::size_t>(v)];
        std::printf("  %-3d %-6s -> (PE%-2d r%d c%d, t=%d)\n", v,
                    dfg::opcodeName(kernel.node(v).opcode), p.pe,
                    arch.rowOf(p.pe), arch.colOf(p.pe), p.time);
    }
    return 0;
}
