/**
 * @file
 * Kernel explorer: inspect any Table-2 benchmark DFG - schedule, MII
 * across fabrics, DOT export - the front half of the compilation flow.
 *
 * Usage: kernel_explorer [kernel] [--dot]
 */

#include <cstdio>
#include <cstring>

#include "core/compiler.hpp"
#include "dfg/dot.hpp"
#include "dfg/kernels.hpp"
#include "dfg/schedule.hpp"

int
main(int argc, char **argv)
{
    using namespace mapzero;

    const std::string name = argc > 1 ? argv[1] : "arf";
    const bool emit_dot =
        argc > 2 && std::strcmp(argv[2], "--dot") == 0;

    const dfg::Dfg kernel = dfg::buildKernel(name);
    std::printf("kernel '%s': %d ops, %d deps, %d memory ops, "
                "RecMII=%d\n",
                kernel.name().c_str(), kernel.nodeCount(),
                kernel.edgeCount(), kernel.memoryOpCount(),
                dfg::recMii(kernel));

    // MII across the Table-1 fabrics.
    std::printf("\n%-16s %-8s %-8s\n", "fabric", "ResMII", "MII");
    for (const auto &arch : cgra::Architecture::table1Presets()) {
        std::printf("%-16s %-8d %-8d\n", arch.name().c_str(),
                    dfg::resMii(kernel, arch.peCount(),
                                arch.memoryIssueCapacity()),
                    Compiler::minimumIi(kernel, arch));
    }

    // Modulo schedule at the HReA MII.
    const cgra::Architecture hrea = cgra::Architecture::hrea();
    const std::int32_t mii = Compiler::minimumIi(kernel, hrea);
    const auto schedule = dfg::moduloSchedule(kernel, mii);
    if (schedule) {
        std::printf("\nschedule at II=%d: length %d cycles\n", mii,
                    schedule->length());
        std::printf("ops per modulo slot:");
        for (std::int32_t s = 0; s < mii; ++s)
            std::printf(" %d", schedule->nodesInModuloSlot(s));
        std::printf(" (PE budget per slot: %d)\n", hrea.peCount());
    }

    if (emit_dot)
        std::printf("\n%s", toDot(kernel).c_str());
    return 0;
}
