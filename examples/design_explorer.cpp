/**
 * @file
 * Design-space exploration (paper §4.8): specialize a fabric for a
 * kernel set by adding/removing PEs, interconnect styles, and memory
 * ports, trading achieved II against area and wiring.
 *
 * Usage: design_explorer [kernel ...]   (default: sum mac conv2)
 */

#include <cstdio>
#include <string>
#include <vector>

#include "dfg/kernels.hpp"
#include "dse/explorer.hpp"

int
main(int argc, char **argv)
{
    using namespace mapzero;

    std::vector<std::string> names;
    for (int i = 1; i < argc; ++i)
        names.emplace_back(argv[i]);
    if (names.empty())
        names = {"sum", "mac", "conv2"};

    std::vector<dfg::Dfg> kernels;
    std::printf("kernel set:");
    for (const auto &name : names) {
        kernels.push_back(dfg::buildKernel(name));
        std::printf(" %s(%d ops)", name.c_str(),
                    kernels.back().nodeCount());
    }
    std::printf("\n\n");

    dse::DseConfig config;
    config.steps = 10;
    config.restarts = 1;
    config.compileTimeLimit = 1.5;
    dse::DseExplorer explorer(kernels, config);

    dse::DesignPoint start;
    start.rows = 6;
    start.cols = 6;
    start.memColumns = 6;
    std::printf("start:   %-28s cost %.2f\n",
                start.describe().c_str(),
                explorer.evaluate(start).cost);

    const dse::DseResult result = explorer.explore(start);
    std::printf("\nvisited %zu design points:\n", result.trace.size());
    for (const auto &eval : result.trace) {
        std::printf("  %-28s cost %.2f  II:",
                    eval.point.describe().c_str(), eval.cost);
        for (std::int32_t ii : eval.achievedIi)
            std::printf(" %d", ii);
        std::printf("\n");
    }
    std::printf("\nbest:    %-28s cost %.2f\n",
                result.best.point.describe().c_str(), result.best.cost);
    return 0;
}
