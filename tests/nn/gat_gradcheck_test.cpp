/**
 * @file
 * End-to-end numeric gradient check of a full GAT layer: verifies that
 * the composition of the fused attention primitives (segment softmax,
 * attention aggregation) with the dense ops differentiates correctly
 * through a realistic loss, parameter by parameter.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "nn/gat.hpp"

namespace mapzero::nn {
namespace {

TEST(GatGradCheck, FullLayerMatchesNumericGradient)
{
    Rng rng(123);
    GatLayer layer(3, 4, 2, 0.2f, rng);
    Rng feat_rng(7);
    const Tensor feats = Tensor::uniform(5, 3, -1.0f, 1.0f, feat_rng);
    const EdgeList edges{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4},
                         {4, 1}};

    auto loss_value = [&]() {
        Value out =
            layer.forward(Value::constant(feats), edges,
                          Activation::Tanh);
        return sumAll(square(out));
    };

    // Analytic gradients.
    layer.zeroGrad();
    loss_value().backward();
    const auto named = layer.namedParameters();

    // Numeric check on a sample of coordinates of every parameter.
    const float eps = 1e-3f;
    for (const auto &[name, param] : named) {
        Tensor &w = param.node()->value;
        const Tensor analytic = param.grad();
        const std::size_t stride = std::max<std::size_t>(
            1, w.size() / 4); // 4 probes per tensor
        for (std::size_t i = 0; i < w.size(); i += stride) {
            const float saved = w[i];
            w[i] = saved + eps;
            const float f_plus = loss_value().item();
            w[i] = saved - eps;
            const float f_minus = loss_value().item();
            w[i] = saved;
            const float numeric = (f_plus - f_minus) / (2.0f * eps);
            EXPECT_NEAR(analytic[i], numeric,
                        5e-2f * std::max(1.0f, std::fabs(numeric)))
                << name << "[" << i << "]";
        }
    }
}

TEST(GatGradCheck, TwoLayerEncoderGradsFinite)
{
    Rng rng(321);
    GatEncoder encoder(4, 4, 2, 2, rng);
    Rng feat_rng(11);
    const Tensor feats = Tensor::uniform(6, 4, -1.0f, 1.0f, feat_rng);
    const EdgeList edges{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}};

    encoder.zeroGrad();
    Value loss = sumAll(square(
        encoder.encodeGraph(Value::constant(feats), edges)));
    loss.backward();

    for (const auto &p : encoder.parameters()) {
        const Tensor &g = p.grad();
        for (std::size_t i = 0; i < g.size(); ++i)
            EXPECT_TRUE(std::isfinite(g[i]));
    }
}

} // namespace
} // namespace mapzero::nn
