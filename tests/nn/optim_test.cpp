/** @file Unit tests for optimizers, clipping, and LR schedules. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "nn/layers.hpp"
#include "nn/optim.hpp"

namespace mapzero::nn {
namespace {

/** Minimize ||p - target||^2; any sane optimizer must converge. */
template <typename MakeOpt>
float
convergeQuadratic(MakeOpt make_opt, int steps)
{
    Value p = Value::parameter(Tensor(1, 2, {5.0f, -3.0f}));
    const Tensor target(1, 2, {1.0f, 2.0f});
    auto opt = make_opt(std::vector<Value>{p});
    for (int i = 0; i < steps; ++i) {
        opt->zeroGrad();
        Value loss =
            sumAll(square(sub(p, Value::constant(target))));
        loss.backward();
        opt->step();
    }
    Tensor diff = p.tensor();
    diff.addInPlace([&] {
        Tensor t = target;
        t.scaleInPlace(-1.0f);
        return t;
    }());
    return diff.norm();
}

TEST(Sgd, ConvergesOnQuadratic)
{
    const float err = convergeQuadratic(
        [](std::vector<Value> params) {
            return std::make_unique<Sgd>(std::move(params), 0.05f);
        },
        200);
    EXPECT_LT(err, 1e-3f);
}

TEST(Sgd, MomentumConverges)
{
    const float err = convergeQuadratic(
        [](std::vector<Value> params) {
            return std::make_unique<Sgd>(std::move(params), 0.02f, 0.9f);
        },
        200);
    EXPECT_LT(err, 1e-3f);
}

TEST(Adam, ConvergesOnQuadratic)
{
    const float err = convergeQuadratic(
        [](std::vector<Value> params) {
            return std::make_unique<Adam>(std::move(params), 0.1f);
        },
        300);
    EXPECT_LT(err, 1e-2f);
}

TEST(Optimizer, ZeroGradClears)
{
    Value p = Value::parameter(Tensor(1, 2, {1.0f, 1.0f}));
    Sgd opt({p}, 0.1f);
    Value loss = sumAll(square(p));
    loss.backward();
    EXPECT_GT(p.grad().norm(), 0.0f);
    opt.zeroGrad();
    EXPECT_FLOAT_EQ(p.grad().norm(), 0.0f);
}

TEST(Optimizer, EmptyParamsPanics)
{
    EXPECT_THROW(Sgd({}, 0.1f), std::logic_error);
}

TEST(ClipGradNorm, ScalesDownLargeGradients)
{
    Value p = Value::parameter(Tensor(1, 2, {0.0f, 0.0f}));
    p.node()->ensureGrad();
    p.node()->grad.at(0, 0) = 30.0f;
    p.node()->grad.at(0, 1) = 40.0f; // norm 50
    const float norm = clipGradNorm({p}, 5.0f);
    EXPECT_FLOAT_EQ(norm, 50.0f);
    EXPECT_NEAR(p.grad().norm(), 5.0f, 1e-4f);
}

TEST(ClipGradNorm, LeavesSmallGradientsAlone)
{
    Value p = Value::parameter(Tensor(1, 2, {0.0f, 0.0f}));
    p.node()->ensureGrad();
    p.node()->grad.at(0, 0) = 0.3f;
    clipGradNorm({p}, 5.0f);
    EXPECT_NEAR(p.grad().norm(), 0.3f, 1e-6f);
}

TEST(WarmupDecaySchedule, RampsThenDecays)
{
    WarmupDecaySchedule sched(1.0f, 10, 0.9f, 0.01f);
    EXPECT_NEAR(sched.at(0), 0.1f, 1e-5f);
    EXPECT_NEAR(sched.at(9), 1.0f, 1e-5f);
    EXPECT_NEAR(sched.at(10), 1.0f, 1e-5f);
    EXPECT_NEAR(sched.at(11), 0.9f, 1e-5f);
    EXPECT_LT(sched.at(50), sched.at(11));
}

TEST(WarmupDecaySchedule, RespectsFloor)
{
    WarmupDecaySchedule sched(1.0f, 0, 0.5f, 0.25f);
    EXPECT_NEAR(sched.at(100), 0.25f, 1e-6f);
}

TEST(WarmupDecaySchedule, ApplyAdvances)
{
    WarmupDecaySchedule sched(1.0f, 2, 0.9f, 0.01f);
    Value p = Value::parameter(Tensor(1, 1, {0.0f}));
    Sgd opt({p}, 0.0f);
    sched.apply(opt);
    EXPECT_NEAR(opt.learningRate(), 0.5f, 1e-5f);
    sched.apply(opt);
    EXPECT_NEAR(opt.learningRate(), 1.0f, 1e-5f);
    EXPECT_EQ(sched.step(), 2u);
}

TEST(WarmupDecaySchedule, BadDecayPanics)
{
    EXPECT_THROW(WarmupDecaySchedule(1.0f, 0, 1.5f, 0.1f),
                 std::logic_error);
}

TEST(WarmupDecaySchedule, SetStepRepositions)
{
    WarmupDecaySchedule walked(1.0f, 5, 0.9f, 0.01f);
    WarmupDecaySchedule jumped(1.0f, 5, 0.9f, 0.01f);
    Value p = Value::parameter(Tensor(1, 1, {0.0f}));
    Sgd a({p}, 0.0f), b({p}, 0.0f);
    for (int i = 0; i < 25; ++i)
        walked.apply(a);
    jumped.setStep(20);
    for (int i = 0; i < 5; ++i)
        jumped.apply(b);
    EXPECT_EQ(walked.step(), jumped.step());
    EXPECT_FLOAT_EQ(a.learningRate(), b.learningRate());
}

/** One ||p||^2 gradient step (deterministic, grads depend on p). */
void
quadraticStep(Optimizer &opt, Value &p)
{
    opt.zeroGrad();
    Value loss = sumAll(square(p));
    loss.backward();
    opt.step();
}

TEST(Adam, StateRoundTripContinuesIdentically)
{
    Value warm = Value::parameter(
        Tensor(2, 3, {0.5f, -1.0f, 2.0f, 0.25f, -0.75f, 1.5f}));
    Adam original({warm}, 0.05f);
    for (int i = 0; i < 3; ++i)
        quadraticStep(original, warm);

    const AdamState snap = original.exportState();
    EXPECT_EQ(snap.step, 3u);
    EXPECT_EQ(original.stepCount(), 3u);
    const Tensor at_export = warm.tensor();

    // A resumed optimizer (same weights + imported moments) must track
    // the original bit for bit; a fresh one (zeroed moments) must not.
    Value resumed_p = Value::parameter(at_export);
    Adam resumed({resumed_p}, 0.05f);
    resumed.importState(snap);
    EXPECT_EQ(resumed.stepCount(), 3u);

    Value fresh_p = Value::parameter(at_export);
    Adam fresh({fresh_p}, 0.05f);

    for (int i = 0; i < 4; ++i) {
        quadraticStep(original, warm);
        quadraticStep(resumed, resumed_p);
        quadraticStep(fresh, fresh_p);
    }
    bool fresh_diverged = false;
    for (std::size_t j = 0; j < warm.tensor().size(); ++j) {
        ASSERT_EQ(warm.tensor()[j], resumed_p.tensor()[j]) << j;
        fresh_diverged =
            fresh_diverged || warm.tensor()[j] != fresh_p.tensor()[j];
    }
    EXPECT_TRUE(fresh_diverged);
}

TEST(Adam, ImportRejectsMismatchedState)
{
    Value p = Value::parameter(Tensor(1, 3, {1.0f, 2.0f, 3.0f}));
    Adam opt({p}, 0.01f);
    quadraticStep(opt, p);

    AdamState wrong_count = opt.exportState();
    wrong_count.firstMoments.clear();
    EXPECT_THROW(opt.importState(wrong_count), std::runtime_error);

    AdamState wrong_shape = opt.exportState();
    wrong_shape.secondMoments[0] = Tensor(1, 4);
    EXPECT_THROW(opt.importState(wrong_shape), std::runtime_error);
}

} // namespace
} // namespace mapzero::nn
