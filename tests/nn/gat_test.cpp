/** @file Unit tests for the GAT layer and encoder. */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/gat.hpp"

namespace mapzero::nn {
namespace {

TEST(GatLayer, OutputShape)
{
    Rng rng(1);
    GatLayer layer(5, 8, 4, 0.2f, rng);
    EXPECT_EQ(layer.outWidth(), 32u);

    Value feats = Value::constant(Tensor(3, 5));
    const EdgeList edges{{0, 1}, {1, 2}};
    const Tensor out = layer.forward(feats, edges).tensor();
    EXPECT_EQ(out.rows(), 3u);
    EXPECT_EQ(out.cols(), 32u);
}

TEST(GatLayer, IsolatedNodeStillGetsEmbedding)
{
    Rng rng(2);
    GatLayer layer(4, 4, 2, 0.2f, rng);
    Rng init(3);
    Value feats = Value::constant(Tensor::uniform(3, 4, 0.1f, 1.0f,
                                                  init));
    // Node 2 has no edges at all; self-loops keep it embedded.
    const EdgeList edges{{0, 1}};
    const Tensor out = layer.forward(feats, edges).tensor();
    float row2 = 0.0f;
    for (std::size_t c = 0; c < out.cols(); ++c)
        row2 += std::abs(out.at(2, c));
    EXPECT_GT(row2, 0.0f);
}

TEST(GatLayer, NeighborsInfluenceEmbedding)
{
    Rng rng(4);
    GatLayer layer(2, 4, 2, 0.2f, rng);
    Tensor feats_a(3, 2, {1, 0, 0, 1, 1, 1});
    Tensor feats_b = feats_a;
    feats_b.at(0, 0) = 5.0f; // change node 0's features

    const EdgeList edges{{0, 2}}; // node 0 feeds node 2
    const Tensor out_a =
        layer.forward(Value::constant(feats_a), edges).tensor();
    const Tensor out_b =
        layer.forward(Value::constant(feats_b), edges).tensor();

    float diff2 = 0.0f;
    for (std::size_t c = 0; c < out_a.cols(); ++c)
        diff2 += std::abs(out_a.at(2, c) - out_b.at(2, c));
    EXPECT_GT(diff2, 1e-6f)
        << "changing a neighbor must change the aggregated embedding";

    // Node 1 is not connected to node 0, so it must be unaffected.
    float diff1 = 0.0f;
    for (std::size_t c = 0; c < out_a.cols(); ++c)
        diff1 += std::abs(out_a.at(1, c) - out_b.at(1, c));
    EXPECT_LT(diff1, 1e-6f);
}

TEST(GatLayer, WrongFeatureWidthPanics)
{
    Rng rng(5);
    GatLayer layer(4, 4, 2, 0.2f, rng);
    Value feats = Value::constant(Tensor(3, 3));
    EXPECT_THROW(layer.forward(feats, {}), std::logic_error);
}

TEST(GatLayer, EdgeOutOfRangePanics)
{
    Rng rng(6);
    GatLayer layer(4, 4, 2, 0.2f, rng);
    Value feats = Value::constant(Tensor(3, 4));
    EXPECT_THROW(layer.forward(feats, {{0, 7}}), std::logic_error);
}

TEST(GatLayer, GradientsFlowThroughAttention)
{
    Rng rng(7);
    GatLayer layer(3, 4, 2, 0.2f, rng);
    Rng init(8);
    Value feats = Value::constant(Tensor::uniform(4, 3, -1.0f, 1.0f,
                                                  init));
    const EdgeList edges{{0, 1}, {1, 2}, {2, 3}, {0, 3}};
    Value loss = sumAll(square(layer.forward(feats, edges)));
    layer.zeroGrad();
    loss.backward();
    float grad_norm = 0.0f;
    for (const auto &p : layer.parameters())
        grad_norm += p.grad().norm();
    EXPECT_GT(grad_norm, 0.0f);
}

TEST(GatEncoder, StackedLayersAndPooling)
{
    Rng rng(9);
    GatEncoder encoder(6, 8, 4, 2, rng);
    EXPECT_EQ(encoder.outWidth(), 32u);

    Rng init(10);
    Value feats = Value::constant(Tensor::uniform(5, 6, -1.0f, 1.0f,
                                                  init));
    const EdgeList edges{{0, 1}, {1, 2}, {3, 4}};
    const Tensor nodes = encoder.encodeNodes(feats, edges).tensor();
    EXPECT_EQ(nodes.rows(), 5u);
    EXPECT_EQ(nodes.cols(), 32u);

    const Tensor graph = encoder.encodeGraph(feats, edges).tensor();
    EXPECT_EQ(graph.rows(), 1u);
    EXPECT_EQ(graph.cols(), 32u);
}

TEST(GatEncoder, InductiveAcrossGraphSizes)
{
    // The same encoder must handle graphs of different node counts
    // (inductive property the paper relies on for unseen DFGs).
    Rng rng(11);
    GatEncoder encoder(4, 4, 2, 2, rng);
    Rng init(12);
    Value small = Value::constant(Tensor::uniform(3, 4, -1, 1, init));
    Value large = Value::constant(Tensor::uniform(40, 4, -1, 1, init));
    EXPECT_NO_THROW(encoder.encodeGraph(small, {{0, 1}}));
    EXPECT_NO_THROW(encoder.encodeGraph(large, {{0, 39}, {5, 7}}));
}

TEST(GatEncoder, ZeroLayersPanics)
{
    Rng rng(13);
    EXPECT_THROW(GatEncoder(4, 4, 2, 0, rng), std::logic_error);
}

} // namespace
} // namespace mapzero::nn
