/**
 * @file
 * Inference fast-path tests: forwards run under nn::InferenceGuard must
 * be bit-identical to tape-building forwards, arena buffers must be
 * recycled across passes, and guarded values must refuse backward().
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "nn/autograd.hpp"
#include "nn/gat.hpp"
#include "nn/layers.hpp"
#include "nn/tensor.hpp"

namespace mapzero::nn {
namespace {

Tensor
randomTensor(std::size_t rows, std::size_t cols, std::uint64_t seed)
{
    Rng rng(seed);
    return Tensor::uniform(rows, cols, -1.0f, 1.0f, rng);
}

/** Bitwise comparison via float equality (NaN-free networks). */
void
expectIdentical(const Tensor &a, const Tensor &b)
{
    ASSERT_TRUE(a.sameShape(b))
        << a.shapeString() << " vs " << b.shapeString();
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << "element " << i;
}

TEST(Inference, GuardNests)
{
    EXPECT_FALSE(InferenceGuard::active());
    {
        InferenceGuard outer;
        EXPECT_TRUE(InferenceGuard::active());
        {
            InferenceGuard inner;
            EXPECT_TRUE(InferenceGuard::active());
        }
        EXPECT_TRUE(InferenceGuard::active());
    }
    EXPECT_FALSE(InferenceGuard::active());
}

TEST(Inference, MlpForwardBitIdentical)
{
    Rng rng(7);
    const Mlp mlp({6, 16, 8, 3}, Activation::ReLU, Activation::Tanh,
                  rng);
    for (std::uint64_t seed = 100; seed < 108; ++seed) {
        const Tensor x = randomTensor(5, 6, seed);
        const Tensor tape = mlp.forward(Value::constant(x)).tensor();
        Tensor guarded;
        {
            InferenceGuard guard;
            guarded = Tensor(mlp.forward(Value::constant(x)).tensor());
        }
        expectIdentical(tape, guarded);
    }
}

TEST(Inference, GatEncoderForwardBitIdentical)
{
    Rng rng(11);
    const GatEncoder encoder(4, 8, 2, 2, rng);
    const EdgeList edges{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {1, 3}};
    for (std::uint64_t seed = 200; seed < 206; ++seed) {
        const Tensor feats = randomTensor(4, 4, seed);
        const Tensor tape =
            encoder.encodeGraph(Value::constant(feats), edges).tensor();
        Tensor guarded;
        {
            InferenceGuard guard;
            guarded = Tensor(
                encoder.encodeGraph(Value::constant(feats), edges)
                    .tensor());
        }
        expectIdentical(tape, guarded);
    }
}

TEST(Inference, PolicyOpsBitIdentical)
{
    const Tensor logits = randomTensor(1, 9, 42);
    const std::vector<bool> mask{true,  false, true, true, false,
                                 true,  true,  false, true};
    const Tensor tape =
        logSoftmaxMasked(Value::constant(logits), mask).tensor();
    Tensor guarded;
    {
        InferenceGuard guard;
        guarded = Tensor(
            logSoftmaxMasked(Value::constant(logits), mask).tensor());
    }
    expectIdentical(tape, guarded);
}

TEST(Inference, ArenaRecyclesBuffers)
{
    Rng rng(13);
    const Mlp mlp({8, 32, 32, 4}, Activation::ReLU, Activation::None,
                  rng);
    const Tensor x = randomTensor(3, 8, 77);

    TensorArena &arena = TensorArena::thisThread();
    {
        // Warm-up pass fills the pool as its intermediates die.
        InferenceGuard guard;
        mlp.forward(Value::constant(x));
    }
    const std::uint64_t heap_before = arena.heapAllocations();
    const std::uint64_t reuse_before = arena.reuses();
    {
        InferenceGuard guard;
        mlp.forward(Value::constant(x));
        mlp.forward(Value::constant(x));
    }
    EXPECT_GT(arena.reuses(), reuse_before);
    // Steady state: every acquire is served from the pool.
    EXPECT_EQ(arena.heapAllocations(), heap_before);
}

TEST(Inference, BackwardOnGuardedValuePanics)
{
    // A 1x1 matmul result: scalar-sized, but arena-backed.
    Value loss;
    {
        InferenceGuard guard;
        loss = matmul(Value::constant(randomTensor(1, 3, 5)),
                      Value::constant(randomTensor(3, 1, 8)));
    }
    ASSERT_EQ(loss.tensor().size(), 1u);
    EXPECT_THROW(loss.backward(), std::logic_error);
}

TEST(Inference, TapeStillWorksAfterGuard)
{
    // Leaving inference mode must fully restore the training path.
    const Tensor x = randomTensor(2, 2, 6);
    {
        InferenceGuard guard;
        sumAll(square(Value::constant(x)));
    }
    Value p = Value::parameter(x);
    sumAll(square(p)).backward();
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_FLOAT_EQ(p.grad()[i], 2.0f * x[i]);
}

} // namespace
} // namespace mapzero::nn
