/** @file Unit tests for Linear and Mlp layers. */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/layers.hpp"

namespace mapzero::nn {
namespace {

TEST(Linear, ShapesAndParameterCount)
{
    Rng rng(1);
    Linear layer(4, 3, rng);
    EXPECT_EQ(layer.inFeatures(), 4u);
    EXPECT_EQ(layer.outFeatures(), 3u);
    // weight 4x3 + bias 1x3
    EXPECT_EQ(layer.parameterCount(), 4u * 3u + 3u);

    Value x = Value::constant(Tensor(2, 4));
    const Tensor y = layer.forward(x).tensor();
    EXPECT_EQ(y.rows(), 2u);
    EXPECT_EQ(y.cols(), 3u);
}

TEST(Linear, ZeroInputYieldsBias)
{
    Rng rng(2);
    Linear layer(3, 2, rng);
    Value x = Value::constant(Tensor(1, 3));
    const Tensor y = layer.forward(x).tensor();
    // Bias starts at zero.
    EXPECT_FLOAT_EQ(y.at(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(y.at(0, 1), 0.0f);
}

TEST(Linear, GradientsFlowToWeights)
{
    Rng rng(3);
    Linear layer(2, 2, rng);
    Value x = Value::constant(Tensor(1, 2, {1.0f, -1.0f}));
    Value loss = sumAll(square(layer.forward(x)));
    layer.zeroGrad();
    loss.backward();
    float grad_norm = 0.0f;
    for (const auto &p : layer.parameters())
        grad_norm += p.grad().norm();
    EXPECT_GT(grad_norm, 0.0f);
}

TEST(Mlp, StackedShapes)
{
    Rng rng(4);
    Mlp mlp({8, 16, 4}, Activation::ReLU, Activation::None, rng);
    Value x = Value::constant(Tensor(3, 8));
    const Tensor y = mlp.forward(x).tensor();
    EXPECT_EQ(y.rows(), 3u);
    EXPECT_EQ(y.cols(), 4u);
}

TEST(Mlp, SingleLayerDegenerate)
{
    Rng rng(5);
    Mlp mlp({4, 2}, Activation::ReLU, Activation::Tanh, rng);
    Value x = Value::constant(Tensor(1, 4, {1, 2, 3, 4}));
    const Tensor y = mlp.forward(x).tensor();
    for (std::size_t i = 0; i < y.size(); ++i) {
        EXPECT_LE(y[i], 1.0f);
        EXPECT_GE(y[i], -1.0f);
    }
}

TEST(Mlp, TooFewDimsPanics)
{
    Rng rng(6);
    EXPECT_THROW(Mlp({4}, Activation::ReLU, Activation::None, rng),
                 std::logic_error);
}

TEST(Mlp, NamedParametersAreHierarchical)
{
    Rng rng(7);
    Mlp mlp({4, 4, 2}, Activation::ReLU, Activation::None, rng);
    const auto named = mlp.namedParameters();
    ASSERT_EQ(named.size(), 4u); // 2 layers x (weight, bias)
    EXPECT_EQ(named[0].first, "fc0.weight");
    EXPECT_EQ(named[3].first, "fc1.bias");
}

TEST(Activation, NoneIsIdentity)
{
    Value x = Value::constant(Tensor(1, 2, {-1.0f, 2.0f}));
    const Tensor y = activate(x, Activation::None).tensor();
    EXPECT_FLOAT_EQ(y[0], -1.0f);
    EXPECT_FLOAT_EQ(y[1], 2.0f);
}

TEST(Activation, ReluClampsNegatives)
{
    Value x = Value::constant(Tensor(1, 2, {-1.0f, 2.0f}));
    const Tensor y = activate(x, Activation::ReLU).tensor();
    EXPECT_FLOAT_EQ(y[0], 0.0f);
    EXPECT_FLOAT_EQ(y[1], 2.0f);
}

} // namespace
} // namespace mapzero::nn
