/** @file Unit tests for the Tensor type. */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/tensor.hpp"

namespace mapzero::nn {
namespace {

TEST(Tensor, DefaultIsScalarZero)
{
    Tensor t;
    EXPECT_EQ(t.rank(), 0u);
    EXPECT_EQ(t.size(), 1u);
    EXPECT_FLOAT_EQ(t.item(), 0.0f);
}

TEST(Tensor, ScalarConstruction)
{
    Tensor t(2.5f);
    EXPECT_EQ(t.rank(), 0u);
    EXPECT_FLOAT_EQ(t.item(), 2.5f);
}

TEST(Tensor, VectorConstruction)
{
    Tensor t(std::vector<float>{1.0f, 2.0f, 3.0f});
    EXPECT_EQ(t.rank(), 1u);
    EXPECT_EQ(t.cols(), 3u);
    EXPECT_FLOAT_EQ(t[1], 2.0f);
}

TEST(Tensor, MatrixConstructionAndAccess)
{
    Tensor t(2, 3);
    EXPECT_EQ(t.rank(), 2u);
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.cols(), 3u);
    t.at(1, 2) = 7.0f;
    EXPECT_FLOAT_EQ(t.at(1, 2), 7.0f);
    EXPECT_FLOAT_EQ(t[5], 7.0f); // row-major flat index
}

TEST(Tensor, MatrixFromValues)
{
    Tensor t(2, 2, {1, 2, 3, 4});
    EXPECT_FLOAT_EQ(t.at(0, 1), 2.0f);
    EXPECT_FLOAT_EQ(t.at(1, 0), 3.0f);
}

TEST(Tensor, MatrixFromWrongSizePanics)
{
    EXPECT_THROW(Tensor(2, 2, {1, 2, 3}), std::logic_error);
}

TEST(Tensor, ZerosLikeCopiesShape)
{
    Tensor t(3, 4, std::vector<float>(12, 5.0f));
    Tensor z = Tensor::zerosLike(t);
    EXPECT_TRUE(z.sameShape(t));
    EXPECT_FLOAT_EQ(z.sum(), 0.0f);
}

TEST(Tensor, FullFills)
{
    Tensor t = Tensor::full(2, 2, 3.0f);
    EXPECT_FLOAT_EQ(t.sum(), 12.0f);
}

TEST(Tensor, UniformInRange)
{
    Rng rng(5);
    Tensor t = Tensor::uniform(10, 10, -0.5f, 0.5f, rng);
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_GE(t[i], -0.5f);
        EXPECT_LT(t[i], 0.5f);
    }
}

TEST(Tensor, AddInPlace)
{
    Tensor a(1, 3, {1, 2, 3});
    Tensor b(1, 3, {10, 20, 30});
    a.addInPlace(b);
    EXPECT_FLOAT_EQ(a.at(0, 2), 33.0f);
}

TEST(Tensor, AddInPlaceShapeMismatchPanics)
{
    Tensor a(1, 3);
    Tensor b(3, 1);
    EXPECT_THROW(a.addInPlace(b), std::logic_error);
}

TEST(Tensor, ScaleInPlace)
{
    Tensor a(1, 2, {2, 4});
    a.scaleInPlace(0.5f);
    EXPECT_FLOAT_EQ(a.at(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(a.at(0, 1), 2.0f);
}

TEST(Tensor, NormIsL2)
{
    Tensor a(1, 2, {3, 4});
    EXPECT_FLOAT_EQ(a.norm(), 5.0f);
}

TEST(Tensor, ItemOnNonScalarPanics)
{
    Tensor a(2, 2);
    EXPECT_THROW(a.item(), std::logic_error);
}

TEST(Tensor, ShapeString)
{
    EXPECT_EQ(Tensor().shapeString(), "[scalar]");
    EXPECT_EQ(Tensor(std::vector<float>{1, 2}).shapeString(), "[2]");
    EXPECT_EQ(Tensor(3, 4).shapeString(), "[3x4]");
}

} // namespace
} // namespace mapzero::nn
