/**
 * @file
 * Autograd tests: every op's analytic gradient is verified against a
 * central-difference numerical gradient.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.hpp"
#include "nn/autograd.hpp"

namespace mapzero::nn {
namespace {

/**
 * Numerically check dLoss/dParam for a scalar-valued function of one
 * parameter tensor.
 */
void
checkGradient(Tensor param_init,
              const std::function<Value(const Value &)> &fn,
              float tolerance = 2e-2f)
{
    Value param = Value::parameter(param_init);
    Value loss = fn(param);
    ASSERT_EQ(loss.tensor().size(), 1u);
    loss.backward();
    const Tensor analytic = param.grad();

    const float eps = 1e-3f;
    for (std::size_t i = 0; i < param_init.size(); ++i) {
        Tensor plus = param_init;
        plus[i] += eps;
        Tensor minus = param_init;
        minus[i] -= eps;
        const float f_plus = fn(Value::parameter(plus)).item();
        const float f_minus = fn(Value::parameter(minus)).item();
        const float numeric = (f_plus - f_minus) / (2.0f * eps);
        EXPECT_NEAR(analytic[i], numeric,
                    tolerance * std::max(1.0f, std::fabs(numeric)))
            << "grad mismatch at flat index " << i;
    }
}

Tensor
randomTensor(std::size_t rows, std::size_t cols, std::uint64_t seed)
{
    Rng rng(seed);
    return Tensor::uniform(rows, cols, -1.0f, 1.0f, rng);
}

TEST(Autograd, MatmulForward)
{
    Value a = Value::constant(Tensor(2, 2, {1, 2, 3, 4}));
    Value b = Value::constant(Tensor(2, 2, {5, 6, 7, 8}));
    const Tensor c = matmul(a, b).tensor();
    EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
    EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
    EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(Autograd, MatmulGradLeft)
{
    const Tensor b = randomTensor(3, 2, 1);
    checkGradient(randomTensor(2, 3, 2), [&b](const Value &p) {
        return sumAll(matmul(p, Value::constant(b)));
    });
}

TEST(Autograd, MatmulGradRight)
{
    const Tensor a = randomTensor(2, 3, 3);
    checkGradient(randomTensor(3, 2, 4), [&a](const Value &p) {
        return sumAll(matmul(Value::constant(a), p));
    });
}

TEST(Autograd, AddGrad)
{
    const Tensor b = randomTensor(2, 3, 5);
    checkGradient(randomTensor(2, 3, 6), [&b](const Value &p) {
        return sumAll(square(add(p, Value::constant(b))));
    });
}

TEST(Autograd, AddBroadcastBiasGrad)
{
    const Tensor x = randomTensor(4, 3, 7);
    checkGradient(randomTensor(1, 3, 8), [&x](const Value &p) {
        return sumAll(square(add(Value::constant(x), p)));
    });
}

TEST(Autograd, SubGrad)
{
    const Tensor b = randomTensor(2, 2, 9);
    checkGradient(randomTensor(2, 2, 10), [&b](const Value &p) {
        return sumAll(square(sub(p, Value::constant(b))));
    });
}

TEST(Autograd, MulElemGrad)
{
    const Tensor b = randomTensor(2, 3, 11);
    checkGradient(randomTensor(2, 3, 12), [&b](const Value &p) {
        return sumAll(mulElem(p, Value::constant(b)));
    });
}

TEST(Autograd, ScaleGrad)
{
    checkGradient(randomTensor(2, 2, 13), [](const Value &p) {
        return sumAll(scale(p, -2.5f));
    });
}

TEST(Autograd, LeakyReluForwardAndGrad)
{
    Value x = Value::constant(Tensor(1, 2, {-2.0f, 3.0f}));
    const Tensor y = leakyRelu(x, 0.1f).tensor();
    EXPECT_FLOAT_EQ(y[0], -0.2f);
    EXPECT_FLOAT_EQ(y[1], 3.0f);

    checkGradient(randomTensor(2, 3, 14), [](const Value &p) {
        return sumAll(leakyRelu(p, 0.2f));
    });
}

TEST(Autograd, TanhGrad)
{
    checkGradient(randomTensor(2, 2, 15), [](const Value &p) {
        return sumAll(tanhOp(p));
    });
}

TEST(Autograd, SquareGrad)
{
    checkGradient(randomTensor(2, 2, 16), [](const Value &p) {
        return sumAll(square(p));
    });
}

TEST(Autograd, ConcatColsForward)
{
    Value a = Value::constant(Tensor(2, 1, {1, 2}));
    Value b = Value::constant(Tensor(2, 2, {3, 4, 5, 6}));
    const Tensor c = concatCols({a, b}).tensor();
    EXPECT_EQ(c.cols(), 3u);
    EXPECT_FLOAT_EQ(c.at(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(c.at(0, 2), 4.0f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 5.0f);
}

TEST(Autograd, ConcatColsGrad)
{
    const Tensor b = randomTensor(2, 2, 17);
    checkGradient(randomTensor(2, 3, 18), [&b](const Value &p) {
        return sumAll(square(concatCols({p, Value::constant(b)})));
    });
}

TEST(Autograd, GatherRowsForward)
{
    Value a = Value::constant(Tensor(3, 2, {1, 2, 3, 4, 5, 6}));
    const Tensor g = gatherRows(a, {2, 0, 2}).tensor();
    EXPECT_EQ(g.rows(), 3u);
    EXPECT_FLOAT_EQ(g.at(0, 0), 5.0f);
    EXPECT_FLOAT_EQ(g.at(1, 1), 2.0f);
    EXPECT_FLOAT_EQ(g.at(2, 1), 6.0f);
}

TEST(Autograd, GatherRowsGradWithRepeats)
{
    checkGradient(randomTensor(3, 2, 19), [](const Value &p) {
        return sumAll(square(gatherRows(p, {0, 2, 2, 1})));
    });
}

TEST(Autograd, MeanRowsGrad)
{
    checkGradient(randomTensor(4, 3, 20), [](const Value &p) {
        return sumAll(square(meanRows(p)));
    });
}

TEST(Autograd, SumAllAndMeanAll)
{
    Value a = Value::constant(Tensor(2, 2, {1, 2, 3, 4}));
    EXPECT_FLOAT_EQ(sumAll(a).item(), 10.0f);
    EXPECT_FLOAT_EQ(meanAll(a).item(), 2.5f);
}

TEST(Autograd, LogSoftmaxMaskedForward)
{
    Value logits = Value::constant(Tensor(1, 3, {1.0f, 2.0f, 3.0f}));
    const std::vector<bool> mask{true, false, true};
    const Tensor lp = logSoftmaxMasked(logits, mask).tensor();
    // Probabilities over entries 0 and 2 only.
    const float p0 = std::exp(lp[0]);
    const float p2 = std::exp(lp[2]);
    EXPECT_NEAR(p0 + p2, 1.0f, 1e-5f);
    EXPECT_LT(lp[1], -1e8f);
    EXPECT_GT(p2, p0);
}

TEST(Autograd, LogSoftmaxMaskedGrad)
{
    const std::vector<bool> mask{true, true, false, true};
    // Weighted policy-loss style objective.
    const Tensor pi(1, 4, {0.2f, 0.5f, 0.0f, 0.3f});
    checkGradient(randomTensor(1, 4, 21), [&](const Value &p) {
        return scale(sumAll(mulElem(Value::constant(pi),
                                    logSoftmaxMasked(p, mask))),
                     -1.0f);
    });
}

TEST(Autograd, LogSoftmaxAllMaskedPanics)
{
    Value logits = Value::constant(Tensor(1, 2, {1.0f, 2.0f}));
    EXPECT_THROW(logSoftmaxMasked(logits, {false, false}),
                 std::logic_error);
}

TEST(Autograd, LogSoftmaxSingleLegalAction)
{
    // One legal entry: its probability is exactly 1, so its
    // log-probability is exactly 0 and its gradient identically 0
    // (d logp/d logit = 1 - p = 0).
    const std::vector<bool> mask{false, true, false};
    Value logits = Value::parameter(Tensor(1, 3, {0.3f, -2.0f, 5.0f}));
    Value logp = logSoftmaxMasked(logits, mask);
    EXPECT_EQ(logp.tensor()[1], 0.0f);
    EXPECT_FLOAT_EQ(logp.tensor()[0], -1e9f);
    EXPECT_FLOAT_EQ(logp.tensor()[2], -1e9f);

    sumAll(logp).backward();
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(logits.grad()[i], 0.0f) << i;
}

TEST(Autograd, LinearFusedForwardMatchesComposed)
{
    const Tensor xt = randomTensor(3, 4, 31);
    const Tensor wt = randomTensor(4, 5, 32);
    const Tensor bt = randomTensor(1, 5, 33);
    const Value x = Value::constant(xt), w = Value::constant(wt),
                b = Value::constant(bt);

    const Tensor plain = linearFused(x, w, b, false).tensor();
    const Tensor composed = add(matmul(x, w), b).tensor();
    const Tensor fused_relu = linearFused(x, w, b, true).tensor();
    const Tensor composed_relu = relu(add(matmul(x, w), b)).tensor();
    for (std::size_t i = 0; i < plain.size(); ++i) {
        EXPECT_EQ(plain[i], composed[i]) << i;
        EXPECT_EQ(fused_relu[i], composed_relu[i]) << i;
    }
}

TEST(Autograd, LinearFusedBackwardMatchesComposed)
{
    const Tensor xt = randomTensor(3, 4, 34);
    const Tensor wt = randomTensor(4, 5, 35);
    const Tensor bt = randomTensor(1, 5, 36);

    Value xf = Value::parameter(xt), wf = Value::parameter(wt),
          bf = Value::parameter(bt);
    sumAll(linearFused(xf, wf, bf, true)).backward();

    Value xc = Value::parameter(xt), wc = Value::parameter(wt),
          bc = Value::parameter(bt);
    sumAll(relu(add(matmul(xc, wc), bc))).backward();

    for (std::size_t i = 0; i < xt.size(); ++i)
        EXPECT_FLOAT_EQ(xf.grad()[i], xc.grad()[i]) << "dX " << i;
    for (std::size_t i = 0; i < wt.size(); ++i)
        EXPECT_FLOAT_EQ(wf.grad()[i], wc.grad()[i]) << "dW " << i;
    for (std::size_t i = 0; i < bt.size(); ++i)
        EXPECT_FLOAT_EQ(bf.grad()[i], bc.grad()[i]) << "db " << i;
}

TEST(Autograd, LinearFusedNumericGrad)
{
    const Tensor x = randomTensor(2, 3, 37);
    const Tensor b = randomTensor(1, 4, 38);
    checkGradient(randomTensor(3, 4, 39), [&](const Value &p) {
        return sumAll(linearFused(Value::constant(x), p,
                                  Value::constant(b), true));
    });
}

TEST(Autograd, SegmentSoftmaxForwardNormalizesPerSegment)
{
    // Edges 0,1 -> segment 0; edge 2 -> segment 1.
    Value scores = Value::constant(Tensor(3, 2, {1, 0, 2, 0, 5, 5}));
    const Tensor alpha =
        segmentSoftmax(scores, {0, 0, 1}, 2).tensor();
    EXPECT_NEAR(alpha.at(0, 0) + alpha.at(1, 0), 1.0f, 1e-5f);
    EXPECT_NEAR(alpha.at(0, 1) + alpha.at(1, 1), 1.0f, 1e-5f);
    EXPECT_NEAR(alpha.at(2, 0), 1.0f, 1e-5f);
    EXPECT_NEAR(alpha.at(2, 1), 1.0f, 1e-5f);
    EXPECT_GT(alpha.at(1, 0), alpha.at(0, 0));
}

TEST(Autograd, SegmentSoftmaxGrad)
{
    const std::vector<std::int32_t> segments{0, 0, 1, 1, 1};
    const Tensor weights = randomTensor(5, 2, 22);
    checkGradient(randomTensor(5, 2, 23), [&](const Value &p) {
        return sumAll(mulElem(Value::constant(weights),
                              segmentSoftmax(p, segments, 2)));
    });
}

TEST(Autograd, AttentionAggregateForward)
{
    // 2 edges into node 0, 1 head, feature width 2.
    Value values = Value::constant(Tensor(2, 2, {1, 2, 3, 4}));
    Value alpha = Value::constant(Tensor(2, 1, {0.25f, 0.75f}));
    const Tensor out =
        attentionAggregate(values, alpha, {0, 0}, 2).tensor();
    EXPECT_FLOAT_EQ(out.at(0, 0), 0.25f * 1 + 0.75f * 3);
    EXPECT_FLOAT_EQ(out.at(0, 1), 0.25f * 2 + 0.75f * 4);
    EXPECT_FLOAT_EQ(out.at(1, 0), 0.0f);
}

TEST(Autograd, AttentionAggregateGradValues)
{
    const Tensor alpha = randomTensor(4, 2, 24);
    const std::vector<std::int32_t> dst{0, 1, 1, 2};
    checkGradient(randomTensor(4, 6, 25), [&](const Value &p) {
        return sumAll(square(attentionAggregate(
            p, Value::constant(alpha), dst, 3)));
    });
}

TEST(Autograd, AttentionAggregateGradAlpha)
{
    const Tensor values = randomTensor(4, 6, 26);
    const std::vector<std::int32_t> dst{0, 1, 1, 2};
    checkGradient(randomTensor(4, 2, 27), [&](const Value &p) {
        return sumAll(square(attentionAggregate(
            Value::constant(values), p, dst, 3)));
    });
}

TEST(Autograd, GradAccumulatesOverSharedUse)
{
    // y = p + p should give gradient 2 everywhere.
    Value p = Value::parameter(Tensor(1, 2, {1.0f, 2.0f}));
    Value loss = sumAll(add(p, p));
    loss.backward();
    EXPECT_FLOAT_EQ(p.grad()[0], 2.0f);
    EXPECT_FLOAT_EQ(p.grad()[1], 2.0f);
}

TEST(Autograd, BackwardOnNonScalarPanics)
{
    Value p = Value::parameter(Tensor(2, 2));
    EXPECT_THROW(p.backward(), std::logic_error);
}

TEST(Autograd, ConstantsReceiveNoGradient)
{
    Value c = Value::constant(Tensor(1, 2, {1, 2}));
    Value p = Value::parameter(Tensor(1, 2, {3, 4}));
    Value loss = sumAll(mulElem(c, p));
    loss.backward();
    EXPECT_FALSE(c.node()->gradReady);
    EXPECT_TRUE(p.node()->gradReady);
}

} // namespace
} // namespace mapzero::nn
