/** @file Unit tests for module checkpointing. */

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <vector>

#include "common/crc32.hpp"
#include "common/rng.hpp"
#include "nn/layers.hpp"
#include "nn/serialize.hpp"

namespace mapzero::nn {
namespace {

std::vector<float>
flatWeights(const Module &module)
{
    std::vector<float> out;
    for (const auto &named : module.namedParameters())
        for (std::size_t j = 0; j < named.second.tensor().size(); ++j)
            out.push_back(named.second.tensor()[j]);
    return out;
}

/** A serialized container for a small deterministic MLP. */
std::string
checkpointBytes(std::uint64_t seed = 10)
{
    Rng rng(seed);
    Mlp m({4, 8, 2}, Activation::ReLU, Activation::None, rng);
    std::stringstream buffer;
    saveModule(m, buffer);
    return buffer.str();
}

/** Expect the corrupt @p bytes to be rejected without a partial load. */
void
expectRejectedWithoutPartialLoad(const std::string &bytes)
{
    Rng rng(11);
    Mlp victim({4, 8, 2}, Activation::ReLU, Activation::None, rng);
    const std::vector<float> before = flatWeights(victim);
    std::stringstream in(bytes);
    EXPECT_THROW(loadModule(victim, in), std::runtime_error);
    EXPECT_EQ(flatWeights(victim), before);
}

TEST(Serialize, RoundTripRestoresWeights)
{
    Rng rng(1);
    Mlp source({4, 8, 2}, Activation::ReLU, Activation::None, rng);

    std::stringstream buffer;
    saveModule(source, buffer);

    Rng rng2(999); // different init
    Mlp restored({4, 8, 2}, Activation::ReLU, Activation::None, rng2);
    loadModule(restored, buffer);

    const auto a = source.namedParameters();
    const auto b = restored.namedParameters();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].second.tensor().size(),
                  b[i].second.tensor().size());
        for (std::size_t j = 0; j < a[i].second.tensor().size(); ++j)
            EXPECT_FLOAT_EQ(a[i].second.tensor()[j],
                            b[i].second.tensor()[j]);
    }
}

TEST(Serialize, RoundTripPreservesForwardOutputs)
{
    Rng rng(2);
    Mlp source({3, 6, 1}, Activation::Tanh, Activation::None, rng);
    std::stringstream buffer;
    saveModule(source, buffer);

    Rng rng2(3);
    Mlp restored({3, 6, 1}, Activation::Tanh, Activation::None, rng2);
    loadModule(restored, buffer);

    Value x = Value::constant(Tensor(1, 3, {0.5f, -0.2f, 0.9f}));
    EXPECT_FLOAT_EQ(source.forward(x).item(), restored.forward(x).item());
}

TEST(Serialize, ShapeMismatchIsFatal)
{
    Rng rng(4);
    Mlp source({4, 8, 2}, Activation::ReLU, Activation::None, rng);
    std::stringstream buffer;
    saveModule(source, buffer);

    Mlp other({4, 9, 2}, Activation::ReLU, Activation::None, rng);
    EXPECT_THROW(loadModule(other, buffer), std::runtime_error);
}

TEST(Serialize, CountMismatchIsFatal)
{
    Rng rng(5);
    Mlp source({4, 2}, Activation::ReLU, Activation::None, rng);
    std::stringstream buffer;
    saveModule(source, buffer);

    Mlp other({4, 4, 2}, Activation::ReLU, Activation::None, rng);
    EXPECT_THROW(loadModule(other, buffer), std::runtime_error);
}

TEST(Serialize, GarbageStreamIsFatal)
{
    std::stringstream buffer("definitely not a checkpoint");
    Rng rng(6);
    Mlp m({2, 2}, Activation::ReLU, Activation::None, rng);
    EXPECT_THROW(loadModule(m, buffer), std::runtime_error);
}

TEST(Serialize, MissingFileIsFatal)
{
    Rng rng(7);
    Mlp m({2, 2}, Activation::ReLU, Activation::None, rng);
    EXPECT_THROW(loadModule(m, "/nonexistent/path/net.bin"),
                 std::runtime_error);
}

TEST(Serialize, TruncatedCheckpointIsRejected)
{
    const std::string bytes = checkpointBytes();
    // Every truncation point must fail cleanly, header included.
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{3}, std::size_t{11},
          bytes.size() / 2, bytes.size() - 1})
        expectRejectedWithoutPartialLoad(bytes.substr(0, keep));
}

TEST(Serialize, BitFlippedCheckpointIsRejected)
{
    const std::string bytes = checkpointBytes();
    // Flip one bit in the header, the payload, and the CRC footer.
    for (const std::size_t at :
         {std::size_t{5}, bytes.size() / 2, bytes.size() - 2}) {
        std::string corrupt = bytes;
        corrupt[at] = static_cast<char>(corrupt[at] ^ 0x10);
        expectRejectedWithoutPartialLoad(corrupt);
    }
}

TEST(Serialize, WrongContainerVersionIsRejected)
{
    // Rewrite the version field (bytes 4..8, little-endian) to a
    // future version and re-stamp the CRC footer so only the version
    // check can fire.
    std::string bytes = checkpointBytes();
    ASSERT_GE(bytes.size(), 16u);
    bytes[4] = 99;
    bytes[5] = bytes[6] = bytes[7] = 0;
    const std::uint32_t crc =
        crc32(bytes.data(), bytes.size() - 4);
    for (int i = 0; i < 4; ++i)
        bytes[bytes.size() - 4 + static_cast<std::size_t>(i)] =
            static_cast<char>((crc >> (8 * i)) & 0xFF);
    expectRejectedWithoutPartialLoad(bytes);
}

TEST(Serialize, ShapeMismatchLeavesTargetUntouched)
{
    // CRC-valid container for a different architecture: the two-pass
    // load must reject it before writing any tensor.
    Rng rng(12);
    Mlp source({4, 9, 2}, Activation::ReLU, Activation::None, rng);
    std::stringstream buffer;
    saveModule(source, buffer);

    Rng rng2(13);
    Mlp victim({4, 8, 2}, Activation::ReLU, Activation::None, rng2);
    const std::vector<float> before = flatWeights(victim);
    EXPECT_THROW(loadModule(victim, buffer), std::runtime_error);
    EXPECT_EQ(flatWeights(victim), before);
}

TEST(Serialize, FileSaveIsAtomicAndLeavesNoTempFile)
{
    const std::string path =
        ::testing::TempDir() + "/serialize_atomic_test.ckpt";
    std::filesystem::remove(path);
    std::filesystem::remove(path + ".tmp");

    Rng rng(14);
    Mlp source({3, 5, 2}, Activation::Tanh, Activation::None, rng);
    saveModule(source, path);
    EXPECT_TRUE(std::filesystem::exists(path));
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

    Rng rng2(15);
    Mlp restored({3, 5, 2}, Activation::Tanh, Activation::None, rng2);
    loadModule(restored, path);
    EXPECT_EQ(flatWeights(restored), flatWeights(source));
    std::filesystem::remove(path);
}

TEST(CheckpointContainer, SectionRoundTrip)
{
    ByteWriter alpha;
    alpha.u32(7);
    alpha.str("hello");
    alpha.f64(1.5);
    ByteWriter beta;
    beta.i32(-3);

    CheckpointWriter writer;
    writer.addSection("alpha", alpha.take());
    writer.addSection("beta", beta.take());
    CheckpointReader reader(writer.finish(), "unit test");

    EXPECT_TRUE(reader.hasSection("alpha"));
    EXPECT_TRUE(reader.hasSection("beta"));
    EXPECT_FALSE(reader.hasSection("gamma"));
    EXPECT_THROW(reader.section("gamma"), std::runtime_error);

    ByteReader a(reader.section("alpha"), "alpha");
    EXPECT_EQ(a.u32(), 7u);
    EXPECT_EQ(a.str(), "hello");
    EXPECT_DOUBLE_EQ(a.f64(), 1.5);
    a.expectEnd();

    ByteReader b(reader.section("beta"), "beta");
    EXPECT_EQ(b.i32(), -3);
    b.expectEnd();
}

TEST(CheckpointContainer, DuplicateSectionIsPanic)
{
    CheckpointWriter writer;
    writer.addSection("twice", "x");
    EXPECT_THROW(writer.addSection("twice", "y"), std::logic_error);
}

TEST(CheckpointContainer, ByteReaderBoundsChecked)
{
    ByteWriter w;
    w.u32(1);
    const std::string payload = w.take();
    ByteReader r(payload, "bounds test");
    EXPECT_EQ(r.u32(), 1u);
    EXPECT_EQ(r.remaining(), 0u);
    EXPECT_THROW(r.u64(), std::runtime_error);

    ByteReader trailing(payload, "trailing test");
    EXPECT_THROW(trailing.expectEnd(), std::runtime_error);
}

} // namespace
} // namespace mapzero::nn
