/** @file Unit tests for module checkpointing. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "nn/layers.hpp"
#include "nn/serialize.hpp"

namespace mapzero::nn {
namespace {

TEST(Serialize, RoundTripRestoresWeights)
{
    Rng rng(1);
    Mlp source({4, 8, 2}, Activation::ReLU, Activation::None, rng);

    std::stringstream buffer;
    saveModule(source, buffer);

    Rng rng2(999); // different init
    Mlp restored({4, 8, 2}, Activation::ReLU, Activation::None, rng2);
    loadModule(restored, buffer);

    const auto a = source.namedParameters();
    const auto b = restored.namedParameters();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].second.tensor().size(),
                  b[i].second.tensor().size());
        for (std::size_t j = 0; j < a[i].second.tensor().size(); ++j)
            EXPECT_FLOAT_EQ(a[i].second.tensor()[j],
                            b[i].second.tensor()[j]);
    }
}

TEST(Serialize, RoundTripPreservesForwardOutputs)
{
    Rng rng(2);
    Mlp source({3, 6, 1}, Activation::Tanh, Activation::None, rng);
    std::stringstream buffer;
    saveModule(source, buffer);

    Rng rng2(3);
    Mlp restored({3, 6, 1}, Activation::Tanh, Activation::None, rng2);
    loadModule(restored, buffer);

    Value x = Value::constant(Tensor(1, 3, {0.5f, -0.2f, 0.9f}));
    EXPECT_FLOAT_EQ(source.forward(x).item(), restored.forward(x).item());
}

TEST(Serialize, ShapeMismatchIsFatal)
{
    Rng rng(4);
    Mlp source({4, 8, 2}, Activation::ReLU, Activation::None, rng);
    std::stringstream buffer;
    saveModule(source, buffer);

    Mlp other({4, 9, 2}, Activation::ReLU, Activation::None, rng);
    EXPECT_THROW(loadModule(other, buffer), std::runtime_error);
}

TEST(Serialize, CountMismatchIsFatal)
{
    Rng rng(5);
    Mlp source({4, 2}, Activation::ReLU, Activation::None, rng);
    std::stringstream buffer;
    saveModule(source, buffer);

    Mlp other({4, 4, 2}, Activation::ReLU, Activation::None, rng);
    EXPECT_THROW(loadModule(other, buffer), std::runtime_error);
}

TEST(Serialize, GarbageStreamIsFatal)
{
    std::stringstream buffer("definitely not a checkpoint");
    Rng rng(6);
    Mlp m({2, 2}, Activation::ReLU, Activation::None, rng);
    EXPECT_THROW(loadModule(m, buffer), std::runtime_error);
}

TEST(Serialize, MissingFileIsFatal)
{
    Rng rng(7);
    Mlp m({2, 2}, Activation::ReLU, Activation::None, rng);
    EXPECT_THROW(loadModule(m, "/nonexistent/path/net.bin"),
                 std::runtime_error);
}

} // namespace
} // namespace mapzero::nn
