/** @file Unit tests for fabric symmetry analysis (data augmentation). */

#include <gtest/gtest.h>

#include <set>

#include "cgra/symmetry.hpp"

namespace mapzero::cgra {
namespace {

TEST(Symmetry, IdentityIsAlwaysValidAndFirst)
{
    for (const Architecture &a : Architecture::table1Presets()) {
        const auto syms = gridSymmetries(a);
        ASSERT_FALSE(syms.empty()) << a.name();
        for (PeId p = 0; p < a.peCount(); ++p)
            EXPECT_EQ(syms.front()[static_cast<std::size_t>(p)], p);
    }
}

TEST(Symmetry, AllReturnedAreAutomorphisms)
{
    for (const Architecture &a : Architecture::table1Presets()) {
        for (const auto &perm : gridSymmetries(a))
            EXPECT_TRUE(isAutomorphism(a, perm)) << a.name();
    }
}

TEST(Symmetry, SquareHomogeneousFabricHasDihedralGroup)
{
    // 8x8 baseline (mesh+1hop+diag, no torus): full dihedral-4 group.
    const auto syms = gridSymmetries(Architecture::baseline8());
    EXPECT_GE(syms.size(), 8u);
}

TEST(Symmetry, ToroidalFabricHasTranslations)
{
    // HReA is 4x4 toroidal: translations add up to 16 shifts.
    const auto syms = gridSymmetries(Architecture::hrea());
    EXPECT_GT(syms.size(), 16u);
}

TEST(Symmetry, RowBusRestrictsGroup)
{
    // ADRES: row-shared bus; transforms mixing rows within a column
    // orientation change (e.g. transpose) must be rejected.
    const Architecture adres = Architecture::adres();
    const auto syms = gridSymmetries(adres);
    for (const auto &perm : syms) {
        for (std::int32_t r = 0; r < adres.rows(); ++r) {
            const std::int32_t target = adres.rowOf(
                perm[static_cast<std::size_t>(adres.peAt(r, 0))]);
            for (std::int32_t c = 1; c < adres.cols(); ++c)
                EXPECT_EQ(adres.rowOf(perm[static_cast<std::size_t>(
                              adres.peAt(r, c))]),
                          target);
        }
    }
}

TEST(Symmetry, HeterogeneousFabricHasSmallGroup)
{
    // Capability differences kill most transforms.
    const Architecture h = Architecture::heterogeneous();
    const auto syms = gridSymmetries(h);
    EXPECT_GE(syms.size(), 1u);
    EXPECT_LE(syms.size(), 4u);
    for (const auto &perm : syms)
        EXPECT_TRUE(isAutomorphism(h, perm));
}

TEST(Symmetry, NonAutomorphismRejected)
{
    const Architecture a = Architecture::baseline8();
    // Swapping two arbitrary PEs is not an automorphism of a mesh.
    PePermutation perm(static_cast<std::size_t>(a.peCount()));
    for (PeId p = 0; p < a.peCount(); ++p)
        perm[static_cast<std::size_t>(p)] = p;
    std::swap(perm[0], perm[27]);
    EXPECT_FALSE(isAutomorphism(a, perm));
}

TEST(Symmetry, NonBijectionRejected)
{
    const Architecture a = Architecture::hrea();
    PePermutation perm(static_cast<std::size_t>(a.peCount()), 0);
    EXPECT_FALSE(isAutomorphism(a, perm));
}

TEST(Symmetry, ComposeWorks)
{
    const Architecture a = Architecture::baseline8();
    const auto syms = gridSymmetries(a);
    ASSERT_GE(syms.size(), 2u);
    const auto composed = compose(syms[1], syms[1]);
    EXPECT_TRUE(isAutomorphism(a, composed));
}

TEST(Symmetry, NoDuplicatesReturned)
{
    const auto syms = gridSymmetries(Architecture::hrea());
    std::set<PePermutation> unique(syms.begin(), syms.end());
    EXPECT_EQ(unique.size(), syms.size());
}

} // namespace
} // namespace mapzero::cgra
