/** @file Unit tests for the CGRA architecture model (Table 1 presets). */

#include <gtest/gtest.h>

#include <algorithm>

#include "cgra/architecture.hpp"

namespace mapzero::cgra {
namespace {

TEST(Architecture, GridIndexing)
{
    Architecture a("t", 3, 4, linkMask({Interconnect::Mesh}));
    EXPECT_EQ(a.peCount(), 12);
    EXPECT_EQ(a.peAt(1, 2), 6);
    EXPECT_EQ(a.rowOf(6), 1);
    EXPECT_EQ(a.colOf(6), 2);
}

TEST(Architecture, MeshNeighbors)
{
    Architecture a("t", 3, 3, linkMask({Interconnect::Mesh}));
    // Center PE has 4 neighbors; corner has 2.
    EXPECT_EQ(a.neighborsOut(a.peAt(1, 1)).size(), 4u);
    EXPECT_EQ(a.neighborsOut(a.peAt(0, 0)).size(), 2u);
    EXPECT_TRUE(a.connected(a.peAt(0, 0), a.peAt(0, 1)));
    EXPECT_FALSE(a.connected(a.peAt(0, 0), a.peAt(1, 1)));
}

TEST(Architecture, OneHopAddsSkipLinks)
{
    Architecture a("t", 4, 4,
                   linkMask({Interconnect::Mesh, Interconnect::OneHop}));
    EXPECT_TRUE(a.connected(a.peAt(0, 0), a.peAt(0, 2)));
    EXPECT_TRUE(a.connected(a.peAt(0, 0), a.peAt(2, 0)));
    EXPECT_FALSE(a.connected(a.peAt(0, 0), a.peAt(0, 3)));
}

TEST(Architecture, DiagonalLinks)
{
    Architecture a("t", 3, 3,
                   linkMask({Interconnect::Mesh,
                             Interconnect::Diagonal}));
    EXPECT_TRUE(a.connected(a.peAt(0, 0), a.peAt(1, 1)));
    EXPECT_TRUE(a.connected(a.peAt(1, 1), a.peAt(0, 2)));
}

TEST(Architecture, ToroidalWrap)
{
    Architecture a("t", 4, 4,
                   linkMask({Interconnect::Mesh,
                             Interconnect::Toroidal}));
    EXPECT_TRUE(a.connected(a.peAt(0, 0), a.peAt(0, 3)));
    EXPECT_TRUE(a.connected(a.peAt(0, 0), a.peAt(3, 0)));
    // Every PE of a torus has the same degree.
    const std::size_t deg = a.neighborsOut(0).size();
    for (PeId p = 0; p < a.peCount(); ++p)
        EXPECT_EQ(a.neighborsOut(p).size(), deg);
}

TEST(Architecture, CrossbarUsesMeshAdjacency)
{
    Architecture a = Architecture::hycube();
    EXPECT_TRUE(a.isMultiHop());
    EXPECT_TRUE(a.connected(a.peAt(0, 0), a.peAt(0, 1)));
    EXPECT_FALSE(a.connected(a.peAt(0, 0), a.peAt(2, 2)));
}

TEST(Architecture, LinksAreBidirectionalPairs)
{
    for (const Architecture &a : Architecture::table1Presets()) {
        for (const auto &[src, dst] : a.linkList())
            EXPECT_TRUE(a.connected(dst, src))
                << a.name() << ": link " << src << "->" << dst
                << " has no reverse";
    }
}

TEST(Architecture, Table1PresetShapes)
{
    const Architecture hrea = Architecture::hrea();
    EXPECT_EQ(hrea.rows(), 4);
    EXPECT_TRUE(hrea.hasLink(Interconnect::Diagonal));
    EXPECT_TRUE(hrea.hasLink(Interconnect::Toroidal));

    const Architecture morphosys = Architecture::morphosys();
    EXPECT_EQ(morphosys.rows(), 8);
    EXPECT_FALSE(morphosys.hasLink(Interconnect::Diagonal));

    const Architecture adres = Architecture::adres();
    EXPECT_TRUE(adres.rowSharedMemoryBus());

    const Architecture b8 = Architecture::baseline8();
    EXPECT_EQ(b8.peCount(), 64);
    EXPECT_FALSE(b8.hasLink(Interconnect::Toroidal));

    const Architecture b16 = Architecture::baseline16();
    EXPECT_EQ(b16.peCount(), 256);

    const Architecture hycube = Architecture::hycube();
    EXPECT_TRUE(hycube.hasLink(Interconnect::Crossbar));
}

TEST(Architecture, DefaultPeHasPaperUnitInventory)
{
    const Architecture a = Architecture::hrea();
    const PeConfig &pe = a.pe(0);
    EXPECT_EQ(pe.constUnits, 5);
    EXPECT_EQ(pe.loadUnits, 2);
    EXPECT_EQ(pe.aluUnits, 1);
    EXPECT_EQ(pe.storeUnits, 1);
    EXPECT_EQ(pe.outputRegs, 1);
    EXPECT_TRUE(pe.memory);
}

TEST(Architecture, PeCapabilityGating)
{
    PeConfig pe;
    pe.logic = false;
    EXPECT_TRUE(pe.supports(dfg::Opcode::Add));
    EXPECT_FALSE(pe.supports(dfg::Opcode::And));
    pe.memory = false;
    EXPECT_FALSE(pe.supports(dfg::Opcode::Load));
}

TEST(Architecture, MemoryIssueCapacityWithRowBus)
{
    Architecture adres = Architecture::adres();
    // 4 rows, all memory-capable: bus capacity is one per row.
    EXPECT_EQ(adres.memoryIssueCapacity(), 4);
    Architecture hrea = Architecture::hrea();
    EXPECT_EQ(hrea.memoryIssueCapacity(), 16);
}

TEST(Architecture, HeterogeneousCapabilityMix)
{
    const Architecture h = Architecture::heterogeneous();
    EXPECT_EQ(h.peCount(), 16);
    EXPECT_GT(h.memoryPeCount(), 0);
    EXPECT_LT(h.memoryPeCount(), 16);
    // Column 0 is the memory column.
    for (std::int32_t r = 0; r < 4; ++r)
        EXPECT_TRUE(h.pe(h.peAt(r, 0)).memory);
    // Some PE must lack logic support (that is the point of Fig. 14).
    bool some_without_logic = false;
    for (PeId p = 0; p < h.peCount(); ++p)
        some_without_logic = some_without_logic || !h.pe(p).logic;
    EXPECT_TRUE(some_without_logic);
}

TEST(Architecture, InvalidGridIsFatal)
{
    EXPECT_THROW(Architecture("bad", 0, 4, 0), std::runtime_error);
}

} // namespace
} // namespace mapzero::cgra
