/** @file Unit tests for MRRG resource indexing. */

#include <gtest/gtest.h>

#include <set>

#include "cgra/mrrg.hpp"

namespace mapzero::cgra {
namespace {

TEST(Mrrg, ResourceCounts)
{
    const Architecture a = Architecture::hrea();
    const Mrrg mrrg(a, 3);
    EXPECT_EQ(mrrg.ii(), 3);
    EXPECT_EQ(mrrg.funcResourceCount(), 16 * 3);
    EXPECT_EQ(mrrg.regResourceCount(), 16 * 3);
    EXPECT_EQ(mrrg.wireResourceCount(), mrrg.linkCount() * 3);
}

TEST(Mrrg, SlotOfWrapsNegativeAndPositive)
{
    const Architecture a = Architecture::hrea();
    const Mrrg mrrg(a, 4);
    EXPECT_EQ(mrrg.slotOf(0), 0);
    EXPECT_EQ(mrrg.slotOf(5), 1);
    EXPECT_EQ(mrrg.slotOf(-1), 3);
}

TEST(Mrrg, IndicesAreUniquePerResource)
{
    const Architecture a = Architecture::hrea();
    const Mrrg mrrg(a, 2);
    std::set<std::int32_t> seen;
    for (PeId pe = 0; pe < a.peCount(); ++pe)
        for (std::int32_t s = 0; s < 2; ++s)
            EXPECT_TRUE(seen.insert(mrrg.funcIndex(pe, s)).second);
    EXPECT_EQ(static_cast<std::int32_t>(seen.size()),
              mrrg.funcResourceCount());
}

TEST(Mrrg, LinkLookupConsistent)
{
    const Architecture a = Architecture::hrea();
    const Mrrg mrrg(a, 1);
    for (LinkId l = 0; l < mrrg.linkCount(); ++l) {
        const auto &[src, dst] = mrrg.link(l);
        EXPECT_EQ(mrrg.linkBetween(src, dst), l);
    }
    // Unconnected pair returns -1 (non-adjacent on HReA: use same PE).
    EXPECT_EQ(mrrg.linkBetween(0, 0), -1);
}

TEST(Mrrg, LinksOutMatchesArchitecture)
{
    const Architecture a = Architecture::morphosys();
    const Mrrg mrrg(a, 1);
    for (PeId pe = 0; pe < a.peCount(); ++pe)
        EXPECT_EQ(mrrg.linksOut(pe).size(),
                  a.neighborsOut(pe).size());
}

TEST(Mrrg, InvalidIiIsFatal)
{
    const Architecture a = Architecture::hrea();
    EXPECT_THROW(Mrrg(a, 0), std::runtime_error);
}

} // namespace
} // namespace mapzero::cgra
