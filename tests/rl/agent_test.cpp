/** @file Unit tests for the MapZero inference agent. */

#include <gtest/gtest.h>

#include "dfg/kernels.hpp"
#include "dfg/schedule.hpp"
#include "mapper/validator.hpp"
#include "rl/agent.hpp"

namespace mapzero::rl {
namespace {

std::shared_ptr<MapZeroNet>
freshNet(const cgra::Architecture &arch, std::uint64_t seed)
{
    Rng rng(seed);
    return std::make_shared<MapZeroNet>(arch.peCount(), NetworkConfig{},
                                        rng);
}

TEST(MapZeroAgent, MapsSumOnHrea)
{
    const dfg::Dfg d = dfg::buildKernel("sum");
    cgra::Architecture arch = cgra::Architecture::hrea();
    const std::int32_t mii = dfg::minimumIi(d, arch.peCount(),
                                            arch.memoryIssueCapacity());
    MapZeroAgent agent(freshNet(arch, 1));
    const auto r = agent.map(d, arch, mii, Deadline(30.0));
    EXPECT_TRUE(r.success);
    EXPECT_EQ(r.placements.size(), static_cast<std::size_t>(8));
}

TEST(MapZeroAgent, MapsMacOnHycube)
{
    const dfg::Dfg d = dfg::buildKernel("mac");
    cgra::Architecture arch = cgra::Architecture::hycube();
    const std::int32_t mii = dfg::minimumIi(d, arch.peCount(),
                                            arch.memoryIssueCapacity());
    MapZeroAgent agent(freshNet(arch, 2));
    const auto r = agent.map(d, arch, mii, Deadline(30.0));
    EXPECT_TRUE(r.success) << "backtracks=" << r.searchOps;
}

TEST(MapZeroAgent, CountsBacktracks)
{
    const dfg::Dfg d = dfg::buildKernel("conv2");
    cgra::Architecture arch = cgra::Architecture::hrea();
    const std::int32_t mii = dfg::minimumIi(d, arch.peCount(),
                                            arch.memoryIssueCapacity());
    MapZeroAgent agent(freshNet(arch, 3));
    const auto r = agent.map(d, arch, mii, Deadline(30.0));
    EXPECT_EQ(agent.lastBacktracks(), r.searchOps);
    EXPECT_GE(r.searchOps, 0);
}

TEST(MapZeroAgent, InfeasibleIiFailsCleanly)
{
    dfg::Dfg d;
    const auto a = d.addNode(dfg::Opcode::Add);
    const auto b = d.addNode(dfg::Opcode::Add);
    const auto c = d.addNode(dfg::Opcode::Add);
    d.addEdge(a, b);
    d.addEdge(b, c);
    d.addEdge(c, a, 1); // RecMII 3
    cgra::Architecture arch = cgra::Architecture::hrea();
    MapZeroAgent agent(freshNet(arch, 4));
    const auto r = agent.map(d, arch, 2, Deadline(5.0));
    EXPECT_FALSE(r.success);
}

TEST(MapZeroAgent, PeCountMismatchIsFatal)
{
    const dfg::Dfg d = dfg::buildKernel("sum");
    cgra::Architecture hrea = cgra::Architecture::hrea();
    cgra::Architecture big = cgra::Architecture::baseline8();
    MapZeroAgent agent(freshNet(hrea, 5));
    EXPECT_THROW(agent.map(d, big, 1, Deadline(5.0)),
                 std::runtime_error);
}

TEST(MapZeroAgent, NoMctsAblationConfig)
{
    const dfg::Dfg d = dfg::buildKernel("sum");
    cgra::Architecture arch = cgra::Architecture::hrea();
    AgentConfig cfg;
    cfg.useMcts = false;
    MapZeroAgent agent(freshNet(arch, 6), cfg);
    const std::int32_t mii = dfg::minimumIi(d, arch.peCount(),
                                            arch.memoryIssueCapacity());
    // Guided search alone usually still succeeds on this easy case.
    const auto r = agent.map(d, arch, mii, Deadline(30.0));
    EXPECT_TRUE(r.success);
}

TEST(MapZeroAgent, NullNetworkIsFatal)
{
    EXPECT_THROW(MapZeroAgent(nullptr), std::runtime_error);
}

} // namespace
} // namespace mapzero::rl
