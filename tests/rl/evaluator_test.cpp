/** @file Unit tests for the evaluation services (batching parity). */

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "dfg/kernels.hpp"
#include "dfg/schedule.hpp"
#include "mapper/environment.hpp"
#include "rl/evaluator.hpp"
#include "rl/network.hpp"

namespace mapzero::rl {
namespace {

/** Observations along a first-legal-action rollout of @p kernel. */
std::vector<Observation>
rolloutObservations(const std::string &kernel,
                    const cgra::Architecture &arch)
{
    dfg::Dfg d = dfg::buildKernel(kernel);
    const std::int32_t mii =
        dfg::minimumIi(d, arch.peCount(), arch.memoryIssueCapacity());
    mapper::MapEnv env(d, arch, mii);
    std::vector<Observation> observations;
    while (!env.done() && env.legalActionCount() > 0) {
        observations.push_back(observe(env));
        const auto mask = env.actionMask();
        for (cgra::PeId pe = 0;
             pe < static_cast<cgra::PeId>(mask.size()); ++pe) {
            if (mask[static_cast<std::size_t>(pe)]) {
                env.step(pe);
                break;
            }
        }
    }
    return observations;
}

/** Largest absolute difference between two network outputs. */
double
outputDiff(const MapZeroNet::Output &a, const MapZeroNet::Output &b)
{
    EXPECT_EQ(a.logPolicy.tensor().size(), b.logPolicy.tensor().size());
    double diff = std::fabs(static_cast<double>(a.value.item()) -
                            static_cast<double>(b.value.item()));
    for (std::size_t i = 0; i < a.logPolicy.tensor().size(); ++i)
        diff = std::max(
            diff,
            std::fabs(static_cast<double>(a.logPolicy.tensor()[i]) -
                      static_cast<double>(b.logPolicy.tensor()[i])));
    return diff;
}

TEST(ForwardBatch, MatchesSequentialForward)
{
    cgra::Architecture arch = cgra::Architecture::hrea();
    Rng rng(21);
    MapZeroNet net(arch.peCount(), NetworkConfig{}, rng);

    // Mixed-size graphs in one batch: DFGs of different kernels plus
    // different depths of the same episode.
    std::vector<Observation> observations;
    for (const char *kernel : {"sum", "mac", "conv2"})
        for (auto &obs : rolloutObservations(kernel, arch))
            observations.push_back(std::move(obs));
    ASSERT_GT(observations.size(), 8u);

    std::vector<const Observation *> batch;
    for (const auto &obs : observations)
        batch.push_back(&obs);
    const auto batched = net.forwardBatch(batch);
    ASSERT_EQ(batched.size(), observations.size());

    double worst = 0.0;
    for (std::size_t i = 0; i < observations.size(); ++i)
        worst = std::max(worst, outputDiff(net.forward(observations[i]),
                                           batched[i]));
    // The stacked batch computes per-row exactly what the single pass
    // computes; tolerance covers any platform reassociation.
    EXPECT_LE(worst, 1e-6);
}

TEST(ForwardBatch, IndependentOfBatchComposition)
{
    cgra::Architecture arch = cgra::Architecture::hrea();
    Rng rng(22);
    MapZeroNet net(arch.peCount(), NetworkConfig{}, rng);
    const auto observations = rolloutObservations("mac", arch);
    ASSERT_GE(observations.size(), 3u);

    const auto &probe = observations.front();
    const auto alone = net.forwardBatch({&probe});
    std::vector<const Observation *> crowded;
    for (const auto &obs : observations)
        crowded.push_back(&obs);
    const auto together = net.forwardBatch(crowded);
    EXPECT_EQ(outputDiff(alone.front(), together.front()), 0.0)
        << "batch composition changed a result";
}

TEST(DirectEvaluator, PassesThroughToForward)
{
    cgra::Architecture arch = cgra::Architecture::hrea();
    Rng rng(23);
    MapZeroNet net(arch.peCount(), NetworkConfig{}, rng);
    DirectEvaluator evaluator(net);
    const auto observations = rolloutObservations("sum", arch);
    ASSERT_FALSE(observations.empty());
    EXPECT_EQ(outputDiff(evaluator.evaluate(observations.front()),
                         net.forward(observations.front())),
              0.0);
    EXPECT_EQ(&evaluator.network(), &net);
}

TEST(EvalBatcher, SingleSessionDegradesToDirect)
{
    cgra::Architecture arch = cgra::Architecture::hrea();
    Rng rng(24);
    MapZeroNet net(arch.peCount(), NetworkConfig{}, rng);
    EvalBatcher batcher(net, 8);
    EvalBatcher::Session session(batcher);
    for (const auto &obs : rolloutObservations("sum", arch))
        EXPECT_EQ(outputDiff(batcher.evaluate(obs), net.forward(obs)),
                  0.0);
}

TEST(EvalBatcher, ConcurrentSessionsGetTheirOwnResults)
{
    cgra::Architecture arch = cgra::Architecture::hrea();
    Rng rng(25);
    MapZeroNet net(arch.peCount(), NetworkConfig{}, rng);

    const std::vector<std::string> kernels = {"sum", "mac", "conv2",
                                              "accumulate"};
    std::vector<std::vector<Observation>> inputs;
    std::vector<std::vector<MapZeroNet::Output>> expected;
    for (const auto &kernel : kernels) {
        inputs.push_back(rolloutObservations(kernel, arch));
        std::vector<MapZeroNet::Output> outs;
        for (const auto &obs : inputs.back())
            outs.push_back(net.forward(obs));
        expected.push_back(std::move(outs));
    }

    EvalBatcher batcher(net, kernels.size());
    std::vector<double> worst(kernels.size(), 0.0);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kernels.size(); ++t) {
        threads.emplace_back([&, t] {
            EvalBatcher::Session session(batcher);
            for (std::size_t i = 0; i < inputs[t].size(); ++i)
                worst[t] = std::max(
                    worst[t], outputDiff(batcher.evaluate(inputs[t][i]),
                                         expected[t][i]));
        });
    }
    for (auto &thread : threads)
        thread.join();
    for (std::size_t t = 0; t < kernels.size(); ++t)
        EXPECT_EQ(worst[t], 0.0) << kernels[t];
}

} // namespace
} // namespace mapzero::rl
