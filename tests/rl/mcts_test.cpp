/** @file Unit tests for the MCTS search. */

#include <gtest/gtest.h>

#include <numeric>

#include "dfg/kernels.hpp"
#include "rl/mcts.hpp"

namespace mapzero::rl {
namespace {

struct MctsFixture {
    dfg::Dfg d = dfg::buildKernel("sum");
    cgra::Architecture arch = cgra::Architecture::hrea();
    Rng netRng{1};
    MapZeroNet net{arch.peCount(), NetworkConfig{}, netRng};
};

TEST(Mcts, RestoresEnvironmentState)
{
    MctsFixture f;
    mapper::MapEnv env(f.d, f.arch, 1);
    env.step(0);
    const std::int32_t before = env.stepIndex();
    const double reward_before = env.totalReward();

    MctsConfig cfg;
    cfg.expansionsPerMove = 16;
    Mcts mcts(f.net, cfg);
    Rng rng(2);
    mcts.runFromCurrent(env, rng);
    EXPECT_EQ(env.stepIndex(), before);
    EXPECT_DOUBLE_EQ(env.totalReward(), reward_before);
}

TEST(Mcts, PiIsDistributionOverLegalActions)
{
    MctsFixture f;
    mapper::MapEnv env(f.d, f.arch, 1);
    MctsConfig cfg;
    cfg.expansionsPerMove = 32;
    Mcts mcts(f.net, cfg);
    Rng rng(3);
    const MctsMoveResult move = mcts.runFromCurrent(env, rng);

    const auto mask = env.actionMask();
    double total = 0.0;
    for (std::size_t a = 0; a < move.pi.size(); ++a) {
        EXPECT_GE(move.pi[a], 0.0);
        if (!mask[a]) {
            EXPECT_DOUBLE_EQ(move.pi[a], 0.0);
        }
        total += move.pi[a];
    }
    EXPECT_NEAR(total, 1.0, 1e-6);
    EXPECT_GE(move.bestAction, 0);
    EXPECT_TRUE(mask[static_cast<std::size_t>(move.bestAction)]);
}

TEST(Mcts, SolvesTinyMappingViaSimulation)
{
    // 2-node chain on HReA: simulations should complete the mapping and
    // short-circuit per §3.5.
    dfg::Dfg d;
    const auto a = d.addNode(dfg::Opcode::Load);
    const auto b = d.addNode(dfg::Opcode::Add);
    d.addEdge(a, b);
    cgra::Architecture arch = cgra::Architecture::hrea();
    Rng netRng(4);
    MapZeroNet net(arch.peCount(), NetworkConfig{}, netRng);
    mapper::MapEnv env(d, arch, 1);

    MctsConfig cfg;
    cfg.expansionsPerMove = 64;
    Mcts mcts(net, cfg);
    Rng rng(5);
    const MctsMoveResult move = mcts.runFromCurrent(env, rng);
    ASSERT_TRUE(move.solvedSuffix.has_value());
    // Applying the suffix completes the mapping.
    for (std::int32_t action : *move.solvedSuffix)
        env.step(action);
    EXPECT_TRUE(env.success());
}

TEST(Mcts, FinishedEpisodeIsPanic)
{
    MctsFixture f;
    dfg::Dfg d;
    d.addNode(dfg::Opcode::Load);
    mapper::MapEnv env(d, f.arch, 1);
    env.step(0);
    ASSERT_TRUE(env.done());
    MctsConfig cfg;
    Mcts mcts(f.net, cfg);
    Rng rng(6);
    EXPECT_THROW(mcts.runFromCurrent(env, rng), std::logic_error);
}

TEST(Mcts, InteriorVisitsGrowWithSimulations)
{
    // Regression for the UCT bookkeeping bug where only the root's
    // totalVisits advanced during backprop: interior nodes froze at
    // sqrt(0 + 1) and deep exploration never widened. A bigger
    // simulation budget must accumulate strictly more interior visit
    // increments on a multi-ply search.
    dfg::Dfg d = dfg::buildKernel("arf");
    cgra::Architecture arch = cgra::Architecture::hrea();
    Rng netRng(8);
    MapZeroNet net(arch.peCount(), NetworkConfig{}, netRng);
    mapper::MapEnv env(d, arch, 1);
    Rng rng(9);

    MctsConfig small;
    small.expansionsPerMove = 8;
    const auto move_small = Mcts(net, small).runFromCurrent(env, rng);
    MctsConfig big;
    big.expansionsPerMove = 96;
    const auto move_big = Mcts(net, big).runFromCurrent(env, rng);

    EXPECT_GT(move_big.interiorVisits, 0);
    EXPECT_GT(move_big.interiorVisits, move_small.interiorVisits);
}

TEST(Mcts, MoreExpansionsVisitMore)
{
    MctsFixture f;
    mapper::MapEnv env(f.d, f.arch, 1);
    Rng rng(7);

    MctsConfig small;
    small.expansionsPerMove = 4;
    const auto move_small =
        Mcts(f.net, small).runFromCurrent(env, rng);
    MctsConfig big;
    big.expansionsPerMove = 64;
    const auto move_big = Mcts(f.net, big).runFromCurrent(env, rng);

    const auto nonzero = [](const std::vector<double> &pi) {
        return std::count_if(pi.begin(), pi.end(),
                             [](double p) { return p > 0.0; });
    };
    EXPECT_GE(nonzero(move_big.pi), nonzero(move_small.pi));
}

} // namespace
} // namespace mapzero::rl
