/** @file Unit tests for the self-play trainer. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <vector>

#include "dfg/kernels.hpp"
#include "rl/trainer.hpp"

namespace mapzero::rl {
namespace {

TrainerConfig
fastConfig()
{
    TrainerConfig cfg;
    cfg.mcts.expansionsPerMove = 8;
    cfg.updatesPerEpisode = 1;
    cfg.minBufferForTraining = 8;
    cfg.batchSize = 8;
    cfg.maxAugmentations = 1;
    return cfg;
}

TEST(Trainer, EpisodeProducesStats)
{
    cgra::Architecture arch = cgra::Architecture::hrea();
    Trainer trainer(arch, fastConfig(), 1);
    dfg::Dfg d = dfg::buildKernel("sum");
    const EpisodeStats stats = trainer.runEpisode(d, 1);
    EXPECT_EQ(stats.episode, 0);
    EXPECT_EQ(trainer.history().size(), 1u);
}

TEST(Trainer, EpisodeStatsJsonlSink)
{
    cgra::Architecture arch = cgra::Architecture::hrea();
    TrainerConfig cfg = fastConfig();
    cfg.statsJsonlPath =
        ::testing::TempDir() + "/trainer_stats_test.jsonl";
    std::remove(cfg.statsJsonlPath.c_str());
    Trainer trainer(arch, cfg, 7);
    dfg::Dfg d = dfg::buildKernel("sum");
    trainer.runEpisode(d, 1);
    trainer.runEpisode(d, 1);

    std::ifstream is(cfg.statsJsonlPath);
    ASSERT_TRUE(is.good());
    std::string line;
    int lines = 0;
    while (std::getline(is, line)) {
        EXPECT_EQ(line.rfind("{\"episode\": ", 0), 0u) << line;
        EXPECT_NE(line.find("\"reward\":"), std::string::npos);
        ++lines;
    }
    EXPECT_EQ(lines, 2);
    std::remove(cfg.statsJsonlPath.c_str());
}

TEST(Trainer, LossComputedOnceBufferFills)
{
    cgra::Architecture arch = cgra::Architecture::hrea();
    Trainer trainer(arch, fastConfig(), 2);
    dfg::Dfg d = dfg::buildKernel("sum");
    EpisodeStats last{};
    for (int i = 0; i < 4; ++i)
        last = trainer.runEpisode(d, 1);
    // After several episodes the buffer exceeds the training threshold.
    EXPECT_NE(last.totalLoss, 0.0);
    EXPECT_GT(last.learningRate, 0.0f);
}

TEST(Trainer, PretrainRunsCurriculum)
{
    cgra::Architecture arch = cgra::Architecture::hrea();
    Trainer trainer(arch, fastConfig(), 3);
    const auto stats =
        trainer.pretrain(4, 3, 6, Deadline(60.0));
    EXPECT_EQ(stats.size(), 4u);
}

TEST(Trainer, ParallelPretrainRunsEveryEpisode)
{
    cgra::Architecture arch = cgra::Architecture::hrea();
    TrainerConfig cfg = fastConfig();
    cfg.selfPlayJobs = 3;
    cfg.evalBatchCap = 4;
    Trainer trainer(arch, cfg, 5);
    const auto stats = trainer.pretrain(6, 3, 6, Deadline(120.0));
    EXPECT_EQ(stats.size(), 6u);
    // Episode stats still arrive in episode order.
    for (std::size_t i = 0; i < stats.size(); ++i)
        EXPECT_EQ(stats[i].episode, static_cast<std::int32_t>(i));
}

TEST(Trainer, ParallelPretrainIsDeterministicPerWorkerCount)
{
    cgra::Architecture arch = cgra::Architecture::hrea();
    TrainerConfig cfg = fastConfig();
    cfg.selfPlayJobs = 2;
    const auto run = [&] {
        Trainer trainer(arch, cfg, 6);
        trainer.pretrain(4, 3, 6, Deadline(120.0));
        std::vector<float> weights;
        for (const auto &p : trainer.network().parameters())
            for (std::size_t i = 0; i < p.tensor().size(); ++i)
                weights.push_back(p.tensor()[i]);
        return weights;
    };
    const auto a = run();
    const auto b = run();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]) << "weight " << i;
}

TEST(Trainer, PretrainStopsAtDeadline)
{
    cgra::Architecture arch = cgra::Architecture::hrea();
    Trainer trainer(arch, fastConfig(), 4);
    const auto stats = trainer.pretrain(1000, 3, 6, Deadline(0.5));
    EXPECT_LT(stats.size(), 1000u);
}

TEST(Trainer, NoMctsAblationStillTrains)
{
    cgra::Architecture arch = cgra::Architecture::hrea();
    TrainerConfig cfg = fastConfig();
    cfg.useMcts = false;
    Trainer trainer(arch, cfg, 5);
    dfg::Dfg d = dfg::buildKernel("sum");
    EXPECT_NO_THROW(trainer.runEpisode(d, 1));
}

std::vector<float>
flatWeights(Trainer &trainer)
{
    std::vector<float> out;
    for (const auto &p : trainer.network().parameters())
        for (std::size_t i = 0; i < p.tensor().size(); ++i)
            out.push_back(p.tensor()[i]);
    return out;
}

TEST(Trainer, CheckpointRoundTripRestoresState)
{
    cgra::Architecture arch = cgra::Architecture::hrea();
    TrainerConfig cfg = fastConfig();
    Trainer a(arch, cfg, 11);
    a.pretrain(3, 3, 5, Deadline(300.0));

    const std::string path =
        ::testing::TempDir() + "/trainer_ckpt_roundtrip.ckpt";
    a.saveCheckpoint(path);
    // Atomic write: no temp file survives a successful save.
    EXPECT_FALSE(std::ifstream(path + ".tmp").good());

    Trainer b(arch, cfg, 999); // seed is overridden by the checkpoint
    b.loadCheckpoint(path);
    EXPECT_EQ(b.episodesCompleted(), a.episodesCompleted());
    EXPECT_EQ(flatWeights(b), flatWeights(a));
    std::remove(path.c_str());
}

TEST(Trainer, ResumeMatchesUninterrupted)
{
    // The crash-safety acceptance check: train 6 episodes straight
    // through, then train the same schedule "crashing" after 3
    // episodes and resuming from the checkpoint. Final weights and the
    // per-episode stats of the resumed tail must be bit-identical.
    cgra::Architecture arch = cgra::Architecture::hrea();
    const std::uint64_t seed = 13;

    Trainer uninterrupted(arch, fastConfig(), seed);
    const auto stats_full =
        uninterrupted.pretrain(6, 3, 6, Deadline(600.0));
    ASSERT_EQ(stats_full.size(), 6u);

    const std::string path =
        ::testing::TempDir() + "/trainer_resume_test.ckpt";
    std::remove(path.c_str());

    TrainerConfig crash = fastConfig();
    crash.checkpointPath = path;
    crash.checkpointEvery = 1;
    crash.maxEpisodesPerRun = 3; // deterministic "crash" after 3
    Trainer first_run(arch, crash, seed);
    const auto stats_head = first_run.pretrain(6, 3, 6, Deadline(600.0));
    ASSERT_EQ(stats_head.size(), 3u);

    Trainer resumed(arch, fastConfig(), seed);
    resumed.loadCheckpoint(path);
    ASSERT_EQ(resumed.episodesCompleted(), 3);
    const auto stats_tail = resumed.pretrain(6, 3, 6, Deadline(600.0));
    ASSERT_EQ(stats_tail.size(), 3u);

    for (std::size_t i = 0; i < 3; ++i) {
        const EpisodeStats &want = stats_full[i + 3];
        const EpisodeStats &got = stats_tail[i];
        EXPECT_EQ(got.episode, want.episode);
        EXPECT_EQ(got.totalLoss, want.totalLoss);
        EXPECT_EQ(got.valueLoss, want.valueLoss);
        EXPECT_EQ(got.policyLoss, want.policyLoss);
        EXPECT_EQ(got.reward, want.reward);
        EXPECT_EQ(got.routingPenalty, want.routingPenalty);
        EXPECT_EQ(got.learningRate, want.learningRate);
        EXPECT_EQ(got.success, want.success);
    }
    EXPECT_EQ(flatWeights(resumed), flatWeights(uninterrupted));
    std::remove(path.c_str());
}

TEST(Trainer, CorruptCheckpointLeavesTrainerUntouched)
{
    cgra::Architecture arch = cgra::Architecture::hrea();
    Trainer donor(arch, fastConfig(), 17);
    donor.pretrain(2, 3, 5, Deadline(300.0));
    const std::string path =
        ::testing::TempDir() + "/trainer_ckpt_corrupt.ckpt";
    donor.saveCheckpoint(path);

    // Flip one byte in the middle of the file.
    {
        std::fstream f(path,
                       std::ios::in | std::ios::out | std::ios::binary);
        ASSERT_TRUE(f.good());
        f.seekg(0, std::ios::end);
        const auto size = f.tellg();
        f.seekp(static_cast<std::streamoff>(size) / 2);
        char byte = 0;
        f.read(&byte, 1);
        f.seekp(static_cast<std::streamoff>(size) / 2);
        byte = static_cast<char>(byte ^ 0x40);
        f.write(&byte, 1);
    }

    Trainer victim(arch, fastConfig(), 19);
    const auto before = flatWeights(victim);
    EXPECT_THROW(victim.loadCheckpoint(path), std::runtime_error);
    EXPECT_EQ(flatWeights(victim), before);
    EXPECT_EQ(victim.episodesCompleted(), 0);
    std::remove(path.c_str());
}

TEST(Trainer, WeightsChangeAfterTraining)
{
    cgra::Architecture arch = cgra::Architecture::hrea();
    Trainer trainer(arch, fastConfig(), 6);
    const auto before =
        trainer.network().parameters().front().tensor();
    dfg::Dfg d = dfg::buildKernel("sum");
    for (int i = 0; i < 4; ++i)
        trainer.runEpisode(d, 1);
    const auto &after =
        trainer.network().parameters().front().tensor();
    float diff = 0.0f;
    for (std::size_t i = 0; i < before.size(); ++i)
        diff += std::abs(before[i] - after[i]);
    EXPECT_GT(diff, 0.0f);
}

} // namespace
} // namespace mapzero::rl
