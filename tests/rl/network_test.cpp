/** @file Unit tests for the MapZero policy/value network. */

#include <gtest/gtest.h>

#include <cmath>

#include "dfg/kernels.hpp"
#include "common/rng.hpp"
#include "rl/network.hpp"

namespace mapzero::rl {
namespace {

TEST(MapZeroNet, OutputShapesAndMasking)
{
    dfg::Dfg d = dfg::buildKernel("sum");
    cgra::Architecture arch = cgra::Architecture::hrea();
    mapper::MapEnv env(d, arch, 1);
    Rng rng(1);
    MapZeroNet net(arch.peCount(), NetworkConfig{}, rng);

    const Observation obs = observe(env);
    const auto out = net.forward(obs);
    EXPECT_EQ(out.logPolicy.tensor().cols(), 16u);
    EXPECT_EQ(out.value.tensor().size(), 1u);

    // Probabilities over legal actions sum to 1.
    double total = 0.0;
    for (std::size_t a = 0; a < 16; ++a)
        if (obs.actionMask[a])
            total += std::exp(
                static_cast<double>(out.logPolicy.tensor()[a]));
    EXPECT_NEAR(total, 1.0, 1e-4);
}

TEST(MapZeroNet, IllegalActionsGetZeroProbability)
{
    dfg::Dfg d = dfg::buildKernel("sum");
    cgra::Architecture arch = cgra::Architecture::hrea();
    mapper::MapEnv env(d, arch, 1);
    env.step(0); // occupy PE 0
    Rng rng(2);
    MapZeroNet net(arch.peCount(), NetworkConfig{}, rng);
    const Observation obs = observe(env);
    ASSERT_FALSE(obs.actionMask[0]);
    const auto probs = net.policyProbabilities(obs);
    EXPECT_DOUBLE_EQ(probs[0], 0.0);
}

TEST(MapZeroNet, DeterministicForward)
{
    dfg::Dfg d = dfg::buildKernel("mac");
    cgra::Architecture arch = cgra::Architecture::hrea();
    mapper::MapEnv env(d, arch, 1);
    Rng rng(3);
    MapZeroNet net(arch.peCount(), NetworkConfig{}, rng);
    const Observation obs = observe(env);
    const float v1 = net.forward(obs).value.item();
    const float v2 = net.forward(obs).value.item();
    EXPECT_FLOAT_EQ(v1, v2);
}

TEST(MapZeroNet, InductiveAcrossDfgSizes)
{
    // One network must process observations from different DFGs (the
    // GAT front end is size-independent; §4.5).
    cgra::Architecture arch = cgra::Architecture::hrea();
    Rng rng(4);
    MapZeroNet net(arch.peCount(), NetworkConfig{}, rng);
    for (const char *kernel : {"sum", "mac", "conv2"}) {
        dfg::Dfg d = dfg::buildKernel(kernel);
        const std::int32_t mii = dfg::minimumIi(
            d, arch.peCount(), arch.memoryIssueCapacity());
        mapper::MapEnv env(d, arch, mii);
        EXPECT_NO_THROW(net.forward(observe(env))) << kernel;
    }
}

TEST(MapZeroNet, PeCountMismatchIsFatal)
{
    dfg::Dfg d = dfg::buildKernel("sum");
    cgra::Architecture hrea = cgra::Architecture::hrea();
    cgra::Architecture big = cgra::Architecture::baseline8();
    mapper::MapEnv env(d, big, 1);
    Rng rng(5);
    MapZeroNet net(hrea.peCount(), NetworkConfig{}, rng);
    EXPECT_THROW(net.forward(observe(env)), std::logic_error);
}

TEST(MapZeroNet, ParameterCountScalesWithPolicyHead)
{
    Rng rng(6);
    MapZeroNet small(16, NetworkConfig{}, rng);
    Rng rng2(6);
    MapZeroNet large(256, NetworkConfig{}, rng2);
    EXPECT_GT(large.parameterCount(), small.parameterCount());
}

TEST(MapZeroNet, GradientsReachAllParameterGroups)
{
    dfg::Dfg d = dfg::buildKernel("sum");
    cgra::Architecture arch = cgra::Architecture::hrea();
    mapper::MapEnv env(d, arch, 1);
    Rng rng(7);
    MapZeroNet net(arch.peCount(), NetworkConfig{}, rng);
    const Observation obs = observe(env);
    const auto out = net.forward(obs);
    net.zeroGrad();
    nn::Value loss = nn::add(nn::square(out.value),
                             nn::scale(nn::sumAll(out.logPolicy), -1e-3f));
    loss.backward();
    std::size_t touched = 0;
    for (const auto &p : net.parameters())
        touched += p.grad().norm() > 0.0f ? 1 : 0;
    // The overwhelming majority of tensors must receive gradient.
    EXPECT_GT(touched, net.parameters().size() / 2);
}

} // namespace
} // namespace mapzero::rl
