/**
 * @file
 * Tests for the evaluation cache and the incremental observation
 * builder: LRU behavior, bit-identical cached outputs, hit/miss
 * metrics, and refresh()-vs-observe() equivalence over step/undo walks.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "dfg/kernels.hpp"
#include "dfg/schedule.hpp"
#include "mapper/environment.hpp"
#include "rl/evaluator.hpp"
#include "rl/features.hpp"
#include "rl/network.hpp"

namespace mapzero::rl {
namespace {

/** Observations along a first-legal-action rollout of @p kernel. */
std::vector<Observation>
rolloutObservations(const std::string &kernel,
                    const cgra::Architecture &arch)
{
    dfg::Dfg d = dfg::buildKernel(kernel);
    const std::int32_t mii =
        dfg::minimumIi(d, arch.peCount(), arch.memoryIssueCapacity());
    mapper::MapEnv env(d, arch, mii);
    std::vector<Observation> observations;
    while (!env.done() && env.legalActionCount() > 0) {
        observations.push_back(observe(env));
        const auto mask = env.actionMask();
        for (cgra::PeId pe = 0;
             pe < static_cast<cgra::PeId>(mask.size()); ++pe) {
            if (mask[static_cast<std::size_t>(pe)]) {
                env.step(pe);
                break;
            }
        }
    }
    return observations;
}

/** Largest absolute difference between two network outputs. */
double
outputDiff(const MapZeroNet::Output &a, const MapZeroNet::Output &b)
{
    EXPECT_EQ(a.logPolicy.tensor().size(), b.logPolicy.tensor().size());
    double diff = std::fabs(static_cast<double>(a.value.item()) -
                            static_cast<double>(b.value.item()));
    for (std::size_t i = 0; i < a.logPolicy.tensor().size(); ++i)
        diff = std::max(
            diff,
            std::fabs(static_cast<double>(a.logPolicy.tensor()[i]) -
                      static_cast<double>(b.logPolicy.tensor()[i])));
    return diff;
}

/** A distinguishable stand-in network output. */
MapZeroNet::Output
fakeOutput(float tag)
{
    MapZeroNet::Output out;
    out.logPolicy =
        nn::Value::constant(nn::Tensor(1, 2, {tag, -tag}));
    out.value = nn::Value::constant(nn::Tensor(1, 1, {tag * 10.0f}));
    return out;
}

void
expectTensorsIdentical(const nn::Tensor &a, const nn::Tensor &b,
                       const char *what)
{
    ASSERT_TRUE(a.sameShape(b)) << what;
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << what << " element " << i;
}

void
expectObservationsIdentical(const Observation &a, const Observation &b)
{
    expectTensorsIdentical(a.dfgFeatures, b.dfgFeatures, "dfgFeatures");
    expectTensorsIdentical(a.cgraFeatures, b.cgraFeatures,
                           "cgraFeatures");
    expectTensorsIdentical(a.metadata, b.metadata, "metadata");
    EXPECT_EQ(a.dfgEdges, b.dfgEdges);
    EXPECT_EQ(a.cgraEdges, b.cgraEdges);
    EXPECT_EQ(a.actionMask, b.actionMask);
}

TEST(EvalCache, LruEvictionAndRecency)
{
    EvalCache cache(2);
    EXPECT_EQ(cache.capacity(), 2u);
    cache.insert("a", fakeOutput(1.0f));
    cache.insert("b", fakeOutput(2.0f));
    EXPECT_EQ(cache.size(), 2u);

    // Touch "a" so "b" becomes the eviction victim.
    MapZeroNet::Output out;
    EXPECT_TRUE(cache.lookup("a", out));
    EXPECT_EQ(out.logPolicy.tensor()[0], 1.0f);

    cache.insert("c", fakeOutput(3.0f));
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_FALSE(cache.lookup("b", out)) << "LRU entry survived";
    EXPECT_TRUE(cache.lookup("a", out));
    EXPECT_TRUE(cache.lookup("c", out));
    EXPECT_EQ(out.value.item(), 30.0f);
}

TEST(EvalCache, InsertRefreshesExistingKey)
{
    EvalCache cache(2);
    cache.insert("a", fakeOutput(1.0f));
    cache.insert("b", fakeOutput(2.0f));
    // Re-inserting a present key refreshes recency but keeps the
    // stored entry: outputs are pure functions of the key, so the old
    // copy is as good as the new one.
    cache.insert("a", fakeOutput(9.0f));
    EXPECT_EQ(cache.size(), 2u);
    cache.insert("c", fakeOutput(3.0f)); // evicts "b", not "a"
    MapZeroNet::Output out;
    EXPECT_FALSE(cache.lookup("b", out));
    ASSERT_TRUE(cache.lookup("a", out));
    EXPECT_EQ(out.value.item(), 10.0f);
}

TEST(EvalCache, ZeroCapacityIsDisabled)
{
    EvalCache cache(0);
    EXPECT_EQ(cache.capacity(), 0u);
    EXPECT_EQ(cache.shardCount(), 0u);
    cache.insert("a", fakeOutput(1.0f));
    MapZeroNet::Output out;
    EXPECT_FALSE(cache.lookup("a", out));
    EXPECT_EQ(cache.size(), 0u);
}

TEST(EvalCache, DaemonSizedCapacityShards)
{
    // The daemon-shared cache must actually spread across shards; the
    // tiny test caches above must not (their LRU tests rely on exact
    // global order).
    EvalCache small(2);
    EXPECT_EQ(small.shardCount(), 1u);
    EvalCache large(4 * EvalCache::kDefaultCapacity);
    EXPECT_GT(large.shardCount(), 1u);
}

TEST(EvalCache, KeySeparatesArchsWithIdenticalObservationTensors)
{
    // Two fabrics differing ONLY in the row-shared memory bus: the
    // network input tensors are identical (the flag is not a feature),
    // but mapping legality differs, so the cache key must not collide.
    cgra::Architecture plain = cgra::Architecture::hrea();
    cgra::Architecture shared_bus = cgra::Architecture::hrea();
    shared_bus.setRowSharedMemoryBus(true);
    ASSERT_NE(plain.canonicalBytes(), shared_bus.canonicalBytes());

    dfg::Dfg d = dfg::buildKernel("mac");
    const std::int32_t mii = dfg::minimumIi(
        d, plain.peCount(), plain.memoryIssueCapacity());
    mapper::MapEnv env_plain(d, plain, mii);
    mapper::MapEnv env_shared(d, shared_bus, mii);

    const Observation a = observe(env_plain);
    const Observation b = observe(env_shared);
    EXPECT_NE(a.archSignature, b.archSignature);
    EXPECT_NE(EvalCache::keyOf(a), EvalCache::keyOf(b));
}

TEST(EvalCache, KeySeparatesDecisionPoints)
{
    cgra::Architecture arch = cgra::Architecture::hrea();
    const auto observations = rolloutObservations("mac", arch);
    ASSERT_GE(observations.size(), 3u);
    std::vector<std::string> keys;
    for (const auto &obs : observations)
        keys.push_back(EvalCache::keyOf(obs));
    for (std::size_t i = 0; i < keys.size(); ++i)
        for (std::size_t j = i + 1; j < keys.size(); ++j)
            EXPECT_NE(keys[i], keys[j]) << i << " vs " << j;
    // Deterministic: re-encoding the same observation gives the key.
    EXPECT_EQ(keys.front(), EvalCache::keyOf(observations.front()));
}

TEST(EvalCache, DirectEvaluatorHitsAreBitIdentical)
{
    cgra::Architecture arch = cgra::Architecture::hrea();
    Rng rng(31);
    MapZeroNet net(arch.peCount(), NetworkConfig{}, rng);
    DirectEvaluator evaluator(net, std::make_shared<EvalCache>());
    const auto observations = rolloutObservations("sum", arch);
    ASSERT_FALSE(observations.empty());

    Counter &hits = metrics().counter("eval_cache.hits");
    Counter &misses = metrics().counter("eval_cache.misses");
    const std::int64_t hits0 = hits.value();
    const std::int64_t misses0 = misses.value();

    std::vector<MapZeroNet::Output> first;
    for (const auto &obs : observations)
        first.push_back(evaluator.evaluate(obs));
    EXPECT_EQ(misses.value() - misses0,
              static_cast<std::int64_t>(observations.size()));
    EXPECT_EQ(hits.value(), hits0);

    for (std::size_t i = 0; i < observations.size(); ++i) {
        EXPECT_EQ(outputDiff(evaluator.evaluate(observations[i]),
                             first[i]),
                  0.0)
            << "cached output differs at step " << i;
        EXPECT_EQ(outputDiff(first[i], net.forward(observations[i])),
                  0.0)
            << "evaluator output differs from tape forward at " << i;
    }
    EXPECT_EQ(hits.value() - hits0,
              static_cast<std::int64_t>(observations.size()));
}

TEST(EvalCache, EvalBatcherConsultsSharedCache)
{
    cgra::Architecture arch = cgra::Architecture::hrea();
    Rng rng(32);
    MapZeroNet net(arch.peCount(), NetworkConfig{}, rng);
    auto cache = std::make_shared<EvalCache>();
    EvalBatcher batcher(net, 8, cache);
    EvalBatcher::Session session(batcher);
    const auto observations = rolloutObservations("mac", arch);
    ASSERT_FALSE(observations.empty());

    Counter &hits = metrics().counter("eval_cache.hits");
    const std::int64_t hits0 = hits.value();
    std::vector<MapZeroNet::Output> first;
    for (const auto &obs : observations)
        first.push_back(batcher.evaluate(obs));
    EXPECT_GT(cache->size(), 0u);
    for (std::size_t i = 0; i < observations.size(); ++i)
        EXPECT_EQ(outputDiff(batcher.evaluate(observations[i]),
                             first[i]),
                  0.0)
            << i;
    EXPECT_GE(hits.value() - hits0,
              static_cast<std::int64_t>(observations.size()));
}

TEST(ObservationBuilder, RefreshMatchesObserveAcrossStepsAndUndo)
{
    cgra::Architecture arch = cgra::Architecture::hrea();
    dfg::Dfg d = dfg::buildKernel("mac");
    const std::int32_t mii =
        dfg::minimumIi(d, arch.peCount(), arch.memoryIssueCapacity());
    mapper::MapEnv env(d, arch, mii);

    ObservationBuilder builder;
    while (!env.done() && env.legalActionCount() > 0) {
        expectObservationsIdentical(builder.refresh(env), observe(env));
        const auto mask = env.actionMask();
        cgra::PeId chosen = 0;
        for (cgra::PeId pe = 0;
             pe < static_cast<cgra::PeId>(mask.size()); ++pe) {
            if (mask[static_cast<std::size_t>(pe)]) {
                chosen = pe;
                break;
            }
        }
        // Exercise the undo path the MCTS tree walk relies on.
        env.step(chosen);
        if (!env.done()) {
            expectObservationsIdentical(builder.refresh(env),
                                        observe(env));
            env.undo();
            expectObservationsIdentical(builder.refresh(env),
                                        observe(env));
            env.step(chosen);
        }
    }
}

TEST(ObservationBuilder, RebindsAcrossEnvironmentsAndIi)
{
    cgra::Architecture arch = cgra::Architecture::hrea();
    dfg::Dfg sum = dfg::buildKernel("sum");
    dfg::Dfg mac = dfg::buildKernel("mac");
    const std::int32_t mii_sum = dfg::minimumIi(
        sum, arch.peCount(), arch.memoryIssueCapacity());
    const std::int32_t mii_mac = dfg::minimumIi(
        mac, arch.peCount(), arch.memoryIssueCapacity());

    mapper::MapEnv env_a(sum, arch, mii_sum);
    mapper::MapEnv env_b(mac, arch, mii_mac);
    mapper::MapEnv env_c(sum, arch, mii_sum + 1);

    ObservationBuilder builder;
    expectObservationsIdentical(builder.refresh(env_a), observe(env_a));
    expectObservationsIdentical(builder.refresh(env_b), observe(env_b));
    expectObservationsIdentical(builder.refresh(env_c), observe(env_c));
    // And back again: every switch must trigger a full rebind.
    expectObservationsIdentical(builder.refresh(env_a), observe(env_a));
}

TEST(Features, DegreeFeaturesStayInUnitRange)
{
    // "spread" has a fan-out node; every normalized degree must be
    // clamped into [0, 1] no matter how large the raw degree is.
    cgra::Architecture arch = cgra::Architecture::hrea();
    for (const char *kernel : {"sum", "mac", "conv2", "spread"}) {
        dfg::Dfg d;
        try {
            d = dfg::buildKernel(kernel);
        } catch (const std::exception &) {
            continue; // kernel not in this build's library
        }
        const std::int32_t mii = dfg::minimumIi(
            d, arch.peCount(), arch.memoryIssueCapacity());
        mapper::MapEnv env(d, arch, mii);
        const Observation obs = observe(env);
        for (std::size_t r = 0; r < obs.dfgFeatures.rows(); ++r) {
            for (std::size_t c : {4u, 5u}) { // in/out degree columns
                const float v = obs.dfgFeatures.at(r, c);
                EXPECT_GE(v, 0.0f) << "row " << r << " col " << c;
                EXPECT_LE(v, 1.0f) << "row " << r << " col " << c;
            }
        }
    }
}

} // namespace
} // namespace mapzero::rl
