/**
 * @file
 * Determinism, arena-reuse, and jobs-invariance tests for the batched
 * (virtual-loss wave) MCTS (DESIGN.md §15).
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/agent_cache.hpp"
#include "core/compiler.hpp"
#include "dfg/kernels.hpp"
#include "rl/mcts.hpp"

namespace mapzero::rl {
namespace {

struct BatchFixture {
    dfg::Dfg d = dfg::buildKernel("sum");
    cgra::Architecture arch = cgra::Architecture::hrea();
    Rng netRng{21};
    MapZeroNet net{arch.peCount(), NetworkConfig{}, netRng};

    MctsConfig config() const
    {
        MctsConfig cfg;
        cfg.expansionsPerMove = 48;
        cfg.leafBatch = 16;
        return cfg;
    }
};

/** One move per step until the episode ends; records each decision. */
struct EpisodeTrace {
    std::vector<std::int32_t> actions;
    std::vector<std::vector<double>> pis;
};

EpisodeTrace
playEpisode(Mcts &mcts, mapper::MapEnv &env, std::uint64_t seed)
{
    EpisodeTrace trace;
    Rng rng(seed);
    env.reset();
    while (!env.done() && env.legalActionCount() > 0) {
        const MctsMoveResult move = mcts.runFromCurrent(env, rng);
        trace.actions.push_back(move.bestAction);
        trace.pis.push_back(move.pi);
        if (move.solvedSuffix.has_value()) {
            for (const std::int32_t a : *move.solvedSuffix) {
                trace.actions.push_back(a);
                env.step(a);
            }
            break;
        }
        env.step(move.bestAction);
    }
    return trace;
}

TEST(MctsBatched, FreshEnginesSearchBitIdentically)
{
    BatchFixture f;
    mapper::MapEnv env(f.d, f.arch, 1);
    Rng rngA(7), rngB(7);

    Mcts a(f.net, f.config());
    Mcts b(f.net, f.config());
    const MctsMoveResult ra = a.runFromCurrent(env, rngA);
    const MctsMoveResult rb = b.runFromCurrent(env, rngB);

    EXPECT_EQ(ra.bestAction, rb.bestAction);
    EXPECT_EQ(ra.simulations, rb.simulations);
    EXPECT_EQ(ra.netCalls, rb.netCalls);
    ASSERT_EQ(ra.pi.size(), rb.pi.size());
    for (std::size_t i = 0; i < ra.pi.size(); ++i)
        EXPECT_DOUBLE_EQ(ra.pi[i], rb.pi[i]) << i;
}

TEST(MctsBatched, WarmMemosDoNotChangeTheSearch)
{
    // The eval/route memos carry results across episodes; a warm second
    // episode must retrace the cold one's decisions exactly.
    BatchFixture f;
    mapper::MapEnv env(f.d, f.arch, 1);
    Mcts mcts(f.net, f.config());

    const EpisodeTrace cold = playEpisode(mcts, env, 11);
    const EpisodeTrace warm = playEpisode(mcts, env, 11);

    ASSERT_EQ(cold.actions, warm.actions);
    ASSERT_EQ(cold.pis.size(), warm.pis.size());
    for (std::size_t m = 0; m < cold.pis.size(); ++m) {
        ASSERT_EQ(cold.pis[m].size(), warm.pis[m].size());
        for (std::size_t i = 0; i < cold.pis[m].size(); ++i)
            EXPECT_DOUBLE_EQ(cold.pis[m][i], warm.pis[m][i])
                << "move " << m << " action " << i;
    }
}

TEST(MctsBatched, ArenaCapacityStopsGrowingAfterWarmup)
{
    // The arena rewinds in O(1) and reuses capacity: after a warmup
    // episode, replaying the (deterministic) episode allocates nothing.
    BatchFixture f;
    mapper::MapEnv env(f.d, f.arch, 1);
    Mcts mcts(f.net, f.config());

    playEpisode(mcts, env, 13);
    const Mcts::ArenaStats warm = mcts.arenaStats();
    EXPECT_GT(warm.nodeCapacity, 0u);
    EXPECT_GT(warm.bytes, 0u);

    playEpisode(mcts, env, 13);
    const Mcts::ArenaStats after = mcts.arenaStats();
    EXPECT_EQ(after.nodeCapacity, warm.nodeCapacity);
    EXPECT_EQ(after.edgeCapacity, warm.edgeCapacity);
    EXPECT_EQ(after.memoCapacity, warm.memoCapacity);
    EXPECT_EQ(after.bytes, warm.bytes);
}

TEST(MctsBatched, BatchedSearchRestoresTheEnvironment)
{
    BatchFixture f;
    mapper::MapEnv env(f.d, f.arch, 1);
    env.step(0);
    const std::int32_t before = env.stepIndex();
    const double reward_before = env.totalReward();

    Mcts mcts(f.net, f.config());
    Rng rng(17);
    mcts.runFromCurrent(env, rng);
    EXPECT_EQ(env.stepIndex(), before);
    EXPECT_DOUBLE_EQ(env.totalReward(), reward_before);
}

TEST(MctsBatched, JobsInvariantMappingWithBatchedWaves)
{
    // jobs=4 routes the concurrent restarts' leaf waves through one
    // shared EvalBatcher; batching across attempts must not change
    // what any attempt computes (the jobs=1 ≡ jobs=N contract).
    clearAgentCache();
    cgra::Architecture arch = cgra::Architecture::hrea();
    PretrainBudget budget;
    budget.episodes = 2;
    budget.seconds = 5.0;
    budget.maxNodes = 6;
    budget.mctsExpansions = 4;
    const auto net = pretrainedNetwork(arch, budget);
    const dfg::Dfg d = dfg::buildKernel("mac");

    const auto compile_at = [&](std::int32_t jobs) {
        Compiler compiler;
        compiler.setNetwork(net);
        CompileOptions options;
        options.timeLimitSeconds = 60.0;
        options.seed = 99;
        options.jobs = jobs;
        options.restartsPerIi = 4; // pinned portfolio size
        return compiler.compile(d, arch, Method::MapZero, options);
    };

    const CompileResult sequential = compile_at(1);
    const CompileResult parallel = compile_at(4);
    EXPECT_EQ(sequential.success, parallel.success);
    EXPECT_EQ(sequential.ii, parallel.ii);
    EXPECT_EQ(sequential.totalHops, parallel.totalHops);
    EXPECT_EQ(sequential.searchOps, parallel.searchOps);
    ASSERT_EQ(sequential.placements.size(), parallel.placements.size());
    for (std::size_t i = 0; i < sequential.placements.size(); ++i) {
        EXPECT_EQ(sequential.placements[i].pe, parallel.placements[i].pe)
            << i;
        EXPECT_EQ(sequential.placements[i].time,
                  parallel.placements[i].time)
            << i;
    }
}

} // namespace
} // namespace mapzero::rl
