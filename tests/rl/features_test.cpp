/** @file Unit tests for observation/feature extraction. */

#include <gtest/gtest.h>

#include "cgra/symmetry.hpp"
#include "dfg/kernels.hpp"
#include "rl/features.hpp"

namespace mapzero::rl {
namespace {

mapper::MapEnv
makeEnv()
{
    static dfg::Dfg d = dfg::buildKernel("sum");
    static cgra::Architecture arch = cgra::Architecture::hrea();
    return mapper::MapEnv(d, arch, 1);
}

TEST(Features, ShapesMatchPaperDimensions)
{
    auto env = makeEnv();
    const Observation obs = observe(env);
    EXPECT_EQ(obs.dfgFeatures.rows(), 8u);   // sum has 8 nodes
    EXPECT_EQ(obs.dfgFeatures.cols(), kDfgFeatureDim);
    EXPECT_EQ(obs.cgraFeatures.rows(), 16u); // HReA 4x4
    EXPECT_EQ(obs.cgraFeatures.cols(), kCgraFeatureDim);
    EXPECT_EQ(obs.metadata.rows(), 1u);
    EXPECT_EQ(obs.metadata.cols(), kMetadataDim);
    EXPECT_EQ(obs.actionMask.size(), 16u);
    EXPECT_EQ(obs.dfgEdges.size(), 9u);      // sum has 9 edges
}

TEST(Features, UnassignedIdsMapToZero)
{
    auto env = makeEnv();
    const Observation obs = observe(env);
    // Nothing placed yet: assigned-PE feature (col 9) and mapped-node
    // feature (col 6 of CGRA) must be 0.
    for (std::size_t v = 0; v < obs.dfgFeatures.rows(); ++v)
        EXPECT_FLOAT_EQ(obs.dfgFeatures.at(v, 9), 0.0f);
    for (std::size_t p = 0; p < obs.cgraFeatures.rows(); ++p)
        EXPECT_FLOAT_EQ(obs.cgraFeatures.at(p, 6), 0.0f);
}

TEST(Features, PlacementUpdatesFeatures)
{
    auto env = makeEnv();
    const dfg::NodeId first = env.currentNode();
    env.step(5);
    const Observation obs = observe(env);
    EXPECT_GT(obs.dfgFeatures.at(static_cast<std::size_t>(first), 9),
              0.0f);
    EXPECT_GT(obs.cgraFeatures.at(5, 6), 0.0f);
    // PE 5's function slot is taken, so it is masked out when the next
    // node shares the modulo slot.
    EXPECT_FALSE(obs.actionMask[5]);
}

TEST(Features, SelfCycleFeatureSet)
{
    dfg::Dfg d;
    const auto acc = d.addNode(dfg::Opcode::Add);
    d.addNode(dfg::Opcode::Store);
    d.addEdge(acc, acc, 1);
    d.addEdge(acc, 1);
    cgra::Architecture arch = cgra::Architecture::hrea();
    mapper::MapEnv env(d, arch, 1);
    const Observation obs = observe(env);
    EXPECT_FLOAT_EQ(obs.dfgFeatures.at(0, 7), 1.0f);
    EXPECT_FLOAT_EQ(obs.dfgFeatures.at(1, 7), 0.0f);
}

TEST(Features, CapabilityBooleansReflectFabric)
{
    dfg::Dfg d = dfg::buildKernel("sum");
    cgra::Architecture arch = cgra::Architecture::heterogeneous();
    mapper::MapEnv env(d, arch, 2);
    const Observation obs = observe(env);
    for (cgra::PeId p = 0; p < arch.peCount(); ++p) {
        const auto r = static_cast<std::size_t>(p);
        EXPECT_FLOAT_EQ(obs.cgraFeatures.at(r, 3),
                        arch.pe(p).logic ? 1.0f : 0.0f);
        EXPECT_FLOAT_EQ(obs.cgraFeatures.at(r, 5),
                        arch.pe(p).memory ? 1.0f : 0.0f);
    }
}

TEST(Features, MetadataDescribesCurrentNode)
{
    auto env = makeEnv();
    const Observation obs = observe(env);
    const auto cur = static_cast<std::size_t>(env.currentNode());
    for (std::size_t c = 0; c < kDfgFeatureDim; ++c)
        EXPECT_FLOAT_EQ(obs.metadata.at(0, c),
                        obs.dfgFeatures.at(cur, c));
}

TEST(Features, PermutationRemapsMaskAndRows)
{
    auto env = makeEnv();
    env.step(3);
    const Observation obs = observe(env);
    const auto syms = cgra::gridSymmetries(env.arch());
    ASSERT_GT(syms.size(), 1u);
    const auto &perm = syms[1];
    const Observation out = permuteObservation(obs, perm);

    for (std::size_t p = 0; p < perm.size(); ++p) {
        EXPECT_EQ(out.actionMask[static_cast<std::size_t>(perm[p])],
                  obs.actionMask[p]);
        // Non-id features copied verbatim to the permuted row.
        for (std::size_t c = 1; c < kCgraFeatureDim; ++c)
            EXPECT_FLOAT_EQ(
                out.cgraFeatures.at(static_cast<std::size_t>(perm[p]),
                                    c),
                obs.cgraFeatures.at(p, c));
    }
}

TEST(Features, PermutationRemapsAssignedPe)
{
    auto env = makeEnv();
    const dfg::NodeId first = env.currentNode();
    env.step(3);
    const Observation obs = observe(env);
    const auto syms = cgra::gridSymmetries(env.arch());
    ASSERT_GT(syms.size(), 1u);
    const auto &perm = syms[1];
    const Observation out = permuteObservation(obs, perm);
    const float expected =
        static_cast<float>(perm[3] + 1) /
        static_cast<float>(env.arch().peCount() + 1);
    EXPECT_NEAR(out.dfgFeatures.at(static_cast<std::size_t>(first), 9),
                expected, 1e-5f);
}

} // namespace
} // namespace mapzero::rl
