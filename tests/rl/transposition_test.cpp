/** @file Tests for the cross-restart transposition table
 *  (rl/transposition.hpp): both storage planes round-trip, a warm
 *  table replays searches move-for-move identically (the bit-identical
 *  hit contract), and the compiler-level portfolio produces the same
 *  mapping with the table on or off while actually hitting it. */

#include <gtest/gtest.h>

#include <vector>

#include "common/metrics.hpp"
#include "core/compiler.hpp"
#include "dfg/kernels.hpp"
#include "rl/agent.hpp"
#include "rl/mcts.hpp"
#include "rl/transposition.hpp"

namespace mapzero::rl {
namespace {

TEST(Transposition, EvalPlaneRoundTrips)
{
    TranspositionTable table(256);
    TtExpansion entry;
    entry.actions = {0, 3, 7};
    entry.priors = {0.5, 0.25, 0.25};
    entry.value = 0.75f;
    table.insertEval("state-a", entry);
    EXPECT_EQ(table.evalEntries(), 1u);

    TtExpansion out;
    ASSERT_TRUE(table.lookupEval("state-a", out));
    EXPECT_EQ(out.actions, entry.actions);
    EXPECT_EQ(out.priors, entry.priors);
    EXPECT_EQ(out.value, entry.value);
    EXPECT_FALSE(table.lookupEval("state-b", out));
}

TEST(Transposition, StepPlaneRoundTrips)
{
    TranspositionTable table(256);
    mapper::StepRecord record;
    record.outcome.reward = -0.04;
    record.outcome.routedOk = true;
    record.outcome.hops = 2;
    mapper::Route route;
    route.hops = 2;
    record.routes.emplace_back(5, route);
    table.insertStep("state-a|action-3", record);
    EXPECT_EQ(table.stepEntries(), 1u);

    mapper::StepRecord out;
    ASSERT_TRUE(table.lookupStep("state-a|action-3", out));
    EXPECT_DOUBLE_EQ(out.outcome.reward, -0.04);
    EXPECT_EQ(out.outcome.hops, 2);
    ASSERT_EQ(out.routes.size(), 1u);
    EXPECT_EQ(out.routes[0].first, 5);
    EXPECT_EQ(out.routes[0].second.hops, 2);
    EXPECT_FALSE(table.lookupStep("state-a|action-4", out));
}

/** Play one full episode, collecting the chosen action sequence. */
std::vector<std::int32_t>
playEpisode(Mcts &mcts, mapper::MapEnv &env, std::uint64_t seed)
{
    env.reset();
    Rng rng(seed);
    std::vector<std::int32_t> trace;
    while (!env.done()) {
        if (env.legalActionCount() == 0) {
            env.noteDeadEnd();
            break;
        }
        const MctsMoveResult move = mcts.runFromCurrent(env, rng);
        if (move.solvedSuffix) {
            for (const std::int32_t a : *move.solvedSuffix) {
                trace.push_back(a);
                env.step(a);
            }
            break;
        }
        if (move.bestAction < 0)
            break;
        trace.push_back(move.bestAction);
        env.step(move.bestAction);
    }
    return trace;
}

TEST(Transposition, WarmTableReplaysTheSearchIdentically)
{
    const dfg::Dfg d = dfg::buildKernel("sum");
    const cgra::Architecture arch = cgra::Architecture::hrea();
    Rng net_rng(11);
    const MapZeroNet net(arch.peCount(), NetworkConfig{}, net_rng);
    mapper::MapEnv env(d, arch, 1);

    MctsConfig cfg;
    cfg.expansionsPerMove = 24;
    cfg.noiseFraction = 0.0;

    // Engine A with no table is the reference behaviour.
    Mcts reference(net, cfg);
    const auto baseline = playEpisode(reference, env, 21);
    ASSERT_FALSE(baseline.empty());

    // Engine B populates the shared table...
    const auto table = std::make_shared<TranspositionTable>();
    MctsConfig shared_cfg = cfg;
    shared_cfg.transposition = table;
    Mcts writer(net, shared_cfg);
    const auto first = playEpisode(writer, env, 21);
    EXPECT_EQ(first, baseline); // the table must never change results
    EXPECT_GT(table->evalEntries(), 0u);

    // ...and engine C (a fresh restart, as in a portfolio) replays the
    // same episode out of it, bit-identically, with real hits.
    const std::int64_t hits_before =
        metrics().counter("cache.tt_hits").value();
    Mcts reader(net, shared_cfg);
    const auto second = playEpisode(reader, env, 21);
    EXPECT_EQ(second, baseline);
    EXPECT_GT(metrics().counter("cache.tt_hits").value(), hits_before);
}

TEST(Transposition, PortfolioMappingUnchangedWithTableOn)
{
    const dfg::Dfg d = dfg::buildKernel("sum");
    const cgra::Architecture arch = cgra::Architecture::hrea();
    Rng net_rng(13);
    const auto net = std::make_shared<const MapZeroNet>(
        arch.peCount(), NetworkConfig{}, net_rng);

    CompileOptions options;
    options.timeLimitSeconds = 60.0;
    options.restartsPerIi = 3;
    options.jobs = 1;

    Compiler with_table;
    with_table.setNetwork(net);
    options.transposition = true;
    const CompileResult on =
        with_table.compile(d, arch, Method::MapZero, options);
    ASSERT_TRUE(on.success);

    Compiler without_table;
    without_table.setNetwork(net);
    options.transposition = false;
    const CompileResult off =
        without_table.compile(d, arch, Method::MapZero, options);
    ASSERT_TRUE(off.success);

    // Sharing work across restarts must not change what is computed.
    EXPECT_EQ(on.ii, off.ii);
    EXPECT_EQ(on.totalHops, off.totalHops);
    ASSERT_EQ(on.placements.size(), off.placements.size());
    for (std::size_t i = 0; i < on.placements.size(); ++i) {
        EXPECT_EQ(on.placements[i].pe, off.placements[i].pe) << i;
        EXPECT_EQ(on.placements[i].time, off.placements[i].time) << i;
    }
}

TEST(Transposition, PortfolioCompilesConsultTheSharedTable)
{
    // The compiler wires one table through every portfolio engine.
    // A mappable kernel is solved by the guided-DFS phase before MCTS
    // ever runs, so this uses the unroutable 1-to-15 star: the guided
    // phase exhausts itself, the MCTS phase runs, and every expansion
    // it makes must consult and populate the shared tier. (The hit
    // payoff is proven deterministically in the neighbouring tests;
    // this one checks Compiler::compile's wiring.)
    dfg::Dfg star;
    star.setName("star15");
    const auto root = star.addNode(dfg::Opcode::Add, "n0");
    for (int i = 1; i <= 15; ++i)
        star.addEdge(root, star.addNode(dfg::Opcode::Add));
    const cgra::Architecture arch = cgra::Architecture::hrea();
    Rng net_rng(17);
    const auto net = std::make_shared<const MapZeroNet>(
        arch.peCount(), NetworkConfig{}, net_rng);

    CompileOptions options;
    options.timeLimitSeconds = 10.0;
    options.maxIiIncrease = 0; // a single II=1 round, then give up
    options.restartsPerIi = 2; // one lone restart takes the
                               // single-engine path, which has no
                               // portfolio table to share
    options.jobs = 1;
    options.transposition = true;

    Compiler compiler;
    compiler.setNetwork(net);
    const std::int64_t lookups_before =
        metrics().counter("cache.tt_hits").value() +
        metrics().counter("cache.tt_misses").value();
    const std::int64_t inserts_before =
        metrics().counter("cache.tt_inserts").value();
    const std::int64_t simulations_before =
        metrics().counter("mcts.simulations").value();
    EXPECT_FALSE(
        compiler.compile(star, arch, Method::MapZero, options).success);
    if (metrics().counter("mcts.simulations").value() ==
        simulations_before)
        GTEST_SKIP() << "guided phase consumed the attempt budget "
                        "(slow sanitizer build); MCTS never ran";
    EXPECT_GT(metrics().counter("cache.tt_hits").value() +
                  metrics().counter("cache.tt_misses").value(),
              lookups_before);
    EXPECT_GT(metrics().counter("cache.tt_inserts").value(),
              inserts_before);
}

TEST(Transposition, RestartEnginesReplayEachOthersWork)
{
    // Two independently seeded engines sharing one table - exactly the
    // portfolio's restart topology, but driven directly through
    // compileWith so the guided-DFS phase cannot eat the MCTS budget
    // and the second engine deterministically reaches the states the
    // first one published.
    const dfg::Dfg d = dfg::buildKernel("sum");
    const cgra::Architecture arch = cgra::Architecture::hrea();
    Rng net_rng(17);
    const auto net = std::make_shared<const MapZeroNet>(
        arch.peCount(), NetworkConfig{}, net_rng);

    const auto table = std::make_shared<TranspositionTable>();
    AgentConfig cfg;
    cfg.useGuided = false; // MCTS-only engines
    cfg.mcts.expansionsPerMove = 24;
    cfg.mcts.noiseFraction = 0.0;
    cfg.mcts.transposition = table;

    CompileOptions options;
    options.timeLimitSeconds = 60.0;

    Compiler compiler;
    cfg.seed = 1;
    MapZeroAgent first(net, cfg);
    ASSERT_TRUE(compiler.compileWith(first, d, arch, options).success);
    EXPECT_GT(table->evalEntries(), 0u);

    const std::int64_t hits_before =
        metrics().counter("cache.tt_hits").value();
    cfg.seed = 2;
    MapZeroAgent second(net, cfg);
    ASSERT_TRUE(compiler.compileWith(second, d, arch, options).success);
    EXPECT_GT(metrics().counter("cache.tt_hits").value(), hits_before);
}

} // namespace
} // namespace mapzero::rl
