/** @file Unit tests for the prioritized replay buffer. */

#include <gtest/gtest.h>

#include <cmath>

#include "rl/replay.hpp"

namespace mapzero::rl {
namespace {

TrainingSample
sampleWithValue(double v)
{
    TrainingSample s;
    s.value = v;
    s.pi = {1.0};
    return s;
}

TEST(ReplayBuffer, PushAndSize)
{
    ReplayBuffer buffer(4);
    EXPECT_TRUE(buffer.empty());
    buffer.push(sampleWithValue(1));
    EXPECT_EQ(buffer.size(), 1u);
}

TEST(ReplayBuffer, EvictsOldestWhenFull)
{
    ReplayBuffer buffer(2);
    buffer.push(sampleWithValue(1));
    buffer.push(sampleWithValue(2));
    buffer.push(sampleWithValue(3)); // evicts value 1
    EXPECT_EQ(buffer.size(), 2u);
    Rng rng(1);
    bool saw_one = false;
    for (int i = 0; i < 50; ++i)
        for (const auto *s : buffer.sampleBatch(2, rng))
            saw_one = saw_one || s->value == 1.0;
    EXPECT_FALSE(saw_one);
}

TEST(ReplayBuffer, SampleBatchSize)
{
    ReplayBuffer buffer(10);
    for (int i = 0; i < 5; ++i)
        buffer.push(sampleWithValue(i));
    Rng rng(2);
    EXPECT_EQ(buffer.sampleBatch(3, rng).size(), 3u);
    // With replacement: batch larger than buffer is fine.
    EXPECT_EQ(buffer.sampleBatch(12, rng).size(), 12u);
}

TEST(ReplayBuffer, SampledEntriesLosePriority)
{
    ReplayBuffer buffer(2);
    buffer.push(sampleWithValue(1));
    buffer.push(sampleWithValue(2));
    Rng rng(3);
    // Hammer sample 0's priority down by repeatedly drawing batches and
    // verify both entries still appear eventually (priorities never hit
    // exactly zero), i.e. no starvation crash.
    for (int i = 0; i < 200; ++i)
        buffer.sampleBatch(1, rng);
    EXPECT_NO_THROW(buffer.sampleBatch(2, rng));
}

TEST(ReplayBuffer, EmptySampleIsPanic)
{
    ReplayBuffer buffer(2);
    Rng rng(4);
    EXPECT_THROW(buffer.sampleBatch(1, rng), std::logic_error);
}

TEST(ReplayBuffer, ZeroCapacityIsFatal)
{
    EXPECT_THROW(ReplayBuffer(0), std::runtime_error);
}

TEST(ReplayBuffer, PrioritiesFlooredAboveDenormals)
{
    ReplayBuffer buffer(2);
    buffer.push(sampleWithValue(1));
    buffer.push(sampleWithValue(2));
    Rng rng(5);
    // Thousands of halvings would reach denormals (~2^-1074) without
    // the floor; with it every priority stays a normal double.
    for (int i = 0; i < 2000; ++i)
        buffer.sampleBatch(2, rng);
    const ReplaySnapshot snap = buffer.snapshot();
    ASSERT_EQ(snap.priorities.size(), 2u);
    for (const double p : snap.priorities) {
        EXPECT_GE(p, ReplayBuffer::kPriorityFloor);
        EXPECT_TRUE(std::isnormal(p));
    }
    // Both entries still get drawn: floored weights never starve.
    bool saw[2] = {false, false};
    for (int i = 0; i < 200; ++i)
        for (const auto *s : buffer.sampleBatch(1, rng))
            saw[s->value == 1.0 ? 0 : 1] = true;
    EXPECT_TRUE(saw[0]);
    EXPECT_TRUE(saw[1]);
}

TEST(ReplayBuffer, SnapshotRestoreRoundTrip)
{
    // Push past capacity so the snapshot carries a wrapped ring
    // cursor: buffer holds {5, 2, 3, 4} with the cursor at index 1.
    ReplayBuffer a(4);
    for (int i = 1; i <= 5; ++i) {
        TrainingSample s = sampleWithValue(i);
        s.pi = {0.25, 0.75};
        a.push(std::move(s));
    }
    Rng rng(7);
    a.sampleBatch(2, rng); // perturb priorities away from the default

    const ReplaySnapshot snap = a.snapshot();
    ASSERT_EQ(snap.samples.size(), 4u);
    ASSERT_EQ(snap.priorities.size(), 4u);
    EXPECT_EQ(snap.cursor, 1u);

    ReplayBuffer b(4);
    b.restore(snap);
    const ReplaySnapshot again = b.snapshot();
    ASSERT_EQ(again.samples.size(), snap.samples.size());
    EXPECT_EQ(again.cursor, snap.cursor);
    for (std::size_t i = 0; i < snap.samples.size(); ++i) {
        EXPECT_EQ(again.samples[i].value, snap.samples[i].value);
        EXPECT_EQ(again.samples[i].pi, snap.samples[i].pi);
        EXPECT_EQ(again.priorities[i], snap.priorities[i]);
    }

    // The restored ring evicts in the original order: the next push
    // overwrites the cursor slot, which holds the oldest sample (2).
    b.push(sampleWithValue(6));
    Rng rng2(9);
    bool saw_two = false, saw_six = false;
    for (int i = 0; i < 100; ++i)
        for (const auto *s : b.sampleBatch(2, rng2)) {
            saw_two = saw_two || s->value == 2.0;
            saw_six = saw_six || s->value == 6.0;
        }
    EXPECT_FALSE(saw_two);
    EXPECT_TRUE(saw_six);
}

TEST(ReplayBuffer, RestoreRejectsInvalidSnapshots)
{
    ReplayBuffer donor(4);
    for (int i = 0; i < 3; ++i)
        donor.push(sampleWithValue(i));
    const ReplaySnapshot snap = donor.snapshot();

    ReplayBuffer too_small(2);
    EXPECT_THROW(too_small.restore(snap), std::runtime_error);

    ReplaySnapshot mismatched = snap;
    mismatched.priorities.pop_back();
    ReplayBuffer target(4);
    EXPECT_THROW(target.restore(mismatched), std::runtime_error);
}

} // namespace
} // namespace mapzero::rl
