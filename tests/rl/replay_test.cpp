/** @file Unit tests for the prioritized replay buffer. */

#include <gtest/gtest.h>

#include "rl/replay.hpp"

namespace mapzero::rl {
namespace {

TrainingSample
sampleWithValue(double v)
{
    TrainingSample s;
    s.value = v;
    s.pi = {1.0};
    return s;
}

TEST(ReplayBuffer, PushAndSize)
{
    ReplayBuffer buffer(4);
    EXPECT_TRUE(buffer.empty());
    buffer.push(sampleWithValue(1));
    EXPECT_EQ(buffer.size(), 1u);
}

TEST(ReplayBuffer, EvictsOldestWhenFull)
{
    ReplayBuffer buffer(2);
    buffer.push(sampleWithValue(1));
    buffer.push(sampleWithValue(2));
    buffer.push(sampleWithValue(3)); // evicts value 1
    EXPECT_EQ(buffer.size(), 2u);
    Rng rng(1);
    bool saw_one = false;
    for (int i = 0; i < 50; ++i)
        for (const auto *s : buffer.sampleBatch(2, rng))
            saw_one = saw_one || s->value == 1.0;
    EXPECT_FALSE(saw_one);
}

TEST(ReplayBuffer, SampleBatchSize)
{
    ReplayBuffer buffer(10);
    for (int i = 0; i < 5; ++i)
        buffer.push(sampleWithValue(i));
    Rng rng(2);
    EXPECT_EQ(buffer.sampleBatch(3, rng).size(), 3u);
    // With replacement: batch larger than buffer is fine.
    EXPECT_EQ(buffer.sampleBatch(12, rng).size(), 12u);
}

TEST(ReplayBuffer, SampledEntriesLosePriority)
{
    ReplayBuffer buffer(2);
    buffer.push(sampleWithValue(1));
    buffer.push(sampleWithValue(2));
    Rng rng(3);
    // Hammer sample 0's priority down by repeatedly drawing batches and
    // verify both entries still appear eventually (priorities never hit
    // exactly zero), i.e. no starvation crash.
    for (int i = 0; i < 200; ++i)
        buffer.sampleBatch(1, rng);
    EXPECT_NO_THROW(buffer.sampleBatch(2, rng));
}

TEST(ReplayBuffer, EmptySampleIsPanic)
{
    ReplayBuffer buffer(2);
    Rng rng(4);
    EXPECT_THROW(buffer.sampleBatch(1, rng), std::logic_error);
}

TEST(ReplayBuffer, ZeroCapacityIsFatal)
{
    EXPECT_THROW(ReplayBuffer(0), std::runtime_error);
}

} // namespace
} // namespace mapzero::rl
