/** @file Unit tests for logging helpers. */

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/log.hpp"

namespace mapzero {
namespace {

TEST(Log, CatFormatsMixedTypes)
{
    EXPECT_EQ(cat("x=", 3, " y=", 4.5), "x=3 y=4.5");
    EXPECT_EQ(cat(), "");
}

TEST(Log, FatalThrowsRuntimeError)
{
    EXPECT_THROW(fatal("bad config"), std::runtime_error);
}

TEST(Log, PanicThrowsLogicError)
{
    EXPECT_THROW(panic("bug"), std::logic_error);
}

TEST(Log, LevelRoundTrips)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(before);
}

TEST(Log, MessagesBelowThresholdAreDropped)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Off);
    // Must not crash or emit; nothing observable to assert beyond no-throw.
    EXPECT_NO_THROW(inform("hidden"));
    EXPECT_NO_THROW(warn("hidden"));
    setLogLevel(before);
}

} // namespace
} // namespace mapzero
