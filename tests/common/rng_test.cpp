/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>

#include "common/rng.hpp"

namespace mapzero {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformIntRespectsBound)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.uniformInt(10u), 10u);
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.uniformInt(8u));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntInclusiveRange)
{
    Rng rng(3);
    for (int i = 0; i < 500; ++i) {
        const auto v = rng.uniformInt(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, UniformRealInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniformReal();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, NormalHasApproximateMoments)
{
    Rng rng(13);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.05);
    EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng rng(17);
    int hits = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(19);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto copy = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, copy);
}

TEST(Rng, WeightedIndexFavorsHeavyWeights)
{
    Rng rng(23);
    const std::vector<double> w{0.1, 0.1, 9.8};
    int third = 0;
    for (int i = 0; i < 2000; ++i)
        third += rng.weightedIndex(w) == 2 ? 1 : 0;
    EXPECT_GT(third, 1800);
}

TEST(Rng, WeightedIndexNeverPicksZeroWeight)
{
    Rng rng(29);
    const std::vector<double> w{0.0, 1.0, 0.0};
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(rng.weightedIndex(w), 1u);
}

TEST(Rng, ForkDecorrelates)
{
    Rng parent(31);
    Rng child = parent.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += parent.next() == child.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, WeightedIndexAllZeroFallsBackToUniform)
{
    Rng rng(37);
    const std::vector<double> w(4, 0.0);
    std::vector<int> counts(4, 0);
    for (int i = 0; i < 4000; ++i)
        ++counts[rng.weightedIndex(w)];
    // Uniform fallback: every index reachable, roughly 1000 each.
    for (int c : counts)
        EXPECT_GT(c, 700);
}

TEST(Rng, WeightedIndexNonFiniteTotalFallsBackToUniform)
{
    Rng rng(41);
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const std::vector<double> w{1.0, nan, 1.0};
    std::vector<int> counts(3, 0);
    for (int i = 0; i < 3000; ++i)
        ++counts[rng.weightedIndex(w)];
    for (int c : counts)
        EXPECT_GT(c, 0);
}

TEST(Rng, WeightedIndexEmptyIsPanic)
{
    Rng rng(43);
    const std::vector<double> empty;
    EXPECT_THROW(rng.weightedIndex(empty), std::logic_error);
}

TEST(Rng, StateRoundTripResumesExactStream)
{
    Rng a(47);
    for (int i = 0; i < 17; ++i)
        a.next();
    // Leave a Box-Muller spare cached so the snapshot must carry it.
    a.normal();
    const RngState snap = a.state();

    Rng b(999); // unrelated stream, fully overwritten below
    b.setState(snap);
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(a.next(), b.next());
        EXPECT_EQ(a.normal(), b.normal());
        EXPECT_EQ(a.uniformReal(), b.uniformReal());
    }
}

TEST(Rng, GammaMatchesMoments)
{
    // Gamma(alpha, 1) has mean alpha and variance alpha. The small
    // shape exercises the alpha < 1 boost, the large one the plain
    // Marsaglia-Tsang squeeze.
    for (const double alpha : {0.3, 2.5}) {
        Rng rng(53);
        const int n = 20000;
        double sum = 0.0, sum_sq = 0.0;
        for (int i = 0; i < n; ++i) {
            const double x = rng.gamma(alpha);
            ASSERT_GT(x, 0.0);
            sum += x;
            sum_sq += x * x;
        }
        const double mean = sum / n;
        const double var = sum_sq / n - mean * mean;
        EXPECT_NEAR(mean, alpha, 0.05 * alpha + 0.01) << alpha;
        EXPECT_NEAR(var, alpha, 0.25 * alpha) << alpha;
    }
}

TEST(Rng, DirichletFromGammaMatchesTheory)
{
    // Normalized Gamma(alpha) draws are Dirichlet(alpha): component
    // mean 1/k, variance (1/k)(1 - 1/k) / (k alpha + 1). The variance
    // bound is the discriminating check - the old u^(1/alpha) power
    // hack also had mean 1/k but a marginal variance ~30% low (0.0223
    // against the 0.0322 here), so it fails this tolerance.
    Rng rng(59);
    const std::size_t k = 8;
    const double alpha = 0.3;
    const int n = 4000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        std::vector<double> g(k);
        double total = 0.0;
        for (std::size_t j = 0; j < k; ++j) {
            g[j] = rng.gamma(alpha);
            total += g[j];
        }
        for (std::size_t j = 0; j < k; ++j) {
            const double x = g[j] / total;
            sum += x;
            sum_sq += x * x;
        }
    }
    const double count = static_cast<double>(n) * k;
    const double mean = sum / count;
    const double var = sum_sq / count - mean * mean;
    const double mean_theory = 1.0 / k;
    const double var_theory =
        mean_theory * (1.0 - mean_theory) / (k * alpha + 1.0);
    EXPECT_NEAR(mean, mean_theory, 0.005);
    EXPECT_NEAR(var, var_theory, 0.14 * var_theory);
}

} // namespace
} // namespace mapzero
