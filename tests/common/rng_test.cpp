/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"

namespace mapzero {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformIntRespectsBound)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.uniformInt(10u), 10u);
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.uniformInt(8u));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntInclusiveRange)
{
    Rng rng(3);
    for (int i = 0; i < 500; ++i) {
        const auto v = rng.uniformInt(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, UniformRealInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniformReal();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, NormalHasApproximateMoments)
{
    Rng rng(13);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.05);
    EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng rng(17);
    int hits = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(19);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto copy = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, copy);
}

TEST(Rng, WeightedIndexFavorsHeavyWeights)
{
    Rng rng(23);
    const std::vector<double> w{0.1, 0.1, 9.8};
    int third = 0;
    for (int i = 0; i < 2000; ++i)
        third += rng.weightedIndex(w) == 2 ? 1 : 0;
    EXPECT_GT(third, 1800);
}

TEST(Rng, WeightedIndexNeverPicksZeroWeight)
{
    Rng rng(29);
    const std::vector<double> w{0.0, 1.0, 0.0};
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(rng.weightedIndex(w), 1u);
}

TEST(Rng, ForkDecorrelates)
{
    Rng parent(31);
    Rng child = parent.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += parent.next() == child.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

} // namespace
} // namespace mapzero
