/** @file Tests for the bounded MPMC queue feeding mapzerod's workers:
 *  admission control, blocking pop, and close()-as-drain semantics. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "common/queue.hpp"

namespace mapzero {
namespace {

TEST(BoundedQueue, TryPushRefusesWhenFull)
{
    BoundedQueue<int> queue(2);
    EXPECT_EQ(queue.capacity(), 2u);
    EXPECT_TRUE(queue.tryPush(1));
    EXPECT_TRUE(queue.tryPush(2));
    EXPECT_FALSE(queue.tryPush(3)); // full: the BUSY signal
    EXPECT_EQ(queue.size(), 2u);

    EXPECT_EQ(queue.pop().value(), 1);
    EXPECT_TRUE(queue.tryPush(3)); // slot freed
    EXPECT_EQ(queue.pop().value(), 2);
    EXPECT_EQ(queue.pop().value(), 3);
}

TEST(BoundedQueue, CapacityFloorIsOne)
{
    BoundedQueue<int> queue(0);
    EXPECT_EQ(queue.capacity(), 1u);
    EXPECT_TRUE(queue.tryPush(1));
    EXPECT_FALSE(queue.tryPush(2));
}

TEST(BoundedQueue, CloseDrainsQueuedItemsThenSignalsFinished)
{
    BoundedQueue<int> queue(4);
    ASSERT_TRUE(queue.tryPush(10));
    ASSERT_TRUE(queue.tryPush(11));
    queue.close();
    EXPECT_TRUE(queue.closed());
    EXPECT_FALSE(queue.tryPush(12)); // refused after close
    // Already-admitted items still drain in order...
    EXPECT_EQ(queue.pop().value(), 10);
    EXPECT_EQ(queue.pop().value(), 11);
    // ...and only then do consumers see "finished".
    EXPECT_FALSE(queue.pop().has_value());
    EXPECT_FALSE(queue.pop().has_value()); // idempotent
}

TEST(BoundedQueue, PopBlocksUntilPush)
{
    BoundedQueue<int> queue(1);
    std::atomic<bool> popped{false};
    std::thread consumer([&] {
        const std::optional<int> item = queue.pop();
        EXPECT_EQ(item.value(), 42);
        popped.store(true);
    });
    // The consumer should be parked, not spinning on an empty queue.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(popped.load());
    ASSERT_TRUE(queue.tryPush(42));
    consumer.join();
    EXPECT_TRUE(popped.load());
}

TEST(BoundedQueue, CloseWakesBlockedConsumers)
{
    BoundedQueue<int> queue(1);
    std::thread consumer([&] {
        EXPECT_FALSE(queue.pop().has_value());
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.close();
    consumer.join();
}

TEST(BoundedQueue, ManyProducersManyConsumersLoseNothing)
{
    constexpr int kProducers = 4;
    constexpr int kConsumers = 4;
    constexpr int kPerProducer = 250;
    BoundedQueue<int> queue(8);

    std::mutex seen_mutex;
    std::set<int> seen;
    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c) {
        consumers.emplace_back([&] {
            while (std::optional<int> item = queue.pop()) {
                std::lock_guard<std::mutex> lock(seen_mutex);
                seen.insert(*item);
            }
        });
    }
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                const int value = p * kPerProducer + i;
                while (!queue.tryPush(value))
                    std::this_thread::yield(); // full: retry (BUSY)
            }
        });
    }
    for (std::thread &producer : producers)
        producer.join();
    queue.close();
    for (std::thread &consumer : consumers)
        consumer.join();

    EXPECT_EQ(seen.size(),
              static_cast<std::size_t>(kProducers * kPerProducer));
}

} // namespace
} // namespace mapzero
