/** @file Unit tests for request-scoped tracing: TraceContext stage
 *  recording, TraceBinding/TraceScope nesting across thread bindings,
 *  counter merging and propagation, the bounded-timeline cap, and the
 *  offline timeline renderers (ASCII + Chrome trace-event export). */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "core/diagnostics.hpp"

namespace mapzero {
namespace {

TEST(TraceContext, UnboundScopesAndCountsAreNoops)
{
    EXPECT_FALSE(traceCountActive());
    {
        TraceScope scope("orphan");
        EXPECT_FALSE(scope.active());
        traceCountAdd(TraceCount::MctsWaves, 1); // must not crash
    }
    EXPECT_FALSE(traceCountActive());
}

TEST(TraceContext, BoundScopeRecordsOneStagePerClose)
{
    TraceContext context("job-1");
    {
        TraceBinding bind(&context);
        EXPECT_TRUE(traceCountActive() == false); // no scope open yet
        TraceScope stage("compile");
        EXPECT_TRUE(stage.active());
        EXPECT_TRUE(traceCountActive());
    }
    EXPECT_FALSE(traceCountActive());
    const std::vector<TraceStage> stages = context.stages();
    ASSERT_EQ(stages.size(), 1u);
    EXPECT_EQ(stages[0].name, "compile");
    EXPECT_EQ(stages[0].depth, 0);
    EXPECT_GE(stages[0].startUs, 0);
    EXPECT_GE(stages[0].durationUs, 0);
}

TEST(TraceContext, PendingStageClosesExactlyWhereTheNextScopeOpens)
{
    TraceContext context("job-pending");
    context.setPending("queue_wait", 0);
    {
        TraceBinding bind(&context);
        TraceScope stage("compile");
        // The scope's construction already closed the pending stage.
        EXPECT_EQ(context.stageCount(), 1u);
    }
    const std::vector<TraceStage> stages = context.stages();
    ASSERT_EQ(stages.size(), 2u);
    EXPECT_EQ(stages[0].name, "queue_wait");
    EXPECT_EQ(stages[0].depth, 0);
    EXPECT_EQ(stages[1].name, "compile");
    // Shared timestamp: queue_wait ends exactly where compile begins,
    // so the boundary carries zero unattributed time.
    EXPECT_EQ(stages[0].startUs + stages[0].durationUs,
              stages[1].startUs);
}

TEST(TraceContext, NestedScopesDoNotClosePendingStages)
{
    TraceContext context("job-pending-nested");
    context.setPending("queue_wait", 0);
    {
        // A pool-thread binding at base depth 1 (the portfolio's
        // attempt spans) must leave the top-level pending stage alone.
        TraceBinding bind(&context, 1);
        TraceScope stage("attempt");
    }
    std::vector<TraceStage> stages = context.stages();
    ASSERT_EQ(stages.size(), 1u);
    EXPECT_EQ(stages[0].name, "attempt");
    // An unclosed pending stage still renders, open until the
    // snapshot clock.
    const JsonValue timeline = JsonValue::parse(context.timelineJson());
    const JsonValue &listed = timeline.at("stages");
    bool found = false;
    for (std::size_t i = 0; i < listed.size(); ++i)
        found = found || listed.at(i).stringOr("name", "") == "queue_wait";
    EXPECT_TRUE(found);
    // A later top-level scope closes it for real.
    {
        TraceBinding bind(&context);
        TraceScope stage("render");
    }
    stages = context.stages();
    ASSERT_EQ(stages.size(), 3u);
    EXPECT_EQ(stages[1].name, "queue_wait");
    EXPECT_EQ(stages[1].startUs + stages[1].durationUs,
              stages[2].startUs);
}

TEST(TraceContext, NestedScopesGetIncreasingDepth)
{
    TraceContext context("job-2");
    {
        TraceBinding bind(&context);
        TraceScope outer("compile");
        {
            TraceScope inner("attempt", "{\"ii\": 3, \"restart\": 0}");
        }
    }
    const std::vector<TraceStage> stages = context.stages();
    ASSERT_EQ(stages.size(), 2u);
    // Scopes close inner-first.
    EXPECT_EQ(stages[0].name, "attempt");
    EXPECT_EQ(stages[0].depth, 1);
    EXPECT_EQ(stages[1].name, "compile");
    EXPECT_EQ(stages[1].depth, 0);
    EXPECT_NE(stages[0].argsJson.find("\"ii\": 3"), std::string::npos);
}

TEST(TraceContext, BaseDepthOffsetsPoolThreadScopes)
{
    // A portfolio worker re-binds with base_depth 1 so its attempt
    // span nests under the submitting thread's "compile" stage even
    // though the pool thread has no open scopes of its own.
    TraceContext context("job-3");
    std::thread worker([&context] {
        TraceBinding bind(&context, /*base_depth=*/1);
        TraceScope stage("attempt", "{\"ii\": 2, \"restart\": 5}");
    });
    worker.join();
    const std::vector<TraceStage> stages = context.stages();
    ASSERT_EQ(stages.size(), 1u);
    EXPECT_EQ(stages[0].depth, 1);
}

TEST(TraceContext, CountsMergeIntoArgsAndPropagateToParent)
{
    TraceContext context("job-4");
    {
        TraceBinding bind(&context);
        TraceScope outer("compile");
        {
            TraceScope inner("attempt", "{\"ii\": 1, \"restart\": 0}");
            traceCountAdd(TraceCount::MctsWaves, 3);
            traceCountAdd(TraceCount::EvalCacheHits, 7);
            traceCountAdd(TraceCount::EvalCacheHits, 1);
        }
    }
    const std::vector<TraceStage> stages = context.stages();
    ASSERT_EQ(stages.size(), 2u);
    // The inner scope keeps its explicit args and gains its counters.
    EXPECT_NE(stages[0].argsJson.find("\"ii\": 1"), std::string::npos);
    EXPECT_NE(stages[0].argsJson.find("\"mcts_waves\": 3"),
              std::string::npos);
    EXPECT_NE(stages[0].argsJson.find("\"eval_cache_hits\": 8"),
              std::string::npos);
    // Counters roll up into the parent so depth-0 stages stay useful
    // summaries on their own.
    EXPECT_NE(stages[1].argsJson.find("\"mcts_waves\": 3"),
              std::string::npos);
    EXPECT_NE(stages[1].argsJson.find("\"eval_cache_hits\": 8"),
              std::string::npos);
}

TEST(TraceContext, TimelineIsBoundedAndCountsDrops)
{
    TraceContext context("job-5");
    for (int i = 0; i < 600; ++i)
        context.addStage("attempt", i, 1, 1);
    // kMaxStages = 512: the timeline must never grow without bound.
    EXPECT_EQ(context.stageCount(), 512u);
    EXPECT_EQ(context.dropped(), 88u);
    const JsonValue timeline =
        JsonValue::parse(context.timelineJson());
    EXPECT_EQ(static_cast<int>(timeline.numberOr("dropped", 0.0)), 88);
}

TEST(TraceContext, TimelineJsonParsesWithCoverageAndDominantStage)
{
    TraceContext context("job-6");
    context.addStage("queue_wait", 0, 2'000, 0);
    context.addStage("compile", 2'000, 8'000, 0,
                     "{\"method\": \"SA\"}");
    context.addStage("attempt", 2'100, 7'000, 1,
                     "{\"ii\": 2, \"restart\": 0}");
    const JsonValue timeline =
        JsonValue::parse(context.timelineJson());
    EXPECT_EQ(timeline.stringOr("trace_id", ""), "job-6");
    EXPECT_EQ(timeline.stringOr("dominant_stage", ""), "compile");
    ASSERT_TRUE(timeline.at("stages").isArray());
    EXPECT_EQ(timeline.at("stages").size(), 3u);
    // total >= the last stage end, and only depth-0 stages count
    // toward coverage (the nested attempt must not double-book).
    EXPECT_GE(timeline.numberOr("total_us", 0.0), 10'000.0);
    const double coverage = timeline.numberOr("coverage", 0.0);
    EXPECT_GT(coverage, 0.0);
    EXPECT_LE(coverage, 1.0);

    const TraceStageSummary summary = context.summarizeStages();
    EXPECT_EQ(summary.dominantStage, "compile");
    ASSERT_EQ(summary.stageMs.size(), 2u);
    EXPECT_EQ(summary.stageMs[0].first, "queue_wait");
    EXPECT_DOUBLE_EQ(summary.stageMs[0].second, 2.0);
    EXPECT_EQ(summary.stageMs[1].first, "compile");
    EXPECT_DOUBLE_EQ(summary.stageMs[1].second, 8.0);
}

TEST(TraceContext, TopLevelStagesFeedStageHistograms)
{
    Histogram &h = metrics().histogram("compile.stage_seconds.render");
    const std::int64_t before = h.count();
    TraceContext context("job-7");
    context.addStage("render", 0, 1'500, 0);
    context.addStage("inner", 0, 1'500, 1); // depth>0: not recorded
    EXPECT_EQ(h.count(), before + 1);
}

TEST(TraceContext, AsciiRendererShowsEveryStage)
{
    TraceContext context("job-8");
    context.addStage("queue_wait", 0, 1'000, 0);
    context.addStage("compile", 1'000, 9'000, 0);
    context.addStage("attempt", 1'100, 8'000, 1,
                     "{\"ii\": 4, \"restart\": 2, \"mcts_waves\": 6}");
    const JsonValue timeline =
        JsonValue::parse(context.timelineJson());
    const std::string text = renderTraceTimeline(timeline);
    EXPECT_NE(text.find("request timeline job-8"), std::string::npos);
    EXPECT_NE(text.find("queue_wait"), std::string::npos);
    EXPECT_NE(text.find("compile"), std::string::npos);
    // The nested attempt is indented and carries its args inline.
    EXPECT_NE(text.find("  attempt"), std::string::npos);
    EXPECT_NE(text.find("ii=4"), std::string::npos);
    EXPECT_NE(text.find("mcts_waves=6"), std::string::npos);
    EXPECT_NE(text.find("dominant stage: compile"), std::string::npos);
}

TEST(TraceContext, ChromeExportIsValidTraceEventJson)
{
    TraceContext context("job-9");
    context.addStage("queue_wait", 0, 1'000, 0);
    context.addStage("attempt", 1'100, 8'000, 1,
                     "{\"ii\": 4, \"restart\": 2}");
    const std::string chrome = timelineToChromeJson(
        JsonValue::parse(context.timelineJson()));
    // Must round-trip through the strict parser (what chrome://tracing
    // would load) and keep the complete-event fields.
    const JsonValue doc = JsonValue::parse(chrome);
    ASSERT_TRUE(doc.has("traceEvents"));
    const JsonValue &events = doc.at("traceEvents");
    // One metadata record plus one event per stage.
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events.at(0).stringOr("ph", ""), "M");
    EXPECT_EQ(events.at(1).stringOr("ph", ""), "X");
    EXPECT_EQ(events.at(1).stringOr("name", ""), "queue_wait");
    EXPECT_EQ(static_cast<int>(events.at(2).numberOr("dur", 0.0)),
              8'000);
    EXPECT_EQ(static_cast<int>(
                  events.at(2).at("args").numberOr("ii", 0.0)),
              4);
}

TEST(TraceContext, BindingRestoresThePreviousContext)
{
    TraceContext outer_context("job-outer");
    TraceContext inner_context("job-inner");
    TraceBinding outer_bind(&outer_context);
    {
        TraceScope outer_stage("compile");
        {
            TraceBinding inner_bind(&inner_context);
            TraceScope inner_stage("render");
        }
        // Back on the outer context: counts must land on its scope.
        traceCountAdd(TraceCount::RouteCalls, 2);
    }
    ASSERT_EQ(inner_context.stages().size(), 1u);
    EXPECT_EQ(inner_context.stages()[0].name, "render");
    EXPECT_EQ(inner_context.stages()[0].depth, 0);
    ASSERT_EQ(outer_context.stages().size(), 1u);
    EXPECT_NE(outer_context.stages()[0].argsJson.find(
                  "\"route_calls\": 2"),
              std::string::npos);
}

} // namespace
} // namespace mapzero
