/** @file Unit tests for Timer and Deadline. */

#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "common/timer.hpp"

namespace mapzero {
namespace {

TEST(Timer, MonotonicallyIncreases)
{
    Timer t;
    const double a = t.seconds();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    const double b = t.seconds();
    EXPECT_GE(b, a);
    EXPECT_GT(b, 0.0);
}

TEST(Timer, ResetRestarts)
{
    Timer t;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    t.reset();
    EXPECT_LT(t.seconds(), 0.01);
}

TEST(Deadline, UnlimitedNeverExpires)
{
    Deadline d(0.0);
    EXPECT_FALSE(d.expired());
    EXPECT_TRUE(std::isinf(d.remaining()));
}

TEST(Deadline, ExpiresAfterBudget)
{
    Deadline d(0.005);
    EXPECT_FALSE(d.expired());
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_TRUE(d.expired());
    EXPECT_DOUBLE_EQ(d.remaining(), 0.0);
}

TEST(Deadline, RemainingDecreases)
{
    Deadline d(10.0);
    const double r1 = d.remaining();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_LT(d.remaining(), r1);
    EXPECT_DOUBLE_EQ(d.budget(), 10.0);
}

} // namespace
} // namespace mapzero
