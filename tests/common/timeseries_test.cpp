/** @file Unit tests for the time-series recorder. */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/timeseries.hpp"

namespace mapzero {
namespace {

/** A private registry keeps these tests off the global instruments. */
class TimeSeriesTest : public ::testing::Test
{
  protected:
    MetricsRegistry registry;
    TimeSeriesRecorder recorder{registry};
};

TEST_F(TimeSeriesTest, SampleNowRecordsEveryInstrumentKind)
{
    registry.counter("ts.counter").add(3);
    registry.gauge("ts.gauge").set(1.5);
    registry.histogram("ts.hist").record(2.0);
    registry.histogram("ts.hist").record(4.0);
    recorder.sampleNow();

    EXPECT_EQ(recorder.ticks(), 1);
    EXPECT_DOUBLE_EQ(recorder.window("ts.counter").last, 3.0);
    EXPECT_DOUBLE_EQ(recorder.window("ts.gauge").last, 1.5);
    // Histograms contribute derived count/sum series.
    EXPECT_DOUBLE_EQ(recorder.window("ts.hist.count").last, 2.0);
    EXPECT_DOUBLE_EQ(recorder.window("ts.hist.sum").last, 6.0);
    EXPECT_TRUE(recorder.window("ts.unknown").points.empty());
}

TEST_F(TimeSeriesTest, WindowTracksLastMinMax)
{
    Gauge &g = registry.gauge("ts.depth");
    for (double v : {4.0, 9.0, 1.0, 6.0}) {
        g.set(v);
        recorder.sampleNow();
    }
    const SeriesWindow w = recorder.window("ts.depth");
    ASSERT_EQ(w.points.size(), 4u);
    EXPECT_DOUBLE_EQ(w.last, 6.0);
    EXPECT_DOUBLE_EQ(w.min, 1.0);
    EXPECT_DOUBLE_EQ(w.max, 9.0);
}

TEST_F(TimeSeriesTest, RingWrapsAndKeepsNewestPointsInOrder)
{
    recorder.setCapacity(4);
    Counter &c = registry.counter("ts.wrap");
    for (int i = 1; i <= 10; ++i) {
        c.add(1);
        recorder.sampleNow();
    }
    const SeriesWindow w = recorder.window("ts.wrap");
    ASSERT_EQ(w.points.size(), 4u);
    // Counter value i at tick i: the ring retains ticks 7..10.
    EXPECT_DOUBLE_EQ(w.points.front().value, 7.0);
    EXPECT_DOUBLE_EQ(w.points.back().value, 10.0);
    EXPECT_DOUBLE_EQ(w.min, 7.0);
    EXPECT_DOUBLE_EQ(w.max, 10.0);
    // Oldest-first time order survives the wraparound.
    for (std::size_t i = 1; i < w.points.size(); ++i)
        EXPECT_GE(w.points[i].tUs, w.points[i - 1].tUs);
}

TEST_F(TimeSeriesTest, ShrinkingCapacityDropsOldestPoints)
{
    Counter &c = registry.counter("ts.shrink");
    for (int i = 1; i <= 8; ++i) {
        c.add(1);
        recorder.sampleNow();
    }
    recorder.setCapacity(3);
    c.add(1);
    recorder.sampleNow();
    const SeriesWindow w = recorder.window("ts.shrink");
    ASSERT_EQ(w.points.size(), 3u);
    EXPECT_DOUBLE_EQ(w.points.back().value, 9.0);
    for (std::size_t i = 1; i < w.points.size(); ++i)
        EXPECT_GE(w.points[i].tUs, w.points[i - 1].tUs);
}

TEST_F(TimeSeriesTest, SamplerThreadTicksAndStopsCleanly)
{
    registry.gauge("ts.live").set(1.0);
    recorder.start(/*period_ms=*/10);
    EXPECT_TRUE(recorder.running());
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (recorder.ticks() < 3 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_GE(recorder.ticks(), 3);
    recorder.stop();
    EXPECT_FALSE(recorder.running());
    const std::int64_t frozen = recorder.ticks();
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_EQ(recorder.ticks(), frozen);
}

TEST_F(TimeSeriesTest, StartIsIdempotentAndClearDropsRings)
{
    recorder.start(10);
    recorder.start(20); // adopts the new period, no second thread
    EXPECT_TRUE(recorder.running());
    EXPECT_EQ(recorder.periodMs(), 20);
    recorder.stop();

    registry.counter("ts.gone").add(1);
    recorder.sampleNow();
    EXPECT_FALSE(recorder.window("ts.gone").points.empty());
    recorder.clear();
    EXPECT_TRUE(recorder.window("ts.gone").points.empty());
    EXPECT_TRUE(recorder.windows().empty());
}

TEST_F(TimeSeriesTest, SnapshotJsonParsesAndMatchesTheWindow)
{
    registry.gauge("ts.json").set(2.5);
    recorder.sampleNow();
    recorder.sampleNow();
    const JsonValue doc = JsonValue::parse(recorder.snapshotJson());
    EXPECT_DOUBLE_EQ(doc.numberOr("ticks", 0), 2.0);
    EXPECT_DOUBLE_EQ(doc.numberOr("capacity", 0),
                     static_cast<double>(recorder.capacity()));
    const JsonValue &series = doc.at("series").at("ts.json");
    EXPECT_DOUBLE_EQ(series.numberOr("last", 0), 2.5);
    EXPECT_DOUBLE_EQ(series.numberOr("min", 0), 2.5);
    EXPECT_EQ(series.at("points").size(), 2u);
}

TEST(TimeSeriesGlobal, GlobalRecorderWatchesTheGlobalRegistry)
{
    TimeSeriesRecorder &rec = TimeSeriesRecorder::global();
    EXPECT_EQ(&rec, &TimeSeriesRecorder::global());
    const bool was_running = rec.running();
    rec.sampleNow();
    // Watching the global registry refreshes proc.* before sampling,
    // so the resource series exist without anyone publishing them.
    EXPECT_GT(rec.window("proc.rss_bytes").last, 0.0);
    if (!was_running)
        rec.stop();
}

} // namespace
} // namespace mapzero
