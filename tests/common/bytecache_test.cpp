/** @file Tests for the sharded byte-keyed LRU cache
 *  (common/bytecache.hpp): exact LRU in the single-shard regime,
 *  eviction accounting, the pure-function-of-key re-insert contract,
 *  tombstone/heap compaction under churn, the zero-capacity guard, and
 *  concurrent mixed load across shards. */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/bytecache.hpp"

namespace mapzero {
namespace {

TEST(ShardedByteCache, StoresAndRetrievesByExactBytes)
{
    ShardedByteCache<int> cache(8);
    EXPECT_TRUE(cache.enabled());
    EXPECT_TRUE(cache.insert("alpha", 1).inserted);
    EXPECT_TRUE(cache.insert("beta", 2).inserted);

    int out = 0;
    EXPECT_TRUE(cache.lookup("alpha", out));
    EXPECT_EQ(out, 1);
    EXPECT_TRUE(cache.lookup("beta", out));
    EXPECT_EQ(out, 2);
    EXPECT_FALSE(cache.lookup("alph", out));
    EXPECT_FALSE(cache.lookup("alphaa", out));
    EXPECT_EQ(cache.size(), 2u);
}

TEST(ShardedByteCache, SmallCapacityCollapsesToOneShardWithExactLru)
{
    ShardedByteCache<int> cache(3);
    ASSERT_EQ(cache.shardCount(), 1u);

    cache.insert("a", 1);
    cache.insert("b", 2);
    cache.insert("c", 3);
    int out = 0;
    ASSERT_TRUE(cache.lookup("a", out)); // "b" is now the LRU entry

    const auto result = cache.insert("d", 4);
    EXPECT_TRUE(result.inserted);
    EXPECT_EQ(result.evicted, 1u);
    EXPECT_FALSE(cache.lookup("b", out));
    EXPECT_TRUE(cache.lookup("a", out));
    EXPECT_TRUE(cache.lookup("c", out));
    EXPECT_TRUE(cache.lookup("d", out));
    EXPECT_EQ(cache.size(), 3u);
}

TEST(ShardedByteCache, ReinsertKeepsStoredValueAndRefreshesRecency)
{
    ShardedByteCache<int> cache(2);
    cache.insert("x", 10);
    cache.insert("y", 20);

    // Values are pure functions of the key: a re-insert must not
    // replace the stored value...
    const auto refresh = cache.insert("x", 999);
    EXPECT_FALSE(refresh.inserted);
    EXPECT_EQ(refresh.evicted, 0u);
    int out = 0;
    ASSERT_TRUE(cache.lookup("x", out));
    EXPECT_EQ(out, 10);

    // ...but it must refresh recency: inserting a third key now evicts
    // "y", not the re-inserted "x".
    cache.insert("x", 0);
    cache.insert("z", 30);
    EXPECT_TRUE(cache.lookup("x", out));
    EXPECT_FALSE(cache.lookup("y", out));
}

TEST(ShardedByteCache, ZeroCapacityIsDisabledNotUnderflowing)
{
    ShardedByteCache<int> cache(0);
    EXPECT_FALSE(cache.enabled());
    EXPECT_EQ(cache.shardCount(), 0u);

    const auto result = cache.insert("k", 1);
    EXPECT_FALSE(result.inserted);
    EXPECT_EQ(result.evicted, 0u);
    int out = 0;
    EXPECT_FALSE(cache.lookup("k", out));
    EXPECT_EQ(cache.size(), 0u);
}

TEST(ShardedByteCache, EmptyKeyIsAValidKey)
{
    ShardedByteCache<int> cache(4);
    EXPECT_TRUE(cache.insert("", 7).inserted);
    int out = 0;
    ASSERT_TRUE(cache.lookup("", out));
    EXPECT_EQ(out, 7);
}

TEST(ShardedByteCache, LargeCapacityShardsAndKeepsEveryEntry)
{
    ShardedByteCache<std::size_t> cache(1024);
    EXPECT_GT(cache.shardCount(), 1u);

    for (std::size_t i = 0; i < 1024; ++i)
        cache.insert("key-" + std::to_string(i), i);
    // The per-shard capacities sum to the total and FNV spreads 1024
    // keys close to evenly - but not exactly, so allow the few dozen
    // evictions shard imbalance causes.
    EXPECT_GE(cache.size(), 960u);
    EXPECT_LE(cache.size(), 1024u);

    std::size_t present = 0;
    for (std::size_t i = 0; i < 1024; ++i) {
        std::size_t out = 0;
        if (cache.lookup("key-" + std::to_string(i), out)) {
            EXPECT_EQ(out, i);
            ++present;
        }
    }
    EXPECT_EQ(present, cache.size());
}

TEST(ShardedByteCache, ChurnWellPastCapacityStaysConsistent)
{
    // 4x capacity of distinct keys through a small cache: every insert
    // past the fill point evicts, exercising tombstone reuse and the
    // compaction rebuild. The most recent keys must all survive.
    ShardedByteCache<std::size_t> cache(16, 1);
    std::size_t evictions = 0;
    for (std::size_t i = 0; i < 64; ++i)
        evictions += cache.insert("churn-" + std::to_string(i), i).evicted;
    EXPECT_EQ(evictions, 48u);
    EXPECT_EQ(cache.size(), 16u);
    for (std::size_t i = 48; i < 64; ++i) {
        std::size_t out = 0;
        ASSERT_TRUE(cache.lookup("churn-" + std::to_string(i), out)) << i;
        EXPECT_EQ(out, i);
    }
}

TEST(ShardedByteCache, HeapCompactionPreservesEntries)
{
    // Long keys + heavy churn force the key-heap "bloated" rebuild
    // (heap > 4096 bytes and > 2x live); entries must survive it.
    ShardedByteCache<std::size_t> cache(8, 1);
    const std::string padding(256, 'p');
    for (std::size_t i = 0; i < 200; ++i)
        cache.insert(padding + std::to_string(i), i);
    EXPECT_EQ(cache.size(), 8u);
    for (std::size_t i = 192; i < 200; ++i) {
        std::size_t out = 0;
        ASSERT_TRUE(cache.lookup(padding + std::to_string(i), out)) << i;
        EXPECT_EQ(out, i);
    }
}

TEST(ShardedByteCache, MatchesReferenceMapUnderMixedOperations)
{
    // Differential test against std::unordered_map at a capacity the
    // working set never exceeds, so eviction cannot cause divergence.
    ShardedByteCache<int> cache(512);
    std::unordered_map<std::string, int> reference;
    std::uint64_t state = 42;
    const auto next = [&state] {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return state >> 33;
    };
    for (int round = 0; round < 4000; ++round) {
        const std::string key = "k" + std::to_string(next() % 300);
        if (next() % 2 == 0) {
            const int value = static_cast<int>(next() % 1000);
            if (reference.emplace(key, value).second) {
                cache.insert(key, value);
            }
        } else {
            int out = -1;
            const bool hit = cache.lookup(key, out);
            const auto it = reference.find(key);
            ASSERT_EQ(hit, it != reference.end()) << key;
            if (hit) {
                EXPECT_EQ(out, it->second) << key;
            }
        }
    }
    EXPECT_EQ(cache.size(), reference.size());
}

TEST(ShardedByteCache, ConcurrentMixedLoadIsSafeAndConverges)
{
    ShardedByteCache<std::size_t> cache(4096);
    constexpr std::size_t kThreads = 8;
    constexpr std::size_t kKeys = 512;

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&cache, t] {
            for (std::size_t round = 0; round < 200; ++round) {
                const std::size_t k = (t * 131 + round * 7) % kKeys;
                const std::string key = "shared-" + std::to_string(k);
                std::size_t out = 0;
                if (cache.lookup(key, out)) {
                    // The first writer's value must be what everyone
                    // reads forever after.
                    EXPECT_EQ(out, k);
                } else {
                    cache.insert(key, k);
                }
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    for (std::size_t k = 0; k < kKeys; ++k) {
        std::size_t out = 0;
        ASSERT_TRUE(cache.lookup("shared-" + std::to_string(k), out));
        EXPECT_EQ(out, k);
    }
}

} // namespace
} // namespace mapzero
