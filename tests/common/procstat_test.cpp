/** @file Unit tests for the process resource sampler. */

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "common/metrics.hpp"
#include "common/procstat.hpp"

namespace mapzero {
namespace {

TEST(ProcStat, RssAndThreadsAreSane)
{
    const ProcStat s = sampleProcStat();
    // Any live process has resident memory; the gtest binary easily
    // exceeds a megabyte.
    EXPECT_GT(s.rssBytes, 1 << 20);
    EXPECT_GE(s.peakRssBytes, s.rssBytes);
    if (s.fromProc) {
        EXPECT_GE(s.threads, 1);
        // stdin/stdout/stderr at minimum.
        EXPECT_GE(s.openFds, 3);
    }
}

TEST(ProcStat, CpuTimeIsMonotoneAndAdvancesUnderLoad)
{
    const ProcStat before = sampleProcStat();
    EXPECT_GE(before.cpuUserSeconds, 0.0);
    EXPECT_GE(before.cpuSysSeconds, 0.0);
    // Burn enough CPU to be visible at getrusage resolution.
    volatile double sink = 0.0;
    for (int i = 0; i < 20'000'000; ++i)
        sink = sink + static_cast<double>(i) * 1e-9;
    (void)sink;
    const ProcStat after = sampleProcStat();
    EXPECT_GE(after.cpuUserSeconds, before.cpuUserSeconds);
    EXPECT_GE(after.cpuSysSeconds, before.cpuSysSeconds);
    EXPECT_GT(after.cpuSeconds(), before.cpuSeconds());
}

TEST(ProcStat, PublishSetsTheProcGauges)
{
    const ProcStat s = publishProcMetrics();
    MetricsRegistry &reg = MetricsRegistry::global();
    EXPECT_DOUBLE_EQ(reg.gauge("proc.rss_bytes").value(),
                     static_cast<double>(s.rssBytes));
    EXPECT_DOUBLE_EQ(reg.gauge("proc.peak_rss_bytes").value(),
                     static_cast<double>(s.peakRssBytes));
    EXPECT_DOUBLE_EQ(reg.gauge("proc.cpu_seconds").value(),
                     s.cpuSeconds());
    // The optional fields publish whatever was sampled, -1 included.
    EXPECT_DOUBLE_EQ(reg.gauge("proc.threads").value(),
                     static_cast<double>(s.threads));
    EXPECT_DOUBLE_EQ(reg.gauge("proc.open_fds").value(),
                     static_cast<double>(s.openFds));
}

TEST(ProcStat, RusageOnlySourceExercisesTheFallbackPath)
{
    // The explicit source override runs the macOS/containers path on
    // any host: no /proc reads, rss/peak from ru_maxrss, and the
    // /proc-only fields stay at their "unavailable" markers.
    const ProcStat s = sampleProcStat(ProcStatSource::RusageOnly);
    EXPECT_FALSE(s.fromProc);
    EXPECT_GT(s.rssBytes, 0);
    EXPECT_EQ(s.peakRssBytes, s.rssBytes); // both from ru_maxrss
    EXPECT_GE(s.cpuSeconds(), 0.0);
    EXPECT_EQ(s.threads, -1);
    EXPECT_EQ(s.openFds, -1);
}

TEST(ProcStat, ForceFallbackEnvVarDemotesAuto)
{
    ASSERT_EQ(setenv("MAPZERO_PROCSTAT_FORCE_FALLBACK", "1", 1), 0);
    const ProcStat forced = sampleProcStat();
    ASSERT_EQ(unsetenv("MAPZERO_PROCSTAT_FORCE_FALLBACK"), 0);

    EXPECT_FALSE(forced.fromProc);
    EXPECT_GT(forced.rssBytes, 0);
    EXPECT_EQ(forced.threads, -1);
    EXPECT_EQ(forced.openFds, -1);

    // With the variable gone, Auto is back to the full sampler (on
    // hosts that have /proc; elsewhere both paths are the fallback).
    const ProcStat normal = sampleProcStat();
    if (normal.fromProc) {
        EXPECT_GE(normal.threads, 1);
    }
}

TEST(ProcStat, EmptyForceFallbackValueIsIgnored)
{
    ASSERT_EQ(setenv("MAPZERO_PROCSTAT_FORCE_FALLBACK", "", 1), 0);
    const ProcStat s = sampleProcStat();
    ASSERT_EQ(unsetenv("MAPZERO_PROCSTAT_FORCE_FALLBACK"), 0);
    // Empty means unset: the sampler behaves exactly like Auto.
    EXPECT_EQ(s.fromProc, sampleProcStat().fromProc);
}

TEST(ProcStat, RssGrowsWithAllocation)
{
    const ProcStat before = sampleProcStat();
    // 32 MiB, touched so the kernel actually maps the pages.
    std::vector<char> ballast(32u << 20, 1);
    for (std::size_t i = 0; i < ballast.size(); i += 4096)
        ballast[i] = static_cast<char>(i);
    const ProcStat after = sampleProcStat();
    EXPECT_GT(after.peakRssBytes, before.rssBytes);
}

} // namespace
} // namespace mapzero
