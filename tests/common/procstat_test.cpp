/** @file Unit tests for the process resource sampler. */

#include <gtest/gtest.h>

#include <vector>

#include "common/metrics.hpp"
#include "common/procstat.hpp"

namespace mapzero {
namespace {

TEST(ProcStat, RssAndThreadsAreSane)
{
    const ProcStat s = sampleProcStat();
    // Any live process has resident memory; the gtest binary easily
    // exceeds a megabyte.
    EXPECT_GT(s.rssBytes, 1 << 20);
    EXPECT_GE(s.peakRssBytes, s.rssBytes);
    if (s.fromProc) {
        EXPECT_GE(s.threads, 1);
        // stdin/stdout/stderr at minimum.
        EXPECT_GE(s.openFds, 3);
    }
}

TEST(ProcStat, CpuTimeIsMonotoneAndAdvancesUnderLoad)
{
    const ProcStat before = sampleProcStat();
    EXPECT_GE(before.cpuUserSeconds, 0.0);
    EXPECT_GE(before.cpuSysSeconds, 0.0);
    // Burn enough CPU to be visible at getrusage resolution.
    volatile double sink = 0.0;
    for (int i = 0; i < 20'000'000; ++i)
        sink = sink + static_cast<double>(i) * 1e-9;
    (void)sink;
    const ProcStat after = sampleProcStat();
    EXPECT_GE(after.cpuUserSeconds, before.cpuUserSeconds);
    EXPECT_GE(after.cpuSysSeconds, before.cpuSysSeconds);
    EXPECT_GT(after.cpuSeconds(), before.cpuSeconds());
}

TEST(ProcStat, PublishSetsTheProcGauges)
{
    const ProcStat s = publishProcMetrics();
    MetricsRegistry &reg = MetricsRegistry::global();
    EXPECT_DOUBLE_EQ(reg.gauge("proc.rss_bytes").value(),
                     static_cast<double>(s.rssBytes));
    EXPECT_DOUBLE_EQ(reg.gauge("proc.peak_rss_bytes").value(),
                     static_cast<double>(s.peakRssBytes));
    EXPECT_DOUBLE_EQ(reg.gauge("proc.cpu_seconds").value(),
                     s.cpuSeconds());
    // The optional fields publish whatever was sampled, -1 included.
    EXPECT_DOUBLE_EQ(reg.gauge("proc.threads").value(),
                     static_cast<double>(s.threads));
    EXPECT_DOUBLE_EQ(reg.gauge("proc.open_fds").value(),
                     static_cast<double>(s.openFds));
}

TEST(ProcStat, RssGrowsWithAllocation)
{
    const ProcStat before = sampleProcStat();
    // 32 MiB, touched so the kernel actually maps the pages.
    std::vector<char> ballast(32u << 20, 1);
    for (std::size_t i = 0; i < ballast.size(); i += 4096)
        ballast[i] = static_cast<char>(i);
    const ProcStat after = sampleProcStat();
    EXPECT_GT(after.peakRssBytes, before.rssBytes);
}

} // namespace
} // namespace mapzero
