/** @file Tests for the on-disk byte store (common/persist.hpp):
 *  envelope round-trips, every corruption mode reading as a miss, the
 *  key echo defeating filename-hash collisions, and atomic overwrite
 *  behaviour of the store. */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include <unistd.h>

#include "common/persist.hpp"

namespace mapzero {
namespace {

class DiskByteStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = (std::filesystem::temp_directory_path() /
                ("mapzero-persist-test-" +
                 std::to_string(::getpid()) + "-" +
                 ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name()))
                   .string();
        std::filesystem::remove_all(dir_);
    }

    void
    TearDown() override
    {
        std::filesystem::remove_all(dir_);
    }

    std::string dir_;
};

TEST_F(DiskByteStoreTest, RoundTripsArbitraryBytes)
{
    DiskByteStore store(dir_);
    ASSERT_TRUE(store.enabled());

    const std::string key("binary\0key\xff", 10);
    const std::string payload("payload\0with\0nulls", 18);
    ASSERT_TRUE(store.store(key, payload));

    const auto loaded = store.load(key);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(*loaded, payload);
    EXPECT_FALSE(store.load("some other key").has_value());
}

TEST_F(DiskByteStoreTest, EmptyDirectoryDisablesTheStore)
{
    DiskByteStore store("");
    EXPECT_FALSE(store.enabled());
    EXPECT_FALSE(store.store("k", "v"));
    EXPECT_FALSE(store.load("k").has_value());
}

TEST_F(DiskByteStoreTest, OverwriteReplacesThePayload)
{
    DiskByteStore store(dir_);
    ASSERT_TRUE(store.store("k", "first"));
    ASSERT_TRUE(store.store("k", "second"));
    const auto loaded = store.load("k");
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(*loaded, "second");
}

TEST_F(DiskByteStoreTest, EveryFlippedByteReadsAsAMiss)
{
    DiskByteStore store(dir_);
    ASSERT_TRUE(store.store("k", "precious payload"));
    const std::string path = store.pathOf("k");

    std::string original;
    {
        std::ifstream is(path, std::ios::binary);
        original.assign(std::istreambuf_iterator<char>(is),
                        std::istreambuf_iterator<char>());
    }
    ASSERT_FALSE(original.empty());

    for (std::size_t i = 0; i < original.size(); ++i) {
        std::string corrupt = original;
        corrupt[i] = static_cast<char>(corrupt[i] ^ 0x5a);
        {
            std::ofstream os(path,
                             std::ios::binary | std::ios::trunc);
            os.write(corrupt.data(),
                     static_cast<std::streamsize>(corrupt.size()));
        }
        EXPECT_FALSE(store.load("k").has_value())
            << "flipped byte " << i << " was served";
    }
}

TEST_F(DiskByteStoreTest, TruncationReadsAsAMiss)
{
    DiskByteStore store(dir_);
    ASSERT_TRUE(store.store("k", "precious payload"));
    const std::string path = store.pathOf("k");

    std::string original;
    {
        std::ifstream is(path, std::ios::binary);
        original.assign(std::istreambuf_iterator<char>(is),
                        std::istreambuf_iterator<char>());
    }
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{3}, original.size() / 2,
          original.size() - 1}) {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os.write(original.data(), static_cast<std::streamsize>(keep));
        os.close();
        EXPECT_FALSE(store.load("k").has_value()) << keep << " bytes";
    }
}

TEST_F(DiskByteStoreTest, FilenameCollisionServesAMissNotTheWrongEntry)
{
    DiskByteStore store(dir_);
    ASSERT_TRUE(store.store("victim", "victim payload"));

    // Simulate a filename-hash collision: place the intact, correctly
    // CRC'd envelope of "victim" where "imposter" would live. The key
    // echo inside the envelope must reject it.
    std::string envelope;
    {
        std::ifstream is(store.pathOf("victim"), std::ios::binary);
        envelope.assign(std::istreambuf_iterator<char>(is),
                        std::istreambuf_iterator<char>());
    }
    {
        std::ofstream os(store.pathOf("imposter"),
                         std::ios::binary | std::ios::trunc);
        os.write(envelope.data(),
                 static_cast<std::streamsize>(envelope.size()));
    }
    EXPECT_FALSE(store.load("imposter").has_value());
    EXPECT_TRUE(store.load("victim").has_value());
}

TEST(DiskEntryFraming, ParseRejectsWrongKeyAndGarbage)
{
    const std::string framed = frameDiskEntry("key-a", "payload-a");
    const auto parsed = parseDiskEntry(framed, "key-a");
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, "payload-a");

    EXPECT_FALSE(parseDiskEntry(framed, "key-b").has_value());
    EXPECT_FALSE(parseDiskEntry("", "key-a").has_value());
    EXPECT_FALSE(parseDiskEntry("short", "key-a").has_value());
    EXPECT_FALSE(
        parseDiskEntry(std::string(64, '\0'), "key-a").has_value());
}

TEST(AtomicWriteFile, LeavesNoTempFileBehind)
{
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("mapzero-persist-atomic-" + std::to_string(::getpid())))
            .string();
    std::filesystem::create_directories(dir);
    const std::string path = dir + "/entry.bin";
    ASSERT_TRUE(atomicWriteFile(path, "contents"));
    EXPECT_TRUE(std::filesystem::exists(path));
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace mapzero
