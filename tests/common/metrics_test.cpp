/** @file Unit tests for the metrics registry. */

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "common/metrics.hpp"

namespace mapzero {
namespace {

/** Fresh registries per test keep the global one untouched. */
class MetricsTest : public ::testing::Test
{
  protected:
    MetricsRegistry registry;
};

TEST_F(MetricsTest, CounterStartsAtZeroAndAccumulates)
{
    Counter &c = registry.counter("test.counter");
    EXPECT_EQ(c.value(), 0);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42);
}

TEST_F(MetricsTest, SameNameReturnsSameInstrument)
{
    Counter &a = registry.counter("test.same");
    Counter &b = registry.counter("test.same");
    EXPECT_EQ(&a, &b);
    a.add(3);
    EXPECT_EQ(b.value(), 3);
}

TEST_F(MetricsTest, GaugeHoldsLastValue)
{
    Gauge &g = registry.gauge("test.gauge");
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
    g.set(2.5);
    g.set(-7.25);
    EXPECT_DOUBLE_EQ(g.value(), -7.25);
}

TEST_F(MetricsTest, HistogramBasicStats)
{
    Histogram &h = registry.histogram("test.hist");
    EXPECT_EQ(h.count(), 0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    h.record(1.0);
    h.record(2.0);
    h.record(3.0);
    EXPECT_EQ(h.count(), 3);
    EXPECT_DOUBLE_EQ(h.sum(), 6.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 3.0);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST_F(MetricsTest, HistogramPercentilesOnKnownDistribution)
{
    Histogram &h = registry.histogram("test.uniform");
    // Uniform grid over [1, 1000]: log-bucketing guarantees relative
    // accuracy within the bucket width (factor 2).
    for (int i = 1; i <= 1000; ++i)
        h.record(static_cast<double>(i));
    const double p50 = h.percentile(0.50);
    const double p95 = h.percentile(0.95);
    const double p99 = h.percentile(0.99);
    EXPECT_GE(p50, 250.0);
    EXPECT_LE(p50, 1000.0);
    EXPECT_GE(p95, 475.0);
    EXPECT_LE(p95, 1000.0);
    EXPECT_GE(p99, p95);
    EXPECT_LE(p99, 1000.0);
    // Percentiles never exceed the observed extremes.
    EXPECT_GE(h.percentile(0.0), 1.0);
    EXPECT_LE(h.percentile(1.0), 1000.0);
}

TEST_F(MetricsTest, HistogramTightBucketsAreExact)
{
    Histogram &h = registry.histogram("test.point");
    // All samples in one bucket: every percentile lands inside it.
    for (int i = 0; i < 100; ++i)
        h.record(5.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 5.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 5.0);
}

TEST_F(MetricsTest, HistogramUnderflowBucket)
{
    Histogram &h = registry.histogram("test.underflow");
    h.record(0.0);
    h.record(-1.0);
    EXPECT_EQ(h.count(), 2);
    EXPECT_DOUBLE_EQ(h.min(), -1.0);
    EXPECT_LE(h.percentile(0.5), 0.0);
}

TEST_F(MetricsTest, DisabledRegistryDropsAllRecords)
{
    Counter &c = registry.counter("test.disabled_counter");
    Gauge &g = registry.gauge("test.disabled_gauge");
    Histogram &h = registry.histogram("test.disabled_hist");
    registry.setEnabled(false);
    c.add(5);
    g.set(1.0);
    h.record(1.0);
    EXPECT_EQ(c.value(), 0);
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
    EXPECT_EQ(h.count(), 0);
    registry.setEnabled(true);
    c.add(5);
    EXPECT_EQ(c.value(), 5);
}

TEST_F(MetricsTest, ResetZeroesButKeepsReferences)
{
    Counter &c = registry.counter("test.reset");
    Histogram &h = registry.histogram("test.reset_hist");
    c.add(9);
    h.record(4.0);
    registry.reset();
    EXPECT_EQ(c.value(), 0);
    EXPECT_EQ(h.count(), 0);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
    c.add(1);
    EXPECT_EQ(c.value(), 1);
}

TEST_F(MetricsTest, ConcurrentIncrementsAreLossless)
{
    Counter &c = registry.counter("test.concurrent");
    Histogram &h = registry.histogram("test.concurrent_hist");
    constexpr int kThreads = 8;
    constexpr int kIncrements = 10000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&c, &h] {
            for (int i = 0; i < kIncrements; ++i) {
                c.add();
                h.record(1.0);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(c.value(), kThreads * kIncrements);
    EXPECT_EQ(h.count(), kThreads * kIncrements);
    EXPECT_DOUBLE_EQ(h.sum(), kThreads * kIncrements * 1.0);
}

TEST_F(MetricsTest, SnapshotJsonContainsAllInstruments)
{
    registry.counter("snap.counter").add(7);
    registry.gauge("snap.gauge").set(1.5);
    registry.histogram("snap.hist").record(2.0);
    const std::string json = registry.snapshotJson();
    EXPECT_NE(json.find("\"snap.counter\": 7"), std::string::npos);
    EXPECT_NE(json.find("\"snap.gauge\": 1.5"), std::string::npos);
    EXPECT_NE(json.find("\"snap.hist\""), std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST_F(MetricsTest, GlobalRegistryIsASingleton)
{
    EXPECT_EQ(&MetricsRegistry::global(), &metrics());
}

TEST(JsonEscape, EscapesControlAndQuoteCharacters)
{
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

} // namespace
} // namespace mapzero
