/** @file Unit tests for the parallel execution subsystem. */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"

namespace mapzero {
namespace {

/** Restores the uninstalled job default and env var on scope exit. */
struct JobsGuard {
    ~JobsGuard()
    {
        clearDefaultJobs();
        unsetenv("MAPZERO_NUM_THREADS");
    }
};

TEST(ResolveJobs, ExplicitRequestWins)
{
    JobsGuard guard;
    setDefaultJobs(8);
    setenv("MAPZERO_NUM_THREADS", "4", 1);
    EXPECT_EQ(resolveJobs(3), 3u);
}

TEST(ResolveJobs, InstalledDefaultBeatsEnvironment)
{
    JobsGuard guard;
    setenv("MAPZERO_NUM_THREADS", "5", 1);
    setDefaultJobs(2);
    EXPECT_EQ(resolveJobs(0), 2u);
    EXPECT_EQ(defaultJobs(), 2u);
}

TEST(ResolveJobs, HonorsEnvironmentVariable)
{
    JobsGuard guard;
    clearDefaultJobs();
    setenv("MAPZERO_NUM_THREADS", "6", 1);
    EXPECT_EQ(resolveJobs(0), 6u);
    // Negative values are ignored with a warning.
    setenv("MAPZERO_NUM_THREADS", "-3", 1);
    EXPECT_EQ(resolveJobs(0), 1u);
}

TEST(ResolveJobs, UnconfiguredDefaultsToSingleThreaded)
{
    JobsGuard guard;
    clearDefaultJobs();
    unsetenv("MAPZERO_NUM_THREADS");
    EXPECT_EQ(resolveJobs(0), 1u);
    // Explicit 0 at a configured level means "hardware threads".
    setDefaultJobs(0);
    EXPECT_GE(resolveJobs(0), 1u);
}

TEST(DeriveSeed, DeterministicAndStreamSeparated)
{
    const std::uint64_t root = 12345;
    EXPECT_EQ(Rng::deriveSeed(root, 0), Rng::deriveSeed(root, 0));
    std::set<std::uint64_t> seeds;
    for (std::uint64_t stream = 0; stream < 64; ++stream)
        seeds.insert(Rng::deriveSeed(root, stream));
    EXPECT_EQ(seeds.size(), 64u);
    // Different roots give different streams.
    EXPECT_NE(Rng::deriveSeed(1, 0), Rng::deriveSeed(2, 0));
}

TEST(DeriveSeed, StreamsProduceIndependentSequences)
{
    Rng a(Rng::deriveSeed(7, 0));
    Rng b(Rng::deriveSeed(7, 1));
    bool diverged = false;
    for (int i = 0; i < 16 && !diverged; ++i)
        diverged = a.next() != b.next();
    EXPECT_TRUE(diverged);
}

TEST(ThreadPool, FuturesCarryResults)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 64; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, SingleWorkerRunsTasksInSubmissionOrder)
{
    ThreadPool pool(1);
    std::vector<int> order;
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 32; ++i)
        futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
    for (auto &f : futures)
        f.get();
    ASSERT_EQ(order.size(), 32u);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures)
{
    ThreadPool pool(2);
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("task failed"); });
    auto good = pool.submit([] { return 42; });
    EXPECT_THROW(bad.get(), std::runtime_error);
    EXPECT_EQ(good.get(), 42);
}

TEST(ThreadPool, DestructorDrainsQueueUnderLoad)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 256; ++i)
            pool.submit([&ran] { ran.fetch_add(1); });
        // Destroyed while the queue is still deep: every submitted
        // task must run before the workers join.
    }
    EXPECT_EQ(ran.load(), 256);
}

TEST(ThreadPool, CurrentWorkerIdentifiesPoolThreads)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.currentWorker(), -1);
    auto index = pool.submit([&pool] { return pool.currentWorker(); });
    const int worker = index.get();
    EXPECT_GE(worker, 0);
    EXPECT_LT(worker, 3);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    parallelFor(pool, hits.size(),
                [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, RethrowsFirstException)
{
    ThreadPool pool(2);
    EXPECT_THROW(parallelFor(pool, 16,
                             [](std::size_t i) {
                                 if (i == 7)
                                     throw std::runtime_error("boom");
                             }),
                 std::runtime_error);
}

TEST(ParallelFor, RunsInlineForTrivialCounts)
{
    ThreadPool pool(4);
    int ran = 0;
    parallelFor(pool, 1, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran, 1);
    parallelFor(pool, 0, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran, 1);
}

} // namespace
} // namespace mapzero
