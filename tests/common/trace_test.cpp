/** @file Unit tests for the trace collector and span guards. */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "baselines/exact_mapper.hpp"
#include "cgra/architecture.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "core/compiler.hpp"
#include "dfg/kernels.hpp"

namespace mapzero {
namespace {

/** Enables the global collector for one test, restoring state after. */
class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        TraceCollector::global().clear();
        TraceCollector::global().setEnabled(true);
    }

    void
    TearDown() override
    {
        TraceCollector::global().setEnabled(false);
        TraceCollector::global().clear();
    }
};

TEST_F(TraceTest, DisabledCollectorRecordsNothing)
{
    TraceCollector::global().setEnabled(false);
    {
        TraceSpan span("ignored", "test");
    }
    TraceCollector::global().instant("also_ignored", "test");
    EXPECT_EQ(TraceCollector::global().eventCount(), 0u);
}

TEST_F(TraceTest, SpanRecordsCompleteEventOnDestruction)
{
    {
        TraceSpan span("outer", "test", "{\"k\": 1}");
    }
    const auto events = TraceCollector::global().events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].name, "outer");
    EXPECT_EQ(events[0].category, "test");
    EXPECT_EQ(events[0].argsJson, "{\"k\": 1}");
    EXPECT_GE(events[0].durationUs, 0);
}

TEST_F(TraceTest, NestedSpansAreContained)
{
    {
        TraceSpan outer("outer", "test");
        {
            TraceSpan inner("inner", "test");
        }
    }
    const auto events = TraceCollector::global().events();
    ASSERT_EQ(events.size(), 2u);
    // Inner closes first, so it is recorded first.
    const TraceEvent &inner = events[0];
    const TraceEvent &outer = events[1];
    EXPECT_EQ(inner.name, "inner");
    EXPECT_EQ(outer.name, "outer");
    EXPECT_GE(inner.startUs, outer.startUs);
    EXPECT_LE(inner.startUs + inner.durationUs,
              outer.startUs + outer.durationUs);
}

TEST_F(TraceTest, JsonIsWellFormedChromeTrace)
{
    {
        TraceSpan span("span \"quoted\"", "test");
    }
    TraceCollector::global().instant("marker", "test");
    const std::string json = TraceCollector::global().toJson();
    EXPECT_EQ(json.rfind("{\"traceEvents\": [", 0), 0u);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_NE(json.find("span \\\"quoted\\\""), std::string::npos);
    // Balanced braces/brackets (no raw quotes left unescaped would
    // break this crude structural check).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

TEST_F(TraceTest, CompileEmitsNestedCompilerSpans)
{
    const dfg::Dfg kernel = dfg::buildKernel("mac");
    const cgra::Architecture arch = cgra::Architecture::hrea();
    baselines::ExactMapper engine;
    Compiler compiler;
    const CompileResult result = compiler.compileWith(
        engine, kernel, arch, CompileOptions{.timeLimitSeconds = 30.0});
    ASSERT_TRUE(result.success);

    const auto events = TraceCollector::global().events();
    const auto find = [&](const std::string &name) {
        return std::find_if(events.begin(), events.end(),
                            [&](const TraceEvent &e) {
                                return e.name == name;
                            });
    };
    const auto compile_it = find("compile");
    const auto attempt_it = find("ii_attempt");
    ASSERT_NE(compile_it, events.end());
    ASSERT_NE(attempt_it, events.end());
    // The II attempt nests inside the compile span.
    EXPECT_GE(attempt_it->startUs, compile_it->startUs);
    EXPECT_LE(attempt_it->startUs + attempt_it->durationUs,
              compile_it->startUs + compile_it->durationUs);
    EXPECT_NE(compile_it->argsJson.find("\"mii\""), std::string::npos);
}

TEST_F(TraceTest, MetricsSnapshotRoundTripInRunReport)
{
    MetricsRegistry &registry = metrics();
    registry.counter("trace_test.probe").add(3);
    const std::string path =
        ::testing::TempDir() + "/mapzero_run_report.json";
    writeRunReport(path);

    std::ifstream is(path);
    ASSERT_TRUE(is.good());
    std::stringstream buffer;
    buffer << is.rdbuf();
    const std::string report = buffer.str();
    EXPECT_NE(report.find("\"metrics\""), std::string::npos);
    EXPECT_NE(report.find("\"trace_test.probe\": 3"), std::string::npos);
    EXPECT_NE(report.find("\"traceEventCount\""), std::string::npos);
    EXPECT_EQ(std::count(report.begin(), report.end(), '{'),
              std::count(report.begin(), report.end(), '}'));
}

} // namespace
} // namespace mapzero
