/** @file Unit tests for the JSON reader and writer round-trips. */

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <string>

#include "common/json.hpp"
#include "common/metrics.hpp"

namespace mapzero {
namespace {

TEST(JsonParse, Scalars)
{
    EXPECT_TRUE(JsonValue::parse("null").isNull());
    EXPECT_TRUE(JsonValue::parse("true").asBool());
    EXPECT_FALSE(JsonValue::parse("false").asBool());
    EXPECT_DOUBLE_EQ(JsonValue::parse("-12.5e2").asNumber(), -1250.0);
    EXPECT_EQ(JsonValue::parse("42").asInt(), 42);
    EXPECT_EQ(JsonValue::parse("\"hi\"").asString(), "hi");
}

TEST(JsonParse, NestedDocument)
{
    const JsonValue doc = JsonValue::parse(
        R"({"a": [1, 2, {"b": true}], "c": {"d": null}, "a": 9})");
    EXPECT_EQ(doc.size(), 3u);
    EXPECT_EQ(doc.at("a").size(), 3u);
    EXPECT_TRUE(doc.at("a").at(2).at("b").asBool());
    EXPECT_TRUE(doc.at("c").at("d").isNull());
    // Duplicate keys keep the first occurrence on lookup.
    EXPECT_TRUE(doc.at("a").isArray());
    EXPECT_DOUBLE_EQ(doc.numberOr("missing", 7.0), 7.0);
    EXPECT_EQ(doc.stringOr("missing", "dflt"), "dflt");
}

TEST(JsonParse, StringEscapes)
{
    const JsonValue v =
        JsonValue::parse(R"("a\"b\\c\/d\b\f\n\r\te")");
    EXPECT_EQ(v.asString(), "a\"b\\c/d\b\f\n\r\te");
    // \u escapes, including a surrogate pair (U+1F600).
    const JsonValue u =
        JsonValue::parse("\"\\u00e9 \\uD83D\\uDE00\"");
    EXPECT_EQ(u.asString(), "\xc3\xa9 \xf0\x9f\x98\x80");
}

TEST(JsonParse, MalformedInputIsFatal)
{
    EXPECT_THROW(JsonValue::parse(""), std::runtime_error);
    EXPECT_THROW(JsonValue::parse("{"), std::runtime_error);
    EXPECT_THROW(JsonValue::parse("[1,]"), std::runtime_error);
    EXPECT_THROW(JsonValue::parse("{\"a\" 1}"), std::runtime_error);
    EXPECT_THROW(JsonValue::parse("tru"), std::runtime_error);
    EXPECT_THROW(JsonValue::parse("1 2"), std::runtime_error);
    EXPECT_THROW(JsonValue::parse("\"\\uD83D\""), std::runtime_error);
}

TEST(JsonParse, KindMismatchIsFatal)
{
    const JsonValue v = JsonValue::parse("[1]");
    EXPECT_THROW((void)v.asString(), std::runtime_error);
    EXPECT_THROW((void)v.at("key"), std::runtime_error);
    EXPECT_THROW((void)v.at(5), std::runtime_error);
}

TEST(JsonParse, ParseLinesSkipsBlanks)
{
    const auto docs =
        JsonValue::parseLines("{\"a\":1}\n\n{\"a\":2}\n");
    ASSERT_EQ(docs.size(), 2u);
    EXPECT_EQ(docs[1].at("a").asInt(), 2);
}

/** Writer -> parser round-trip for every escaping corner. */
TEST(JsonRoundTrip, EscapedStringsSurviveWriterAndParser)
{
    const std::string cases[] = {
        "plain",
        "quote\" backslash\\ slash/",
        std::string("nul\0byte", 8),
        "\x01\x02\x1f control",
        "tab\t newline\n return\r",
        "caf\xc3\xa9",              // U+00E9, two-byte UTF-8
        "\xe2\x82\xac euro",        // U+20AC, three-byte UTF-8
        "\xf0\x9f\x98\x80 smile",   // U+1F600, surrogate pair
    };
    for (const std::string &original : cases) {
        const std::string doc = "\"" + jsonEscape(original) + "\"";
        // The writer must emit pure-ASCII output.
        for (const char c : doc)
            EXPECT_GE(static_cast<unsigned char>(c), 0x20u) << doc;
        EXPECT_EQ(JsonValue::parse(doc).asString(), original) << doc;
    }
}

TEST(JsonRoundTrip, InvalidUtf8BytesBecomeReplacementChar)
{
    // Lone continuation byte, truncated lead, overlong encoding: each
    // must degrade to U+FFFD instead of producing invalid JSON.
    const std::string cases[] = {
        "\x80",
        "bad\xff tail",
        "\xc3",            // truncated two-byte sequence
        "\xc0\xaf",        // overlong '/'
        "\xed\xa0\x80",    // UTF-8-encoded surrogate half
    };
    for (const std::string &original : cases) {
        const std::string doc = "\"" + jsonEscape(original) + "\"";
        const std::string parsed = JsonValue::parse(doc).asString();
        EXPECT_NE(parsed.find("\xef\xbf\xbd"), std::string::npos)
            << doc;
    }
}

TEST(JsonRoundTrip, NumbersSurviveWriterAndParser)
{
    for (const double value : {0.0, -1.5, 3.25e18, 1e-9, 12345.0}) {
        const JsonValue parsed = JsonValue::parse(jsonNumber(value));
        EXPECT_DOUBLE_EQ(parsed.asNumber(), value);
    }
    // Non-finite doubles must still produce valid JSON (0).
    EXPECT_DOUBLE_EQ(
        JsonValue::parse(
            jsonNumber(std::numeric_limits<double>::infinity()))
            .asNumber(),
        0.0);
}

} // namespace
} // namespace mapzero
