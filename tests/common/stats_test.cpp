/** @file Unit tests for statistics helpers. */

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "common/stats.hpp"

namespace mapzero {
namespace {

TEST(Stats, MeanOfEmptyIsZero)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, MeanBasic)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Stats, StddevOfConstantIsZero)
{
    EXPECT_DOUBLE_EQ(stddev({4.0, 4.0, 4.0}), 0.0);
}

TEST(Stats, StddevSample)
{
    // Sample stddev of {2, 4, 4, 4, 5, 5, 7, 9} is ~2.138.
    EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 0.01);
}

TEST(Stats, GeoMeanBasic)
{
    EXPECT_NEAR(geoMean({1.0, 100.0}), 10.0, 1e-9);
    EXPECT_NEAR(geoMean({2.0, 8.0}), 4.0, 1e-9);
}

TEST(Stats, GeoMeanSingleValue)
{
    EXPECT_NEAR(geoMean({42.0}), 42.0, 1e-9);
}

TEST(Stats, GeoMeanPanicsOnNonPositiveValues)
{
    EXPECT_THROW(geoMean({1.0, 0.0}), std::logic_error);
    EXPECT_THROW(geoMean({1.0, -3.0}), std::logic_error);
}

TEST(Stats, MinMaxPanicOnEmptyRange)
{
    EXPECT_THROW(minOf({}), std::logic_error);
    EXPECT_THROW(maxOf({}), std::logic_error);
}

TEST(Stats, EmaSmoothPanicsOnBadAlpha)
{
    EXPECT_THROW(emaSmooth({1.0}, 0.0), std::logic_error);
    EXPECT_THROW(emaSmooth({1.0}, -0.5), std::logic_error);
    EXPECT_THROW(emaSmooth({1.0}, 1.5), std::logic_error);
}

TEST(Stats, MinMax)
{
    const std::vector<double> v{3.0, -1.0, 7.5};
    EXPECT_DOUBLE_EQ(minOf(v), -1.0);
    EXPECT_DOUBLE_EQ(maxOf(v), 7.5);
}

TEST(Stats, EmaSmoothAlphaOneIsIdentity)
{
    const std::vector<double> v{1.0, 5.0, 2.0};
    EXPECT_EQ(emaSmooth(v, 1.0), v);
}

TEST(Stats, EmaSmoothDampens)
{
    const auto out = emaSmooth({0.0, 10.0}, 0.5);
    EXPECT_DOUBLE_EQ(out[0], 0.0);
    EXPECT_DOUBLE_EQ(out[1], 5.0);
}

TEST(Stats, RunningStatAccumulates)
{
    RunningStat rs;
    rs.add(1.0);
    rs.add(3.0);
    rs.add(2.0);
    EXPECT_EQ(rs.count(), 3u);
    EXPECT_DOUBLE_EQ(rs.mean(), 2.0);
    EXPECT_DOUBLE_EQ(rs.min(), 1.0);
    EXPECT_DOUBLE_EQ(rs.max(), 3.0);
    EXPECT_DOUBLE_EQ(rs.sum(), 6.0);
}

TEST(Stats, RunningStatEmpty)
{
    RunningStat rs;
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
}

} // namespace
} // namespace mapzero
