/** @file Unit tests for the structured event journal. */

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/journal.hpp"
#include "common/json.hpp"

namespace mapzero {
namespace {

/** Enables the global journal for one test, restoring state after. */
class JournalTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        journal().clear();
        journal().setCapacity(Journal::kDefaultCapacity);
        journal().setEnabled(true);
    }

    void
    TearDown() override
    {
        journal().setEnabled(false);
        journal().clear();
        journal().setCapacity(Journal::kDefaultCapacity);
    }
};

TEST_F(JournalTest, DisabledJournalIsANoOp)
{
    journal().setEnabled(false);
    JournalRecord record("test.event");
    record.field("k", 1);
    journal().emit(std::move(record));
    EXPECT_EQ(journal().emitted(), 0);
    EXPECT_EQ(journal().recordCount(), 0u);
    EXPECT_TRUE(journal().lines().empty());
}

TEST_F(JournalTest, RecordRendersTypedFieldsAsOneJsonObject)
{
    JournalRecord record("test.event");
    record.field("flag", true)
        .field("count", std::int64_t{-7})
        .field("ratio", 0.5)
        .field("name", "a\"b\nc")
        .rawField("list", "[1,2,3]");
    journal().emit(std::move(record));

    const auto lines = journal().lines();
    ASSERT_EQ(lines.size(), 1u);
    const JsonValue doc = JsonValue::parse(lines.front());
    EXPECT_EQ(doc.at("type").asString(), "test.event");
    EXPECT_TRUE(doc.at("flag").asBool());
    EXPECT_EQ(doc.at("count").asInt(), -7);
    EXPECT_DOUBLE_EQ(doc.at("ratio").asNumber(), 0.5);
    EXPECT_EQ(doc.at("name").asString(), "a\"b\nc");
    EXPECT_EQ(doc.at("list").size(), 3u);
    EXPECT_EQ(doc.at("seq").asInt(), 1);
    EXPECT_TRUE(doc.has("ts_us"));
    EXPECT_TRUE(doc.has("tid"));
}

TEST_F(JournalTest, ConcurrentEmitsProduceValidDistinctRecords)
{
    constexpr int kThreads = 8;
    // Deliberately not a multiple of kFlushBatch so every thread
    // leaves a partial staging buffer for lines() to drain.
    constexpr int kPerThread = 211;

    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([t] {
            for (int i = 0; i < kPerThread; ++i) {
                JournalRecord record("test.concurrent");
                record.field("worker", t).field("i", i);
                journal().emit(std::move(record));
            }
        });
    }
    for (std::thread &w : workers)
        w.join();

    const auto lines = journal().lines();
    ASSERT_EQ(lines.size(),
              static_cast<std::size_t>(kThreads * kPerThread));
    EXPECT_EQ(journal().dropped(), 0);

    // Every line parses on its own (no interleaved/torn writes), seqs
    // are unique, and each worker's own records stay in order.
    std::set<std::int64_t> seqs;
    std::vector<int> next(kThreads, 0);
    for (const std::string &line : lines) {
        const JsonValue doc = JsonValue::parse(line);
        EXPECT_EQ(doc.at("type").asString(), "test.concurrent");
        EXPECT_TRUE(seqs.insert(doc.at("seq").asInt()).second);
        const auto worker =
            static_cast<int>(doc.at("worker").asInt());
        ASSERT_GE(worker, 0);
        ASSERT_LT(worker, kThreads);
        EXPECT_EQ(doc.at("i").asInt(), next[worker]);
        ++next[worker];
    }
    EXPECT_EQ(seqs.size(),
              static_cast<std::size_t>(kThreads * kPerThread));
}

TEST_F(JournalTest, RingDropsOldestRecordsFirst)
{
    journal().setCapacity(8);
    constexpr int kTotal = 200;
    for (int i = 0; i < kTotal; ++i) {
        JournalRecord record("test.ring");
        record.field("i", i);
        journal().emit(std::move(record));
    }
    const auto lines = journal().lines();
    ASSERT_EQ(lines.size(), 8u);
    EXPECT_EQ(journal().dropped() + 8, kTotal);
    // Flight-recorder semantics: the newest records survive.
    for (std::size_t k = 0; k < lines.size(); ++k) {
        const JsonValue doc = JsonValue::parse(lines[k]);
        EXPECT_EQ(doc.at("i").asInt(),
                  kTotal - 8 + static_cast<std::int64_t>(k));
    }
}

TEST_F(JournalTest, WriteToAppendsDropTrailer)
{
    journal().setCapacity(4);
    for (int i = 0; i < 10; ++i) {
        JournalRecord record("test.trailer");
        record.field("i", i);
        journal().emit(std::move(record));
    }
    const std::string path =
        testing::TempDir() + "journal_trailer_test.jsonl";
    journal().writeTo(path);

    std::ifstream is(path);
    ASSERT_TRUE(is.good());
    std::stringstream ss;
    ss << is.rdbuf();
    const auto docs = JsonValue::parseLines(ss.str());
    ASSERT_EQ(docs.size(), 5u);
    const JsonValue &trailer = docs.back();
    EXPECT_EQ(trailer.at("type").asString(), "journal.dropped");
    EXPECT_EQ(trailer.at("dropped").asInt(), 6);
}

} // namespace
} // namespace mapzero
