/** @file End-to-end tests for request-scoped tracing through mapzerod:
 *  the TRACE wire op, timeline consistency under a concurrent worker
 *  pool (spans nested, stage time bounded by wall time), the telemetry
 *  /trace endpoint, and the waitForJob polling backoff. */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/metrics.hpp"
#include "dfg/dfg.hpp"
#include "dfg/dot.hpp"
#include "dfg/kernels.hpp"
#include "svc/client.hpp"
#include "svc/daemon.hpp"
#include "svc/daemon_state.hpp"
#include "svc/telemetry_server.hpp"

namespace mapzero::svc {
namespace {

/** SUBMIT for a built-in kernel with fast-test defaults (SA). */
SubmitRequest
submitOf(const std::string &kernel, double timeLimitSeconds = 10.0)
{
    SubmitRequest request;
    request.dfgDot = dfg::toDot(dfg::buildKernel(kernel));
    request.archName = "hrea";
    request.method = 3; // SA
    request.timeLimitSeconds = timeLimitSeconds;
    return request;
}

/** A job that occupies a worker for its whole budget (see
 *  daemon_test.cpp): an unroutable star with unbounded restarts. */
SubmitRequest
slowSubmit(double timeLimitSeconds)
{
    dfg::Dfg star;
    star.setName("star15");
    const auto root = star.addNode(dfg::Opcode::Add, "n0");
    for (int i = 1; i <= 15; ++i)
        star.addEdge(root, star.addNode(dfg::Opcode::Add));

    SubmitRequest request;
    request.dfgDot = dfg::toDot(star);
    request.archName = "hrea";
    request.method = 3; // SA
    request.timeLimitSeconds = timeLimitSeconds;
    request.restartsPerIi = 1'000'000;
    return request;
}

/**
 * Structural invariants every finished timeline must satisfy: stages
 * inside the request window, nested spans inside a top-level span,
 * and top-level stage time that never exceeds wall time.
 */
void
checkTimelineConsistency(const JsonValue &timeline)
{
    const double total_us = timeline.numberOr("total_us", 0.0);
    ASSERT_GT(total_us, 0.0);
    ASSERT_TRUE(timeline.at("stages").isArray());
    const JsonValue &stages = timeline.at("stages");
    ASSERT_GT(stages.size(), 0u);

    // Stage close order and clock slack: allow a small epsilon when
    // comparing independently-taken clock readings.
    constexpr double kSlackUs = 2'000.0;
    double top_level_us = 0.0;
    bool saw_queue_wait = false;
    for (std::size_t i = 0; i < stages.size(); ++i) {
        const JsonValue &s = stages.at(i);
        const double start = s.numberOr("start_us", -1.0);
        const double dur = s.numberOr("dur_us", -1.0);
        const int depth = static_cast<int>(s.numberOr("depth", -1.0));
        ASSERT_GE(start, 0.0) << i;
        ASSERT_GE(dur, 0.0) << i;
        ASSERT_GE(depth, 0) << i;
        EXPECT_LE(start + dur, total_us + kSlackUs) << i;
        if (depth == 0) {
            top_level_us += dur;
            saw_queue_wait |= s.stringOr("name", "") == "queue_wait";
            continue;
        }
        // Every nested span must sit inside some top-level span.
        bool nested = false;
        for (std::size_t j = 0; j < stages.size() && !nested; ++j) {
            const JsonValue &outer = stages.at(j);
            if (static_cast<int>(outer.numberOr("depth", -1.0)) != 0)
                continue;
            const double ostart = outer.numberOr("start_us", 0.0);
            const double oend = ostart + outer.numberOr("dur_us", 0.0);
            nested = start >= ostart - kSlackUs &&
                     start + dur <= oend + kSlackUs;
        }
        EXPECT_TRUE(nested)
            << "stage " << i << " (" << s.stringOr("name", "?")
            << ") is not nested in any top-level stage";
    }
    EXPECT_TRUE(saw_queue_wait);
    // Top-level stages partition the request: their sum can never
    // exceed the wall time they are carved out of.
    EXPECT_LE(top_level_us, total_us + kSlackUs);
}

TEST(DaemonTrace, TimelineCoversTheWholeRequest)
{
    Daemon daemon;
    DaemonOptions options;
    options.workers = 1;
    ASSERT_TRUE(daemon.start(options));
    Client client(daemon.port());

    std::uint64_t id = 0;
    std::uint32_t depth = 0;
    ASSERT_EQ(client.submit(submitOf("mac"), id, depth), Status::Ok);
    ASSERT_TRUE(client.waitForJob(id, 60.0).has_value())
        << client.lastError();

    JobTrace out;
    ASSERT_EQ(client.trace(id, out), Status::Ok) << client.lastError();
    EXPECT_EQ(out.state, JobState::Done);
    ASSERT_FALSE(out.timelineJson.empty());
    const JsonValue timeline = JsonValue::parse(out.timelineJson);
    EXPECT_EQ(timeline.stringOr("trace_id", ""),
              "job-" + std::to_string(id));
    checkTimelineConsistency(timeline);

    // The acceptance bar: the named stages explain >= 95% of the
    // request's wall time - no large unattributed gaps.
    EXPECT_GE(timeline.numberOr("coverage", 0.0), 0.95);

    // Per-(II, restart) attribution: at least one nested attempt span
    // tagged with its II and restart index.
    bool saw_attempt = false;
    const JsonValue &stages = timeline.at("stages");
    for (std::size_t i = 0; i < stages.size(); ++i) {
        const JsonValue &s = stages.at(i);
        if (s.stringOr("name", "") != "attempt")
            continue;
        saw_attempt = true;
        EXPECT_GT(static_cast<int>(s.numberOr("depth", 0.0)), 0);
        ASSERT_TRUE(s.has("args"));
        EXPECT_TRUE(s.at("args").has("ii"));
        EXPECT_TRUE(s.at("args").has("restart"));
    }
    EXPECT_TRUE(saw_attempt);
    daemon.stop();
}

TEST(DaemonTrace, UnknownJobIsNotFound)
{
    Daemon daemon;
    DaemonOptions options;
    options.workers = 1;
    ASSERT_TRUE(daemon.start(options));
    Client client(daemon.port());
    JobTrace out;
    EXPECT_EQ(client.trace(424242, out), Status::NotFound);
    daemon.stop();
}

TEST(DaemonTrace, LiveJobServesAPartialTimeline)
{
    Daemon daemon;
    DaemonOptions options;
    options.workers = 1;
    ASSERT_TRUE(daemon.start(options));
    Client client(daemon.port());

    std::uint64_t id = 0;
    std::uint32_t depth = 0;
    ASSERT_EQ(client.submit(slowSubmit(20.0), id, depth), Status::Ok);

    // Wait until the worker has picked the job up.
    JobStatus status;
    for (int i = 0; i < 400; ++i) {
        ASSERT_EQ(client.status(id, status), Status::Ok);
        if (status.state == JobState::Running)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    ASSERT_EQ(status.state, JobState::Running);

    JobTrace out;
    ASSERT_EQ(client.trace(id, out), Status::Ok) << client.lastError();
    EXPECT_EQ(out.state, JobState::Running);
    ASSERT_FALSE(out.timelineJson.empty());
    const JsonValue timeline = JsonValue::parse(out.timelineJson);
    // queue_wait is already closed; the in-flight compile stage is
    // not in the timeline yet, but the document is well-formed.
    bool saw_queue_wait = false;
    const JsonValue &stages = timeline.at("stages");
    for (std::size_t i = 0; i < stages.size(); ++i)
        saw_queue_wait |=
            stages.at(i).stringOr("name", "") == "queue_wait";
    EXPECT_TRUE(saw_queue_wait);

    JobState after = JobState::Queued;
    ASSERT_EQ(client.cancel(id, after), Status::Ok);
    ASSERT_TRUE(client.waitForJob(id, 30.0).has_value())
        << client.lastError();
    daemon.stop();
}

TEST(DaemonTrace, EightConcurrentJobsKeepTimelinesConsistent)
{
    Daemon daemon;
    DaemonOptions options;
    options.workers = 8;
    options.queueCapacity = 16;
    ASSERT_TRUE(daemon.start(options));
    const int port = daemon.port();

    const std::vector<std::string> kernels = {
        "mac", "sum", "matmul", "accumulate",
        "mac", "sum", "matmul", "accumulate"};
    std::vector<std::uint64_t> ids(kernels.size(), 0);
    std::vector<std::thread> submitters;
    std::atomic<int> submit_failures{0};
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        submitters.emplace_back([&, i] {
            Client client(port);
            std::uint32_t depth = 0;
            if (client.submit(submitOf(kernels[i]), ids[i], depth) !=
                Status::Ok)
                submit_failures.fetch_add(1);
        });
    }
    for (std::thread &submitter : submitters)
        submitter.join();
    ASSERT_EQ(submit_failures.load(), 0);

    Client client(port);
    for (std::size_t i = 0; i < ids.size(); ++i) {
        ASSERT_GT(ids[i], 0u) << i;
        ASSERT_TRUE(client.waitForJob(ids[i], 60.0).has_value())
            << i << ": " << client.lastError();
    }
    for (std::size_t i = 0; i < ids.size(); ++i) {
        JobTrace out;
        ASSERT_EQ(client.trace(ids[i], out), Status::Ok)
            << i << ": " << client.lastError();
        ASSERT_FALSE(out.timelineJson.empty()) << i;
        const JsonValue timeline = JsonValue::parse(out.timelineJson);
        EXPECT_EQ(timeline.stringOr("trace_id", ""),
                  "job-" + std::to_string(ids[i]))
            << i;
        checkTimelineConsistency(timeline);
        // Concurrent workers share cores, so be a little more lenient
        // than the single-job bar - but the timeline must still
        // explain the request.
        EXPECT_GE(timeline.numberOr("coverage", 0.0), 0.9) << i;
    }
    daemon.stop();
}

TEST(DaemonTrace, TelemetryEndpointServesTimelines)
{
    Daemon daemon;
    DaemonOptions options;
    options.workers = 1;
    ASSERT_TRUE(daemon.start(options));
    Client client(daemon.port());

    std::uint64_t id = 0;
    std::uint32_t depth = 0;
    ASSERT_EQ(client.submit(submitOf("sum"), id, depth), Status::Ok);
    ASSERT_TRUE(client.waitForJob(id, 60.0).has_value())
        << client.lastError();

    TelemetryServer server;
    const auto get = [&server](const std::string &target) {
        HttpRequest request;
        EXPECT_TRUE(parseHttpRequest(
            "GET " + target + " HTTP/1.0\r\n\r\n", request));
        return server.handle(request);
    };

    const std::string ok =
        get("/trace?job=" + std::to_string(id));
    EXPECT_NE(ok.find("200"), std::string::npos);
    EXPECT_NE(ok.find("application/json"), std::string::npos);
    EXPECT_NE(ok.find("job-" + std::to_string(id)),
              std::string::npos);

    EXPECT_NE(get("/trace").find("400"), std::string::npos);
    EXPECT_NE(get("/trace?job=abc").find("400"), std::string::npos);
    EXPECT_NE(get("/trace?job=424242").find("404"),
              std::string::npos);

    daemon.stop();
    // Shutdown uninstalls the resolver: the endpoint must answer 404,
    // not touch a dead session table.
    EXPECT_NE(get("/trace?job=" + std::to_string(id)).find("404"),
              std::string::npos);
}

TEST(DaemonTrace, WaitForJobBacksOffItsPolling)
{
    Daemon daemon;
    DaemonOptions options;
    options.workers = 1;
    ASSERT_TRUE(daemon.start(options));
    Client client(daemon.port());

    std::uint64_t id = 0;
    std::uint32_t depth = 0;
    ASSERT_EQ(client.submit(slowSubmit(3.0), id, depth), Status::Ok);

    Counter &requests = metrics().counter("svc.requests_total");
    const std::int64_t before = requests.value();
    ASSERT_TRUE(client.waitForJob(id, 60.0, 0.01).has_value())
        << client.lastError();
    const std::int64_t polls = requests.value() - before;
    // A fixed 10ms interval would take ~300 status requests over the
    // ~3s compile; the 1.6x backoff needs O(log) polls to reach its
    // 1s cap and then ~1/s, so even with scheduling noise the total
    // stays tiny.
    EXPECT_GE(polls, 2);
    EXPECT_LE(polls, 30);
    daemon.stop();
}

} // namespace
} // namespace mapzero::svc
