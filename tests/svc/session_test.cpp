/** @file Tests for the daemon's session table: the job state machine,
 *  cancel semantics for queued vs running jobs, timing capture, and
 *  terminal-record retention. */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/metrics.hpp"
#include "svc/session.hpp"

namespace mapzero::svc {
namespace {

TEST(Session, StateNamesAndTerminality)
{
    EXPECT_STREQ(jobStateName(JobState::Queued), "QUEUED");
    EXPECT_STREQ(jobStateName(JobState::Running), "RUNNING");
    EXPECT_STREQ(jobStateName(JobState::Done), "DONE");
    EXPECT_STREQ(jobStateName(JobState::Failed), "FAILED");
    EXPECT_STREQ(jobStateName(JobState::Cancelled), "CANCELLED");
    EXPECT_FALSE(jobStateTerminal(JobState::Queued));
    EXPECT_FALSE(jobStateTerminal(JobState::Running));
    EXPECT_TRUE(jobStateTerminal(JobState::Done));
    EXPECT_TRUE(jobStateTerminal(JobState::Failed));
    EXPECT_TRUE(jobStateTerminal(JobState::Cancelled));
}

TEST(Session, HappyPathQueuedRunningDone)
{
    SessionTable table;
    const JobId id = table.add("mac", "hrea", "SA");
    EXPECT_GT(id, 0u);
    JobSnapshot snapshot;
    ASSERT_TRUE(table.get(id, snapshot));
    EXPECT_EQ(snapshot.state, JobState::Queued);
    EXPECT_EQ(snapshot.dfgName, "mac");
    EXPECT_EQ(snapshot.archName, "hrea");
    EXPECT_EQ(table.activeCount(), 1u);

    EXPECT_TRUE(table.markRunning(id));
    ASSERT_TRUE(table.get(id, snapshot));
    EXPECT_EQ(snapshot.state, JobState::Running);

    table.finish(id, "{\"success\": true}", /*cancelled=*/false);
    ASSERT_TRUE(table.get(id, snapshot));
    EXPECT_EQ(snapshot.state, JobState::Done);
    EXPECT_EQ(snapshot.result, "{\"success\": true}");
    EXPECT_EQ(table.activeCount(), 0u);
    EXPECT_EQ(table.counts().done, 1);
}

TEST(Session, UnknownIdsAreRejectedEverywhere)
{
    SessionTable table;
    JobSnapshot snapshot;
    EXPECT_FALSE(table.get(404, snapshot));
    EXPECT_FALSE(table.markRunning(404));
    EXPECT_FALSE(table.cancel(404).has_value());
    EXPECT_EQ(table.cancelFlag(404), nullptr);
}

TEST(Session, CancelWhileQueuedIsImmediate)
{
    SessionTable table;
    const JobId id = table.add("mac", "hrea", "SA");
    const std::optional<JobState> state = table.cancel(id);
    ASSERT_TRUE(state.has_value());
    EXPECT_EQ(*state, JobState::Cancelled);
    // The worker that later pops this id must skip it.
    EXPECT_FALSE(table.markRunning(id));
    EXPECT_EQ(table.counts().cancelled, 1);
}

TEST(Session, CancelWhileRunningRaisesTheFlagOnly)
{
    SessionTable table;
    const JobId id = table.add("mac", "hrea", "SA");
    ASSERT_TRUE(table.markRunning(id));
    const std::shared_ptr<std::atomic<bool>> flag =
        table.cancelFlag(id);
    ASSERT_NE(flag, nullptr);
    EXPECT_FALSE(flag->load());

    const std::optional<JobState> state = table.cancel(id);
    ASSERT_TRUE(state.has_value());
    EXPECT_EQ(*state, JobState::Running); // worker finishes the move
    EXPECT_TRUE(flag->load());

    // The worker observes the flag and completes as CANCELLED.
    table.finish(id, "", /*cancelled=*/true);
    JobSnapshot snapshot;
    ASSERT_TRUE(table.get(id, snapshot));
    EXPECT_EQ(snapshot.state, JobState::Cancelled);
}

TEST(Session, FailCarriesTheErrorMessage)
{
    SessionTable table;
    const JobId id = table.add("mac", "hrea", "SA");
    ASSERT_TRUE(table.markRunning(id));
    table.fail(id, "schedule infeasible");
    JobSnapshot snapshot;
    ASSERT_TRUE(table.get(id, snapshot));
    EXPECT_EQ(snapshot.state, JobState::Failed);
    EXPECT_EQ(snapshot.result, "schedule infeasible");
    EXPECT_EQ(table.counts().failed, 1);
}

TEST(Session, TimingsAccumulateThroughTheLifecycle)
{
    SessionTable table;
    const JobId id = table.add("mac", "hrea", "SA");
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    ASSERT_TRUE(table.markRunning(id));
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    table.finish(id, "{}", false);

    JobSnapshot snapshot;
    ASSERT_TRUE(table.get(id, snapshot));
    EXPECT_GT(snapshot.queuedSeconds, 0.0);
    EXPECT_GT(snapshot.runSeconds, 0.0);
}

TEST(Session, TerminalRecordsAreEvictedOldestFirst)
{
    SessionTable table(/*retainTerminal=*/2);
    const JobId a = table.add("a", "hrea", "SA");
    const JobId b = table.add("b", "hrea", "SA");
    const JobId c = table.add("c", "hrea", "SA");
    for (const JobId id : {a, b, c}) {
        ASSERT_TRUE(table.markRunning(id));
        table.finish(id, "{}", false);
    }
    JobSnapshot snapshot;
    EXPECT_FALSE(table.get(a, snapshot)); // evicted
    EXPECT_TRUE(table.get(b, snapshot));
    EXPECT_TRUE(table.get(c, snapshot));
    // Lifetime counters are unaffected by eviction.
    EXPECT_EQ(table.counts().submitted, 3);
    EXPECT_EQ(table.counts().done, 3);
}

TEST(Session, RetainZeroEvictsAtTheTerminalTransition)
{
    // retainTerminal = 0 is a real policy, not a typo to be clamped:
    // a record becomes unreachable the moment it turns terminal.
    SessionTable table(/*retainTerminal=*/0);
    const std::int64_t evicted_before =
        metrics().counter("svc.evicted_total").value();

    const JobId id = table.add("mac", "hrea", "SA");
    ASSERT_TRUE(table.markRunning(id));
    const std::optional<JobSnapshot> frozen =
        table.finish(id, "{\"success\": true}", /*cancelled=*/false);

    // The caller gets the terminal snapshot (the worker's bookkeeping
    // depends on it: the record itself is already gone)...
    ASSERT_TRUE(frozen.has_value());
    EXPECT_EQ(frozen->state, JobState::Done);
    EXPECT_EQ(frozen->result, "{\"success\": true}");

    // ...a client polling the just-finished job sees NOT_FOUND...
    JobSnapshot snapshot;
    EXPECT_FALSE(table.get(id, snapshot));
    // ...the lifetime counters still record the completion...
    EXPECT_EQ(table.counts().done, 1);
    EXPECT_EQ(table.activeCount(), 0u);
    // ...and the eviction itself is observable in the metrics plane.
    EXPECT_GT(metrics().counter("svc.evicted_total").value(),
              evicted_before);

    // Failed and cancelled jobs evict the same way.
    const JobId failed = table.add("mac", "hrea", "SA");
    ASSERT_TRUE(table.markRunning(failed));
    table.fail(failed, "boom");
    EXPECT_FALSE(table.get(failed, snapshot));

    const JobId cancelled = table.add("mac", "hrea", "SA");
    const std::optional<JobState> state = table.cancel(cancelled);
    ASSERT_TRUE(state.has_value());
    EXPECT_FALSE(table.get(cancelled, snapshot));
}

TEST(Session, ActiveJobsAreNeverEvicted)
{
    SessionTable table(/*retainTerminal=*/1);
    const JobId live = table.add("live", "hrea", "SA");
    for (int i = 0; i < 5; ++i) {
        const JobId id = table.add("x", "hrea", "SA");
        ASSERT_TRUE(table.markRunning(id));
        table.finish(id, "{}", false);
    }
    JobSnapshot snapshot;
    ASSERT_TRUE(table.get(live, snapshot));
    EXPECT_EQ(snapshot.state, JobState::Queued);
}

} // namespace
} // namespace mapzero::svc
