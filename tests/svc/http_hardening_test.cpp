/** @file Regression tests for telemetry-server request hardening:
 *  malformed request lines, oversized requests, and partial reads must
 *  all be answered 400 (or closed) promptly - a bad client must never
 *  pin the accept thread. */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>

#include "svc/telemetry_server.hpp"

namespace mapzero::svc {
namespace {

int
connectTo(int port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

/** Send @p raw bytes, then read the full response until close. */
std::string
sendRaw(int port, const std::string &raw)
{
    const int fd = connectTo(port);
    if (fd < 0)
        return "";
    if (!raw.empty())
        (void)!::send(fd, raw.data(), raw.size(), 0);
    std::string response;
    char buffer[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
        if (n <= 0)
            break;
        response.append(buffer, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return response;
}

class HttpHardening : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        TelemetryOptions options;
        options.port = 0;
        // Small request budget so the stall tests run in sub-second
        // time rather than the 2s production default.
        options.requestTimeoutMs = 300;
        ASSERT_TRUE(server_.start(options));
    }

    void
    TearDown() override
    {
        server_.stop();
    }

    TelemetryServer server_;
};

TEST_F(HttpHardening, MalformedRequestLinesGet400)
{
    for (const char *raw : {
             "GARBAGE\r\n\r\n",
             "GET\r\n\r\n",
             "GET /metrics\r\n\r\n",           // no HTTP version
             "GET metrics HTTP/1.0\r\n\r\n",   // path missing '/'
             "GET /metrics FTP/1.0\r\n\r\n",   // wrong protocol
         }) {
        const std::string response = sendRaw(server_.port(), raw);
        EXPECT_NE(response.find("HTTP/1.0 400"), std::string::npos)
            << raw;
    }
}

TEST_F(HttpHardening, OversizedRequestGets400NotABufferBloat)
{
    // 64 KiB of headers, far past the 8 KiB cap, with no terminator
    // in the first 8 KiB - the server must refuse, not buffer it all.
    std::string huge = "GET /metrics HTTP/1.0\r\n";
    while (huge.size() < 64 * 1024)
        huge += "X-Padding: " + std::string(1000, 'a') + "\r\n";
    const std::string response = sendRaw(server_.port(), huge);
    EXPECT_NE(response.find("HTTP/1.0 400"), std::string::npos);
    EXPECT_NE(response.find("request too large"), std::string::npos);
}

TEST_F(HttpHardening, PartialRequestTimesOutWith400)
{
    // Send half a request and stall: after requestTimeoutMs the
    // server must answer 400 and close rather than wait forever.
    const int fd = connectTo(server_.port());
    ASSERT_GE(fd, 0);
    const std::string half = "GET /metrics HTT";
    ASSERT_EQ(::send(fd, half.data(), half.size(), 0),
              static_cast<ssize_t>(half.size()));

    const auto started = std::chrono::steady_clock::now();
    std::string response;
    char buffer[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
        if (n <= 0)
            break;
        response.append(buffer, static_cast<std::size_t>(n));
    }
    ::close(fd);
    const double waited =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            std::chrono::steady_clock::now() - started)
            .count();

    EXPECT_NE(response.find("HTTP/1.0 400"), std::string::npos);
    EXPECT_NE(response.find("incomplete request"), std::string::npos);
    // Promptly: the 300ms budget plus slack, not a hung connection.
    EXPECT_LT(waited, 5.0);
}

TEST_F(HttpHardening, SilentConnectionIsJustClosed)
{
    // Connect, send nothing: the server closes without a response
    // once the request budget elapses.
    const int fd = connectTo(server_.port());
    ASSERT_GE(fd, 0);
    char buffer[64];
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    EXPECT_LE(n, 0);
    ::close(fd);
}

TEST_F(HttpHardening, ServerStaysHealthyAfterAbuse)
{
    sendRaw(server_.port(), "GARBAGE\r\n\r\n");
    sendRaw(server_.port(), std::string(10000, 'x'));
    const std::string response = sendRaw(
        server_.port(),
        "GET /healthz HTTP/1.0\r\nHost: localhost\r\n\r\n");
    EXPECT_NE(response.find("HTTP/1.0 200"), std::string::npos);
    EXPECT_NE(response.find("\"status\": \"ok\""), std::string::npos);
}

} // namespace
} // namespace mapzero::svc
