/** @file End-to-end tests for mapzerod: the submit/status/fetch/cancel
 *  lifecycle over real sockets, admission control under a saturated
 *  queue, graceful drain, cancellation of queued and running jobs, and
 *  the warm-cache effect of the shared CompileService. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/metrics.hpp"
#include "dfg/dfg.hpp"
#include "dfg/dot.hpp"
#include "dfg/kernels.hpp"
#include "svc/client.hpp"
#include "svc/daemon.hpp"
#include "svc/daemon_state.hpp"
#include "svc/slowlog.hpp"
#include "svc/telemetry_server.hpp"

namespace mapzero::svc {
namespace {

/** SUBMIT for a built-in kernel with fast-test defaults. */
SubmitRequest
submitOf(const std::string &kernel, std::uint8_t method = 3 /* SA */,
         double timeLimitSeconds = 10.0)
{
    SubmitRequest request;
    request.dfgDot = dfg::toDot(dfg::buildKernel(kernel));
    request.archName = "hrea";
    request.method = method;
    request.timeLimitSeconds = timeLimitSeconds;
    return request;
}

/**
 * A job that reliably occupies a worker for its whole time budget (or
 * until cancelled), which is what the busy/cancel/drain tests need.
 * A 1-to-15 star is schedulable at II=1 but unroutable on a 4x4
 * fabric, and with an effectively unbounded restart count SA keeps
 * re-annealing each II slice until the deadline instead of giving up
 * after a fixed number of attempts.
 */
SubmitRequest
slowSubmit(double timeLimitSeconds)
{
    dfg::Dfg star;
    star.setName("star15");
    const auto root = star.addNode(dfg::Opcode::Add, "n0");
    for (int i = 1; i <= 15; ++i)
        star.addEdge(root, star.addNode(dfg::Opcode::Add));

    SubmitRequest request;
    request.dfgDot = dfg::toDot(star);
    request.archName = "hrea";
    request.method = 3; // SA
    request.timeLimitSeconds = timeLimitSeconds;
    request.restartsPerIi = 1'000'000;
    return request;
}

TEST(Daemon, StartStopAndPing)
{
    Daemon daemon;
    DaemonOptions options;
    options.workers = 1;
    ASSERT_TRUE(daemon.start(options));
    EXPECT_TRUE(daemon.running());
    EXPECT_GT(daemon.port(), 0);
    EXPECT_EQ(daemon.phase(), DaemonPhase::Serving);
    EXPECT_EQ(daemonPhase(), DaemonPhase::Serving);

    Client client(daemon.port());
    DaemonInfo info;
    ASSERT_EQ(client.ping(info), Status::Ok);
    EXPECT_EQ(info.phase,
              static_cast<std::uint8_t>(DaemonPhase::Serving));
    EXPECT_EQ(info.workers, 1u);
    EXPECT_EQ(info.activeJobs, 0u);

    daemon.stop();
    EXPECT_FALSE(daemon.running());
    EXPECT_EQ(daemon.phase(), DaemonPhase::Idle);
    EXPECT_EQ(daemonPhase(), DaemonPhase::Idle);
    // A stopped daemon is unreachable.
    EXPECT_EQ(client.ping(info), Status::Error);
}

TEST(Daemon, SubmitStatusFetchProducesAValidMapping)
{
    Daemon daemon;
    DaemonOptions options;
    options.workers = 1;
    ASSERT_TRUE(daemon.start(options));
    Client client(daemon.port());

    std::uint64_t id = 0;
    std::uint32_t depth = 0;
    ASSERT_EQ(client.submit(submitOf("mac"), id, depth), Status::Ok);
    EXPECT_GT(id, 0u);

    const std::optional<JobStatus> final_status =
        client.waitForJob(id, 60.0);
    ASSERT_TRUE(final_status.has_value()) << client.lastError();
    EXPECT_EQ(final_status->state, JobState::Done);

    JobResult result;
    ASSERT_EQ(client.fetch(id, result), Status::Ok)
        << client.lastError();
    EXPECT_EQ(result.state, JobState::Done);
    // The blob carries the server-side re-validation verdict.
    EXPECT_NE(result.blob.find("\"success\": true"),
              std::string::npos)
        << result.blob;
    EXPECT_NE(result.blob.find("\"valid\": true"), std::string::npos)
        << result.blob;
    EXPECT_NE(result.blob.find("\"placements\""), std::string::npos);
    daemon.stop();
}

TEST(Daemon, EightConcurrentSubmissionsAllMapValidly)
{
    Daemon daemon;
    DaemonOptions options;
    options.workers = 4;
    options.queueCapacity = 16;
    ASSERT_TRUE(daemon.start(options));
    const int port = daemon.port();

    const std::vector<std::string> kernels = {
        "mac", "sum", "matmul", "accumulate",
        "mac",  "sum", "matmul", "accumulate"};
    std::vector<std::uint64_t> ids(kernels.size(), 0);
    std::vector<std::thread> submitters;
    std::atomic<int> submit_failures{0};
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        submitters.emplace_back([&, i] {
            Client client(port);
            std::uint32_t depth = 0;
            if (client.submit(submitOf(kernels[i]), ids[i], depth) !=
                Status::Ok)
                submit_failures.fetch_add(1);
        });
    }
    for (std::thread &submitter : submitters)
        submitter.join();
    ASSERT_EQ(submit_failures.load(), 0);

    Client client(port);
    for (std::size_t i = 0; i < ids.size(); ++i) {
        ASSERT_GT(ids[i], 0u) << i;
        const std::optional<JobStatus> done =
            client.waitForJob(ids[i], 120.0);
        ASSERT_TRUE(done.has_value())
            << kernels[i] << ": " << client.lastError();
        EXPECT_EQ(done->state, JobState::Done) << kernels[i];
        JobResult result;
        ASSERT_EQ(client.fetch(ids[i], result), Status::Ok);
        EXPECT_NE(result.blob.find("\"valid\": true"),
                  std::string::npos)
            << kernels[i] << ": " << result.blob;
    }
    daemon.stop();
}

TEST(Daemon, FullQueueAnswersBusyAndCountsRejections)
{
    Daemon daemon;
    DaemonOptions options;
    options.workers = 1;
    options.queueCapacity = 1;
    ASSERT_TRUE(daemon.start(options));
    Client client(daemon.port());

    const std::int64_t rejected_before =
        metrics().counter("svc.rejected_total").value();

    // Job 1 occupies the lone worker; job 2 fills the queue slot.
    std::uint64_t running_id = 0, queued_id = 0, rejected_id = 0;
    std::uint32_t depth = 0;
    ASSERT_EQ(client.submit(slowSubmit(30.0), running_id, depth),
              Status::Ok);
    // Wait until the worker actually picked job 1 up, so job 2 sits
    // alone in the queue.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
        JobStatus status;
        ASSERT_EQ(client.status(running_id, status), Status::Ok);
        if (status.state == JobState::Running)
            break;
        ASSERT_LT(std::chrono::steady_clock::now(), deadline);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_EQ(client.submit(slowSubmit(30.0), queued_id, depth),
              Status::Ok);

    // The queue is saturated: admission control answers BUSY.
    EXPECT_EQ(client.submit(submitOf("mac"), rejected_id, depth),
              Status::Busy);
    EXPECT_EQ(rejected_id, 0u);
    EXPECT_GE(metrics().counter("svc.rejected_total").value(),
              rejected_before + 1);

    // Cancel both admitted jobs so teardown is prompt.
    JobState state;
    EXPECT_EQ(client.cancel(queued_id, state), Status::Ok);
    EXPECT_EQ(state, JobState::Cancelled); // queued: immediate
    EXPECT_EQ(client.cancel(running_id, state), Status::Ok);
    const std::optional<JobStatus> final_status =
        client.waitForJob(running_id, 30.0);
    ASSERT_TRUE(final_status.has_value()) << client.lastError();
    EXPECT_EQ(final_status->state, JobState::Cancelled);
    daemon.stop();
}

TEST(Daemon, CancelReachesARunningSearchPromptly)
{
    Daemon daemon;
    DaemonOptions options;
    options.workers = 1;
    ASSERT_TRUE(daemon.start(options));
    Client client(daemon.port());

    std::uint64_t id = 0;
    std::uint32_t depth = 0;
    // Nominal budget of 120s: only cancellation can end this quickly.
    ASSERT_EQ(client.submit(slowSubmit(120.0), id, depth), Status::Ok);
    for (;;) {
        JobStatus status;
        ASSERT_EQ(client.status(id, status), Status::Ok);
        if (status.state == JobState::Running)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }

    const auto cancelled_at = std::chrono::steady_clock::now();
    JobState state;
    ASSERT_EQ(client.cancel(id, state), Status::Ok);
    const std::optional<JobStatus> final_status =
        client.waitForJob(id, 30.0);
    ASSERT_TRUE(final_status.has_value()) << client.lastError();
    EXPECT_EQ(final_status->state, JobState::Cancelled);
    const double reaction =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            std::chrono::steady_clock::now() - cancelled_at)
            .count();
    // The flag is polled by every Deadline check in the search loops;
    // seconds, not the 120s nominal budget.
    EXPECT_LT(reaction, 15.0);

    JobResult result;
    ASSERT_EQ(client.fetch(id, result), Status::Ok);
    EXPECT_EQ(result.state, JobState::Cancelled);
    EXPECT_NE(result.blob.find("\"cancelled\": true"),
              std::string::npos)
        << result.blob;
    daemon.stop();
}

TEST(Daemon, DrainFinishesAdmittedJobsAndRefusesNewOnes)
{
    const std::int64_t done_before =
        metrics().counter("svc.completed_total").value();

    Daemon daemon;
    DaemonOptions options;
    options.workers = 1;
    options.queueCapacity = 8;
    ASSERT_TRUE(daemon.start(options));
    Client client(daemon.port());

    // One slow job holds the worker; two fast ones wait behind it.
    std::uint64_t slow_id = 0, fast1 = 0, fast2 = 0;
    std::uint32_t depth = 0;
    ASSERT_EQ(client.submit(slowSubmit(3.0), slow_id, depth),
              Status::Ok);
    ASSERT_EQ(client.submit(submitOf("mac"), fast1, depth),
              Status::Ok);
    ASSERT_EQ(client.submit(submitOf("sum"), fast2, depth),
              Status::Ok);

    std::thread runner([&] { daemon.run(); });
    ASSERT_EQ(client.drain(), Status::Ok);

    // New submissions are refused while admitted ones keep going.
    std::uint64_t late_id = 0;
    const Status late = client.submit(submitOf("mac"), late_id, depth);
    // Draining while reachable; Error once the daemon has exited.
    EXPECT_TRUE(late == Status::Draining || late == Status::Error)
        << statusName(late);

    runner.join();
    EXPECT_FALSE(daemon.running());
    // Every admitted job reached a terminal state: the slow one used
    // its 3s budget, the queued fast ones were NOT orphaned.
    EXPECT_GE(metrics().counter("svc.completed_total").value(),
              done_before + 2);
}

TEST(Daemon, SecondIdenticalSubmissionHitsTheWarmCaches)
{
    Daemon daemon;
    DaemonOptions options;
    options.workers = 1;
    // Tiny pre-train budget: this test exercises the cache plumbing,
    // not mapping quality.
    options.service.pretrain.episodes = 2;
    options.service.pretrain.seconds = 5.0;
    options.service.pretrain.maxNodes = 6;
    options.service.pretrain.mctsExpansions = 4;
    ASSERT_TRUE(daemon.start(options));
    Client client(daemon.port());

    const SubmitRequest request =
        submitOf("mac", /*method=*/0 /* MapZero */, 30.0);

    std::uint64_t first = 0, second = 0;
    std::uint32_t depth = 0;
    ASSERT_EQ(client.submit(request, first, depth), Status::Ok);
    const std::optional<JobStatus> first_status =
        client.waitForJob(first, 120.0);
    ASSERT_TRUE(first_status.has_value()) << client.lastError();
    ASSERT_EQ(first_status->state, JobState::Done);

    const std::int64_t eval_hits_before =
        metrics().counter("eval_cache.hits").value();
    const std::int64_t agent_hits_before =
        metrics().counter("agent_cache.hits").value();

    ASSERT_EQ(client.submit(request, second, depth), Status::Ok);
    const std::optional<JobStatus> second_status =
        client.waitForJob(second, 120.0);
    ASSERT_TRUE(second_status.has_value()) << client.lastError();
    ASSERT_EQ(second_status->state, JobState::Done);

    // The repeat submission re-used the pre-trained network (no second
    // training run) and replayed observation evaluations out of the
    // shared eval cache.
    EXPECT_GT(metrics().counter("agent_cache.hits").value(),
              agent_hits_before);
    EXPECT_GT(metrics().counter("eval_cache.hits").value(),
              eval_hits_before);
    daemon.stop();
}

TEST(Daemon, RetainZeroEvictsTerminalJobsFromTheWire)
{
    Daemon daemon;
    DaemonOptions options;
    options.workers = 1;
    options.retainTerminal = 0; // evict at the terminal transition
    ASSERT_TRUE(daemon.start(options));
    Client client(daemon.port());

    const std::int64_t completed_before =
        metrics().counter("svc.completed_total").value();
    const std::int64_t evicted_before =
        metrics().counter("svc.evicted_total").value();

    std::uint64_t id = 0;
    std::uint32_t depth = 0;
    ASSERT_EQ(client.submit(submitOf("mac"), id, depth), Status::Ok);

    // The job is visible while queued/running and vanishes the moment
    // it completes: a poller sees NOT_FOUND, never a terminal state.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    for (;;) {
        JobStatus status;
        const Status rc = client.status(id, status);
        if (rc == Status::NotFound)
            break;
        ASSERT_EQ(rc, Status::Ok) << client.lastError();
        EXPECT_FALSE(jobStateTerminal(status.state));
        ASSERT_LT(std::chrono::steady_clock::now(), deadline);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    JobResult result;
    EXPECT_EQ(client.fetch(id, result), Status::NotFound);

    // The job did complete (it was evicted, not lost), and the
    // eviction is visible in the metrics plane.
    EXPECT_GE(metrics().counter("svc.completed_total").value(),
              completed_before + 1);
    EXPECT_GT(metrics().counter("svc.evicted_total").value(),
              evicted_before);
    daemon.stop();
}

/** Drop every `"seconds": <number>` field: the one part of a result
 *  blob an uncached recompile legitimately changes. */
std::string
stripSeconds(std::string blob)
{
    for (;;) {
        const std::size_t at = blob.find("\"seconds\":");
        if (at == std::string::npos)
            return blob;
        std::size_t end = at + 10;
        while (end < blob.size() && blob[end] != ',' &&
               blob[end] != '}' && blob[end] != '\n')
            ++end;
        blob.erase(at, end - at);
    }
}

TEST(Daemon, PersistentTierReplaysBitIdenticalBlobsAcrossRestarts)
{
    const std::string cache_dir =
        (std::filesystem::temp_directory_path() /
         ("mapzero-daemon-persist-" + std::to_string(::getpid())))
            .string();
    std::filesystem::remove_all(cache_dir);

    // A Zipf-shaped replay: the head kernel dominates, with duplicates
    // submitted concurrently so same-key compiles and disk writes race.
    const std::vector<std::string> stream = {
        "mac", "mac",    "sum", "mac",        "matmul", "mac",
        "sum", "matmul", "mac", "accumulate", "sum",    "mac"};

    // Phase 1: a cold daemon computes everything and fills the disk
    // tier. Every blob for a kernel must agree once the wall-clock
    // "seconds" field is stripped: the mapping itself is a pure
    // function of the request.
    std::map<std::string, std::string> cold;
    {
        Daemon daemon;
        DaemonOptions options;
        options.workers = 4;
        options.service.persistDir = cache_dir;
        ASSERT_TRUE(daemon.start(options));
        const int port = daemon.port();

        std::vector<std::uint64_t> ids(stream.size(), 0);
        std::vector<std::thread> submitters;
        for (std::size_t i = 0; i < stream.size(); ++i) {
            submitters.emplace_back([&, i] {
                Client client(port);
                std::uint32_t depth = 0;
                client.submit(submitOf(stream[i]), ids[i], depth);
            });
        }
        for (std::thread &submitter : submitters)
            submitter.join();

        Client client(port);
        for (std::size_t i = 0; i < stream.size(); ++i) {
            ASSERT_GT(ids[i], 0u) << stream[i];
            const std::optional<JobStatus> done =
                client.waitForJob(ids[i], 120.0);
            ASSERT_TRUE(done.has_value()) << client.lastError();
            ASSERT_EQ(done->state, JobState::Done) << stream[i];
            JobResult result;
            ASSERT_EQ(client.fetch(ids[i], result), Status::Ok);
            const auto [it, first_of_kernel] =
                cold.emplace(stream[i], result.blob);
            if (!first_of_kernel) {
                EXPECT_EQ(stripSeconds(result.blob),
                          stripSeconds(it->second))
                    << stream[i];
            }
        }
        daemon.stop();
        EXPECT_GT(metrics().counter("cache.disk_writes").value(), 0);
    }

    // Phase 2: a fresh daemon (a restart) sharing the directory serves
    // the stream out of the disk tier. Repeats of a kernel are
    // byte-for-byte identical - including "seconds", because the tier
    // replays the stored result instead of recompiling - and match the
    // cold mapping.
    {
        const std::int64_t hits_before =
            metrics().counter("cache.disk_hits").value();
        Daemon daemon;
        DaemonOptions options;
        options.workers = 2;
        options.service.persistDir = cache_dir;
        ASSERT_TRUE(daemon.start(options));
        Client client(daemon.port());

        std::map<std::string, std::string> warm;
        for (const auto &[kernel, cold_blob] : cold) {
            for (int repeat = 0; repeat < 2; ++repeat) {
                std::uint64_t id = 0;
                std::uint32_t depth = 0;
                ASSERT_EQ(client.submit(submitOf(kernel), id, depth),
                          Status::Ok);
                const std::optional<JobStatus> done =
                    client.waitForJob(id, 120.0);
                ASSERT_TRUE(done.has_value()) << client.lastError();
                ASSERT_EQ(done->state, JobState::Done) << kernel;
                JobResult result;
                ASSERT_EQ(client.fetch(id, result), Status::Ok);
                const auto [it, first_fetch] =
                    warm.emplace(kernel, result.blob);
                if (!first_fetch) {
                    EXPECT_EQ(result.blob, it->second) << kernel;
                }
                EXPECT_EQ(stripSeconds(result.blob),
                          stripSeconds(cold_blob))
                    << kernel;
            }
        }
        daemon.stop();
        EXPECT_GE(metrics().counter("cache.disk_hits").value(),
                  hits_before +
                      static_cast<std::int64_t>(2 * cold.size()));
    }
    std::filesystem::remove_all(cache_dir);
}

TEST(Daemon, HandleRejectsGarbageWithoutASocket)
{
    Daemon daemon;
    DaemonOptions options;
    options.workers = 1;
    ASSERT_TRUE(daemon.start(options));

    const auto status_of = [](const std::string &payload) {
        return payload.empty()
                   ? Status::Error
                   : static_cast<Status>(
                         static_cast<std::uint8_t>(payload[0]));
    };

    Frame frame;
    frame.op = static_cast<Op>(0x77); // unknown opcode
    EXPECT_EQ(status_of(daemon.handle(frame)), Status::BadRequest);

    frame.op = Op::Submit;
    frame.payload = "not a submit payload";
    EXPECT_EQ(status_of(daemon.handle(frame)), Status::BadRequest);

    SubmitRequest bad_arch;
    bad_arch.dfgDot = dfg::toDot(dfg::buildKernel("mac"));
    bad_arch.archName = "not-a-fabric";
    frame.payload = encodeSubmit(bad_arch);
    EXPECT_EQ(status_of(daemon.handle(frame)), Status::BadRequest);

    SubmitRequest bad_dot;
    bad_dot.dfgDot = "this is not DOT";
    bad_dot.archName = "hrea";
    frame.payload = encodeSubmit(bad_dot);
    EXPECT_EQ(status_of(daemon.handle(frame)), Status::BadRequest);

    SubmitRequest bad_method;
    bad_method.dfgDot = bad_arch.dfgDot;
    bad_method.archName = "hrea";
    bad_method.method = 200;
    frame.payload = encodeSubmit(bad_method);
    EXPECT_EQ(status_of(daemon.handle(frame)), Status::BadRequest);

    // Unknown ids on the query ops.
    WireWriter id_payload;
    id_payload.u64(424242);
    for (const Op op : {Op::Status, Op::Fetch, Op::Cancel}) {
        frame.op = op;
        frame.payload = id_payload.bytes();
        EXPECT_EQ(status_of(daemon.handle(frame)), Status::NotFound);
    }
    daemon.stop();
}

TEST(Daemon, HealthzReportsDaemonState)
{
    TelemetryServer telemetry;
    HttpRequest request;
    request.method = "GET";
    request.path = "/healthz";

    EXPECT_NE(telemetry.handle(request).find(
                  "\"daemon_state\": \"idle\""),
              std::string::npos);

    Daemon daemon;
    DaemonOptions options;
    options.workers = 1;
    ASSERT_TRUE(daemon.start(options));
    EXPECT_NE(telemetry.handle(request).find(
                  "\"daemon_state\": \"serving\""),
              std::string::npos);
    daemon.stop();
    EXPECT_NE(telemetry.handle(request).find(
                  "\"daemon_state\": \"idle\""),
              std::string::npos);
}

TEST(Daemon, SlowJobsLandInTheSlowlog)
{
    Slowlog::global().clear();
    Daemon daemon;
    DaemonOptions options;
    options.workers = 1;
    // Threshold 0: disabled; then a daemon with a tiny threshold.
    options.slowlogThresholdSeconds = 0.001;
    ASSERT_TRUE(daemon.start(options));
    Client client(daemon.port());

    // The star job deterministically burns its whole 0.3s budget,
    // which is comfortably past the 1ms threshold; a trivial kernel
    // like mac completes in microseconds and would never qualify.
    std::uint64_t id = 0;
    std::uint32_t depth = 0;
    ASSERT_EQ(client.submit(slowSubmit(0.3), id, depth), Status::Ok);
    const std::optional<JobStatus> done = client.waitForJob(id, 60.0);
    ASSERT_TRUE(done.has_value());
    daemon.stop();

    ASSERT_GE(Slowlog::global().size(), 1u);
    const SlowlogEntry newest = Slowlog::global().entries().front();
    EXPECT_EQ(newest.dfgName, "star15");
    EXPECT_EQ(newest.archName, "hrea");
    // The compile ran to completion (the mapping attempt failed, but
    // that is in the blob): job-wise this is DONE, not FAILED, which
    // is reserved for compiles that threw.
    EXPECT_EQ(newest.outcome, "DONE");
    EXPECT_GE(newest.seconds, 0.001);

    // And the telemetry server serves the ring at /slowlog.
    TelemetryServer telemetry;
    HttpRequest request;
    request.method = "GET";
    request.path = "/slowlog";
    const std::string response = telemetry.handle(request);
    EXPECT_NE(response.find("HTTP/1.0 200"), std::string::npos);
    EXPECT_NE(response.find("\"dfg\": \"star15\""), std::string::npos);
}

} // namespace
} // namespace mapzero::svc
