/** @file Tests for the mapzerod wire protocol: little-endian
 *  round-trips, poisoned readers on truncation, frame IO over real
 *  socket pairs, and the oversized-frame guard. */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <string>
#include <thread>

#include "common/timer.hpp"
#include "svc/protocol.hpp"

namespace mapzero::svc {
namespace {

TEST(Protocol, WriterReaderRoundTripsEveryType)
{
    WireWriter writer;
    writer.u8(0xAB);
    writer.u32(0xDEADBEEF);
    writer.u64(0x0123456789ABCDEFull);
    writer.f64(-2.5);
    writer.f64(0.1); // not exactly representable: bits must survive
    writer.str("hello");
    writer.str(""); // empty strings are legal

    WireReader reader(writer.bytes());
    EXPECT_EQ(reader.u8(), 0xAB);
    EXPECT_EQ(reader.u32(), 0xDEADBEEFu);
    EXPECT_EQ(reader.u64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(reader.f64(), -2.5);
    EXPECT_EQ(reader.f64(), 0.1);
    EXPECT_EQ(reader.str(), "hello");
    EXPECT_EQ(reader.str(), "");
    EXPECT_TRUE(reader.done());
}

TEST(Protocol, IntegersAreLittleEndianOnTheWire)
{
    WireWriter writer;
    writer.u32(0x04030201);
    const std::string &bytes = writer.bytes();
    ASSERT_EQ(bytes.size(), 4u);
    EXPECT_EQ(static_cast<unsigned char>(bytes[0]), 0x01);
    EXPECT_EQ(static_cast<unsigned char>(bytes[1]), 0x02);
    EXPECT_EQ(static_cast<unsigned char>(bytes[2]), 0x03);
    EXPECT_EQ(static_cast<unsigned char>(bytes[3]), 0x04);
}

TEST(Protocol, TruncationPoisonsTheReader)
{
    WireWriter writer;
    writer.u64(7);
    // Chop the last byte: the u64 read must fail, and every read
    // after the poisoning must stay failed and harmless.
    WireReader reader(
        std::string_view(writer.bytes()).substr(0, 7));
    EXPECT_EQ(reader.u64(), 0u);
    EXPECT_FALSE(reader.ok());
    EXPECT_EQ(reader.u32(), 0u);
    EXPECT_EQ(reader.str(), "");
    EXPECT_FALSE(reader.done());
}

TEST(Protocol, StringLengthBeyondCapPoisonsWithoutAllocating)
{
    WireWriter writer;
    writer.u32(0xFFFFFFFF); // announced length: 4 GiB
    WireReader reader(writer.bytes());
    EXPECT_EQ(reader.str(), "");
    EXPECT_FALSE(reader.ok());
}

TEST(Protocol, SubmitRoundTrip)
{
    SubmitRequest request;
    request.dfgDot = "digraph mac { a -> b }";
    request.archName = "hrea";
    request.method = 3;
    request.timeLimitSeconds = 2.25;
    request.seed = 99;
    request.restartsPerIi = 5;
    request.jobs = 2;
    request.evalCache = false;

    SubmitRequest decoded;
    ASSERT_TRUE(decodeSubmit(encodeSubmit(request), decoded));
    EXPECT_EQ(decoded.dfgDot, request.dfgDot);
    EXPECT_EQ(decoded.archName, request.archName);
    EXPECT_EQ(decoded.method, request.method);
    EXPECT_EQ(decoded.timeLimitSeconds, request.timeLimitSeconds);
    EXPECT_EQ(decoded.seed, request.seed);
    EXPECT_EQ(decoded.restartsPerIi, request.restartsPerIi);
    EXPECT_EQ(decoded.jobs, request.jobs);
    EXPECT_EQ(decoded.evalCache, request.evalCache);
}

TEST(Protocol, SubmitDecodeRejectsTruncationAndTrailingGarbage)
{
    const std::string good = encodeSubmit(SubmitRequest{});
    SubmitRequest out;
    EXPECT_TRUE(decodeSubmit(good, out));
    EXPECT_FALSE(decodeSubmit(good.substr(0, good.size() - 1), out));
    EXPECT_FALSE(decodeSubmit(good + "x", out));
    EXPECT_FALSE(decodeSubmit("", out));
}

TEST(Protocol, FrameRoundTripOverASocketPair)
{
    int fds[2] = {-1, -1};
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

    ASSERT_TRUE(writeFrame(fds[0], Op::Submit, "payload-bytes"));
    Frame frame;
    EXPECT_EQ(readFrame(fds[1], frame, Deadline(5.0)), Status::Ok);
    EXPECT_EQ(frame.op, Op::Submit);
    EXPECT_EQ(frame.payload, "payload-bytes");

    // Empty payloads (PING/DRAIN) work too.
    ASSERT_TRUE(writeFrame(fds[0], Op::Ping, ""));
    EXPECT_EQ(readFrame(fds[1], frame, Deadline(5.0)), Status::Ok);
    EXPECT_EQ(frame.op, Op::Ping);
    EXPECT_TRUE(frame.payload.empty());

    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(Protocol, ReadFrameRejectsOversizedAnnouncedLength)
{
    int fds[2] = {-1, -1};
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

    // Hand-build a header announcing kMaxFrameBytes + 1 payload bytes.
    const std::uint32_t length =
        static_cast<std::uint32_t>(kMaxFrameBytes + 1);
    WireWriter header;
    header.u32(length);
    header.u8(static_cast<std::uint8_t>(Op::Submit));
    const std::string &bytes = header.bytes();
    ASSERT_EQ(::send(fds[0], bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));

    Frame frame;
    EXPECT_EQ(readFrame(fds[1], frame, Deadline(5.0)),
              Status::BadRequest);
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(Protocol, ReadFrameReturnsErrorOnEofAndOnDeadline)
{
    int fds[2] = {-1, -1};
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

    // Peer closes without sending anything: EOF.
    ::close(fds[0]);
    Frame frame;
    EXPECT_EQ(readFrame(fds[1], frame, Deadline(5.0)), Status::Error);
    ::close(fds[1]);

    // Peer sends half a header and stalls: deadline expiry.
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    ASSERT_EQ(::send(fds[0], "\x08\x00", 2, 0), 2);
    EXPECT_EQ(readFrame(fds[1], frame, Deadline(0.3)), Status::Error);
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(Protocol, WriteReplyPrefixesStatusByte)
{
    int fds[2] = {-1, -1};
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    ASSERT_TRUE(writeReply(fds[0], Status::Busy, "queue full"));
    Frame frame;
    ASSERT_EQ(readFrame(fds[1], frame, Deadline(5.0)), Status::Ok);
    EXPECT_EQ(frame.op, Op::Reply);
    ASSERT_FALSE(frame.payload.empty());
    EXPECT_EQ(static_cast<Status>(
                  static_cast<std::uint8_t>(frame.payload[0])),
              Status::Busy);
    EXPECT_EQ(frame.payload.substr(1), "queue full");
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(Protocol, StatusNamesAreStable)
{
    EXPECT_STREQ(statusName(Status::Ok), "OK");
    EXPECT_STREQ(statusName(Status::Busy), "BUSY");
    EXPECT_STREQ(statusName(Status::NotFound), "NOT_FOUND");
    EXPECT_STREQ(statusName(Status::Draining), "DRAINING");
}

} // namespace
} // namespace mapzero::svc
