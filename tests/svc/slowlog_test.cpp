/** @file Tests for the compile slowlog ring: thresholding, bounded
 *  capacity, newest-first ordering, and JSON rendering. */

#include <gtest/gtest.h>

#include <string>

#include "svc/slowlog.hpp"

namespace mapzero::svc {
namespace {

SlowlogEntry
entry(std::uint64_t id, double seconds)
{
    SlowlogEntry e;
    e.jobId = id;
    e.dfgName = "k" + std::to_string(id);
    e.archName = "hrea";
    e.method = "SA";
    e.seconds = seconds;
    e.outcome = "DONE";
    return e;
}

TEST(Slowlog, ThresholdGatesRecording)
{
    Slowlog log;
    EXPECT_FALSE(log.record(entry(1, 0.1), /*threshold=*/0.5));
    EXPECT_TRUE(log.record(entry(2, 0.5), 0.5)); // at threshold: kept
    EXPECT_TRUE(log.record(entry(3, 2.0), 0.5));
    EXPECT_EQ(log.size(), 2u);
}

TEST(Slowlog, NonPositiveThresholdDisables)
{
    Slowlog log;
    EXPECT_FALSE(log.record(entry(1, 100.0), 0.0));
    EXPECT_FALSE(log.record(entry(2, 100.0), -1.0));
    EXPECT_EQ(log.size(), 0u);
}

TEST(Slowlog, NewestFirstAndBounded)
{
    Slowlog log;
    for (std::uint64_t i = 0; i < Slowlog::kCapacity + 10; ++i)
        ASSERT_TRUE(log.record(entry(i, 1.0), 0.5));
    EXPECT_EQ(log.size(), Slowlog::kCapacity);
    const std::vector<SlowlogEntry> entries = log.entries();
    ASSERT_EQ(entries.size(), Slowlog::kCapacity);
    // Newest entry first; the 10 oldest were dropped.
    EXPECT_EQ(entries.front().jobId, Slowlog::kCapacity + 9);
    EXPECT_EQ(entries.back().jobId, 10u);
}

TEST(Slowlog, ClearEmpties)
{
    Slowlog log;
    ASSERT_TRUE(log.record(entry(1, 1.0), 0.5));
    log.clear();
    EXPECT_EQ(log.size(), 0u);
    EXPECT_EQ(log.toJson(), "[]\n");
}

TEST(Slowlog, JsonCarriesTheFields)
{
    Slowlog log;
    SlowlogEntry e = entry(7, 1.25);
    e.queuedSeconds = 0.5;
    e.outcome = "FAILED";
    ASSERT_TRUE(log.record(e, 0.5));
    const std::string json = log.toJson();
    EXPECT_NE(json.find("\"job_id\": 7"), std::string::npos);
    EXPECT_NE(json.find("\"dfg\": \"k7\""), std::string::npos);
    EXPECT_NE(json.find("\"arch\": \"hrea\""), std::string::npos);
    EXPECT_NE(json.find("\"seconds\": 1.25"), std::string::npos);
    EXPECT_NE(json.find("\"queued_seconds\": 0.5"),
              std::string::npos);
    EXPECT_NE(json.find("\"outcome\": \"FAILED\""),
              std::string::npos);
}

TEST(Slowlog, GlobalIsASingleton)
{
    EXPECT_EQ(&Slowlog::global(), &Slowlog::global());
}

} // namespace
} // namespace mapzero::svc
