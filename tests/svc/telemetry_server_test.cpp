/** @file Tests for the telemetry plane: HTTP parsing, Prometheus
 *  exposition conformance, and the live server end to end. */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "core/compiler.hpp"
#include "dfg/kernels.hpp"
#include "svc/http.hpp"
#include "svc/prometheus.hpp"
#include "svc/telemetry_server.hpp"

namespace mapzero::svc {
namespace {

// ---------------------------------------------------------------- HTTP

TEST(Http, ParsesRequestLineAndQuery)
{
    HttpRequest req;
    ASSERT_TRUE(parseHttpRequest(
        "GET /journal?n=50&x=a%20b HTTP/1.1\r\nHost: x\r\n\r\n", req));
    EXPECT_EQ(req.method, "GET");
    EXPECT_EQ(req.target, "/journal?n=50&x=a%20b");
    EXPECT_EQ(req.path, "/journal");
    EXPECT_EQ(req.query.at("n"), "50");
    EXPECT_EQ(req.query.at("x"), "a b");
}

TEST(Http, RejectsMalformedRequestLines)
{
    HttpRequest req;
    EXPECT_FALSE(parseHttpRequest("", req));
    EXPECT_FALSE(parseHttpRequest("GET\r\n", req));
    EXPECT_FALSE(parseHttpRequest("GET /metrics\r\n", req));
    EXPECT_FALSE(parseHttpRequest("GET metrics HTTP/1.0\r\n", req));
    EXPECT_FALSE(parseHttpRequest("GET /metrics FTP/1.0\r\n", req));
}

TEST(Http, ResponseCarriesLengthAndConnectionClose)
{
    const std::string r = httpResponse(200, "text/plain", "hello");
    EXPECT_EQ(r.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
    EXPECT_NE(r.find("Content-Length: 5\r\n"), std::string::npos);
    EXPECT_NE(r.find("Connection: close\r\n"), std::string::npos);
    EXPECT_EQ(r.substr(r.size() - 5), "hello");
}

// ---------------------------------------------- Prometheus exposition

TEST(Prometheus, NameSanitization)
{
    EXPECT_EQ(prometheusName("eval_cache.hits"), "eval_cache_hits");
    EXPECT_EQ(prometheusName("proc.rss_bytes"), "proc_rss_bytes");
    EXPECT_EQ(prometheusName("a-b c"), "a_b_c");
    EXPECT_EQ(prometheusName("7seconds"), "_7seconds");
}

TEST(Prometheus, LabelValueEscaping)
{
    EXPECT_EQ(prometheusLabelValue("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(Prometheus, NumberFormatting)
{
    EXPECT_EQ(prometheusNumber(2.5), "2.5");
    EXPECT_EQ(prometheusNumber(
                  std::numeric_limits<double>::infinity()),
              "+Inf");
    EXPECT_EQ(prometheusNumber(
                  -std::numeric_limits<double>::infinity()),
              "-Inf");
    EXPECT_EQ(prometheusNumber(std::nan("")), "NaN");
}

TEST(Prometheus, CountersAndGaugesGetTypedSamples)
{
    MetricsRegistry reg;
    reg.counter("svc.test_counter").add(7);
    reg.gauge("svc.test_gauge").set(-1.5);
    const std::string text = renderPrometheus(reg.snapshot());
    EXPECT_NE(text.find("# TYPE svc_test_counter counter\n"
                        "svc_test_counter 7\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE svc_test_gauge gauge\n"
                        "svc_test_gauge -1.5\n"),
              std::string::npos);
}

/** Per-line view of one metric's exposition block. */
std::vector<std::string>
linesOf(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream is(text);
    for (std::string line; std::getline(is, line);)
        lines.push_back(line);
    return lines;
}

TEST(Prometheus, HistogramBucketsAreCumulativeAndEndAtInf)
{
    MetricsRegistry reg;
    Histogram &h = reg.histogram("svc.lat");
    for (double v : {0.5, 1.0, 2.0, 100.0})
        h.record(v);
    const std::string text = renderPrometheus(reg.snapshot());
    EXPECT_NE(text.find("# TYPE svc_lat histogram"),
              std::string::npos);

    // Walk the bucket lines: counts must be non-decreasing, the +Inf
    // bucket must exist and equal _count, and le bounds must ascend.
    std::int64_t prev_count = 0;
    double prev_le = -std::numeric_limits<double>::infinity();
    std::int64_t inf_count = -1;
    std::int64_t total_count = -1;
    for (const std::string &line : linesOf(text)) {
        if (line.rfind("svc_lat_bucket{le=\"", 0) == 0) {
            const std::size_t q1 = line.find('"');
            const std::size_t q2 = line.find('"', q1 + 1);
            const std::string le = line.substr(q1 + 1, q2 - q1 - 1);
            const std::int64_t count =
                std::atoll(line.substr(q2 + 2).c_str());
            EXPECT_GE(count, prev_count) << line;
            prev_count = count;
            if (le == "+Inf") {
                inf_count = count;
            } else {
                const double bound = std::atof(le.c_str());
                EXPECT_GT(bound, prev_le) << line;
                prev_le = bound;
            }
        } else if (line.rfind("svc_lat_count ", 0) == 0) {
            total_count = std::atoll(line.substr(14).c_str());
        }
    }
    EXPECT_EQ(inf_count, 4);
    EXPECT_EQ(total_count, 4);
    EXPECT_NE(text.find("svc_lat_sum 103.5"), std::string::npos);
}

TEST(Prometheus, EmptyHistogramStillWellFormed)
{
    MetricsRegistry reg;
    reg.histogram("svc.empty");
    const std::string text = renderPrometheus(reg.snapshot());
    EXPECT_NE(text.find("svc_empty_bucket{le=\"+Inf\"} 0"),
              std::string::npos);
    EXPECT_NE(text.find("svc_empty_count 0"), std::string::npos);
}

// ------------------------------------------------- snapshot/percentile

TEST(MetricsSnapshot, DetachedAndOrdered)
{
    MetricsRegistry reg;
    reg.counter("b.two").add(2);
    reg.counter("a.one").add(1);
    reg.gauge("z.g").set(3.0);
    const MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 2u);
    EXPECT_EQ(snap.counters[0].first, "a.one");
    EXPECT_EQ(snap.counters[1].first, "b.two");
    // Detached: later mutation is invisible to the copy.
    reg.counter("a.one").add(100);
    EXPECT_EQ(snap.counters[0].second, 1);
}

TEST(MetricsSnapshot, PercentilesMatchTheLiveHistogram)
{
    MetricsRegistry reg;
    Histogram &h = reg.histogram("snap.lat");
    for (int i = 1; i <= 1000; ++i)
        h.record(static_cast<double>(i));
    const MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.histograms.size(), 1u);
    const HistogramSnapshot &hs = snap.histograms[0].second;
    EXPECT_EQ(hs.count, 1000);
    for (double q : {0.5, 0.9, 0.99})
        EXPECT_DOUBLE_EQ(hs.percentile(q), h.percentile(q)) << q;
}

// ------------------------------------------------------- route handler

TEST(TelemetryRoutes, HandleDispatchesWithoutASocket)
{
    metrics().counter("svc.route_probe").add(1);
    TelemetryServer server;
    HttpRequest req;
    req.method = "GET";

    req.path = "/metrics";
    std::string r = server.handle(req);
    EXPECT_NE(r.find("HTTP/1.0 200"), std::string::npos);
    EXPECT_NE(r.find(kPrometheusContentType), std::string::npos);
    EXPECT_NE(r.find("svc_route_probe 1"), std::string::npos);
    EXPECT_NE(r.find("proc_rss_bytes"), std::string::npos);

    req.path = "/healthz";
    r = server.handle(req);
    EXPECT_NE(r.find("\"status\": \"ok\""), std::string::npos);

    req.path = "/snapshot.json";
    r = server.handle(req);
    EXPECT_NE(r.find("\"metrics\""), std::string::npos);
    EXPECT_NE(r.find("\"timeseries\""), std::string::npos);

    req.path = "/journal";
    req.query["n"] = "0";
    EXPECT_NE(server.handle(req).find("HTTP/1.0 400"),
              std::string::npos);
    req.query["n"] = "5";
    EXPECT_NE(server.handle(req).find("HTTP/1.0 200"),
              std::string::npos);

    req.query.clear();
    req.path = "/nope";
    EXPECT_NE(server.handle(req).find("HTTP/1.0 404"),
              std::string::npos);
    req.method = "POST";
    req.path = "/metrics";
    EXPECT_NE(server.handle(req).find("HTTP/1.0 405"),
              std::string::npos);
}

TEST(TelemetryRoutes, JournalTailParamIsValidatedAndClamped)
{
    TelemetryServer server;
    HttpRequest req;
    req.method = "GET";
    req.path = "/journal";

    // Garbage values: non-numeric, signed, decorated, empty.
    for (const char *bad : {"abc", "-5", "+5", "1.5", "", "12x",
                            " 12", "0"}) {
        req.query["n"] = bad;
        EXPECT_NE(server.handle(req).find("HTTP/1.0 400"),
                  std::string::npos)
            << "n=" << bad;
    }

    // Huge values are clamped, not rejected and not trusted: both of
    // these answer 200 (the clamp caps the tail length internally).
    for (const char *huge :
         {"999999999", "99999999999999999999999999"}) {
        req.query["n"] = huge;
        EXPECT_NE(server.handle(req).find("HTTP/1.0 200"),
                  std::string::npos)
            << "n=" << huge;
    }

    req.query["n"] = "1";
    EXPECT_NE(server.handle(req).find("HTTP/1.0 200"),
              std::string::npos);
}

TEST(TelemetryRoutes, HealthzCarriesBuildAndDaemonFields)
{
    TelemetryServer server;
    HttpRequest req;
    req.method = "GET";
    req.path = "/healthz";
    const std::string response = server.handle(req);
    EXPECT_NE(response.find("\"uptime_seconds\": "),
              std::string::npos);
    // Build mode and sanitizer are compile-time facts of this binary.
#ifdef NDEBUG
    EXPECT_NE(response.find("\"build\": \"release\""),
              std::string::npos);
#else
    EXPECT_NE(response.find("\"build\": \"debug\""),
              std::string::npos);
#endif
    EXPECT_NE(response.find("\"sanitizer\": \""), std::string::npos);
    // No daemon in this process (or an idle one): state is reported
    // either way.
    EXPECT_NE(response.find("\"daemon_state\": \""),
              std::string::npos);
}

// ------------------------------------------------------- live sockets

/** Blocking GET against 127.0.0.1:port; returns the raw response. */
std::string
httpGet(int port, const std::string &target)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return "";
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return "";
    }
    const std::string request =
        "GET " + target + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
    (void)!::send(fd, request.data(), request.size(), 0);
    std::string response;
    char buffer[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
        if (n <= 0)
            break;
        response.append(buffer, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return response;
}

TEST(TelemetryServerLive, ServesAllRoutesOverARealSocket)
{
    TelemetryServer server;
    TelemetryOptions options;
    options.port = 0; // ephemeral
    ASSERT_TRUE(server.start(options));
    ASSERT_GT(server.port(), 0);

    const std::string metrics_resp = httpGet(server.port(), "/metrics");
    EXPECT_NE(metrics_resp.find("HTTP/1.0 200"), std::string::npos);
    EXPECT_NE(metrics_resp.find("# TYPE"), std::string::npos);
    EXPECT_NE(metrics_resp.find("proc_rss_bytes"), std::string::npos);

    EXPECT_NE(httpGet(server.port(), "/healthz").find("\"ok\""),
              std::string::npos);
    EXPECT_NE(httpGet(server.port(), "/snapshot.json")
                  .find("\"timeseries\""),
              std::string::npos);
    EXPECT_NE(httpGet(server.port(), "/journal?n=3")
                  .find("HTTP/1.0 200"),
              std::string::npos);
    EXPECT_NE(httpGet(server.port(), "/nope").find("HTTP/1.0 404"),
              std::string::npos);
    EXPECT_GE(server.requestsServed(), 5);

    const int port = server.port();
    server.stop();
    EXPECT_FALSE(server.running());
    EXPECT_EQ(httpGet(port, "/healthz"), "");
}

TEST(TelemetryServerLive, StartIsIdempotentAndRebindsAfterStop)
{
    TelemetryServer server;
    ASSERT_TRUE(server.start());
    const int first = server.port();
    EXPECT_TRUE(server.start()); // already running: keeps the port
    EXPECT_EQ(server.port(), first);
    server.stop();
    ASSERT_TRUE(server.start());
    EXPECT_GT(server.port(), 0);
    server.stop();
}

TEST(TelemetryServerLive, ScrapesStayValidDuringAParallelCompile)
{
    TelemetryServer server;
    ASSERT_TRUE(server.start());
    const int port = server.port();

    std::atomic<bool> done{false};
    std::atomic<int> scrapes{0};
    std::atomic<int> failures{0};
    std::thread scraper([&] {
        while (!done.load()) {
            const std::string r = httpGet(port, "/metrics");
            if (r.find("HTTP/1.0 200") == std::string::npos ||
                r.find("# TYPE") == std::string::npos)
                failures.fetch_add(1);
            scrapes.fetch_add(1);
        }
    });

    CompileOptions options;
    options.timeLimitSeconds = 5.0;
    options.jobs = 2;
    options.restartsPerIi = 4;
    Compiler compiler;
    const CompileResult result =
        compiler.compile(dfg::buildKernel("mac"),
                         cgra::Architecture::hrea(), Method::Sa,
                         options);
    done.store(true);
    scraper.join();
    server.stop();

    EXPECT_TRUE(result.success);
    EXPECT_GT(scrapes.load(), 0);
    EXPECT_EQ(failures.load(), 0);
}

} // namespace
} // namespace mapzero::svc
