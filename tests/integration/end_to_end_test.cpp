/**
 * @file
 * End-to-end integration tests: full compilations through the public
 * facade with independent validation of the produced mappings.
 */

#include <gtest/gtest.h>

#include "core/agent_cache.hpp"
#include "core/compiler.hpp"
#include "dfg/kernels.hpp"
#include "dfg/schedule.hpp"
#include "mapper/router.hpp"
#include "mapper/validator.hpp"

namespace mapzero {
namespace {

/**
 * Re-derive a full mapping from returned placements and check it with
 * the independent validator (routes are re-computed by the router, so
 * this verifies the placements are genuinely routable).
 */
void
expectPlacementsRoutable(const dfg::Dfg &d,
                         const cgra::Architecture &arch,
                         const CompileResult &r)
{
    ASSERT_TRUE(r.success);
    cgra::Mrrg mrrg(arch, r.ii);
    auto schedule = dfg::moduloSchedule(d, r.ii,
                                        arch.memoryIssueCapacity());
    ASSERT_TRUE(schedule.has_value());
    mapper::MappingState state(d, mrrg, *schedule);
    ASSERT_TRUE(mapper::Router::replayMapping(state, r.placements));
    const auto validation = mapper::validateMapping(state);
    EXPECT_TRUE(validation.valid)
        << (validation.errors.empty() ? "" : validation.errors.front());
    EXPECT_TRUE(state.complete());
}

PretrainBudget
smallBudget()
{
    PretrainBudget b;
    b.episodes = 6;
    b.seconds = 15.0;
    b.maxNodes = 8;
    b.mctsExpansions = 8;
    return b;
}

TEST(EndToEnd, IlpSumOnHreaProducesValidMapping)
{
    const dfg::Dfg d = dfg::buildKernel("sum");
    cgra::Architecture arch = cgra::Architecture::hrea();
    Compiler compiler;
    CompileOptions opts;
    opts.timeLimitSeconds = 60.0;
    const CompileResult r = compiler.compile(d, arch, Method::Ilp, opts);
    expectPlacementsRoutable(d, arch, r);
}

TEST(EndToEnd, MapZeroConv2OnHreaProducesValidMapping)
{
    const dfg::Dfg d = dfg::buildKernel("conv2");
    cgra::Architecture arch = cgra::Architecture::hrea();
    Compiler compiler;
    compiler.setNetwork(pretrainedNetwork(arch, smallBudget()));
    CompileOptions opts;
    opts.timeLimitSeconds = 60.0;
    const CompileResult r =
        compiler.compile(d, arch, Method::MapZero, opts);
    expectPlacementsRoutable(d, arch, r);
}

TEST(EndToEnd, MapZeroMacOnHycubeProducesValidMapping)
{
    const dfg::Dfg d = dfg::buildKernel("mac");
    cgra::Architecture arch = cgra::Architecture::hycube();
    Compiler compiler;
    compiler.setNetwork(pretrainedNetwork(arch, smallBudget()));
    CompileOptions opts;
    opts.timeLimitSeconds = 60.0;
    const CompileResult r =
        compiler.compile(d, arch, Method::MapZero, opts);
    expectPlacementsRoutable(d, arch, r);
}

TEST(EndToEnd, SaSumOnHreaProducesValidMapping)
{
    const dfg::Dfg d = dfg::buildKernel("sum");
    cgra::Architecture arch = cgra::Architecture::hrea();
    Compiler compiler;
    CompileOptions opts;
    opts.timeLimitSeconds = 60.0;
    const CompileResult r = compiler.compile(d, arch, Method::Sa, opts);
    expectPlacementsRoutable(d, arch, r);
}

TEST(EndToEnd, AdresRowBusHonoredInFinalMapping)
{
    const dfg::Dfg d = dfg::buildKernel("mac");
    cgra::Architecture arch = cgra::Architecture::adres();
    Compiler compiler;
    CompileOptions opts;
    opts.timeLimitSeconds = 60.0;
    const CompileResult r = compiler.compile(d, arch, Method::Ilp, opts);
    ASSERT_TRUE(r.success);
    // No two memory ops of one row share a modulo slot.
    for (dfg::NodeId v = 0; v < d.nodeCount(); ++v) {
        if (dfg::opClass(d.node(v).opcode) != dfg::OpClass::Memory)
            continue;
        for (dfg::NodeId w = v + 1; w < d.nodeCount(); ++w) {
            if (dfg::opClass(d.node(w).opcode) != dfg::OpClass::Memory)
                continue;
            const auto &pv = r.placements[static_cast<std::size_t>(v)];
            const auto &pw = r.placements[static_cast<std::size_t>(w)];
            if (arch.rowOf(pv.pe) == arch.rowOf(pw.pe)) {
                EXPECT_NE(pv.time % r.ii, pw.time % r.ii)
                    << "row bus conflict between " << v << " and " << w;
            }
        }
    }
}

TEST(EndToEnd, HeterogeneousCapabilitiesHonored)
{
    const dfg::Dfg d = dfg::buildKernel("sum");
    cgra::Architecture arch = cgra::Architecture::heterogeneous();
    Compiler compiler;
    CompileOptions opts;
    opts.timeLimitSeconds = 60.0;
    const CompileResult r = compiler.compile(d, arch, Method::Ilp, opts);
    ASSERT_TRUE(r.success);
    for (dfg::NodeId v = 0; v < d.nodeCount(); ++v)
        EXPECT_TRUE(
            arch.pe(r.placements[static_cast<std::size_t>(v)].pe)
                .supports(d.node(v).opcode));
}

} // namespace
} // namespace mapzero
