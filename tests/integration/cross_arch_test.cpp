/**
 * @file
 * Cross-architecture integration: the same kernels compile across the
 * Table-1 presets (generality claim of the paper, §4.2 / §4.6).
 */

#include <gtest/gtest.h>

#include "core/compiler.hpp"
#include "dfg/kernels.hpp"

namespace mapzero {
namespace {

struct ArchCase {
    const char *arch;
    const char *kernel;
};

cgra::Architecture
archByName(const std::string &name)
{
    if (name == "HReA")
        return cgra::Architecture::hrea();
    if (name == "MorphoSys")
        return cgra::Architecture::morphosys();
    if (name == "ADRES")
        return cgra::Architecture::adres();
    if (name == "HyCube")
        return cgra::Architecture::hycube();
    if (name == "hetero")
        return cgra::Architecture::heterogeneous();
    return cgra::Architecture::baseline8();
}

class CrossArch : public ::testing::TestWithParam<ArchCase> {};

TEST_P(CrossArch, IlpCompilesSmallKernel)
{
    const ArchCase &c = GetParam();
    const dfg::Dfg d = dfg::buildKernel(c.kernel);
    cgra::Architecture arch = archByName(c.arch);
    Compiler compiler;
    CompileOptions opts;
    opts.timeLimitSeconds = 60.0;
    const CompileResult r = compiler.compile(d, arch, Method::Ilp, opts);
    EXPECT_TRUE(r.success)
        << c.kernel << " on " << c.arch << " ops=" << r.searchOps;
    EXPECT_GE(r.ii, r.mii);
}

INSTANTIATE_TEST_SUITE_P(
    Table1, CrossArch,
    ::testing::Values(ArchCase{"HReA", "sum"}, ArchCase{"HReA", "mac"},
                      ArchCase{"MorphoSys", "sum"},
                      ArchCase{"MorphoSys", "conv2"},
                      ArchCase{"ADRES", "sum"},
                      ArchCase{"HyCube", "sum"},
                      ArchCase{"HyCube", "mac"},
                      ArchCase{"baseline8", "conv2"},
                      ArchCase{"hetero", "sum"}),
    [](const ::testing::TestParamInfo<ArchCase> &info) {
        return std::string(info.param.arch) + "_" + info.param.kernel;
    });

TEST(CrossArch, MiiDiffersAcrossFabricSizes)
{
    const dfg::Dfg d = dfg::buildKernel("arf"); // 54 nodes
    EXPECT_EQ(Compiler::minimumIi(d, cgra::Architecture::hrea()), 4);
    EXPECT_EQ(Compiler::minimumIi(d, cgra::Architecture::baseline8()),
              1);
}

TEST(CrossArch, HycubeRoutesLongerReachesThanMesh)
{
    // The same far-apart placement is routable on HyCube but not on a
    // plain mesh; this is the structural difference behind Fig. 8(d).
    dfg::Dfg d;
    const auto a = d.addNode(dfg::Opcode::Load);
    const auto b = d.addNode(dfg::Opcode::Add);
    d.addEdge(a, b);

    cgra::Architecture mesh("mesh4", 4, 4,
                            cgra::linkMask({cgra::Interconnect::Mesh}));
    cgra::Architecture hycube = cgra::Architecture::hycube();

    for (const auto *arch : {&mesh, &hycube}) {
        cgra::Mrrg mrrg(*arch, 1);
        mapper::MappingState state(d, mrrg, *dfg::moduloSchedule(d, 1));
        mapper::Router router(state);
        state.commitPlacement(a, arch->peAt(0, 0));
        state.commitPlacement(b, arch->peAt(3, 3));
        const bool routed = router.routeEdge(0);
        if (arch == &hycube)
            EXPECT_TRUE(routed);
        else
            EXPECT_FALSE(routed);
    }
}

} // namespace
} // namespace mapzero
