/**
 * @file
 * Property tests for the modulo scheduler: every (kernel, II) pair must
 * uphold the schedule invariants the mappers rely on.
 */

#include <gtest/gtest.h>

#include "cgra/architecture.hpp"
#include "dfg/kernels.hpp"
#include "dfg/random_gen.hpp"
#include "dfg/schedule.hpp"

namespace mapzero::dfg {
namespace {

void
expectScheduleInvariants(const Dfg &d, const Schedule &s)
{
    // 1. Every edge constraint satisfied.
    for (const auto &e : d.edges()) {
        EXPECT_GE(s.time[static_cast<std::size_t>(e.dst)],
                  s.time[static_cast<std::size_t>(e.src)] + 1 -
                      s.ii * e.distance)
            << d.name() << " edge " << e.src << "->" << e.dst;
    }
    // 2. Modulo times consistent.
    for (std::size_t v = 0; v < s.time.size(); ++v)
        EXPECT_EQ(s.moduloTime[v], s.time[v] % s.ii);
    // 3. Earliest node at 0.
    std::int32_t min_t = s.time.empty() ? 0 : s.time[0];
    for (std::int32_t t : s.time)
        min_t = std::min(min_t, t);
    EXPECT_EQ(min_t, 0);
    // 4. Order is a permutation with ancestors first (distance-0).
    std::vector<std::int32_t> position(s.time.size(), -1);
    for (std::size_t i = 0; i < s.order.size(); ++i)
        position[static_cast<std::size_t>(s.order[i])] =
            static_cast<std::int32_t>(i);
    for (std::int32_t p : position)
        EXPECT_GE(p, 0);
    for (const auto &e : d.edges()) {
        if (e.distance == 0 && e.src != e.dst) {
            EXPECT_LT(position[static_cast<std::size_t>(e.src)],
                      position[static_cast<std::size_t>(e.dst)])
                << d.name();
        }
    }
}

class KernelSchedule
    : public ::testing::TestWithParam<KernelInfo> {};

TEST_P(KernelSchedule, InvariantsAtMiiAndAbove)
{
    const Dfg d = buildKernel(GetParam().name);
    const std::int32_t rec = recMii(d);
    for (std::int32_t ii = rec; ii <= rec + 3; ++ii) {
        const auto s = moduloSchedule(d, ii);
        ASSERT_TRUE(s.has_value()) << GetParam().name << " II=" << ii;
        expectScheduleInvariants(d, *s);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Table2, KernelSchedule, ::testing::ValuesIn(kernelTable()),
    [](const ::testing::TestParamInfo<KernelInfo> &info) {
        return info.param.name;
    });

TEST(ScheduleProperty, MemoryCapacityRespectedWhenFeasible)
{
    // ADRES capacity on the full kernel set: whenever total memory ops
    // fit (memOps <= cap * II), no slot may exceed the capacity.
    const cgra::Architecture adres = cgra::Architecture::adres();
    const std::int32_t cap = adres.memoryIssueCapacity();
    for (const auto &info : kernelTable()) {
        if (info.unrolled)
            continue;
        const Dfg d = buildKernel(info.name);
        const std::int32_t mii =
            minimumIi(d, adres.peCount(), cap);
        const auto s = moduloSchedule(d, mii, cap);
        ASSERT_TRUE(s.has_value());
        if (d.memoryOpCount() > cap * mii)
            continue; // structurally impossible, nothing to check
        for (std::int32_t slot = 0; slot < mii; ++slot) {
            std::int32_t mem = 0;
            for (NodeId v = 0; v < d.nodeCount(); ++v) {
                if (opClass(d.node(v).opcode) == OpClass::Memory &&
                    s->moduloTime[static_cast<std::size_t>(v)] == slot)
                    ++mem;
            }
            EXPECT_LE(mem, cap) << info.name << " slot " << slot;
        }
    }
}

TEST(ScheduleProperty, SlotPopulationsAreBalanced)
{
    // The balancer must never exceed ceil(n / ii) by a wide margin on
    // loosely-constrained graphs.
    Rng rng(41);
    for (int trial = 0; trial < 20; ++trial) {
        RandomDfgParams params;
        params.nodes = 12 + static_cast<std::int32_t>(
            rng.uniformInt(20u));
        const Dfg d = randomDfg(params, rng);
        const std::int32_t ii = 3;
        const auto s = moduloSchedule(d, ii);
        if (!s)
            continue;
        const std::int32_t ceil_avg =
            (d.nodeCount() + ii - 1) / ii;
        for (std::int32_t slot = 0; slot < ii; ++slot)
            EXPECT_LE(s->nodesInModuloSlot(slot), 2 * ceil_avg)
                << "trial " << trial;
    }
}

TEST(ScheduleProperty, RandomDfgsScheduleAtRecMii)
{
    Rng rng(42);
    for (int trial = 0; trial < 30; ++trial) {
        RandomDfgParams params;
        params.nodes = 4 + static_cast<std::int32_t>(
            rng.uniformInt(24u));
        params.selfCycleProb = 0.3;
        const Dfg d = randomDfg(params, rng);
        const std::int32_t rec = recMii(d);
        const auto s = moduloSchedule(d, rec);
        ASSERT_TRUE(s.has_value()) << "trial " << trial;
        expectScheduleInvariants(d, *s);
        if (rec > 1) {
            EXPECT_FALSE(moduloSchedule(d, rec - 1).has_value())
                << "RecMII not minimal at trial " << trial;
        }
    }
}

} // namespace
} // namespace mapzero::dfg
