/**
 * @file
 * Routing fuzz: random DFGs mapped by the exact engine across every
 * Table-1 fabric family; every successful mapping must pass the
 * independent validator, survive bitstream generation, and execute
 * correctly on the hardware-level simulator.
 */

#include <gtest/gtest.h>

#include "baselines/exact_mapper.hpp"
#include "core/bitstream.hpp"
#include "dfg/random_gen.hpp"
#include "dfg/schedule.hpp"
#include "mapper/router.hpp"
#include "mapper/validator.hpp"
#include "sim/hw_sim.hpp"
#include "sim/interpreter.hpp"

namespace mapzero {
namespace {

struct FuzzCase {
    const char *archName;
    std::uint64_t seed;
};

cgra::Architecture
fuzzArch(const std::string &name)
{
    if (name == "hrea")
        return cgra::Architecture::hrea();
    if (name == "adres")
        return cgra::Architecture::adres();
    if (name == "hycube")
        return cgra::Architecture::hycube();
    if (name == "hetero")
        return cgra::Architecture::heterogeneous();
    return cgra::Architecture::morphosys();
}

class RoutingFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(RoutingFuzz, MapValidateAndExecute)
{
    const FuzzCase &c = GetParam();
    Rng rng(c.seed);
    const cgra::Architecture arch = fuzzArch(c.archName);

    dfg::RandomDfgParams params;
    params.nodes = 5 + static_cast<std::int32_t>(rng.uniformInt(12u));
    params.selfCycleProb = 0.15;
    const dfg::Dfg d = dfg::randomDfg(params, rng);

    const std::int32_t mii = dfg::minimumIi(
        d, arch.peCount(), arch.memoryIssueCapacity());

    baselines::ExactMapper engine;
    baselines::AttemptResult attempt;
    std::int32_t ii = mii;
    for (; ii <= mii + 4; ++ii) {
        attempt = engine.map(d, arch, ii, Deadline(10.0));
        if (attempt.success)
            break;
    }
    if (!attempt.success)
        GTEST_SKIP() << "no mapping up to MII+4 for this seed";

    // Rebuild and validate independently.
    auto schedule = dfg::moduloSchedule(d, ii,
                                        arch.memoryIssueCapacity());
    cgra::Mrrg mrrg(arch, ii);
    mapper::MappingState state(d, mrrg, *schedule);
    ASSERT_TRUE(mapper::Router::replayMapping(state,
                                              attempt.placements));
    const auto validation = mapper::validateMapping(state);
    ASSERT_TRUE(validation.valid)
        << (validation.errors.empty() ? "" : validation.errors.front());

    // Bitstream + hardware-level execution vs the golden model.
    const Bitstream bitstream = generateBitstream(state);
    sim::ActivationSchedule activation;
    activation.startTime = schedule->time;
    activation.ii = ii;
    activation.length = schedule->length();
    const auto provider = sim::defaultProvider();
    const auto hw = sim::runHardware(bitstream, arch, activation, 3,
                                     provider);
    ASSERT_TRUE(hw.ok) << (hw.errors.empty() ? "" : hw.errors.front());

    const auto ref = sim::interpret(d, 3, provider);
    auto sorted = [](std::vector<sim::StoreRecord> v) {
        std::sort(v.begin(), v.end(),
                  [](const sim::StoreRecord &a,
                     const sim::StoreRecord &b) {
            return std::make_pair(a.node, a.iteration) <
                   std::make_pair(b.node, b.iteration);
        });
        return v;
    };
    const auto hw_stores = sorted(hw.stores);
    const auto ref_stores = sorted(ref.stores);
    ASSERT_EQ(hw_stores.size(), ref_stores.size());
    for (std::size_t i = 0; i < hw_stores.size(); ++i)
        EXPECT_EQ(hw_stores[i].value, ref_stores[i].value)
            << "node " << ref_stores[i].node;
}

INSTANTIATE_TEST_SUITE_P(
    Fabrics, RoutingFuzz,
    ::testing::Values(FuzzCase{"hrea", 1}, FuzzCase{"hrea", 2},
                      FuzzCase{"hrea", 3}, FuzzCase{"morphosys", 4},
                      FuzzCase{"morphosys", 5}, FuzzCase{"adres", 6},
                      FuzzCase{"adres", 7}, FuzzCase{"hycube", 8},
                      FuzzCase{"hycube", 9}, FuzzCase{"hycube", 10},
                      FuzzCase{"hetero", 11}, FuzzCase{"hetero", 12}),
    [](const ::testing::TestParamInfo<FuzzCase> &info) {
        return std::string(info.param.archName) + "_" +
               std::to_string(info.param.seed);
    });

} // namespace
} // namespace mapzero
