/**
 * @file
 * Property-based tests: randomized DFGs and placements must uphold the
 * core invariants (validator agreement, undo exactness, symmetry
 * preservation) regardless of the concrete instance.
 */

#include <gtest/gtest.h>

#include "cgra/symmetry.hpp"
#include "dfg/random_gen.hpp"
#include "dfg/schedule.hpp"
#include "mapper/environment.hpp"
#include "mapper/router.hpp"
#include "mapper/validator.hpp"

namespace mapzero {
namespace {

/** Take one uniformly random legal step. */
void
randomEpisodeStep(mapper::MapEnv &env, Rng &rng)
{
    const auto mask = env.actionMask();
    std::vector<cgra::PeId> legal;
    for (cgra::PeId p = 0; p < static_cast<cgra::PeId>(mask.size()); ++p)
        if (mask[static_cast<std::size_t>(p)])
            legal.push_back(p);
    env.step(legal[rng.uniformInt(legal.size())]);
}

/** Random-walk an environment, returning the action trace. */
std::vector<cgra::PeId>
randomEpisode(mapper::MapEnv &env, Rng &rng)
{
    std::vector<cgra::PeId> actions;
    while (!env.done() && env.legalActionCount() > 0) {
        const auto mask = env.actionMask();
        std::vector<cgra::PeId> legal;
        for (cgra::PeId p = 0;
             p < static_cast<cgra::PeId>(mask.size()); ++p)
            if (mask[static_cast<std::size_t>(p)])
                legal.push_back(p);
        const cgra::PeId pick = legal[rng.uniformInt(legal.size())];
        env.step(pick);
        actions.push_back(pick);
    }
    return actions;
}

class PropertySeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PropertySeed, PartialMappingsAlwaysValidate)
{
    Rng rng(GetParam());
    dfg::RandomDfgParams params;
    params.nodes = 4 + static_cast<std::int32_t>(rng.uniformInt(10u));
    const dfg::Dfg d = dfg::randomDfg(params, rng);
    cgra::Architecture arch = cgra::Architecture::hrea();
    const std::int32_t mii = dfg::minimumIi(d, arch.peCount(),
                                            arch.memoryIssueCapacity());

    mapper::EnvConfig cfg;
    cfg.stopOnRoutingFailure = false; // explore messy states too
    mapper::MapEnv env(d, arch, mii, cfg);
    randomEpisode(env, rng);
    // Whatever happened, the committed state must be self-consistent.
    const auto result = mapper::validateMapping(env.state());
    EXPECT_TRUE(result.valid)
        << (result.errors.empty() ? "" : result.errors.front());
}

TEST_P(PropertySeed, UndoIsExactInverse)
{
    Rng rng(GetParam() + 1000);
    dfg::RandomDfgParams params;
    params.nodes = 4 + static_cast<std::int32_t>(rng.uniformInt(8u));
    const dfg::Dfg d = dfg::randomDfg(params, rng);
    cgra::Architecture arch = cgra::Architecture::hrea();
    const std::int32_t mii = dfg::minimumIi(d, arch.peCount(),
                                            arch.memoryIssueCapacity());

    mapper::MapEnv env(d, arch, mii);
    // Take a few steps, snapshot reward/occupancy, take one more, undo,
    // and compare.
    Rng walk(GetParam() + 2000);
    for (int step = 0; step < 3 && !env.done(); ++step) {
        if (env.legalActionCount() == 0)
            break;
        randomEpisodeStep(env, walk);
    }
    if (env.done() || env.legalActionCount() == 0)
        return;

    const double reward_before = env.totalReward();
    const std::int32_t placed_before = env.placedCount();
    const auto mask_before = env.actionMask();

    randomEpisodeStep(env, walk);
    env.undo();

    EXPECT_DOUBLE_EQ(env.totalReward(), reward_before);
    EXPECT_EQ(env.placedCount(), placed_before);
    EXPECT_EQ(env.actionMask(), mask_before);
}

TEST_P(PropertySeed, SymmetryMapsValidMappingToValidMapping)
{
    Rng rng(GetParam() + 3000);
    dfg::RandomDfgParams params;
    params.nodes = 4 + static_cast<std::int32_t>(rng.uniformInt(6u));
    const dfg::Dfg d = dfg::randomDfg(params, rng);
    cgra::Architecture arch = cgra::Architecture::hrea();
    const std::int32_t mii = dfg::minimumIi(d, arch.peCount(),
                                            arch.memoryIssueCapacity());

    // Find one full mapping by random restarts.
    mapper::MapEnv env(d, arch, mii);
    bool solved = false;
    for (int attempt = 0; attempt < 40 && !solved; ++attempt) {
        env.reset();
        randomEpisode(env, rng);
        solved = env.success();
    }
    if (!solved)
        GTEST_SKIP() << "random walk found no mapping for this seed";

    // Apply every symmetry to the placements; the transformed mapping
    // must be placeable and routable too (this is what makes data
    // augmentation sound, §3.6.1).
    const auto schedule = env.schedule();
    for (const auto &perm : cgra::gridSymmetries(arch)) {
        cgra::Mrrg mrrg(arch, env.ii());
        mapper::MappingState state(d, mrrg, schedule);
        for (dfg::NodeId v : schedule.order) {
            const cgra::PeId target = perm[static_cast<std::size_t>(
                env.state().placement(v).pe)];
            ASSERT_TRUE(state.placementLegal(v, target));
            state.commitPlacement(v, target);
        }
        mapper::Router router(state);
        for (std::int32_t ei = 0; ei < d.edgeCount(); ++ei)
            EXPECT_TRUE(router.routeEdge(ei)) << "edge " << ei;
        EXPECT_TRUE(mapper::validateMapping(state).valid);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySeed,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u));

} // namespace
} // namespace mapzero
