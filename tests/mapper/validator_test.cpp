/** @file Unit tests for the independent mapping validator. */

#include <gtest/gtest.h>

#include "dfg/schedule.hpp"
#include "mapper/router.hpp"
#include "mapper/validator.hpp"

namespace mapzero::mapper {
namespace {

dfg::Dfg
chain3()
{
    dfg::Dfg d;
    const auto a = d.addNode(dfg::Opcode::Load);
    const auto b = d.addNode(dfg::Opcode::Add);
    const auto c = d.addNode(dfg::Opcode::Store);
    d.addEdge(a, b);
    d.addEdge(b, c);
    return d;
}

TEST(Validator, EmptyMappingIsValid)
{
    dfg::Dfg d = chain3();
    cgra::Architecture arch = cgra::Architecture::hrea();
    cgra::Mrrg mrrg(arch, 1);
    MappingState state(d, mrrg, *dfg::moduloSchedule(d, 1));
    EXPECT_TRUE(validateMapping(state).valid);
}

TEST(Validator, GoodFullMappingIsValid)
{
    dfg::Dfg d = chain3();
    cgra::Architecture arch = cgra::Architecture::hrea();
    cgra::Mrrg mrrg(arch, 1);
    MappingState state(d, mrrg, *dfg::moduloSchedule(d, 1));
    Router router(state);
    state.commitPlacement(0, arch.peAt(0, 0));
    state.commitPlacement(1, arch.peAt(0, 1));
    state.commitPlacement(2, arch.peAt(0, 2));
    ASSERT_TRUE(router.routeEdge(0));
    ASSERT_TRUE(router.routeEdge(1));
    const auto result = validateMapping(state);
    EXPECT_TRUE(result.valid) << (result.errors.empty()
                                      ? ""
                                      : result.errors.front());
}

TEST(Validator, DetectsNonAdjacentRoute)
{
    dfg::Dfg d = chain3();
    cgra::Architecture arch("mesh4", 4, 4,
                            cgra::linkMask({cgra::Interconnect::Mesh}));
    cgra::Mrrg mrrg(arch, 1);
    MappingState state(d, mrrg, *dfg::moduloSchedule(d, 1));
    state.commitPlacement(0, arch.peAt(0, 0));
    state.commitPlacement(1, arch.peAt(3, 3));
    // Fabricate a bogus "route" claiming direct delivery.
    Route bogus;
    bogus.regHolds = {RegHold{arch.peAt(0, 0), 0}};
    state.commitRoute(0, bogus);
    const auto result = validateMapping(state);
    EXPECT_FALSE(result.valid);
}

TEST(Validator, DetectsTimeGapInRoute)
{
    dfg::Dfg d = chain3();
    cgra::Architecture arch = cgra::Architecture::hrea();
    cgra::Mrrg mrrg(arch, 3);
    MappingState state(d, mrrg, *dfg::moduloSchedule(d, 3));
    state.commitPlacement(0, arch.peAt(0, 0));
    state.commitPlacement(1, arch.peAt(0, 1));
    Route bogus;
    // Wrong end time: consumer reads at t=1, so holds must end at t=0.
    bogus.regHolds = {RegHold{arch.peAt(0, 0), 0},
                      RegHold{arch.peAt(0, 0), 2}};
    state.commitRoute(0, bogus);
    EXPECT_FALSE(validateMapping(state).valid);
}

TEST(Validator, DetectsRouteNotStartingAtProducer)
{
    dfg::Dfg d = chain3();
    cgra::Architecture arch = cgra::Architecture::hrea();
    cgra::Mrrg mrrg(arch, 1);
    MappingState state(d, mrrg, *dfg::moduloSchedule(d, 1));
    state.commitPlacement(0, arch.peAt(0, 0));
    state.commitPlacement(1, arch.peAt(0, 1));
    Route bogus;
    bogus.regHolds = {RegHold{arch.peAt(2, 2), 0}};
    state.commitRoute(0, bogus);
    EXPECT_FALSE(validateMapping(state).valid);
}

TEST(Validator, DetectsRegisterConflictAcrossRoutes)
{
    // Two different producers' routes claiming one register slot.
    dfg::Dfg d;
    const auto a = d.addNode(dfg::Opcode::Load);
    const auto b = d.addNode(dfg::Opcode::Load);
    const auto c = d.addNode(dfg::Opcode::Add);
    const auto e = d.addNode(dfg::Opcode::Add);
    d.addEdge(a, c);
    d.addEdge(b, e);
    cgra::Architecture arch = cgra::Architecture::hrea();
    cgra::Mrrg mrrg(arch, 1);
    MappingState state(d, mrrg, *dfg::moduloSchedule(d, 1));
    state.commitPlacement(a, arch.peAt(0, 0));
    state.commitPlacement(b, arch.peAt(2, 2));
    state.commitPlacement(c, arch.peAt(0, 1));
    state.commitPlacement(e, arch.peAt(2, 3));

    Route r0;
    r0.regHolds = {RegHold{arch.peAt(0, 0), 0}};
    state.commitRoute(0, r0);
    // Bogus second route squatting on producer a's register.
    Route r1;
    r1.regHolds = {RegHold{arch.peAt(2, 2), 0},
                   RegHold{arch.peAt(0, 0), 1}};
    state.commitRoute(1, r1);
    EXPECT_FALSE(validateMapping(state).valid);
}

TEST(Validator, DetectsCapabilityViolation)
{
    dfg::Dfg d;
    d.addNode(dfg::Opcode::Load);
    cgra::Architecture arch = cgra::Architecture::heterogeneous();
    cgra::Mrrg mrrg(arch, 1);
    MappingState state(d, mrrg, *dfg::moduloSchedule(d, 1));
    // Force an illegal placement through the raw routing state.
    state.commitPlacement(0, arch.peAt(0, 0)); // legal (memory column)
    // Tamper: validator checks against schedule; simulate by moving
    // the memory op feature check - easiest is a direct bogus commit,
    // which placementLegal would refuse; so instead assert legality
    // gate works.
    EXPECT_FALSE(state.placementLegal(0, arch.peAt(0, 1)));
}

TEST(Validator, MultiHopRouteValidated)
{
    dfg::Dfg d;
    const auto a = d.addNode(dfg::Opcode::Load);
    const auto b = d.addNode(dfg::Opcode::Add);
    d.addEdge(a, b);
    cgra::Architecture arch = cgra::Architecture::hycube();
    cgra::Mrrg mrrg(arch, 1);
    MappingState state(d, mrrg, *dfg::moduloSchedule(d, 1));
    Router router(state);
    state.commitPlacement(a, arch.peAt(0, 0));
    state.commitPlacement(b, arch.peAt(2, 1));
    ASSERT_TRUE(router.routeEdge(0));
    EXPECT_TRUE(validateMapping(state).valid);

    // Corrupt the route's wires: drop one wire use.
    Route broken = state.edgeRoute(0);
    ASSERT_FALSE(broken.wires.empty());
    state.uncommitRoute(0);
    broken.wires.pop_back();
    state.commitRoute(0, broken);
    EXPECT_FALSE(validateMapping(state).valid);
}

} // namespace
} // namespace mapzero::mapper
