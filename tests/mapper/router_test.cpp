/** @file Unit tests for the single-hop and multi-hop routers. */

#include <gtest/gtest.h>

#include "dfg/schedule.hpp"
#include "mapper/router.hpp"
#include "mapper/validator.hpp"

namespace mapzero::mapper {
namespace {

dfg::Dfg
pair(std::int32_t latency_gap = 1)
{
    // a -> b with b scheduled latency_gap cycles later (via a chain of
    // route ops when gap > 1 is needed we instead stretch the schedule
    // by inserting dummy nodes; for unit tests a direct edge suffices).
    (void)latency_gap;
    dfg::Dfg d;
    const auto a = d.addNode(dfg::Opcode::Load);
    const auto b = d.addNode(dfg::Opcode::Add);
    d.addEdge(a, b);
    return d;
}

TEST(RouterSingleHop, AdjacentPlacementRoutesDirectly)
{
    dfg::Dfg d = pair();
    cgra::Architecture arch("mesh4", 4, 4,
                            cgra::linkMask({cgra::Interconnect::Mesh}));
    cgra::Mrrg mrrg(arch, 1);
    MappingState state(d, mrrg, *dfg::moduloSchedule(d, 1));
    Router router(state);

    state.commitPlacement(0, arch.peAt(0, 0));
    state.commitPlacement(1, arch.peAt(0, 1));
    EXPECT_TRUE(router.routeEdge(0));
    EXPECT_EQ(state.edgeRoute(0).hops, 1);
    EXPECT_TRUE(validateMapping(state).valid);
}

TEST(RouterSingleHop, DistantPlacementFailsWhenNoTime)
{
    dfg::Dfg d = pair();
    cgra::Architecture arch("mesh4", 4, 4,
                            cgra::linkMask({cgra::Interconnect::Mesh}));
    cgra::Mrrg mrrg(arch, 1);
    MappingState state(d, mrrg, *dfg::moduloSchedule(d, 1));
    Router router(state);

    // Consumer fires 1 cycle later but sits 6 hops away: unroutable on a
    // single-hop mesh (placement and routing are coupled, §3.3).
    state.commitPlacement(0, arch.peAt(0, 0));
    state.commitPlacement(1, arch.peAt(3, 3));
    EXPECT_FALSE(router.routeEdge(0));
    EXPECT_FALSE(state.edgeRouted(0));
}

TEST(RouterSingleHop, OneHopLinksExtendReach)
{
    dfg::Dfg d = pair();
    cgra::Architecture arch(
        "mesh1hop", 4, 4,
        cgra::linkMask({cgra::Interconnect::Mesh,
                        cgra::Interconnect::OneHop}));
    cgra::Mrrg mrrg(arch, 1);
    MappingState state(d, mrrg, *dfg::moduloSchedule(d, 1));
    Router router(state);

    // Distance-2 in one cycle via a 1-hop link.
    state.commitPlacement(0, arch.peAt(0, 0));
    state.commitPlacement(1, arch.peAt(0, 2));
    EXPECT_TRUE(router.routeEdge(0));
}

TEST(RouterSingleHop, SelfLoopAccumulatorRoute)
{
    dfg::Dfg d;
    const auto acc = d.addNode(dfg::Opcode::Add);
    d.addEdge(acc, acc, 1);
    cgra::Architecture arch = cgra::Architecture::hrea();
    cgra::Mrrg mrrg(arch, 2);
    MappingState state(d, mrrg, *dfg::moduloSchedule(d, 2));
    Router router(state);

    state.commitPlacement(acc, 0);
    // Value produced at t=0 must return to the same PE at t=II=2.
    EXPECT_TRUE(router.routeEdge(0));
    EXPECT_TRUE(validateMapping(state).valid);
}

TEST(RouterSingleHop, OccupiedRegisterBlocksRoute)
{
    // Three nodes, two producers fighting for the same routing register.
    dfg::Dfg d = pair();
    cgra::Architecture arch("line", 1, 3,
                            cgra::linkMask({cgra::Interconnect::Mesh}));
    cgra::Mrrg mrrg(arch, 1);
    MappingState state(d, mrrg, *dfg::moduloSchedule(d, 1));
    Router router(state);

    state.commitPlacement(0, 0);
    state.commitPlacement(1, 2);
    // Route needs to pass through PE1's register at slot 0, but if we
    // pre-occupy it with a foreign value, the route must fail.
    // t_consume = 1, so window [0, 0]: goal needs a hold at (q,0) with
    // q adjacent to PE2 - only PE1, but PE1's slot-0 register is taken.
    state.routing().setRegOwner(1, 0, 99, 0);
    EXPECT_FALSE(router.routeEdge(0));
    state.routing().clearRegOwner(1, 0);
    // Still fails: the value cannot reach PE1 by t=0 anyway (it is
    // produced at t=0 on PE0). Wait - goal at t_consume-1 = 0 must be
    // the producer state itself, and PE0 is not adjacent... it is
    // adjacent to PE1, not PE2. So this placement is simply unroutable.
    EXPECT_FALSE(router.routeEdge(0));
}

TEST(RouterSingleHop, WaitingInRegistersAcrossCycles)
{
    // a -> b with a 2-cycle gap: a chain a -> x -> b forces b two cycles
    // after a; route a->b (a separate edge) must hold a's value.
    dfg::Dfg d;
    const auto a = d.addNode(dfg::Opcode::Load);
    const auto x = d.addNode(dfg::Opcode::Add);
    const auto b = d.addNode(dfg::Opcode::Add);
    d.addEdge(a, x);
    d.addEdge(x, b);
    d.addEdge(a, b); // skip edge: 2-cycle latency gap
    cgra::Architecture arch = cgra::Architecture::hrea();
    cgra::Mrrg mrrg(arch, 3);
    MappingState state(d, mrrg, *dfg::moduloSchedule(d, 3));
    Router router(state);

    state.commitPlacement(a, arch.peAt(0, 0));
    state.commitPlacement(x, arch.peAt(0, 1));
    state.commitPlacement(b, arch.peAt(0, 2));
    EXPECT_TRUE(router.routeEdge(0)); // a -> x direct
    EXPECT_TRUE(router.routeEdge(1)); // x -> b direct
    EXPECT_TRUE(router.routeEdge(2)); // a -> b with a wait or detour
    EXPECT_TRUE(validateMapping(state).valid);
}

TEST(RouterSingleHop, FanoutSharesProducerRegister)
{
    dfg::Dfg d;
    const auto a = d.addNode(dfg::Opcode::Load);
    const auto b = d.addNode(dfg::Opcode::Add);
    const auto c = d.addNode(dfg::Opcode::Add);
    d.addEdge(a, b);
    d.addEdge(a, c);
    cgra::Architecture arch = cgra::Architecture::hrea();
    cgra::Mrrg mrrg(arch, 2);
    MappingState state(d, mrrg, *dfg::moduloSchedule(d, 2));
    Router router(state);

    state.commitPlacement(a, arch.peAt(1, 1));
    state.commitPlacement(b, arch.peAt(1, 2));
    state.commitPlacement(c, arch.peAt(2, 1));
    EXPECT_TRUE(router.routeEdge(0));
    EXPECT_TRUE(router.routeEdge(1));
    EXPECT_TRUE(validateMapping(state).valid);
}

TEST(RouterMultiHop, CrossChipInOneCycle)
{
    dfg::Dfg d = pair();
    cgra::Architecture arch = cgra::Architecture::hycube();
    cgra::Mrrg mrrg(arch, 1);
    MappingState state(d, mrrg, *dfg::moduloSchedule(d, 1));
    Router router(state);

    // Corner to corner in a single cycle via crossbar hops (HyCube).
    state.commitPlacement(0, arch.peAt(0, 0));
    state.commitPlacement(1, arch.peAt(3, 3));
    EXPECT_TRUE(router.routeEdge(0));
    EXPECT_EQ(state.edgeRoute(0).hops, 6); // Manhattan distance
    EXPECT_TRUE(validateMapping(state).valid);
}

TEST(RouterMultiHop, WireConflictForcesDetourOrFailure)
{
    dfg::Dfg d;
    const auto a = d.addNode(dfg::Opcode::Load);
    const auto b = d.addNode(dfg::Opcode::Add);
    const auto c = d.addNode(dfg::Opcode::Load);
    const auto e = d.addNode(dfg::Opcode::Add);
    d.addEdge(a, b);
    d.addEdge(c, e);
    cgra::Architecture arch = cgra::Architecture::hycube();
    cgra::Mrrg mrrg(arch, 1);
    MappingState state(d, mrrg, *dfg::moduloSchedule(d, 1));
    Router router(state);

    // Two independent flows crossing the same row.
    state.commitPlacement(a, arch.peAt(0, 0));
    state.commitPlacement(b, arch.peAt(0, 3));
    state.commitPlacement(c, arch.peAt(0, 1));
    state.commitPlacement(e, arch.peAt(0, 2));
    EXPECT_TRUE(router.routeEdge(0));
    // Second flow still routable (detour through row 1).
    EXPECT_TRUE(router.routeEdge(1));
    EXPECT_TRUE(validateMapping(state).valid);
}

TEST(Router, RouteIncidentEdgesReportsFailures)
{
    dfg::Dfg d = pair();
    cgra::Architecture arch("mesh4", 4, 4,
                            cgra::linkMask({cgra::Interconnect::Mesh}));
    cgra::Mrrg mrrg(arch, 1);
    MappingState state(d, mrrg, *dfg::moduloSchedule(d, 1));
    Router router(state);

    state.commitPlacement(0, arch.peAt(0, 0));
    state.commitPlacement(1, arch.peAt(3, 3));
    const RouteResult result = router.routeIncidentEdges(1);
    EXPECT_EQ(result.failed, 1);
    EXPECT_EQ(result.routed, 0);
    EXPECT_FALSE(result.allRouted());
}

TEST(Router, UnrouteIncidentEdgesFreesResources)
{
    dfg::Dfg d = pair();
    cgra::Architecture arch = cgra::Architecture::hrea();
    cgra::Mrrg mrrg(arch, 1);
    MappingState state(d, mrrg, *dfg::moduloSchedule(d, 1));
    Router router(state);

    state.commitPlacement(0, arch.peAt(0, 0));
    state.commitPlacement(1, arch.peAt(0, 1));
    ASSERT_TRUE(router.routeEdge(0));
    router.unrouteIncidentEdges(1);
    EXPECT_FALSE(state.edgeRouted(0));
}

} // namespace
} // namespace mapzero::mapper
