/** @file Unit tests for the RL mapping environment. */

#include <gtest/gtest.h>

#include "dfg/kernels.hpp"
#include "mapper/environment.hpp"
#include "mapper/validator.hpp"

namespace mapzero::mapper {
namespace {

dfg::Dfg
chain3()
{
    dfg::Dfg d;
    const auto a = d.addNode(dfg::Opcode::Load);
    const auto b = d.addNode(dfg::Opcode::Add);
    const auto c = d.addNode(dfg::Opcode::Store);
    d.addEdge(a, b);
    d.addEdge(b, c);
    return d;
}

TEST(MapEnv, FreshEpisodeState)
{
    dfg::Dfg d = chain3();
    cgra::Architecture arch = cgra::Architecture::hrea();
    MapEnv env(d, arch, 1);
    EXPECT_FALSE(env.done());
    EXPECT_FALSE(env.success());
    EXPECT_EQ(env.stepIndex(), 0);
    EXPECT_EQ(env.placedCount(), 0);
    EXPECT_DOUBLE_EQ(env.totalReward(), 0.0);
}

TEST(MapEnv, ActionMaskMatchesLegality)
{
    dfg::Dfg d = chain3();
    cgra::Architecture arch = cgra::Architecture::hrea();
    MapEnv env(d, arch, 1);
    const auto mask = env.actionMask();
    ASSERT_EQ(mask.size(), 16u);
    // Fresh fabric: every PE is legal for a load on HReA.
    EXPECT_EQ(env.legalActionCount(), 16);
}

TEST(MapEnv, SuccessfulEpisode)
{
    dfg::Dfg d = chain3();
    cgra::Architecture arch = cgra::Architecture::hrea();
    MapEnv env(d, arch, 1);
    // Adjacent placements along row 0.
    EXPECT_TRUE(env.step(arch.peAt(0, 0)).routedOk);
    EXPECT_TRUE(env.step(arch.peAt(0, 1)).routedOk);
    const StepOutcome last = env.step(arch.peAt(0, 2));
    EXPECT_TRUE(last.routedOk);
    EXPECT_TRUE(last.done);
    EXPECT_TRUE(env.done());
    EXPECT_TRUE(env.success());
    EXPECT_TRUE(validateMapping(env.state()).valid);
    // Only direct hops: mild shaped reward, no -100 penalties.
    EXPECT_GT(env.totalReward(), -1.0);
}

TEST(MapEnv, RoutingFailureGivesPenaltyAndEndsEpisode)
{
    dfg::Dfg d = chain3();
    cgra::Architecture arch("mesh4", 4, 4,
                            cgra::linkMask({cgra::Interconnect::Mesh}));
    MapEnv env(d, arch, 1);
    env.step(arch.peAt(0, 0));
    const StepOutcome out = env.step(arch.peAt(3, 3)); // unreachable
    EXPECT_FALSE(out.routedOk);
    EXPECT_LE(out.reward, -100.0);
    EXPECT_TRUE(env.done());
    EXPECT_FALSE(env.success());
}

TEST(MapEnv, ContinueOnFailureWhenConfigured)
{
    dfg::Dfg d = chain3();
    cgra::Architecture arch("mesh4", 4, 4,
                            cgra::linkMask({cgra::Interconnect::Mesh}));
    EnvConfig cfg;
    cfg.stopOnRoutingFailure = false;
    MapEnv env(d, arch, 1, cfg);
    env.step(arch.peAt(0, 0));
    env.step(arch.peAt(3, 3)); // fails but episode continues
    EXPECT_FALSE(env.done());
    env.step(arch.peAt(3, 2));
    EXPECT_TRUE(env.done());
    EXPECT_FALSE(env.success());
    EXPECT_LT(env.totalReward(), -100.0);
}

TEST(MapEnv, UndoRestoresEverything)
{
    dfg::Dfg d = chain3();
    cgra::Architecture arch = cgra::Architecture::hrea();
    MapEnv env(d, arch, 1);
    env.step(arch.peAt(0, 0));
    const double reward_after_1 = env.totalReward();
    env.step(arch.peAt(0, 1));
    EXPECT_EQ(env.undo(), 1);
    EXPECT_EQ(env.stepIndex(), 1);
    EXPECT_EQ(env.placedCount(), 1);
    EXPECT_DOUBLE_EQ(env.totalReward(), reward_after_1);
    // Redo differently - environment stays consistent.
    EXPECT_TRUE(env.step(arch.peAt(1, 0)).routedOk);
}

TEST(MapEnv, UndoClearsFailureLatch)
{
    dfg::Dfg d = chain3();
    cgra::Architecture arch("mesh4", 4, 4,
                            cgra::linkMask({cgra::Interconnect::Mesh}));
    MapEnv env(d, arch, 1);
    env.step(arch.peAt(0, 0));
    env.step(arch.peAt(3, 3)); // fail -> done
    EXPECT_TRUE(env.done());
    env.undo();
    EXPECT_FALSE(env.done());
    EXPECT_TRUE(env.step(arch.peAt(0, 1)).routedOk);
}

TEST(MapEnv, ResetClearsState)
{
    dfg::Dfg d = chain3();
    cgra::Architecture arch = cgra::Architecture::hrea();
    MapEnv env(d, arch, 1);
    env.step(arch.peAt(0, 0));
    env.reset();
    EXPECT_EQ(env.stepIndex(), 0);
    EXPECT_EQ(env.placedCount(), 0);
    EXPECT_DOUBLE_EQ(env.totalReward(), 0.0);
}

TEST(MapEnv, InfeasibleIiIsFatal)
{
    dfg::Dfg d;
    const auto a = d.addNode(dfg::Opcode::Add);
    const auto b = d.addNode(dfg::Opcode::Add);
    const auto c = d.addNode(dfg::Opcode::Add);
    d.addEdge(a, b);
    d.addEdge(b, c);
    d.addEdge(c, a, 1); // RecMII 3
    cgra::Architecture arch = cgra::Architecture::hrea();
    EXPECT_FALSE(MapEnv::feasible(d, 2));
    EXPECT_THROW(MapEnv(d, arch, 2), std::runtime_error);
}

TEST(MapEnv, StepOnIllegalActionPanics)
{
    dfg::Dfg d = chain3();
    cgra::Architecture arch = cgra::Architecture::hrea();
    MapEnv env(d, arch, 1);
    env.step(0);
    // PE 0's function slot is taken at slot 0; node 1 also lands in
    // slot 0 at II=1, so action 0 is illegal now.
    EXPECT_THROW(env.step(0), std::logic_error);
}

TEST(MapEnv, TemporalMappingSharesPesAcrossSlots)
{
    // At II=2, nodes in different modulo slots can share one PE.
    dfg::Dfg d = chain3();
    cgra::Architecture arch = cgra::Architecture::hrea();
    MapEnv env(d, arch, 2);
    // Times 0,1,2 -> slots 0,1,0. Nodes 0 and 1 share PE 0.
    EXPECT_TRUE(env.step(arch.peAt(0, 0)).routedOk);
    EXPECT_TRUE(env.step(arch.peAt(0, 0)).routedOk);
    EXPECT_TRUE(env.step(arch.peAt(0, 1)).routedOk);
    EXPECT_TRUE(env.success());
    EXPECT_TRUE(validateMapping(env.state()).valid);
}

TEST(MapEnv, MapsRealKernelWithGreedyAdjacency)
{
    // The "sum" kernel (8 nodes) on HReA at MII: a trivial greedy left
    // pack is unlikely to work in one shot, but the environment must
    // run a full episode without internal inconsistency either way.
    dfg::Dfg d = dfg::buildKernel("sum");
    cgra::Architecture arch = cgra::Architecture::hrea();
    const std::int32_t mii = dfg::minimumIi(d, arch.peCount(),
                                            arch.memoryIssueCapacity());
    MapEnv env(d, arch, mii);
    while (!env.done() && env.legalActionCount() > 0) {
        const auto mask = env.actionMask();
        for (cgra::PeId pe = 0;
             pe < static_cast<cgra::PeId>(mask.size()); ++pe) {
            if (mask[static_cast<std::size_t>(pe)]) {
                env.step(pe);
                break;
            }
        }
    }
    // No crash and a coherent partial/total mapping.
    EXPECT_TRUE(validateMapping(env.state()).valid ||
                !env.success());
}

} // namespace
} // namespace mapzero::mapper
