/** @file Unit tests for MappingState and RoutingState. */

#include <gtest/gtest.h>

#include "dfg/schedule.hpp"
#include "mapper/mapping.hpp"

namespace mapzero::mapper {
namespace {

/** 3-node chain: load -> add -> store. */
dfg::Dfg
chain3()
{
    dfg::Dfg d;
    d.setName("chain3");
    const auto a = d.addNode(dfg::Opcode::Load);
    const auto b = d.addNode(dfg::Opcode::Add);
    const auto c = d.addNode(dfg::Opcode::Store);
    d.addEdge(a, b);
    d.addEdge(b, c);
    return d;
}

struct Fixture {
    dfg::Dfg dfg = chain3();
    cgra::Architecture arch = cgra::Architecture::hrea();
    cgra::Mrrg mrrg{arch, 1};
    MappingState state{dfg, mrrg,
                       *dfg::moduloSchedule(dfg, 1)};
};

TEST(RoutingState, RegOwnershipLifecycle)
{
    Fixture f;
    RoutingState &rs = f.state.routing();
    EXPECT_EQ(rs.regOwner(3, 0), -1);
    EXPECT_TRUE(rs.regAvailable(3, 0, 7, 10));
    rs.setRegOwner(3, 0, 7, 10);
    EXPECT_EQ(rs.regOwner(3, 0), 7);
    EXPECT_EQ(rs.regOwnerTime(3, 0), 10);
    // Same (owner, time) can share; different time cannot.
    EXPECT_TRUE(rs.regAvailable(3, 0, 7, 10));
    EXPECT_FALSE(rs.regAvailable(3, 0, 7, 11));
    EXPECT_FALSE(rs.regAvailable(3, 0, 8, 10));
    rs.clearRegOwner(3, 0);
    EXPECT_EQ(rs.regOwner(3, 0), -1);
}

TEST(RoutingState, WireOwnershipLifecycle)
{
    Fixture f;
    RoutingState &rs = f.state.routing();
    EXPECT_TRUE(rs.wireAvailable(0, 0, 1, 4));
    rs.setWireOwner(0, 0, 1, 4);
    EXPECT_FALSE(rs.wireAvailable(0, 0, 2, 4));
    EXPECT_TRUE(rs.wireAvailable(0, 0, 1, 4));
    rs.clearWireOwner(0, 0);
    EXPECT_TRUE(rs.wireAvailable(0, 0, 2, 4));
}

TEST(MappingState, PlacementLifecycle)
{
    Fixture f;
    EXPECT_FALSE(f.state.placed(0));
    EXPECT_TRUE(f.state.placementLegal(0, 5));
    f.state.commitPlacement(0, 5);
    EXPECT_TRUE(f.state.placed(0));
    EXPECT_EQ(f.state.placement(0).pe, 5);
    EXPECT_EQ(f.state.nodeAt(5, 0), 0);
    EXPECT_EQ(f.state.placedCount(), 1);

    f.state.uncommitPlacement(0);
    EXPECT_FALSE(f.state.placed(0));
    EXPECT_EQ(f.state.nodeAt(5, 0), -1);
    EXPECT_EQ(f.state.placedCount(), 0);
}

TEST(MappingState, FunctionSlotExclusivity)
{
    Fixture f;
    // All three chain nodes share modulo slot history at II=1? They have
    // times 0,1,2, all slot 0 at II=1, so one PE can host only one.
    f.state.commitPlacement(0, 5);
    EXPECT_FALSE(f.state.placementLegal(1, 5));
    EXPECT_TRUE(f.state.placementLegal(1, 6));
}

TEST(MappingState, CapabilityGating)
{
    dfg::Dfg d = chain3();
    cgra::Architecture arch = cgra::Architecture::heterogeneous();
    cgra::Mrrg mrrg(arch, 1);
    MappingState state(d, mrrg, *dfg::moduloSchedule(d, 1));
    // Node 0 is a load; only column-0 PEs are memory-capable on the
    // heterogeneous fabric.
    EXPECT_TRUE(state.placementLegal(0, arch.peAt(1, 0)));
    EXPECT_FALSE(state.placementLegal(0, arch.peAt(1, 2)));
}

TEST(MappingState, IllegalCommitPanics)
{
    Fixture f;
    f.state.commitPlacement(0, 5);
    EXPECT_THROW(f.state.commitPlacement(1, 5), std::logic_error);
}

TEST(MappingState, RouteCommitAndUncommit)
{
    Fixture f;
    // Place producer at PE0 (t=0) and consumer adjacent at PE1 (t=1).
    f.state.commitPlacement(0, 0);
    f.state.commitPlacement(1, 1);

    // A route holding PE2's routing register at t=0 (artificial detour
    // for the resource-lifecycle check).
    Route route;
    route.regHolds.push_back(RegHold{2, 0});
    route.hops = 1;
    f.state.commitRoute(0, route);
    EXPECT_TRUE(f.state.edgeRouted(0));
    EXPECT_EQ(f.state.edgeRoute(0).hops, 1);
    EXPECT_EQ(f.state.routing().regOwner(2, 0), 0);

    f.state.uncommitRoute(0);
    EXPECT_FALSE(f.state.edgeRouted(0));
    EXPECT_EQ(f.state.routing().regOwner(2, 0), -1);
}

TEST(MappingState, DoubleRouteCommitPanics)
{
    Fixture f;
    f.state.commitPlacement(0, 0);
    f.state.commitPlacement(1, 1);
    f.state.commitRoute(0, Route{});
    EXPECT_THROW(f.state.commitRoute(0, Route{}), std::logic_error);
}

TEST(MappingState, SharedHoldFreedOnlyWhenLastRouteGone)
{
    // Producer with two consumers; both routes share the routing
    // register of PE5 at t=1 (multicast of the same value).
    dfg::Dfg d;
    const auto a = d.addNode(dfg::Opcode::Load);
    const auto b = d.addNode(dfg::Opcode::Add);
    const auto c = d.addNode(dfg::Opcode::Add);
    d.addEdge(a, b);
    d.addEdge(a, c);
    cgra::Architecture arch = cgra::Architecture::hrea();
    cgra::Mrrg mrrg(arch, 2);
    MappingState state(d, mrrg, *dfg::moduloSchedule(d, 2));

    state.commitPlacement(a, 0);
    state.commitPlacement(b, 1);
    state.commitPlacement(c, 4);

    Route r0;
    r0.regHolds = {RegHold{5, 1}};
    Route r1;
    r1.regHolds = {RegHold{5, 1}};
    state.commitRoute(0, r0);
    state.commitRoute(1, r1);
    EXPECT_EQ(state.routing().regOwner(5, 1), a);

    state.uncommitRoute(0);
    // Still held: the second route carries the same (owner, time).
    EXPECT_EQ(state.routing().regOwner(5, 1), a);
    state.uncommitRoute(1);
    EXPECT_EQ(state.routing().regOwner(5, 1), -1);
}

TEST(MappingState, CompleteRequiresAllPlacedAndRouted)
{
    Fixture f;
    EXPECT_FALSE(f.state.complete());
    f.state.commitPlacement(0, 0);
    f.state.commitPlacement(1, 1);
    f.state.commitPlacement(2, 2);
    EXPECT_FALSE(f.state.complete());
    f.state.commitRoute(0, Route{});
    f.state.commitRoute(1, Route{});
    EXPECT_TRUE(f.state.complete());
}

TEST(MappingState, AdresRowBusExclusivity)
{
    dfg::Dfg d;
    d.addNode(dfg::Opcode::Load);
    d.addNode(dfg::Opcode::Load);
    cgra::Architecture arch = cgra::Architecture::adres();
    cgra::Mrrg mrrg(arch, 1);
    MappingState state(d, mrrg, *dfg::moduloSchedule(d, 1));

    state.commitPlacement(0, arch.peAt(0, 0));
    // Same row, same slot: bus conflict.
    EXPECT_FALSE(state.placementLegal(1, arch.peAt(0, 2)));
    // Different row: fine.
    EXPECT_TRUE(state.placementLegal(1, arch.peAt(1, 2)));
}

TEST(MappingState, ScheduleIiMismatchPanics)
{
    dfg::Dfg d = chain3();
    cgra::Architecture arch = cgra::Architecture::hrea();
    cgra::Mrrg mrrg(arch, 2);
    auto schedule = *dfg::moduloSchedule(d, 1);
    EXPECT_THROW(MappingState(d, mrrg, schedule), std::logic_error);
}

} // namespace
} // namespace mapzero::mapper
