/** @file Unit tests for mapping visualization. */

#include <gtest/gtest.h>

#include "dfg/schedule.hpp"
#include "mapper/router.hpp"
#include "mapper/visualize.hpp"

namespace mapzero::mapper {
namespace {

struct Fixture {
    dfg::Dfg dfg;
    cgra::Architecture arch = cgra::Architecture::hrea();
    std::unique_ptr<cgra::Mrrg> mrrg;
    std::unique_ptr<MappingState> state;

    Fixture()
    {
        dfg.setName("viz");
        const auto a = dfg.addNode(dfg::Opcode::Load, "in");
        const auto b = dfg.addNode(dfg::Opcode::Add);
        const auto c = dfg.addNode(dfg::Opcode::Store);
        dfg.addEdge(a, b);
        dfg.addEdge(b, c);
        mrrg = std::make_unique<cgra::Mrrg>(arch, 1);
        state = std::make_unique<MappingState>(
            dfg, *mrrg, *dfg::moduloSchedule(dfg, 1));
    }

    void
    placeAll()
    {
        state->commitPlacement(0, arch.peAt(0, 0));
        state->commitPlacement(1, arch.peAt(0, 1));
        state->commitPlacement(2, arch.peAt(0, 2));
        Router router(*state);
        ASSERT_TRUE(router.routeEdge(0));
        ASSERT_TRUE(router.routeEdge(1));
    }
};

TEST(Visualize, GridShowsOccupiedCells)
{
    Fixture f;
    f.placeAll();
    const std::string grid = renderMappingGrid(*f.state);
    EXPECT_NE(grid.find("slot 0/1"), std::string::npos);
    EXPECT_NE(grid.find("0:load"), std::string::npos);
    EXPECT_NE(grid.find("1:add"), std::string::npos);
    EXPECT_NE(grid.find("2:store"), std::string::npos);
    EXPECT_NE(grid.find("."), std::string::npos); // free cells remain
}

TEST(Visualize, GridHandlesEmptyMapping)
{
    Fixture f;
    const std::string grid = renderMappingGrid(*f.state);
    EXPECT_EQ(grid.find("load"), std::string::npos);
    EXPECT_NE(grid.find("slot 0/1"), std::string::npos);
}

TEST(Visualize, DotContainsCoordinatesAndHops)
{
    Fixture f;
    f.placeAll();
    const std::string dot = mappingToDot(*f.state);
    EXPECT_NE(dot.find("digraph \"mapping_viz\""), std::string::npos);
    EXPECT_NE(dot.find("PE0 (r0,c0) t=0"), std::string::npos);
    EXPECT_NE(dot.find("hop(s)"), std::string::npos);
    EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
}

TEST(Visualize, DotMarksUnplacedNodes)
{
    Fixture f;
    const std::string dot = mappingToDot(*f.state);
    EXPECT_NE(dot.find("unplaced"), std::string::npos);
}

TEST(Visualize, PlacementTableListsEveryNode)
{
    Fixture f;
    f.placeAll();
    const std::string table = renderPlacementTable(*f.state);
    EXPECT_NE(table.find("load"), std::string::npos);
    EXPECT_NE(table.find("store"), std::string::npos);
    EXPECT_NE(table.find("PE2 (r0,c2)"), std::string::npos);
}

TEST(Visualize, LoopCarriedEdgesDashedInDot)
{
    dfg::Dfg d;
    const auto acc = d.addNode(dfg::Opcode::Add);
    d.addEdge(acc, acc, 1);
    cgra::Architecture arch = cgra::Architecture::hrea();
    cgra::Mrrg mrrg(arch, 2);
    MappingState state(d, mrrg, *dfg::moduloSchedule(d, 2));
    const std::string dot = mappingToDot(state);
    EXPECT_NE(dot.find("style=dashed"), std::string::npos);
    EXPECT_NE(dot.find("d=1"), std::string::npos);
}

} // namespace
} // namespace mapzero::mapper
