/**
 * @file
 * Cross-checks of the incremental routing fast paths (frontier cache,
 * admissible pruning, step replay) against full recomputation, over
 * randomized place/undo sequences. With the cross-check flag on, every
 * divergence between the incremental and the recomputed answer panics,
 * so these tests pass only if the fast paths are exact.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cgra/architecture.hpp"
#include "common/rng.hpp"
#include "dfg/kernels.hpp"
#include "mapper/environment.hpp"
#include "mapper/router.hpp"

namespace mapzero::mapper {
namespace {

/** Scoped enable of the debug cross-check (global flag, restored). */
struct CrossCheckGuard {
    bool previous = routerCrossCheck();
    CrossCheckGuard() { setRouterCrossCheck(true); }
    ~CrossCheckGuard() { setRouterCrossCheck(previous); }
};

std::int32_t
randomLegalPe(const MapEnv &env, Rng &rng)
{
    const std::vector<bool> &mask = env.actionMask();
    std::vector<std::int32_t> legal;
    for (std::size_t pe = 0; pe < mask.size(); ++pe)
        if (mask[pe])
            legal.push_back(static_cast<std::int32_t>(pe));
    if (legal.empty())
        return -1;
    return legal[static_cast<std::size_t>(
        rng.uniformInt(static_cast<std::uint64_t>(legal.size())))];
}

/**
 * Random walk of place / undo / record+replay steps. Replay exercises
 * MapEnv::stepReplay, which under the cross-check re-runs the full
 * router and verifies the recorded routes bit for bit.
 */
void
randomizedWalk(const char *kernel, const cgra::Architecture &arch,
               std::int32_t ii, std::uint64_t seed)
{
    const dfg::Dfg d = dfg::buildKernel(kernel);
    MapEnv env(d, arch, ii);
    Rng rng(seed);
    std::vector<StepRecord> records;

    for (std::int32_t iter = 0; iter < 300; ++iter) {
        const bool can_place =
            !env.done() && env.legalActionCount() > 0;
        const bool can_undo = env.stepIndex() > 0;
        const std::uint64_t coin = rng.uniformInt(4);

        if (can_place && (coin < 2 || !can_undo)) {
            // Place on a random legal PE, capturing the step record.
            const std::int32_t pe = randomLegalPe(env, rng);
            ASSERT_GE(pe, 0);
            records.emplace_back();
            env.step(pe, records.back());
        } else if (can_undo && coin == 2) {
            env.undo();
            records.pop_back();
        } else if (can_undo) {
            // Undo then replay the same step from its record at the
            // identical state: the cross-check recomputes it and
            // panics on any divergence.
            const dfg::NodeId node = env.schedule().order[
                static_cast<std::size_t>(env.stepIndex() - 1)];
            const std::int32_t pe = env.state().placement(node).pe;
            StepRecord record = std::move(records.back());
            records.pop_back();
            env.undo();
            env.stepReplay(pe, record);
            records.push_back(std::move(record));
        }
    }

    // Unwind completely; the environment must return to its reset
    // state with nothing left committed.
    while (env.stepIndex() > 0)
        env.undo();
    EXPECT_EQ(env.stepIndex(), 0);
}

/** Record/undo/replay round-trips on a fixed prefix. */
void
replayRoundTrip(const char *kernel, const cgra::Architecture &arch,
                std::int32_t ii, std::uint64_t seed)
{
    const dfg::Dfg d = dfg::buildKernel(kernel);
    MapEnv env(d, arch, ii);
    Rng rng(seed);

    while (!env.done() && env.legalActionCount() > 0) {
        const std::int32_t pe = randomLegalPe(env, rng);
        ASSERT_GE(pe, 0);
        StepRecord record;
        const StepOutcome first = env.step(pe, record);
        env.undo();
        // Replay at the identical state: the cross-check re-runs the
        // router and verifies outcome and routes match the record.
        const StepOutcome replayed = env.stepReplay(pe, record);
        EXPECT_DOUBLE_EQ(replayed.reward, first.reward);
        EXPECT_EQ(replayed.routedOk, first.routedOk);
        EXPECT_EQ(replayed.hops, first.hops);
        EXPECT_EQ(replayed.done, first.done);
    }
}

TEST(RouterIncremental, RandomizedWalkHrea)
{
    CrossCheckGuard guard;
    randomizedWalk("mac", cgra::Architecture::hrea(), 2, 101);
    randomizedWalk("sum", cgra::Architecture::hrea(), 1, 102);
}

TEST(RouterIncremental, RandomizedWalkHycube)
{
    CrossCheckGuard guard;
    randomizedWalk("conv2", cgra::Architecture::hycube(), 2, 103);
    randomizedWalk("mac", cgra::Architecture::hycube(), 1, 104);
}

TEST(RouterIncremental, ReplayMatchesFreshStepHrea)
{
    CrossCheckGuard guard;
    replayRoundTrip("mac", cgra::Architecture::hrea(), 2, 105);
}

TEST(RouterIncremental, ReplayMatchesFreshStepHycube)
{
    CrossCheckGuard guard;
    replayRoundTrip("conv2", cgra::Architecture::hycube(), 2, 106);
}

} // namespace
} // namespace mapzero::mapper
