/**
 * @file
 * Golden-model tests: compile kernels, execute the mappings on the
 * fabric simulator, and compare against the reference interpreter.
 */

#include <gtest/gtest.h>

#include "baselines/exact_mapper.hpp"
#include "dfg/kernels.hpp"
#include "dfg/schedule.hpp"
#include "mapper/environment.hpp"
#include "mapper/router.hpp"
#include "sim/fabric_sim.hpp"

namespace mapzero::sim {
namespace {

/** Compile @p dfg onto @p arch with the exact mapper; asserts success. */
mapper::MappingState
compileOrDie(const dfg::Dfg &dfg, const cgra::Architecture &arch,
             std::int32_t ii)
{
    auto schedule = dfg::moduloSchedule(dfg, ii,
                                        arch.memoryIssueCapacity());
    EXPECT_TRUE(schedule.has_value());

    baselines::ExactMapper mapper;
    const auto r = mapper.map(dfg, arch, ii, Deadline(60.0));
    EXPECT_TRUE(r.success) << dfg.name() << " @II=" << ii;

    static std::vector<std::unique_ptr<cgra::Mrrg>> mrrgs;
    mrrgs.push_back(std::make_unique<cgra::Mrrg>(arch, ii));
    mapper::MappingState state(dfg, *mrrgs.back(), *schedule);
    EXPECT_TRUE(mapper::Router::replayMapping(state, r.placements));
    return state;
}

TEST(FabricSim, TinyChainMatchesReference)
{
    dfg::Dfg d;
    const auto ld = d.addNode(dfg::Opcode::Load);
    const auto add = d.addNode(dfg::Opcode::Add);
    const auto st = d.addNode(dfg::Opcode::Store);
    d.addEdge(ld, add);
    d.addEdge(add, st);

    static cgra::Architecture arch = cgra::Architecture::hrea();
    static dfg::Dfg dd = d;
    auto state = compileOrDie(dd, arch, 1);
    EXPECT_EQ(compareWithReference(state, 8, defaultProvider()), "");
}

TEST(FabricSim, AccumulatorMatchesReference)
{
    dfg::Dfg d;
    const auto ld = d.addNode(dfg::Opcode::Load);
    const auto acc = d.addNode(dfg::Opcode::Add);
    const auto st = d.addNode(dfg::Opcode::Store);
    d.addEdge(ld, acc);
    d.addEdge(acc, acc, 1);
    d.addEdge(acc, st);

    static cgra::Architecture arch = cgra::Architecture::hrea();
    static dfg::Dfg dd = d;
    auto state = compileOrDie(dd, arch, 2);
    EXPECT_EQ(compareWithReference(state, 6, defaultProvider()), "");
}

class FabricSimKernel
    : public ::testing::TestWithParam<const char *> {};

TEST_P(FabricSimKernel, CompiledKernelComputesCorrectly)
{
    static cgra::Architecture arch = cgra::Architecture::hrea();
    static std::vector<std::unique_ptr<dfg::Dfg>> keep;
    keep.push_back(
        std::make_unique<dfg::Dfg>(dfg::buildKernel(GetParam())));
    const dfg::Dfg &d = *keep.back();
    const std::int32_t mii = dfg::minimumIi(d, arch.peCount(),
                                            arch.memoryIssueCapacity());
    auto state = compileOrDie(d, arch, mii);
    EXPECT_EQ(compareWithReference(state, 4, defaultProvider()), "")
        << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Kernels, FabricSimKernel,
                         ::testing::Values("sum", "mac", "conv2",
                                           "accumulate", "matmul"),
                         [](const auto &info) {
                             return std::string(info.param);
                         });

TEST(FabricSim, IncompleteMappingRejected)
{
    dfg::Dfg d;
    d.addNode(dfg::Opcode::Load);
    d.addNode(dfg::Opcode::Store);
    d.addEdge(0, 1);
    static cgra::Architecture arch = cgra::Architecture::hrea();
    cgra::Mrrg mrrg(arch, 1);
    mapper::MappingState state(d, mrrg, *dfg::moduloSchedule(d, 1));
    const auto result = simulateFabric(state, 2, defaultProvider());
    EXPECT_FALSE(result.ok);
}

TEST(FabricSim, CycleCountMatchesPipelineDepth)
{
    dfg::Dfg d;
    const auto ld = d.addNode(dfg::Opcode::Load);
    const auto st = d.addNode(dfg::Opcode::Store);
    d.addEdge(ld, st);
    static cgra::Architecture arch = cgra::Architecture::hrea();
    static dfg::Dfg dd = d;
    auto state = compileOrDie(dd, arch, 1);
    const auto result = simulateFabric(state, 10, defaultProvider());
    EXPECT_TRUE(result.ok);
    // Schedule length + (iterations - 1) * II.
    EXPECT_EQ(result.cycles,
              state.schedule().length() + (10 - 1) * 1);
    EXPECT_EQ(result.stores.size(), 10u);
}

TEST(FabricSim, HycubeMappingMatchesReference)
{
    static cgra::Architecture arch = cgra::Architecture::hycube();
    static std::vector<std::unique_ptr<dfg::Dfg>> keep;
    keep.push_back(std::make_unique<dfg::Dfg>(dfg::buildKernel("mac")));
    const dfg::Dfg &d = *keep.back();
    const std::int32_t mii = dfg::minimumIi(d, arch.peCount(),
                                            arch.memoryIssueCapacity());
    auto state = compileOrDie(d, arch, mii);
    EXPECT_EQ(compareWithReference(state, 5, defaultProvider()), "");
}

} // namespace
} // namespace mapzero::sim
