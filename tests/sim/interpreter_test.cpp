/** @file Unit tests for the reference DFG interpreter. */

#include <gtest/gtest.h>

#include "dfg/kernels.hpp"
#include "sim/interpreter.hpp"

namespace mapzero::sim {
namespace {

TEST(Interpreter, StraightLineChain)
{
    // load -> add(load, const) -> store
    dfg::Dfg d;
    const auto ld = d.addNode(dfg::Opcode::Load);
    const auto c = d.addNode(dfg::Opcode::Const);
    const auto add = d.addNode(dfg::Opcode::Add);
    const auto st = d.addNode(dfg::Opcode::Store);
    d.addEdge(ld, add);
    d.addEdge(c, add);
    d.addEdge(add, st);

    const auto provider = [](dfg::NodeId, std::int64_t i) -> Word {
        return 100 + i;
    };
    const InterpResult r = interpret(d, 3, provider);
    ASSERT_EQ(r.stores.size(), 3u);
    for (std::int64_t i = 0; i < 3; ++i) {
        EXPECT_EQ(r.stores[static_cast<std::size_t>(i)].value,
                  100 + i + constValue(c));
        EXPECT_EQ(r.stores[static_cast<std::size_t>(i)].iteration, i);
        EXPECT_EQ(r.stores[static_cast<std::size_t>(i)].node, st);
    }
}

TEST(Interpreter, AccumulatorCarriesAcrossIterations)
{
    // acc(i) = in(i) + acc(i-1); store acc.
    dfg::Dfg d;
    const auto ld = d.addNode(dfg::Opcode::Load);
    const auto acc = d.addNode(dfg::Opcode::Add);
    const auto st = d.addNode(dfg::Opcode::Store);
    d.addEdge(ld, acc);
    d.addEdge(acc, acc, 1);
    d.addEdge(acc, st);

    const auto provider = [](dfg::NodeId, std::int64_t) -> Word {
        return 5;
    };
    const InterpResult r = interpret(d, 4, provider);
    ASSERT_EQ(r.stores.size(), 4u);
    EXPECT_EQ(r.stores[0].value, 5);
    EXPECT_EQ(r.stores[1].value, 10);
    EXPECT_EQ(r.stores[2].value, 15);
    EXPECT_EQ(r.stores[3].value, 20);
}

TEST(Interpreter, LoopCarriedDistanceTwo)
{
    // b(i) = a(i-2), initial zeros for i < 2.
    dfg::Dfg d;
    const auto a = d.addNode(dfg::Opcode::Load);
    const auto b = d.addNode(dfg::Opcode::Store);
    d.addEdge(a, b, 2);

    const auto provider = [](dfg::NodeId, std::int64_t i) -> Word {
        return 10 * (i + 1);
    };
    const InterpResult r = interpret(d, 4, provider);
    ASSERT_EQ(r.stores.size(), 4u);
    EXPECT_EQ(r.stores[0].value, 0);
    EXPECT_EQ(r.stores[1].value, 0);
    EXPECT_EQ(r.stores[2].value, 10);
    EXPECT_EQ(r.stores[3].value, 20);
}

TEST(Interpreter, DeterministicForSameProvider)
{
    const dfg::Dfg d = dfg::buildKernel("mac");
    const auto p = defaultProvider();
    const InterpResult a = interpret(d, 5, p);
    const InterpResult b = interpret(d, 5, p);
    ASSERT_EQ(a.stores.size(), b.stores.size());
    for (std::size_t i = 0; i < a.stores.size(); ++i)
        EXPECT_TRUE(a.stores[i] == b.stores[i]);
}

TEST(Interpreter, EveryKernelExecutes)
{
    const auto p = defaultProvider();
    for (const auto &info : dfg::kernelTable()) {
        const dfg::Dfg d = dfg::buildKernel(info.name);
        const InterpResult r = interpret(d, 2, p);
        // One store record per store node per iteration.
        std::int32_t store_nodes = 0;
        for (dfg::NodeId v = 0; v < d.nodeCount(); ++v)
            store_nodes +=
                d.node(v).opcode == dfg::Opcode::Store ? 1 : 0;
        EXPECT_EQ(r.stores.size(),
                  static_cast<std::size_t>(2 * store_nodes))
            << info.name;
    }
}

} // namespace
} // namespace mapzero::sim
