/**
 * @file
 * Hardware-level golden-model tests: execute generated configuration
 * bitstreams on the register/link-level simulator and compare against
 * the reference DFG interpreter. This closes the loop over the whole
 * stack: scheduler -> placer -> router -> bitstream -> hardware.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "baselines/exact_mapper.hpp"
#include "core/bitstream.hpp"
#include "dfg/kernels.hpp"
#include "dfg/schedule.hpp"
#include "mapper/environment.hpp"
#include "mapper/router.hpp"
#include "sim/hw_sim.hpp"
#include "sim/interpreter.hpp"

namespace mapzero::sim {
namespace {

struct HwSetup {
    dfg::Dfg dfg;
    cgra::Architecture arch;
    std::unique_ptr<cgra::Mrrg> mrrg;
    std::unique_ptr<mapper::MappingState> state;
    Bitstream bitstream;
    ActivationSchedule activation;

    HwSetup(dfg::Dfg d, cgra::Architecture a)
        : dfg(std::move(d)), arch(std::move(a))
    {
        const std::int32_t mii = dfg::minimumIi(
            dfg, arch.peCount(), arch.memoryIssueCapacity());
        baselines::ExactMapper exact;
        const auto r = exact.map(dfg, arch, mii, Deadline(60.0));
        EXPECT_TRUE(r.success) << dfg.name();
        auto schedule = dfg::moduloSchedule(dfg, mii,
                                            arch.memoryIssueCapacity());
        mrrg = std::make_unique<cgra::Mrrg>(arch, mii);
        state = std::make_unique<mapper::MappingState>(dfg, *mrrg,
                                                       *schedule);
        EXPECT_TRUE(mapper::Router::replayMapping(*state,
                                                  r.placements));

        bitstream = generateBitstream(*state);
        activation.startTime = schedule->time;
        activation.ii = mii;
        activation.length = schedule->length();
    }
};

/** Run hardware + interpreter and compare store multisets. */
void
expectHardwareMatchesReference(HwSetup &setup, std::int64_t iterations)
{
    const auto provider = defaultProvider();
    const HwSimResult hw = runHardware(setup.bitstream, setup.arch,
                                       setup.activation, iterations,
                                       provider);
    ASSERT_TRUE(hw.ok) << (hw.errors.empty() ? "" : hw.errors.front());

    const InterpResult ref =
        interpret(setup.dfg, iterations, provider);

    auto sorted = [](std::vector<StoreRecord> v) {
        std::sort(v.begin(), v.end(),
                  [](const StoreRecord &a, const StoreRecord &b) {
            return std::make_pair(a.node, a.iteration) <
                   std::make_pair(b.node, b.iteration);
        });
        return v;
    };
    const auto hw_stores = sorted(hw.stores);
    const auto ref_stores = sorted(ref.stores);
    ASSERT_EQ(hw_stores.size(), ref_stores.size());
    for (std::size_t i = 0; i < hw_stores.size(); ++i) {
        EXPECT_EQ(hw_stores[i].value, ref_stores[i].value)
            << "node " << ref_stores[i].node << " iter "
            << ref_stores[i].iteration;
    }
}

TEST(HwSim, TinyChainFromBitstream)
{
    dfg::Dfg d;
    const auto ld = d.addNode(dfg::Opcode::Load);
    const auto add = d.addNode(dfg::Opcode::Add);
    const auto st = d.addNode(dfg::Opcode::Store);
    d.addEdge(ld, add);
    d.addEdge(add, st);
    HwSetup setup(std::move(d), cgra::Architecture::hrea());
    expectHardwareMatchesReference(setup, 6);
}

TEST(HwSim, AccumulatorFromBitstream)
{
    dfg::Dfg d;
    const auto ld = d.addNode(dfg::Opcode::Load);
    const auto acc = d.addNode(dfg::Opcode::Add);
    const auto st = d.addNode(dfg::Opcode::Store);
    d.addEdge(ld, acc);
    d.addEdge(acc, acc, 1);
    d.addEdge(acc, st);
    HwSetup setup(std::move(d), cgra::Architecture::hrea());
    expectHardwareMatchesReference(setup, 6);
}

class HwSimKernel : public ::testing::TestWithParam<const char *> {};

TEST_P(HwSimKernel, KernelBitstreamExecutesCorrectly)
{
    HwSetup setup(dfg::buildKernel(GetParam()),
                  cgra::Architecture::hrea());
    expectHardwareMatchesReference(setup, 4);
}

INSTANTIATE_TEST_SUITE_P(Kernels, HwSimKernel,
                         ::testing::Values("sum", "mac", "conv2",
                                           "accumulate"),
                         [](const auto &info) {
                             return std::string(info.param);
                         });

TEST(HwSim, HycubeMultiHopBitstream)
{
    // Crossbar pass-through drives (Link-sourced LinkDrive) must
    // resolve combinationally.
    HwSetup setup(dfg::buildKernel("mac"),
                  cgra::Architecture::hycube());
    expectHardwareMatchesReference(setup, 5);
}

TEST(HwSim, RoundTrippedBitstreamStillExecutes)
{
    HwSetup setup(dfg::buildKernel("sum"), cgra::Architecture::hrea());
    std::stringstream buffer;
    writeBitstream(setup.bitstream, buffer);
    setup.bitstream = readBitstream(buffer);
    expectHardwareMatchesReference(setup, 4);
}

TEST(HwSim, PeCountMismatchRejected)
{
    HwSetup setup(dfg::buildKernel("sum"), cgra::Architecture::hrea());
    const cgra::Architecture other = cgra::Architecture::morphosys();
    const auto result =
        runHardware(setup.bitstream, other, setup.activation, 2,
                    defaultProvider());
    EXPECT_FALSE(result.ok);
}

} // namespace
} // namespace mapzero::sim
