/** @file Unit tests for the shared operational semantics. */

#include <gtest/gtest.h>

#include "sim/semantics.hpp"

namespace mapzero::sim {
namespace {

TEST(Semantics, ArithmeticOps)
{
    EXPECT_EQ(evaluateOp(dfg::Opcode::Add, {3, 4}, 0, 0), 7);
    EXPECT_EQ(evaluateOp(dfg::Opcode::Add, {3, 4, 5}, 0, 0), 12);
    EXPECT_EQ(evaluateOp(dfg::Opcode::Sub, {10, 4}, 0, 0), 6);
    EXPECT_EQ(evaluateOp(dfg::Opcode::Mul, {3, 4}, 0, 0), 12);
    EXPECT_EQ(evaluateOp(dfg::Opcode::Div, {12, 4}, 0, 0), 3);
    EXPECT_EQ(evaluateOp(dfg::Opcode::Div, {12, 0}, 0, 0), 0);
    EXPECT_EQ(evaluateOp(dfg::Opcode::Mac, {3, 4, 5}, 0, 0), 17);
}

TEST(Semantics, LogicOps)
{
    EXPECT_EQ(evaluateOp(dfg::Opcode::Shl, {1, 4}, 0, 0), 16);
    EXPECT_EQ(evaluateOp(dfg::Opcode::Shr, {16, 2}, 0, 0), 4);
    EXPECT_EQ(evaluateOp(dfg::Opcode::And, {6, 3}, 0, 0), 2);
    EXPECT_EQ(evaluateOp(dfg::Opcode::Or, {6, 3}, 0, 0), 7);
    EXPECT_EQ(evaluateOp(dfg::Opcode::Xor, {6, 3}, 0, 0), 5);
    EXPECT_EQ(evaluateOp(dfg::Opcode::Not, {0}, 0, 0), -1);
    EXPECT_EQ(evaluateOp(dfg::Opcode::Cmp, {1, 2}, 0, 0), 1);
    EXPECT_EQ(evaluateOp(dfg::Opcode::Cmp, {2, 1}, 0, 0), 0);
}

TEST(Semantics, SelectUsesThirdOperandAsPredicate)
{
    EXPECT_EQ(evaluateOp(dfg::Opcode::Select, {10, 20, 1}, 0, 0), 10);
    EXPECT_EQ(evaluateOp(dfg::Opcode::Select, {10, 20, 0}, 0, 0), 20);
}

TEST(Semantics, ShiftAmountsAreMasked)
{
    EXPECT_EQ(evaluateOp(dfg::Opcode::Shl, {1, 64}, 0, 0), 1);
    EXPECT_EQ(evaluateOp(dfg::Opcode::Shl, {1, 65}, 0, 0), 2);
}

TEST(Semantics, ConstDerivesFromNodeId)
{
    EXPECT_EQ(evaluateOp(dfg::Opcode::Const, {}, 0, 3), constValue(3));
    EXPECT_NE(constValue(3), constValue(4));
}

TEST(Semantics, LoadMixesStreamAndAddress)
{
    const Word base = evaluateOp(dfg::Opcode::Load, {}, 100, 0);
    EXPECT_EQ(base, 100);
    const Word with_addr = evaluateOp(dfg::Opcode::Load, {7}, 100, 0);
    EXPECT_EQ(with_addr, 100 + (7 & 0xF));
}

TEST(Semantics, StoreAndRouteForwardFirstOperand)
{
    EXPECT_EQ(evaluateOp(dfg::Opcode::Store, {42}, 0, 0), 42);
    EXPECT_EQ(evaluateOp(dfg::Opcode::Route, {42}, 0, 0), 42);
    EXPECT_EQ(evaluateOp(dfg::Opcode::Phi, {42, 7}, 0, 0), 42);
}

TEST(Semantics, MissingOperandsReadZero)
{
    EXPECT_EQ(evaluateOp(dfg::Opcode::Sub, {5}, 0, 0), 5);
    EXPECT_EQ(evaluateOp(dfg::Opcode::Add, {}, 0, 0), 0);
}

TEST(Semantics, DefaultProviderVariesByStreamAndIteration)
{
    const auto provider = defaultProvider();
    EXPECT_NE(provider(0, 0), provider(1, 0));
    EXPECT_NE(provider(0, 0), provider(0, 1));
    EXPECT_EQ(provider(2, 3), provider(2, 3));
}

} // namespace
} // namespace mapzero::sim
