/** @file Unit tests for offline diagnostics and run-report compare. */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "cgra/architecture.hpp"
#include "common/journal.hpp"
#include "common/json.hpp"
#include "common/log.hpp"
#include "core/compiler.hpp"
#include "core/diagnostics.hpp"
#include "dfg/dfg.hpp"

namespace mapzero {
namespace {

/** Enables the global journal for one test, restoring state after. */
class DiagnosticsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        journal().clear();
        journal().setEnabled(true);
    }

    void
    TearDown() override
    {
        journal().setEnabled(false);
        journal().clear();
    }
};

/**
 * A star DFG no fabric in the suite can map: @p fan_in producers all
 * feeding one consumer one level later, so every producer needs a
 * one-cycle route into the consumer's PE. With more producers than any
 * PE has in-neighbors, the consumer is unplaceable at every II.
 */
dfg::Dfg
starKernel(std::int32_t fan_in)
{
    dfg::Dfg dfg;
    dfg.setName("star");
    for (std::int32_t i = 0; i < fan_in; ++i)
        dfg.addNode(dfg::Opcode::Add, cat("in", i));
    const auto hub = dfg.addNode(dfg::Opcode::Mul, "hub");
    for (std::int32_t i = 0; i < fan_in; ++i)
        dfg.addEdge(i, hub);
    return dfg;
}

std::vector<JsonValue>
drainJournal()
{
    std::string text;
    for (const std::string &line : journal().lines()) {
        text += line;
        text += '\n';
    }
    return JsonValue::parseLines(text);
}

TEST_F(DiagnosticsTest, InfeasibleKernelPostMortemNamesTheStuckNode)
{
    const dfg::Dfg kernel = starKernel(14);
    const cgra::Architecture arch = cgra::Architecture::hrea();
    Compiler compiler;
    CompileOptions options;
    options.timeLimitSeconds = 1.0;
    const CompileResult result =
        compiler.compile(kernel, arch, Method::Ilp, options);
    ASSERT_FALSE(result.success);

    const std::vector<JsonValue> records = drainJournal();
    ASSERT_FALSE(records.empty());

    // The raw records carry the attribution...
    bool blamed_hub = false;
    std::size_t hotspot_sites = 0;
    for (const JsonValue &record : records) {
        if (record.stringOr("type", "") != "compile.attempt")
            continue;
        EXPECT_NE(record.stringOr("outcome", ""), "success");
        if (record.stringOr("fail_node", "") == "hub")
            blamed_hub = true;
        if (record.has("hotspots"))
            hotspot_sites =
                std::max(hotspot_sites, record.at("hotspots").size());
    }
    EXPECT_TRUE(blamed_hub);
    EXPECT_GE(hotspot_sites, 3u);

    // ...and the rendered post-mortem names the node, lists the top
    // congested (PE, slot) pairs, and draws the heatmap.
    const std::string report = renderJournalDiagnostics(records);
    EXPECT_NE(report.find("Compile post-mortem: star"),
              std::string::npos)
        << report;
    EXPECT_NE(report.find("node hub unplaceable"), std::string::npos)
        << report;
    EXPECT_NE(report.find("hottest PE("), std::string::npos) << report;
    EXPECT_NE(report.find("congestion heatmap"), std::string::npos)
        << report;
    EXPECT_NE(report.find("FAILED"), std::string::npos) << report;
}

TEST_F(DiagnosticsTest, MctsAndTrainerRecordsRenderHealthSections)
{
    const std::string jsonl =
        R"({"type":"mcts.move","dfg":"k","ii":2,"simulations":16,)"
        R"("root_value":0.25,"policy_entropy":1.2,)"
        R"("best_visit_share":0.5,"support":4,"max_depth":7,)"
        R"("solved":false})" "\n"
        R"({"type":"mcts.move","dfg":"k","ii":2,"simulations":16,)"
        R"("root_value":0.75,"policy_entropy":0.8,)"
        R"("best_visit_share":0.9,"support":2,"max_depth":9,)"
        R"("solved":true})" "\n"
        R"({"type":"trainer.episode","episode":1,"success":true,)"
        R"("total_loss":0.5,"value_loss":0.3,"policy_loss":0.2,)"
        R"("grad_norm":2.5,"learning_rate":0.003,"replay_size":128,)"
        R"("priority_min":0.1,"priority_mean":0.6,"priority_max":1.0})"
        "\n";
    const std::string report =
        renderJournalDiagnostics(JsonValue::parseLines(jsonl));
    EXPECT_NE(report.find("MCTS health"), std::string::npos) << report;
    EXPECT_NE(report.find("max depth 9"), std::string::npos) << report;
    EXPECT_NE(report.find("1/2 solved roots"), std::string::npos)
        << report;
    EXPECT_NE(report.find("Trainer"), std::string::npos) << report;
    EXPECT_NE(report.find("1 episodes"), std::string::npos) << report;
}

// --------------------------------------------------------------------
// Run-report compare

JsonValue
report(double timeouts, double ops_per_sec, double mean, double p95)
{
    return JsonValue::parse(cat(
        R"({"metrics":{)",
        R"("counters":{"compile.timeouts":)", timeouts,
        R"(,"kernels.mapped":3},)",
        R"("gauges":{"search.ops_per_sec":)", ops_per_sec,
        R"(,"replay.fill":0.5},)",
        R"("histograms":{"compile.compile_seconds":{"count":2,"mean":)",
        mean, R"(,"p95":)", p95, R"(},)",
        R"("mcts.depth":{"count":2,"mean":4,"p95":6}}},)",
        R"("traceEventCount":0})"));
}

TEST(CompareRunReports, IdenticalReportsPass)
{
    const JsonValue a = report(0, 100.0, 1.0, 2.0);
    const CompareReport cmp = compareRunReports(a, a, {});
    EXPECT_FALSE(cmp.regressed);
    // timeouts counter, per_sec gauge, seconds mean + p95; the
    // unclassified counter/gauge/histogram stay out of the gate.
    EXPECT_EQ(cmp.compared, 4u);
}

TEST(CompareRunReports, FlagsRegressionsBeyondThreshold)
{
    const JsonValue base = report(0, 100.0, 1.0, 2.0);
    const JsonValue cand = report(2, 79.0, 1.04, 2.4);
    CompareOptions options;
    options.threshold = 0.05;
    const CompareReport cmp = compareRunReports(base, cand, options);
    EXPECT_TRUE(cmp.regressed);
    EXPECT_NE(cmp.text.find("REGRESSION"), std::string::npos)
        << cmp.text;
    EXPECT_NE(cmp.text.find("compile.timeouts"), std::string::npos)
        << cmp.text;
    EXPECT_NE(cmp.text.find("ops_per_sec"), std::string::npos)
        << cmp.text;
    EXPECT_NE(cmp.text.find("p95"), std::string::npos) << cmp.text;
    // A 4% mean drift stays under the 5% gate, so it is not listed.
    EXPECT_EQ(cmp.text.find("compile_seconds.mean"),
              std::string::npos)
        << cmp.text;
}

TEST(CompareRunReports, ImprovementsAreNotRegressions)
{
    const JsonValue base = report(4, 80.0, 2.0, 3.0);
    const JsonValue cand = report(0, 120.0, 1.0, 2.0);
    const CompareReport cmp = compareRunReports(base, cand, {});
    EXPECT_FALSE(cmp.regressed);
    EXPECT_NE(cmp.text.find("improvement"), std::string::npos)
        << cmp.text;
}

TEST(CompareRunReports, FailureCounterBornInCandidateRegresses)
{
    const JsonValue base = JsonValue::parse(
        R"({"metrics":{"counters":{"kernels.mapped":1}}})");
    const JsonValue cand = JsonValue::parse(
        R"({"metrics":{"counters":{"kernels.mapped":1,)"
        R"("sim.divergence":3}}})");
    const CompareReport cmp = compareRunReports(base, cand, {});
    EXPECT_TRUE(cmp.regressed);
    EXPECT_NE(cmp.text.find("sim.divergence"), std::string::npos)
        << cmp.text;
    EXPECT_NE(cmp.text.find("(new)"), std::string::npos) << cmp.text;
}

TEST(CompareRunReports, MissingMetricsSectionIsFatal)
{
    const JsonValue good = report(0, 1.0, 1.0, 1.0);
    const JsonValue bad = JsonValue::parse(R"({"oops":1})");
    EXPECT_THROW((void)compareRunReports(bad, good, {}),
                 std::runtime_error);
    EXPECT_THROW((void)compareRunReports(good, bad, {}),
                 std::runtime_error);
}

} // namespace
} // namespace mapzero
