/** @file Unit tests for configuration-bitstream generation. */

#include <gtest/gtest.h>

#include <sstream>

#include "baselines/exact_mapper.hpp"
#include "core/bitstream.hpp"
#include "dfg/kernels.hpp"
#include "dfg/schedule.hpp"
#include "mapper/environment.hpp"
#include "mapper/router.hpp"

namespace mapzero {
namespace {

/** Compile a kernel with the exact mapper into a MappingState. */
struct Compiled {
    dfg::Dfg dfg;
    cgra::Architecture arch;
    std::unique_ptr<cgra::Mrrg> mrrg;
    std::unique_ptr<mapper::MappingState> state;

    Compiled(const std::string &kernel, cgra::Architecture a)
        : dfg(dfg::buildKernel(kernel)), arch(std::move(a))
    {
        const std::int32_t mii = dfg::minimumIi(
            dfg, arch.peCount(), arch.memoryIssueCapacity());
        baselines::ExactMapper exact;
        const auto r = exact.map(dfg, arch, mii, Deadline(60.0));
        EXPECT_TRUE(r.success) << kernel;
        auto schedule = dfg::moduloSchedule(dfg, mii,
                                            arch.memoryIssueCapacity());
        mrrg = std::make_unique<cgra::Mrrg>(arch, mii);
        state = std::make_unique<mapper::MappingState>(dfg, *mrrg,
                                                       *schedule);
        EXPECT_TRUE(mapper::Router::replayMapping(*state,
                                                  r.placements));
    }
};

TEST(Bitstream, EveryNodeHasAWord)
{
    Compiled c("mac", cgra::Architecture::hrea());
    const Bitstream bs = generateBitstream(*c.state);
    EXPECT_EQ(bs.peCount, 16);
    std::int32_t issued = 0;
    for (cgra::PeId pe = 0; pe < bs.peCount; ++pe)
        for (std::int32_t s = 0; s < bs.ii; ++s)
            issued += bs.word(pe, s).node >= 0 ? 1 : 0;
    EXPECT_EQ(issued, c.dfg.nodeCount());
}

TEST(Bitstream, OperandCountsMatchInEdges)
{
    Compiled c("sum", cgra::Architecture::hrea());
    const Bitstream bs = generateBitstream(*c.state);
    for (cgra::PeId pe = 0; pe < bs.peCount; ++pe) {
        for (std::int32_t s = 0; s < bs.ii; ++s) {
            const PeConfigWord &w = bs.word(pe, s);
            if (w.node < 0)
                continue;
            EXPECT_EQ(static_cast<std::int32_t>(w.operands.size()),
                      c.dfg.inDegree(w.node));
        }
    }
}

TEST(Bitstream, ConstOperandsAreImmediates)
{
    Compiled c("mac", cgra::Architecture::hrea());
    const Bitstream bs = generateBitstream(*c.state);
    // Every mul in mac consumes one const coefficient.
    bool saw_immediate = false;
    for (cgra::PeId pe = 0; pe < bs.peCount; ++pe) {
        for (std::int32_t s = 0; s < bs.ii; ++s) {
            const PeConfigWord &w = bs.word(pe, s);
            if (w.node < 0 || w.opcode != dfg::Opcode::Mul)
                continue;
            for (const auto &op : w.operands) {
                if (op.kind == SourceKind::Constant) {
                    saw_immediate = true;
                    EXPECT_NE(op.immediate, 0);
                }
            }
        }
    }
    EXPECT_TRUE(saw_immediate);
}

TEST(Bitstream, LinkSourcesReferenceRealLinks)
{
    Compiled c("conv2", cgra::Architecture::hrea());
    const Bitstream bs = generateBitstream(*c.state);
    const auto n_links =
        static_cast<std::int32_t>(c.arch.linkList().size());
    for (cgra::PeId pe = 0; pe < bs.peCount; ++pe) {
        for (std::int32_t s = 0; s < bs.ii; ++s) {
            const PeConfigWord &w = bs.word(pe, s);
            for (const auto &op : w.operands) {
                if (op.kind == SourceKind::Link) {
                    ASSERT_GE(op.link, 0);
                    ASSERT_LT(op.link, n_links);
                    // The link must end at this PE.
                    EXPECT_EQ(c.mrrg->link(op.link).second, pe);
                }
            }
        }
    }
}

TEST(Bitstream, SelfRecurrenceUsesOwnOrRouteReg)
{
    // The accumulator node reads its previous value from its own PE.
    Compiled c("sum", cgra::Architecture::hrea());
    const Bitstream bs = generateBitstream(*c.state);
    dfg::NodeId acc = -1;
    for (dfg::NodeId v = 0; v < c.dfg.nodeCount(); ++v)
        if (c.dfg.hasSelfCycle(v))
            acc = v;
    ASSERT_GE(acc, 0);
    const auto &p = c.state->placement(acc);
    const PeConfigWord &w =
        bs.word(p.pe, c.mrrg->slotOf(p.time));
    bool has_local_source = false;
    for (const auto &op : w.operands)
        has_local_source = has_local_source ||
                           op.kind == SourceKind::OwnResult ||
                           op.kind == SourceKind::RouteReg;
    EXPECT_TRUE(has_local_source);
}

TEST(Bitstream, TextListsActiveSlots)
{
    Compiled c("mac", cgra::Architecture::hrea());
    const Bitstream bs = generateBitstream(*c.state);
    const std::string text = bitstreamToText(bs);
    EXPECT_NE(text.find("II="), std::string::npos);
    EXPECT_NE(text.find("mul"), std::string::npos);
    EXPECT_NE(text.find("store"), std::string::npos);
    EXPECT_NE(text.find("imm("), std::string::npos);
}

TEST(Bitstream, BinaryRoundTrip)
{
    Compiled c("conv2", cgra::Architecture::hycube());
    const Bitstream bs = generateBitstream(*c.state);
    std::stringstream buffer;
    writeBitstream(bs, buffer);
    const Bitstream back = readBitstream(buffer);
    EXPECT_TRUE(bs == back);
}

TEST(Bitstream, GarbageBinaryIsFatal)
{
    std::stringstream buffer("not a bitstream at all, sorry");
    EXPECT_THROW(readBitstream(buffer), std::runtime_error);
}

TEST(Bitstream, IncompleteMappingIsFatal)
{
    dfg::Dfg d;
    d.addNode(dfg::Opcode::Load);
    cgra::Architecture arch = cgra::Architecture::hrea();
    cgra::Mrrg mrrg(arch, 1);
    mapper::MappingState state(d, mrrg, *dfg::moduloSchedule(d, 1));
    EXPECT_THROW(generateBitstream(state), std::runtime_error);
}

TEST(Bitstream, HycubePassThroughsPresent)
{
    // A HyCube mapping with multi-hop routes must configure crossbar
    // pass-throughs somewhere.
    Compiled c("matmul", cgra::Architecture::hycube());
    const Bitstream bs = generateBitstream(*c.state);
    std::size_t pass = 0;
    for (cgra::PeId pe = 0; pe < bs.peCount; ++pe)
        for (std::int32_t s = 0; s < bs.ii; ++s)
            pass += bs.word(pe, s).passThrough.size();
    EXPECT_GT(pass, 0u);
}

} // namespace
} // namespace mapzero
