/** @file Unit tests for the Compiler facade. */

#include <gtest/gtest.h>

#include "core/agent_cache.hpp"
#include "core/compiler.hpp"
#include "dfg/kernels.hpp"

namespace mapzero {
namespace {

PretrainBudget
tinyBudget()
{
    PretrainBudget b;
    b.episodes = 2;
    b.seconds = 5.0;
    b.maxNodes = 6;
    b.mctsExpansions = 4;
    return b;
}

TEST(Compiler, MiiMatchesScheduleAnalysis)
{
    const dfg::Dfg d = dfg::buildKernel("arf");
    cgra::Architecture arch = cgra::Architecture::hrea();
    // arf has 54 nodes on 16 PEs: ResMII = ceil(54/16) = 4.
    EXPECT_EQ(Compiler::minimumIi(d, arch), 4);
}

TEST(Compiler, IlpCompilesSumAtMii)
{
    const dfg::Dfg d = dfg::buildKernel("sum");
    cgra::Architecture arch = cgra::Architecture::hrea();
    Compiler compiler;
    CompileOptions opts;
    opts.timeLimitSeconds = 30.0;
    const CompileResult r = compiler.compile(d, arch, Method::Ilp, opts);
    EXPECT_TRUE(r.success);
    EXPECT_EQ(r.ii, r.mii);
    EXPECT_DOUBLE_EQ(r.iiRatio(), 1.0);
}

TEST(Compiler, FailureHasZeroIiRatio)
{
    // Paper Fig. 8 convention: II of failed mapping is 0.
    CompileResult r;
    r.mii = 3;
    r.success = false;
    EXPECT_DOUBLE_EQ(r.iiRatio(), 0.0);
}

TEST(Compiler, IiSweepIncreasesOnFailure)
{
    // A recurrence-limited DFG where MII from resources is lower than
    // what the coupled routing permits: sweep must still terminate.
    const dfg::Dfg d = dfg::buildKernel("mac");
    cgra::Architecture arch("mesh4", 4, 4,
                            cgra::linkMask({cgra::Interconnect::Mesh}));
    Compiler compiler;
    CompileOptions opts;
    opts.timeLimitSeconds = 30.0;
    const CompileResult r = compiler.compile(d, arch, Method::Ilp, opts);
    if (r.success) {
        EXPECT_GE(r.ii, r.mii);
    }
}

TEST(Compiler, MapZeroWithoutNetworkIsFatal)
{
    const dfg::Dfg d = dfg::buildKernel("sum");
    cgra::Architecture arch = cgra::Architecture::hrea();
    Compiler compiler;
    EXPECT_THROW(compiler.compile(d, arch, Method::MapZero),
                 std::runtime_error);
}

TEST(Compiler, MapZeroCompilesWithCachedAgent)
{
    const dfg::Dfg d = dfg::buildKernel("sum");
    cgra::Architecture arch = cgra::Architecture::hrea();
    Compiler compiler;
    compiler.setNetwork(pretrainedNetwork(arch, tinyBudget()));
    CompileOptions opts;
    opts.timeLimitSeconds = 30.0;
    const CompileResult r =
        compiler.compile(d, arch, Method::MapZero, opts);
    EXPECT_TRUE(r.success);
    EXPECT_EQ(r.method, "MapZero");
}

TEST(Compiler, AllMethodsHaveNames)
{
    EXPECT_STREQ(methodName(Method::MapZero), "MapZero");
    EXPECT_STREQ(methodName(Method::MapZeroNoMcts), "MapZero(noMCTS)");
    EXPECT_STREQ(methodName(Method::Ilp), "ILP(B&B)");
    EXPECT_STREQ(methodName(Method::Sa), "SA");
    EXPECT_STREQ(methodName(Method::Lisa), "LISA");
}

TEST(AgentCache, MemoizesPerArchitecture)
{
    clearAgentCache();
    cgra::Architecture arch = cgra::Architecture::hrea();
    const auto a = pretrainedNetwork(arch, tinyBudget());
    const auto b = pretrainedNetwork(arch, tinyBudget());
    EXPECT_EQ(a.get(), b.get());
    clearAgentCache();
    const auto c = pretrainedNetwork(arch, tinyBudget());
    EXPECT_NE(a.get(), c.get());
}

} // namespace
} // namespace mapzero
