/** @file Unit tests for the pretrained-agent caches. */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "core/agent_cache.hpp"

namespace mapzero {
namespace {

PretrainBudget
tinyBudget()
{
    PretrainBudget b;
    b.episodes = 1;
    b.seconds = 3.0;
    b.maxNodes = 5;
    b.mctsExpansions = 2;
    return b;
}

struct EnvGuard {
    ~EnvGuard()
    {
        unsetenv("MAPZERO_AGENT_CACHE_DIR");
        clearAgentCache();
    }
};

TEST(AgentDiskCache, WritesAndReloadsCheckpoint)
{
    EnvGuard guard;
    const auto dir = std::filesystem::temp_directory_path() /
                     "mapzero_agent_cache_test";
    std::filesystem::remove_all(dir);
    setenv("MAPZERO_AGENT_CACHE_DIR", dir.c_str(), 1);

    clearAgentCache();
    cgra::Architecture arch = cgra::Architecture::hrea();
    const auto first = pretrainedNetwork(arch, tinyBudget());
    ASSERT_NE(first, nullptr);

    // A checkpoint must exist on disk now.
    bool found = false;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        found = found ||
                entry.path().extension() == ".ckpt";
    }
    EXPECT_TRUE(found);

    // New process simulated by clearing the in-memory cache: the net
    // must come back from disk with identical weights.
    clearAgentCache();
    const auto second = pretrainedNetwork(arch, tinyBudget());
    ASSERT_NE(second, nullptr);
    EXPECT_NE(first.get(), second.get());
    const auto a = first->namedParameters();
    const auto b = second->namedParameters();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        for (std::size_t j = 0; j < a[i].second.tensor().size(); ++j)
            ASSERT_FLOAT_EQ(a[i].second.tensor()[j],
                            b[i].second.tensor()[j]);

    std::filesystem::remove_all(dir);
}

TEST(AgentDiskCache, CorruptCheckpointFallsBackToTraining)
{
    EnvGuard guard;
    const auto dir = std::filesystem::temp_directory_path() /
                     "mapzero_agent_cache_corrupt";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    setenv("MAPZERO_AGENT_CACHE_DIR", dir.c_str(), 1);

    // Plant garbage where the checkpoint would live.
    cgra::Architecture arch = cgra::Architecture::hrea();
    {
        std::ofstream os(dir / "HReA_4x4.ckpt", std::ios::binary);
        os << "garbage";
    }
    clearAgentCache();
    EXPECT_NO_THROW(pretrainedNetwork(arch, tinyBudget()));
    std::filesystem::remove_all(dir);
}

TEST(AgentDiskCache, DisabledByDefault)
{
    EnvGuard guard;
    unsetenv("MAPZERO_AGENT_CACHE_DIR");
    clearAgentCache();
    cgra::Architecture arch = cgra::Architecture::hrea();
    EXPECT_NO_THROW(pretrainedNetwork(arch, tinyBudget()));
}

TEST(AgentDiskCache, TruncatedCheckpointFallsBackToTraining)
{
    EnvGuard guard;
    const auto dir = std::filesystem::temp_directory_path() /
                     "mapzero_agent_cache_truncated";
    std::filesystem::remove_all(dir);
    setenv("MAPZERO_AGENT_CACHE_DIR", dir.c_str(), 1);

    // Write a valid checkpoint, then cut it short - as a crash during
    // a non-atomic write would have. The CRC footer is gone, so the
    // loader must treat the file as a cache miss and retrain.
    cgra::Architecture arch = cgra::Architecture::hrea();
    clearAgentCache();
    ASSERT_NE(pretrainedNetwork(arch, tinyBudget()), nullptr);

    std::filesystem::path ckpt;
    for (const auto &entry : std::filesystem::directory_iterator(dir))
        if (entry.path().extension() == ".ckpt")
            ckpt = entry.path();
    ASSERT_FALSE(ckpt.empty());
    const auto size = std::filesystem::file_size(ckpt);
    std::filesystem::resize_file(ckpt, size / 2);

    clearAgentCache();
    EXPECT_NO_THROW(pretrainedNetwork(arch, tinyBudget()));
    // The retrain rewrote a full-size checkpoint over the stub.
    EXPECT_GT(std::filesystem::file_size(ckpt), size / 2);
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace mapzero
