/** @file Unit tests for spatial (one-shot, makespan) mapping (§4.8). */

#include <gtest/gtest.h>

#include "baselines/exact_mapper.hpp"
#include "core/spatial.hpp"
#include "dfg/kernels.hpp"

namespace mapzero {
namespace {

TEST(Spatial, StripLoopCarriedDropsBackEdges)
{
    const dfg::Dfg d = dfg::buildKernel("mac");
    const dfg::Dfg stripped = stripLoopCarried(d);
    EXPECT_EQ(stripped.nodeCount(), d.nodeCount());
    EXPECT_LT(stripped.edgeCount(), d.edgeCount());
    for (const auto &e : stripped.edges())
        EXPECT_EQ(e.distance, 0);
}

TEST(Spatial, CriticalPathOfChain)
{
    dfg::Dfg d;
    for (int i = 0; i < 5; ++i)
        d.addNode(dfg::Opcode::Add);
    for (int i = 0; i + 1 < 5; ++i)
        d.addEdge(i, i + 1);
    EXPECT_EQ(criticalPathLength(d), 5);
}

TEST(Spatial, CriticalPathOfParallelNodes)
{
    dfg::Dfg d;
    d.addNode(dfg::Opcode::Add);
    d.addNode(dfg::Opcode::Add);
    EXPECT_EQ(criticalPathLength(d), 1);
}

TEST(Spatial, MapsTinyKernelAtCriticalPath)
{
    const dfg::Dfg d = dfg::buildKernel("sum");
    cgra::Architecture arch = cgra::Architecture::hrea();
    baselines::ExactMapper engine;
    const SpatialResult r = spatialMap(engine, d, arch);
    ASSERT_TRUE(r.success);
    EXPECT_GE(r.makespan, r.criticalPath);
    EXPECT_LE(r.makespan,
              r.criticalPath + 9); // horizon slide + sweep slack
    EXPECT_EQ(r.placements.size(),
              static_cast<std::size_t>(d.nodeCount()));
}

TEST(Spatial, MakespanNeverBelowNodePressureBound)
{
    // 20 nodes on a 2x2 fabric need at least ceil(20/4) = 5 cycles.
    dfg::Dfg d;
    for (int i = 0; i < 20; ++i)
        d.addNode(dfg::Opcode::Add);
    for (int i = 0; i < 19; ++i)
        d.addEdge(i / 2, i + 1);
    cgra::Architecture arch("tiny", 2, 2,
                            cgra::linkMask({cgra::Interconnect::Mesh,
                                            cgra::Interconnect::Toroidal}));
    baselines::ExactMapper engine;
    const SpatialResult r = spatialMap(engine, d, arch);
    if (r.success) {
        EXPECT_GE(r.makespan, 5);
    }
}

TEST(Spatial, AccumulatorKernelMapsOneShot)
{
    // mac has a loop-carried self edge; one-shot mapping must ignore it
    // and still succeed.
    const dfg::Dfg d = dfg::buildKernel("mac");
    cgra::Architecture arch = cgra::Architecture::hrea();
    baselines::ExactMapper engine;
    const SpatialResult r = spatialMap(engine, d, arch);
    EXPECT_TRUE(r.success);
}

TEST(Spatial, RespectsTimeLimit)
{
    const dfg::Dfg d = dfg::buildKernel("arf");
    cgra::Architecture arch("mesh3", 3, 3,
                            cgra::linkMask({cgra::Interconnect::Mesh}));
    baselines::ExactMapper engine;
    SpatialOptions options;
    options.timeLimitSeconds = 0.3;
    Timer t;
    spatialMap(engine, d, arch, options);
    EXPECT_LT(t.seconds(), 3.0);
}

} // namespace
} // namespace mapzero
