/** @file Determinism and thread-safety tests for parallel compilation. */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "core/agent_cache.hpp"
#include "core/compiler.hpp"
#include "dfg/kernels.hpp"

namespace mapzero {
namespace {

PretrainBudget
tinyBudget()
{
    PretrainBudget b;
    b.episodes = 2;
    b.seconds = 5.0;
    b.maxNodes = 6;
    b.mctsExpansions = 4;
    return b;
}

/** The two results must describe the identical mapping. */
void
expectSameResult(const CompileResult &a, const CompileResult &b)
{
    EXPECT_EQ(a.success, b.success);
    EXPECT_EQ(a.ii, b.ii);
    EXPECT_EQ(a.mii, b.mii);
    EXPECT_EQ(a.totalHops, b.totalHops);
    EXPECT_EQ(a.searchOps, b.searchOps);
    ASSERT_EQ(a.placements.size(), b.placements.size());
    for (std::size_t i = 0; i < a.placements.size(); ++i) {
        EXPECT_EQ(a.placements[i].pe, b.placements[i].pe) << i;
        EXPECT_EQ(a.placements[i].time, b.placements[i].time) << i;
    }
}

/** Same seed, same restart portfolio, different worker counts. */
CompileResult
compileAtJobs(Method method, std::int32_t jobs,
              std::shared_ptr<const rl::MapZeroNet> net)
{
    const dfg::Dfg d = dfg::buildKernel("mac");
    cgra::Architecture arch = cgra::Architecture::hrea();
    Compiler compiler;
    if (net)
        compiler.setNetwork(std::move(net));
    CompileOptions options;
    options.timeLimitSeconds = 60.0; // generous: timeouts would allow
                                     // scheduling to influence results
    options.seed = 99;
    options.jobs = jobs;
    options.restartsPerIi = 4; // pinned so jobs does not change the
                               // portfolio size
    return compiler.compile(d, arch, method, options);
}

TEST(ParallelCompile, SaDeterministicAcrossWorkerCounts)
{
    const CompileResult sequential =
        compileAtJobs(Method::Sa, 1, nullptr);
    const CompileResult parallel = compileAtJobs(Method::Sa, 4, nullptr);
    EXPECT_TRUE(sequential.success);
    expectSameResult(sequential, parallel);
}

TEST(ParallelCompile, MapZeroDeterministicAcrossWorkerCounts)
{
    clearAgentCache();
    cgra::Architecture arch = cgra::Architecture::hrea();
    const auto net = pretrainedNetwork(arch, tinyBudget());
    const CompileResult sequential =
        compileAtJobs(Method::MapZero, 1, net);
    // jobs=4 routes evaluations of the four concurrent attempts
    // through a shared EvalBatcher; batching must not change what any
    // attempt computes.
    const CompileResult parallel = compileAtJobs(Method::MapZero, 4, net);
    EXPECT_TRUE(sequential.success);
    expectSameResult(sequential, parallel);
}

TEST(ParallelCompile, SingleRestartMatchesPlainCompile)
{
    // restartsPerIi=1 at jobs=1 must take the historical code path and
    // produce the historical result.
    const dfg::Dfg d = dfg::buildKernel("sum");
    cgra::Architecture arch = cgra::Architecture::hrea();
    Compiler compiler;
    CompileOptions plain;
    plain.timeLimitSeconds = 30.0;
    plain.seed = 5;
    CompileOptions pinned = plain;
    pinned.jobs = 1;
    pinned.restartsPerIi = 1;
    const CompileResult a = compiler.compile(d, arch, Method::Sa, plain);
    const CompileResult b = compiler.compile(d, arch, Method::Sa, pinned);
    expectSameResult(a, b);
}

TEST(ParallelCompile, EvalCacheDoesNotChangeResults)
{
    clearAgentCache();
    cgra::Architecture arch = cgra::Architecture::hrea();
    const auto net = pretrainedNetwork(arch, tinyBudget());
    const dfg::Dfg d = dfg::buildKernel("mac");
    Compiler compiler;
    compiler.setNetwork(net);

    CompileOptions options;
    options.timeLimitSeconds = 60.0;
    options.seed = 99;
    options.jobs = 1;
    options.restartsPerIi = 1;
    options.evalCache = false;
    const CompileResult cold =
        compiler.compile(d, arch, Method::MapZero, options);

    Counter &misses = metrics().counter("eval_cache.misses");
    const std::int64_t misses0 = misses.value();
    options.evalCache = true;
    const CompileResult cached =
        compiler.compile(d, arch, Method::MapZero, options);

    // Cached outputs are bit-identical, so the whole sweep must make
    // exactly the same decisions. A straight-line guided search never
    // revisits a state, so hits are not guaranteed here (they show up
    // once MCTS escalates; see the EvalCache tests for the hit path) -
    // but every network evaluation must have consulted the cache.
    expectSameResult(cold, cached);
    EXPECT_GT(misses.value(), misses0) << "compile bypassed the cache";
}

TEST(AgentCache, ConcurrentCallersShareOneTrainingRun)
{
    clearAgentCache();
    cgra::Architecture arch = cgra::Architecture::hrea();
    constexpr int kCallers = 4;
    std::vector<std::shared_ptr<const rl::MapZeroNet>> nets(kCallers);
    std::vector<std::thread> threads;
    for (int t = 0; t < kCallers; ++t)
        threads.emplace_back([&nets, &arch, t] {
            nets[static_cast<std::size_t>(t)] =
                pretrainedNetwork(arch, tinyBudget());
        });
    for (auto &thread : threads)
        thread.join();
    for (int t = 1; t < kCallers; ++t)
        EXPECT_EQ(nets[0].get(), nets[static_cast<std::size_t>(t)].get())
            << "caller " << t << " trained a duplicate network";
    clearAgentCache();
}

} // namespace
} // namespace mapzero
