/** @file Tests for CompileService (the daemon's warm-cache compile
 *  layer) and renderResultJson: shared eval-cache reuse, cancellation
 *  plumbing, and the FETCH blob format. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/metrics.hpp"
#include "core/service.hpp"
#include "dfg/dfg.hpp"
#include "dfg/kernels.hpp"

namespace mapzero {
namespace {

ServiceOptions
tinyServiceOptions()
{
    ServiceOptions options;
    options.pretrain.episodes = 2;
    options.pretrain.seconds = 5.0;
    options.pretrain.maxNodes = 6;
    options.pretrain.mctsExpansions = 4;
    return options;
}

TEST(CompileService, SaCompileSucceedsAndRendersJson)
{
    CompileService service;
    const dfg::Dfg kernel = dfg::buildKernel("mac");
    const cgra::Architecture arch = cgra::Architecture::hrea();
    CompileOptions options;
    options.timeLimitSeconds = 20.0;
    const CompileResult result =
        service.compile(kernel, arch, Method::Sa, options);
    ASSERT_TRUE(result.success);

    const std::string json = renderResultJson(kernel, arch, result);
    EXPECT_NE(json.find("\"dfg\": \"mac\""), std::string::npos);
    EXPECT_NE(json.find("\"method\": \"SA\""), std::string::npos);
    EXPECT_NE(json.find("\"success\": true"), std::string::npos);
    EXPECT_NE(json.find("\"valid\": true"), std::string::npos);
    EXPECT_NE(json.find("\"placements\""), std::string::npos);
    EXPECT_NE(json.find("\"cancelled\": false"), std::string::npos);
}

TEST(CompileService, FailureRendersWithoutPlacements)
{
    CompileService service;
    const dfg::Dfg kernel = dfg::buildKernel("huf_u");
    const cgra::Architecture arch = cgra::Architecture::hrea();
    CompileOptions options;
    options.timeLimitSeconds = 0.2; // far too little for 592 ops
    const CompileResult result =
        service.compile(kernel, arch, Method::Sa, options);
    ASSERT_FALSE(result.success);
    const std::string json = renderResultJson(kernel, arch, result);
    EXPECT_NE(json.find("\"success\": false"), std::string::npos);
    EXPECT_EQ(json.find("\"placements\""), std::string::npos);
}

TEST(CompileService, SharedEvalCachePersistsAcrossCompiles)
{
    CompileService service(tinyServiceOptions());
    ASSERT_NE(service.evalCache(), nullptr);
    const dfg::Dfg kernel = dfg::buildKernel("mac");
    const cgra::Architecture arch = cgra::Architecture::hrea();
    CompileOptions options;
    options.timeLimitSeconds = 60.0;

    const CompileResult first =
        service.compile(kernel, arch, Method::MapZero, options);
    ASSERT_TRUE(first.success);
    const std::size_t cached_after_first = service.evalCache()->size();
    EXPECT_GT(cached_after_first, 0u);

    const std::int64_t hits_before =
        metrics().counter("eval_cache.hits").value();
    const CompileResult second =
        service.compile(kernel, arch, Method::MapZero, options);
    ASSERT_TRUE(second.success);
    // The repeat compile replays evaluations out of the shared cache.
    EXPECT_GT(metrics().counter("eval_cache.hits").value(),
              hits_before);
}

TEST(CompileService, ExplicitCacheInOptionsWinsOverTheSharedOne)
{
    CompileService service(tinyServiceOptions());
    const dfg::Dfg kernel = dfg::buildKernel("mac");
    const cgra::Architecture arch = cgra::Architecture::hrea();

    const auto own_cache = std::make_shared<rl::EvalCache>(128);
    CompileOptions options;
    options.timeLimitSeconds = 60.0;
    options.evalCacheInstance = own_cache;
    const std::size_t shared_before = service.evalCache()->size();
    const CompileResult result =
        service.compile(kernel, arch, Method::MapZero, options);
    ASSERT_TRUE(result.success);
    EXPECT_GT(own_cache->size(), 0u);
    EXPECT_EQ(service.evalCache()->size(), shared_before);
}

/** A 1-to-15 star: schedulable at II=1 but unroutable on the 4x4
 *  fabric, so with unbounded restarts SA searches its entire budget
 *  instead of failing fast (big kernels like huf_u are rejected at
 *  the scheduling stage in milliseconds and cannot hold a worker). */
dfg::Dfg
unroutableStar()
{
    dfg::Dfg star;
    star.setName("star15");
    const auto root = star.addNode(dfg::Opcode::Add, "n0");
    for (int i = 1; i <= 15; ++i)
        star.addEdge(root, star.addNode(dfg::Opcode::Add));
    return star;
}

TEST(CompileService, CancelFlagAbortsALongCompile)
{
    CompileService service;
    const dfg::Dfg kernel = unroutableStar();
    const cgra::Architecture arch = cgra::Architecture::hrea();
    CompileOptions options;
    options.timeLimitSeconds = 120.0; // nominal budget: 2 minutes
    options.restartsPerIi = 1'000'000;

    std::atomic<bool> cancel{false};
    std::thread canceller([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
        cancel.store(true);
    });
    const auto started = std::chrono::steady_clock::now();
    const CompileResult result =
        service.compile(kernel, arch, Method::Sa, options, &cancel);
    const double seconds =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            std::chrono::steady_clock::now() - started)
            .count();
    canceller.join();

    EXPECT_TRUE(result.cancelled);
    EXPECT_FALSE(result.success);
    // Aborted within polling latency of the flag flip, nowhere near
    // the 120s nominal budget.
    EXPECT_LT(seconds, 30.0);
    const std::string json = renderResultJson(kernel, arch, result);
    EXPECT_NE(json.find("\"cancelled\": true"), std::string::npos);
}

TEST(CompileService, PreRaisedCancelFlagShortCircuits)
{
    CompileService service;
    const dfg::Dfg kernel = dfg::buildKernel("mac");
    const cgra::Architecture arch = cgra::Architecture::hrea();
    CompileOptions options;
    options.timeLimitSeconds = 60.0;
    std::atomic<bool> cancel{true};
    const auto started = std::chrono::steady_clock::now();
    const CompileResult result =
        service.compile(kernel, arch, Method::Sa, options, &cancel);
    const double seconds =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            std::chrono::steady_clock::now() - started)
            .count();
    EXPECT_TRUE(result.cancelled);
    EXPECT_FALSE(result.success);
    EXPECT_LT(seconds, 5.0);
}

} // namespace
} // namespace mapzero
