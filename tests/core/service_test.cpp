/** @file Tests for CompileService (the daemon's warm-cache compile
 *  layer) and renderResultJson: shared eval-cache reuse, cancellation
 *  plumbing, and the FETCH blob format. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>

#include <unistd.h>

#include "common/metrics.hpp"
#include "common/persist.hpp"
#include "core/service.hpp"
#include "dfg/dfg.hpp"
#include "dfg/kernels.hpp"

namespace mapzero {
namespace {

ServiceOptions
tinyServiceOptions()
{
    ServiceOptions options;
    options.pretrain.episodes = 2;
    options.pretrain.seconds = 5.0;
    options.pretrain.maxNodes = 6;
    options.pretrain.mctsExpansions = 4;
    return options;
}

TEST(CompileService, SaCompileSucceedsAndRendersJson)
{
    CompileService service;
    const dfg::Dfg kernel = dfg::buildKernel("mac");
    const cgra::Architecture arch = cgra::Architecture::hrea();
    CompileOptions options;
    options.timeLimitSeconds = 20.0;
    const CompileResult result =
        service.compile(kernel, arch, Method::Sa, options);
    ASSERT_TRUE(result.success);

    const std::string json = renderResultJson(kernel, arch, result);
    EXPECT_NE(json.find("\"dfg\": \"mac\""), std::string::npos);
    EXPECT_NE(json.find("\"method\": \"SA\""), std::string::npos);
    EXPECT_NE(json.find("\"success\": true"), std::string::npos);
    EXPECT_NE(json.find("\"valid\": true"), std::string::npos);
    EXPECT_NE(json.find("\"placements\""), std::string::npos);
    EXPECT_NE(json.find("\"cancelled\": false"), std::string::npos);
}

TEST(CompileService, FailureRendersWithoutPlacements)
{
    CompileService service;
    const dfg::Dfg kernel = dfg::buildKernel("huf_u");
    const cgra::Architecture arch = cgra::Architecture::hrea();
    CompileOptions options;
    options.timeLimitSeconds = 0.2; // far too little for 592 ops
    const CompileResult result =
        service.compile(kernel, arch, Method::Sa, options);
    ASSERT_FALSE(result.success);
    const std::string json = renderResultJson(kernel, arch, result);
    EXPECT_NE(json.find("\"success\": false"), std::string::npos);
    EXPECT_EQ(json.find("\"placements\""), std::string::npos);
}

TEST(CompileService, SharedEvalCachePersistsAcrossCompiles)
{
    CompileService service(tinyServiceOptions());
    ASSERT_NE(service.evalCache(), nullptr);
    const dfg::Dfg kernel = dfg::buildKernel("mac");
    const cgra::Architecture arch = cgra::Architecture::hrea();
    CompileOptions options;
    options.timeLimitSeconds = 60.0;

    const CompileResult first =
        service.compile(kernel, arch, Method::MapZero, options);
    ASSERT_TRUE(first.success);
    const std::size_t cached_after_first = service.evalCache()->size();
    EXPECT_GT(cached_after_first, 0u);

    const std::int64_t hits_before =
        metrics().counter("eval_cache.hits").value();
    const CompileResult second =
        service.compile(kernel, arch, Method::MapZero, options);
    ASSERT_TRUE(second.success);
    // The repeat compile replays evaluations out of the shared cache.
    EXPECT_GT(metrics().counter("eval_cache.hits").value(),
              hits_before);
}

TEST(CompileService, ExplicitCacheInOptionsWinsOverTheSharedOne)
{
    CompileService service(tinyServiceOptions());
    const dfg::Dfg kernel = dfg::buildKernel("mac");
    const cgra::Architecture arch = cgra::Architecture::hrea();

    const auto own_cache = std::make_shared<rl::EvalCache>(128);
    CompileOptions options;
    options.timeLimitSeconds = 60.0;
    options.evalCacheInstance = own_cache;
    const std::size_t shared_before = service.evalCache()->size();
    const CompileResult result =
        service.compile(kernel, arch, Method::MapZero, options);
    ASSERT_TRUE(result.success);
    EXPECT_GT(own_cache->size(), 0u);
    EXPECT_EQ(service.evalCache()->size(), shared_before);
}

/** A 1-to-15 star: schedulable at II=1 but unroutable on the 4x4
 *  fabric, so with unbounded restarts SA searches its entire budget
 *  instead of failing fast (big kernels like huf_u are rejected at
 *  the scheduling stage in milliseconds and cannot hold a worker). */
dfg::Dfg
unroutableStar()
{
    dfg::Dfg star;
    star.setName("star15");
    const auto root = star.addNode(dfg::Opcode::Add, "n0");
    for (int i = 1; i <= 15; ++i)
        star.addEdge(root, star.addNode(dfg::Opcode::Add));
    return star;
}

TEST(CompileService, CancelFlagAbortsALongCompile)
{
    CompileService service;
    const dfg::Dfg kernel = unroutableStar();
    const cgra::Architecture arch = cgra::Architecture::hrea();
    CompileOptions options;
    options.timeLimitSeconds = 120.0; // nominal budget: 2 minutes
    options.restartsPerIi = 1'000'000;

    std::atomic<bool> cancel{false};
    std::thread canceller([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
        cancel.store(true);
    });
    const auto started = std::chrono::steady_clock::now();
    const CompileResult result =
        service.compile(kernel, arch, Method::Sa, options, &cancel);
    const double seconds =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            std::chrono::steady_clock::now() - started)
            .count();
    canceller.join();

    EXPECT_TRUE(result.cancelled);
    EXPECT_FALSE(result.success);
    // Aborted within polling latency of the flag flip, nowhere near
    // the 120s nominal budget.
    EXPECT_LT(seconds, 30.0);
    const std::string json = renderResultJson(kernel, arch, result);
    EXPECT_NE(json.find("\"cancelled\": true"), std::string::npos);
}

TEST(CompileService, PreRaisedCancelFlagShortCircuits)
{
    CompileService service;
    const dfg::Dfg kernel = dfg::buildKernel("mac");
    const cgra::Architecture arch = cgra::Architecture::hrea();
    CompileOptions options;
    options.timeLimitSeconds = 60.0;
    std::atomic<bool> cancel{true};
    const auto started = std::chrono::steady_clock::now();
    const CompileResult result =
        service.compile(kernel, arch, Method::Sa, options, &cancel);
    const double seconds =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            std::chrono::steady_clock::now() - started)
            .count();
    EXPECT_TRUE(result.cancelled);
    EXPECT_FALSE(result.success);
    EXPECT_LT(seconds, 5.0);
}

/** Scoped temp directory for the disk-tier tests. */
struct TempDir {
    std::string path;
    explicit TempDir(const std::string &tag)
        : path((std::filesystem::temp_directory_path() /
                ("mapzero-service-" + tag + "-" +
                 std::to_string(::getpid())))
                   .string())
    {
        std::filesystem::remove_all(path);
    }
    ~TempDir() { std::filesystem::remove_all(path); }
};

TEST(CompileService, EncodeDecodeRoundTripsEveryResultField)
{
    CompileResult result;
    result.success = true;
    result.ii = 3;
    result.mii = 2;
    result.seconds = 1.25;
    result.searchOps = 4242;
    result.timedOut = false;
    result.cancelled = false;
    result.totalHops = 17;
    result.method = "SA";
    result.placements = {{0, 0}, {5, 1}, {11, 2}};

    CompileResult out;
    ASSERT_TRUE(decodeCompileResult(encodeCompileResult(result), out));
    EXPECT_EQ(out.success, result.success);
    EXPECT_EQ(out.ii, result.ii);
    EXPECT_EQ(out.mii, result.mii);
    EXPECT_DOUBLE_EQ(out.seconds, result.seconds);
    EXPECT_EQ(out.searchOps, result.searchOps);
    EXPECT_EQ(out.totalHops, result.totalHops);
    EXPECT_EQ(out.method, result.method);
    ASSERT_EQ(out.placements.size(), result.placements.size());
    for (std::size_t i = 0; i < out.placements.size(); ++i) {
        EXPECT_EQ(out.placements[i].pe, result.placements[i].pe);
        EXPECT_EQ(out.placements[i].time, result.placements[i].time);
    }

    // Garbage never decodes (and never throws out of the decoder).
    CompileResult untouched;
    EXPECT_FALSE(decodeCompileResult("", untouched));
    EXPECT_FALSE(decodeCompileResult("garbage bytes", untouched));
    EXPECT_FALSE(decodeCompileResult(std::string(3, '\0'), untouched));
}

TEST(CompileService, DiskTierAnswersARestartedServiceByteIdentically)
{
    const TempDir dir("restart");
    ServiceOptions service_options;
    service_options.persistDir = dir.path;

    const dfg::Dfg kernel = dfg::buildKernel("mac");
    const cgra::Architecture arch = cgra::Architecture::hrea();
    CompileOptions options;
    options.timeLimitSeconds = 20.0;
    options.restartsPerIi = 2;

    // Service A computes and persists...
    const std::int64_t writes_before =
        metrics().counter("cache.disk_writes").value();
    CompileService first_service(service_options);
    ASSERT_TRUE(first_service.resultStore().enabled());
    const CompileResult cold =
        first_service.compile(kernel, arch, Method::Sa, options);
    ASSERT_TRUE(cold.success);
    EXPECT_GT(metrics().counter("cache.disk_writes").value(),
              writes_before);

    // ...and service B (a daemon restart) replays from disk without
    // searching: the result - including the timing the original run
    // recorded - and the rendered FETCH blob are byte-identical.
    const std::int64_t hits_before =
        metrics().counter("cache.disk_hits").value();
    CompileService second_service(service_options);
    const CompileResult warm =
        second_service.compile(kernel, arch, Method::Sa, options);
    EXPECT_GT(metrics().counter("cache.disk_hits").value(),
              hits_before);
    ASSERT_TRUE(warm.success);
    EXPECT_DOUBLE_EQ(warm.seconds, cold.seconds);
    EXPECT_EQ(warm.searchOps, cold.searchOps);
    EXPECT_EQ(renderResultJson(kernel, arch, warm),
              renderResultJson(kernel, arch, cold));
}

TEST(CompileService, CorruptDiskEntriesFallBackToRecompute)
{
    const TempDir dir("corrupt");
    ServiceOptions service_options;
    service_options.persistDir = dir.path;
    CompileService service(service_options);

    const dfg::Dfg kernel = dfg::buildKernel("sum");
    const cgra::Architecture arch = cgra::Architecture::hrea();
    CompileOptions options;
    options.timeLimitSeconds = 20.0;
    options.restartsPerIi = 2;

    ASSERT_TRUE(
        service.compile(kernel, arch, Method::Sa, options).success);
    const std::string key =
        service.requestKey(kernel, arch, Method::Sa, options);
    const std::string path = service.resultStore().pathOf(key);
    ASSERT_TRUE(std::filesystem::exists(path));

    // A correctly framed envelope whose payload is not a serialized
    // CompileResult: the load succeeds, the decode must not - counted
    // as a decode error, answered by recomputing.
    {
        DiskByteStore side_door(dir.path);
        ASSERT_TRUE(side_door.store(key, "not a compile result"));
    }
    const std::int64_t decode_errors_before =
        metrics().counter("cache.disk_errors").value();
    EXPECT_TRUE(
        service.compile(kernel, arch, Method::Sa, options).success);
    EXPECT_GT(metrics().counter("cache.disk_errors").value(),
              decode_errors_before);

    // Bit-rot in the envelope itself: a CRC failure is a plain miss,
    // and the recompute re-populates the entry.
    {
        std::filesystem::resize_file(
            path, std::filesystem::file_size(path) / 2);
    }
    const std::int64_t misses_before =
        metrics().counter("cache.disk_misses").value();
    EXPECT_TRUE(
        service.compile(kernel, arch, Method::Sa, options).success);
    EXPECT_GT(metrics().counter("cache.disk_misses").value(),
              misses_before);
    const std::int64_t hits_before =
        metrics().counter("cache.disk_hits").value();
    EXPECT_TRUE(
        service.compile(kernel, arch, Method::Sa, options).success);
    EXPECT_GT(metrics().counter("cache.disk_hits").value(),
              hits_before);
}

TEST(CompileService, RequestKeyCoversResultsAndIgnoresThroughput)
{
    CompileService service;
    const dfg::Dfg mac = dfg::buildKernel("mac");
    const dfg::Dfg sum = dfg::buildKernel("sum");
    const cgra::Architecture arch = cgra::Architecture::hrea();
    cgra::Architecture bused = cgra::Architecture::hrea();
    bused.setRowSharedMemoryBus(true);

    CompileOptions base;
    base.timeLimitSeconds = 20.0;
    base.restartsPerIi = 8;
    const std::string key =
        service.requestKey(mac, arch, Method::Sa, base);

    // Everything that can change the mapping changes the key.
    EXPECT_NE(service.requestKey(sum, arch, Method::Sa, base), key);
    EXPECT_NE(service.requestKey(mac, bused, Method::Sa, base), key);
    EXPECT_NE(service.requestKey(mac, arch, Method::Ilp, base), key);
    CompileOptions reseeded = base;
    reseeded.seed = 999;
    EXPECT_NE(service.requestKey(mac, arch, Method::Sa, reseeded), key);
    CompileOptions more_restarts = base;
    more_restarts.restartsPerIi = 9;
    EXPECT_NE(service.requestKey(mac, arch, Method::Sa, more_restarts),
              key);
    CompileOptions longer = base;
    longer.timeLimitSeconds = 21.0;
    EXPECT_NE(service.requestKey(mac, arch, Method::Sa, longer), key);

    // Worker count and cache toggles change throughput, not results
    // (restartsPerIi is pinned, so the portfolio shape is fixed).
    CompileOptions wide = base;
    wide.jobs = 4;
    EXPECT_EQ(service.requestKey(mac, arch, Method::Sa, wide), key);
    CompileOptions uncached = base;
    uncached.evalCache = false;
    EXPECT_EQ(service.requestKey(mac, arch, Method::Sa, uncached), key);
}

} // namespace
} // namespace mapzero
