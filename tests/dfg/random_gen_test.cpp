/** @file Unit tests for the random-DFG curriculum generator. */

#include <gtest/gtest.h>

#include "dfg/random_gen.hpp"
#include "dfg/schedule.hpp"

namespace mapzero::dfg {
namespace {

TEST(RandomDfg, NodeCountMatchesParams)
{
    Rng rng(1);
    RandomDfgParams p;
    p.nodes = 12;
    const Dfg d = randomDfg(p, rng);
    EXPECT_EQ(d.nodeCount(), 12);
}

TEST(RandomDfg, AlwaysValid)
{
    Rng rng(2);
    for (int i = 0; i < 50; ++i) {
        RandomDfgParams p;
        p.nodes = 3 + static_cast<std::int32_t>(rng.uniformInt(28u));
        EXPECT_NO_THROW(randomDfg(p, rng).validate());
    }
}

TEST(RandomDfg, ConnectedBackbone)
{
    Rng rng(3);
    RandomDfgParams p;
    p.nodes = 20;
    const Dfg d = randomDfg(p, rng);
    // Every node except node 0 has at least one in-edge.
    for (NodeId v = 1; v < d.nodeCount(); ++v)
        EXPECT_GE(d.inDegree(v), 1) << "node " << v;
}

TEST(RandomDfg, RespectsMaxInDegree)
{
    Rng rng(4);
    RandomDfgParams p;
    p.nodes = 30;
    p.fanout = 3.0;
    p.maxInDegree = 2;
    const Dfg d = randomDfg(p, rng);
    for (NodeId v = 0; v < d.nodeCount(); ++v) {
        std::int32_t dist0_in = 0;
        for (std::int32_t ei : d.inEdges(v))
            if (d.edges()[static_cast<std::size_t>(ei)].distance == 0)
                ++dist0_in;
        EXPECT_LE(dist0_in, 2);
    }
}

TEST(RandomDfg, SchedulableAtSmallIi)
{
    Rng rng(5);
    for (int i = 0; i < 20; ++i) {
        RandomDfgParams p;
        p.nodes = 10;
        const Dfg d = randomDfg(p, rng);
        EXPECT_TRUE(moduloSchedule(d, recMii(d)).has_value());
    }
}

TEST(RandomDfg, TooFewNodesIsFatal)
{
    Rng rng(6);
    RandomDfgParams p;
    p.nodes = 1;
    EXPECT_THROW(randomDfg(p, rng), std::runtime_error);
}

TEST(Difficulty, GrowsWithSize)
{
    Rng rng(7);
    RandomDfgParams small;
    small.nodes = 4;
    RandomDfgParams large;
    large.nodes = 28;
    const double ds = dfgDifficulty(randomDfg(small, rng));
    const double dl = dfgDifficulty(randomDfg(large, rng));
    EXPECT_LT(ds, dl);
}

TEST(Curriculum, SortedEasyToHard)
{
    Rng rng(8);
    const auto tasks = curriculum(20, 3, 30, rng);
    ASSERT_EQ(tasks.size(), 20u);
    for (std::size_t i = 0; i + 1 < tasks.size(); ++i)
        EXPECT_LE(dfgDifficulty(tasks[i]), dfgDifficulty(tasks[i + 1]));
}

TEST(Curriculum, NodeCountsWithinRange)
{
    Rng rng(9);
    const auto tasks = curriculum(30, 3, 30, rng);
    for (const auto &t : tasks) {
        EXPECT_GE(t.nodeCount(), 3);
        EXPECT_LE(t.nodeCount(), 30);
    }
}

TEST(Curriculum, InvalidRangeIsFatal)
{
    Rng rng(10);
    EXPECT_THROW(curriculum(5, 10, 3, rng), std::runtime_error);
}

TEST(Curriculum, DeterministicForSeed)
{
    Rng a(11), b(11);
    const auto ta = curriculum(5, 3, 10, a);
    const auto tb = curriculum(5, 3, 10, b);
    ASSERT_EQ(ta.size(), tb.size());
    for (std::size_t i = 0; i < ta.size(); ++i) {
        EXPECT_EQ(ta[i].nodeCount(), tb[i].nodeCount());
        EXPECT_EQ(ta[i].edgeCount(), tb[i].edgeCount());
    }
}

} // namespace
} // namespace mapzero::dfg
