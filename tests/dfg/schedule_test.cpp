/** @file Unit tests for scheduling analyses (topo order, MII, modulo). */

#include <gtest/gtest.h>

#include "dfg/schedule.hpp"

namespace mapzero::dfg {
namespace {

Dfg
chain(std::int32_t n)
{
    Dfg d;
    for (std::int32_t i = 0; i < n; ++i)
        d.addNode(Opcode::Add);
    for (std::int32_t i = 0; i + 1 < n; ++i)
        d.addEdge(i, i + 1);
    return d;
}

TEST(Schedule, TopologicalOrderRespectsEdges)
{
    Dfg d;
    const NodeId a = d.addNode(Opcode::Load);
    const NodeId b = d.addNode(Opcode::Add);
    const NodeId c = d.addNode(Opcode::Store);
    d.addEdge(b, c);
    d.addEdge(a, b);
    const auto order = topologicalOrder(d);
    std::vector<std::int32_t> pos(3);
    for (std::size_t i = 0; i < order.size(); ++i)
        pos[static_cast<std::size_t>(order[i])] =
            static_cast<std::int32_t>(i);
    EXPECT_LT(pos[static_cast<std::size_t>(a)],
              pos[static_cast<std::size_t>(b)]);
    EXPECT_LT(pos[static_cast<std::size_t>(b)],
              pos[static_cast<std::size_t>(c)]);
}

TEST(Schedule, TopologicalOrderDeterministic)
{
    const Dfg d = chain(6);
    EXPECT_EQ(topologicalOrder(d), topologicalOrder(d));
}

TEST(Schedule, ResMiiByPeCount)
{
    const Dfg d = chain(10);
    EXPECT_EQ(resMii(d, 16, 16), 1);
    EXPECT_EQ(resMii(d, 4, 4), 3);  // ceil(10/4)
    EXPECT_EQ(resMii(d, 10, 10), 1);
}

TEST(Schedule, ResMiiByMemoryCapacity)
{
    Dfg d;
    for (int i = 0; i < 4; ++i)
        d.addNode(Opcode::Load);
    // 4 memory ops, 16 PEs, but only 2 memory-capable.
    EXPECT_EQ(resMii(d, 16, 2), 2);
}

TEST(Schedule, ResMiiNoMemPesForMemOpIsFatal)
{
    Dfg d;
    d.addNode(Opcode::Load);
    EXPECT_THROW(resMii(d, 16, 0), std::runtime_error);
}

TEST(Schedule, RecMiiOfDagIsOne)
{
    EXPECT_EQ(recMii(chain(5)), 1);
}

TEST(Schedule, RecMiiOfAccumulatorIsOne)
{
    Dfg d;
    const NodeId acc = d.addNode(Opcode::Add);
    d.addEdge(acc, acc, 1); // 1 cycle latency / distance 1
    EXPECT_EQ(recMii(d), 1);
}

TEST(Schedule, RecMiiOfLongRecurrence)
{
    // Cycle of 3 ops with total distance 1: RecMII = 3.
    Dfg d;
    const NodeId a = d.addNode(Opcode::Add);
    const NodeId b = d.addNode(Opcode::Add);
    const NodeId c = d.addNode(Opcode::Add);
    d.addEdge(a, b);
    d.addEdge(b, c);
    d.addEdge(c, a, 1);
    EXPECT_EQ(recMii(d), 3);
}

TEST(Schedule, RecMiiWithLargerDistance)
{
    // Cycle of 4 ops with distance 2: RecMII = ceil(4/2) = 2.
    Dfg d;
    for (int i = 0; i < 4; ++i)
        d.addNode(Opcode::Add);
    d.addEdge(0, 1);
    d.addEdge(1, 2);
    d.addEdge(2, 3);
    d.addEdge(3, 0, 2);
    EXPECT_EQ(recMii(d), 2);
}

TEST(Schedule, MinimumIiIsMaxOfBoth)
{
    Dfg d;
    const NodeId a = d.addNode(Opcode::Add);
    const NodeId b = d.addNode(Opcode::Add);
    const NodeId c = d.addNode(Opcode::Add);
    d.addEdge(a, b);
    d.addEdge(b, c);
    d.addEdge(c, a, 1); // RecMII = 3
    EXPECT_EQ(minimumIi(d, 16, 16), 3);
    EXPECT_EQ(minimumIi(d, 1, 1), 3);  // ResMII = 3 too
}

TEST(Schedule, ModuloScheduleRespectsDependencies)
{
    const Dfg d = chain(5);
    const auto s = moduloSchedule(d, 2);
    ASSERT_TRUE(s.has_value());
    for (const auto &e : d.edges())
        EXPECT_GE(s->time[static_cast<std::size_t>(e.dst)],
                  s->time[static_cast<std::size_t>(e.src)] + 1);
}

TEST(Schedule, ModuloScheduleBelowRecMiiFails)
{
    Dfg d;
    const NodeId a = d.addNode(Opcode::Add);
    const NodeId b = d.addNode(Opcode::Add);
    const NodeId c = d.addNode(Opcode::Add);
    d.addEdge(a, b);
    d.addEdge(b, c);
    d.addEdge(c, a, 1); // RecMII = 3
    EXPECT_FALSE(moduloSchedule(d, 2).has_value());
    EXPECT_TRUE(moduloSchedule(d, 3).has_value());
}

TEST(Schedule, ModuloTimesAreConsistent)
{
    const Dfg d = chain(7);
    const auto s = moduloSchedule(d, 3);
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->ii, 3);
    for (std::size_t v = 0; v < s->time.size(); ++v)
        EXPECT_EQ(s->moduloTime[v], s->time[v] % 3);
}

TEST(Schedule, OrderIsSortedByTime)
{
    const Dfg d = chain(5);
    const auto s = moduloSchedule(d, 1);
    ASSERT_TRUE(s.has_value());
    for (std::size_t i = 0; i + 1 < s->order.size(); ++i)
        EXPECT_LE(s->time[static_cast<std::size_t>(s->order[i])],
                  s->time[static_cast<std::size_t>(s->order[i + 1])]);
}

TEST(Schedule, LengthAndSlotPopulation)
{
    const Dfg d = chain(4);
    const auto s = moduloSchedule(d, 2);
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->length(), 4);
    EXPECT_EQ(s->nodesInModuloSlot(0) + s->nodesInModuloSlot(1), 4);
}

TEST(Schedule, EarliestNodeStartsAtZero)
{
    const Dfg d = chain(4);
    const auto s = moduloSchedule(d, 1);
    ASSERT_TRUE(s.has_value());
    std::int32_t min_t = s->time[0];
    for (std::int32_t t : s->time)
        min_t = std::min(min_t, t);
    EXPECT_EQ(min_t, 0);
}

TEST(Schedule, InvalidIiIsFatal)
{
    const Dfg d = chain(3);
    EXPECT_THROW(moduloSchedule(d, 0), std::runtime_error);
}

} // namespace
} // namespace mapzero::dfg
