/**
 * @file
 * Tests that the benchmark-kernel generators reproduce Table 2 exactly
 * and emit structurally sound DFGs.
 */

#include <gtest/gtest.h>

#include <set>

#include "dfg/kernels.hpp"
#include "dfg/schedule.hpp"

namespace mapzero::dfg {
namespace {

class KernelTableTest : public ::testing::TestWithParam<KernelInfo> {};

TEST_P(KernelTableTest, ExactVertexAndEdgeCounts)
{
    const KernelInfo &info = GetParam();
    const Dfg d = buildKernel(info.name);
    EXPECT_EQ(d.nodeCount(), info.vertices)
        << info.name << " vertex count differs from Table 2";
    EXPECT_EQ(d.edgeCount(), info.edges)
        << info.name << " edge count differs from Table 2";
}

TEST_P(KernelTableTest, Validates)
{
    const Dfg d = buildKernel(GetParam().name);
    EXPECT_NO_THROW(d.validate());
}

TEST_P(KernelTableTest, Schedulable)
{
    const Dfg d = buildKernel(GetParam().name);
    // Every kernel must admit a modulo schedule at its RecMII.
    const std::int32_t rec = recMii(d);
    EXPECT_TRUE(moduloSchedule(d, rec).has_value());
}

TEST_P(KernelTableTest, NameMatches)
{
    EXPECT_EQ(buildKernel(GetParam().name).name(), GetParam().name);
}

INSTANTIATE_TEST_SUITE_P(
    Table2, KernelTableTest, ::testing::ValuesIn(kernelTable()),
    [](const ::testing::TestParamInfo<KernelInfo> &info) {
        return info.param.name;
    });

TEST(Kernels, TableHas18Entries)
{
    EXPECT_EQ(kernelTable().size(), 18u);
}

TEST(Kernels, CoreAndUnrolledPartition)
{
    const auto core = coreKernelNames();
    const auto unrolled = unrolledKernelNames();
    EXPECT_EQ(core.size() + unrolled.size(), kernelTable().size());
    EXPECT_EQ(unrolled.size(), 5u); // filter_u huf_u jpegdct_u sort_u stencil_u
    std::set<std::string> all(core.begin(), core.end());
    all.insert(unrolled.begin(), unrolled.end());
    EXPECT_EQ(all.size(), kernelTable().size());
}

TEST(Kernels, UnknownNameIsFatal)
{
    EXPECT_THROW(buildKernel("bogus"), std::runtime_error);
}

TEST(Kernels, AccumulatorsCarryLoopDependency)
{
    // The MAC-family kernels accumulate across iterations, which must
    // appear as a distance-1 self edge.
    for (const char *name : {"mac", "sum", "accumulate", "matmul"}) {
        const Dfg d = buildKernel(name);
        bool has_self = false;
        for (NodeId v = 0; v < d.nodeCount(); ++v)
            has_self = has_self || d.hasSelfCycle(v);
        EXPECT_TRUE(has_self) << name;
    }
}

TEST(Kernels, UnrolledKernelsHaveNoAccumulator)
{
    for (const auto &name : unrolledKernelNames()) {
        const Dfg d = buildKernel(name);
        for (NodeId v = 0; v < d.nodeCount(); ++v)
            EXPECT_FALSE(d.hasSelfCycle(v)) << name << " node " << v;
    }
}

TEST(Kernels, MemoryOpsPresentInEveryKernel)
{
    for (const auto &info : kernelTable())
        EXPECT_GT(buildKernel(info.name).memoryOpCount(), 0)
            << info.name;
}

TEST(Kernels, DeterministicConstruction)
{
    const Dfg a = buildKernel("arf");
    const Dfg b = buildKernel("arf");
    ASSERT_EQ(a.nodeCount(), b.nodeCount());
    ASSERT_EQ(a.edgeCount(), b.edgeCount());
    for (std::int32_t i = 0; i < a.edgeCount(); ++i) {
        EXPECT_EQ(a.edges()[static_cast<std::size_t>(i)].src,
                  b.edges()[static_cast<std::size_t>(i)].src);
        EXPECT_EQ(a.edges()[static_cast<std::size_t>(i)].dst,
                  b.edges()[static_cast<std::size_t>(i)].dst);
    }
}

} // namespace
} // namespace mapzero::dfg
