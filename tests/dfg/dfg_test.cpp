/** @file Unit tests for the DFG IR. */

#include <gtest/gtest.h>

#include "dfg/dfg.hpp"

namespace mapzero::dfg {
namespace {

Dfg
diamond()
{
    // a -> b, a -> c, b -> d, c -> d
    Dfg d;
    d.setName("diamond");
    const NodeId a = d.addNode(Opcode::Load, "a");
    const NodeId b = d.addNode(Opcode::Add, "b");
    const NodeId c = d.addNode(Opcode::Mul, "c");
    const NodeId e = d.addNode(Opcode::Store, "d");
    d.addEdge(a, b);
    d.addEdge(a, c);
    d.addEdge(b, e);
    d.addEdge(c, e);
    return d;
}

TEST(Dfg, CountsAndAccess)
{
    const Dfg d = diamond();
    EXPECT_EQ(d.nodeCount(), 4);
    EXPECT_EQ(d.edgeCount(), 4);
    EXPECT_EQ(d.node(0).opcode, Opcode::Load);
    EXPECT_EQ(d.node(0).name, "a");
}

TEST(Dfg, Degrees)
{
    const Dfg d = diamond();
    EXPECT_EQ(d.outDegree(0), 2);
    EXPECT_EQ(d.inDegree(0), 0);
    EXPECT_EQ(d.inDegree(3), 2);
}

TEST(Dfg, PredecessorsAndSuccessors)
{
    const Dfg d = diamond();
    const auto preds = d.predecessors(3);
    EXPECT_EQ(preds.size(), 2u);
    const auto succs = d.successors(0);
    EXPECT_EQ(succs.size(), 2u);
}

TEST(Dfg, SelfCycleDetection)
{
    Dfg d;
    const NodeId acc = d.addNode(Opcode::Add);
    d.addNode(Opcode::Store);
    d.addEdge(acc, acc, 1);
    EXPECT_TRUE(d.hasSelfCycle(0));
    EXPECT_FALSE(d.hasSelfCycle(1));
}

TEST(Dfg, DistanceZeroSelfEdgePanics)
{
    Dfg d;
    const NodeId a = d.addNode(Opcode::Add);
    EXPECT_THROW(d.addEdge(a, a, 0), std::logic_error);
}

TEST(Dfg, OutOfRangeEdgePanics)
{
    Dfg d;
    d.addNode(Opcode::Add);
    EXPECT_THROW(d.addEdge(0, 5), std::logic_error);
}

TEST(Dfg, NegativeDistancePanics)
{
    Dfg d;
    d.addNode(Opcode::Add);
    d.addNode(Opcode::Add);
    EXPECT_THROW(d.addEdge(0, 1, -1), std::logic_error);
}

TEST(Dfg, MemoryOpCount)
{
    const Dfg d = diamond();
    EXPECT_EQ(d.memoryOpCount(), 2); // one load + one store
}

TEST(Dfg, AcyclicCheckAcceptsDag)
{
    EXPECT_TRUE(diamond().isDistanceZeroAcyclic());
}

TEST(Dfg, AcyclicCheckIgnoresLoopCarriedEdges)
{
    Dfg d;
    const NodeId a = d.addNode(Opcode::Add);
    const NodeId b = d.addNode(Opcode::Add);
    d.addEdge(a, b);
    d.addEdge(b, a, 1); // back edge with distance, fine
    EXPECT_TRUE(d.isDistanceZeroAcyclic());
    EXPECT_NO_THROW(d.validate());
}

TEST(Dfg, AcyclicCheckRejectsCombinationalCycle)
{
    Dfg d;
    const NodeId a = d.addNode(Opcode::Add);
    const NodeId b = d.addNode(Opcode::Add);
    d.addEdge(a, b);
    d.addEdge(b, a); // distance-0 cycle
    EXPECT_FALSE(d.isDistanceZeroAcyclic());
    EXPECT_THROW(d.validate(), std::runtime_error);
}

TEST(Dfg, MultigraphEdgesAllowed)
{
    // Two operands from the same producer (e.g. x * x).
    Dfg d;
    const NodeId a = d.addNode(Opcode::Load);
    const NodeId b = d.addNode(Opcode::Mul);
    d.addEdge(a, b);
    d.addEdge(a, b);
    EXPECT_EQ(d.edgeCount(), 2);
    EXPECT_EQ(d.inDegree(b), 2);
    // Distinct predecessors deduplicates.
    EXPECT_EQ(d.predecessors(b).size(), 1u);
}

TEST(Opcode, ClassificationCoversAll)
{
    EXPECT_EQ(opClass(Opcode::Load), OpClass::Memory);
    EXPECT_EQ(opClass(Opcode::Store), OpClass::Memory);
    EXPECT_EQ(opClass(Opcode::And), OpClass::Logic);
    EXPECT_EQ(opClass(Opcode::Cmp), OpClass::Logic);
    EXPECT_EQ(opClass(Opcode::Add), OpClass::Arithmetic);
    EXPECT_EQ(opClass(Opcode::Mul), OpClass::Arithmetic);
}

TEST(Opcode, NameRoundTrip)
{
    for (std::int32_t i = 0; i < kOpcodeCount; ++i) {
        const auto op = static_cast<Opcode>(i);
        EXPECT_EQ(parseOpcode(opcodeName(op)), op);
    }
}

TEST(Opcode, UnknownNameIsFatal)
{
    EXPECT_THROW(parseOpcode("frobnicate"), std::runtime_error);
}

} // namespace
} // namespace mapzero::dfg
