/** @file Unit tests for DOT import/export. */

#include <gtest/gtest.h>

#include "dfg/dot.hpp"
#include "dfg/kernels.hpp"

namespace mapzero::dfg {
namespace {

TEST(Dot, ExportContainsNodesAndEdges)
{
    Dfg d;
    d.setName("tiny");
    const NodeId a = d.addNode(Opcode::Load, "in");
    const NodeId b = d.addNode(Opcode::Add);
    d.addEdge(a, b);
    const std::string text = toDot(d);
    EXPECT_NE(text.find("digraph \"tiny\""), std::string::npos);
    EXPECT_NE(text.find("n0 [opcode=load label=\"in\"]"),
              std::string::npos);
    EXPECT_NE(text.find("n0 -> n1"), std::string::npos);
}

TEST(Dot, RoundTripPreservesStructure)
{
    Dfg d;
    d.setName("rt");
    const NodeId a = d.addNode(Opcode::Load, "x");
    const NodeId b = d.addNode(Opcode::Mul);
    const NodeId c = d.addNode(Opcode::Add, "acc");
    d.addEdge(a, b);
    d.addEdge(b, c);
    d.addEdge(c, c, 1);

    const Dfg back = fromDot(toDot(d));
    EXPECT_EQ(back.name(), "rt");
    ASSERT_EQ(back.nodeCount(), d.nodeCount());
    ASSERT_EQ(back.edgeCount(), d.edgeCount());
    for (std::int32_t i = 0; i < d.nodeCount(); ++i) {
        EXPECT_EQ(back.node(i).opcode, d.node(i).opcode);
        EXPECT_EQ(back.node(i).name, d.node(i).name);
    }
    for (std::int32_t i = 0; i < d.edgeCount(); ++i) {
        EXPECT_EQ(back.edges()[static_cast<std::size_t>(i)].src,
                  d.edges()[static_cast<std::size_t>(i)].src);
        EXPECT_EQ(back.edges()[static_cast<std::size_t>(i)].dst,
                  d.edges()[static_cast<std::size_t>(i)].dst);
        EXPECT_EQ(back.edges()[static_cast<std::size_t>(i)].distance,
                  d.edges()[static_cast<std::size_t>(i)].distance);
    }
}

TEST(Dot, RoundTripEveryBenchmarkKernel)
{
    for (const auto &info : kernelTable()) {
        const Dfg d = buildKernel(info.name);
        const Dfg back = fromDot(toDot(d));
        ASSERT_EQ(back.nodeCount(), d.nodeCount()) << info.name;
        ASSERT_EQ(back.edgeCount(), d.edgeCount()) << info.name;
        for (std::int32_t v = 0; v < d.nodeCount(); ++v)
            ASSERT_EQ(back.node(v).opcode, d.node(v).opcode)
                << info.name << " node " << v;
        for (std::int32_t ei = 0; ei < d.edgeCount(); ++ei) {
            const auto &a = d.edges()[static_cast<std::size_t>(ei)];
            const auto &b = back.edges()[static_cast<std::size_t>(ei)];
            ASSERT_EQ(a.src, b.src) << info.name;
            ASSERT_EQ(a.dst, b.dst) << info.name;
            ASSERT_EQ(a.distance, b.distance) << info.name;
        }
    }
}

TEST(Dot, MissingHeaderIsFatal)
{
    EXPECT_THROW(fromDot("n0 [opcode=add];"), std::runtime_error);
}

TEST(Dot, NonContiguousIdsAreFatal)
{
    const std::string text = "digraph \"x\" {\n  n0 [opcode=add];\n"
                             "  n5 [opcode=add];\n}\n";
    EXPECT_THROW(fromDot(text), std::runtime_error);
}

TEST(Dot, HandWrittenDialect)
{
    const std::string text =
        "digraph \"hand\" {\n"
        "  n0 [opcode=load];\n"
        "  n1 [opcode=store];\n"
        "  n0 -> n1;\n"
        "}\n";
    const Dfg d = fromDot(text);
    EXPECT_EQ(d.nodeCount(), 2);
    EXPECT_EQ(d.edgeCount(), 1);
    EXPECT_EQ(d.node(1).opcode, Opcode::Store);
}

} // namespace
} // namespace mapzero::dfg
