/** @file Unit tests for the simulated-annealing mapper. */

#include <gtest/gtest.h>

#include "baselines/sa_mapper.hpp"
#include "dfg/kernels.hpp"
#include "dfg/schedule.hpp"
#include "dfg/random_gen.hpp"

namespace mapzero::baselines {
namespace {

TEST(SaMapper, MapsTinyChain)
{
    dfg::Dfg d;
    const auto a = d.addNode(dfg::Opcode::Load);
    const auto b = d.addNode(dfg::Opcode::Add);
    d.addEdge(a, b);
    SaMapper mapper;
    cgra::Architecture arch = cgra::Architecture::hrea();
    const AttemptResult r = mapper.map(d, arch, 1, Deadline(10.0));
    EXPECT_TRUE(r.success);
}

TEST(SaMapper, MapsMacKernelEventually)
{
    const dfg::Dfg d = dfg::buildKernel("mac");
    cgra::Architecture arch = cgra::Architecture::hrea();
    const std::int32_t mii = dfg::minimumIi(d, arch.peCount(),
                                            arch.memoryIssueCapacity());
    SaConfig cfg;
    cfg.seed = 3;
    SaMapper mapper(cfg);
    const AttemptResult r = mapper.map(d, arch, mii, Deadline(30.0));
    EXPECT_TRUE(r.success) << "annealings=" << r.searchOps;
}

TEST(SaMapper, ReturnsStructurallyInfeasibleFast)
{
    dfg::Dfg d;
    d.addNode(dfg::Opcode::Add);
    d.addNode(dfg::Opcode::Add);
    d.addNode(dfg::Opcode::Add);
    cgra::Architecture arch("tiny", 1, 2,
                            cgra::linkMask({cgra::Interconnect::Mesh}));
    SaMapper mapper;
    Timer t;
    const AttemptResult r = mapper.map(d, arch, 1, Deadline(10.0));
    EXPECT_FALSE(r.success);
    EXPECT_LT(t.seconds(), 1.0);
}

TEST(SaMapper, RespectsDeadline)
{
    const dfg::Dfg d = dfg::buildKernel("cap");
    cgra::Architecture arch("mesh4", 4, 4,
                            cgra::linkMask({cgra::Interconnect::Mesh}));
    SaMapper mapper;
    Timer t;
    mapper.map(d, arch, 3, Deadline(0.2));
    EXPECT_LT(t.seconds(), 5.0);
}

TEST(SaMapper, DeterministicForSeed)
{
    const dfg::Dfg d = dfg::buildKernel("sum");
    cgra::Architecture arch = cgra::Architecture::hrea();
    SaConfig cfg;
    cfg.seed = 5;
    SaMapper m1(cfg), m2(cfg);
    const AttemptResult r1 = m1.map(d, arch, 1, Deadline(20.0));
    const AttemptResult r2 = m2.map(d, arch, 1, Deadline(20.0));
    EXPECT_EQ(r1.success, r2.success);
    if (r1.success && r2.success) {
        ASSERT_EQ(r1.placements.size(), r2.placements.size());
        for (std::size_t i = 0; i < r1.placements.size(); ++i)
            EXPECT_EQ(r1.placements[i].pe, r2.placements[i].pe);
    }
}

TEST(SaMapper, PlacementsRespectCapabilities)
{
    Rng rng(9);
    dfg::RandomDfgParams params;
    params.nodes = 8;
    const dfg::Dfg d = dfg::randomDfg(params, rng);
    cgra::Architecture arch = cgra::Architecture::heterogeneous();
    const std::int32_t mii = dfg::minimumIi(d, arch.peCount(),
                                            arch.memoryIssueCapacity());
    SaMapper mapper;
    const AttemptResult r = mapper.map(d, arch, mii + 1, Deadline(10.0));
    if (r.success) {
        for (dfg::NodeId v = 0; v < d.nodeCount(); ++v)
            EXPECT_TRUE(arch.pe(r.placements[
                static_cast<std::size_t>(v)].pe)
                            .supports(d.node(v).opcode));
    }
}

} // namespace
} // namespace mapzero::baselines
