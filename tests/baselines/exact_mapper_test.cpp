/** @file Unit tests for the exact branch-and-bound mapper. */

#include <gtest/gtest.h>

#include "baselines/exact_mapper.hpp"
#include "dfg/kernels.hpp"
#include "dfg/schedule.hpp"

namespace mapzero::baselines {
namespace {

TEST(ExactMapper, MapsTinyChainAtMii)
{
    dfg::Dfg d;
    const auto a = d.addNode(dfg::Opcode::Load);
    const auto b = d.addNode(dfg::Opcode::Add);
    const auto c = d.addNode(dfg::Opcode::Store);
    d.addEdge(a, b);
    d.addEdge(b, c);

    ExactMapper mapper;
    cgra::Architecture arch = cgra::Architecture::hrea();
    const AttemptResult r = mapper.map(d, arch, 1, Deadline(10.0));
    EXPECT_TRUE(r.success);
    EXPECT_EQ(r.ii, 1);
    ASSERT_EQ(r.placements.size(), 3u);
    for (const auto &p : r.placements)
        EXPECT_TRUE(p.valid());
}

TEST(ExactMapper, MapsSumKernelOnHrea)
{
    const dfg::Dfg d = dfg::buildKernel("sum");
    cgra::Architecture arch = cgra::Architecture::hrea();
    const std::int32_t mii = dfg::minimumIi(d, arch.peCount(),
                                            arch.memoryIssueCapacity());
    ExactMapper mapper;
    const AttemptResult r = mapper.map(d, arch, mii, Deadline(30.0));
    EXPECT_TRUE(r.success) << "searchOps=" << r.searchOps;
}

TEST(ExactMapper, FailsWhenIiBelowRecMii)
{
    dfg::Dfg d;
    const auto a = d.addNode(dfg::Opcode::Add);
    const auto b = d.addNode(dfg::Opcode::Add);
    const auto c = d.addNode(dfg::Opcode::Add);
    d.addEdge(a, b);
    d.addEdge(b, c);
    d.addEdge(c, a, 1); // RecMII 3
    ExactMapper mapper;
    cgra::Architecture arch = cgra::Architecture::hrea();
    const AttemptResult r = mapper.map(d, arch, 2, Deadline(5.0));
    EXPECT_FALSE(r.success);
    EXPECT_FALSE(r.timedOut);
}

TEST(ExactMapper, ExhaustsSearchSpaceOnImpossibleCase)
{
    // 3 loads in one modulo slot on a fabric with 2 PEs: II=1 cannot
    // hold 3 simultaneous ops.
    dfg::Dfg d;
    d.addNode(dfg::Opcode::Add);
    d.addNode(dfg::Opcode::Add);
    d.addNode(dfg::Opcode::Add);
    cgra::Architecture arch("tiny", 1, 2,
                            cgra::linkMask({cgra::Interconnect::Mesh}));
    ExactMapper mapper;
    const AttemptResult r = mapper.map(d, arch, 1, Deadline(5.0));
    EXPECT_FALSE(r.success);
    EXPECT_FALSE(r.timedOut);
}

TEST(ExactMapper, RespectsDeadline)
{
    // A large kernel with an immediate deadline must abort quickly.
    const dfg::Dfg d = dfg::buildKernel("arf");
    cgra::Architecture arch = cgra::Architecture::hrea();
    ExactMapper mapper;
    Timer t;
    const AttemptResult r = mapper.map(d, arch, 4, Deadline(0.05));
    EXPECT_LT(t.seconds(), 2.0);
    if (!r.success) {
        EXPECT_TRUE(r.timedOut);
    }
}

TEST(ExactMapper, RespectsBacktrackCap)
{
    ExactMapperConfig cfg;
    cfg.maxBacktracks = 3;
    ExactMapper mapper(cfg);
    const dfg::Dfg d = dfg::buildKernel("conv2");
    cgra::Architecture arch("mesh4", 4, 4,
                            cgra::linkMask({cgra::Interconnect::Mesh}));
    const AttemptResult r = mapper.map(d, arch, 2, Deadline(5.0));
    if (!r.success) {
        EXPECT_LE(r.searchOps, 4);
    }
}

TEST(ExactMapper, CountsBacktracks)
{
    // Sparse mesh forces at least some failed placements on conv2.
    const dfg::Dfg d = dfg::buildKernel("conv2");
    cgra::Architecture arch("mesh4", 4, 4,
                            cgra::linkMask({cgra::Interconnect::Mesh}));
    const std::int32_t mii = dfg::minimumIi(d, arch.peCount(),
                                            arch.memoryIssueCapacity());
    ExactMapper mapper;
    const AttemptResult r = mapper.map(d, arch, mii + 1, Deadline(20.0));
    EXPECT_GE(r.searchOps, 0);
    if (r.success) {
        EXPECT_EQ(r.placements.size(),
                  static_cast<std::size_t>(d.nodeCount()));
    }
}

} // namespace
} // namespace mapzero::baselines
