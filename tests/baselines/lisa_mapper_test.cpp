/** @file Unit tests for the LISA-style label-guided mapper. */

#include <gtest/gtest.h>

#include "baselines/lisa_mapper.hpp"
#include "dfg/kernels.hpp"
#include "dfg/schedule.hpp"

namespace mapzero::baselines {
namespace {

TEST(LisaLabels, SlackMatchesSchedule)
{
    dfg::Dfg d;
    const auto a = d.addNode(dfg::Opcode::Load);
    const auto b = d.addNode(dfg::Opcode::Add);
    const auto c = d.addNode(dfg::Opcode::Add);
    d.addEdge(a, b);
    d.addEdge(a, c);
    d.addEdge(b, c);
    const auto schedule = *dfg::moduloSchedule(d, 2);
    const LisaLabels labels = computeLisaLabels(d, schedule);
    ASSERT_EQ(labels.slack.size(), 3u);
    // a->b: 1 cycle; a->c: 2 cycles (c after b); b->c: 1 cycle.
    EXPECT_EQ(labels.slack[0], 1);
    EXPECT_EQ(labels.slack[1], 2);
    EXPECT_EQ(labels.slack[2], 1);
}

TEST(LisaLabels, OrderIsPermutation)
{
    const dfg::Dfg d = dfg::buildKernel("mac");
    const auto schedule = *dfg::moduloSchedule(d, 1);
    const LisaLabels labels = computeLisaLabels(d, schedule);
    std::vector<bool> seen(static_cast<std::size_t>(d.nodeCount()),
                           false);
    for (std::int32_t o : labels.order) {
        ASSERT_GE(o, 0);
        ASSERT_LT(o, d.nodeCount());
        EXPECT_FALSE(seen[static_cast<std::size_t>(o)]);
        seen[static_cast<std::size_t>(o)] = true;
    }
}

TEST(LisaMapper, MapsTinyKernelOnHycube)
{
    const dfg::Dfg d = dfg::buildKernel("sum");
    cgra::Architecture arch = cgra::Architecture::hycube();
    const std::int32_t mii = dfg::minimumIi(d, arch.peCount(),
                                            arch.memoryIssueCapacity());
    SaConfig cfg;
    cfg.seed = 2;
    LisaMapper mapper(cfg);
    const AttemptResult r = mapper.map(d, arch, mii, Deadline(30.0));
    EXPECT_TRUE(r.success) << "annealings=" << r.searchOps;
}

TEST(LisaMapper, StrugglesOnPlainMeshWhereSaSucceeds)
{
    // The paper reports LISA "is only applicable to single-cycle
    // multi-hop interconnect architectures ... and fails on other
    // topologies" (§4.2). mac2 at its MII on a plain 4x4 mesh is such a
    // differential case: plain SA (full routability evaluation) finds a
    // mapping while the label-guided search, whose labels assume
    // crossbar reachability, does not.
    const dfg::Dfg d = dfg::buildKernel("mac2");
    cgra::Architecture arch("mesh4", 4, 4,
                            cgra::linkMask({cgra::Interconnect::Mesh}));
    const std::int32_t mii = dfg::minimumIi(d, arch.peCount(),
                                            arch.memoryIssueCapacity());
    LisaMapper lisa;
    EXPECT_FALSE(lisa.map(d, arch, mii, Deadline(3.0)).success);
    SaMapper sa;
    EXPECT_TRUE(sa.map(d, arch, mii, Deadline(10.0)).success);
}

TEST(LisaMapper, RespectsDeadline)
{
    const dfg::Dfg d = dfg::buildKernel("cap");
    cgra::Architecture arch = cgra::Architecture::hycube();
    LisaMapper mapper;
    Timer t;
    mapper.map(d, arch, 3, Deadline(0.2));
    EXPECT_LT(t.seconds(), 5.0);
}

TEST(LisaMapper, NameDiffersFromSa)
{
    LisaMapper lisa;
    SaMapper sa;
    EXPECT_EQ(lisa.name(), "LISA");
    EXPECT_EQ(sa.name(), "SA");
}

} // namespace
} // namespace mapzero::baselines
