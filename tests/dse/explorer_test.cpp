/** @file Unit tests for the design-space explorer (§4.8). */

#include <gtest/gtest.h>

#include "dfg/kernels.hpp"
#include "dse/explorer.hpp"

namespace mapzero::dse {
namespace {

std::vector<dfg::Dfg>
tinySet()
{
    std::vector<dfg::Dfg> kernels;
    kernels.push_back(dfg::buildKernel("sum"));
    kernels.push_back(dfg::buildKernel("mac"));
    return kernels;
}

DseConfig
fastConfig()
{
    DseConfig cfg;
    cfg.compileTimeLimit = 1.0;
    cfg.steps = 4;
    cfg.restarts = 0;
    return cfg;
}

TEST(DesignPoint, BuildMaterializesKnobs)
{
    DesignPoint p;
    p.rows = 3;
    p.cols = 5;
    p.oneHop = true;
    p.memColumns = 2;
    const cgra::Architecture arch = p.build();
    EXPECT_EQ(arch.peCount(), 15);
    EXPECT_TRUE(arch.hasLink(cgra::Interconnect::OneHop));
    EXPECT_FALSE(arch.hasLink(cgra::Interconnect::Diagonal));
    EXPECT_EQ(arch.memoryPeCount(), 6); // 2 columns x 3 rows
    EXPECT_NE(p.describe().find("3x5"), std::string::npos);
}

TEST(DseExplorer, EvaluateChargesAreaAndPerformance)
{
    const auto kernels = tinySet();
    DseExplorer explorer(kernels, fastConfig());

    DesignPoint small;
    small.rows = 4;
    small.cols = 4;
    small.memColumns = 4;
    DesignPoint large = small;
    large.rows = 8;
    large.cols = 8;
    large.memColumns = 8;

    const auto eval_small = explorer.evaluate(small);
    const auto eval_large = explorer.evaluate(large);
    ASSERT_EQ(eval_small.achievedIi.size(), kernels.size());
    // Both fabrics map the tiny kernels at the same II, so the bigger
    // fabric must lose on area.
    EXPECT_LT(eval_small.cost, eval_large.cost);
}

TEST(DseExplorer, MemorylessFabricIsPenalized)
{
    const auto kernels = tinySet();
    DseExplorer explorer(kernels, fastConfig());
    DesignPoint p;
    p.memColumns = 0; // would violate the clamp in neighbors(), but
                      // evaluate() must still survive a direct call
    const auto eval = explorer.evaluate(p);
    EXPECT_GE(eval.cost, 1e9);
}

TEST(DseExplorer, NeighborsCoverAllMutationKinds)
{
    DseExplorer explorer(tinySet(), fastConfig());
    DesignPoint p;
    p.rows = 4;
    p.cols = 4;
    p.memColumns = 2;
    const auto nbrs = explorer.neighbors(p);
    bool grew = false, shrank = false, link_toggle = false,
         mem_change = false;
    for (const auto &n : nbrs) {
        grew = grew || n.rows > p.rows || n.cols > p.cols;
        shrank = shrank || n.rows < p.rows || n.cols < p.cols;
        link_toggle = link_toggle || n.oneHop != p.oneHop ||
                      n.diagonal != p.diagonal ||
                      n.toroidal != p.toroidal;
        mem_change = mem_change || n.memColumns != p.memColumns;
    }
    EXPECT_TRUE(grew);
    EXPECT_TRUE(shrank);
    EXPECT_TRUE(link_toggle);
    EXPECT_TRUE(mem_change);
}

TEST(DseExplorer, NeighborsRespectBounds)
{
    DseConfig cfg = fastConfig();
    cfg.minDim = 2;
    cfg.maxDim = 4;
    DseExplorer explorer(tinySet(), cfg);
    DesignPoint p;
    p.rows = 4;
    p.cols = 2;
    for (const auto &n : explorer.neighbors(p)) {
        EXPECT_GE(n.rows, 2);
        EXPECT_LE(n.rows, 4);
        EXPECT_GE(n.cols, 2);
        EXPECT_LE(n.cols, 4);
        EXPECT_GE(n.memColumns, 1);
        EXPECT_LE(n.memColumns, n.cols);
    }
}

TEST(DseExplorer, ExploreNeverReturnsWorseThanStart)
{
    const auto kernels = tinySet();
    DseExplorer explorer(kernels, fastConfig());
    DesignPoint start;
    start.rows = 6;
    start.cols = 6;
    start.memColumns = 6;
    const auto start_eval = explorer.evaluate(start);
    const DseResult result = explorer.explore(start);
    EXPECT_LE(result.best.cost, start_eval.cost);
    EXPECT_FALSE(result.trace.empty());
}

TEST(DseExplorer, ShrinksOversizedFabricForTinyKernels)
{
    // With only "sum" and "mac" to run, an 8x8 fabric is wasteful;
    // exploration should end on something smaller.
    const auto kernels = tinySet();
    DseConfig cfg = fastConfig();
    cfg.steps = 12;
    cfg.restarts = 1;
    DseExplorer explorer(kernels, cfg);
    DesignPoint start;
    start.rows = 8;
    start.cols = 8;
    start.memColumns = 8;
    const DseResult result = explorer.explore(start);
    EXPECT_LT(result.best.point.rows * result.best.point.cols, 64);
}

TEST(DseExplorer, EmptyKernelSetIsFatal)
{
    const std::vector<dfg::Dfg> none;
    EXPECT_THROW(DseExplorer(none, fastConfig()), std::runtime_error);
}

} // namespace
} // namespace mapzero::dse
