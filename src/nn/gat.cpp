#include "nn/gat.hpp"

#include <cmath>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace mapzero::nn {

GatLayer::GatLayer(std::size_t in, std::size_t out_per_head,
                   std::size_t heads, float leaky_slope, Rng &rng)
    : in_(in), outPerHead_(out_per_head), heads_(heads),
      leakySlope_(leaky_slope)
{
    if (heads == 0 || out_per_head == 0)
        panic("GatLayer requires at least one head and one feature");
    const float w_bound = std::sqrt(6.0f / static_cast<float>(in));
    const float a_bound =
        std::sqrt(6.0f / static_cast<float>(out_per_head));
    for (std::size_t k = 0; k < heads; ++k) {
        weights_.push_back(registerParameter(
            cat("w", k),
            Tensor::uniform(in, out_per_head, -w_bound, w_bound, rng)));
        attnSrc_.push_back(registerParameter(
            cat("a_src", k),
            Tensor::uniform(out_per_head, 1, -a_bound, a_bound, rng)));
        attnDst_.push_back(registerParameter(
            cat("a_dst", k),
            Tensor::uniform(out_per_head, 1, -a_bound, a_bound, rng)));
    }
}

void
GatLayer::prepareEdges(const EdgeList &edges, std::int32_t n_nodes,
                       std::vector<std::int32_t> &src,
                       std::vector<std::int32_t> &dst)
{
    // Self-loops guarantee a non-empty in-neighborhood for every vertex.
    src.clear();
    dst.clear();
    src.reserve(edges.size() + n_nodes);
    dst.reserve(edges.size() + n_nodes);
    for (const auto &[s, d] : edges) {
        if (s < 0 || s >= n_nodes || d < 0 || d >= n_nodes)
            panic(cat("GatLayer edge (", s, ",", d, ") out of range ",
                      n_nodes));
        src.push_back(s);
        dst.push_back(d);
    }
    for (std::int32_t v = 0; v < n_nodes; ++v) {
        src.push_back(v);
        dst.push_back(v);
    }
}

Value
GatLayer::forward(const Value &feats, const EdgeList &edges,
                  Activation activation) const
{
    std::vector<std::int32_t> src, dst;
    prepareEdges(edges, static_cast<std::int32_t>(feats.tensor().rows()),
                 src, dst);
    return forwardPrepared(feats, src, dst, activation);
}

Value
GatLayer::forwardPrepared(const Value &feats,
                          const std::vector<std::int32_t> &src,
                          const std::vector<std::int32_t> &dst,
                          Activation activation) const
{
    const auto n_nodes =
        static_cast<std::int32_t>(feats.tensor().rows());
    if (feats.tensor().cols() != in_)
        panic(cat("GatLayer fed ", feats.tensor().cols(),
                  " features, expected ", in_));

    if (InferenceGuard::active()) {
        // No-grad fast path: the whole per-head edge chain in one fused
        // routine (bit-identical to the composed ops below, which the
        // tape path keeps because they carry the gradients).
        auto [scores, values] = gatEdgeTensorsInference(
            feats, weights_, attnSrc_, attnDst_, src, dst, leakySlope_);
        Value alpha = segmentSoftmax(scores, dst, n_nodes);
        Value aggregated =
            attentionAggregate(values, alpha, dst, n_nodes);
        return activate(aggregated, activation);
    }

    std::vector<Value> head_scores;
    std::vector<Value> head_values;
    head_scores.reserve(heads_);
    head_values.reserve(heads_);
    for (std::size_t k = 0; k < heads_; ++k) {
        Value wh = matmul(feats, weights_[k]);           // (N x F)
        Value s_src = matmul(wh, attnSrc_[k]);           // (N x 1)
        Value s_dst = matmul(wh, attnDst_[k]);           // (N x 1)
        // Fused gather+add+LeakyReLU (Eq. 7). LeakyReLU is pointwise,
        // so applying it per head before the concat is bit-identical
        // to the historical leakyRelu(concatCols(...)) ordering.
        head_scores.push_back(
            edgeScores(s_dst, s_src, dst, src, leakySlope_)); // (E x 1)
        head_values.push_back(gatherRows(wh, src));      // (E x F)
    }

    Value scores = concatCols(head_scores);
    Value alpha = segmentSoftmax(scores, dst, n_nodes);  // (E x K)
    Value values = concatCols(head_values);              // (E x K*F)
    Value aggregated = attentionAggregate(values, alpha, dst, n_nodes);
    return activate(aggregated, activation);
}

GatEncoder::GatEncoder(std::size_t in, std::size_t hidden_per_head,
                       std::size_t heads, std::size_t layers, Rng &rng)
{
    if (layers == 0)
        panic("GatEncoder requires at least one layer");
    std::size_t width = in;
    for (std::size_t l = 0; l < layers; ++l) {
        layers_.push_back(std::make_unique<GatLayer>(
            width, hidden_per_head, heads, 0.2f, rng));
        registerChild(cat("gat", l), layers_.back().get());
        width = layers_.back()->outWidth();
    }
}

Value
GatEncoder::encodeNodes(const Value &feats, const EdgeList &edges) const
{
    // All layers share a vertex set, so the validated, self-loop-augmented
    // endpoint arrays are built once per pass rather than once per layer.
    std::vector<std::int32_t> src, dst;
    GatLayer::prepareEdges(
        edges, static_cast<std::int32_t>(feats.tensor().rows()), src, dst);
    Value h = feats;
    for (const auto &layer : layers_)
        h = layer->forwardPrepared(h, src, dst);
    return h;
}

Value
GatEncoder::encodeGraph(const Value &feats, const EdgeList &edges) const
{
    return meanRows(encodeNodes(feats, edges));
}

} // namespace mapzero::nn
