/**
 * @file
 * Graph Attention Network layer and encoder (Velickovic et al. 2017),
 * as used by MapZero to embed both the DFG and the CGRA hardware graph
 * (paper §3.2.3, Eq. 5-8).
 */

#ifndef MAPZERO_NN_GAT_HPP
#define MAPZERO_NN_GAT_HPP

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "nn/layers.hpp"
#include "nn/module.hpp"

namespace mapzero::nn {

/** Directed edge list; pair is (src, dst). */
using EdgeList = std::vector<std::pair<std::int32_t, std::int32_t>>;

/**
 * One multi-head graph-attention layer.
 *
 * Per head k: scores e_uv = LeakyReLU(a_k . [W_k h_u || W_k h_v]) are
 * normalized over the in-neighborhood of each vertex (Eq. 6) and used to
 * aggregate transformed neighbor features (Eq. 8). Head outputs are
 * concatenated, so the layer output width is heads * outPerHead.
 *
 * Self-loops are added internally so every vertex attends at least to
 * itself (isolated DFG nodes and unconnected PEs still get an embedding).
 */
class GatLayer : public Module
{
  public:
    /**
     * @param in input feature width
     * @param out_per_head per-head output width
     * @param heads number of independent attention heads (K in Eq. 8)
     * @param leaky_slope LeakyReLU slope c of Eq. 7
     * @param rng weight-init randomness
     */
    GatLayer(std::size_t in, std::size_t out_per_head, std::size_t heads,
             float leaky_slope, Rng &rng);

    /**
     * Forward over a graph.
     *
     * @param feats (N x in) node features
     * @param edges directed (src, dst) pairs; dst aggregates from src
     * @param activation output nonlinearity (sigma of Eq. 8)
     * @return (N x heads*outPerHead) node embeddings
     */
    Value forward(const Value &feats, const EdgeList &edges,
                  Activation activation = Activation::ReLU) const;

    /**
     * forward() on pre-validated, self-loop-augmented endpoint arrays —
     * lets a stacked encoder build them once per pass instead of once
     * per layer. @p src and @p dst must be the same length, in range,
     * and include a (v, v) loop for every vertex.
     */
    Value forwardPrepared(const Value &feats,
                          const std::vector<std::int32_t> &src,
                          const std::vector<std::int32_t> &dst,
                          Activation activation = Activation::ReLU) const;

    /**
     * Expand @p edges into the endpoint arrays forwardPrepared() wants:
     * validated against @p n_nodes and suffixed with per-vertex
     * self-loops.
     */
    static void prepareEdges(const EdgeList &edges, std::int32_t n_nodes,
                             std::vector<std::int32_t> &src,
                             std::vector<std::int32_t> &dst);

    std::size_t outWidth() const { return heads_ * outPerHead_; }

  private:
    std::size_t in_;
    std::size_t outPerHead_;
    std::size_t heads_;
    float leakySlope_;
    std::vector<Value> weights_;  // per head: (in x outPerHead)
    std::vector<Value> attnSrc_;  // per head: (outPerHead x 1)
    std::vector<Value> attnDst_;  // per head: (outPerHead x 1)
};

/**
 * Stacked GAT encoder with mean pooling (paper: "after multiple layers,
 * the learned node embeddings are summarized by mean pooling").
 */
class GatEncoder : public Module
{
  public:
    /**
     * @param in input feature width
     * @param hidden_per_head per-head width of every layer
     * @param heads attention heads per layer
     * @param layers layer count (>= 1)
     */
    GatEncoder(std::size_t in, std::size_t hidden_per_head,
               std::size_t heads, std::size_t layers, Rng &rng);

    /** Per-node embeddings, (N x heads*hiddenPerHead). */
    Value encodeNodes(const Value &feats, const EdgeList &edges) const;

    /** Mean-pooled graph embedding, (1 x heads*hiddenPerHead). */
    Value encodeGraph(const Value &feats, const EdgeList &edges) const;

    std::size_t outWidth() const { return layers_.back()->outWidth(); }

  private:
    std::vector<std::unique_ptr<GatLayer>> layers_;
};

} // namespace mapzero::nn

#endif // MAPZERO_NN_GAT_HPP
