#include "nn/tensor.hpp"

#include <cmath>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace mapzero::nn {

Tensor::Tensor()
    : rank_(0), rows_(1), cols_(1), data_(1, 0.0f)
{}

Tensor::Tensor(float scalar)
    : rank_(0), rows_(1), cols_(1), data_(1, scalar)
{}

Tensor::Tensor(std::vector<float> values)
    : rank_(1), rows_(1), cols_(values.size()), data_(std::move(values))
{}

Tensor::Tensor(std::size_t rows, std::size_t cols)
    : rank_(2), rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
{}

Tensor::Tensor(std::size_t rows, std::size_t cols, std::vector<float> values)
    : rank_(2), rows_(rows), cols_(cols), data_(std::move(values))
{
    if (data_.size() != rows * cols)
        panic(cat("Tensor init size mismatch: ", data_.size(), " vs ",
                  rows, "x", cols));
}

Tensor
Tensor::zerosLike(const Tensor &like)
{
    Tensor t = like;
    t.fill(0.0f);
    return t;
}

Tensor
Tensor::unallocated()
{
    return Tensor(UnallocatedTag{});
}

Tensor
Tensor::withShapeOf(const Tensor &like, std::vector<float> data)
{
    if (data.size() != like.size())
        panic(cat("withShapeOf size mismatch: ", data.size(), " vs ",
                  like.shapeString()));
    Tensor t;
    t.rank_ = like.rank_;
    t.rows_ = like.rows_;
    t.cols_ = like.cols_;
    t.data_ = std::move(data);
    return t;
}

Tensor
Tensor::full(std::size_t rows, std::size_t cols, float value)
{
    Tensor t(rows, cols);
    t.fill(value);
    return t;
}

Tensor
Tensor::uniform(std::size_t rows, std::size_t cols, float lo, float hi,
                Rng &rng)
{
    Tensor t(rows, cols);
    for (auto &x : t.data_)
        x = static_cast<float>(rng.uniformReal(lo, hi));
    return t;
}

Tensor
Tensor::normal(std::size_t rows, std::size_t cols, float stddev, Rng &rng)
{
    Tensor t(rows, cols);
    for (auto &x : t.data_)
        x = static_cast<float>(rng.normal(0.0, stddev));
    return t;
}

bool
Tensor::sameShape(const Tensor &other) const
{
    return rank_ == other.rank_ && rows_ == other.rows_ &&
           cols_ == other.cols_;
}

float
Tensor::at(std::size_t r, std::size_t c) const
{
    return data_[r * cols_ + c];
}

float &
Tensor::at(std::size_t r, std::size_t c)
{
    return data_[r * cols_ + c];
}

float
Tensor::item() const
{
    if (data_.size() != 1)
        panic(cat("item() on tensor of size ", data_.size()));
    return data_[0];
}

void
Tensor::fill(float value)
{
    for (auto &x : data_)
        x = value;
}

void
Tensor::addInPlace(const Tensor &other)
{
    if (!sameShape(other))
        panic(cat("addInPlace shape mismatch: ", shapeString(), " vs ",
                  other.shapeString()));
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
}

void
Tensor::scaleInPlace(float factor)
{
    for (auto &x : data_)
        x *= factor;
}

float
Tensor::sum() const
{
    float acc = 0.0f;
    for (float x : data_)
        acc += x;
    return acc;
}

float
Tensor::norm() const
{
    double acc = 0.0;
    for (float x : data_)
        acc += static_cast<double>(x) * x;
    return static_cast<float>(std::sqrt(acc));
}

TensorArena &
TensorArena::thisThread()
{
    static thread_local TensorArena arena;
    return arena;
}

std::vector<float>
TensorArena::acquire(std::size_t size, bool zeroed)
{
    std::vector<float> buffer;
    if (!pool_.empty()) {
        buffer = std::move(pool_.back());
        pool_.pop_back();
        if (buffer.capacity() >= size)
            ++reuses_;
        else
            ++heapAllocations_;
    } else {
        ++heapAllocations_;
    }
    if (zeroed)
        buffer.assign(size, 0.0f);
    else
        buffer.resize(size);
    return buffer;
}

void
TensorArena::release(std::vector<float> &&buffer)
{
    if (pool_.size() < kMaxPooledBuffers)
        pool_.push_back(std::move(buffer));
}

std::string
Tensor::shapeString() const
{
    switch (rank_) {
      case 0: return "[scalar]";
      case 1: return cat("[", cols_, "]");
      default: return cat("[", rows_, "x", cols_, "]");
    }
}

} // namespace mapzero::nn
