#include "nn/module.hpp"

namespace mapzero::nn {

std::vector<Value>
Module::parameters() const
{
    std::vector<Value> out;
    for (const auto &[name, p] : namedParameters())
        out.push_back(p);
    return out;
}

std::vector<std::pair<std::string, Value>>
Module::namedParameters() const
{
    std::vector<std::pair<std::string, Value>> out;
    for (const auto &[name, p] : params_)
        out.emplace_back(name, p);
    for (const auto &[prefix, child] : children_) {
        for (const auto &[name, p] : child->namedParameters())
            out.emplace_back(prefix + "." + name, p);
    }
    return out;
}

void
Module::zeroGrad()
{
    for (auto &p : parameters()) {
        auto node = p.node();
        node->grad = Tensor::zerosLike(node->value);
        node->gradReady = true;
    }
}

std::size_t
Module::parameterCount() const
{
    std::size_t n = 0;
    for (const auto &p : parameters())
        n += p.tensor().size();
    return n;
}

Value
Module::registerParameter(const std::string &name, Tensor init)
{
    Value v = Value::parameter(std::move(init));
    params_.emplace_back(name, v);
    return v;
}

void
Module::registerChild(const std::string &name, Module *child)
{
    children_.emplace_back(name, child);
}

} // namespace mapzero::nn
