/**
 * @file
 * Dense layers: Linear, and the MLP stacks used in MapZero's prediction
 * network (Fig. 5 of the paper labels the FC/MLP output dimensions).
 */

#ifndef MAPZERO_NN_LAYERS_HPP
#define MAPZERO_NN_LAYERS_HPP

#include <memory>
#include <vector>

#include "nn/module.hpp"

namespace mapzero { class Rng; }

namespace mapzero::nn {

/** Pointwise activation selector for MLP hidden layers. */
enum class Activation { None, ReLU, LeakyReLU, Tanh };

/** Apply an activation to a value. */
Value activate(const Value &x, Activation activation);

/** Fully connected layer y = x W + b with Kaiming-uniform init. */
class Linear : public Module
{
  public:
    /**
     * @param in input feature width
     * @param out output feature width
     * @param rng weight-init randomness
     */
    Linear(std::size_t in, std::size_t out, Rng &rng);

    /** Forward over a (batch x in) matrix. */
    Value forward(const Value &x) const;

    /** forward() with a fused ReLU (one op instead of three). */
    Value forwardRelu(const Value &x) const;

    std::size_t inFeatures() const { return in_; }
    std::size_t outFeatures() const { return out_; }

  private:
    std::size_t in_;
    std::size_t out_;
    Value weight_; // (in x out)
    Value bias_;   // (1 x out)
};

/**
 * Multilayer perceptron: Linear layers with an activation between them
 * (and optionally after the last layer).
 */
class Mlp : public Module
{
  public:
    /**
     * @param dims layer widths, e.g. {128, 64, 16}: two Linear layers
     * @param hidden activation between layers
     * @param final activation after the last layer (None for heads)
     */
    Mlp(const std::vector<std::size_t> &dims, Activation hidden,
        Activation final, Rng &rng);

    Value forward(const Value &x) const;

    const std::vector<std::size_t> &dims() const { return dims_; }

  private:
    std::vector<std::size_t> dims_;
    Activation hidden_;
    Activation final_;
    std::vector<std::unique_ptr<Linear>> layers_;
};

} // namespace mapzero::nn

#endif // MAPZERO_NN_LAYERS_HPP
