/**
 * @file
 * Optimizers (SGD with momentum, Adam), global-norm gradient clipping
 * (Algorithm 1 of the paper clips gradients "to avoid gradient explosion"),
 * and learning-rate schedules (the paper's Fig. 12(f) shows a warmup +
 * decay schedule).
 */

#ifndef MAPZERO_NN_OPTIM_HPP
#define MAPZERO_NN_OPTIM_HPP

#include <cstddef>
#include <vector>

#include "nn/autograd.hpp"

namespace mapzero::nn {

/** Scale all gradients so their global L2 norm is at most max_norm. */
float clipGradNorm(const std::vector<Value> &params, float max_norm);

/** Optimizer interface over a fixed parameter set. */
class Optimizer
{
  public:
    explicit Optimizer(std::vector<Value> params, float lr);
    virtual ~Optimizer() = default;

    /** Apply one update from the accumulated gradients. */
    virtual void step() = 0;

    /** Reset all parameter gradients to zero. */
    void zeroGrad();

    float learningRate() const { return lr_; }
    void setLearningRate(float lr) { lr_ = lr; }

  protected:
    std::vector<Value> params_;
    float lr_;
};

/** Stochastic gradient descent with classical momentum. */
class Sgd : public Optimizer
{
  public:
    Sgd(std::vector<Value> params, float lr, float momentum = 0.0f);

    void step() override;

  private:
    float momentum_;
    std::vector<Tensor> velocity_;
};

/**
 * Adam's complete mutable state: the bias-correction step count and the
 * first/second moment estimates, in parameter order. Checkpoints carry
 * this so a resumed run continues the exact update trajectory (restarting
 * with zeroed moments silently re-warms the optimizer).
 */
struct AdamState {
    std::size_t step = 0;
    std::vector<Tensor> firstMoments;
    std::vector<Tensor> secondMoments;
};

/** Adam (Kingma & Ba 2015) with bias correction. */
class Adam : public Optimizer
{
  public:
    Adam(std::vector<Value> params, float lr, float beta1 = 0.9f,
         float beta2 = 0.999f, float eps = 1e-8f);

    void step() override;

    /** Snapshot the step count and moment estimates. */
    AdamState exportState() const;

    /**
     * Restore a snapshot; fatal() when the moment shapes do not match
     * this optimizer's parameters (checkpoint for a different model).
     */
    void importState(const AdamState &state);

    /** Optimizer steps taken so far (drives bias correction). */
    std::size_t stepCount() const { return t_; }

  private:
    float beta1_;
    float beta2_;
    float eps_;
    std::size_t t_ = 0;
    std::vector<Tensor> m_;
    std::vector<Tensor> v_;
};

/**
 * Learning-rate schedule: linear warmup to a peak followed by exponential
 * decay toward a floor, reproducing the shape of the paper's Fig. 12(f).
 */
class WarmupDecaySchedule
{
  public:
    /**
     * @param peak_lr learning rate at the end of warmup
     * @param warmup_steps steps of linear ramp from ~0 to peak
     * @param decay multiplicative decay per step after warmup (< 1)
     * @param floor_lr lower bound after decay
     */
    WarmupDecaySchedule(float peak_lr, std::size_t warmup_steps,
                        float decay, float floor_lr);

    /** Learning rate for 0-based step @p step. */
    float at(std::size_t step) const;

    /** Advance the internal step counter and update @p opt. */
    void apply(Optimizer &opt);

    std::size_t step() const { return step_; }

    /** Reposition the schedule (checkpoint resume). */
    void setStep(std::size_t step) { step_ = step; }

  private:
    float peakLr_;
    std::size_t warmupSteps_;
    float decay_;
    float floorLr_;
    std::size_t step_ = 0;
};

} // namespace mapzero::nn

#endif // MAPZERO_NN_OPTIM_HPP
