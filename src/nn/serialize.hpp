/**
 * @file
 * Checkpointing: the MZNN container (version 2) used by every durable
 * artifact in the repo — weights-only module checkpoints (paper §3.6.2
 * relies on a pre-trained network for fast online mapping) and the full
 * trainer checkpoints that make long curriculum runs crash-safe.
 *
 * Container layout (all little-endian, parsed strictly from memory):
 *
 *   u32 magic "MZNN" | u32 version | u32 sectionCount
 *   per section: string name | u64 payloadSize | payload bytes
 *   u32 CRC-32 of every preceding byte
 *
 * The CRC footer is verified before any section is parsed, so a
 * truncated or bit-flipped file is rejected as a whole — a load either
 * succeeds completely or mutates nothing. File writes go through a
 * temp-file + atomic-rename so a crash mid-write can never leave a
 * half-written checkpoint under the real name.
 */

#ifndef MAPZERO_NN_SERIALIZE_HPP
#define MAPZERO_NN_SERIALIZE_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "nn/module.hpp"

namespace mapzero::nn {

/** Current MZNN container version (v1 was the unframed weights dump). */
constexpr std::uint32_t kCheckpointVersion = 2;

/** Little-endian append-only byte sink for section payloads. */
class ByteWriter
{
  public:
    void u8(std::uint8_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i32(std::int32_t v);
    void f32(float v);
    void f64(double v);
    void bytes(const void *data, std::size_t size);
    void str(const std::string &s);
    /** rank | rows | cols | row-major floats. */
    void tensor(const Tensor &t);

    const std::string &buffer() const { return buf_; }
    std::string take() { return std::move(buf_); }

  private:
    std::string buf_;
};

/**
 * Bounds-checked cursor over an in-memory payload. Reading past the end
 * raises fatal() naming @p context, so corrupt framing surfaces as a
 * clean error instead of garbage values.
 */
class ByteReader
{
  public:
    ByteReader(std::string_view bytes, std::string context);

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int32_t i32();
    float f32();
    double f64();
    void bytes(void *out, std::size_t size);
    std::string str();
    /** Rebuild a tensor written by ByteWriter::tensor. */
    Tensor tensor();
    /** Read tensor data into @p into; fatal on any shape mismatch. */
    void tensorInto(Tensor &into, const std::string &what);

    /** Advance the cursor without reading (fatal past the end). */
    void skip(std::size_t size);

    std::size_t pos() const { return pos_; }
    std::size_t remaining() const { return bytes_.size() - pos_; }
    /** fatal() when trailing bytes remain (framing error). */
    void expectEnd() const;

  private:
    std::string_view bytes_;
    std::size_t pos_ = 0;
    std::string context_;
};

/** Assembles an MZNN v2 container from named section payloads. */
class CheckpointWriter
{
  public:
    /** Append a section (names must be unique; order is preserved). */
    void addSection(const std::string &name, std::string payload);

    /** The complete framed container, CRC footer included. */
    std::string finish() const;

    /**
     * Write the container to @p path via "<path>.tmp" + atomic rename.
     * Readers never observe a partial file; a crash leaves at worst a
     * stale .tmp next to the previous (still valid) checkpoint.
     */
    void writeFile(const std::string &path) const;

  private:
    std::vector<std::pair<std::string, std::string>> sections_;
};

/**
 * Parses and validates a container: magic, version, CRC footer, and
 * section framing are all checked up front (fatal() on any defect), so
 * a constructed reader only hands out intact payloads.
 */
class CheckpointReader
{
  public:
    /** @param context name used in error messages (e.g. the file path) */
    explicit CheckpointReader(std::string bytes,
                              std::string context = "checkpoint");

    /** Read and validate @p path in one go. */
    static CheckpointReader fromFile(const std::string &path);

    bool hasSection(const std::string &name) const;

    /** Payload of @p name; fatal() when the section is missing. */
    std::string_view section(const std::string &name) const;

    const std::string &context() const { return context_; }

  private:
    std::string bytes_;
    std::string context_;
    std::vector<std::pair<std::string, std::string_view>> sections_;
};

/** Serialize all named parameters of @p module to a section payload. */
std::string moduleToBytes(const Module &module);

/**
 * Load parameters from a payload produced by moduleToBytes.
 *
 * Validates every name and shape against @p module before writing any
 * tensor, so a mismatched checkpoint (different architecture) raises
 * fatal() with the module left untouched.
 */
void moduleFromBytes(Module &module, std::string_view payload,
                     const std::string &context);

/** Write a weights-only container ("module" section) to @p os. */
void saveModule(const Module &module, std::ostream &os);

/** Write a weights-only container to @p path atomically. */
void saveModule(const Module &module, const std::string &path);

/**
 * Load parameters into @p module from a weights-only container.
 *
 * The stream must contain exactly the module's parameter names and shapes;
 * mismatches raise fatal() since a checkpoint for a different architecture
 * is a user configuration error.
 */
void loadModule(Module &module, std::istream &is);

/** Load parameters from @p path. */
void loadModule(Module &module, const std::string &path);

} // namespace mapzero::nn

#endif // MAPZERO_NN_SERIALIZE_HPP
