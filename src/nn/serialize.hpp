/**
 * @file
 * Checkpointing: write/read every named parameter of a Module to a simple
 * binary container so a pre-trained agent can be reused at inference time
 * (paper §3.6.2 relies on a pre-trained network for fast online mapping).
 */

#ifndef MAPZERO_NN_SERIALIZE_HPP
#define MAPZERO_NN_SERIALIZE_HPP

#include <iosfwd>
#include <string>

#include "nn/module.hpp"

namespace mapzero::nn {

/** Write all named parameters of @p module to @p os. */
void saveModule(const Module &module, std::ostream &os);

/** Write all named parameters of @p module to @p path (throws on I/O error). */
void saveModule(const Module &module, const std::string &path);

/**
 * Load parameters into @p module.
 *
 * The stream must contain exactly the module's parameter names and shapes;
 * mismatches raise fatal() since a checkpoint for a different architecture
 * is a user configuration error.
 */
void loadModule(Module &module, std::istream &is);

/** Load parameters from @p path. */
void loadModule(Module &module, const std::string &path);

} // namespace mapzero::nn

#endif // MAPZERO_NN_SERIALIZE_HPP
