#include "nn/optim.hpp"

#include <cmath>

#include "common/log.hpp"

namespace mapzero::nn {

float
clipGradNorm(const std::vector<Value> &params, float max_norm)
{
    double total = 0.0;
    for (const auto &p : params) {
        const auto node = p.node();
        if (!node->gradReady)
            continue;
        const float n = node->grad.norm();
        total += static_cast<double>(n) * n;
    }
    const float norm = static_cast<float>(std::sqrt(total));
    if (norm > max_norm && norm > 0.0f) {
        const float factor = max_norm / norm;
        for (const auto &p : params) {
            const auto node = p.node();
            if (node->gradReady)
                node->grad.scaleInPlace(factor);
        }
    }
    return norm;
}

Optimizer::Optimizer(std::vector<Value> params, float lr)
    : params_(std::move(params)), lr_(lr)
{
    if (params_.empty())
        panic("optimizer constructed with no parameters");
}

void
Optimizer::zeroGrad()
{
    for (auto &p : params_) {
        auto node = p.node();
        node->grad = Tensor::zerosLike(node->value);
        node->gradReady = true;
    }
}

Sgd::Sgd(std::vector<Value> params, float lr, float momentum)
    : Optimizer(std::move(params), lr), momentum_(momentum)
{
    velocity_.reserve(params_.size());
    for (const auto &p : params_)
        velocity_.push_back(Tensor::zerosLike(p.tensor()));
}

void
Sgd::step()
{
    for (std::size_t i = 0; i < params_.size(); ++i) {
        auto node = params_[i].node();
        if (!node->gradReady)
            continue;
        Tensor &v = velocity_[i];
        Tensor &w = node->value;
        const Tensor &g = node->grad;
        for (std::size_t j = 0; j < w.size(); ++j) {
            v[j] = momentum_ * v[j] + g[j];
            w[j] -= lr_ * v[j];
        }
    }
}

Adam::Adam(std::vector<Value> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params), lr), beta1_(beta1), beta2_(beta2),
      eps_(eps)
{
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (const auto &p : params_) {
        m_.push_back(Tensor::zerosLike(p.tensor()));
        v_.push_back(Tensor::zerosLike(p.tensor()));
    }
}

void
Adam::step()
{
    ++t_;
    const float bc1 =
        1.0f - std::pow(beta1_, static_cast<float>(t_));
    const float bc2 =
        1.0f - std::pow(beta2_, static_cast<float>(t_));
    for (std::size_t i = 0; i < params_.size(); ++i) {
        auto node = params_[i].node();
        if (!node->gradReady)
            continue;
        Tensor &m = m_[i];
        Tensor &v = v_[i];
        Tensor &w = node->value;
        const Tensor &g = node->grad;
        for (std::size_t j = 0; j < w.size(); ++j) {
            m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
            v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
            const float m_hat = m[j] / bc1;
            const float v_hat = v[j] / bc2;
            w[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
        }
    }
}

AdamState
Adam::exportState() const
{
    AdamState state;
    state.step = t_;
    state.firstMoments = m_;
    state.secondMoments = v_;
    return state;
}

void
Adam::importState(const AdamState &state)
{
    if (state.firstMoments.size() != params_.size() ||
        state.secondMoments.size() != params_.size())
        fatal(cat("Adam state carries ", state.firstMoments.size(),
                  " moment tensors, optimizer has ", params_.size(),
                  " parameters"));
    for (std::size_t i = 0; i < params_.size(); ++i) {
        if (!state.firstMoments[i].sameShape(params_[i].tensor()) ||
            !state.secondMoments[i].sameShape(params_[i].tensor()))
            fatal(cat("Adam state moment ", i,
                      " does not match the parameter shape"));
    }
    t_ = state.step;
    m_ = state.firstMoments;
    v_ = state.secondMoments;
}

WarmupDecaySchedule::WarmupDecaySchedule(float peak_lr,
                                         std::size_t warmup_steps,
                                         float decay, float floor_lr)
    : peakLr_(peak_lr), warmupSteps_(warmup_steps), decay_(decay),
      floorLr_(floor_lr)
{
    if (decay <= 0.0f || decay > 1.0f)
        panic("WarmupDecaySchedule decay must be in (0, 1]");
}

float
WarmupDecaySchedule::at(std::size_t step) const
{
    if (warmupSteps_ > 0 && step < warmupSteps_) {
        const float frac = static_cast<float>(step + 1) /
                           static_cast<float>(warmupSteps_);
        return peakLr_ * frac;
    }
    const auto after = static_cast<float>(step - warmupSteps_);
    const float lr = peakLr_ * std::pow(decay_, after);
    return lr > floorLr_ ? lr : floorLr_;
}

void
WarmupDecaySchedule::apply(Optimizer &opt)
{
    opt.setLearningRate(at(step_));
    ++step_;
}

} // namespace mapzero::nn
