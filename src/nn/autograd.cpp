#include "nn/autograd.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/log.hpp"

namespace mapzero::nn {

void
Node::ensureGrad()
{
    if (!gradReady) {
        grad = Tensor::zerosLike(value);
        gradReady = true;
    }
}

void
Node::accumulateGrad(const Tensor &g)
{
    ensureGrad();
    grad.addInPlace(g);
}

Value
Value::constant(Tensor t)
{
    return Value(std::make_shared<Node>(std::move(t), false));
}

Value
Value::parameter(Tensor t)
{
    return Value(std::make_shared<Node>(std::move(t), true));
}

void
Value::backward() const
{
    if (!node_)
        panic("backward() on undefined Value");
    if (node_->value.size() != 1)
        panic("backward() requires a scalar loss");

    // Topological order via iterative post-order DFS.
    std::vector<Node *> order;
    std::unordered_set<Node *> visited;
    std::vector<std::pair<Node *, std::size_t>> stack;
    stack.emplace_back(node_.get(), 0);
    visited.insert(node_.get());
    while (!stack.empty()) {
        auto &[node, next_child] = stack.back();
        if (next_child < node->parents.size()) {
            Node *parent = node->parents[next_child++].get();
            if (parent->requiresGrad && !visited.count(parent)) {
                visited.insert(parent);
                stack.emplace_back(parent, 0);
            }
        } else {
            order.push_back(node);
            stack.pop_back();
        }
    }

    node_->ensureGrad();
    node_->grad.fill(1.0f);

    // Reverse topological order: children before parents.
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        Node *node = *it;
        if (node->backwardFn && node->gradReady)
            node->backwardFn(*node);
    }
}

namespace {

/** Whether any parent wants gradients (controls closure creation). */
bool
anyRequiresGrad(const std::vector<Value> &inputs)
{
    return std::any_of(inputs.begin(), inputs.end(), [](const Value &v) {
        return v.requiresGrad();
    });
}

Value
makeOp(Tensor result, std::vector<Value> inputs,
       std::function<void(Node &)> backward_fn)
{
    const bool needs_grad = anyRequiresGrad(inputs);
    auto node = std::make_shared<Node>(std::move(result), needs_grad);
    if (needs_grad) {
        node->parents.reserve(inputs.size());
        for (const auto &in : inputs)
            node->parents.push_back(in.node());
        node->backwardFn = std::move(backward_fn);
    }
    return Value(std::move(node));
}

} // namespace

Value
matmul(const Value &a, const Value &b)
{
    const Tensor &ta = a.tensor();
    const Tensor &tb = b.tensor();
    const std::size_t m = ta.rows(), k = ta.cols(), n = tb.cols();
    if (tb.rows() != k)
        panic(cat("matmul shape mismatch: ", ta.shapeString(), " * ",
                  tb.shapeString()));

    Tensor out(m, n);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t p = 0; p < k; ++p) {
            const float aip = ta.at(i, p);
            if (aip == 0.0f)
                continue;
            for (std::size_t j = 0; j < n; ++j)
                out.at(i, j) += aip * tb.at(p, j);
        }
    }

    return makeOp(std::move(out), {a, b}, [m, k, n](Node &node) {
        const Tensor &g = node.grad;
        NodePtr pa = node.parents[0], pb = node.parents[1];
        if (pa->requiresGrad) {
            // dA = G * B^T
            Tensor da(m, k);
            for (std::size_t i = 0; i < m; ++i)
                for (std::size_t j = 0; j < n; ++j) {
                    const float gij = g.at(i, j);
                    if (gij == 0.0f)
                        continue;
                    for (std::size_t p = 0; p < k; ++p)
                        da.at(i, p) += gij * pb->value.at(p, j);
                }
            pa->accumulateGrad(da);
        }
        if (pb->requiresGrad) {
            // dB = A^T * G
            Tensor db(k, n);
            for (std::size_t i = 0; i < m; ++i)
                for (std::size_t p = 0; p < k; ++p) {
                    const float aip = pa->value.at(i, p);
                    if (aip == 0.0f)
                        continue;
                    for (std::size_t j = 0; j < n; ++j)
                        db.at(p, j) += aip * g.at(i, j);
                }
            pb->accumulateGrad(db);
        }
    });
}

Value
add(const Value &a, const Value &b)
{
    const Tensor &ta = a.tensor();
    const Tensor &tb = b.tensor();
    const bool broadcast =
        !ta.sameShape(tb) && tb.rows() == 1 && tb.cols() == ta.cols();
    if (!ta.sameShape(tb) && !broadcast)
        panic(cat("add shape mismatch: ", ta.shapeString(), " + ",
                  tb.shapeString()));

    Tensor out = ta;
    if (broadcast) {
        for (std::size_t r = 0; r < ta.rows(); ++r)
            for (std::size_t c = 0; c < ta.cols(); ++c)
                out.at(r, c) += tb[c];
    } else {
        out.addInPlace(tb);
    }

    return makeOp(std::move(out), {a, b}, [broadcast](Node &node) {
        NodePtr pa = node.parents[0], pb = node.parents[1];
        if (pa->requiresGrad)
            pa->accumulateGrad(node.grad);
        if (pb->requiresGrad) {
            if (broadcast) {
                Tensor gb = Tensor::zerosLike(pb->value);
                const Tensor &g = node.grad;
                for (std::size_t r = 0; r < g.rows(); ++r)
                    for (std::size_t c = 0; c < g.cols(); ++c)
                        gb[c] += g.at(r, c);
                pb->accumulateGrad(gb);
            } else {
                pb->accumulateGrad(node.grad);
            }
        }
    });
}

Value
sub(const Value &a, const Value &b)
{
    const Tensor &ta = a.tensor();
    const Tensor &tb = b.tensor();
    if (!ta.sameShape(tb))
        panic(cat("sub shape mismatch: ", ta.shapeString(), " - ",
                  tb.shapeString()));
    Tensor out = ta;
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] -= tb[i];

    return makeOp(std::move(out), {a, b}, [](Node &node) {
        NodePtr pa = node.parents[0], pb = node.parents[1];
        if (pa->requiresGrad)
            pa->accumulateGrad(node.grad);
        if (pb->requiresGrad) {
            Tensor gb = node.grad;
            gb.scaleInPlace(-1.0f);
            pb->accumulateGrad(gb);
        }
    });
}

Value
mulElem(const Value &a, const Value &b)
{
    const Tensor &ta = a.tensor();
    const Tensor &tb = b.tensor();
    if (!ta.sameShape(tb))
        panic(cat("mulElem shape mismatch: ", ta.shapeString(), " * ",
                  tb.shapeString()));
    Tensor out = ta;
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] *= tb[i];

    return makeOp(std::move(out), {a, b}, [](Node &node) {
        NodePtr pa = node.parents[0], pb = node.parents[1];
        if (pa->requiresGrad) {
            Tensor ga = node.grad;
            for (std::size_t i = 0; i < ga.size(); ++i)
                ga[i] *= pb->value[i];
            pa->accumulateGrad(ga);
        }
        if (pb->requiresGrad) {
            Tensor gb = node.grad;
            for (std::size_t i = 0; i < gb.size(); ++i)
                gb[i] *= pa->value[i];
            pb->accumulateGrad(gb);
        }
    });
}

Value
scale(const Value &a, float factor)
{
    Tensor out = a.tensor();
    out.scaleInPlace(factor);
    return makeOp(std::move(out), {a}, [factor](Node &node) {
        NodePtr pa = node.parents[0];
        if (pa->requiresGrad) {
            Tensor ga = node.grad;
            ga.scaleInPlace(factor);
            pa->accumulateGrad(ga);
        }
    });
}

Value
relu(const Value &a)
{
    return leakyRelu(a, 0.0f);
}

Value
leakyRelu(const Value &a, float slope)
{
    Tensor out = a.tensor();
    for (auto &x : out.data())
        if (x < 0.0f)
            x *= slope;

    return makeOp(std::move(out), {a}, [slope](Node &node) {
        NodePtr pa = node.parents[0];
        if (!pa->requiresGrad)
            return;
        Tensor ga = node.grad;
        for (std::size_t i = 0; i < ga.size(); ++i)
            if (pa->value[i] < 0.0f)
                ga[i] *= slope;
        pa->accumulateGrad(ga);
    });
}

Value
tanhOp(const Value &a)
{
    Tensor out = a.tensor();
    for (auto &x : out.data())
        x = std::tanh(x);

    return makeOp(std::move(out), {a}, [](Node &node) {
        NodePtr pa = node.parents[0];
        if (!pa->requiresGrad)
            return;
        Tensor ga = node.grad;
        for (std::size_t i = 0; i < ga.size(); ++i) {
            const float y = node.value[i];
            ga[i] *= 1.0f - y * y;
        }
        pa->accumulateGrad(ga);
    });
}

Value
square(const Value &a)
{
    Tensor out = a.tensor();
    for (auto &x : out.data())
        x *= x;

    return makeOp(std::move(out), {a}, [](Node &node) {
        NodePtr pa = node.parents[0];
        if (!pa->requiresGrad)
            return;
        Tensor ga = node.grad;
        for (std::size_t i = 0; i < ga.size(); ++i)
            ga[i] *= 2.0f * pa->value[i];
        pa->accumulateGrad(ga);
    });
}

Value
concatCols(const std::vector<Value> &parts)
{
    if (parts.empty())
        panic("concatCols on empty list");
    const std::size_t rows = parts.front().tensor().rows();
    std::size_t total_cols = 0;
    for (const auto &p : parts) {
        if (p.tensor().rows() != rows)
            panic("concatCols row-count mismatch");
        total_cols += p.tensor().cols();
    }

    Tensor out(rows, total_cols);
    std::size_t col_off = 0;
    for (const auto &p : parts) {
        const Tensor &t = p.tensor();
        for (std::size_t r = 0; r < rows; ++r)
            for (std::size_t c = 0; c < t.cols(); ++c)
                out.at(r, col_off + c) = t.at(r, c);
        col_off += t.cols();
    }

    return makeOp(std::move(out), parts, [rows](Node &node) {
        std::size_t col_off = 0;
        for (auto &parent : node.parents) {
            const std::size_t cols = parent->value.cols();
            if (parent->requiresGrad) {
                Tensor gp = Tensor::zerosLike(parent->value);
                for (std::size_t r = 0; r < rows; ++r)
                    for (std::size_t c = 0; c < cols; ++c)
                        gp.at(r, c) = node.grad.at(r, col_off + c);
                parent->accumulateGrad(gp);
            }
            col_off += cols;
        }
    });
}

Value
gatherRows(const Value &a, const std::vector<std::int32_t> &rows)
{
    const Tensor &ta = a.tensor();
    Tensor out(rows.size(), ta.cols());
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto src = static_cast<std::size_t>(rows[i]);
        if (src >= ta.rows())
            panic(cat("gatherRows index ", src, " out of ", ta.rows()));
        for (std::size_t c = 0; c < ta.cols(); ++c)
            out.at(i, c) = ta.at(src, c);
    }

    return makeOp(std::move(out), {a}, [rows](Node &node) {
        NodePtr pa = node.parents[0];
        if (!pa->requiresGrad)
            return;
        Tensor ga = Tensor::zerosLike(pa->value);
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const auto dst = static_cast<std::size_t>(rows[i]);
            for (std::size_t c = 0; c < ga.cols(); ++c)
                ga.at(dst, c) += node.grad.at(i, c);
        }
        pa->accumulateGrad(ga);
    });
}

Value
meanRows(const Value &a)
{
    const Tensor &ta = a.tensor();
    const std::size_t m = ta.rows(), n = ta.cols();
    if (m == 0)
        panic("meanRows on empty matrix");
    Tensor out(1, n);
    for (std::size_t r = 0; r < m; ++r)
        for (std::size_t c = 0; c < n; ++c)
            out.at(0, c) += ta.at(r, c);
    out.scaleInPlace(1.0f / static_cast<float>(m));

    return makeOp(std::move(out), {a}, [m, n](Node &node) {
        NodePtr pa = node.parents[0];
        if (!pa->requiresGrad)
            return;
        Tensor ga(m, n);
        const float inv = 1.0f / static_cast<float>(m);
        for (std::size_t r = 0; r < m; ++r)
            for (std::size_t c = 0; c < n; ++c)
                ga.at(r, c) = node.grad.at(0, c) * inv;
        pa->accumulateGrad(ga);
    });
}

Value
sumAll(const Value &a)
{
    Tensor out(a.tensor().sum());
    return makeOp(std::move(out), {a}, [](Node &node) {
        NodePtr pa = node.parents[0];
        if (!pa->requiresGrad)
            return;
        Tensor ga = Tensor::zerosLike(pa->value);
        const float g = node.grad.item();
        ga.fill(g);
        pa->accumulateGrad(ga);
    });
}

Value
meanAll(const Value &a)
{
    const auto n = static_cast<float>(a.tensor().size());
    return scale(sumAll(a), 1.0f / n);
}

Value
logSoftmaxMasked(const Value &logits, const std::vector<bool> &mask)
{
    const Tensor &t = logits.tensor();
    if (t.rows() != 1 || t.cols() != mask.size())
        panic(cat("logSoftmaxMasked shape mismatch: ", t.shapeString(),
                  " with mask of ", mask.size()));

    constexpr float masked_logp = -1e9f;
    float max_logit = -std::numeric_limits<float>::infinity();
    bool any_legal = false;
    for (std::size_t i = 0; i < mask.size(); ++i) {
        if (mask[i]) {
            any_legal = true;
            max_logit = std::max(max_logit, t[i]);
        }
    }
    if (!any_legal)
        panic("logSoftmaxMasked: no legal action in mask");

    double denom = 0.0;
    for (std::size_t i = 0; i < mask.size(); ++i)
        if (mask[i])
            denom += std::exp(static_cast<double>(t[i] - max_logit));
    const float log_denom =
        max_logit + static_cast<float>(std::log(denom));

    Tensor out = t;
    for (std::size_t i = 0; i < mask.size(); ++i)
        out[i] = mask[i] ? t[i] - log_denom : masked_logp;

    return makeOp(std::move(out), {logits}, [mask](Node &node) {
        NodePtr pa = node.parents[0];
        if (!pa->requiresGrad)
            return;
        // d logp_i / d logit_j = delta_ij - p_j  (over legal entries)
        Tensor ga = Tensor::zerosLike(pa->value);
        float gsum = 0.0f;
        for (std::size_t i = 0; i < mask.size(); ++i)
            if (mask[i])
                gsum += node.grad[i];
        for (std::size_t j = 0; j < mask.size(); ++j) {
            if (!mask[j])
                continue;
            const float pj = std::exp(node.value[j]);
            ga[j] = node.grad[j] - pj * gsum;
        }
        pa->accumulateGrad(ga);
    });
}

Value
segmentSoftmax(const Value &scores, const std::vector<std::int32_t> &segments,
               std::int32_t num_segments)
{
    const Tensor &t = scores.tensor();
    const std::size_t e_count = t.rows(), heads = t.cols();
    if (segments.size() != e_count)
        panic("segmentSoftmax: segment count != edge count");

    Tensor out(e_count, heads);
    const auto seg_n = static_cast<std::size_t>(num_segments);
    // Numerically stable per-(segment, head) softmax.
    std::vector<float> seg_max(seg_n * heads,
                               -std::numeric_limits<float>::infinity());
    for (std::size_t e = 0; e < e_count; ++e) {
        const auto s = static_cast<std::size_t>(segments[e]);
        for (std::size_t h = 0; h < heads; ++h)
            seg_max[s * heads + h] =
                std::max(seg_max[s * heads + h], t.at(e, h));
    }
    std::vector<double> seg_sum(seg_n * heads, 0.0);
    for (std::size_t e = 0; e < e_count; ++e) {
        const auto s = static_cast<std::size_t>(segments[e]);
        for (std::size_t h = 0; h < heads; ++h) {
            const float v =
                std::exp(t.at(e, h) - seg_max[s * heads + h]);
            out.at(e, h) = v;
            seg_sum[s * heads + h] += v;
        }
    }
    for (std::size_t e = 0; e < e_count; ++e) {
        const auto s = static_cast<std::size_t>(segments[e]);
        for (std::size_t h = 0; h < heads; ++h)
            out.at(e, h) /= static_cast<float>(seg_sum[s * heads + h]);
    }

    return makeOp(std::move(out), {scores},
                  [segments, num_segments](Node &node) {
        NodePtr pa = node.parents[0];
        if (!pa->requiresGrad)
            return;
        const Tensor &alpha = node.value;
        const Tensor &g = node.grad;
        const std::size_t e_count = alpha.rows(), heads = alpha.cols();
        const auto seg_n = static_cast<std::size_t>(num_segments);
        // inner[s, h] = sum over segment s of alpha * g
        std::vector<double> inner(seg_n * heads, 0.0);
        for (std::size_t e = 0; e < e_count; ++e) {
            const auto s = static_cast<std::size_t>(segments[e]);
            for (std::size_t h = 0; h < heads; ++h)
                inner[s * heads + h] +=
                    static_cast<double>(alpha.at(e, h)) * g.at(e, h);
        }
        Tensor ga(e_count, heads);
        for (std::size_t e = 0; e < e_count; ++e) {
            const auto s = static_cast<std::size_t>(segments[e]);
            for (std::size_t h = 0; h < heads; ++h)
                ga.at(e, h) = alpha.at(e, h) *
                    (g.at(e, h) -
                     static_cast<float>(inner[s * heads + h]));
        }
        pa->accumulateGrad(ga);
    });
}

Value
attentionAggregate(const Value &values, const Value &alpha,
                   const std::vector<std::int32_t> &dst,
                   std::int32_t num_nodes)
{
    const Tensor &tv = values.tensor();
    const Tensor &ta = alpha.tensor();
    const std::size_t e_count = tv.rows();
    const std::size_t heads = ta.cols();
    if (ta.rows() != e_count || dst.size() != e_count)
        panic("attentionAggregate: edge-count mismatch");
    if (heads == 0 || tv.cols() % heads != 0)
        panic("attentionAggregate: values width not divisible by heads");
    const std::size_t feat = tv.cols() / heads;

    Tensor out(static_cast<std::size_t>(num_nodes), tv.cols());
    for (std::size_t e = 0; e < e_count; ++e) {
        const auto u = static_cast<std::size_t>(dst[e]);
        for (std::size_t h = 0; h < heads; ++h) {
            const float a = ta.at(e, h);
            for (std::size_t f = 0; f < feat; ++f)
                out.at(u, h * feat + f) += a * tv.at(e, h * feat + f);
        }
    }

    return makeOp(std::move(out), {values, alpha},
                  [dst, heads, feat](Node &node) {
        NodePtr pv = node.parents[0], p_alpha = node.parents[1];
        const Tensor &g = node.grad;
        const std::size_t e_count = pv->value.rows();
        if (pv->requiresGrad) {
            Tensor gv = Tensor::zerosLike(pv->value);
            for (std::size_t e = 0; e < e_count; ++e) {
                const auto u = static_cast<std::size_t>(dst[e]);
                for (std::size_t h = 0; h < heads; ++h) {
                    const float a = p_alpha->value.at(e, h);
                    for (std::size_t f = 0; f < feat; ++f)
                        gv.at(e, h * feat + f) =
                            a * g.at(u, h * feat + f);
                }
            }
            pv->accumulateGrad(gv);
        }
        if (p_alpha->requiresGrad) {
            Tensor g_alpha = Tensor::zerosLike(p_alpha->value);
            for (std::size_t e = 0; e < e_count; ++e) {
                const auto u = static_cast<std::size_t>(dst[e]);
                for (std::size_t h = 0; h < heads; ++h) {
                    float acc = 0.0f;
                    for (std::size_t f = 0; f < feat; ++f)
                        acc += g.at(u, h * feat + f) *
                               pv->value.at(e, h * feat + f);
                    g_alpha.at(e, h) = acc;
                }
            }
            p_alpha->accumulateGrad(g_alpha);
        }
    });
}

} // namespace mapzero::nn
