#include "nn/autograd.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_set>

#include "common/log.hpp"
#include "nn/kernels.hpp"

namespace mapzero::nn {

namespace {

/** Thread-local inference-mode flag behind InferenceGuard. */
thread_local bool t_inference_mode = false;

} // namespace

InferenceGuard::InferenceGuard() : prev_(t_inference_mode)
{
    t_inference_mode = true;
}

InferenceGuard::~InferenceGuard()
{
    t_inference_mode = prev_;
}

bool
InferenceGuard::active()
{
    return t_inference_mode;
}

Node::~Node()
{
    if (arenaBacked)
        TensorArena::thisThread().release(std::move(value.data()));
}

void
Node::ensureGrad()
{
    if (!gradReady) {
        grad = Tensor::zerosLike(value);
        gradReady = true;
    }
}

void
Node::accumulateGrad(const Tensor &g)
{
    ensureGrad();
    grad.addInPlace(g);
}

Value
Value::constant(Tensor t)
{
    return Value(std::make_shared<Node>(std::move(t), false));
}

Value
Value::parameter(Tensor t)
{
    return Value(std::make_shared<Node>(std::move(t), true));
}

void
Value::backward() const
{
    if (!node_)
        panic("backward() on undefined Value");
    if (node_->arenaBacked)
        panic("backward() on an inference-mode value (no tape was built "
              "under InferenceGuard)");
    if (node_->value.size() != 1)
        panic("backward() requires a scalar loss");

    // Topological order via iterative post-order DFS.
    std::vector<Node *> order;
    std::unordered_set<Node *> visited;
    std::vector<std::pair<Node *, std::size_t>> stack;
    stack.emplace_back(node_.get(), 0);
    visited.insert(node_.get());
    while (!stack.empty()) {
        auto &[node, next_child] = stack.back();
        if (next_child < node->parents.size()) {
            Node *parent = node->parents[next_child++].get();
            if (parent->requiresGrad && !visited.count(parent)) {
                visited.insert(parent);
                stack.emplace_back(parent, 0);
            }
        } else {
            order.push_back(node);
            stack.pop_back();
        }
    }

    node_->ensureGrad();
    node_->grad.fill(1.0f);

    // Reverse topological order: children before parents.
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        Node *node = *it;
        if (node->backwardFn && node->gradReady)
            node->backwardFn(*node);
    }
}

namespace {

/** Whether the op can skip tape construction entirely. */
inline bool
skipTape()
{
    return InferenceGuard::active();
}

/**
 * Thread-local freelist behind allocate_shared for inference-mode
 * nodes. Every op under an InferenceGuard creates exactly one Node
 * whose lifetime is a handful of ops (until the consumer finishes), so
 * the combined node+control-block allocation is the dominant remaining
 * heap traffic of a no-grad forward; recycling the fixed-size block
 * removes it. Blocks are plain ::operator new memory, so a node freed
 * on a different thread than it was allocated on (an EvalBatcher
 * waiter dropping a leader-computed output) simply parks the block in
 * the destroying thread's pool. Tape-mode nodes keep make_shared: they
 * live as long as the loss graph and gain nothing from a freelist.
 */
template <typename T>
class NodePoolAllocator
{
  public:
    using value_type = T;

    NodePoolAllocator() = default;
    template <typename U>
    NodePoolAllocator(const NodePoolAllocator<U> &) {}

    T *
    allocate(std::size_t n)
    {
        if (n == 1) {
            auto &pool = blocks();
            if (!pool.free.empty()) {
                void *block = pool.free.back();
                pool.free.pop_back();
                return static_cast<T *>(block);
            }
        }
        return static_cast<T *>(::operator new(n * sizeof(T)));
    }

    void
    deallocate(T *p, std::size_t n)
    {
        if (n == 1) {
            auto &pool = blocks();
            if (pool.free.size() < kMaxPooledNodes) {
                pool.free.push_back(p);
                return;
            }
        }
        ::operator delete(p);
    }

    template <typename U>
    bool operator==(const NodePoolAllocator<U> &) const { return true; }
    template <typename U>
    bool operator!=(const NodePoolAllocator<U> &) const { return false; }

  private:
    /** Cap on parked blocks per thread (~a few forward passes deep). */
    static constexpr std::size_t kMaxPooledNodes = 1024;

    struct Pool {
        std::vector<void *> free;
        ~Pool()
        {
            for (void *block : free)
                ::operator delete(block);
        }
    };

    static Pool &
    blocks()
    {
        static thread_local Pool pool;
        return pool;
    }
};

/** Wrap an op result in a tape-free, arena-recycled node. */
Value
inferenceResult(Tensor result)
{
    auto node = std::allocate_shared<Node>(NodePoolAllocator<Node>(),
                                           std::move(result), false);
    node->arenaBacked = true;
    return Value(std::move(node));
}

/** (rows x cols) op output: zeroed, arena-backed in inference mode. */
Tensor
outputZeros(std::size_t rows, std::size_t cols)
{
    if (skipTape())
        return Tensor(rows, cols,
                      TensorArena::thisThread().acquire(rows * cols,
                                                        /*zeroed=*/true));
    return Tensor(rows, cols);
}

/**
 * (rows x cols) op output the caller fully overwrites: contents
 * unspecified in inference mode, zeroed otherwise.
 */
Tensor
outputUninit(std::size_t rows, std::size_t cols)
{
    if (skipTape())
        return Tensor(rows, cols,
                      TensorArena::thisThread().acquire(rows * cols,
                                                        /*zeroed=*/false));
    return Tensor(rows, cols);
}

/** Copy of @p src (shape and contents), arena-backed in inference mode. */
Tensor
outputCopy(const Tensor &src)
{
    if (skipTape()) {
        std::vector<float> data =
            TensorArena::thisThread().acquire(src.size(),
                                              /*zeroed=*/false);
        std::copy(src.data().begin(), src.data().end(), data.begin());
        return Tensor::withShapeOf(src, std::move(data));
    }
    return src;
}

/** Whether any parent wants gradients (controls closure creation). */
bool
anyRequiresGrad(const std::vector<Value> &inputs)
{
    return std::any_of(inputs.begin(), inputs.end(), [](const Value &v) {
        return v.requiresGrad();
    });
}

Value
makeOp(Tensor result, std::vector<Value> inputs,
       std::function<void(Node &)> backward_fn)
{
    const bool needs_grad = anyRequiresGrad(inputs);
    auto node = std::make_shared<Node>(std::move(result), needs_grad);
    if (needs_grad) {
        node->parents.reserve(inputs.size());
        for (const auto &in : inputs)
            node->parents.push_back(in.node());
        node->backwardFn = std::move(backward_fn);
    }
    return Value(std::move(node));
}

} // namespace

Value
matmul(const Value &a, const Value &b)
{
    const Tensor &ta = a.tensor();
    const Tensor &tb = b.tensor();
    const std::size_t m = ta.rows(), k = ta.cols(), n = tb.cols();
    if (tb.rows() != k)
        panic(cat("matmul shape mismatch: ", ta.shapeString(), " * ",
                  tb.shapeString()));

    Tensor out = outputZeros(m, n);
    kernels::matmulAccum(ta.data().data(), tb.data().data(),
                         out.data().data(), m, k, n);
    if (skipTape())
        return inferenceResult(std::move(out));

    return makeOp(std::move(out), {a, b}, [m, k, n](Node &node) {
        const Tensor &g = node.grad;
        NodePtr pa = node.parents[0], pb = node.parents[1];
        if (pa->requiresGrad) {
            // dA = G * B^T
            Tensor da(m, k);
            kernels::matmulTransBAccum(g.data().data(),
                                       pb->value.data().data(),
                                       da.data().data(), m, n, k);
            pa->accumulateGrad(da);
        }
        if (pb->requiresGrad) {
            // dB = A^T * G
            Tensor db(k, n);
            for (std::size_t i = 0; i < m; ++i)
                for (std::size_t p = 0; p < k; ++p) {
                    const float aip = pa->value.at(i, p);
                    if (aip == 0.0f)
                        continue;
                    for (std::size_t j = 0; j < n; ++j)
                        db.at(p, j) += aip * g.at(i, j);
                }
            pb->accumulateGrad(db);
        }
    });
}

Value
linearFused(const Value &x, const Value &w, const Value &b, bool relu)
{
    const Tensor &tx = x.tensor();
    const Tensor &tw = w.tensor();
    const Tensor &tb = b.tensor();
    const std::size_t m = tx.rows(), k = tx.cols(), n = tw.cols();
    if (tw.rows() != k || tb.rows() != 1 || tb.cols() != n)
        panic(cat("linearFused shape mismatch: ", tx.shapeString(), " * ",
                  tw.shapeString(), " + ", tb.shapeString()));

    Tensor out = outputZeros(m, n);
    kernels::matmulAccum(tx.data().data(), tw.data().data(),
                         out.data().data(), m, k, n);
    kernels::addBiasRows(out.data().data(), tb.data().data(),
                         out.data().data(), m, n, relu);
    if (skipTape())
        return inferenceResult(std::move(out));

    // The pre-activation sign is not recoverable from a clamped output
    // (±0 ambiguity), so the closure keeps the ReLU mask explicitly.
    std::vector<bool> negative;
    if (relu && (x.requiresGrad() || w.requiresGrad() ||
                 b.requiresGrad())) {
        negative.resize(m * n);
        const std::vector<float> &ov = out.data();
        for (std::size_t i = 0; i < negative.size(); ++i)
            negative[i] = ov[i] < 0.0f || std::signbit(ov[i]);
    }

    return makeOp(std::move(out), {x, w, b},
                  [m, k, n, relu,
                   negative = std::move(negative)](Node &node) {
        NodePtr px = node.parents[0], pw = node.parents[1],
                pb = node.parents[2];
        // g' = dLoss/dPreActivation (ReLU zeroes clamped entries).
        Tensor gp = node.grad;
        if (relu) {
            std::vector<float> &gv = gp.data();
            for (std::size_t i = 0; i < gv.size(); ++i)
                if (negative[i])
                    gv[i] = 0.0f;
        }
        if (px->requiresGrad) {
            // dX = G' * W^T
            Tensor dx(m, k);
            kernels::matmulTransBAccum(gp.data().data(),
                                       pw->value.data().data(),
                                       dx.data().data(), m, n, k);
            px->accumulateGrad(dx);
        }
        if (pw->requiresGrad) {
            // dW = X^T * G'
            Tensor dw(k, n);
            for (std::size_t i = 0; i < m; ++i)
                for (std::size_t p = 0; p < k; ++p) {
                    const float xip = px->value.at(i, p);
                    if (xip == 0.0f)
                        continue;
                    for (std::size_t j = 0; j < n; ++j)
                        dw.at(p, j) += xip * gp.at(i, j);
                }
            pw->accumulateGrad(dw);
        }
        if (pb->requiresGrad) {
            // db = column sums of G'
            Tensor db(1, n);
            for (std::size_t i = 0; i < m; ++i)
                for (std::size_t j = 0; j < n; ++j)
                    db[j] += gp.at(i, j);
            pb->accumulateGrad(db);
        }
    });
}

Value
add(const Value &a, const Value &b)
{
    const Tensor &ta = a.tensor();
    const Tensor &tb = b.tensor();
    const bool broadcast =
        !ta.sameShape(tb) && tb.rows() == 1 && tb.cols() == ta.cols();
    if (!ta.sameShape(tb) && !broadcast)
        panic(cat("add shape mismatch: ", ta.shapeString(), " + ",
                  tb.shapeString()));

    Tensor out = outputCopy(ta);
    if (broadcast) {
        for (std::size_t r = 0; r < ta.rows(); ++r)
            for (std::size_t c = 0; c < ta.cols(); ++c)
                out.at(r, c) += tb[c];
    } else {
        out.addInPlace(tb);
    }
    if (skipTape())
        return inferenceResult(std::move(out));

    return makeOp(std::move(out), {a, b}, [broadcast](Node &node) {
        NodePtr pa = node.parents[0], pb = node.parents[1];
        if (pa->requiresGrad)
            pa->accumulateGrad(node.grad);
        if (pb->requiresGrad) {
            if (broadcast) {
                Tensor gb = Tensor::zerosLike(pb->value);
                const Tensor &g = node.grad;
                for (std::size_t r = 0; r < g.rows(); ++r)
                    for (std::size_t c = 0; c < g.cols(); ++c)
                        gb[c] += g.at(r, c);
                pb->accumulateGrad(gb);
            } else {
                pb->accumulateGrad(node.grad);
            }
        }
    });
}

Value
sub(const Value &a, const Value &b)
{
    const Tensor &ta = a.tensor();
    const Tensor &tb = b.tensor();
    if (!ta.sameShape(tb))
        panic(cat("sub shape mismatch: ", ta.shapeString(), " - ",
                  tb.shapeString()));
    Tensor out = outputCopy(ta);
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] -= tb[i];
    if (skipTape())
        return inferenceResult(std::move(out));

    return makeOp(std::move(out), {a, b}, [](Node &node) {
        NodePtr pa = node.parents[0], pb = node.parents[1];
        if (pa->requiresGrad)
            pa->accumulateGrad(node.grad);
        if (pb->requiresGrad) {
            Tensor gb = node.grad;
            gb.scaleInPlace(-1.0f);
            pb->accumulateGrad(gb);
        }
    });
}

Value
mulElem(const Value &a, const Value &b)
{
    const Tensor &ta = a.tensor();
    const Tensor &tb = b.tensor();
    if (!ta.sameShape(tb))
        panic(cat("mulElem shape mismatch: ", ta.shapeString(), " * ",
                  tb.shapeString()));
    Tensor out = outputCopy(ta);
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] *= tb[i];
    if (skipTape())
        return inferenceResult(std::move(out));

    return makeOp(std::move(out), {a, b}, [](Node &node) {
        NodePtr pa = node.parents[0], pb = node.parents[1];
        if (pa->requiresGrad) {
            Tensor ga = node.grad;
            for (std::size_t i = 0; i < ga.size(); ++i)
                ga[i] *= pb->value[i];
            pa->accumulateGrad(ga);
        }
        if (pb->requiresGrad) {
            Tensor gb = node.grad;
            for (std::size_t i = 0; i < gb.size(); ++i)
                gb[i] *= pa->value[i];
            pb->accumulateGrad(gb);
        }
    });
}

Value
scale(const Value &a, float factor)
{
    Tensor out = outputCopy(a.tensor());
    out.scaleInPlace(factor);
    if (skipTape())
        return inferenceResult(std::move(out));

    return makeOp(std::move(out), {a}, [factor](Node &node) {
        NodePtr pa = node.parents[0];
        if (pa->requiresGrad) {
            Tensor ga = node.grad;
            ga.scaleInPlace(factor);
            pa->accumulateGrad(ga);
        }
    });
}

Value
relu(const Value &a)
{
    return leakyRelu(a, 0.0f);
}

Value
leakyRelu(const Value &a, float slope)
{
    Tensor out = outputCopy(a.tensor());
    for (auto &x : out.data())
        if (x < 0.0f)
            x *= slope;
    if (skipTape())
        return inferenceResult(std::move(out));

    return makeOp(std::move(out), {a}, [slope](Node &node) {
        NodePtr pa = node.parents[0];
        if (!pa->requiresGrad)
            return;
        Tensor ga = node.grad;
        for (std::size_t i = 0; i < ga.size(); ++i)
            if (pa->value[i] < 0.0f)
                ga[i] *= slope;
        pa->accumulateGrad(ga);
    });
}

Value
tanhOp(const Value &a)
{
    Tensor out = outputCopy(a.tensor());
    for (auto &x : out.data())
        x = std::tanh(x);
    if (skipTape())
        return inferenceResult(std::move(out));

    return makeOp(std::move(out), {a}, [](Node &node) {
        NodePtr pa = node.parents[0];
        if (!pa->requiresGrad)
            return;
        Tensor ga = node.grad;
        for (std::size_t i = 0; i < ga.size(); ++i) {
            const float y = node.value[i];
            ga[i] *= 1.0f - y * y;
        }
        pa->accumulateGrad(ga);
    });
}

Value
square(const Value &a)
{
    Tensor out = outputCopy(a.tensor());
    for (auto &x : out.data())
        x *= x;
    if (skipTape())
        return inferenceResult(std::move(out));

    return makeOp(std::move(out), {a}, [](Node &node) {
        NodePtr pa = node.parents[0];
        if (!pa->requiresGrad)
            return;
        Tensor ga = node.grad;
        for (std::size_t i = 0; i < ga.size(); ++i)
            ga[i] *= 2.0f * pa->value[i];
        pa->accumulateGrad(ga);
    });
}

Value
concatCols(const std::vector<Value> &parts)
{
    if (parts.empty())
        panic("concatCols on empty list");
    const std::size_t rows = parts.front().tensor().rows();
    std::size_t total_cols = 0;
    for (const auto &p : parts) {
        if (p.tensor().rows() != rows)
            panic("concatCols row-count mismatch");
        total_cols += p.tensor().cols();
    }

    Tensor out = outputUninit(rows, total_cols);
    std::size_t col_off = 0;
    for (const auto &p : parts) {
        const Tensor &t = p.tensor();
        const std::size_t cols = t.cols();
        const float *src = t.data().data();
        float *dst = out.data().data() + col_off;
        for (std::size_t r = 0; r < rows; ++r)
            std::copy(src + r * cols, src + (r + 1) * cols,
                      dst + r * total_cols);
        col_off += cols;
    }
    if (skipTape())
        return inferenceResult(std::move(out));

    return makeOp(std::move(out), parts, [rows](Node &node) {
        std::size_t col_off = 0;
        for (auto &parent : node.parents) {
            const std::size_t cols = parent->value.cols();
            if (parent->requiresGrad) {
                Tensor gp = Tensor::zerosLike(parent->value);
                for (std::size_t r = 0; r < rows; ++r)
                    for (std::size_t c = 0; c < cols; ++c)
                        gp.at(r, c) = node.grad.at(r, col_off + c);
                parent->accumulateGrad(gp);
            }
            col_off += cols;
        }
    });
}

Value
gatherRows(const Value &a, const std::vector<std::int32_t> &rows)
{
    const Tensor &ta = a.tensor();
    const std::size_t cols = ta.cols();
    Tensor out = outputUninit(rows.size(), cols);
    const float *src = ta.data().data();
    float *dst = out.data().data();
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto r = static_cast<std::size_t>(rows[i]);
        if (r >= ta.rows())
            panic(cat("gatherRows index ", r, " out of ", ta.rows()));
        std::copy(src + r * cols, src + (r + 1) * cols, dst + i * cols);
    }
    if (skipTape())
        return inferenceResult(std::move(out));

    return makeOp(std::move(out), {a}, [rows](Node &node) {
        NodePtr pa = node.parents[0];
        if (!pa->requiresGrad)
            return;
        Tensor ga = Tensor::zerosLike(pa->value);
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const auto dst_row = static_cast<std::size_t>(rows[i]);
            for (std::size_t c = 0; c < ga.cols(); ++c)
                ga.at(dst_row, c) += node.grad.at(i, c);
        }
        pa->accumulateGrad(ga);
    });
}

Value
meanRows(const Value &a)
{
    const Tensor &ta = a.tensor();
    const std::size_t m = ta.rows(), n = ta.cols();
    if (m == 0)
        panic("meanRows on empty matrix");
    Tensor out = outputZeros(1, n);
    const float *src = ta.data().data();
    float *dst = out.data().data();
    for (std::size_t r = 0; r < m; ++r)
        for (std::size_t c = 0; c < n; ++c)
            dst[c] += src[r * n + c];
    out.scaleInPlace(1.0f / static_cast<float>(m));
    if (skipTape())
        return inferenceResult(std::move(out));

    return makeOp(std::move(out), {a}, [m, n](Node &node) {
        NodePtr pa = node.parents[0];
        if (!pa->requiresGrad)
            return;
        Tensor ga(m, n);
        const float inv = 1.0f / static_cast<float>(m);
        for (std::size_t r = 0; r < m; ++r)
            for (std::size_t c = 0; c < n; ++c)
                ga.at(r, c) = node.grad.at(0, c) * inv;
        pa->accumulateGrad(ga);
    });
}

Value
sumAll(const Value &a)
{
    Tensor out(a.tensor().sum());
    if (skipTape())
        return Value::constant(std::move(out)); // scalar: arena pointless

    return makeOp(std::move(out), {a}, [](Node &node) {
        NodePtr pa = node.parents[0];
        if (!pa->requiresGrad)
            return;
        Tensor ga = Tensor::zerosLike(pa->value);
        const float g = node.grad.item();
        ga.fill(g);
        pa->accumulateGrad(ga);
    });
}

Value
meanAll(const Value &a)
{
    const auto n = static_cast<float>(a.tensor().size());
    return scale(sumAll(a), 1.0f / n);
}

Value
logSoftmaxMasked(const Value &logits, const std::vector<bool> &mask)
{
    const Tensor &t = logits.tensor();
    if (t.rows() != 1 || t.cols() != mask.size())
        panic(cat("logSoftmaxMasked shape mismatch: ", t.shapeString(),
                  " with mask of ", mask.size()));

    constexpr float masked_logp = -1e9f;
    float max_logit = -std::numeric_limits<float>::infinity();
    bool any_legal = false;
    for (std::size_t i = 0; i < mask.size(); ++i) {
        if (mask[i]) {
            any_legal = true;
            max_logit = std::max(max_logit, t[i]);
        }
    }
    if (!any_legal)
        panic("logSoftmaxMasked: no legal action in mask");

    double denom = 0.0;
    for (std::size_t i = 0; i < mask.size(); ++i)
        if (mask[i])
            denom += std::exp(static_cast<double>(t[i] - max_logit));
    const float log_denom =
        max_logit + static_cast<float>(std::log(denom));

    Tensor out = outputCopy(t);
    for (std::size_t i = 0; i < mask.size(); ++i)
        out[i] = mask[i] ? t[i] - log_denom : masked_logp;
    if (skipTape())
        return inferenceResult(std::move(out));

    return makeOp(std::move(out), {logits}, [mask](Node &node) {
        NodePtr pa = node.parents[0];
        if (!pa->requiresGrad)
            return;
        // d logp_i / d logit_j = delta_ij - p_j  (over legal entries)
        Tensor ga = Tensor::zerosLike(pa->value);
        float gsum = 0.0f;
        for (std::size_t i = 0; i < mask.size(); ++i)
            if (mask[i])
                gsum += node.grad[i];
        for (std::size_t j = 0; j < mask.size(); ++j) {
            if (!mask[j])
                continue;
            const float pj = std::exp(node.value[j]);
            ga[j] = node.grad[j] - pj * gsum;
        }
        pa->accumulateGrad(ga);
    });
}

Value
edgeScores(const Value &dst_scores, const Value &src_scores,
           const std::vector<std::int32_t> &dst,
           const std::vector<std::int32_t> &src, float slope)
{
    const Tensor &td = dst_scores.tensor();
    const Tensor &ts = src_scores.tensor();
    if (td.cols() != 1 || ts.cols() != 1)
        panic("edgeScores expects (N x 1) score columns");
    if (dst.size() != src.size())
        panic("edgeScores: endpoint array length mismatch");
    const std::size_t e_count = dst.size();
    const std::size_t n_dst = td.rows(), n_src = ts.rows();

    Tensor out = outputUninit(e_count, 1);
    const float *dv = td.data().data();
    const float *sv = ts.data().data();
    float *ov = out.data().data();
    for (std::size_t e = 0; e < e_count; ++e) {
        const auto u = static_cast<std::size_t>(dst[e]);
        const auto v = static_cast<std::size_t>(src[e]);
        if (u >= n_dst || v >= n_src)
            panic(cat("edgeScores edge ", e, " endpoint out of range"));
        const float pre = dv[u] + sv[v];
        ov[e] = pre < 0.0f ? pre * slope : pre;
    }
    if (skipTape())
        return inferenceResult(std::move(out));

    return makeOp(std::move(out), {dst_scores, src_scores},
                  [dst, src, slope](Node &node) {
        NodePtr pd = node.parents[0], ps = node.parents[1];
        if (!pd->requiresGrad && !ps->requiresGrad)
            return;
        const float *dv = pd->value.data().data();
        const float *sv = ps->value.data().data();
        // The pre-activation sum is recomputed rather than inferred
        // from the output sign: pre * slope can underflow to +-0 for
        // tiny negative sums, which would misclassify the branch.
        Tensor gd = Tensor::zerosLike(pd->value);
        Tensor gs = Tensor::zerosLike(ps->value);
        for (std::size_t e = 0; e < dst.size(); ++e) {
            const auto u = static_cast<std::size_t>(dst[e]);
            const auto v = static_cast<std::size_t>(src[e]);
            const float pre = dv[u] + sv[v];
            const float g =
                pre < 0.0f ? node.grad[e] * slope : node.grad[e];
            gd[u] += g;
            gs[v] += g;
        }
        if (pd->requiresGrad)
            pd->accumulateGrad(gd);
        if (ps->requiresGrad)
            ps->accumulateGrad(gs);
    });
}

GatEdgeTensors
gatEdgeTensorsInference(const Value &feats,
                        const std::vector<Value> &weights,
                        const std::vector<Value> &attn_src,
                        const std::vector<Value> &attn_dst,
                        const std::vector<std::int32_t> &src,
                        const std::vector<std::int32_t> &dst, float slope)
{
    if (!InferenceGuard::active())
        panic("gatEdgeTensorsInference outside an InferenceGuard");
    const Tensor &tf = feats.tensor();
    const std::size_t n = tf.rows(), in = tf.cols();
    const std::size_t heads = weights.size();
    if (heads == 0 || attn_src.size() != heads ||
        attn_dst.size() != heads)
        panic("gatEdgeTensorsInference: per-head parameter mismatch");
    const std::size_t feat = weights[0].tensor().cols();
    const std::size_t width = heads * feat;
    const std::size_t e_count = src.size();
    if (dst.size() != e_count)
        panic("gatEdgeTensorsInference: endpoint length mismatch");

    auto &arena = TensorArena::thisThread();

    // Concatenated head projections (N x H*F): each head's W_k h lands
    // in its column block via the strided kernel — same per-element
    // arithmetic as the separate matmuls, no concat copy.
    std::vector<float> wh = arena.acquire(n * width, true);
    for (std::size_t h = 0; h < heads; ++h) {
        const Tensor &w = weights[h].tensor();
        if (w.rows() != in || w.cols() != feat)
            panic(cat("gatEdgeTensorsInference head ", h, " weight is ",
                      w.shapeString()));
        kernels::matmulAccumLdc(tf.data().data(), w.data().data(),
                                wh.data() + h * feat, n, in, feat, width);
    }

    // Per-vertex attention dots (N x H): sdst[i, h] = (W_h h_i).a_dst_h.
    // Each accumulator runs ascending over f like matmulTransBAccum's
    // dot; the kernel's zero-skip is dropped because adding the exact
    // 0.0f * y it would skip cannot move an accumulator that never
    // holds -0 (see kernels.hpp), and the branchless form lets the
    // eight chains of a four-vertex block retire in parallel instead of
    // serializing on one addition's latency.
    std::vector<float> sdst = arena.acquire(n * heads, false);
    std::vector<float> ssrc = arena.acquire(n * heads, false);
    for (std::size_t h = 0; h < heads; ++h) {
        const Tensor &ad = attn_dst[h].tensor();
        const Tensor &as = attn_src[h].tensor();
        if (ad.size() != feat || as.size() != feat)
            panic(cat("gatEdgeTensorsInference head ", h,
                      " attention vector size mismatch"));
        const float *__restrict adv = ad.data().data();
        const float *__restrict asv = as.data().data();
        const float *whk = wh.data() + h * feat;
        std::size_t i = 0;
        for (; i + 4 <= n; i += 4) {
            const float *__restrict w0 = whk + (i + 0) * width;
            const float *__restrict w1 = whk + (i + 1) * width;
            const float *__restrict w2 = whk + (i + 2) * width;
            const float *__restrict w3 = whk + (i + 3) * width;
            float d0 = 0.0f, d1 = 0.0f, d2 = 0.0f, d3 = 0.0f;
            float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
            for (std::size_t f = 0; f < feat; ++f) {
                const float af = adv[f], bf = asv[f];
                d0 += w0[f] * af;
                d1 += w1[f] * af;
                d2 += w2[f] * af;
                d3 += w3[f] * af;
                s0 += w0[f] * bf;
                s1 += w1[f] * bf;
                s2 += w2[f] * bf;
                s3 += w3[f] * bf;
            }
            sdst[(i + 0) * heads + h] = d0;
            sdst[(i + 1) * heads + h] = d1;
            sdst[(i + 2) * heads + h] = d2;
            sdst[(i + 3) * heads + h] = d3;
            ssrc[(i + 0) * heads + h] = s0;
            ssrc[(i + 1) * heads + h] = s1;
            ssrc[(i + 2) * heads + h] = s2;
            ssrc[(i + 3) * heads + h] = s3;
        }
        for (; i < n; ++i) {
            const float *__restrict wr = whk + i * width;
            float accd = 0.0f, accs = 0.0f;
            for (std::size_t f = 0; f < feat; ++f) {
                accd += wr[f] * adv[f];
                accs += wr[f] * asv[f];
            }
            sdst[i * heads + h] = accd;
            ssrc[i * heads + h] = accs;
        }
    }

    // Fused Eq. 7 logits (E x H) and gathered source rows (E x H*F).
    Tensor scores = outputUninit(e_count, heads);
    Tensor values = outputUninit(e_count, width);
    float *sc = scores.data().data();
    float *va = values.data().data();
    for (std::size_t e = 0; e < e_count; ++e) {
        const auto u = static_cast<std::size_t>(dst[e]);
        const auto v = static_cast<std::size_t>(src[e]);
        if (u >= n || v >= n)
            panic(cat("gatEdgeTensorsInference edge ", e,
                      " endpoint out of range ", n));
        const float *du = sdst.data() + u * heads;
        const float *sv = ssrc.data() + v * heads;
        float *srow = sc + e * heads;
        for (std::size_t h = 0; h < heads; ++h) {
            const float pre = du[h] + sv[h];
            srow[h] = pre < 0.0f ? pre * slope : pre;
        }
        std::memcpy(va + e * width, wh.data() + v * width,
                    width * sizeof(float));
    }

    arena.release(std::move(ssrc));
    arena.release(std::move(sdst));
    arena.release(std::move(wh));

    return {inferenceResult(std::move(scores)),
            inferenceResult(std::move(values))};
}

Value
segmentSoftmax(const Value &scores, const std::vector<std::int32_t> &segments,
               std::int32_t num_segments)
{
    const Tensor &t = scores.tensor();
    const std::size_t e_count = t.rows(), heads = t.cols();
    if (segments.size() != e_count)
        panic("segmentSoftmax: segment count != edge count");

    Tensor out = outputUninit(e_count, heads);
    const auto seg_n = static_cast<std::size_t>(num_segments);
    const float *src = t.data().data();
    float *dst = out.data().data();
    // Numerically stable per-(segment, head) softmax. The reduction
    // scratch is thread-local so the per-call cost is two assigns into
    // retained capacity, not two heap allocations.
    static thread_local std::vector<float> seg_max;
    static thread_local std::vector<double> seg_sum;
    seg_max.assign(seg_n * heads,
                   -std::numeric_limits<float>::infinity());
    for (std::size_t e = 0; e < e_count; ++e) {
        const float *srow = src + e * heads;
        float *mrow =
            seg_max.data() + static_cast<std::size_t>(segments[e]) * heads;
        for (std::size_t h = 0; h < heads; ++h)
            mrow[h] = std::max(mrow[h], srow[h]);
    }
    seg_sum.assign(seg_n * heads, 0.0);
    for (std::size_t e = 0; e < e_count; ++e) {
        const float *srow = src + e * heads;
        float *orow = dst + e * heads;
        const std::size_t s = static_cast<std::size_t>(segments[e]) * heads;
        for (std::size_t h = 0; h < heads; ++h) {
            const float v = std::exp(srow[h] - seg_max[s + h]);
            orow[h] = v;
            seg_sum[s + h] += v;
        }
    }
    for (std::size_t e = 0; e < e_count; ++e) {
        float *orow = dst + e * heads;
        const std::size_t s = static_cast<std::size_t>(segments[e]) * heads;
        for (std::size_t h = 0; h < heads; ++h)
            orow[h] /= static_cast<float>(seg_sum[s + h]);
    }
    if (skipTape())
        return inferenceResult(std::move(out));

    return makeOp(std::move(out), {scores},
                  [segments, num_segments](Node &node) {
        NodePtr pa = node.parents[0];
        if (!pa->requiresGrad)
            return;
        const Tensor &alpha = node.value;
        const Tensor &g = node.grad;
        const std::size_t e_count = alpha.rows(), heads = alpha.cols();
        const auto seg_n = static_cast<std::size_t>(num_segments);
        // inner[s, h] = sum over segment s of alpha * g
        std::vector<double> inner(seg_n * heads, 0.0);
        for (std::size_t e = 0; e < e_count; ++e) {
            const auto s = static_cast<std::size_t>(segments[e]);
            for (std::size_t h = 0; h < heads; ++h)
                inner[s * heads + h] +=
                    static_cast<double>(alpha.at(e, h)) * g.at(e, h);
        }
        Tensor ga(e_count, heads);
        for (std::size_t e = 0; e < e_count; ++e) {
            const auto s = static_cast<std::size_t>(segments[e]);
            for (std::size_t h = 0; h < heads; ++h)
                ga.at(e, h) = alpha.at(e, h) *
                    (g.at(e, h) -
                     static_cast<float>(inner[s * heads + h]));
        }
        pa->accumulateGrad(ga);
    });
}

Value
attentionAggregate(const Value &values, const Value &alpha,
                   const std::vector<std::int32_t> &dst,
                   std::int32_t num_nodes)
{
    const Tensor &tv = values.tensor();
    const Tensor &ta = alpha.tensor();
    const std::size_t e_count = tv.rows();
    const std::size_t heads = ta.cols();
    if (ta.rows() != e_count || dst.size() != e_count)
        panic("attentionAggregate: edge-count mismatch");
    if (heads == 0 || tv.cols() % heads != 0)
        panic("attentionAggregate: values width not divisible by heads");
    const std::size_t feat = tv.cols() / heads;
    const std::size_t width = tv.cols();

    Tensor out = outputZeros(static_cast<std::size_t>(num_nodes), width);
    const float *__restrict vsrc = tv.data().data();
    const float *__restrict asrc = ta.data().data();
    float *__restrict osrc = out.data().data();
    for (std::size_t e = 0; e < e_count; ++e) {
        const float *__restrict vrow = vsrc + e * width;
        const float *__restrict arow = asrc + e * heads;
        float *__restrict orow =
            osrc + static_cast<std::size_t>(dst[e]) * width;
        for (std::size_t h = 0; h < heads; ++h) {
            const float a = arow[h];
            const std::size_t base = h * feat;
            for (std::size_t f = 0; f < feat; ++f)
                orow[base + f] += a * vrow[base + f];
        }
    }
    if (skipTape())
        return inferenceResult(std::move(out));

    return makeOp(std::move(out), {values, alpha},
                  [dst, heads, feat](Node &node) {
        NodePtr pv = node.parents[0], p_alpha = node.parents[1];
        const Tensor &g = node.grad;
        const std::size_t e_count = pv->value.rows();
        if (pv->requiresGrad) {
            Tensor gv = Tensor::zerosLike(pv->value);
            for (std::size_t e = 0; e < e_count; ++e) {
                const auto u = static_cast<std::size_t>(dst[e]);
                for (std::size_t h = 0; h < heads; ++h) {
                    const float a = p_alpha->value.at(e, h);
                    for (std::size_t f = 0; f < feat; ++f)
                        gv.at(e, h * feat + f) =
                            a * g.at(u, h * feat + f);
                }
            }
            pv->accumulateGrad(gv);
        }
        if (p_alpha->requiresGrad) {
            Tensor g_alpha = Tensor::zerosLike(p_alpha->value);
            for (std::size_t e = 0; e < e_count; ++e) {
                const auto u = static_cast<std::size_t>(dst[e]);
                for (std::size_t h = 0; h < heads; ++h) {
                    float acc = 0.0f;
                    for (std::size_t f = 0; f < feat; ++f)
                        acc += g.at(u, h * feat + f) *
                               pv->value.at(e, h * feat + f);
                    g_alpha.at(e, h) = acc;
                }
            }
            p_alpha->accumulateGrad(g_alpha);
        }
    });
}

} // namespace mapzero::nn
