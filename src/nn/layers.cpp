#include "nn/layers.hpp"

#include <cmath>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace mapzero::nn {

Value
activate(const Value &x, Activation activation)
{
    switch (activation) {
      case Activation::None:      return x;
      case Activation::ReLU:      return relu(x);
      case Activation::LeakyReLU: return leakyRelu(x, 0.2f);
      case Activation::Tanh:      return tanhOp(x);
    }
    panic("unknown activation");
}

Linear::Linear(std::size_t in, std::size_t out, Rng &rng)
    : in_(in), out_(out)
{
    const float bound = std::sqrt(6.0f / static_cast<float>(in));
    weight_ = registerParameter(
        "weight", Tensor::uniform(in, out, -bound, bound, rng));
    bias_ = registerParameter("bias", Tensor(1, out));
}

Value
Linear::forward(const Value &x) const
{
    return linearFused(x, weight_, bias_, /*relu=*/false);
}

Value
Linear::forwardRelu(const Value &x) const
{
    return linearFused(x, weight_, bias_, /*relu=*/true);
}

Mlp::Mlp(const std::vector<std::size_t> &dims, Activation hidden,
         Activation final, Rng &rng)
    : dims_(dims), hidden_(hidden), final_(final)
{
    if (dims.size() < 2)
        panic("Mlp requires at least an input and an output width");
    for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
        layers_.push_back(
            std::make_unique<Linear>(dims[i], dims[i + 1], rng));
        registerChild(cat("fc", i), layers_.back().get());
    }
}

Value
Mlp::forward(const Value &x) const
{
    Value h = x;
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        const bool last = i + 1 == layers_.size();
        const Activation act = last ? final_ : hidden_;
        if (act == Activation::ReLU) {
            h = layers_[i]->forwardRelu(h);
        } else {
            h = layers_[i]->forward(h);
            h = activate(h, act);
        }
    }
    return h;
}

} // namespace mapzero::nn
