/**
 * @file
 * Reverse-mode automatic differentiation over Tensor.
 *
 * The graph is dynamic (define-by-run): every operation allocates a Node
 * holding the result, the parent handles, and a closure that scatters the
 * output gradient back to the parents. Calling backward() on a scalar loss
 * topologically sorts the reachable graph and runs the closures once each.
 *
 * The op set is exactly what the MapZero network requires: dense linear
 * algebra, pointwise nonlinearities, row gather/mean for graph pooling, a
 * masked log-softmax for the policy head, and two fused graph-attention
 * primitives (segmentSoftmax / attentionAggregate) with analytic gradients.
 */

#ifndef MAPZERO_NN_AUTOGRAD_HPP
#define MAPZERO_NN_AUTOGRAD_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "nn/tensor.hpp"

namespace mapzero::nn {

class Node;
using NodePtr = std::shared_ptr<Node>;

/**
 * RAII inference mode for the calling thread.
 *
 * While a guard is alive, every op skips graph construction entirely —
 * no parent handles, no backward closure, no captured index-vector
 * copies — and writes its result into a buffer drawn from the thread's
 * TensorArena, which the result recycles on destruction. The arithmetic
 * is byte-for-byte the tape path's (same kernels, same accumulation
 * order), so guarded and unguarded forwards are bit-identical; only the
 * bookkeeping differs. backward() on a value produced under a guard
 * panics (it has no tape).
 *
 * Guards nest; the thread leaves inference mode when the outermost one
 * dies. See DESIGN.md §10 for the arena lifetime rules.
 */
class InferenceGuard
{
  public:
    InferenceGuard();
    ~InferenceGuard();
    InferenceGuard(const InferenceGuard &) = delete;
    InferenceGuard &operator=(const InferenceGuard &) = delete;

    /** Whether the calling thread is currently in inference mode. */
    static bool active();

  private:
    bool prev_;
};

/** One vertex of the dynamic autograd graph. */
class Node
{
  public:
    Node(Tensor value, bool requires_grad)
        : value(std::move(value)), requiresGrad(requires_grad)
    {}

    /** Arena-backed results hand their buffer back to the pool. */
    ~Node();

    /** Forward result. */
    Tensor value;
    /**
     * Accumulated dLoss/dValue; storage-free until ensureGrad() so
     * inference-mode nodes (which never run backward) allocate nothing.
     */
    Tensor grad = Tensor::unallocated();
    /** True once grad holds a valid accumulation buffer. */
    bool gradReady = false;
    /** Whether gradients should flow into/through this node. */
    bool requiresGrad;
    /** Parents in the forward graph. */
    std::vector<NodePtr> parents;
    /** Scatters this->grad into the parents' grads. */
    std::function<void(Node &)> backwardFn;

    /** True when value's buffer came from the thread's TensorArena. */
    bool arenaBacked = false;

    /** Lazily allocate + zero the grad buffer. */
    void ensureGrad();

    /** Accumulate @p g into grad. */
    void accumulateGrad(const Tensor &g);
};

/**
 * Value handle used by model code. Copying shares the underlying node.
 */
class Value
{
  public:
    Value() = default;
    explicit Value(NodePtr node) : node_(std::move(node)) {}

    /** Leaf that does not require grad. */
    static Value constant(Tensor t);
    /** Leaf that accumulates gradient (model parameter). */
    static Value parameter(Tensor t);

    bool defined() const { return node_ != nullptr; }
    const Tensor &tensor() const { return node_->value; }
    Tensor &tensor() { return node_->value; }
    const Tensor &grad() const { return node_->grad; }
    bool requiresGrad() const { return node_->requiresGrad; }
    NodePtr node() const { return node_; }

    /** Scalar convenience read. */
    float item() const { return node_->value.item(); }

    /**
     * Run reverse-mode AD from this (scalar) value.
     * Gradients accumulate into every reachable node with requiresGrad.
     */
    void backward() const;

  private:
    NodePtr node_;
};

/// @name Dense ops
/// @{

/** Matrix product (m x k) * (k x n). */
Value matmul(const Value &a, const Value &b);

/** Elementwise add; also broadcasts b as a row vector (1 x n) over a. */
Value add(const Value &a, const Value &b);

/** Elementwise subtract (same shapes). */
Value sub(const Value &a, const Value &b);

/** Elementwise (Hadamard) product (same shapes). */
Value mulElem(const Value &a, const Value &b);

/** Multiply all elements by a constant. */
Value scale(const Value &a, float factor);

/**
 * Fused affine transform y = x W + b with an optional ReLU, in one op:
 * one output buffer, one node, one backward closure instead of three.
 * Forward results are bit-identical to relu(add(matmul(x, w), b)).
 *
 * @param x (m x k) input rows
 * @param w (k x n) weight
 * @param b (1 x n) bias, broadcast over rows
 * @param relu clamp negatives (slope-0 leaky ReLU semantics)
 */
Value linearFused(const Value &x, const Value &w, const Value &b,
                  bool relu);

/// @}
/// @name Nonlinearities
/// @{

Value relu(const Value &a);
Value leakyRelu(const Value &a, float slope);
Value tanhOp(const Value &a);
Value square(const Value &a);

/// @}
/// @name Shape / reduction ops
/// @{

/** Horizontal concatenation of matrices with equal row counts. */
Value concatCols(const std::vector<Value> &parts);

/** Select rows by index (with repetition allowed); grad scatter-adds. */
Value gatherRows(const Value &a, const std::vector<std::int32_t> &rows);

/** Column-wise mean over rows: (m x n) -> (1 x n). */
Value meanRows(const Value &a);

/** Sum of all elements -> scalar. */
Value sumAll(const Value &a);

/** Mean of all elements -> scalar. */
Value meanAll(const Value &a);

/// @}
/// @name Policy-head ops
/// @{

/**
 * Log-softmax over a single row with a legality mask.
 *
 * Masked-out entries get log-probability of a large negative constant and
 * receive no gradient, matching invalid-action masking in the paper (§3.3).
 *
 * @param logits (1 x n) or vector
 * @param mask per-entry legality, size n; at least one entry must be true
 */
Value logSoftmaxMasked(const Value &logits, const std::vector<bool> &mask);

/// @}
/// @name Fused graph-attention primitives
/// @{

/**
 * Fused per-edge attention logits — Eq. (7) of the paper, in one op:
 *
 *   out[e, 0] = LeakyReLU(dst_scores[dst[e]] + src_scores[src[e]])
 *
 * replacing gatherRows + gatherRows + add + leakyRelu (four nodes, four
 * output buffers, four backward closures) in the GAT inner loop.
 * Results and gradients are bit-identical to the composed chain: the
 * same float sum, the same `x < 0` predicate (re-derived from the
 * pre-activation sum in backward), and the same edge-ascending
 * scatter-add order.
 *
 * @param dst_scores (N x 1) per-vertex destination scores (W h . a_dst)
 * @param src_scores (N x 1) per-vertex source scores (W h . a_src)
 * @param dst size-E destination vertex per edge
 * @param src size-E source vertex per edge
 * @param slope LeakyReLU slope c of Eq. 7
 */
Value edgeScores(const Value &dst_scores, const Value &src_scores,
                 const std::vector<std::int32_t> &dst,
                 const std::vector<std::int32_t> &src, float slope);

/** Result pair of gatEdgeTensorsInference(). */
struct GatEdgeTensors
{
    /** (E x H) pre-softmax attention logits, one column per head. */
    Value scores;
    /** (E x H*F) gathered source features, head-major. */
    Value values;
};

/**
 * Inference-only fusion of the whole per-head GAT edge chain
 * (Eq. 5 + 7 of the paper):
 *
 *   scores[e, k] = LeakyReLU((W_k h)[dst[e]] . a_dst_k +
 *                            (W_k h)[src[e]] . a_src_k)
 *   values[e, k*F + f] = (W_k h)[src[e], f]
 *
 * replacing, per head, matmul + two matvecs + edgeScores + gatherRows
 * plus the two concatCols that merge the heads. Every output element is
 * produced by the same IEEE operations in the same order as the
 * composed chain (the concatenated projection is written with a strided
 * matmul, the score dots keep matmulTransBAccum's ascending zero-skip
 * accumulation), so results are bit-identical; the fusion only skips
 * intermediate buffers, node bookkeeping, and concat copies.
 *
 * Panics unless the calling thread holds an InferenceGuard: the tape
 * path must keep the composed ops, which carry the gradients.
 *
 * @param feats (N x in) node features
 * @param weights per-head (in x F) projection
 * @param attn_src per-head (F x 1) source attention vector
 * @param attn_dst per-head (F x 1) destination attention vector
 * @param src size-E source vertex per edge
 * @param dst size-E destination vertex per edge
 * @param slope LeakyReLU slope c of Eq. 7
 */
GatEdgeTensors gatEdgeTensorsInference(
    const Value &feats, const std::vector<Value> &weights,
    const std::vector<Value> &attn_src, const std::vector<Value> &attn_dst,
    const std::vector<std::int32_t> &src,
    const std::vector<std::int32_t> &dst, float slope);

/**
 * Per-segment softmax with multiple heads.
 *
 * Row e of @p scores holds H attention logits for edge e; @p segments maps
 * each edge to its destination vertex. The softmax normalizes over all edges
 * sharing a segment, independently per head — Eq. (6) of the paper.
 *
 * @param scores (E x H) edge logits
 * @param segments size-E segment id per edge, values in [0, numSegments)
 * @param num_segments total segment count (vertices)
 */
Value segmentSoftmax(const Value &scores,
                     const std::vector<std::int32_t> &segments,
                     std::int32_t num_segments);

/**
 * Attention-weighted neighborhood aggregation — Eq. (8) of the paper.
 *
 * out[u, h*F+f] = sum over edges e with dst(e)==u of
 *                 alpha[e, h] * values[e, h*F+f].
 *
 * @param values (E x H*F) per-edge transformed source features, head-major
 * @param alpha (E x H) normalized attention coefficients
 * @param dst size-E destination vertex per edge
 * @param num_nodes output row count
 */
Value attentionAggregate(const Value &values, const Value &alpha,
                         const std::vector<std::int32_t> &dst,
                         std::int32_t num_nodes);

/// @}

} // namespace mapzero::nn

#endif // MAPZERO_NN_AUTOGRAD_HPP
