#include "nn/kernels.hpp"

namespace mapzero::nn::kernels {

namespace {

/** One-row tail of matmulAccum. */
void
matmulAccumRow(const float *__restrict arow, const float *__restrict b,
               float *__restrict crow, std::size_t k, std::size_t n)
{
    for (std::size_t p = 0; p < k; ++p) {
        const float aip = arow[p];
        if (aip == 0.0f)
            continue;
        const float *__restrict brow = b + p * n;
        std::size_t j = 0;
        for (; j + 4 <= n; j += 4) {
            crow[j + 0] += aip * brow[j + 0];
            crow[j + 1] += aip * brow[j + 1];
            crow[j + 2] += aip * brow[j + 2];
            crow[j + 3] += aip * brow[j + 3];
        }
        for (; j < n; ++j)
            crow[j] += aip * brow[j];
    }
}

} // namespace

void
matmulAccum(const float *__restrict a, const float *__restrict b,
            float *__restrict c, std::size_t m, std::size_t k,
            std::size_t n)
{
    matmulAccumLdc(a, b, c, m, k, n, n);
}

void
matmulAccumLdc(const float *__restrict a, const float *__restrict b,
               float *__restrict c, std::size_t m, std::size_t k,
               std::size_t n, std::size_t ldc)
{
    if (n == 1 && ldc == 1) {
        // Matrix-vector: one contiguous dot product per output row.
        matmulTransBAccum(a, b, c, m, k, 1);
        return;
    }
    std::size_t i = 0;
    for (; i + 4 <= m; i += 4) {
        const float *__restrict a0 = a + (i + 0) * k;
        const float *__restrict a1 = a + (i + 1) * k;
        const float *__restrict a2 = a + (i + 2) * k;
        const float *__restrict a3 = a + (i + 3) * k;
        float *__restrict c0 = c + (i + 0) * ldc;
        float *__restrict c1 = c + (i + 1) * ldc;
        float *__restrict c2 = c + (i + 2) * ldc;
        float *__restrict c3 = c + (i + 3) * ldc;
        for (std::size_t p = 0; p < k; ++p) {
            const float v0 = a0[p], v1 = a1[p], v2 = a2[p], v3 = a3[p];
            if (v0 == 0.0f && v1 == 0.0f && v2 == 0.0f && v3 == 0.0f)
                continue;
            const float *__restrict brow = b + p * n;
            for (std::size_t j = 0; j < n; ++j) {
                const float bj = brow[j];
                c0[j] += v0 * bj;
                c1[j] += v1 * bj;
                c2[j] += v2 * bj;
                c3[j] += v3 * bj;
            }
        }
    }
    for (; i < m; ++i)
        matmulAccumRow(a + i * k, b, c + i * ldc, k, n);
}

void
matmulTransBAccum(const float *__restrict a, const float *__restrict bt,
                  float *__restrict c, std::size_t m, std::size_t k,
                  std::size_t n)
{
    for (std::size_t i = 0; i < m; ++i) {
        const float *__restrict arow = a + i * k;
        float *__restrict crow = c + i * n;
        for (std::size_t j = 0; j < n; ++j) {
            const float *__restrict btrow = bt + j * k;
            float acc = crow[j];
            for (std::size_t p = 0; p < k; ++p) {
                const float aip = arow[p];
                if (aip == 0.0f)
                    continue;
                acc += aip * btrow[p];
            }
            crow[j] = acc;
        }
    }
}

void
addBiasRows(const float *in, const float *__restrict bias, float *out,
            std::size_t m, std::size_t n, bool relu)
{
    for (std::size_t r = 0; r < m; ++r) {
        const float *irow = in + r * n;
        float *orow = out + r * n;
        if (relu) {
            for (std::size_t j = 0; j < n; ++j) {
                const float v = irow[j] + bias[j];
                orow[j] = v < 0.0f ? v * 0.0f : v;
            }
        } else {
            for (std::size_t j = 0; j < n; ++j)
                orow[j] = irow[j] + bias[j];
        }
    }
}

} // namespace mapzero::nn::kernels
