/**
 * @file
 * Parameter-owning module base class (the torch.nn.Module analog).
 */

#ifndef MAPZERO_NN_MODULE_HPP
#define MAPZERO_NN_MODULE_HPP

#include <string>
#include <utility>
#include <vector>

#include "nn/autograd.hpp"

namespace mapzero::nn {

/**
 * Base class for anything that owns trainable parameters.
 *
 * Parameters register themselves under a local name; child modules register
 * under a prefix. parameters() / namedParameters() walk the tree, which is
 * what the optimizers and the serializer consume.
 */
class Module
{
  public:
    virtual ~Module() = default;

    Module() = default;
    Module(const Module &) = delete;
    Module &operator=(const Module &) = delete;

    /** All trainable parameters, depth-first. */
    std::vector<Value> parameters() const;

    /** (hierarchical name, parameter) pairs, depth-first. */
    std::vector<std::pair<std::string, Value>> namedParameters() const;

    /** Zero every parameter gradient. */
    void zeroGrad();

    /** Total scalar parameter count. */
    std::size_t parameterCount() const;

  protected:
    /** Register a trainable tensor under @p name; returns its handle. */
    Value registerParameter(const std::string &name, Tensor init);

    /** Register a child module under @p name (non-owning). */
    void registerChild(const std::string &name, Module *child);

  private:
    std::vector<std::pair<std::string, Value>> params_;
    std::vector<std::pair<std::string, Module *>> children_;
};

} // namespace mapzero::nn

#endif // MAPZERO_NN_MODULE_HPP
