#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <sstream>

#include "common/log.hpp"

namespace mapzero::nn {

namespace {

constexpr std::uint32_t kMagic = 0x4D5A4E4E; // "MZNN"
constexpr std::uint32_t kVersion = 1;

void
writeU32(std::ostream &os, std::uint32_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

std::uint32_t
readU32(std::istream &is)
{
    std::uint32_t v = 0;
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    return v;
}

void
writeString(std::ostream &os, const std::string &s)
{
    writeU32(os, static_cast<std::uint32_t>(s.size()));
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string
readString(std::istream &is)
{
    const std::uint32_t n = readU32(is);
    std::string s(n, '\0');
    is.read(s.data(), n);
    return s;
}

} // namespace

void
saveModule(const Module &module, std::ostream &os)
{
    const auto named = module.namedParameters();
    writeU32(os, kMagic);
    writeU32(os, kVersion);
    writeU32(os, static_cast<std::uint32_t>(named.size()));
    for (const auto &[name, p] : named) {
        const Tensor &t = p.tensor();
        writeString(os, name);
        writeU32(os, static_cast<std::uint32_t>(t.rank()));
        writeU32(os, static_cast<std::uint32_t>(t.rows()));
        writeU32(os, static_cast<std::uint32_t>(t.cols()));
        os.write(reinterpret_cast<const char *>(t.data().data()),
                 static_cast<std::streamsize>(t.size() * sizeof(float)));
    }
    if (!os)
        fatal("failed writing module checkpoint stream");
}

void
saveModule(const Module &module, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        fatal("cannot open checkpoint for writing: " + path);
    saveModule(module, os);
}

void
loadModule(Module &module, std::istream &is)
{
    if (readU32(is) != kMagic)
        fatal("not a MapZero checkpoint (bad magic)");
    if (readU32(is) != kVersion)
        fatal("unsupported checkpoint version");
    const std::uint32_t count = readU32(is);
    const auto named = module.namedParameters();
    if (count != named.size())
        fatal(cat("checkpoint has ", count, " tensors, module expects ",
                  named.size()));
    for (const auto &[name, p] : named) {
        const std::string stored = readString(is);
        if (stored != name)
            fatal(cat("checkpoint tensor '", stored,
                      "' does not match parameter '", name, "'"));
        const std::uint32_t rank = readU32(is);
        const std::uint32_t rows = readU32(is);
        const std::uint32_t cols = readU32(is);
        Tensor &t = p.node()->value;
        if (rank != t.rank() || rows != t.rows() || cols != t.cols())
            fatal(cat("checkpoint shape mismatch for '", name, "'"));
        is.read(reinterpret_cast<char *>(t.data().data()),
                static_cast<std::streamsize>(t.size() * sizeof(float)));
    }
    if (!is)
        fatal("failed reading module checkpoint stream");
}

void
loadModule(Module &module, const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot open checkpoint for reading: " + path);
    loadModule(module, is);
}

} // namespace mapzero::nn
