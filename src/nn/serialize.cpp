#include "nn/serialize.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/crc32.hpp"
#include "common/log.hpp"

namespace mapzero::nn {

namespace {

constexpr std::uint32_t kMagic = 0x4D5A4E4E; // "MZNN"

} // namespace

// --- ByteWriter -------------------------------------------------------

void
ByteWriter::u8(std::uint8_t v)
{
    buf_.push_back(static_cast<char>(v));
}

void
ByteWriter::u32(std::uint32_t v)
{
    bytes(&v, sizeof(v));
}

void
ByteWriter::u64(std::uint64_t v)
{
    bytes(&v, sizeof(v));
}

void
ByteWriter::i32(std::int32_t v)
{
    bytes(&v, sizeof(v));
}

void
ByteWriter::f32(float v)
{
    bytes(&v, sizeof(v));
}

void
ByteWriter::f64(double v)
{
    bytes(&v, sizeof(v));
}

void
ByteWriter::bytes(const void *data, std::size_t size)
{
    buf_.append(static_cast<const char *>(data), size);
}

void
ByteWriter::str(const std::string &s)
{
    u32(static_cast<std::uint32_t>(s.size()));
    bytes(s.data(), s.size());
}

void
ByteWriter::tensor(const Tensor &t)
{
    u32(static_cast<std::uint32_t>(t.rank()));
    u32(static_cast<std::uint32_t>(t.rows()));
    u32(static_cast<std::uint32_t>(t.cols()));
    u64(t.size());
    bytes(t.data().data(), t.size() * sizeof(float));
}

// --- ByteReader -------------------------------------------------------

ByteReader::ByteReader(std::string_view bytes, std::string context)
    : bytes_(bytes), context_(std::move(context))
{}

void
ByteReader::bytes(void *out, std::size_t size)
{
    if (size > bytes_.size() - pos_)
        fatal(cat("truncated ", context_, ": wanted ", size,
                  " bytes, ", bytes_.size() - pos_, " left"));
    std::memcpy(out, bytes_.data() + pos_, size);
    pos_ += size;
}

std::uint8_t
ByteReader::u8()
{
    std::uint8_t v = 0;
    bytes(&v, sizeof(v));
    return v;
}

std::uint32_t
ByteReader::u32()
{
    std::uint32_t v = 0;
    bytes(&v, sizeof(v));
    return v;
}

std::uint64_t
ByteReader::u64()
{
    std::uint64_t v = 0;
    bytes(&v, sizeof(v));
    return v;
}

std::int32_t
ByteReader::i32()
{
    std::int32_t v = 0;
    bytes(&v, sizeof(v));
    return v;
}

float
ByteReader::f32()
{
    float v = 0.0f;
    bytes(&v, sizeof(v));
    return v;
}

double
ByteReader::f64()
{
    double v = 0.0;
    bytes(&v, sizeof(v));
    return v;
}

std::string
ByteReader::str()
{
    const std::uint32_t n = u32();
    if (n > bytes_.size() - pos_)
        fatal(cat("truncated ", context_, ": string of ", n,
                  " bytes, ", bytes_.size() - pos_, " left"));
    std::string s(bytes_.substr(pos_, n));
    pos_ += n;
    return s;
}

Tensor
ByteReader::tensor()
{
    const std::uint32_t rank = u32();
    const std::uint32_t rows = u32();
    const std::uint32_t cols = u32();
    const std::uint64_t size = u64();
    if (rank > 2)
        fatal(cat("corrupt ", context_, ": tensor rank ", rank));
    std::vector<float> data(size);
    bytes(data.data(), size * sizeof(float));
    switch (rank) {
    case 0:
        return Tensor(data.empty() ? 0.0f : data[0]);
    case 1:
        return Tensor(std::move(data));
    default:
        if (static_cast<std::uint64_t>(rows) * cols != size)
            fatal(cat("corrupt ", context_, ": tensor ", rows, "x",
                      cols, " carries ", size, " values"));
        return Tensor(rows, cols, std::move(data));
    }
}

void
ByteReader::tensorInto(Tensor &into, const std::string &what)
{
    const std::uint32_t rank = u32();
    const std::uint32_t rows = u32();
    const std::uint32_t cols = u32();
    const std::uint64_t size = u64();
    if (rank != into.rank() || rows != into.rows() ||
        cols != into.cols() || size != into.size())
        fatal(cat(context_, ": shape mismatch for ", what));
    bytes(into.data().data(), size * sizeof(float));
}

void
ByteReader::skip(std::size_t size)
{
    if (size > bytes_.size() - pos_)
        fatal(cat("truncated ", context_, ": wanted ", size,
                  " bytes, ", bytes_.size() - pos_, " left"));
    pos_ += size;
}

void
ByteReader::expectEnd() const
{
    if (pos_ != bytes_.size())
        fatal(cat("corrupt ", context_, ": ", bytes_.size() - pos_,
                  " trailing bytes"));
}

// --- Container --------------------------------------------------------

void
CheckpointWriter::addSection(const std::string &name, std::string payload)
{
    for (const auto &[existing, _] : sections_) {
        if (existing == name)
            panic("duplicate checkpoint section: " + name);
    }
    sections_.emplace_back(name, std::move(payload));
}

std::string
CheckpointWriter::finish() const
{
    ByteWriter w;
    w.u32(kMagic);
    w.u32(kCheckpointVersion);
    w.u32(static_cast<std::uint32_t>(sections_.size()));
    for (const auto &[name, payload] : sections_) {
        w.str(name);
        w.u64(payload.size());
        w.bytes(payload.data(), payload.size());
    }
    const std::uint32_t crc = crc32(w.buffer());
    w.u32(crc);
    return std::string(w.take());
}

void
CheckpointWriter::writeFile(const std::string &path) const
{
    const std::string bytes = finish();
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            fatal("cannot open checkpoint for writing: " + tmp);
        os.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size()));
        os.flush();
        if (!os)
            fatal("failed writing checkpoint: " + tmp);
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        fatal(cat("cannot move checkpoint into place: ", tmp, " -> ",
                  path, " (", ec.message(), ")"));
}

CheckpointReader::CheckpointReader(std::string bytes, std::string context)
    : bytes_(std::move(bytes)), context_(std::move(context))
{
    // Verify the CRC footer over the raw bytes before trusting any of
    // the framing: a flipped bit anywhere fails here, not deep inside a
    // section parse.
    if (bytes_.size() < sizeof(std::uint32_t) * 4)
        fatal(cat("not a MapZero checkpoint (", context_,
                  " is too short)"));
    const std::size_t body_size = bytes_.size() - sizeof(std::uint32_t);
    std::uint32_t stored_crc = 0;
    std::memcpy(&stored_crc, bytes_.data() + body_size,
                sizeof(stored_crc));
    const std::uint32_t actual_crc = crc32(bytes_.data(), body_size);

    ByteReader r(std::string_view(bytes_.data(), body_size), context_);
    if (r.u32() != kMagic)
        fatal(cat("not a MapZero checkpoint (bad magic): ", context_));
    const std::uint32_t version = r.u32();
    if (version != kCheckpointVersion)
        fatal(cat("unsupported checkpoint version ", version, " in ",
                  context_, " (expected ", kCheckpointVersion, ")"));
    if (stored_crc != actual_crc)
        fatal(cat("corrupt checkpoint (CRC mismatch): ", context_));

    const std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
        const std::string name = r.str();
        const std::uint64_t size = r.u64();
        if (size > r.remaining())
            fatal(cat("truncated ", context_, ": section '", name,
                      "' claims ", size, " bytes"));
        sections_.emplace_back(
            name, std::string_view(bytes_.data() + r.pos(),
                                   static_cast<std::size_t>(size)));
        r.skip(static_cast<std::size_t>(size));
    }
    r.expectEnd();
}

CheckpointReader
CheckpointReader::fromFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot open checkpoint for reading: " + path);
    std::ostringstream buffer;
    buffer << is.rdbuf();
    if (!is && !is.eof())
        fatal("failed reading checkpoint: " + path);
    return CheckpointReader(buffer.str(), path);
}

bool
CheckpointReader::hasSection(const std::string &name) const
{
    for (const auto &[existing, _] : sections_) {
        if (existing == name)
            return true;
    }
    return false;
}

std::string_view
CheckpointReader::section(const std::string &name) const
{
    for (const auto &[existing, payload] : sections_) {
        if (existing == name)
            return payload;
    }
    fatal(cat("checkpoint ", context_, " has no '", name,
              "' section"));
}

// --- Module payloads --------------------------------------------------

std::string
moduleToBytes(const Module &module)
{
    const auto named = module.namedParameters();
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(named.size()));
    for (const auto &[name, p] : named) {
        w.str(name);
        w.tensor(p.tensor());
    }
    return w.take();
}

void
moduleFromBytes(Module &module, std::string_view payload,
                const std::string &context)
{
    const auto named = module.namedParameters();

    // Pass 1: validate the whole payload (names, shapes, framing)
    // without touching the module, so a mismatch never partially loads.
    {
        ByteReader r(payload, context);
        const std::uint32_t count = r.u32();
        if (count != named.size())
            fatal(cat(context, " has ", count, " tensors, module "
                      "expects ", named.size()));
        for (const auto &[name, p] : named) {
            const std::string stored = r.str();
            if (stored != name)
                fatal(cat(context, ": checkpoint tensor '", stored,
                          "' does not match parameter '", name, "'"));
            const Tensor &t = p.tensor();
            Tensor probe = Tensor::zerosLike(t);
            r.tensorInto(probe, name);
        }
        r.expectEnd();
    }

    // Pass 2: the payload is fully valid; copy the data in.
    ByteReader r(payload, context);
    r.u32();
    for (const auto &[name, p] : named) {
        r.str();
        r.tensorInto(p.node()->value, name);
    }
}

// --- Weights-only containers ------------------------------------------

void
saveModule(const Module &module, std::ostream &os)
{
    CheckpointWriter writer;
    writer.addSection("module", moduleToBytes(module));
    const std::string bytes = writer.finish();
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!os)
        fatal("failed writing module checkpoint stream");
}

void
saveModule(const Module &module, const std::string &path)
{
    CheckpointWriter writer;
    writer.addSection("module", moduleToBytes(module));
    writer.writeFile(path);
}

void
loadModule(Module &module, std::istream &is)
{
    std::ostringstream buffer;
    buffer << is.rdbuf();
    const CheckpointReader reader(buffer.str(), "module checkpoint");
    moduleFromBytes(module, reader.section("module"),
                    "module checkpoint");
}

void
loadModule(Module &module, const std::string &path)
{
    const CheckpointReader reader = CheckpointReader::fromFile(path);
    moduleFromBytes(module, reader.section("module"), path);
}

} // namespace mapzero::nn
