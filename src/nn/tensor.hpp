/**
 * @file
 * Dense float tensor used by the neural-network substrate.
 *
 * MapZero's networks are small (two GAT layers plus MLP heads), so the
 * tensor type optimizes for clarity: row-major contiguous storage, ranks 0-2
 * (scalars, vectors, matrices) cover every operation the model needs.
 */

#ifndef MAPZERO_NN_TENSOR_HPP
#define MAPZERO_NN_TENSOR_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mapzero { class Rng; }

namespace mapzero::nn {

/** Row-major dense float tensor of rank 0, 1, or 2. */
class Tensor
{
  public:
    /** Empty scalar zero. */
    Tensor();

    /** Rank-0 scalar. */
    explicit Tensor(float scalar);

    /** Rank-1 vector copied from @p values. */
    explicit Tensor(std::vector<float> values);

    /** Rank-2 matrix (rows x cols), zero-filled. */
    Tensor(std::size_t rows, std::size_t cols);

    /** Rank-2 matrix initialized from row-major @p values. */
    Tensor(std::size_t rows, std::size_t cols, std::vector<float> values);

    /** Zero tensor with the same shape as @p like. */
    static Tensor zerosLike(const Tensor &like);

    /**
     * Storage-free placeholder (size 0): a slot that will be assigned
     * before any element is read. Autograd nodes use this for the grad
     * buffer so that the millions of short-lived nodes a forward pass
     * creates never pay a heap allocation for a gradient that is only
     * materialized by ensureGrad() during backward().
     */
    static Tensor unallocated();

    /**
     * Tensor with @p like's shape and rank adopting @p data verbatim
     * (size must match). This is how the inference fast path builds
     * results on recycled arena buffers without an extra copy.
     */
    static Tensor withShapeOf(const Tensor &like, std::vector<float> data);

    /** rows x cols of a constant. */
    static Tensor full(std::size_t rows, std::size_t cols, float value);

    /** rows x cols with U(lo, hi) entries. */
    static Tensor uniform(std::size_t rows, std::size_t cols,
                          float lo, float hi, Rng &rng);

    /** rows x cols with N(0, stddev^2) entries. */
    static Tensor normal(std::size_t rows, std::size_t cols,
                         float stddev, Rng &rng);

    std::size_t rank() const { return rank_; }
    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }

    bool sameShape(const Tensor &other) const;

    /** Flat element access. */
    float operator[](std::size_t i) const { return data_[i]; }
    float &operator[](std::size_t i) { return data_[i]; }

    /** 2-D element access (valid for rank 2; rank 1 behaves as 1 x n). */
    float at(std::size_t r, std::size_t c) const;
    float &at(std::size_t r, std::size_t c);

    /** Rank-0/single-element read. */
    float item() const;

    const std::vector<float> &data() const { return data_; }
    std::vector<float> &data() { return data_; }

    /** Set all elements to @p value. */
    void fill(float value);

    /** Accumulate other into this (same shape). */
    void addInPlace(const Tensor &other);

    /** Scale all elements. */
    void scaleInPlace(float factor);

    /** Sum of all elements. */
    float sum() const;

    /** L2 norm of all elements. */
    float norm() const;

    /** Human-readable shape, e.g. "[3x4]". */
    std::string shapeString() const;

  private:
    struct UnallocatedTag {};
    explicit Tensor(UnallocatedTag) : rank_(0), rows_(1), cols_(1) {}

    std::size_t rank_;
    std::size_t rows_;
    std::size_t cols_;
    std::vector<float> data_;
};

/**
 * Per-thread pool of float buffers backing inference-mode tensors.
 *
 * Forward passes under nn::InferenceGuard draw every op output from
 * this arena and, when the result's Node dies, the buffer returns here
 * instead of the heap — after the first forward warms the pool, a
 * steady-state inference pass performs no tensor allocations at all.
 *
 * Lifetime rules (see DESIGN.md §10): the arena is thread-local and
 * dies with its thread, so arena-backed Values (anything an op returned
 * while a guard was active) must be dropped — or deep-copied into plain
 * tensors, as the eval cache does — before the owning thread exits.
 * Never stash them in process-lifetime statics.
 */
class TensorArena
{
  public:
    /** The calling thread's arena. */
    static TensorArena &thisThread();

    /**
     * A buffer of exactly @p size floats, recycled when the pool has
     * one (zero-filled when @p zeroed, else contents unspecified).
     */
    std::vector<float> acquire(std::size_t size, bool zeroed);

    /** Return @p buffer's storage to the pool. */
    void release(std::vector<float> &&buffer);

    /** Buffers currently parked in the pool. */
    std::size_t pooledBuffers() const { return pool_.size(); }
    /** acquire() calls served from the pool. */
    std::uint64_t reuses() const { return reuses_; }
    /** acquire() calls that had to touch the heap. */
    std::uint64_t heapAllocations() const { return heapAllocations_; }

    TensorArena() = default;
    TensorArena(const TensorArena &) = delete;
    TensorArena &operator=(const TensorArena &) = delete;

  private:
    /** Cap on parked buffers; excess releases free normally. */
    static constexpr std::size_t kMaxPooledBuffers = 512;

    std::vector<std::vector<float>> pool_;
    std::uint64_t reuses_ = 0;
    std::uint64_t heapAllocations_ = 0;
};

} // namespace mapzero::nn

#endif // MAPZERO_NN_TENSOR_HPP
