/**
 * @file
 * Dense compute kernels shared by the autograd ops' forward and backward
 * passes — and therefore by training and inference alike.
 *
 * The kernels are pointer-based and register-blocked so the compiler can
 * keep accumulators in registers and vectorize the contiguous inner
 * loops. Accumulation order over the contraction dimension is kept
 * ascending, exactly like the reference triple loop, so swapping a call
 * site onto a kernel never changes results beyond the sign of exact
 * zeros (x + 0.0f*y preserves x for every finite y).
 */

#ifndef MAPZERO_NN_KERNELS_HPP
#define MAPZERO_NN_KERNELS_HPP

#include <cstddef>

namespace mapzero::nn::kernels {

/**
 * c += a * b for row-major a (m x k), b (k x n), c (m x n).
 *
 * i-p-j loop order with 4-row register blocking: each pass over a row
 * of b updates four output rows, and the j loop is contiguous in both
 * b and c so it vectorizes without reassociating any per-element sum.
 * Rows of a that are entirely zero at a given p are skipped, which
 * keeps the ReLU-sparse activations of the GAT stack cheap.
 */
void matmulAccum(const float *__restrict a, const float *__restrict b,
                 float *__restrict c,
                 std::size_t m, std::size_t k, std::size_t n);

/**
 * As matmulAccum, but rows of c are @p ldc floats apart (ldc >= n), so
 * the product can land in a column block of a wider matrix. Per-element
 * arithmetic is identical to the contiguous variant — the inference
 * fast path uses this to write per-head products straight into the
 * concatenated head-major buffer, skipping the concatCols copy.
 */
void matmulAccumLdc(const float *__restrict a, const float *__restrict b,
                    float *__restrict c, std::size_t m, std::size_t k,
                    std::size_t n, std::size_t ldc);

/**
 * c += a * bt^T for row-major a (m x k), bt (n x k), c (m x n).
 *
 * The transposed-B variant: both operands of the inner dot product are
 * contiguous, which is the right shape when B is tall and thin — the
 * Linear backward (dX = G * W^T) and the attention matvecs use it.
 */
void matmulTransBAccum(const float *__restrict a,
                       const float *__restrict bt, float *__restrict c,
                       std::size_t m, std::size_t k, std::size_t n);

/**
 * out[r, :] = in[r, :] + bias[:] for r in [0, m), optionally clamping
 * negatives with ReLU (multiply-by-zero form, matching leakyRelu with
 * slope 0). in == out aliasing is allowed.
 */
void addBiasRows(const float *in, const float *__restrict bias,
                 float *out, std::size_t m, std::size_t n, bool relu);

} // namespace mapzero::nn::kernels

#endif // MAPZERO_NN_KERNELS_HPP
