/**
 * @file
 * Modulo routing resource graph (MRRG) indexing.
 *
 * For temporal mapping with initiation interval II, every physical
 * resource is replicated per modulo time slice (Mei et al., DRESC). The
 * resources we model per (PE, slot):
 *
 *  - one *function* slot: the operation issued on the PE's ALU,
 *  - one *register* slot: the value held in the PE's output register
 *    (used both by the PE's own result and by values routed through),
 *
 * and per (directed link, slot) one *wire* slot, which is what the
 * HyCube-style crossbar router allocates for same-cycle multi-hop paths.
 *
 * The Mrrg itself is immutable indexing; occupancy lives in the mapper's
 * RoutingState so search algorithms can snapshot/rollback cheaply.
 */

#ifndef MAPZERO_CGRA_MRRG_HPP
#define MAPZERO_CGRA_MRRG_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cgra/architecture.hpp"

namespace mapzero::cgra {

/** Index of a directed link in an Architecture's linkList(). */
using LinkId = std::int32_t;

/** Immutable modulo-resource indexing for (architecture, II). */
class Mrrg
{
  public:
    Mrrg(const Architecture &arch, std::int32_t ii);

    const Architecture &arch() const { return *arch_; }
    std::int32_t ii() const { return ii_; }
    std::int32_t peCount() const { return arch_->peCount(); }
    std::int32_t linkCount() const
    {
        return static_cast<std::int32_t>(links_.size());
    }

    /** Modulo slot of an absolute time. */
    std::int32_t slotOf(std::int32_t time) const
    {
        return ((time % ii_) + ii_) % ii_;
    }

    /** Flat index of the function resource (pe, slot). */
    std::int32_t funcIndex(PeId pe, std::int32_t slot) const
    {
        return pe * ii_ + slot;
    }

    /** Flat index of the register resource (pe, slot). */
    std::int32_t regIndex(PeId pe, std::int32_t slot) const
    {
        return pe * ii_ + slot;
    }

    /** Flat index of the wire resource (link, slot). */
    std::int32_t wireIndex(LinkId link, std::int32_t slot) const
    {
        return link * ii_ + slot;
    }

    std::int32_t funcResourceCount() const { return peCount() * ii_; }
    std::int32_t regResourceCount() const { return peCount() * ii_; }
    std::int32_t wireResourceCount() const { return linkCount() * ii_; }

    /** The (src, dst) endpoints of @p link. */
    const std::pair<PeId, PeId> &link(LinkId id) const
    {
        return links_[static_cast<std::size_t>(id)];
    }

    /** Directed link id src -> dst, or -1 when absent. */
    LinkId linkBetween(PeId src, PeId dst) const;

    /** Link ids leaving @p pe. */
    const std::vector<LinkId> &linksOut(PeId pe) const
    {
        return linksOut_[static_cast<std::size_t>(pe)];
    }

    /** Link ids entering @p pe. */
    const std::vector<LinkId> &linksIn(PeId pe) const
    {
        return linksIn_[static_cast<std::size_t>(pe)];
    }

    /**
     * Static link-hop distance src -> dst over the fabric graph, or -1
     * when unreachable. Computed once per Mrrg (all-pairs BFS), it is a
     * lower bound on any route's hop count and on the cycles a
     * single-hop route needs, which is what the router's admissible
     * pruning and the agent's routability filter consume.
     */
    std::int32_t hopDistance(PeId src, PeId dst) const
    {
        return hopDist_[static_cast<std::size_t>(src) *
                            static_cast<std::size_t>(peCount()) +
                        static_cast<std::size_t>(dst)];
    }

  private:
    const Architecture *arch_;
    std::int32_t ii_;
    std::vector<std::pair<PeId, PeId>> links_;
    std::vector<std::vector<LinkId>> linksOut_;
    std::vector<std::vector<LinkId>> linksIn_;
    std::unordered_map<std::int64_t, LinkId> linkLookup_;
    /** Row-major peCount x peCount link-hop distances (-1: unreachable). */
    std::vector<std::int32_t> hopDist_;
};

} // namespace mapzero::cgra

#endif // MAPZERO_CGRA_MRRG_HPP
