/**
 * @file
 * CGRA symmetry analysis for training-data augmentation.
 *
 * The paper augments self-play data "by analyzing the symmetry of the
 * target CGRA [and applying] flip, shift, and rotate" to searched mappings
 * (§3.6.1). A symmetry here is a PE permutation that is an automorphism of
 * the fabric: it preserves the link structure, per-PE capabilities, and
 * (for ADRES) the row-bus grouping. Applying such a permutation to a valid
 * mapping yields another valid mapping, so each one multiplies the
 * training set.
 */

#ifndef MAPZERO_CGRA_SYMMETRY_HPP
#define MAPZERO_CGRA_SYMMETRY_HPP

#include <vector>

#include "cgra/architecture.hpp"

namespace mapzero::cgra {

/** PE permutation: image[pe] is where pe maps to. */
using PePermutation = std::vector<PeId>;

/** Whether @p perm is an automorphism of @p arch. */
bool isAutomorphism(const Architecture &arch, const PePermutation &perm);

/**
 * All valid symmetries among the dihedral transforms of the grid
 * (rotations by 90/180/270 where the grid is square, horizontal and
 * vertical flips, transposes) plus toroidal translations when every
 * cardinal link wraps. The identity is always first.
 */
std::vector<PePermutation> gridSymmetries(const Architecture &arch);

/** Compose two permutations: result[p] = outer[inner[p]]. */
PePermutation compose(const PePermutation &outer,
                      const PePermutation &inner);

} // namespace mapzero::cgra

#endif // MAPZERO_CGRA_SYMMETRY_HPP
