/**
 * @file
 * CGRA architecture model: PE capabilities, interconnect topologies, and
 * the preset fabrics of the paper's evaluation (Table 1 / Fig. 7 / Fig. 14).
 *
 * A PE executes at most one operation per cycle and owns one output
 * register. Capabilities follow the paper's hardware feature vector:
 * booleans for logical / arithmetic / memory-access support (§3.2.2), plus
 * the per-PE unit inventory of §4.1.1 (five constant units, two load
 * units, one ALU, one store unit, one output register).
 *
 * Interconnect styles (Fig. 7): mesh, 1-hop (skip-one), diagonal,
 * toroidal wrap, and the HyCube-style circuit-switched crossbar where a
 * value may traverse several crossbar hops within a single cycle.
 */

#ifndef MAPZERO_CGRA_ARCHITECTURE_HPP
#define MAPZERO_CGRA_ARCHITECTURE_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dfg/opcode.hpp"

namespace mapzero::cgra {

/** PE index within an Architecture (row-major). */
using PeId = std::int32_t;

/** Interconnect style bit flags (an architecture combines several). */
enum class Interconnect : std::uint8_t {
    Mesh     = 1 << 0, ///< 4-neighbor N/E/S/W
    OneHop   = 1 << 1, ///< skip-one links in the four cardinal directions
    Diagonal = 1 << 2, ///< 4 diagonal neighbors
    Toroidal = 1 << 3, ///< wrap-around for the cardinal links
    Crossbar = 1 << 4, ///< circuit-switched single-cycle multi-hop (HyCube)
};

/** Per-PE static configuration. */
struct PeConfig {
    bool arithmetic = true;
    bool logic = true;
    bool memory = true;
    /** Unit inventory (paper §4.1.1). */
    std::int32_t constUnits = 5;
    std::int32_t loadUnits = 2;
    std::int32_t aluUnits = 1;
    std::int32_t storeUnits = 1;
    std::int32_t outputRegs = 1;

    /** Whether this PE can execute @p op. */
    bool supports(dfg::Opcode op) const;
};

/** A rectangular CGRA fabric. */
class Architecture
{
  public:
    /**
     * @param name preset / fabric name used in reports
     * @param rows grid height
     * @param cols grid width
     * @param links OR-combination of Interconnect flags
     */
    Architecture(std::string name, std::int32_t rows, std::int32_t cols,
                 std::uint8_t links);

    const std::string &name() const { return name_; }
    std::int32_t rows() const { return rows_; }
    std::int32_t cols() const { return cols_; }
    std::int32_t peCount() const { return rows_ * cols_; }

    PeId peAt(std::int32_t r, std::int32_t c) const { return r * cols_ + c; }
    std::int32_t rowOf(PeId pe) const { return pe / cols_; }
    std::int32_t colOf(PeId pe) const { return pe % cols_; }

    bool hasLink(Interconnect style) const;
    /** True for HyCube-style fabrics (decoupled placement & routing). */
    bool isMultiHop() const { return hasLink(Interconnect::Crossbar); }

    const PeConfig &pe(PeId id) const;
    PeConfig &pe(PeId id);

    /**
     * ADRES-style shared memory bus: when set, all PEs of a row share one
     * memory port, so at most one load/store may issue per row per cycle.
     */
    bool rowSharedMemoryBus() const { return rowSharedMemoryBus_; }
    void setRowSharedMemoryBus(bool shared);

    /** PEs able to execute memory operations (for ResMII). */
    std::int32_t memoryPeCount() const;

    /**
     * Effective per-cycle memory-issue capacity (rows when the bus is
     * shared, memory-capable PEs otherwise); used by ResMII.
     */
    std::int32_t memoryIssueCapacity() const;

    /** Directed neighbor PEs reachable in one hop (single-cycle links). */
    const std::vector<PeId> &neighborsOut(PeId pe) const;
    /** Directed PEs that can reach @p pe in one hop. */
    const std::vector<PeId> &neighborsIn(PeId pe) const;

    /** All directed single-hop links as (src, dst) pairs. */
    std::vector<std::pair<PeId, PeId>> linkList() const;

    /** Whether a directed link src -> dst exists. */
    bool connected(PeId src, PeId dst) const;

    /**
     * Canonical byte encoding of everything that affects mapping:
     * grid shape, memory-bus mode, every PE's configuration, and the
     * full link list. Excludes the display name, so two fabrics that
     * map identically encode identically. Used as cache-key material
     * (eval-cache arch signature, persistent result tier).
     */
    std::string canonicalBytes() const;

    /// @name Paper presets (Table 1, Fig. 14)
    /// @{
    static Architecture hrea();        ///< 4x4, mesh+1hop+diag+toroidal
    static Architecture morphosys();   ///< 8x8, mesh+1hop+toroidal
    static Architecture adres();       ///< 4x4, mesh+1hop+toroidal, row bus
    static Architecture hycube();      ///< 4x4, crossbar
    static Architecture baseline8();   ///< 8x8, mesh+1hop+diag
    static Architecture baseline16();  ///< 16x16, mesh+1hop+diag+toroidal
    static Architecture heterogeneous(); ///< Fig. 14 4x4 mixed-function
    /// @}

    /** All Table-1 presets (excludes heterogeneous). */
    static std::vector<Architecture> table1Presets();

    /**
     * Preset by canonical CLI/protocol name ("hrea", "morphosys",
     * "adres", "hycube", "baseline8", "baseline16", "hetero");
     * nullopt for anything else. Network-facing callers (mapzerod)
     * turn nullopt into a BAD_REQUEST instead of a fatal().
     */
    static std::optional<Architecture> byName(const std::string &name);

    /** The names byName() accepts, pipe-separated (for messages). */
    static const char *knownNames();

  private:
    void buildNeighbors();
    void addLink(PeId src, PeId dst);

    std::string name_;
    std::int32_t rows_;
    std::int32_t cols_;
    std::uint8_t links_;
    bool rowSharedMemoryBus_ = false;
    std::vector<PeConfig> pes_;
    std::vector<std::vector<PeId>> neighborsOut_;
    std::vector<std::vector<PeId>> neighborsIn_;
};

/** Combine interconnect flags. */
constexpr std::uint8_t
linkMask(std::initializer_list<Interconnect> styles)
{
    std::uint8_t m = 0;
    for (Interconnect s : styles)
        m |= static_cast<std::uint8_t>(s);
    return m;
}

} // namespace mapzero::cgra

#endif // MAPZERO_CGRA_ARCHITECTURE_HPP
