#include "cgra/architecture.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace mapzero::cgra {

bool
PeConfig::supports(dfg::Opcode op) const
{
    switch (dfg::opClass(op)) {
      case dfg::OpClass::Arithmetic: return arithmetic;
      case dfg::OpClass::Logic:      return logic;
      case dfg::OpClass::Memory:     return memory;
    }
    panic("unknown op class");
}

Architecture::Architecture(std::string name, std::int32_t rows,
                           std::int32_t cols, std::uint8_t links)
    : name_(std::move(name)), rows_(rows), cols_(cols), links_(links)
{
    if (rows < 1 || cols < 1)
        fatal("architecture grid must be at least 1x1");
    pes_.resize(static_cast<std::size_t>(peCount()));
    buildNeighbors();
}

bool
Architecture::hasLink(Interconnect style) const
{
    return (links_ & static_cast<std::uint8_t>(style)) != 0;
}

const PeConfig &
Architecture::pe(PeId id) const
{
    return pes_[static_cast<std::size_t>(id)];
}

PeConfig &
Architecture::pe(PeId id)
{
    return pes_[static_cast<std::size_t>(id)];
}

void
Architecture::setRowSharedMemoryBus(bool shared)
{
    rowSharedMemoryBus_ = shared;
}

std::int32_t
Architecture::memoryPeCount() const
{
    return static_cast<std::int32_t>(
        std::count_if(pes_.begin(), pes_.end(),
                      [](const PeConfig &p) { return p.memory; }));
}

std::int32_t
Architecture::memoryIssueCapacity() const
{
    if (!rowSharedMemoryBus_)
        return memoryPeCount();
    // One memory issue per row per cycle on a shared bus.
    std::int32_t rows_with_mem = 0;
    for (std::int32_t r = 0; r < rows_; ++r) {
        for (std::int32_t c = 0; c < cols_; ++c) {
            if (pe(peAt(r, c)).memory) {
                ++rows_with_mem;
                break;
            }
        }
    }
    return rows_with_mem;
}

const std::vector<PeId> &
Architecture::neighborsOut(PeId pe) const
{
    return neighborsOut_[static_cast<std::size_t>(pe)];
}

const std::vector<PeId> &
Architecture::neighborsIn(PeId pe) const
{
    return neighborsIn_[static_cast<std::size_t>(pe)];
}

std::vector<std::pair<PeId, PeId>>
Architecture::linkList() const
{
    std::vector<std::pair<PeId, PeId>> out;
    for (PeId p = 0; p < peCount(); ++p)
        for (PeId q : neighborsOut(p))
            out.emplace_back(p, q);
    return out;
}

bool
Architecture::connected(PeId src, PeId dst) const
{
    const auto &nbrs = neighborsOut(src);
    return std::find(nbrs.begin(), nbrs.end(), dst) != nbrs.end();
}

std::string
Architecture::canonicalBytes() const
{
    std::string bytes;
    const auto append = [&bytes](const void *p, std::size_t n) {
        bytes.append(static_cast<const char *>(p), n);
    };
    const auto append_i32 = [&](std::int32_t v) { append(&v, sizeof(v)); };
    append_i32(rows_);
    append_i32(cols_);
    bytes.push_back(rowSharedMemoryBus_ ? '\1' : '\0');
    for (const PeConfig &cfg : pes_) {
        bytes.push_back(cfg.arithmetic ? '\1' : '\0');
        bytes.push_back(cfg.logic ? '\1' : '\0');
        bytes.push_back(cfg.memory ? '\1' : '\0');
        append_i32(cfg.constUnits);
        append_i32(cfg.loadUnits);
        append_i32(cfg.aluUnits);
        append_i32(cfg.storeUnits);
        append_i32(cfg.outputRegs);
    }
    for (const auto &[src, dst] : linkList()) {
        append_i32(src);
        append_i32(dst);
    }
    return bytes;
}

void
Architecture::addLink(PeId src, PeId dst)
{
    auto &out = neighborsOut_[static_cast<std::size_t>(src)];
    if (std::find(out.begin(), out.end(), dst) != out.end())
        return;
    out.push_back(dst);
    neighborsIn_[static_cast<std::size_t>(dst)].push_back(src);
}

void
Architecture::buildNeighbors()
{
    neighborsOut_.assign(static_cast<std::size_t>(peCount()), {});
    neighborsIn_.assign(static_cast<std::size_t>(peCount()), {});

    const bool torus = hasLink(Interconnect::Toroidal);
    auto wrap = [](std::int32_t v, std::int32_t m) {
        return ((v % m) + m) % m;
    };

    // The crossbar fabric is physically a mesh of crossbar switches; its
    // single-cycle multi-hop behaviour is a property of routing, so its
    // one-hop adjacency is the mesh adjacency.
    const bool mesh = hasLink(Interconnect::Mesh) ||
                      hasLink(Interconnect::Crossbar);

    for (std::int32_t r = 0; r < rows_; ++r) {
        for (std::int32_t c = 0; c < cols_; ++c) {
            const PeId p = peAt(r, c);
            auto try_add = [&](std::int32_t nr, std::int32_t nc) {
                if (torus) {
                    nr = wrap(nr, rows_);
                    nc = wrap(nc, cols_);
                } else if (nr < 0 || nr >= rows_ || nc < 0 ||
                           nc >= cols_) {
                    return;
                }
                const PeId q = peAt(nr, nc);
                if (q != p)
                    addLink(p, q);
            };

            if (mesh) {
                try_add(r - 1, c);
                try_add(r + 1, c);
                try_add(r, c - 1);
                try_add(r, c + 1);
            }
            if (hasLink(Interconnect::OneHop)) {
                try_add(r - 2, c);
                try_add(r + 2, c);
                try_add(r, c - 2);
                try_add(r, c + 2);
            }
            if (hasLink(Interconnect::Diagonal)) {
                try_add(r - 1, c - 1);
                try_add(r - 1, c + 1);
                try_add(r + 1, c - 1);
                try_add(r + 1, c + 1);
            }
        }
    }
}

Architecture
Architecture::hrea()
{
    return Architecture(
        "HReA", 4, 4,
        linkMask({Interconnect::Mesh, Interconnect::OneHop,
                  Interconnect::Diagonal, Interconnect::Toroidal}));
}

Architecture
Architecture::morphosys()
{
    return Architecture(
        "MorphoSys", 8, 8,
        linkMask({Interconnect::Mesh, Interconnect::OneHop,
                  Interconnect::Toroidal}));
}

Architecture
Architecture::adres()
{
    Architecture a(
        "ADRES", 4, 4,
        linkMask({Interconnect::Mesh, Interconnect::OneHop,
                  Interconnect::Toroidal}));
    a.setRowSharedMemoryBus(true);
    return a;
}

Architecture
Architecture::hycube()
{
    return Architecture("HyCube", 4, 4,
                        linkMask({Interconnect::Crossbar}));
}

Architecture
Architecture::baseline8()
{
    return Architecture(
        "8x8 baseline", 8, 8,
        linkMask({Interconnect::Mesh, Interconnect::OneHop,
                  Interconnect::Diagonal}));
}

Architecture
Architecture::baseline16()
{
    return Architecture(
        "16x16 baseline", 16, 16,
        linkMask({Interconnect::Mesh, Interconnect::OneHop,
                  Interconnect::Diagonal, Interconnect::Toroidal}));
}

Architecture
Architecture::heterogeneous()
{
    // Fig. 14: a 4x4 mesh fabric where PEs support different operation
    // subsets. The published figure labels per-PE op sets; this preset
    // reproduces its character: one column of memory-capable PEs, a
    // checkerboard of arithmetic-only and logic-only PEs, and two
    // fully-general corners.
    Architecture a("heterogeneous", 4, 4,
                   linkMask({Interconnect::Mesh, Interconnect::OneHop}));
    for (std::int32_t r = 0; r < 4; ++r) {
        for (std::int32_t c = 0; c < 4; ++c) {
            PeConfig &p = a.pe(a.peAt(r, c));
            if (c == 0) {
                // Memory column: loads/stores plus arithmetic.
                p.arithmetic = true;
                p.logic = false;
                p.memory = true;
            } else if ((r + c) % 2 == 0) {
                p.arithmetic = true;
                p.logic = false;
                p.memory = false;
            } else {
                p.arithmetic = true;
                p.logic = true;
                p.memory = false;
            }
        }
    }
    // Fully-general corners on the memory-free side.
    a.pe(a.peAt(0, 3)) = PeConfig{};
    a.pe(a.peAt(3, 3)) = PeConfig{};
    return a;
}

std::vector<Architecture>
Architecture::table1Presets()
{
    return {hrea(), morphosys(), adres(), baseline8(), baseline16(),
            hycube()};
}

std::optional<Architecture>
Architecture::byName(const std::string &name)
{
    if (name == "hrea")       return hrea();
    if (name == "morphosys")  return morphosys();
    if (name == "adres")      return adres();
    if (name == "hycube")     return hycube();
    if (name == "baseline8")  return baseline8();
    if (name == "baseline16") return baseline16();
    if (name == "hetero")     return heterogeneous();
    return std::nullopt;
}

const char *
Architecture::knownNames()
{
    return "hrea|morphosys|adres|hycube|baseline8|baseline16|hetero";
}

} // namespace mapzero::cgra
