#include "cgra/mrrg.hpp"

#include <queue>

#include "common/log.hpp"

namespace mapzero::cgra {

namespace {

std::int64_t
pairKey(PeId src, PeId dst)
{
    return (static_cast<std::int64_t>(src) << 32) |
           static_cast<std::uint32_t>(dst);
}

} // namespace

Mrrg::Mrrg(const Architecture &arch, std::int32_t ii)
    : arch_(&arch), ii_(ii)
{
    if (ii < 1)
        fatal("Mrrg: II must be >= 1");
    links_ = arch.linkList();
    linksOut_.assign(static_cast<std::size_t>(arch.peCount()), {});
    linksIn_.assign(static_cast<std::size_t>(arch.peCount()), {});
    for (LinkId l = 0; l < linkCount(); ++l) {
        const auto &[src, dst] = links_[static_cast<std::size_t>(l)];
        linksOut_[static_cast<std::size_t>(src)].push_back(l);
        linksIn_[static_cast<std::size_t>(dst)].push_back(l);
        linkLookup_.emplace(pairKey(src, dst), l);
    }

    const auto n = static_cast<std::size_t>(arch.peCount());
    hopDist_.assign(n * n, -1);
    for (PeId s = 0; s < arch.peCount(); ++s) {
        std::int32_t *row = hopDist_.data() + static_cast<std::size_t>(s) * n;
        row[s] = 0;
        std::queue<PeId> q;
        q.push(s);
        while (!q.empty()) {
            const PeId u = q.front();
            q.pop();
            for (LinkId l : linksOut_[static_cast<std::size_t>(u)]) {
                const PeId v = links_[static_cast<std::size_t>(l)].second;
                if (row[v] < 0) {
                    row[v] = row[u] + 1;
                    q.push(v);
                }
            }
        }
    }
}

LinkId
Mrrg::linkBetween(PeId src, PeId dst) const
{
    const auto it = linkLookup_.find(pairKey(src, dst));
    return it == linkLookup_.end() ? -1 : it->second;
}

} // namespace mapzero::cgra
