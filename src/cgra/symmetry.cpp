#include "cgra/symmetry.hpp"

#include <algorithm>
#include <set>

#include "common/log.hpp"

namespace mapzero::cgra {

namespace {

bool
sameConfig(const PeConfig &a, const PeConfig &b)
{
    return a.arithmetic == b.arithmetic && a.logic == b.logic &&
           a.memory == b.memory && a.constUnits == b.constUnits &&
           a.loadUnits == b.loadUnits && a.aluUnits == b.aluUnits &&
           a.storeUnits == b.storeUnits && a.outputRegs == b.outputRegs;
}

/** Build a permutation from a coordinate map; empty when out of shape. */
PePermutation
fromCoordMap(const Architecture &arch,
             std::int32_t (*row_fn)(std::int32_t, std::int32_t,
                                    std::int32_t, std::int32_t),
             std::int32_t (*col_fn)(std::int32_t, std::int32_t,
                                    std::int32_t, std::int32_t))
{
    const std::int32_t rows = arch.rows(), cols = arch.cols();
    PePermutation perm(static_cast<std::size_t>(arch.peCount()));
    for (std::int32_t r = 0; r < rows; ++r) {
        for (std::int32_t c = 0; c < cols; ++c) {
            const std::int32_t nr = row_fn(r, c, rows, cols);
            const std::int32_t nc = col_fn(r, c, rows, cols);
            if (nr < 0 || nr >= rows || nc < 0 || nc >= cols)
                return {};
            perm[static_cast<std::size_t>(arch.peAt(r, c))] =
                arch.peAt(nr, nc);
        }
    }
    return perm;
}

} // namespace

bool
isAutomorphism(const Architecture &arch, const PePermutation &perm)
{
    const auto n = static_cast<std::size_t>(arch.peCount());
    if (perm.size() != n)
        return false;

    // Must be a bijection.
    std::vector<bool> hit(n, false);
    for (PeId img : perm) {
        if (img < 0 || img >= arch.peCount() ||
            hit[static_cast<std::size_t>(img)])
            return false;
        hit[static_cast<std::size_t>(img)] = true;
    }

    // Capabilities preserved.
    for (PeId p = 0; p < arch.peCount(); ++p)
        if (!sameConfig(arch.pe(p),
                        arch.pe(perm[static_cast<std::size_t>(p)])))
            return false;

    // Link structure preserved in both directions (same link count and
    // bijection implies preservation is equivalence).
    for (PeId p = 0; p < arch.peCount(); ++p) {
        for (PeId q : arch.neighborsOut(p)) {
            if (!arch.connected(perm[static_cast<std::size_t>(p)],
                                perm[static_cast<std::size_t>(q)]))
                return false;
        }
    }

    // Row-bus grouping preserved: PEs of one row must land in one row.
    if (arch.rowSharedMemoryBus()) {
        for (std::int32_t r = 0; r < arch.rows(); ++r) {
            const std::int32_t target_row = arch.rowOf(
                perm[static_cast<std::size_t>(arch.peAt(r, 0))]);
            for (std::int32_t c = 1; c < arch.cols(); ++c) {
                if (arch.rowOf(perm[static_cast<std::size_t>(
                        arch.peAt(r, c))]) != target_row)
                    return false;
            }
        }
    }
    return true;
}

std::vector<PePermutation>
gridSymmetries(const Architecture &arch)
{
    std::vector<PePermutation> candidates;

    // Identity.
    PePermutation identity(static_cast<std::size_t>(arch.peCount()));
    for (PeId p = 0; p < arch.peCount(); ++p)
        identity[static_cast<std::size_t>(p)] = p;
    candidates.push_back(identity);

    // Dihedral candidates.
    using Fn = std::int32_t (*)(std::int32_t, std::int32_t, std::int32_t,
                                std::int32_t);
    struct Dihedral { Fn row; Fn col; };
    const Dihedral dihedrals[] = {
        // horizontal flip (mirror columns)
        {[](std::int32_t r, std::int32_t, std::int32_t,
            std::int32_t) { return r; },
         [](std::int32_t, std::int32_t c, std::int32_t,
            std::int32_t cols) { return cols - 1 - c; }},
        // vertical flip (mirror rows)
        {[](std::int32_t r, std::int32_t, std::int32_t rows,
            std::int32_t) { return rows - 1 - r; },
         [](std::int32_t, std::int32_t c, std::int32_t,
            std::int32_t) { return c; }},
        // 180-degree rotation
        {[](std::int32_t r, std::int32_t, std::int32_t rows,
            std::int32_t) { return rows - 1 - r; },
         [](std::int32_t, std::int32_t c, std::int32_t,
            std::int32_t cols) { return cols - 1 - c; }},
        // transpose (requires square)
        {[](std::int32_t, std::int32_t c, std::int32_t,
            std::int32_t) { return c; },
         [](std::int32_t r, std::int32_t, std::int32_t,
            std::int32_t) { return r; }},
        // 90-degree rotation (requires square)
        {[](std::int32_t, std::int32_t c, std::int32_t,
            std::int32_t) { return c; },
         [](std::int32_t r, std::int32_t, std::int32_t rows,
            std::int32_t) { return rows - 1 - r; }},
        // 270-degree rotation (requires square)
        {[](std::int32_t, std::int32_t c, std::int32_t,
            std::int32_t cols) { return cols - 1 - c; },
         [](std::int32_t r, std::int32_t, std::int32_t,
            std::int32_t) { return r; }},
        // anti-transpose (requires square)
        {[](std::int32_t, std::int32_t c, std::int32_t,
            std::int32_t cols) { return cols - 1 - c; },
         [](std::int32_t r, std::int32_t, std::int32_t rows,
            std::int32_t) { return rows - 1 - r; }},
    };
    for (const auto &d : dihedrals) {
        // fromCoordMap rejects shape-invalid transforms (e.g. transpose
        // of a non-square grid) by returning an empty permutation.
        PePermutation p = fromCoordMap(arch, d.row, d.col);
        if (!p.empty())
            candidates.push_back(std::move(p));
    }

    // Toroidal translations.
    if (arch.hasLink(Interconnect::Toroidal)) {
        for (std::int32_t dr = 0; dr < arch.rows(); ++dr) {
            for (std::int32_t dc = 0; dc < arch.cols(); ++dc) {
                if (dr == 0 && dc == 0)
                    continue;
                PePermutation p(
                    static_cast<std::size_t>(arch.peCount()));
                for (std::int32_t r = 0; r < arch.rows(); ++r)
                    for (std::int32_t c = 0; c < arch.cols(); ++c)
                        p[static_cast<std::size_t>(arch.peAt(r, c))] =
                            arch.peAt((r + dr) % arch.rows(),
                                      (c + dc) % arch.cols());
                candidates.push_back(std::move(p));
            }
        }
    }

    std::vector<PePermutation> valid;
    std::set<PePermutation> seen;
    for (auto &p : candidates) {
        if (seen.count(p))
            continue;
        if (isAutomorphism(arch, p)) {
            seen.insert(p);
            valid.push_back(std::move(p));
        }
    }
    return valid;
}

PePermutation
compose(const PePermutation &outer, const PePermutation &inner)
{
    if (outer.size() != inner.size())
        panic("compose: permutation size mismatch");
    PePermutation out(inner.size());
    for (std::size_t i = 0; i < inner.size(); ++i)
        out[i] = outer[static_cast<std::size_t>(inner[i])];
    return out;
}

} // namespace mapzero::cgra
