#include "sim/semantics.hpp"

#include "common/log.hpp"

namespace mapzero::sim {

InputProvider
defaultProvider()
{
    return [](dfg::NodeId node, std::int64_t iteration) -> Word {
        // Deterministic, iteration-varying, distinct per stream.
        return static_cast<Word>(node) * 131 + iteration * 7 + 3;
    };
}

Word
constValue(dfg::NodeId node)
{
    return static_cast<Word>(node) * 17 + 5;
}

namespace {

Word
operand(const std::vector<Word> &operands, std::size_t index)
{
    return index < operands.size() ? operands[index] : 0;
}

} // namespace

Word
evaluateOp(dfg::Opcode op, const std::vector<Word> &operands,
           Word load_value, dfg::NodeId node)
{
    const Word a = operand(operands, 0);
    const Word b = operand(operands, 1);
    switch (op) {
      case dfg::Opcode::Const:
        return constValue(node);
      case dfg::Opcode::Add:
        // Accumulators have a loop-carried operand; summing all inputs
        // covers both plain adds and phi-style accumulation.
        {
            Word acc = 0;
            for (Word v : operands)
                acc += v;
            return acc;
        }
      case dfg::Opcode::Sub:
        return a - b;
      case dfg::Opcode::Mul:
        return a * b;
      case dfg::Opcode::Div:
        return b != 0 ? a / b : 0;
      case dfg::Opcode::Mac:
        return a * b + operand(operands, 2);
      case dfg::Opcode::Shl:
        return a << (static_cast<std::uint64_t>(b) & 63u);
      case dfg::Opcode::Shr:
        return static_cast<Word>(static_cast<std::uint64_t>(a) >>
                                 (static_cast<std::uint64_t>(b) & 63u));
      case dfg::Opcode::And:
        return a & b;
      case dfg::Opcode::Or:
        return a | b;
      case dfg::Opcode::Xor:
        return a ^ b;
      case dfg::Opcode::Not:
        return ~a;
      case dfg::Opcode::Cmp:
        return a < b ? 1 : 0;
      case dfg::Opcode::Select:
        return operand(operands, 2) != 0 ? a : b;
      case dfg::Opcode::Load:
        // Address operands model address arithmetic; the loaded value
        // comes from the input stream (mixed so a wrong address chain
        // still perturbs the result and is caught by the comparison).
        {
            Word mix = 0;
            for (Word v : operands)
                mix ^= v;
            return load_value + (mix & 0xF);
        }
      case dfg::Opcode::Store:
      case dfg::Opcode::Phi:
      case dfg::Opcode::Route:
        return a;
    }
    panic("evaluateOp: unknown opcode");
}

} // namespace mapzero::sim
