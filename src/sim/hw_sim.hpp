/**
 * @file
 * Hardware-level simulator: executes a CGRA *configuration bitstream*
 * directly - per-PE FU result registers, routing registers, and link
 * values resolved per cycle from the drive selects - with no access to
 * the mapper's bookkeeping (routes, placements).
 *
 * This is the strongest end-to-end check in the repository: if the
 * compiler, the bitstream generator, and the fabric model are all
 * consistent, then running the raw configuration must reproduce the DFG
 * semantics. The only metadata beyond the bitstream is the per-node
 * activation schedule (start time and II), which real CGRAs hold in
 * their context/epoch counters.
 */

#ifndef MAPZERO_SIM_HW_SIM_HPP
#define MAPZERO_SIM_HW_SIM_HPP

#include <string>

#include "cgra/architecture.hpp"
#include "core/bitstream.hpp"
#include "sim/semantics.hpp"

namespace mapzero::sim {

/** Activation metadata: when each node fires its first iteration. */
struct ActivationSchedule {
    /** startTime[node] = absolute cycle of iteration 0. */
    std::vector<std::int32_t> startTime;
    /** Initiation interval. */
    std::int32_t ii = 1;
    /** Total schedule length (last start + 1). */
    std::int32_t length = 0;
};

/** Result of a hardware run. */
struct HwSimResult {
    bool ok = true;
    std::vector<std::string> errors;
    std::vector<StoreRecord> stores;
    std::int64_t cycles = 0;
};

/**
 * Execute @p bitstream on @p arch for @p iterations loop iterations.
 *
 * @param bitstream configuration (from generateBitstream or a file)
 * @param arch the fabric the configuration targets
 * @param activation per-node start times + II
 * @param iterations loop iterations to run
 * @param provider load input streams
 */
HwSimResult runHardware(const Bitstream &bitstream,
                        const cgra::Architecture &arch,
                        const ActivationSchedule &activation,
                        std::int64_t iterations,
                        const InputProvider &provider);

} // namespace mapzero::sim

#endif // MAPZERO_SIM_HW_SIM_HPP
