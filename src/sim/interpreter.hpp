/**
 * @file
 * Reference DFG interpreter: the golden model the fabric simulator is
 * checked against. Executes the DFG directly (no hardware model) for a
 * number of loop iterations, honoring loop-carried dependencies.
 */

#ifndef MAPZERO_SIM_INTERPRETER_HPP
#define MAPZERO_SIM_INTERPRETER_HPP

#include "sim/semantics.hpp"

namespace mapzero::sim {

/** Result of interpreting a DFG. */
struct InterpResult {
    /** Every store, in (iteration, node) order. */
    std::vector<StoreRecord> stores;
    /** values[i][v] = value node v produced at iteration i. */
    std::vector<std::vector<Word>> values;
};

/**
 * Execute @p dfg for @p iterations loop iterations.
 *
 * Nodes evaluate in topological order within an iteration; an edge with
 * distance d delivers the producer's value from iteration i - d, and
 * iterations i < d read the initial value 0.
 */
InterpResult interpret(const dfg::Dfg &dfg, std::int64_t iterations,
                       const InputProvider &provider);

} // namespace mapzero::sim

#endif // MAPZERO_SIM_INTERPRETER_HPP
