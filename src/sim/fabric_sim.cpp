#include "sim/fabric_sim.hpp"

#include <algorithm>
#include <deque>

#include "common/log.hpp"
#include "common/metrics.hpp"
#include "sim/interpreter.hpp"

namespace mapzero::sim {

namespace {

/** A value in flight on one edge's route. */
struct Token {
    Word value = 0;
    /** Absolute cycle the consumer's FU reads it. */
    std::int64_t arrival = 0;
};

} // namespace

FabricSimResult
simulateFabric(const mapper::MappingState &state, std::int64_t iterations,
               const InputProvider &provider)
{
    FabricSimResult result;
    const dfg::Dfg &dfg = state.dfg();
    const dfg::Schedule &schedule = state.schedule();
    const std::int32_t ii = schedule.ii;

    if (!state.complete()) {
        result.ok = false;
        result.errors.push_back("mapping is not complete");
        return result;
    }

    // Per-edge delivery pipelines. The pipeline latency is the committed
    // route's span; validateMapping() proves it equals the physical
    // register/wire chain, so arrival bookkeeping is cycle-faithful.
    std::vector<std::deque<Token>> pipelines(
        static_cast<std::size_t>(dfg.edgeCount()));

    // Nodes grouped by modulo slot for the per-cycle fire loop.
    std::vector<std::vector<dfg::NodeId>> by_slot(
        static_cast<std::size_t>(ii));
    for (dfg::NodeId v = 0; v < dfg.nodeCount(); ++v)
        by_slot[static_cast<std::size_t>(
                    schedule.moduloTime[static_cast<std::size_t>(v)])]
            .push_back(v);

    // The last firing is the latest-scheduled node of the final
    // iteration: (length - 1) + (iterations - 1) * II.
    const std::int64_t last_cycle =
        static_cast<std::int64_t>(schedule.length()) - 1 +
        (iterations - 1) * ii;

    for (std::int64_t cycle = 0; cycle <= last_cycle; ++cycle) {
        const auto slot = static_cast<std::size_t>(cycle % ii);
        for (dfg::NodeId v : by_slot[slot]) {
            const std::int64_t t_v =
                schedule.time[static_cast<std::size_t>(v)];
            if (cycle < t_v || (cycle - t_v) % ii != 0)
                continue;
            const std::int64_t iter = (cycle - t_v) / ii;
            if (iter >= iterations)
                continue;

            // Gather operands in in-edge order.
            std::vector<Word> operands;
            operands.reserve(dfg.inEdges(v).size());
            bool operand_error = false;
            for (std::int32_t ei : dfg.inEdges(v)) {
                const dfg::DfgEdge &e =
                    dfg.edges()[static_cast<std::size_t>(ei)];
                if (dfg.node(e.src).opcode == dfg::Opcode::Const) {
                    // Configuration-supplied immediate.
                    operands.push_back(constValue(e.src));
                    continue;
                }
                if (iter - e.distance < 0) {
                    operands.push_back(0); // pipeline prologue
                    continue;
                }
                auto &pipe = pipelines[static_cast<std::size_t>(ei)];
                if (pipe.empty()) {
                    result.ok = false;
                    result.errors.push_back(
                        cat("edge ", ei, ": no token at cycle ", cycle,
                            " for node ", v, " iter ", iter));
                    operands.push_back(0);
                    operand_error = true;
                    continue;
                }
                const Token token = pipe.front();
                pipe.pop_front();
                if (token.arrival != cycle) {
                    result.ok = false;
                    result.errors.push_back(
                        cat("edge ", ei, ": token timed for cycle ",
                            token.arrival, " consumed at ", cycle));
                    operand_error = true;
                }
                operands.push_back(token.value);
            }
            (void)operand_error;

            const auto op = dfg.node(v).opcode;
            const Word load_value =
                op == dfg::Opcode::Load ? provider(v, iter) : 0;
            const Word value = evaluateOp(op, operands, load_value, v);
            if (op == dfg::Opcode::Store)
                result.stores.push_back(StoreRecord{v, iter, value});

            // Inject the result into every outgoing route. Constant
            // edges carry configuration, not tokens.
            if (op != dfg::Opcode::Const) {
                for (std::int32_t ei : dfg.outEdges(v)) {
                    const dfg::DfgEdge &e =
                        dfg.edges()[static_cast<std::size_t>(ei)];
                    const std::int64_t t_dst =
                        schedule.time[static_cast<std::size_t>(e.dst)];
                    const std::int64_t arrival =
                        t_dst + (iter + e.distance) * ii;
                    pipelines[static_cast<std::size_t>(ei)].push_back(
                        Token{value, arrival});
                }
            }
        }
    }
    result.cycles = last_cycle + 1;
    static Counter &cycles = metrics().counter("sim.fabric_cycles");
    cycles.add(result.cycles);
    return result;
}

std::string
compareWithReference(const mapper::MappingState &state,
                     std::int64_t iterations,
                     const InputProvider &provider)
{
    FabricSimResult fabric = simulateFabric(state, iterations, provider);
    if (!fabric.ok)
        return fabric.errors.empty() ? "fabric simulation failed"
                                     : fabric.errors.front();

    const InterpResult reference =
        interpret(state.dfg(), iterations, provider);

    // Stores compare as (node, iteration)-keyed multisets; the fabric
    // emits them in cycle order, the interpreter in iteration order.
    auto key = [](const StoreRecord &r) {
        return std::make_pair(r.node, r.iteration);
    };
    auto sorted = [&key](std::vector<StoreRecord> v) {
        std::sort(v.begin(), v.end(),
                  [&key](const StoreRecord &a, const StoreRecord &b) {
            return key(a) < key(b);
        });
        return v;
    };
    const auto fab = sorted(fabric.stores);
    const auto ref = sorted(reference.stores);
    if (fab.size() != ref.size())
        return cat("store count differs: fabric ", fab.size(),
                   " vs reference ", ref.size());
    for (std::size_t i = 0; i < fab.size(); ++i) {
        if (!(fab[i] == ref[i]))
            return cat("store mismatch at node ", ref[i].node, " iter ",
                       ref[i].iteration, ": fabric ", fab[i].value,
                       " vs reference ", ref[i].value);
    }
    return "";
}

} // namespace mapzero::sim
