/**
 * @file
 * Cycle-accurate execution of a compiled mapping on the CGRA fabric.
 *
 * The simulator advances cycle by cycle. Each cycle, every PE whose
 * function slot is occupied in the current modulo slice fires: it pops
 * its operand tokens from the per-edge delivery pipelines (whose lengths
 * equal the committed route latencies), evaluates the operation, and
 * injects the result into the pipelines of its outgoing edges. Constant
 * operands come from configuration, matching the mapper's model.
 *
 * Together with the reference interpreter (sim/interpreter.hpp) this
 * gives a golden-model check for the whole compiler: a mapping is only
 * truly correct if the fabric computes the same store stream as the DFG.
 */

#ifndef MAPZERO_SIM_FABRIC_SIM_HPP
#define MAPZERO_SIM_FABRIC_SIM_HPP

#include <string>

#include "mapper/mapping.hpp"
#include "sim/semantics.hpp"

namespace mapzero::sim {

/** Result of a fabric simulation. */
struct FabricSimResult {
    /** False when a token arrived at the wrong cycle or was missing. */
    bool ok = true;
    std::vector<std::string> errors;
    /** Every store the fabric performed, in (cycle, node) order. */
    std::vector<StoreRecord> stores;
    /** Total simulated cycles. */
    std::int64_t cycles = 0;
};

/**
 * Execute a complete mapping for @p iterations loop iterations.
 * The mapping must be complete (every node placed, every edge routed).
 */
FabricSimResult simulateFabric(const mapper::MappingState &state,
                               std::int64_t iterations,
                               const InputProvider &provider);

/**
 * Convenience golden-model check: simulate the fabric and compare its
 * store stream against the reference interpreter. Returns an empty
 * string on success, otherwise a description of the first divergence.
 */
std::string compareWithReference(const mapper::MappingState &state,
                                 std::int64_t iterations,
                                 const InputProvider &provider);

} // namespace mapzero::sim

#endif // MAPZERO_SIM_FABRIC_SIM_HPP
