#include "sim/hw_sim.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace mapzero::sim {

HwSimResult
runHardware(const Bitstream &bitstream, const cgra::Architecture &arch,
            const ActivationSchedule &activation,
            std::int64_t iterations, const InputProvider &provider)
{
    HwSimResult result;
    if (bitstream.peCount != arch.peCount()) {
        result.ok = false;
        result.errors.push_back("bitstream/fabric PE count mismatch");
        return result;
    }
    const std::int32_t ii = bitstream.ii;
    const auto links = arch.linkList();
    const auto n_links = static_cast<std::int32_t>(links.size());

    // Register files, zero-initialized like hardware out of reset.
    std::vector<Word> own_result(
        static_cast<std::size_t>(arch.peCount()), 0);
    std::vector<Word> route_reg(
        static_cast<std::size_t>(arch.peCount()), 0);

    const std::int64_t last_cycle =
        static_cast<std::int64_t>(activation.length) - 1 +
        (iterations - 1) * ii;

    std::vector<Word> link_value(static_cast<std::size_t>(n_links), 0);
    std::vector<bool> link_set(static_cast<std::size_t>(n_links), false);

    for (std::int64_t cycle = 0; cycle <= last_cycle; ++cycle) {
        const auto slot = static_cast<std::int32_t>(cycle % ii);

        // --- 1. Resolve link values (combinational network) -----------
        std::fill(link_set.begin(), link_set.end(), false);
        bool progress = true;
        std::int32_t unresolved = 0;
        while (progress) {
            progress = false;
            unresolved = 0;
            for (cgra::PeId pe = 0; pe < arch.peCount(); ++pe) {
                for (const LinkDrive &d :
                     bitstream.word(pe, slot).drives) {
                    const auto li = static_cast<std::size_t>(d.link);
                    if (link_set[li])
                        continue;
                    switch (d.source.kind) {
                      case SourceKind::OwnResult:
                        link_value[li] =
                            own_result[static_cast<std::size_t>(pe)];
                        link_set[li] = true;
                        progress = true;
                        break;
                      case SourceKind::RouteReg:
                        link_value[li] =
                            route_reg[static_cast<std::size_t>(pe)];
                        link_set[li] = true;
                        progress = true;
                        break;
                      case SourceKind::Link: {
                        const auto in =
                            static_cast<std::size_t>(d.source.link);
                        if (link_set[in]) {
                            link_value[li] = link_value[in];
                            link_set[li] = true;
                            progress = true;
                        } else {
                            ++unresolved;
                        }
                        break;
                      }
                      default:
                        ++unresolved;
                        break;
                    }
                }
            }
        }
        if (unresolved > 0) {
            result.ok = false;
            result.errors.push_back(
                cat("cycle ", cycle, ": ", unresolved,
                    " link drive(s) form a combinational loop"));
        }

        auto read_source = [&](cgra::PeId pe, const SourceSelect &s,
                               bool &error) -> Word {
            switch (s.kind) {
              case SourceKind::Constant:
                return s.immediate;
              case SourceKind::OwnResult:
                return own_result[static_cast<std::size_t>(pe)];
              case SourceKind::RouteReg:
                return route_reg[static_cast<std::size_t>(pe)];
              case SourceKind::Link: {
                const auto li = static_cast<std::size_t>(s.link);
                if (!link_set[li]) {
                    error = true;
                    return 0;
                }
                return link_value[li];
              }
              case SourceKind::None:
                return 0;
            }
            return 0;
        };

        // --- 2. Functional units fire ----------------------------------
        std::vector<std::pair<cgra::PeId, Word>> fu_writes;
        for (cgra::PeId pe = 0; pe < arch.peCount(); ++pe) {
            const PeConfigWord &word = bitstream.word(pe, slot);
            if (word.node < 0)
                continue;
            const std::int64_t start =
                activation.startTime[static_cast<std::size_t>(
                    word.node)];
            if (cycle < start || (cycle - start) % ii != 0)
                continue;
            const std::int64_t iter = (cycle - start) / ii;
            if (iter >= iterations)
                continue;

            std::vector<Word> operands;
            operands.reserve(word.operands.size());
            bool error = false;
            for (const SourceSelect &s : word.operands)
                operands.push_back(read_source(pe, s, error));
            if (error) {
                result.ok = false;
                result.errors.push_back(
                    cat("cycle ", cycle, ": PE", pe,
                        " reads an undriven link"));
            }
            const Word load_value = word.opcode == dfg::Opcode::Load
                ? provider(word.node, iter)
                : 0;
            const Word value =
                evaluateOp(word.opcode, operands, load_value, word.node);
            if (word.opcode == dfg::Opcode::Store)
                result.stores.push_back(
                    StoreRecord{word.node, iter, value});
            fu_writes.emplace_back(pe, value);
        }

        // --- 3. Routing registers load ----------------------------------
        std::vector<std::pair<cgra::PeId, Word>> reg_writes;
        for (cgra::PeId pe = 0; pe < arch.peCount(); ++pe) {
            const PeConfigWord &word = bitstream.word(pe, slot);
            if (word.routeReg.kind == SourceKind::None)
                continue;
            bool error = false;
            const Word value = read_source(pe, word.routeReg, error);
            if (error) {
                result.ok = false;
                result.errors.push_back(
                    cat("cycle ", cycle, ": PE", pe,
                        " routing register reads an undriven link"));
            }
            reg_writes.emplace_back(pe, value);
        }

        // --- 4. Commit (registers update at the clock edge) -------------
        for (const auto &[pe, value] : fu_writes)
            own_result[static_cast<std::size_t>(pe)] = value;
        for (const auto &[pe, value] : reg_writes)
            route_reg[static_cast<std::size_t>(pe)] = value;
    }

    result.cycles = last_cycle + 1;
    return result;
}

} // namespace mapzero::sim
