/**
 * @file
 * Operational semantics shared by the reference DFG interpreter and the
 * cycle-accurate fabric simulator.
 *
 * Both executors evaluate the same 64-bit integer semantics, so a
 * compiled mapping can be validated end-to-end: run the kernel on the
 * fabric, run the DFG directly, and compare every stored value.
 */

#ifndef MAPZERO_SIM_SEMANTICS_HPP
#define MAPZERO_SIM_SEMANTICS_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "dfg/dfg.hpp"

namespace mapzero::sim {

/** Machine word of the simulated fabric. */
using Word = std::int64_t;

/**
 * Externally supplied input stream: the value a Load node produces at
 * loop iteration @p iteration. (The address operands a load may consume
 * model address arithmetic; the provider keys on the logical stream.)
 */
using InputProvider =
    std::function<Word(dfg::NodeId load_node, std::int64_t iteration)>;

/** Deterministic default provider: mixes node id and iteration. */
InputProvider defaultProvider();

/** Immediate value a Const node materializes (derived from its id). */
Word constValue(dfg::NodeId node);

/**
 * Evaluate one operation.
 *
 * @param op opcode to execute
 * @param operands operand values in in-edge order (Select reads
 *        (a, b, predicate); Store and Route forward operand 0)
 * @param load_value the input-stream value when op is Load
 * @param node node id (Const immediates derive from it)
 * @return the produced value (Stores return the stored value)
 */
Word evaluateOp(dfg::Opcode op, const std::vector<Word> &operands,
                Word load_value, dfg::NodeId node);

/** One recorded store. */
struct StoreRecord {
    dfg::NodeId node = -1;
    std::int64_t iteration = 0;
    Word value = 0;

    bool
    operator==(const StoreRecord &other) const
    {
        return node == other.node && iteration == other.iteration &&
               value == other.value;
    }
};

} // namespace mapzero::sim

#endif // MAPZERO_SIM_SEMANTICS_HPP
