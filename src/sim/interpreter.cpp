#include "sim/interpreter.hpp"

#include "common/log.hpp"
#include "common/metrics.hpp"
#include "dfg/schedule.hpp"

namespace mapzero::sim {

InterpResult
interpret(const dfg::Dfg &dfg, std::int64_t iterations,
          const InputProvider &provider)
{
    static Counter &iterations_run =
        metrics().counter("sim.interp_iterations");
    static Counter &ops_evaluated =
        metrics().counter("sim.interp_ops_evaluated");
    iterations_run.add(iterations);
    ops_evaluated.add(iterations * dfg.nodeCount());

    const auto order = dfg::topologicalOrder(dfg);
    InterpResult result;
    result.values.assign(
        static_cast<std::size_t>(iterations),
        std::vector<Word>(static_cast<std::size_t>(dfg.nodeCount()), 0));

    for (std::int64_t i = 0; i < iterations; ++i) {
        auto &now = result.values[static_cast<std::size_t>(i)];
        for (dfg::NodeId v : order) {
            // Operands in in-edge order.
            std::vector<Word> operands;
            operands.reserve(dfg.inEdges(v).size());
            for (std::int32_t ei : dfg.inEdges(v)) {
                const dfg::DfgEdge &e =
                    dfg.edges()[static_cast<std::size_t>(ei)];
                const std::int64_t src_iter = i - e.distance;
                operands.push_back(
                    src_iter >= 0
                        ? result.values[static_cast<std::size_t>(
                              src_iter)][static_cast<std::size_t>(e.src)]
                        : 0);
            }
            const auto op = dfg.node(v).opcode;
            const Word load_value =
                op == dfg::Opcode::Load ? provider(v, i) : 0;
            now[static_cast<std::size_t>(v)] =
                evaluateOp(op, operands, load_value, v);
            if (op == dfg::Opcode::Store)
                result.stores.push_back(
                    StoreRecord{v, i, now[static_cast<std::size_t>(v)]});
        }
    }
    return result;
}

} // namespace mapzero::sim
