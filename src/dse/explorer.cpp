#include "dse/explorer.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace mapzero::dse {

bool
DesignPoint::operator==(const DesignPoint &other) const
{
    return rows == other.rows && cols == other.cols &&
           oneHop == other.oneHop && diagonal == other.diagonal &&
           toroidal == other.toroidal && memColumns == other.memColumns;
}

cgra::Architecture
DesignPoint::build() const
{
    std::uint8_t links =
        static_cast<std::uint8_t>(cgra::Interconnect::Mesh);
    if (oneHop)
        links |= static_cast<std::uint8_t>(cgra::Interconnect::OneHop);
    if (diagonal)
        links |= static_cast<std::uint8_t>(cgra::Interconnect::Diagonal);
    if (toroidal)
        links |= static_cast<std::uint8_t>(cgra::Interconnect::Toroidal);

    cgra::Architecture arch(describe(), rows, cols, links);
    for (std::int32_t r = 0; r < rows; ++r)
        for (std::int32_t c = 0; c < cols; ++c)
            arch.pe(arch.peAt(r, c)).memory = c < memColumns;
    return arch;
}

std::string
DesignPoint::describe() const
{
    std::string links = "mesh";
    if (oneHop)
        links += "+1hop";
    if (diagonal)
        links += "+diag";
    if (toroidal)
        links += "+torus";
    return cat(rows, "x", cols, " ", links, " mem=", memColumns, "col");
}

DseExplorer::DseExplorer(const std::vector<dfg::Dfg> &kernels,
                         DseConfig config)
    : kernels_(&kernels), config_(config)
{
    if (kernels.empty())
        fatal("DseExplorer needs at least one kernel");
}

DseEvaluation
DseExplorer::evaluate(const DesignPoint &point)
{
    DseEvaluation eval;
    eval.point = point;
    const cgra::Architecture arch = point.build();

    // A fabric with no memory access cannot run loop kernels at all.
    if (arch.memoryPeCount() == 0) {
        eval.cost = 1e9;
        return eval;
    }

    Compiler compiler;
    CompileOptions options;
    options.timeLimitSeconds = config_.compileTimeLimit;

    double performance = 0.0;
    for (const auto &kernel : *kernels_) {
        const CompileResult r =
            compiler.compile(kernel, arch, config_.method, options);
        eval.achievedIi.push_back(r.success ? r.ii : 0);
        performance += r.success
            ? config_.objective.iiWeight * static_cast<double>(r.ii)
            : config_.objective.failurePenalty;
    }

    const double area =
        config_.objective.peWeight * static_cast<double>(arch.peCount());
    const double wiring = config_.objective.linkWeight *
                          static_cast<double>(arch.linkList().size());
    const double mem_ports =
        config_.objective.memWeight *
        static_cast<double>(arch.memoryPeCount());
    eval.cost = performance + area + wiring + mem_ports;
    return eval;
}

std::vector<DesignPoint>
DseExplorer::neighbors(const DesignPoint &point) const
{
    std::vector<DesignPoint> out;
    auto push = [&](DesignPoint p) {
        p.rows = std::clamp(p.rows, config_.minDim, config_.maxDim);
        p.cols = std::clamp(p.cols, config_.minDim, config_.maxDim);
        p.memColumns = std::clamp(p.memColumns, 1, p.cols);
        if (!(p == point) &&
            std::find(out.begin(), out.end(), p) == out.end()) {
            out.push_back(p);
        }
    };

    DesignPoint p = point;
    // Add/remove PEs (a row or a column at a time).
    p = point; ++p.rows; push(p);
    p = point; --p.rows; push(p);
    p = point; ++p.cols; push(p);
    p = point; --p.cols; push(p);
    // Add/remove interconnect styles.
    p = point; p.oneHop = !p.oneHop; push(p);
    p = point; p.diagonal = !p.diagonal; push(p);
    p = point; p.toroidal = !p.toroidal; push(p);
    // Add/remove memory ports.
    p = point; ++p.memColumns; push(p);
    p = point; --p.memColumns; push(p);
    return out;
}

DseResult
DseExplorer::explore(const DesignPoint &start)
{
    Rng rng(config_.seed);
    DseResult result;
    result.best = evaluate(start);
    result.trace.push_back(result.best);

    DesignPoint current_point = start;
    double current_cost = result.best.cost;

    for (std::int32_t restart = 0; restart <= config_.restarts;
         ++restart) {
        for (std::int32_t step = 0; step < config_.steps; ++step) {
            auto candidates = neighbors(current_point);
            if (candidates.empty())
                break;
            // Evaluate a random subset each step (cheap hill climbing
            // with sideways moves allowed).
            rng.shuffle(candidates);
            const std::size_t probe =
                std::min<std::size_t>(3, candidates.size());
            bool moved = false;
            for (std::size_t i = 0; i < probe; ++i) {
                DseEvaluation eval = evaluate(candidates[i]);
                result.trace.push_back(eval);
                if (eval.cost < result.best.cost)
                    result.best = eval;
                if (eval.cost <= current_cost) {
                    current_point = candidates[i];
                    current_cost = eval.cost;
                    moved = true;
                    break;
                }
            }
            if (!moved)
                break; // local optimum for this restart
        }
        // Restart from a random perturbation of the best point.
        current_point = result.best.point;
        const auto jumps = neighbors(current_point);
        if (!jumps.empty())
            current_point = jumps[rng.uniformInt(jumps.size())];
        current_cost = evaluate(current_point).cost;
    }
    return result;
}

} // namespace mapzero::dse
