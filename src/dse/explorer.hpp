/**
 * @file
 * Design space exploration (DSE) - the paper's §4.8 extension: "by
 * analyzing a set of DFGs, the agent can take actions to add or remove
 * PEs, interconnects, or memory ports in order to get the best
 * domain-specific accelerator design under certain metrics".
 *
 * A design point is a parameterized fabric (grid size, interconnect
 * styles, memory-port placement). The explorer evaluates a point by
 * compiling every kernel of the target set onto it (achieved II = the
 * performance term) and charges an area/wiring cost, then hill-climbs
 * over fabric mutations with restarts.
 */

#ifndef MAPZERO_DSE_EXPLORER_HPP
#define MAPZERO_DSE_EXPLORER_HPP

#include <string>
#include <vector>

#include "core/compiler.hpp"

namespace mapzero::dse {

/** Parameterized fabric: the DSE action space. */
struct DesignPoint {
    std::int32_t rows = 4;
    std::int32_t cols = 4;
    bool oneHop = false;
    bool diagonal = false;
    bool toroidal = false;
    /** Columns (from the left) whose PEs may access memory. */
    std::int32_t memColumns = 4;

    bool operator==(const DesignPoint &other) const;

    /** Materialize the fabric this point describes. */
    cgra::Architecture build() const;

    /** Short description, e.g. "4x4 mesh+1hop mem=2col". */
    std::string describe() const;
};

/** Cost weights. */
struct DseObjective {
    /** Weight of the achieved-II sum (performance). */
    double iiWeight = 1.0;
    /** Penalty per kernel that fails to map at all. */
    double failurePenalty = 50.0;
    /** Cost per PE (area). */
    double peWeight = 0.15;
    /** Cost per directed link (wiring). */
    double linkWeight = 0.01;
    /** Cost per memory-capable PE (port hardware). */
    double memWeight = 0.10;
};

/** Evaluation of one design point. */
struct DseEvaluation {
    DesignPoint point;
    double cost = 0.0;
    /** Achieved II per kernel (0 = failed). */
    std::vector<std::int32_t> achievedIi;
};

/** Explorer configuration. */
struct DseConfig {
    DseObjective objective;
    /** Compile engine used for evaluation (Ilp = exact, default). */
    Method method = Method::Ilp;
    /** Per-compilation time budget during evaluation. */
    double compileTimeLimit = 2.0;
    /** Hill-climbing steps. */
    std::int32_t steps = 24;
    /** Random restarts. */
    std::int32_t restarts = 2;
    /** Grid-size bounds of the search. */
    std::int32_t minDim = 2;
    std::int32_t maxDim = 8;
    std::uint64_t seed = 1;
};

/** Result: best point plus the visited trace. */
struct DseResult {
    DseEvaluation best;
    std::vector<DseEvaluation> trace;
};

/** Hill-climbing explorer over fabric mutations. */
class DseExplorer
{
  public:
    /**
     * @param kernels the DFG set the fabric is specialized for (must
     *        outlive the explorer)
     * @param config search knobs
     */
    DseExplorer(const std::vector<dfg::Dfg> &kernels, DseConfig config);

    /** Evaluate a single design point. */
    DseEvaluation evaluate(const DesignPoint &point);

    /** Run the search from @p start. */
    DseResult explore(const DesignPoint &start);

    /** All single-step mutations of @p point within bounds. */
    std::vector<DesignPoint> neighbors(const DesignPoint &point) const;

  private:
    const std::vector<dfg::Dfg> *kernels_;
    DseConfig config_;
};

} // namespace mapzero::dse

#endif // MAPZERO_DSE_EXPLORER_HPP
