/**
 * @file
 * Service-grade compile entry point: the layer mapzerod's workers call.
 *
 * A one-shot `mapzero_cli map` pays full startup on every kernel -
 * model pre-training (or checkpoint load), agent-cache warm-up, eval
 * cache population - which is exactly the cost a long-lived daemon
 * exists to amortize. CompileService owns the state worth keeping warm
 * across requests:
 *
 *  - the pre-trained networks, via the process-wide AgentCache
 *    (core/agent_cache.hpp): the first request per architecture trains
 *    or loads, every later request is an `agent_cache.hits`;
 *  - one shared rl::EvalCache for *all* requests: network outputs are
 *    pure functions of the canonical observation bytes the cache is
 *    keyed on, so entries are safe to share across tenants, DFGs, and
 *    architectures - a repeat submission of the same (DFG, arch)
 *    replays mostly cache hits (`eval_cache.hits`).
 *
 * Every compile is cancellable: pass the job's cancel flag and it is
 * threaded into each Deadline the sweep constructs, so a CANCEL
 * request reaches the innermost search loops within one deadline poll.
 * CompileService::compile is safe to call from any number of worker
 * threads concurrently (the underlying caches are thread-safe and a
 * fresh Compiler facade is constructed per call).
 */

#ifndef MAPZERO_CORE_SERVICE_HPP
#define MAPZERO_CORE_SERVICE_HPP

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/persist.hpp"
#include "core/agent_cache.hpp"
#include "core/compiler.hpp"
#include "rl/evaluator.hpp"

namespace mapzero {

/** Warm-state configuration of a CompileService. */
struct ServiceOptions {
    /**
     * Training budget for architectures seen for the first time (the
     * daemon's cold-start cost; subsequent requests hit the cache).
     */
    PretrainBudget pretrain;
    /** Shared eval-cache capacity (entries; daemon-sized default). */
    std::size_t evalCacheCapacity = 4 * rl::EvalCache::kDefaultCapacity;
    /**
     * Directory of the persistent result tier (empty = disabled).
     * Successful compiles are stored as CRC-framed files keyed by the
     * canonical request bytes - DFG structure, full arch geometry,
     * method, seed, resolved restart count, sweep limits, and (for
     * MapZero methods) a fingerprint of the served network's weights -
     * and a repeat request is answered from disk without any search.
     * A replayed result is byte-for-byte the result of the original
     * compile (including its timing fields), so the FETCH blob a warm
     * request renders is identical to the one the cold request
     * produced. New checkpoints or changed fabrics change the key, so
     * invalidation is automatic. Shared safely by any number of
     * daemons on one filesystem (atomic-rename writes).
     */
    std::string persistDir;
};

/** Warm-cache compile front end; see the file comment. */
class CompileService
{
  public:
    explicit CompileService(ServiceOptions options = {});

    /**
     * Compile @p dfg for @p arch exactly like Compiler::compile, with
     * the service's warm caches injected: MapZero methods get the
     * memoized pre-trained network and the shared eval cache (unless
     * @p options already carries its own), and @p cancel (may be
     * nullptr) is installed as CompileOptions::cancel.
     *
     * When @p trace is non-null the call records the request timeline
     * into it: top-level "disk_cache", "compile", and "persist"
     * stages, with the "model" cold-start span (pretrain/load) and
     * the per-(II, restart) attempt spans nested under "compile". The
     * context must outlive the call.
     */
    CompileResult compile(const dfg::Dfg &dfg,
                          const cgra::Architecture &arch, Method method,
                          CompileOptions options,
                          const std::atomic<bool> *cancel = nullptr,
                          TraceContext *trace = nullptr);

    /** The shared evaluation cache (tests, metrics). */
    const std::shared_ptr<rl::EvalCache> &evalCache() const
    {
        return evalCache_;
    }

    /** The persistent result tier (disabled unless persistDir set). */
    const DiskByteStore &resultStore() const { return disk_; }

    /**
     * Canonical byte key of one compile request against this service
     * (exposed for tests): everything that determines the result, and
     * nothing that does not (jobs and cache toggles change throughput,
     * never results).
     */
    std::string requestKey(const dfg::Dfg &dfg,
                           const cgra::Architecture &arch, Method method,
                           const CompileOptions &options);

  private:
    /** Weight fingerprint of @p net, memoized per network instance. */
    std::uint64_t modelFingerprint(const rl::MapZeroNet &net);

    ServiceOptions options_;
    std::shared_ptr<rl::EvalCache> evalCache_;
    DiskByteStore disk_;
    std::mutex fingerprintMutex_;
    std::map<const rl::MapZeroNet *, std::uint64_t> fingerprints_;
};

/** Serialize @p result for the persistent tier (round-trips exactly). */
std::string encodeCompileResult(const CompileResult &result);

/**
 * Decode a payload written by encodeCompileResult. Returns false (and
 * leaves @p out untouched) on any framing error - treated as a miss.
 */
bool decodeCompileResult(const std::string &payload, CompileResult &out);

/**
 * Render @p result as the JSON blob the daemon's FETCH reply carries:
 * outcome fields mirroring CompileResult plus the placement list, and -
 * for successful mappings - an independent server-side validation
 * (routes are replayed and checked; "valid": true/false). Failed
 * compiles produce a blob with "success": false and no placements.
 */
std::string renderResultJson(const dfg::Dfg &dfg,
                             const cgra::Architecture &arch,
                             const CompileResult &result);

} // namespace mapzero

#endif // MAPZERO_CORE_SERVICE_HPP
