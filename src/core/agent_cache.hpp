/**
 * @file
 * Process-wide cache of pre-trained MapZero networks.
 *
 * The paper pre-trains one agent per fabric for hours; the benches and
 * examples instead pre-train briefly (curriculum of small random DFGs)
 * and cache the result per architecture so the dozens of compilations in
 * one harness run share a single training pass. Checkpoints can also be
 * saved/loaded so a long offline training run can feed later sessions.
 */

#ifndef MAPZERO_CORE_AGENT_CACHE_HPP
#define MAPZERO_CORE_AGENT_CACHE_HPP

#include <memory>
#include <string>

#include "rl/trainer.hpp"

namespace mapzero {

/** Pre-training budget knobs. */
struct PretrainBudget {
    /** Curriculum episodes. */
    std::int32_t episodes = 24;
    /** Wall-clock cap (seconds). */
    double seconds = 30.0;
    /** Random-DFG node range (paper: 3 to 30). */
    std::int32_t minNodes = 3;
    std::int32_t maxNodes = 14;
    /** MCTS expansions during self-play. */
    std::int32_t mctsExpansions = 16;
    std::uint64_t seed = 11;
};

/**
 * Pre-trained network for @p arch, trained on first use and memoized by
 * architecture name for the rest of the process. Thread-safe: concurrent
 * callers for the same architecture train exactly once (the first caller
 * trains under a per-architecture lock while the rest block on it), and
 * callers for different architectures proceed independently.
 */
std::shared_ptr<const rl::MapZeroNet> pretrainedNetwork(
    const cgra::Architecture &arch, const PretrainBudget &budget = {});

/** Drop every cached network (tests). */
void clearAgentCache();

/** Train (uncached) and return the full trainer, for learning-curve
 *  experiments that need the episode history. */
std::unique_ptr<rl::Trainer> trainAgent(const cgra::Architecture &arch,
                                        const PretrainBudget &budget);

} // namespace mapzero

#endif // MAPZERO_CORE_AGENT_CACHE_HPP
