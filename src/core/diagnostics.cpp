#include "core/diagnostics.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <map>
#include <sstream>

#include "common/log.hpp"
#include "common/metrics.hpp"

namespace mapzero {

namespace {

std::string
fmt(double value, int precision = 3)
{
    std::ostringstream os;
    os << std::setprecision(precision) << value;
    return os.str();
}

std::string
pct(double fraction)
{
    std::ostringstream os;
    os << std::showpos << std::fixed << std::setprecision(1)
       << fraction * 100.0 << "%";
    return os.str();
}

std::int64_t
intOr(const JsonValue &record, const std::string &key,
      std::int64_t fallback)
{
    return static_cast<std::int64_t>(
        record.numberOr(key, static_cast<double>(fallback)));
}

/** "PE(r,c)@t2" when the grid is known, "PE7@t2" when it is not. */
std::string
siteLabel(std::int32_t pe, std::int32_t slot, std::int32_t cols)
{
    if (cols > 0)
        return cat("PE(", pe / cols, ",", pe % cols, ")@t", slot);
    return cat("PE", pe, "@t", slot);
}

// --------------------------------------------------------------------
// Journal aggregation

/** Everything learned about one II within one compile sweep. */
struct IiAgg {
    std::int64_t attempts = 0;
    std::int64_t successes = 0;
    std::int64_t infeasible = 0;
    std::int64_t timeouts = 0;
    std::int64_t deadEnds = 0;
    std::int64_t routeFailures = 0;
    double seconds = 0.0;
    /** Lowest restart index that succeeded (-1 when none did). */
    std::int32_t winningRestart = -1;
    /** Blamed node -> number of attempts blaming it. */
    std::map<std::string, std::int64_t> failNodes;
    /** First unplaceable node of the earliest failing attempt. */
    std::string firstFailNode;
    /** (pe, slot) -> merged congestion count across attempts. */
    std::map<std::pair<std::int32_t, std::int32_t>, std::int64_t> sites;
};

/** One (dfg, method) compile sweep reassembled from the journal. */
struct SweepAgg {
    std::string dfg;
    std::string method;
    std::int32_t rows = 0;
    std::int32_t cols = 0;
    std::map<std::int32_t, IiAgg> byIi;
    /** Filled from the compile.result record when present. */
    bool haveResult = false;
    bool success = false;
    bool timedOut = false;
    std::int32_t mii = 0;
    std::int32_t finalIi = 0;
    double seconds = 0.0;
    std::int64_t searchOps = 0;
    std::int64_t totalHops = 0;
};

/** MCTS search health for one DFG. */
struct MctsAgg {
    std::int64_t moves = 0;
    std::int64_t solved = 0;
    std::int64_t simulations = 0;
    std::int64_t maxDepth = 0;
    double entropySum = 0.0;
    double entropyMin = std::numeric_limits<double>::infinity();
    double valueSum = 0.0;
    double valueMin = std::numeric_limits<double>::infinity();
    double valueMax = -std::numeric_limits<double>::infinity();
    double shareSum = 0.0;
    double supportSum = 0.0;
    std::int64_t netCalls = 0;
    std::int64_t netLeaves = 0;
    std::int64_t treeNodesMax = 0;
    std::int64_t arenaBytesMax = 0;
};

/** Whole-run trainer summary. */
struct TrainerAgg {
    std::int64_t episodes = 0;
    std::int64_t successes = 0;
    double lastTotalLoss = 0.0;
    double lastValueLoss = 0.0;
    double lastPolicyLoss = 0.0;
    double firstLr = 0.0;
    double lastLr = 0.0;
    double gradNormMax = 0.0;
    std::int64_t replaySize = 0;
    double priorityMin = 0.0;
    double priorityMean = 0.0;
    double priorityMax = 0.0;
};

void
absorbAttempt(SweepAgg &sweep, const JsonValue &record)
{
    sweep.rows = static_cast<std::int32_t>(intOr(record, "rows",
                                                 sweep.rows));
    sweep.cols = static_cast<std::int32_t>(intOr(record, "cols",
                                                 sweep.cols));
    const auto ii = static_cast<std::int32_t>(intOr(record, "ii", 0));
    IiAgg &agg = sweep.byIi[ii];
    ++agg.attempts;
    agg.seconds += record.numberOr("seconds", 0.0);
    const std::string outcome = record.stringOr("outcome", "fail");
    if (outcome == "success") {
        ++agg.successes;
        const auto restart =
            static_cast<std::int32_t>(intOr(record, "restart", 0));
        if (agg.winningRestart < 0 || restart < agg.winningRestart)
            agg.winningRestart = restart;
        return;
    }
    if (outcome == "infeasible") {
        ++agg.infeasible;
        return;
    }
    if (outcome == "timeout")
        ++agg.timeouts;
    agg.deadEnds += intOr(record, "dead_ends", 0);
    agg.routeFailures += intOr(record, "route_failures", 0);
    const std::string blamed = record.stringOr("fail_node", "");
    if (!blamed.empty())
        ++agg.failNodes[blamed];
    if (agg.firstFailNode.empty())
        agg.firstFailNode = record.stringOr("first_fail_node", "");
    if (record.has("hotspots")) {
        const JsonValue &spots = record.at("hotspots");
        for (std::size_t i = 0; i < spots.size(); ++i) {
            const JsonValue &s = spots.at(i);
            const auto pe =
                static_cast<std::int32_t>(intOr(s, "pe", -1));
            const auto slot =
                static_cast<std::int32_t>(intOr(s, "slot", -1));
            agg.sites[{pe, slot}] += intOr(s, "count", 0);
        }
    }
}

void
absorbMctsMove(MctsAgg &agg, const JsonValue &record)
{
    ++agg.moves;
    if (record.has("solved") && record.at("solved").asBool())
        ++agg.solved;
    agg.simulations += intOr(record, "simulations", 0);
    agg.maxDepth = std::max(agg.maxDepth, intOr(record, "max_depth", 0));
    const double entropy = record.numberOr("policy_entropy", 0.0);
    agg.entropySum += entropy;
    agg.entropyMin = std::min(agg.entropyMin, entropy);
    const double value = record.numberOr("root_value", 0.0);
    agg.valueSum += value;
    agg.valueMin = std::min(agg.valueMin, value);
    agg.valueMax = std::max(agg.valueMax, value);
    agg.shareSum += record.numberOr("best_visit_share", 0.0);
    agg.supportSum += record.numberOr("support", 0.0);
    agg.netCalls += intOr(record, "net_calls", 0);
    agg.netLeaves += intOr(record, "net_leaves", 0);
    agg.treeNodesMax =
        std::max(agg.treeNodesMax, intOr(record, "tree_nodes", 0));
    agg.arenaBytesMax =
        std::max(agg.arenaBytesMax, intOr(record, "arena_bytes", 0));
}

void
absorbTrainerEpisode(TrainerAgg &agg, const JsonValue &record)
{
    ++agg.episodes;
    if (record.has("success") && record.at("success").asBool())
        ++agg.successes;
    agg.lastTotalLoss = record.numberOr("total_loss", 0.0);
    agg.lastValueLoss = record.numberOr("value_loss", 0.0);
    agg.lastPolicyLoss = record.numberOr("policy_loss", 0.0);
    const double lr = record.numberOr("learning_rate", 0.0);
    if (agg.episodes == 1)
        agg.firstLr = lr;
    agg.lastLr = lr;
    agg.gradNormMax =
        std::max(agg.gradNormMax, record.numberOr("grad_norm", 0.0));
    agg.replaySize = intOr(record, "replay_size", 0);
    agg.priorityMin = record.numberOr("priority_min", 0.0);
    agg.priorityMean = record.numberOr("priority_mean", 0.0);
    agg.priorityMax = record.numberOr("priority_max", 0.0);
}

// --------------------------------------------------------------------
// Rendering

/**
 * ASCII congestion heatmap over the fabric for one II: one grid per
 * time slot, '.' for untouched PEs, 1-9 scaled against the hottest
 * site. Skipped when the journal never recorded the grid shape.
 */
void
renderHeatmap(std::ostringstream &os, const SweepAgg &sweep,
              std::int32_t ii, const IiAgg &agg)
{
    if (sweep.rows <= 0 || sweep.cols <= 0 || agg.sites.empty())
        return;
    std::int64_t hottest = 0;
    for (const auto &[site, count] : agg.sites)
        hottest = std::max(hottest, count);
    if (hottest <= 0)
        return;
    os << "  congestion heatmap (II=" << ii
       << "; '.'=0, 1-9 scaled to hottest=" << hottest << "):\n";
    for (std::int32_t slot = 0; slot < ii; ++slot) {
        for (std::int32_t r = 0; r < sweep.rows; ++r) {
            os << (r == 0 ? cat("    t", slot, ": ")
                          : std::string(8, ' '));
            for (std::int32_t c = 0; c < sweep.cols; ++c) {
                const std::int32_t pe = r * sweep.cols + c;
                const auto it = agg.sites.find({pe, slot});
                const std::int64_t count =
                    it == agg.sites.end() ? 0 : it->second;
                if (count <= 0) {
                    os << " .";
                } else {
                    const std::int64_t scaled =
                        1 + count * 8 / hottest;
                    os << ' ' << std::min<std::int64_t>(scaled, 9);
                }
            }
            os << '\n';
        }
    }
}

void
renderSweep(std::ostringstream &os, const SweepAgg &sweep,
            const DiagnosticsOptions &options)
{
    os << "=== Compile post-mortem: " << sweep.dfg << " ["
       << sweep.method << "] ===\n";
    if (sweep.haveResult) {
        if (sweep.success) {
            os << "mapped at II=" << sweep.finalIi << " (MII="
               << sweep.mii << ") in " << fmt(sweep.seconds)
               << "s; " << sweep.searchOps << " search ops; "
               << sweep.totalHops << " routed hops\n";
        } else {
            os << "FAILED" << (sweep.timedOut ? " (timed out)" : "")
               << " after " << fmt(sweep.seconds) << "s from MII="
               << sweep.mii << "; " << sweep.searchOps
               << " search ops\n";
        }
    }
    // The II whose heatmap gets rendered: the failed II with the most
    // congestion evidence.
    std::int32_t hot_ii = -1;
    std::int64_t hot_total = 0;
    for (const auto &[ii, agg] : sweep.byIi) {
        os << "  II=" << ii << ": ";
        if (agg.successes > 0) {
            os << "solved on restart " << agg.winningRestart << " ("
               << agg.attempts << " attempt"
               << (agg.attempts == 1 ? "" : "s") << ", "
               << fmt(agg.seconds) << "s)\n";
            continue;
        }
        if (agg.infeasible == agg.attempts) {
            os << "structurally infeasible (" << agg.attempts
               << " attempt" << (agg.attempts == 1 ? "" : "s")
               << ")\n";
            continue;
        }
        os << "failed";
        if (agg.timeouts > 0)
            os << " (" << agg.timeouts << " timed out)";
        if (!agg.failNodes.empty()) {
            const auto blamed = std::max_element(
                agg.failNodes.begin(), agg.failNodes.end(),
                [](const auto &a, const auto &b) {
                    return a.second < b.second;
                });
            os << ": node " << blamed->first << " unplaceable in "
               << blamed->second << "/" << agg.attempts << " restart"
               << (agg.attempts == 1 ? "" : "s");
        }
        if (!agg.firstFailNode.empty())
            os << "; first stuck at " << agg.firstFailNode;
        if (agg.deadEnds > 0 || agg.routeFailures > 0)
            os << "; " << agg.deadEnds << " dead ends, "
               << agg.routeFailures << " route failures";
        if (!agg.sites.empty()) {
            std::vector<std::pair<std::int64_t,
                                  std::pair<std::int32_t,
                                            std::int32_t>>> ranked;
            std::int64_t total = 0;
            for (const auto &[site, count] : agg.sites) {
                ranked.push_back({count, site});
                total += count;
            }
            std::stable_sort(ranked.begin(), ranked.end(),
                             [](const auto &a, const auto &b) {
                                 return a.first > b.first;
                             });
            if (ranked.size() > options.hotspotCount)
                ranked.resize(options.hotspotCount);
            os << "; hottest";
            for (const auto &[count, site] : ranked)
                os << " " << siteLabel(site.first, site.second,
                                       sweep.cols)
                   << " (x" << count << ")";
            if (total > hot_total) {
                hot_total = total;
                hot_ii = ii;
            }
        }
        os << '\n';
    }
    if (hot_ii >= 0)
        renderHeatmap(os, sweep, hot_ii, sweep.byIi.at(hot_ii));
    os << '\n';
}

void
renderMcts(std::ostringstream &os,
           const std::map<std::string, MctsAgg> &mcts)
{
    if (mcts.empty())
        return;
    os << "=== MCTS health ===\n";
    for (const auto &[dfg, agg] : mcts) {
        const double n = static_cast<double>(agg.moves);
        os << dfg << ": " << agg.moves << " moves ("
           << fmt(static_cast<double>(agg.simulations) / n)
           << " sims/move); root value mean "
           << fmt(agg.valueSum / n) << " [" << fmt(agg.valueMin)
           << ", " << fmt(agg.valueMax) << "]; policy entropy mean "
           << fmt(agg.entropySum / n) << " (min "
           << fmt(agg.entropyMin) << "); best-visit share mean "
           << fmt(agg.shareSum / n) << "; support mean "
           << fmt(agg.supportSum / n) << "; max depth "
           << agg.maxDepth << "; " << agg.solved << "/" << agg.moves
           << " solved roots\n";
        if (agg.netCalls > 0) {
            os << "  batching: "
               << fmt(static_cast<double>(agg.netLeaves) /
                      static_cast<double>(agg.netCalls))
               << " leaves/net call (" << agg.netCalls
               << " calls); tree peak " << agg.treeNodesMax
               << " nodes, arena peak " << agg.arenaBytesMax
               << " bytes\n";
        }
        if (agg.entropySum / n < 0.05)
            os << "  warning: near-zero root entropy - the policy "
                  "has collapsed to one action\n";
    }
    os << '\n';
}

void
renderTrainer(std::ostringstream &os, const TrainerAgg &agg)
{
    if (agg.episodes == 0)
        return;
    const double n = static_cast<double>(agg.episodes);
    os << "=== Trainer ===\n"
       << agg.episodes << " episodes, "
       << fmt(100.0 * static_cast<double>(agg.successes) / n)
       << "% success; last loss " << fmt(agg.lastTotalLoss)
       << " (value " << fmt(agg.lastValueLoss) << ", policy "
       << fmt(agg.lastPolicyLoss) << "); grad-norm max "
       << fmt(agg.gradNormMax) << "; lr " << fmt(agg.firstLr)
       << " -> " << fmt(agg.lastLr) << "; replay " << agg.replaySize
       << ", priorities min/mean/max " << fmt(agg.priorityMin) << "/"
       << fmt(agg.priorityMean) << "/" << fmt(agg.priorityMax)
       << '\n';
    if (agg.replaySize > 0 && agg.priorityMax < 1e-5)
        os << "  warning: priority distribution collapsed - replay "
              "sampling is effectively uniform\n";
    os << '\n';
}

} // namespace

std::string
renderJournalDiagnostics(const std::vector<JsonValue> &records,
                         const DiagnosticsOptions &options)
{
    std::map<std::string, SweepAgg> sweeps;
    std::map<std::string, MctsAgg> mcts;
    TrainerAgg trainer;
    std::int64_t dropped = 0;
    std::int64_t unknown = 0;

    for (const JsonValue &record : records) {
        const std::string type = record.stringOr("type", "");
        if (type == "compile.attempt" || type == "compile.result") {
            const std::string key = record.stringOr("dfg", "?") +
                                    "\x1f" +
                                    record.stringOr("method", "?");
            SweepAgg &sweep = sweeps[key];
            sweep.dfg = record.stringOr("dfg", "?");
            sweep.method = record.stringOr("method", "?");
            if (type == "compile.attempt") {
                absorbAttempt(sweep, record);
            } else {
                sweep.haveResult = true;
                sweep.success = record.has("success") &&
                                record.at("success").asBool();
                sweep.timedOut = record.has("timed_out") &&
                                 record.at("timed_out").asBool();
                sweep.mii =
                    static_cast<std::int32_t>(intOr(record, "mii", 0));
                sweep.finalIi =
                    static_cast<std::int32_t>(intOr(record, "ii", 0));
                sweep.seconds = record.numberOr("seconds", 0.0);
                sweep.searchOps = intOr(record, "search_ops", 0);
                sweep.totalHops = intOr(record, "total_hops", 0);
            }
        } else if (type == "mcts.move") {
            absorbMctsMove(mcts[record.stringOr("dfg", "?")], record);
        } else if (type == "trainer.episode") {
            absorbTrainerEpisode(trainer, record);
        } else if (type == "journal.dropped") {
            dropped += intOr(record, "dropped", 0);
        } else {
            ++unknown;
        }
    }

    std::ostringstream os;
    os << "journal: " << records.size() << " records";
    if (dropped > 0)
        os << " (" << dropped
           << " older records dropped by the ring buffer)";
    if (unknown > 0)
        os << "; " << unknown << " unrecognized record types skipped";
    os << "\n\n";
    if (records.empty()) {
        os << "nothing recorded - was the journal enabled "
              "(--journal-out / MAPZERO_JOURNAL)?\n";
        return os.str();
    }
    for (const auto &[key, sweep] : sweeps)
        renderSweep(os, sweep, options);
    renderMcts(os, mcts);
    renderTrainer(os, trainer);
    return os.str();
}

// --------------------------------------------------------------------
// Run-report comparison

namespace {

bool
containsAny(const std::string &name,
            std::initializer_list<const char *> needles)
{
    for (const char *needle : needles)
        if (name.find(needle) != std::string::npos)
            return true;
    return false;
}

/** Counters where growth means trouble. */
bool
lowerBetterCounter(const std::string &name)
{
    return containsAny(name, {"timeout", "fail", "conflict", "dropped",
                              "divergence", "escalation"});
}

const JsonValue &
metricsSection(const JsonValue &report, const char *which)
{
    if (!report.isObject() || !report.has("metrics"))
        fatal(cat(which, " run report has no \"metrics\" object - was "
                         "it written by --metrics-out?"));
    return report.at("metrics");
}

struct Comparison {
    std::string name;
    double base = 0.0;
    double cand = 0.0;
    /** Signed relative change, regression-positive. */
    double severity = 0.0;
};

/**
 * Relative change oriented so positive = worse. A metric appearing
 * from a zero baseline counts as a full-scale regression.
 */
double
severityOf(double base, double cand, bool lower_better)
{
    const double delta = lower_better ? cand - base : base - cand;
    if (base == 0.0)
        return delta > 0.0 ? std::numeric_limits<double>::infinity()
                           : 0.0;
    return delta / std::abs(base);
}

} // namespace

CompareReport
compareRunReports(const JsonValue &baseline, const JsonValue &candidate,
                  const CompareOptions &options)
{
    const JsonValue &base = metricsSection(baseline, "baseline");
    const JsonValue &cand = metricsSection(candidate, "candidate");

    std::vector<Comparison> regressions;
    std::vector<Comparison> improvements;
    CompareReport report;

    const auto consider = [&](const std::string &name, double b,
                              double c, bool lower_better) {
        ++report.compared;
        Comparison cmp{name, b, c, severityOf(b, c, lower_better)};
        if (cmp.severity >= options.threshold)
            regressions.push_back(cmp);
        else if (cmp.severity <= -options.threshold)
            improvements.push_back(cmp);
    };

    if (base.has("counters") && cand.has("counters")) {
        const JsonValue &cc = cand.at("counters");
        for (const auto &[name, value] : base.at("counters").members())
            if (lowerBetterCounter(name) && cc.has(name))
                consider(cat("counter ", name), value.asNumber(),
                         cc.at(name).asNumber(), true);
        // A failure counter born in the candidate is still a
        // regression even though the baseline never saw it.
        for (const auto &[name, value] : cc.members())
            if (lowerBetterCounter(name) &&
                !base.at("counters").has(name) &&
                value.asNumber() > 0.0)
                consider(cat("counter ", name), 0.0,
                         value.asNumber(), true);
    }
    if (base.has("gauges") && cand.has("gauges")) {
        const JsonValue &cg = cand.at("gauges");
        for (const auto &[name, value] : base.at("gauges").members())
            if (name.find("per_sec") != std::string::npos &&
                cg.has(name))
                consider(cat("gauge ", name), value.asNumber(),
                         cg.at(name).asNumber(), false);
    }
    if (base.has("histograms") && cand.has("histograms")) {
        const JsonValue &ch = cand.at("histograms");
        for (const auto &[name, h] : base.at("histograms").members()) {
            if (name.find("seconds") == std::string::npos ||
                !ch.has(name))
                continue;
            for (const char *stat : {"mean", "p95"})
                consider(cat("histogram ", name, ".", stat),
                         h.numberOr(stat, 0.0),
                         ch.at(name).numberOr(stat, 0.0), true);
        }
    }

    const auto worse_first = [](const Comparison &a,
                                const Comparison &b) {
        return a.severity > b.severity;
    };
    std::stable_sort(regressions.begin(), regressions.end(),
                     worse_first);
    std::stable_sort(improvements.begin(), improvements.end(),
                     [](const Comparison &a, const Comparison &b) {
                         return a.severity < b.severity;
                     });

    std::ostringstream os;
    const auto line = [&](const char *tag, const Comparison &cmp) {
        os << tag << " " << cmp.name << ": " << fmt(cmp.base, 6)
           << " -> " << fmt(cmp.cand, 6);
        if (std::isfinite(cmp.severity))
            os << " (" << pct(std::abs(cmp.severity))
               << (cmp.severity > 0.0 ? " worse)" : " better)");
        else
            os << " (new)";
        os << '\n';
    };
    for (const Comparison &cmp : regressions)
        line("REGRESSION ", cmp);
    for (const Comparison &cmp : improvements)
        line("improvement", cmp);
    os << "compared " << report.compared << " key metrics: "
       << regressions.size() << " regression"
       << (regressions.size() == 1 ? "" : "s") << ", "
       << improvements.size() << " improvement"
       << (improvements.size() == 1 ? "" : "s") << " (threshold "
       << fmt(options.threshold * 100.0) << "%)\n";

    report.regressed = !regressions.empty();
    report.text = os.str();
    return report;
}

std::string
renderMetricsReport(const JsonValue &report)
{
    // Accept both the --metrics-out wrapper and a bare registry
    // snapshot so `report --metrics` works on either artifact.
    const JsonValue &m =
        report.isObject() && report.has("metrics")
            ? report.at("metrics")
            : report;
    if (!m.isObject() ||
        (!m.has("counters") && !m.has("gauges") && !m.has("histograms")))
        fatal("not a metrics run report - was it written by "
              "--metrics-out?");

    std::ostringstream os;
    os << "=== run-report metrics ===\n";

    if (m.has("counters")) {
        std::size_t shown = 0;
        for (const auto &[name, value] : m.at("counters").members()) {
            if (value.asNumber() == 0.0)
                continue;
            if (shown++ == 0)
                os << "\ncounters (non-zero):\n";
            os << "  " << name << " = "
               << static_cast<std::int64_t>(value.asNumber()) << '\n';
        }
    }
    if (m.has("gauges")) {
        std::size_t shown = 0;
        for (const auto &[name, value] : m.at("gauges").members()) {
            if (value.asNumber() == 0.0)
                continue;
            if (shown++ == 0)
                os << "\ngauges:\n";
            os << "  " << name << " = " << fmt(value.asNumber(), 6)
               << '\n';
        }
    }
    if (m.has("histograms")) {
        std::size_t shown = 0;
        for (const auto &[name, h] : m.at("histograms").members()) {
            const double count = h.numberOr("count", 0.0);
            if (count <= 0.0)
                continue;
            if (shown++ == 0) {
                os << "\nhistograms (percentiles interpolated from "
                      "log buckets):\n";
                char header[128];
                std::snprintf(header, sizeof(header),
                              "  %-36s %8s %10s %10s %10s %10s %10s\n",
                              "name", "count", "mean", "p50", "p90",
                              "p99", "max");
                os << header;
            }
            char row[192];
            std::snprintf(row, sizeof(row),
                          "  %-36s %8lld %10.4g %10.4g %10.4g %10.4g "
                          "%10.4g\n",
                          name.c_str(),
                          static_cast<long long>(count),
                          h.numberOr("mean", 0.0),
                          h.numberOr("p50", 0.0),
                          h.numberOr("p90", 0.0),
                          h.numberOr("p99", 0.0),
                          h.numberOr("max", 0.0));
            os << row;
        }
    }
    return os.str();
}

// --------------------------------------------------------------------
// Request timelines

namespace {

/** Re-serialize a parsed JsonValue (for Chrome event args). */
void
writeJsonValue(std::ostream &os, const JsonValue &value)
{
    switch (value.kind()) {
    case JsonValue::Kind::Null:
        os << "null";
        break;
    case JsonValue::Kind::Bool:
        os << (value.asBool() ? "true" : "false");
        break;
    case JsonValue::Kind::Number:
        os << jsonNumber(value.asNumber());
        break;
    case JsonValue::Kind::String:
        os << '"' << jsonEscape(value.asString()) << '"';
        break;
    case JsonValue::Kind::Array: {
        os << '[';
        for (std::size_t i = 0; i < value.size(); ++i) {
            os << (i ? ", " : "");
            writeJsonValue(os, value.at(i));
        }
        os << ']';
        break;
    }
    case JsonValue::Kind::Object: {
        os << '{';
        bool first = true;
        for (const auto &[key, member] : value.members()) {
            os << (first ? "" : ", ") << '"' << jsonEscape(key)
               << "\": ";
            writeJsonValue(os, member);
            first = false;
        }
        os << '}';
        break;
    }
    }
}

/** fatal() unless @p timeline looks like TraceContext::timelineJson. */
void
requireTimeline(const JsonValue &timeline)
{
    if (!timeline.isObject() || !timeline.has("stages") ||
        !timeline.at("stages").isArray())
        fatal("not a request timeline - was it fetched via the TRACE "
              "op or GET /trace?job=ID?");
}

/** "ii=3 restart=0 mcts_waves=12" from a stage args object. */
std::string
argsSummary(const JsonValue &args)
{
    std::ostringstream os;
    bool first = true;
    for (const auto &[key, value] : args.members()) {
        os << (first ? "" : " ") << key << '=';
        if (value.isString())
            os << value.asString();
        else if (value.isNumber())
            os << (value.asNumber() ==
                           std::floor(value.asNumber())
                       ? cat(value.asInt())
                       : fmt(value.asNumber(), 4));
        first = false;
    }
    return os.str();
}

} // namespace

std::string
renderTraceTimeline(const JsonValue &timeline)
{
    requireTimeline(timeline);
    const double total_us =
        std::max(timeline.numberOr("total_us", 0.0), 1.0);
    std::ostringstream os;
    os << "=== request timeline " << timeline.stringOr("trace_id", "?")
       << " ===\n"
       << "total " << fmt(total_us / 1e3, 6) << " ms, coverage "
       << fmt(timeline.numberOr("coverage", 0.0) * 100.0, 4)
       << "%, dominant stage: "
       << timeline.stringOr("dominant_stage", "-") << '\n';
    const auto dropped =
        static_cast<std::int64_t>(timeline.numberOr("dropped", 0.0));
    if (dropped > 0)
        os << "(" << dropped
           << " stages dropped at the per-job cap - the busiest "
              "attempts are missing)\n";
    os << '\n';

    constexpr int kBarWidth = 40;
    const JsonValue &stages = timeline.at("stages");
    for (std::size_t i = 0; i < stages.size(); ++i) {
        const JsonValue &s = stages.at(i);
        const double start_us = s.numberOr("start_us", 0.0);
        const double dur_us = s.numberOr("dur_us", 0.0);
        const int depth =
            static_cast<int>(s.numberOr("depth", 0.0));
        // Position bar: '=' spans the stage's [start, end) slice of the
        // request; even a sub-pixel stage gets one cell so it is
        // visible.
        int begin = static_cast<int>(start_us / total_us * kBarWidth);
        begin = std::clamp(begin, 0, kBarWidth - 1);
        int end = static_cast<int>(
            std::ceil((start_us + dur_us) / total_us * kBarWidth));
        end = std::clamp(end, begin + 1, kBarWidth);
        std::string bar(static_cast<std::size_t>(kBarWidth), '.');
        for (int c = begin; c < end; ++c)
            bar[static_cast<std::size_t>(c)] = '=';

        std::string label(static_cast<std::size_t>(depth) * 2, ' ');
        label += s.stringOr("name", "?");
        char row[160];
        std::snprintf(row, sizeof(row),
                      "  %-18s |%s| %9.2f ms +%9.2f ms",
                      label.c_str(), bar.c_str(), start_us / 1e3,
                      dur_us / 1e3);
        os << row;
        if (s.has("args")) {
            const std::string summary = argsSummary(s.at("args"));
            if (!summary.empty())
                os << "  " << summary;
        }
        os << '\n';
    }
    return os.str();
}

std::string
timelineToChromeJson(const JsonValue &timeline)
{
    requireTimeline(timeline);
    const std::string trace_id = timeline.stringOr("trace_id", "?");
    std::ostringstream os;
    os << "{\"traceEvents\": [\n"
       << " {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
          "\"args\": {\"name\": \"mapzerod "
       << jsonEscape(trace_id) << "\"}}";
    const JsonValue &stages = timeline.at("stages");
    for (std::size_t i = 0; i < stages.size(); ++i) {
        const JsonValue &s = stages.at(i);
        // Complete ("X") events; tid picks the chrome lane, so the
        // portfolio's parallel attempts stack side by side instead of
        // overlapping.
        os << ",\n {\"name\": \"" << jsonEscape(s.stringOr("name", "?"))
           << "\", \"cat\": \"compile\", \"ph\": \"X\", \"pid\": 1"
           << ", \"tid\": "
           << static_cast<std::uint64_t>(s.numberOr("tid", 0.0))
           << ", \"ts\": "
           << static_cast<std::int64_t>(s.numberOr("start_us", 0.0))
           << ", \"dur\": "
           << static_cast<std::int64_t>(s.numberOr("dur_us", 0.0));
        if (s.has("args")) {
            os << ", \"args\": ";
            writeJsonValue(os, s.at("args"));
        }
        os << "}";
    }
    os << "\n], \"displayTimeUnit\": \"ms\"}\n";
    return os.str();
}

} // namespace mapzero
