/**
 * @file
 * Offline diagnostics: turn flight-recorder journals and metrics run
 * reports into human-readable post-mortems.
 *
 * Everything here is pure analysis over already-parsed JSON — no
 * filesystem access, no global state — so the `mapzero_cli report`
 * subcommand and the tests share one code path. The two entry points:
 *
 *  - renderJournalDiagnostics(): read `compile.attempt` /
 *    `compile.result` / `mcts.move` / `trainer.episode` records and
 *    render compile post-mortems ("II=3 failed: node mul7 unplaceable
 *    in 30/32 restarts"), an ASCII congestion heatmap over the fabric,
 *    MCTS search-health summaries, and a trainer summary.
 *
 *  - compareRunReports(): diff two `--metrics-out` run reports and flag
 *    relative regressions at or beyond a threshold, for CI gates.
 */

#ifndef MAPZERO_CORE_DIAGNOSTICS_HPP
#define MAPZERO_CORE_DIAGNOSTICS_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace mapzero {

/** Knobs for renderJournalDiagnostics(). */
struct DiagnosticsOptions {
    /** Congested (PE, time-slot) pairs listed per failed II. */
    std::size_t hotspotCount = 3;
};

/**
 * Render the full diagnostics report for one journal (the parsed lines
 * of a `--journal-out` JSONL file). Unknown record types are counted
 * and noted, never fatal — a journal from a newer build still yields a
 * report.
 */
std::string
renderJournalDiagnostics(const std::vector<JsonValue> &records,
                         const DiagnosticsOptions &options = {});

/** Knobs for compareRunReports(). */
struct CompareOptions {
    /**
     * Relative change at or beyond which a key metric counts as a
     * regression (0.05 = 5%). Direction-aware: failure/timeout/conflict
     * counters and *_seconds latencies regress upward, *per_sec
     * throughput gauges regress downward.
     */
    double threshold = 0.05;
};

/** Outcome of a run-report diff. */
struct CompareReport {
    /** Any key metric regressed at or beyond the threshold. */
    bool regressed = false;
    /** Key metrics present in both reports and compared. */
    std::size_t compared = 0;
    /** Human-readable diff, one line per flagged metric. */
    std::string text;
};

/**
 * Diff two metrics run reports (the JSON written by --metrics-out).
 * Only direction-classified key metrics participate; everything else
 * is informational. fatal() when either document lacks a "metrics"
 * object.
 */
CompareReport compareRunReports(const JsonValue &baseline,
                                const JsonValue &candidate,
                                const CompareOptions &options = {});

/**
 * Render one metrics run report (the JSON written by --metrics-out,
 * or its bare "metrics" object) as a human-readable summary: non-zero
 * counters, gauges, and a latency table per histogram with the
 * interpolated p50/p90/p99 estimates - the `report --metrics FILE`
 * view. fatal() when @p report is not a run report.
 */
std::string renderMetricsReport(const JsonValue &report);

/**
 * Render one request timeline (the JSON served by the daemon TRACE op
 * and the telemetry /trace endpoint) as an ASCII Gantt chart: one row
 * per stage, indented by nesting depth, with a position bar scaled to
 * the request wall time and the stage's counters (waves, cache hits,
 * routing time) inline - the `trace` / `report --trace FILE` view.
 * fatal() when @p timeline is not a timeline document.
 */
std::string renderTraceTimeline(const JsonValue &timeline);

/**
 * Convert one request timeline to Chrome trace-event JSON (complete
 * "X" events, microsecond timestamps) loadable in chrome://tracing or
 * ui.perfetto.dev. Stage tids become lanes, so parallel portfolio
 * attempts render side by side. fatal() on non-timeline input.
 */
std::string timelineToChromeJson(const JsonValue &timeline);

} // namespace mapzero

#endif // MAPZERO_CORE_DIAGNOSTICS_HPP
