/**
 * @file
 * Spatial (single-shot) mapping - the paper's second §4.8 extension:
 * "this framework can also be used for dynamic scheduling of CGRA,
 * where the agent maps DFG nodes onto PEs of different time domain
 * extensions to obtain the minimum makespan."
 *
 * Unlike modulo mapping, the kernel executes once, so loop-carried
 * dependencies are ignored and the objective is the makespan (cycles
 * from first issue to last) instead of the initiation interval. The
 * implementation reuses the whole mapping stack by targeting a
 * time-extended fabric: an II equal to the schedule horizon makes every
 * time step its own resource slice, and the sweep searches for the
 * smallest horizon that still places and routes.
 */

#ifndef MAPZERO_CORE_SPATIAL_HPP
#define MAPZERO_CORE_SPATIAL_HPP

#include "baselines/mapper_base.hpp"

namespace mapzero {

/** Result of a spatial mapping. */
struct SpatialResult {
    bool success = false;
    /** Cycles from the first issue to after the last (the makespan). */
    std::int32_t makespan = 0;
    /** Lower bound: the DFG's critical-path length. */
    std::int32_t criticalPath = 0;
    double seconds = 0.0;
    std::int64_t searchOps = 0;
    std::vector<mapper::Placement> placements;
};

/** Knobs of the makespan sweep. */
struct SpatialOptions {
    /** How far above the critical path the horizon sweep may go. */
    std::int32_t maxExtraCycles = 8;
    double timeLimitSeconds = 10.0;
};

/**
 * Single-iteration DFG copy: loop-carried edges dropped (a one-shot
 * execution has no previous iteration to receive from).
 */
dfg::Dfg stripLoopCarried(const dfg::Dfg &dfg);

/** Critical-path length (cycles) of the distance-0 subgraph. */
std::int32_t criticalPathLength(const dfg::Dfg &dfg);

/**
 * Map @p dfg onto @p arch for one-shot execution, minimizing makespan:
 * sweep the time horizon upward from the critical path until
 * @p engine finds a complete mapping.
 */
SpatialResult spatialMap(baselines::MapperBase &engine,
                         const dfg::Dfg &dfg,
                         const cgra::Architecture &arch,
                         const SpatialOptions &options = {});

} // namespace mapzero

#endif // MAPZERO_CORE_SPATIAL_HPP
