#include "core/compiler.hpp"

#include <algorithm>

#include "baselines/exact_mapper.hpp"
#include "baselines/lisa_mapper.hpp"
#include "baselines/sa_mapper.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "core/config.hpp"
#include "dfg/schedule.hpp"

namespace mapzero {

const char *
methodName(Method method)
{
    switch (method) {
      case Method::MapZero:       return "MapZero";
      case Method::MapZeroNoMcts: return "MapZero(noMCTS)";
      case Method::Ilp:           return "ILP(B&B)";
      case Method::Sa:            return "SA";
      case Method::Lisa:          return "LISA";
    }
    panic("unknown method");
}

Compiler::Compiler() = default;

void
Compiler::setNetwork(std::shared_ptr<const rl::MapZeroNet> net)
{
    net_ = std::move(net);
}

std::int32_t
Compiler::minimumIi(const dfg::Dfg &dfg, const cgra::Architecture &arch)
{
    return dfg::minimumIi(dfg, arch.peCount(),
                          arch.memoryIssueCapacity());
}

std::unique_ptr<baselines::MapperBase>
Compiler::makeEngine(Method method, const CompileOptions &options) const
{
    switch (method) {
      case Method::MapZero:
      case Method::MapZeroNoMcts: {
        if (!net_)
            fatal("MapZero methods need setNetwork() with a pre-trained "
                  "network (see core/agent_cache.hpp)");
        rl::AgentConfig cfg;
        cfg.useMcts = method == Method::MapZero;
        cfg.mcts.expansionsPerMove = config::kBenchMctsExpansions;
        cfg.seed = options.seed;
        return std::make_unique<rl::MapZeroAgent>(net_, cfg);
      }
      case Method::Ilp:
        return std::make_unique<baselines::ExactMapper>();
      case Method::Sa: {
        baselines::SaConfig cfg;
        cfg.seed = options.seed;
        return std::make_unique<baselines::SaMapper>(cfg);
      }
      case Method::Lisa: {
        baselines::SaConfig cfg;
        cfg.seed = options.seed;
        return std::make_unique<baselines::LisaMapper>(cfg);
      }
    }
    panic("unknown method");
}

CompileResult
Compiler::compile(const dfg::Dfg &dfg, const cgra::Architecture &arch,
                  Method method, const CompileOptions &options)
{
    auto engine = makeEngine(method, options);
    return compileWith(*engine, dfg, arch, options);
}

CompileResult
Compiler::compileWith(baselines::MapperBase &engine, const dfg::Dfg &dfg,
                      const cgra::Architecture &arch,
                      const CompileOptions &options)
{
    static Counter &compiles = metrics().counter("compiler.compiles");
    static Counter &attempts = metrics().counter("compiler.ii_attempts");
    static Counter &escalations =
        metrics().counter("compiler.ii_escalations");
    static Counter &timeouts = metrics().counter("compiler.timeouts");
    static Histogram &attempt_seconds =
        metrics().histogram("compiler.attempt_seconds");
    static Histogram &compile_seconds =
        metrics().histogram("compiler.compile_seconds");

    CompileResult result;
    result.method = engine.name();
    result.mii = minimumIi(dfg, arch);

    TraceSpan compile_span(
        "compile", "compiler",
        cat("{\"dfg\": \"", jsonEscape(dfg.name()), "\", \"method\": \"",
            jsonEscape(result.method), "\", \"mii\": ", result.mii, "}"));
    compiles.add();

    const Deadline deadline(options.timeLimitSeconds);
    Timer timer;

    for (std::int32_t ii = result.mii;
         ii <= result.mii + options.maxIiIncrease; ++ii) {
        if (deadline.expired()) {
            warn(cat("compile of '", dfg.name(), "' (", result.method,
                     "): time budget exhausted before II=", ii));
            result.timedOut = true;
            break;
        }
        if (ii > result.mii) {
            inform(cat("compile of '", dfg.name(), "' (", result.method,
                       "): II=", ii - 1, " infeasible, escalating to II=",
                       ii));
            escalations.add();
        }
        // Budget slicing: a complete search can burn the whole limit
        // proving one II infeasible, so each attempt gets half of the
        // remaining budget (later IIs are easier, earlier IIs are more
        // valuable - geometric split serves both).
        const double slice = options.timeLimitSeconds > 0.0
            ? std::max(deadline.remaining() * 0.5, 0.05)
            : 0.0;
        const Deadline attempt_deadline(
            std::min(slice, deadline.remaining()));
        baselines::AttemptResult attempt;
        {
            TraceSpan attempt_span("ii_attempt", "compiler",
                                   cat("{\"ii\": ", ii, "}"));
            attempt = engine.map(dfg, arch, ii, attempt_deadline);
        }
        attempts.add();
        attempt_seconds.record(attempt.seconds);
        result.searchOps += attempt.searchOps;
        if (attempt.success) {
            result.success = true;
            result.ii = ii;
            result.placements = std::move(attempt.placements);
            result.totalHops = attempt.totalHops;
            break;
        }
        // A sliced timeout only ends the sweep when the overall budget
        // is gone; otherwise move on to the next II.
        result.timedOut = attempt.timedOut && deadline.expired();
        if (result.timedOut) {
            warn(cat("compile of '", dfg.name(), "' (", result.method,
                     "): time budget exhausted at II=", ii));
            break;
        }
    }

    if (result.timedOut)
        timeouts.add();
    result.seconds = timer.seconds();
    compile_seconds.record(result.seconds);
    return result;
}

} // namespace mapzero
