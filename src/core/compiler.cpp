#include "core/compiler.hpp"

#include <algorithm>
#include <optional>

#include "baselines/exact_mapper.hpp"
#include "baselines/lisa_mapper.hpp"
#include "baselines/sa_mapper.hpp"
#include "common/journal.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/trace.hpp"
#include "core/config.hpp"
#include "dfg/schedule.hpp"
#include "rl/evaluator.hpp"
#include "rl/mcts.hpp"
#include "rl/transposition.hpp"
#include "svc/telemetry_server.hpp"

namespace mapzero {

namespace {

/** Display name for a DFG node (kernels label nodes; fall back to id). */
std::string
nodeLabel(const dfg::Dfg &dfg, std::int32_t node)
{
    const std::string &name = dfg.node(node).name;
    return name.empty() ? cat("n", node) : name;
}

/**
 * Flight-recorder record for one (II, restart) attempt, failure
 * attribution included. Only called when the journal is enabled.
 */
void
emitAttemptRecord(const dfg::Dfg &dfg, const cgra::Architecture &arch,
                  const std::string &method, std::int32_t ii,
                  std::int32_t restart,
                  const baselines::AttemptResult &attempt)
{
    JournalRecord record("compile.attempt");
    record.field("dfg", dfg.name())
        .field("method", method)
        .field("arch", arch.name())
        .field("rows", arch.rows())
        .field("cols", arch.cols())
        .field("ii", ii)
        .field("restart", restart)
        .field("outcome",
               attempt.success      ? "success"
               : attempt.infeasible ? "infeasible"
               : attempt.timedOut   ? "timeout"
                                    : "fail")
        .field("seconds", attempt.seconds)
        .field("search_ops", attempt.searchOps)
        .field("episodes", attempt.episodes)
        .field("failed_episodes", attempt.failedEpisodes);
    const mapper::FailureStats &f = attempt.failure;
    if (!attempt.success && !attempt.infeasible &&
        f.failureEvents > 0) {
        const std::int32_t blamed = f.blamedNode();
        if (blamed >= 0) {
            record.field("fail_node", nodeLabel(dfg, blamed))
                .field("fail_node_id", blamed)
                .field("fail_node_events", f.nodeFailures(blamed));
        }
        if (f.firstFailNode >= 0)
            record.field("first_fail_node",
                         nodeLabel(dfg, f.firstFailNode));
        std::int64_t dead_ends = 0;
        for (const std::int64_t d : f.deadEnds)
            dead_ends += d;
        std::int64_t route_failures = 0;
        for (const std::int64_t r : f.routeFailures)
            route_failures += r;
        record.field("dead_ends", dead_ends)
            .field("route_failures", route_failures);
        std::string sites = "[";
        bool first = true;
        for (const mapper::CongestionSite &site : f.topSites(5)) {
            sites += cat(first ? "" : ",", "{\"pe\":", site.pe,
                         ",\"slot\":", site.slot,
                         ",\"count\":", site.count, "}");
            first = false;
        }
        sites += "]";
        record.rawField("hotspots", sites);
    }
    journal().emit(std::move(record));
}

/** Sweep-level summary record mirroring CompileResult. */
void
emitCompileRecord(const dfg::Dfg &dfg, const CompileResult &result)
{
    JournalRecord record("compile.result");
    record.field("dfg", dfg.name())
        .field("method", result.method)
        .field("mii", result.mii)
        .field("ii", result.ii)
        .field("success", result.success)
        .field("timed_out", result.timedOut)
        .field("cancelled", result.cancelled)
        .field("seconds", result.seconds)
        .field("search_ops", result.searchOps)
        .field("total_hops", result.totalHops);
    journal().emit(std::move(record));
}

} // namespace

const char *
methodName(Method method)
{
    switch (method) {
      case Method::MapZero:       return "MapZero";
      case Method::MapZeroNoMcts: return "MapZero(noMCTS)";
      case Method::Ilp:           return "ILP(B&B)";
      case Method::Sa:            return "SA";
      case Method::Lisa:          return "LISA";
    }
    panic("unknown method");
}

Compiler::Compiler() = default;

void
Compiler::setNetwork(std::shared_ptr<const rl::MapZeroNet> net)
{
    net_ = std::move(net);
}

std::int32_t
Compiler::minimumIi(const dfg::Dfg &dfg, const cgra::Architecture &arch)
{
    return dfg::minimumIi(dfg, arch.peCount(),
                          arch.memoryIssueCapacity());
}

namespace {

/**
 * The one place the portfolio's MapZero engines get their agent
 * config: compilePortfolio sizes the shared EvalBatcher from the same
 * object, so the batch cap always covers the virtual-loss wave the
 * engines actually run with (a leafBatch larger than the cap would
 * silently split every wave into multiple forward passes).
 */
rl::AgentConfig
mapzeroAgentConfig(Method method, std::uint64_t seed)
{
    rl::AgentConfig cfg;
    cfg.useMcts = method == Method::MapZero;
    cfg.mcts.expansionsPerMove = config::kBenchMctsExpansions;
    cfg.seed = seed;
    return cfg;
}

} // namespace

std::unique_ptr<baselines::MapperBase>
Compiler::makeEngine(
    Method method, std::uint64_t seed,
    std::shared_ptr<rl::Evaluator> evaluator,
    std::shared_ptr<rl::TranspositionTable> transposition) const
{
    switch (method) {
      case Method::MapZero:
      case Method::MapZeroNoMcts: {
        if (!net_)
            fatal("MapZero methods need setNetwork() with a pre-trained "
                  "network (see core/agent_cache.hpp)");
        rl::AgentConfig cfg = mapzeroAgentConfig(method, seed);
        cfg.mcts.transposition = std::move(transposition);
        return std::make_unique<rl::MapZeroAgent>(net_, cfg,
                                                  std::move(evaluator));
      }
      case Method::Ilp:
        return std::make_unique<baselines::ExactMapper>();
      case Method::Sa: {
        baselines::SaConfig cfg;
        cfg.seed = seed;
        return std::make_unique<baselines::SaMapper>(cfg);
      }
      case Method::Lisa: {
        baselines::SaConfig cfg;
        cfg.seed = seed;
        return std::make_unique<baselines::LisaMapper>(cfg);
      }
    }
    panic("unknown method");
}

CompileResult
Compiler::compile(const dfg::Dfg &dfg, const cgra::Architecture &arch,
                  Method method, const CompileOptions &options)
{
    svc::ensureTelemetryServer(options.statsPort);
    const std::int32_t jobs = static_cast<std::int32_t>(resolveJobs(
        options.jobs < 0 ? 1 : static_cast<std::size_t>(options.jobs)));
    // The exact engine is deterministic: extra restarts would just
    // repeat the identical search.
    std::int32_t restarts = method == Method::Ilp ? 1
        : options.restartsPerIi > 0
            ? options.restartsPerIi
            : std::max<std::int32_t>(1, jobs);
    const bool is_mapzero =
        method == Method::MapZero || method == Method::MapZeroNoMcts;
    if (restarts <= 1) {
        std::shared_ptr<rl::Evaluator> evaluator;
        if (is_mapzero && options.evalCache && net_)
            evaluator = std::make_shared<rl::DirectEvaluator>(
                *net_, options.evalCacheInstance
                           ? options.evalCacheInstance
                           : std::make_shared<rl::EvalCache>());
        auto engine = makeEngine(method, options.seed,
                                 std::move(evaluator));
        return compileWith(*engine, dfg, arch, options);
    }
    return compilePortfolio(dfg, arch, method, options, jobs, restarts);
}

CompileResult
Compiler::compileWith(baselines::MapperBase &engine, const dfg::Dfg &dfg,
                      const cgra::Architecture &arch,
                      const CompileOptions &options)
{
    static Counter &compiles = metrics().counter("compiler.compiles");
    static Counter &attempts = metrics().counter("compiler.ii_attempts");
    static Counter &escalations =
        metrics().counter("compiler.ii_escalations");
    static Counter &timeouts = metrics().counter("compiler.timeouts");
    static Histogram &attempt_seconds =
        metrics().histogram("compiler.attempt_seconds");
    static Histogram &compile_seconds =
        metrics().histogram("compiler.compile_seconds");

    CompileResult result;
    result.method = engine.name();
    result.mii = minimumIi(dfg, arch);

    TraceSpan compile_span(
        "compile", "compiler",
        cat("{\"dfg\": \"", jsonEscape(dfg.name()), "\", \"method\": \"",
            jsonEscape(result.method), "\", \"mii\": ", result.mii, "}"));
    compiles.add();

    const Deadline deadline(options.timeLimitSeconds, options.cancel);
    Timer timer;

    for (std::int32_t ii = result.mii;
         ii <= result.mii + options.maxIiIncrease; ++ii) {
        if (deadline.cancelled()) {
            result.cancelled = true;
            break;
        }
        if (deadline.expired()) {
            warn(cat("compile of '", dfg.name(), "' (", result.method,
                     "): time budget exhausted before II=", ii));
            result.timedOut = true;
            break;
        }
        if (ii > result.mii) {
            inform(cat("compile of '", dfg.name(), "' (", result.method,
                       "): II=", ii - 1, " infeasible, escalating to II=",
                       ii));
            escalations.add();
        }
        // Budget slicing: a complete search can burn the whole limit
        // proving one II infeasible, so each attempt gets half of the
        // remaining budget (later IIs are easier, earlier IIs are more
        // valuable - geometric split serves both).
        const double slice = options.timeLimitSeconds > 0.0
            ? std::max(deadline.remaining() * 0.5, 0.05)
            : 0.0;
        const Deadline attempt_deadline(
            std::min(slice, deadline.remaining()), options.cancel);
        baselines::AttemptResult attempt;
        {
            TraceSpan attempt_span("ii_attempt", "compiler",
                                   cat("{\"ii\": ", ii, "}"));
            TraceScope attempt_stage(
                "attempt", cat("{\"ii\": ", ii, ", \"restart\": 0}"));
            attempt = engine.map(dfg, arch, ii, attempt_deadline);
        }
        attempts.add();
        attempt_seconds.record(attempt.seconds);
        if (journal().enabled())
            emitAttemptRecord(dfg, arch, result.method, ii, 0, attempt);
        result.searchOps += attempt.searchOps;
        if (attempt.success) {
            result.success = true;
            result.ii = ii;
            result.placements = std::move(attempt.placements);
            result.totalHops = attempt.totalHops;
            break;
        }
        if (deadline.cancelled()) {
            result.cancelled = true;
            break;
        }
        // A sliced timeout only ends the sweep when the overall budget
        // is gone; otherwise move on to the next II.
        result.timedOut = attempt.timedOut && deadline.expired();
        if (result.timedOut) {
            warn(cat("compile of '", dfg.name(), "' (", result.method,
                     "): time budget exhausted at II=", ii));
            break;
        }
    }

    if (result.timedOut)
        timeouts.add();
    result.seconds = timer.seconds();
    compile_seconds.record(result.seconds);
    if (journal().enabled())
        emitCompileRecord(dfg, result);
    return result;
}

CompileResult
Compiler::compilePortfolio(const dfg::Dfg &dfg,
                           const cgra::Architecture &arch, Method method,
                           const CompileOptions &options,
                           std::int32_t jobs, std::int32_t restarts)
{
    static Counter &compiles = metrics().counter("compiler.compiles");
    static Counter &attempts = metrics().counter("compiler.ii_attempts");
    static Counter &restart_attempts =
        metrics().counter("compiler.restart_attempts");
    static Counter &escalations =
        metrics().counter("compiler.ii_escalations");
    static Counter &timeouts = metrics().counter("compiler.timeouts");
    static Histogram &restart_winner =
        metrics().histogram("compiler.restart_winner");
    static Histogram &attempt_seconds =
        metrics().histogram("compiler.attempt_seconds");
    static Histogram &compile_seconds =
        metrics().histogram("compiler.compile_seconds");

    // One engine per attempt index, reused across IIs exactly like the
    // single engine of compileWith. Attempt 0 keeps the caller's seed
    // so its search is the one a plain compile() would have run.
    std::shared_ptr<rl::EvalBatcher> batcher;
    std::shared_ptr<rl::Evaluator> shared_eval;
    const bool is_mapzero =
        method == Method::MapZero || method == Method::MapZeroNoMcts;
    if (is_mapzero) {
        if (!net_)
            fatal("MapZero methods need setNetwork() with a pre-trained "
                  "network (see core/agent_cache.hpp)");
        // One cache for the whole compile: restarts explore overlapping
        // prefixes and escalating IIs re-reach early states, so every
        // attempt profits from every other attempt's evaluations.
        std::shared_ptr<rl::EvalCache> cache;
        if (options.evalCache)
            cache = options.evalCacheInstance
                        ? options.evalCacheInstance
                        : std::make_shared<rl::EvalCache>();
        if (jobs > 1) {
            // Batch cap: enough for one leaf per restart, and never
            // below a single search's virtual-loss wave so an MCTS
            // restart can fill a forward pass by itself. Read from the
            // config the engines are actually built with (below).
            const auto wave = static_cast<std::size_t>(
                std::max<std::int32_t>(
                    1, mapzeroAgentConfig(method, options.seed)
                           .mcts.leafBatch));
            batcher = std::make_shared<rl::EvalBatcher>(
                *net_,
                std::max(static_cast<std::size_t>(restarts), wave),
                std::move(cache));
            shared_eval = batcher;
        } else if (cache) {
            shared_eval = std::make_shared<rl::DirectEvaluator>(
                *net_, std::move(cache));
        }
    }
    // One transposition table for the whole compile: all restarts (and
    // escalating IIs - the key includes the II) search the same
    // (DFG, arch) episode, so whichever restart expands a state first
    // publishes its evaluation and route verdict for the others.
    std::shared_ptr<rl::TranspositionTable> transposition;
    if (method == Method::MapZero && options.transposition)
        transposition = std::make_shared<rl::TranspositionTable>();
    std::vector<std::unique_ptr<baselines::MapperBase>> engines;
    engines.reserve(static_cast<std::size_t>(restarts));
    for (std::int32_t k = 0; k < restarts; ++k) {
        const std::uint64_t seed = k == 0
            ? options.seed
            : Rng::deriveSeed(options.seed,
                              static_cast<std::uint64_t>(k));
        engines.push_back(
            makeEngine(method, seed, shared_eval, transposition));
    }

    CompileResult result;
    result.method = engines.front()->name();
    result.mii = minimumIi(dfg, arch);

    TraceSpan compile_span(
        "compile", "compiler",
        cat("{\"dfg\": \"", jsonEscape(dfg.name()), "\", \"method\": \"",
            jsonEscape(result.method), "\", \"mii\": ", result.mii,
            ", \"restarts\": ", restarts, "}"));
    compiles.add();

    const Deadline deadline(options.timeLimitSeconds, options.cancel);
    Timer timer;
    std::optional<ThreadPool> pool;
    if (jobs > 1)
        pool.emplace(static_cast<std::size_t>(std::min(jobs, restarts)));

    for (std::int32_t ii = result.mii;
         ii <= result.mii + options.maxIiIncrease; ++ii) {
        if (deadline.cancelled()) {
            result.cancelled = true;
            break;
        }
        if (deadline.expired()) {
            warn(cat("compile of '", dfg.name(), "' (", result.method,
                     "): time budget exhausted before II=", ii));
            result.timedOut = true;
            break;
        }
        if (ii > result.mii) {
            inform(cat("compile of '", dfg.name(), "' (", result.method,
                       "): II=", ii - 1, " infeasible, escalating to II=",
                       ii));
            escalations.add();
        }
        attempts.add();

        std::vector<baselines::AttemptResult> round(
            static_cast<std::size_t>(restarts));
        std::int32_t ran = restarts;
        {
            TraceSpan round_span("ii_attempt", "compiler",
                                 cat("{\"ii\": ", ii,
                                     ", \"restarts\": ", restarts, "}"));
            if (pool) {
                // Root-parallel: every attempt gets the same budget
                // slice (same formula as compileWith) and the MapZero
                // attempts share the batcher while they overlap.
                const double slice = options.timeLimitSeconds > 0.0
                    ? std::max(deadline.remaining() * 0.5, 0.05)
                    : 0.0;
                parallelFor(*pool, static_cast<std::size_t>(restarts),
                            [&](std::size_t k) {
                    // Pool threads carry no binding: re-bind the job's
                    // context at depth 1 so the attempt stage nests
                    // under the caller's "compile" stage exactly like
                    // the sequential path's.
                    TraceBinding bind(options.trace, 1);
                    TraceScope attempt_stage(
                        "attempt", cat("{\"ii\": ", ii, ", \"restart\": ",
                                       k, "}"));
                    const Deadline attempt_deadline(
                        std::min(slice, deadline.remaining()),
                        options.cancel);
                    std::optional<rl::EvalBatcher::Session> session;
                    if (batcher)
                        session.emplace(*batcher);
                    round[k] = engines[k]->map(dfg, arch, ii,
                                               attempt_deadline);
                });
            } else {
                // Sequential portfolio with early exit: stop at the
                // first success, which is exactly the attempt the
                // parallel run would crown (lowest index wins).
                for (std::int32_t k = 0; k < restarts; ++k) {
                    const double slice = options.timeLimitSeconds > 0.0
                        ? std::max(deadline.remaining() * 0.5, 0.05)
                        : 0.0;
                    const Deadline attempt_deadline(
                        std::min(slice, deadline.remaining()),
                        options.cancel);
                    TraceScope attempt_stage(
                        "attempt", cat("{\"ii\": ", ii, ", \"restart\": ",
                                       k, "}"));
                    round[static_cast<std::size_t>(k)] =
                        engines[static_cast<std::size_t>(k)]->map(
                            dfg, arch, ii, attempt_deadline);
                    if (round[static_cast<std::size_t>(k)].success ||
                        deadline.expired()) {
                        ran = k + 1;
                        break;
                    }
                }
            }
        }
        restart_attempts.add(ran);
        if (journal().enabled()) {
            for (std::int32_t k = 0; k < ran; ++k)
                emitAttemptRecord(dfg, arch, result.method, ii, k,
                                  round[static_cast<std::size_t>(k)]);
        }

        // Lowest successful attempt index wins; ops from later
        // attempts are discarded so the aggregate matches what the
        // sequential early-exit portfolio would report.
        std::int32_t winner = -1;
        for (std::int32_t k = 0; k < ran; ++k) {
            const auto &attempt = round[static_cast<std::size_t>(k)];
            attempt_seconds.record(attempt.seconds);
            result.searchOps += attempt.searchOps;
            if (attempt.success) {
                winner = k;
                break;
            }
        }
        if (winner >= 0) {
            auto &attempt = round[static_cast<std::size_t>(winner)];
            restart_winner.record(winner);
            result.success = true;
            result.ii = ii;
            result.placements = std::move(attempt.placements);
            result.totalHops = attempt.totalHops;
            break;
        }
        if (deadline.cancelled()) {
            result.cancelled = true;
            break;
        }
        bool any_timed_out = false;
        for (std::int32_t k = 0; k < ran; ++k)
            any_timed_out |= round[static_cast<std::size_t>(k)].timedOut;
        result.timedOut = any_timed_out && deadline.expired();
        if (result.timedOut) {
            warn(cat("compile of '", dfg.name(), "' (", result.method,
                     "): time budget exhausted at II=", ii));
            break;
        }
    }

    if (result.timedOut)
        timeouts.add();
    result.seconds = timer.seconds();
    compile_seconds.record(result.seconds);
    if (journal().enabled())
        emitCompileRecord(dfg, result);
    return result;
}

} // namespace mapzero
