#include "core/agent_cache.hpp"

#include <cstdlib>
#include <filesystem>
#include <map>
#include <mutex>

#include "common/log.hpp"
#include "common/metrics.hpp"
#include "nn/serialize.hpp"

namespace mapzero {

namespace {

/**
 * One cached architecture. The entry-level mutex serializes the
 * train-on-first-use so concurrent pretrainedNetwork() calls for the
 * same fabric train exactly once; entries for different fabrics train
 * concurrently.
 */
struct CacheEntry {
    std::mutex mutex;
    std::shared_ptr<const rl::MapZeroNet> net;
};

std::mutex &
registryMutex()
{
    static std::mutex instance;
    return instance;
}

std::map<std::string, std::shared_ptr<CacheEntry>> &
cache()
{
    static std::map<std::string, std::shared_ptr<CacheEntry>> instance;
    return instance;
}

/** The (possibly fresh) entry for @p key, under the registry lock. */
std::shared_ptr<CacheEntry>
entryFor(const std::string &key)
{
    std::lock_guard<std::mutex> lock(registryMutex());
    auto &slot = cache()[key];
    if (!slot)
        slot = std::make_shared<CacheEntry>();
    return slot;
}

std::string
cacheKey(const cgra::Architecture &arch)
{
    return cat(arch.name(), ":", arch.rows(), "x", arch.cols());
}

} // namespace

std::unique_ptr<rl::Trainer>
trainAgent(const cgra::Architecture &arch, const PretrainBudget &budget)
{
    rl::TrainerConfig config;
    config.mcts.expansionsPerMove = budget.mctsExpansions;
    auto trainer =
        std::make_unique<rl::Trainer>(arch, config, budget.seed);
    const Deadline deadline(budget.seconds);
    trainer->pretrain(budget.episodes, budget.minNodes, budget.maxNodes,
                      deadline);
    return trainer;
}

namespace {

/** Filesystem checkpoint path for @p key, or "" when caching is off. */
std::string
diskCachePath(const std::string &key)
{
    const char *dir = std::getenv("MAPZERO_AGENT_CACHE_DIR");
    if (dir == nullptr || *dir == '\0')
        return "";
    std::string file = key;
    for (char &c : file) {
        if (c == ':' || c == ' ' || c == '/')
            c = '_';
    }
    return std::string(dir) + "/" + file + ".ckpt";
}

} // namespace

std::shared_ptr<const rl::MapZeroNet>
pretrainedNetwork(const cgra::Architecture &arch,
                  const PretrainBudget &budget)
{
    static Counter &hits = metrics().counter("agent_cache.hits");
    static Counter &disk_hits = metrics().counter("agent_cache.disk_hits");
    static Counter &misses = metrics().counter("agent_cache.misses");
    static Counter &invalid =
        metrics().counter("agent_cache.invalid_checkpoints");

    const std::string key = cacheKey(arch);
    const std::shared_ptr<CacheEntry> entry = entryFor(key);
    // Per-architecture lock: one caller trains, late arrivals block
    // here and then take the hit path.
    std::lock_guard<std::mutex> lock(entry->mutex);
    if (entry->net) {
        hits.add();
        return entry->net;
    }

    // Disk cache (opt-in via MAPZERO_AGENT_CACHE_DIR): reruns of the
    // benchmark harness skip pre-training entirely. A checkpoint that
    // fails validation — truncated, bit-flipped (CRC mismatch), wrong
    // container version, or shaped for another fabric — is treated as
    // a cache miss and retrained over; loadModule validates the whole
    // file before touching the network, so nothing partially loads.
    const std::string path = diskCachePath(key);
    if (!path.empty() && std::filesystem::exists(path)) {
        try {
            Rng rng(budget.seed);
            auto net = std::make_shared<rl::MapZeroNet>(
                arch.peCount(), rl::NetworkConfig{}, rng);
            nn::loadModule(*net, path);
            inform(cat("loaded cached MapZero agent for ", key,
                       " from ", path));
            disk_hits.add();
            entry->net = net;
            return net;
        } catch (const std::exception &error) {
            invalid.add();
            warn(cat("discarding invalid agent checkpoint ", path,
                     ": ", error.what()));
        }
    }

    misses.add();
    inform(cat("pre-training MapZero agent for ", key, " (",
               budget.episodes, " episodes, <= ", budget.seconds, "s)"));
    auto trainer = trainAgent(arch, budget);
    std::shared_ptr<const rl::MapZeroNet> net = trainer->networkPtr();
    if (!path.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(
            std::filesystem::path(path).parent_path(), ec);
        try {
            // saveModule writes via temp file + atomic rename: a crash
            // here leaves no half-written checkpoint for the next run
            // to trip over.
            nn::saveModule(trainer->network(), path);
        } catch (const std::exception &error) {
            warn(cat("could not write agent checkpoint ", path, ": ",
                     error.what()));
        }
    }
    entry->net = net;
    return net;
}

void
clearAgentCache()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    cache().clear();
}

} // namespace mapzero
