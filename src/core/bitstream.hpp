/**
 * @file
 * Configuration ("bitstream") generation: the compiler backend that
 * turns a complete mapping into the per-PE, per-modulo-slot
 * configuration words the fabric's context memory would hold.
 *
 * Per (PE, slot) the word encodes:
 *  - the opcode issued on the functional unit (or a NOP),
 *  - one operand-source select per input operand: a fabric link, the
 *    PE's own routing register, its own FU result (self recurrences), or
 *    a constant-unit immediate,
 *  - the routing-register source select: hold, a link, the local FU
 *    result, or idle,
 *  - for crossbar fabrics, the set of pass-through link connections
 *    active in the slot.
 *
 * A textual "configuration assembly" emitter and a packed binary format
 * with a round-trip parser are provided.
 */

#ifndef MAPZERO_CORE_BITSTREAM_HPP
#define MAPZERO_CORE_BITSTREAM_HPP

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "mapper/mapping.hpp"
#include "sim/semantics.hpp"

namespace mapzero {

/** Where an operand or the routing register takes its value from. */
enum class SourceKind : std::uint8_t {
    None,       ///< unused port
    Link,       ///< incoming fabric link (payload = LinkId)
    RouteReg,   ///< the PE's own routing register
    OwnResult,  ///< the PE's own FU output register (self recurrence)
    Constant,   ///< constant-unit immediate (payload in `immediate`)
};

/** One operand/routing source select. */
struct SourceSelect {
    SourceKind kind = SourceKind::None;
    /** LinkId for Link sources, otherwise -1. */
    std::int32_t link = -1;
    /** Immediate value for Constant sources. */
    sim::Word immediate = 0;

    bool operator==(const SourceSelect &other) const;
};

/** What drives one outgoing link during a slot. */
struct LinkDrive {
    /** The driven link (its src PE owns this drive). */
    std::int32_t link = -1;
    /**
     * Value source: OwnResult / RouteReg of the driving PE, or Link for
     * a combinational crossbar pass-through from an incoming link.
     */
    SourceSelect source;

    bool operator==(const LinkDrive &other) const;
};

/** Configuration of one PE in one modulo slot. */
struct PeConfigWord {
    /** Node executing here, or -1 for a NOP slot. */
    dfg::NodeId node = -1;
    /** Opcode (valid when node >= 0). */
    dfg::Opcode opcode = dfg::Opcode::Route;
    /** Operand sources in in-edge order. */
    std::vector<SourceSelect> operands;
    /** Routing-register load source (None = register idle this slot). */
    SourceSelect routeReg;
    /** Crossbar pass-through connections active this slot (LinkIds). */
    std::vector<std::int32_t> passThrough;
    /** Output drivers: which register/in-link feeds each driven link. */
    std::vector<LinkDrive> drives;

    bool operator==(const PeConfigWord &other) const;
};

/** Whole-fabric configuration: words[pe][slot]. */
struct Bitstream {
    std::int32_t peCount = 0;
    std::int32_t ii = 0;
    std::vector<std::vector<PeConfigWord>> words;

    const PeConfigWord &
    word(cgra::PeId pe, std::int32_t slot) const
    {
        return words[static_cast<std::size_t>(pe)]
                    [static_cast<std::size_t>(slot)];
    }

    bool operator==(const Bitstream &other) const;
};

/**
 * Generate the configuration for a complete mapping. fatal() when the
 * mapping is incomplete (nothing meaningful to configure).
 */
Bitstream generateBitstream(const mapper::MappingState &state);

/** Textual configuration assembly (one line per active resource). */
std::string bitstreamToText(const Bitstream &bitstream);

/** Pack into the binary container. */
void writeBitstream(const Bitstream &bitstream, std::ostream &os);

/** Parse the binary container; fatal() on malformed input. */
Bitstream readBitstream(std::istream &is);

} // namespace mapzero

#endif // MAPZERO_CORE_BITSTREAM_HPP
