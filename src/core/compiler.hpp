/**
 * @file
 * Public compiler facade: the one entry point downstream users need.
 *
 * A Compiler drives the MII sweep of the paper's evaluation protocol
 * (§4.2): compute MII = max(ResMII, RecMII), attempt the mapping at MII,
 * and increase the target II on failure until success or the time limit.
 * The actual fixed-II search is delegated to a MapperBase - MapZero's RL
 * agent or any of the baseline compilers.
 */

#ifndef MAPZERO_CORE_COMPILER_HPP
#define MAPZERO_CORE_COMPILER_HPP

#include <atomic>
#include <memory>
#include <string>

#include "baselines/mapper_base.hpp"
#include "rl/agent.hpp"

namespace mapzero {

class TraceContext;

namespace rl {
class EvalCache;
class TranspositionTable;
}

/** Which compilation engine to use. */
enum class Method {
    MapZero,       ///< pre-trained RL agent + MCTS escalation
    MapZeroNoMcts, ///< §4.7 ablation: guided search only
    Ilp,           ///< exact branch-and-bound (CGRA-ME ILP stand-in)
    Sa,            ///< CGRA-ME-style simulated annealing
    Lisa,          ///< label-guided SA
};

/** Human-readable method name. */
const char *methodName(Method method);

/** Options of one compile() call. */
struct CompileOptions {
    /** Wall-clock limit for the whole MII sweep (seconds). */
    double timeLimitSeconds = 10.0;
    /** How far above MII the sweep may go. */
    std::int32_t maxIiIncrease = 6;
    /** Seed for the stochastic engines. */
    std::uint64_t seed = 1;
    /**
     * Worker threads for the restart portfolio: 0 = resolve from
     * --jobs / MAPZERO_NUM_THREADS (common/parallel.hpp), 1 = run
     * everything on the calling thread.
     */
    std::int32_t jobs = 0;
    /**
     * Independently seeded search attempts per II (0 = one per
     * worker). Attempt 0 uses `seed` verbatim, attempt k uses
     * Rng::deriveSeed(seed, k); the winner is the successful attempt
     * with the lowest index, so for a fixed (seed, restartsPerIi) the
     * chosen mapping does not depend on the worker count (timeouts
     * aside). With restartsPerIi = 1 and jobs <= 1 the sweep is
     * exactly the historical single-threaded one.
     */
    std::int32_t restartsPerIi = 0;
    /**
     * Memoize network evaluations across the compile (MapZero methods
     * only). MCTS re-reaches identical states constantly and restarts
     * share the cache, so hit rates are high; cached outputs are
     * bit-identical to fresh ones, so results never change (timeouts
     * aside - cache hits make the same search faster). Observable via
     * the "eval_cache.hits" / "eval_cache.misses" metrics.
     */
    bool evalCache = true;
    /**
     * Externally owned evaluation cache to use instead of a fresh
     * per-compile one (requires evalCache = true; MapZero methods
     * only). Network outputs are pure functions of the canonical
     * observation bytes the cache is keyed on, so one cache can be
     * shared safely across compiles, DFGs, and architectures - this is
     * how the mapzerod daemon keeps repeat requests warm
     * (core/service.hpp).
     */
    std::shared_ptr<rl::EvalCache> evalCacheInstance;
    /**
     * Share one MCTS transposition table across the per-II portfolio
     * restarts (Method::MapZero only). Restarts search the same
     * episode, so the first restart to expand a state publishes its
     * evaluation and route verdict and the others replay them. Hits
     * are bit-identical to the work they replace (rl/transposition.hpp),
     * so results never change; observable via "cache.tt_hits".
     */
    bool transposition = true;
    /**
     * Asynchronous cancellation flag (externally owned, must outlive
     * the call): when it becomes true every Deadline in the sweep
     * reports expired and the compile returns promptly with
     * CompileResult::cancelled set. nullptr = not cancellable.
     */
    const std::atomic<bool> *cancel = nullptr;
    /**
     * Request-scoped trace context (externally owned, must outlive the
     * call; nullptr = untraced). The sweep records one "attempt" stage
     * per (II, restart) into it - portfolio pool threads re-bind the
     * context so attempt spans land at the right depth - and the
     * layers below (MCTS, evaluator, router) fold their wave /
     * cache-hit / routing counters into whichever attempt stage is
     * open on their thread (common/trace.hpp, traceCountAdd).
     */
    TraceContext *trace = nullptr;
    /**
     * Live telemetry: >= 0 starts the process-wide HTTP telemetry
     * server (svc/telemetry_server.hpp) on this port before the sweep
     * begins (0 = ephemeral port, printed on stdout), so `curl
     * localhost:PORT/metrics` works while the compile runs. -1 (the
     * default) leaves the server alone; an already-running server is
     * reused whatever the value. Server startup failure is a warn(),
     * never a compile failure.
     */
    std::int32_t statsPort = -1;
};

/** Outcome of a compilation. */
struct CompileResult {
    bool success = false;
    /** Achieved initiation interval (0 on failure, as in Fig. 8). */
    std::int32_t ii = 0;
    /** Minimum II bound of this (DFG, architecture) pair. */
    std::int32_t mii = 0;
    double seconds = 0.0;
    /** Backtracks / annealing steps over all attempted IIs. */
    std::int64_t searchOps = 0;
    bool timedOut = false;
    /** True when CompileOptions::cancel fired before completion. */
    bool cancelled = false;
    std::vector<mapper::Placement> placements;
    std::int32_t totalHops = 0;
    std::string method;

    /** II / MII; 0 when the mapping failed (paper Fig. 8 convention). */
    double
    iiRatio() const
    {
        return success && mii > 0
            ? static_cast<double>(ii) / static_cast<double>(mii)
            : 0.0;
    }
};

/**
 * The MapZero compiler facade.
 *
 * Baseline methods work out of the box. The MapZero methods need a
 * pre-trained network for the target fabric's PE count - obtain one from
 * AgentCache (core/agent_cache.hpp) or a Trainer you ran yourself, and
 * install it with setNetwork().
 */
class Compiler
{
  public:
    Compiler();

    /** Install the pre-trained network used by the MapZero methods. */
    void setNetwork(std::shared_ptr<const rl::MapZeroNet> net);

    /** Minimum II of @p dfg on @p arch (max of ResMII and RecMII). */
    static std::int32_t minimumIi(const dfg::Dfg &dfg,
                                  const cgra::Architecture &arch);

    /**
     * Compile @p dfg for @p arch with @p method: sweep II from MII
     * upward until a mapping is found or the time limit expires. With
     * options.jobs > 1 (or restartsPerIi > 1) each II runs a portfolio
     * of independently seeded restarts - in parallel when workers are
     * available - and the lowest-index success wins; the MapZero
     * methods share one EvalBatcher across concurrent attempts.
     */
    CompileResult compile(const dfg::Dfg &dfg,
                          const cgra::Architecture &arch, Method method,
                          const CompileOptions &options = {});

    /**
     * Same sweep with an externally-constructed engine (custom configs,
     * tests, ablations).
     */
    CompileResult compileWith(baselines::MapperBase &engine,
                              const dfg::Dfg &dfg,
                              const cgra::Architecture &arch,
                              const CompileOptions &options = {});

  private:
    std::unique_ptr<baselines::MapperBase> makeEngine(
        Method method, std::uint64_t seed,
        std::shared_ptr<rl::Evaluator> evaluator = nullptr,
        std::shared_ptr<rl::TranspositionTable> transposition =
            nullptr) const;

    /** The multi-restart sweep behind compile() (restarts > 1). */
    CompileResult compilePortfolio(const dfg::Dfg &dfg,
                                   const cgra::Architecture &arch,
                                   Method method,
                                   const CompileOptions &options,
                                   std::int32_t jobs,
                                   std::int32_t restarts);

    std::shared_ptr<const rl::MapZeroNet> net_;
};

} // namespace mapzero

#endif // MAPZERO_CORE_COMPILER_HPP
