#include "core/bitstream.hpp"

#include <algorithm>
#include <ostream>
#include <istream>
#include <sstream>

#include "common/log.hpp"

namespace mapzero {

bool
SourceSelect::operator==(const SourceSelect &other) const
{
    return kind == other.kind && link == other.link &&
           immediate == other.immediate;
}

bool
LinkDrive::operator==(const LinkDrive &other) const
{
    return link == other.link && source == other.source;
}

bool
PeConfigWord::operator==(const PeConfigWord &other) const
{
    return node == other.node && opcode == other.opcode &&
           operands == other.operands && routeReg == other.routeReg &&
           passThrough == other.passThrough && drives == other.drives;
}

bool
Bitstream::operator==(const Bitstream &other) const
{
    return peCount == other.peCount && ii == other.ii &&
           words == other.words;
}

namespace {

/** The full hold chain of a route: producer result reg + routing regs. */
std::vector<mapper::RegHold>
fullChain(const mapper::MappingState &state, std::int32_t edge_index)
{
    const dfg::DfgEdge &edge =
        state.dfg().edges()[static_cast<std::size_t>(edge_index)];
    const mapper::Placement &src_p = state.placement(edge.src);
    std::vector<mapper::RegHold> chain;
    chain.push_back(mapper::RegHold{src_p.pe, src_p.time});
    const mapper::Route &route = state.edgeRoute(edge_index);
    chain.insert(chain.end(), route.regHolds.begin(),
                 route.regHolds.end());
    return chain;
}

/** The wire entering @p pe at absolute @p time on this route, or -1. */
cgra::LinkId
incomingWire(const cgra::Mrrg &mrrg, const mapper::Route &route,
             cgra::PeId pe, std::int64_t time)
{
    for (const mapper::WireUse &w : route.wires) {
        if (w.time == time && mrrg.link(w.link).second == pe)
            return w.link;
    }
    return -1;
}

/** Merge a routing-register source, checking for contradictions. */
void
mergeRouteRegSource(PeConfigWord &word, const SourceSelect &source)
{
    if (word.routeReg.kind == SourceKind::None) {
        word.routeReg = source;
        return;
    }
    if (!(word.routeReg == source))
        panic("conflicting routing-register configuration "
              "(resource sharing bug)");
}

/** Merge a link-driver select, checking for contradictions. */
void
mergeDrive(PeConfigWord &word, const LinkDrive &drive)
{
    for (const LinkDrive &existing : word.drives) {
        if (existing.link == drive.link) {
            if (!(existing == drive))
                panic("conflicting link-driver configuration "
                      "(wire sharing bug)");
            return;
        }
    }
    word.drives.push_back(drive);
}

} // namespace

Bitstream
generateBitstream(const mapper::MappingState &state)
{
    if (!state.complete())
        fatal("generateBitstream: mapping is incomplete");

    const dfg::Dfg &dfg = state.dfg();
    const cgra::Mrrg &mrrg = state.mrrg();
    const std::int32_t ii = mrrg.ii();

    Bitstream bs;
    bs.peCount = mrrg.peCount();
    bs.ii = ii;
    bs.words.assign(static_cast<std::size_t>(bs.peCount),
                    std::vector<PeConfigWord>(
                        static_cast<std::size_t>(ii)));

    // --- Function-unit issue + operand selects -------------------------
    for (dfg::NodeId v = 0; v < dfg.nodeCount(); ++v) {
        const mapper::Placement &p = state.placement(v);
        PeConfigWord &word =
            bs.words[static_cast<std::size_t>(p.pe)][
                static_cast<std::size_t>(mrrg.slotOf(p.time))];
        word.node = v;
        word.opcode = dfg.node(v).opcode;

        for (std::int32_t ei : dfg.inEdges(v)) {
            const dfg::DfgEdge &e =
                dfg.edges()[static_cast<std::size_t>(ei)];
            SourceSelect select;
            if (dfg.node(e.src).opcode == dfg::Opcode::Const) {
                select.kind = SourceKind::Constant;
                select.immediate = sim::constValue(e.src);
                word.operands.push_back(select);
                continue;
            }
            const auto chain = fullChain(state, ei);
            const mapper::RegHold &last = chain.back();
            const std::int64_t t_consume =
                static_cast<std::int64_t>(p.time) +
                static_cast<std::int64_t>(ii) * e.distance;
            if (last.pe == p.pe) {
                // Value sits in this PE: routing register, or the FU
                // result register for a direct self recurrence.
                select.kind = chain.size() == 1 ? SourceKind::OwnResult
                                                : SourceKind::RouteReg;
            } else {
                const cgra::LinkId link = incomingWire(
                    mrrg, state.edgeRoute(ei), p.pe, t_consume);
                if (link < 0)
                    panic(cat("edge ", ei,
                              ": no delivery wire into consumer"));
                select.kind = SourceKind::Link;
                select.link = link;
            }
            word.operands.push_back(select);
        }
    }

    // --- Routing-register loads + crossbar pass-throughs ---------------
    for (std::int32_t ei = 0; ei < dfg.edgeCount(); ++ei) {
        const dfg::DfgEdge &e =
            dfg.edges()[static_cast<std::size_t>(ei)];
        if (dfg.node(e.src).opcode == dfg::Opcode::Const)
            continue;
        const mapper::Route &route = state.edgeRoute(ei);
        const auto chain = fullChain(state, ei);

        for (std::size_t i = 1; i < chain.size(); ++i) {
            const mapper::RegHold &hold = chain[i];
            const mapper::RegHold &prev = chain[i - 1];
            PeConfigWord &word =
                bs.words[static_cast<std::size_t>(hold.pe)][
                    static_cast<std::size_t>(mrrg.slotOf(hold.time))];
            SourceSelect source;
            if (prev.pe == hold.pe) {
                source.kind = i == 1 ? SourceKind::OwnResult
                                     : SourceKind::RouteReg;
            } else {
                const cgra::LinkId link =
                    incomingWire(mrrg, route, hold.pe, hold.time);
                if (link < 0)
                    panic(cat("edge ", ei, ": hold at PE", hold.pe,
                              " t=", hold.time, " has no feeding wire"));
                source.kind = SourceKind::Link;
                source.link = link;
            }
            mergeRouteRegSource(word, source);
        }

        // Every wire is driven from its source PE's switch this slot;
        // record what feeds it (a same-cycle incoming wire for crossbar
        // pass-throughs, the producer's FU result for the first hop, a
        // routing register otherwise) so the hardware-level simulator
        // can execute from configuration alone.
        for (const mapper::WireUse &w : route.wires) {
            const cgra::PeId drive_pe = mrrg.link(w.link).first;
            PeConfigWord &word =
                bs.words[static_cast<std::size_t>(drive_pe)][
                    static_cast<std::size_t>(mrrg.slotOf(w.time))];
            auto &pass = word.passThrough;
            if (std::find(pass.begin(), pass.end(), w.link) ==
                pass.end()) {
                pass.push_back(w.link);
            }

            LinkDrive drive;
            drive.link = w.link;
            const cgra::LinkId in =
                incomingWire(mrrg, route, drive_pe, w.time);
            if (in >= 0) {
                drive.source.kind = SourceKind::Link;
                drive.source.link = in;
            } else {
                bool from_result = false;
                bool found = false;
                for (std::size_t i = 0; i < chain.size(); ++i) {
                    if (chain[i].pe == drive_pe &&
                        chain[i].time == w.time - 1) {
                        from_result = i == 0;
                        found = true;
                        break;
                    }
                }
                if (!found)
                    panic(cat("edge ", ei, ": wire at t=", w.time,
                              " has no feeding register"));
                drive.source.kind = from_result ? SourceKind::OwnResult
                                                : SourceKind::RouteReg;
            }
            mergeDrive(word, drive);
        }
    }
    for (auto &per_pe : bs.words) {
        for (auto &word : per_pe) {
            std::sort(word.passThrough.begin(), word.passThrough.end());
            std::sort(word.drives.begin(), word.drives.end(),
                      [](const LinkDrive &a, const LinkDrive &b) {
                return a.link < b.link;
            });
        }
    }
    return bs;
}

namespace {

std::string
sourceToString(const SourceSelect &s)
{
    switch (s.kind) {
      case SourceKind::None:      return "-";
      case SourceKind::Link:      return cat("link", s.link);
      case SourceKind::RouteReg:  return "rreg";
      case SourceKind::OwnResult: return "own";
      case SourceKind::Constant:  return cat("imm(", s.immediate, ")");
    }
    return "?";
}

} // namespace

std::string
bitstreamToText(const Bitstream &bitstream)
{
    std::ostringstream os;
    os << "; MapZero configuration: " << bitstream.peCount << " PEs, II="
       << bitstream.ii << "\n";
    for (cgra::PeId pe = 0; pe < bitstream.peCount; ++pe) {
        for (std::int32_t slot = 0; slot < bitstream.ii; ++slot) {
            const PeConfigWord &w = bitstream.word(pe, slot);
            const bool active = w.node >= 0 ||
                                w.routeReg.kind != SourceKind::None ||
                                !w.passThrough.empty();
            if (!active)
                continue;
            os << "PE" << pe << "." << slot << ": ";
            if (w.node >= 0) {
                os << dfg::opcodeName(w.opcode) << " n" << w.node
                   << " ops=[";
                for (std::size_t i = 0; i < w.operands.size(); ++i)
                    os << (i ? ", " : "")
                       << sourceToString(w.operands[i]);
                os << "]";
            } else {
                os << "nop";
            }
            if (w.routeReg.kind != SourceKind::None)
                os << " rreg<=" << sourceToString(w.routeReg);
            if (!w.drives.empty()) {
                os << " drv=[";
                for (std::size_t i = 0; i < w.drives.size(); ++i)
                    os << (i ? ", " : "") << "l" << w.drives[i].link
                       << "<=" << sourceToString(w.drives[i].source);
                os << "]";
            }
            os << "\n";
        }
    }
    return os.str();
}

namespace {

constexpr std::uint32_t kMagic = 0x4D5A4246; // "MZBF"

void
writeI64(std::ostream &os, std::int64_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

std::int64_t
readI64(std::istream &is)
{
    std::int64_t v = 0;
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    return v;
}

void
writeSource(std::ostream &os, const SourceSelect &s)
{
    writeI64(os, static_cast<std::int64_t>(s.kind));
    writeI64(os, s.link);
    writeI64(os, s.immediate);
}

SourceSelect
readSource(std::istream &is)
{
    SourceSelect s;
    s.kind = static_cast<SourceKind>(readI64(is));
    s.link = static_cast<std::int32_t>(readI64(is));
    s.immediate = readI64(is);
    return s;
}

} // namespace

void
writeBitstream(const Bitstream &bitstream, std::ostream &os)
{
    writeI64(os, kMagic);
    writeI64(os, bitstream.peCount);
    writeI64(os, bitstream.ii);
    for (const auto &per_pe : bitstream.words) {
        for (const auto &w : per_pe) {
            writeI64(os, w.node);
            writeI64(os, static_cast<std::int64_t>(w.opcode));
            writeI64(os, static_cast<std::int64_t>(w.operands.size()));
            for (const auto &s : w.operands)
                writeSource(os, s);
            writeSource(os, w.routeReg);
            writeI64(os,
                     static_cast<std::int64_t>(w.passThrough.size()));
            for (std::int32_t l : w.passThrough)
                writeI64(os, l);
            writeI64(os, static_cast<std::int64_t>(w.drives.size()));
            for (const LinkDrive &d : w.drives) {
                writeI64(os, d.link);
                writeSource(os, d.source);
            }
        }
    }
    if (!os)
        fatal("failed writing bitstream");
}

Bitstream
readBitstream(std::istream &is)
{
    if (readI64(is) != kMagic)
        fatal("not a MapZero bitstream (bad magic)");
    Bitstream bs;
    bs.peCount = static_cast<std::int32_t>(readI64(is));
    bs.ii = static_cast<std::int32_t>(readI64(is));
    if (bs.peCount <= 0 || bs.ii <= 0 || bs.peCount > 1 << 20 ||
        bs.ii > 1 << 16) {
        fatal("bitstream header out of range");
    }
    bs.words.assign(static_cast<std::size_t>(bs.peCount),
                    std::vector<PeConfigWord>(
                        static_cast<std::size_t>(bs.ii)));
    for (auto &per_pe : bs.words) {
        for (auto &w : per_pe) {
            w.node = static_cast<dfg::NodeId>(readI64(is));
            w.opcode = static_cast<dfg::Opcode>(readI64(is));
            const std::int64_t n_ops = readI64(is);
            if (n_ops < 0 || n_ops > 1 << 16)
                fatal("bitstream operand count out of range");
            for (std::int64_t i = 0; i < n_ops; ++i)
                w.operands.push_back(readSource(is));
            w.routeReg = readSource(is);
            const std::int64_t n_pass = readI64(is);
            if (n_pass < 0 || n_pass > 1 << 20)
                fatal("bitstream pass-through count out of range");
            for (std::int64_t i = 0; i < n_pass; ++i)
                w.passThrough.push_back(
                    static_cast<std::int32_t>(readI64(is)));
            const std::int64_t n_drives = readI64(is);
            if (n_drives < 0 || n_drives > 1 << 20)
                fatal("bitstream drive count out of range");
            for (std::int64_t i = 0; i < n_drives; ++i) {
                LinkDrive d;
                d.link = static_cast<std::int32_t>(readI64(is));
                d.source = readSource(is);
                w.drives.push_back(d);
            }
            if (!is)
                fatal("truncated bitstream");
        }
    }
    return bs;
}

} // namespace mapzero
