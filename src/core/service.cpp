#include "core/service.hpp"

#include <sstream>

#include "common/log.hpp"
#include "common/metrics.hpp"
#include "dfg/schedule.hpp"
#include "mapper/router.hpp"
#include "mapper/validator.hpp"

namespace mapzero {

CompileService::CompileService(ServiceOptions options)
    : options_(std::move(options)),
      evalCache_(
          std::make_shared<rl::EvalCache>(options_.evalCacheCapacity))
{}

CompileResult
CompileService::compile(const dfg::Dfg &dfg,
                        const cgra::Architecture &arch, Method method,
                        CompileOptions options,
                        const std::atomic<bool> *cancel)
{
    options.cancel = cancel;
    if (options.evalCache && !options.evalCacheInstance)
        options.evalCacheInstance = evalCache_;

    Compiler compiler;
    if (method == Method::MapZero || method == Method::MapZeroNoMcts)
        compiler.setNetwork(pretrainedNetwork(arch, options_.pretrain));
    return compiler.compile(dfg, arch, method, options);
}

std::string
renderResultJson(const dfg::Dfg &dfg, const cgra::Architecture &arch,
                 const CompileResult &result)
{
    std::ostringstream os;
    os << "{\"dfg\": \"" << jsonEscape(dfg.name()) << "\""
       << ", \"arch\": \"" << jsonEscape(arch.name()) << "\""
       << ", \"method\": \"" << jsonEscape(result.method) << "\""
       << ", \"success\": " << (result.success ? "true" : "false")
       << ", \"ii\": " << result.ii << ", \"mii\": " << result.mii
       << ", \"seconds\": " << jsonNumber(result.seconds)
       << ", \"search_ops\": " << result.searchOps
       << ", \"total_hops\": " << result.totalHops
       << ", \"timed_out\": " << (result.timedOut ? "true" : "false")
       << ", \"cancelled\": " << (result.cancelled ? "true" : "false");

    if (result.success) {
        // Independent server-side check: the daemon hands mappings to
        // remote tenants, so "success" is backed by a route replay +
        // full validation, not just the engine's word.
        bool valid = false;
        cgra::Mrrg mrrg(arch, result.ii);
        auto schedule = dfg::moduloSchedule(
            dfg, result.ii, arch.memoryIssueCapacity());
        if (schedule) {
            mapper::MappingState state(dfg, mrrg, *schedule);
            if (mapper::Router::replayMapping(state, result.placements))
                valid = mapper::validateMapping(state).valid;
        }
        os << ", \"valid\": " << (valid ? "true" : "false");
        os << ", \"placements\": [";
        for (std::size_t node = 0; node < result.placements.size();
             ++node) {
            const mapper::Placement &p = result.placements[node];
            os << (node == 0 ? "" : ",") << "{\"node\": " << node
               << ", \"pe\": " << p.pe << ", \"time\": " << p.time
               << "}";
        }
        os << "]";
    }
    os << "}";
    return os.str();
}

} // namespace mapzero
