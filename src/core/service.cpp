#include "core/service.hpp"

#include <algorithm>
#include <sstream>

#include "common/bytecache.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/trace.hpp"
#include "dfg/schedule.hpp"
#include "mapper/router.hpp"
#include "mapper/validator.hpp"
#include "nn/serialize.hpp"

namespace mapzero {

namespace {

/** Persistent-tier instruments (issue: cache.disk_* plane). */
struct DiskMetrics {
    Counter &hits = metrics().counter("cache.disk_hits");
    Counter &misses = metrics().counter("cache.disk_misses");
    Counter &writes = metrics().counter("cache.disk_writes");
    Counter &errors = metrics().counter("cache.disk_errors");

    static DiskMetrics &
    get()
    {
        static DiskMetrics instance;
        return instance;
    }
};

constexpr std::uint32_t kResultVersion = 1;

} // namespace

std::string
encodeCompileResult(const CompileResult &result)
{
    nn::ByteWriter w;
    w.u32(kResultVersion);
    w.u8(result.success ? 1 : 0);
    w.i32(result.ii);
    w.i32(result.mii);
    w.f64(result.seconds);
    w.u64(static_cast<std::uint64_t>(result.searchOps));
    w.u8(result.timedOut ? 1 : 0);
    w.u8(result.cancelled ? 1 : 0);
    w.i32(result.totalHops);
    w.str(result.method);
    w.u32(static_cast<std::uint32_t>(result.placements.size()));
    for (const mapper::Placement &p : result.placements) {
        w.i32(p.pe);
        w.i32(p.time);
    }
    return w.take();
}

bool
decodeCompileResult(const std::string &payload, CompileResult &out)
{
    try {
        nn::ByteReader r(payload, "compile result cache entry");
        if (r.u32() != kResultVersion)
            return false;
        CompileResult result;
        result.success = r.u8() != 0;
        result.ii = r.i32();
        result.mii = r.i32();
        result.seconds = r.f64();
        result.searchOps = static_cast<std::int64_t>(r.u64());
        result.timedOut = r.u8() != 0;
        result.cancelled = r.u8() != 0;
        result.totalHops = r.i32();
        result.method = r.str();
        const std::uint32_t count = r.u32();
        result.placements.resize(count);
        for (std::uint32_t i = 0; i < count; ++i) {
            result.placements[i].pe = r.i32();
            result.placements[i].time = r.i32();
        }
        r.expectEnd();
        out = std::move(result);
        return true;
    } catch (const std::exception &) {
        // ByteReader raises fatal() (a runtime_error) on truncation;
        // the envelope CRC makes this unreachable short of a bug, but
        // a corrupt entry must read as a miss, not a crash.
        return false;
    }
}

CompileService::CompileService(ServiceOptions options)
    : options_(std::move(options)),
      evalCache_(
          std::make_shared<rl::EvalCache>(options_.evalCacheCapacity)),
      disk_(options_.persistDir)
{}

std::uint64_t
CompileService::modelFingerprint(const rl::MapZeroNet &net)
{
    {
        std::lock_guard<std::mutex> lock(fingerprintMutex_);
        const auto it = fingerprints_.find(&net);
        if (it != fingerprints_.end())
            return it->second;
    }
    // FNV-1a over every parameter tensor's bytes: a retrained or
    // checkpoint-loaded network changes the fingerprint, so persisted
    // results keyed on the old weights simply miss.
    std::uint64_t h = 0xcbf29ce484222325ull;
    const auto mix = [&h](const void *data, std::size_t size) {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < size; ++i) {
            h ^= p[i];
            h *= 0x100000001b3ull;
        }
    };
    for (const nn::Value &param : net.parameters()) {
        const nn::Tensor &t = param.tensor();
        mix(t.data().data(), t.size() * sizeof(float));
    }
    std::lock_guard<std::mutex> lock(fingerprintMutex_);
    fingerprints_.emplace(&net, h);
    return h;
}

std::string
CompileService::requestKey(const dfg::Dfg &dfg,
                           const cgra::Architecture &arch, Method method,
                           const CompileOptions &options)
{
    const bool is_mapzero =
        method == Method::MapZero || method == Method::MapZeroNoMcts;
    // The portfolio width is part of the result (the winner is the
    // lowest successful restart index), so the key folds in the
    // RESOLVED restart count - restartsPerIi = 0 derives it from the
    // machine's worker resolution, and two machines resolving
    // differently must not share entries.
    const std::int32_t jobs = static_cast<std::int32_t>(resolveJobs(
        options.jobs < 0 ? 1 : static_cast<std::size_t>(options.jobs)));
    const std::int32_t restarts = method == Method::Ilp ? 1
        : options.restartsPerIi > 0
            ? options.restartsPerIi
            : std::max<std::int32_t>(1, jobs);

    nn::ByteWriter w;
    w.u32(kResultVersion);
    w.u8(static_cast<std::uint8_t>(method));
    w.str(dfg.canonicalBytes());
    w.str(arch.canonicalBytes());
    w.u64(options.seed);
    w.i32(restarts);
    w.i32(options.maxIiIncrease);
    w.f64(options.timeLimitSeconds);
    w.u64(is_mapzero ? modelFingerprint(*pretrainedNetwork(
                           arch, options_.pretrain))
                     : 0);
    return w.take();
}

CompileResult
CompileService::compile(const dfg::Dfg &dfg,
                        const cgra::Architecture &arch, Method method,
                        CompileOptions options,
                        const std::atomic<bool> *cancel,
                        TraceContext *trace)
{
    options.cancel = cancel;
    options.trace = trace;
    if (options.evalCache && !options.evalCacheInstance)
        options.evalCacheInstance = evalCache_;

    // Route this thread's TraceScopes / counters to the job's context
    // for the duration of the call (inert when trace is null).
    TraceBinding bind(trace);

    // Persistent tier: consult before any search - or even touching
    // the compiler stack. Only intact entries for the exact canonical
    // key are served, and a served result is the stored original byte
    // for byte, so the response a warm request renders is identical
    // to the cold one's.
    std::string key;
    if (disk_.enabled()) {
        TraceScope stage("disk_cache");
        DiskMetrics &m = DiskMetrics::get();
        key = requestKey(dfg, arch, method, options);
        if (const auto payload = disk_.load(key)) {
            CompileResult cached;
            if (decodeCompileResult(*payload, cached)) {
                m.hits.add();
                return cached;
            }
            m.errors.add();
        }
        m.misses.add();
    }

    CompileResult result;
    {
        // The scope covers compiler construction and model setup too,
        // so the timeline has no unattributed gap between queue_wait
        // and the search.
        TraceScope stage("compile",
                         cat("{\"method\": \"",
                             jsonEscape(methodName(method)), "\"}"));
        Compiler compiler;
        if (method == Method::MapZero ||
            method == Method::MapZeroNoMcts) {
            // First request per architecture trains or loads the
            // network - the daemon's cold-start cost, worth its own
            // (nested) timeline stage.
            TraceScope model_stage("model");
            compiler.setNetwork(
                pretrainedNetwork(arch, options_.pretrain));
        }
        result = compiler.compile(dfg, arch, method, options);
    }

    // Persist only clean successes: a timeout or cancellation is a
    // property of that run's wall clock, not of the request.
    if (disk_.enabled() && result.success && !result.timedOut &&
        !result.cancelled) {
        TraceScope stage("persist");
        if (disk_.store(key, encodeCompileResult(result)))
            DiskMetrics::get().writes.add();
    }
    return result;
}

std::string
renderResultJson(const dfg::Dfg &dfg, const cgra::Architecture &arch,
                 const CompileResult &result)
{
    std::ostringstream os;
    os << "{\"dfg\": \"" << jsonEscape(dfg.name()) << "\""
       << ", \"arch\": \"" << jsonEscape(arch.name()) << "\""
       << ", \"method\": \"" << jsonEscape(result.method) << "\""
       << ", \"success\": " << (result.success ? "true" : "false")
       << ", \"ii\": " << result.ii << ", \"mii\": " << result.mii
       << ", \"seconds\": " << jsonNumber(result.seconds)
       << ", \"search_ops\": " << result.searchOps
       << ", \"total_hops\": " << result.totalHops
       << ", \"timed_out\": " << (result.timedOut ? "true" : "false")
       << ", \"cancelled\": " << (result.cancelled ? "true" : "false");

    if (result.success) {
        // Independent server-side check: the daemon hands mappings to
        // remote tenants, so "success" is backed by a route replay +
        // full validation, not just the engine's word.
        bool valid = false;
        cgra::Mrrg mrrg(arch, result.ii);
        auto schedule = dfg::moduloSchedule(
            dfg, result.ii, arch.memoryIssueCapacity());
        if (schedule) {
            mapper::MappingState state(dfg, mrrg, *schedule);
            if (mapper::Router::replayMapping(state, result.placements))
                valid = mapper::validateMapping(state).valid;
        }
        os << ", \"valid\": " << (valid ? "true" : "false");
        os << ", \"placements\": [";
        for (std::size_t node = 0; node < result.placements.size();
             ++node) {
            const mapper::Placement &p = result.placements[node];
            os << (node == 0 ? "" : ",") << "{\"node\": " << node
               << ", \"pe\": " << p.pe << ", \"time\": " << p.time
               << "}";
        }
        os << "]";
    }
    os << "}";
    return os.str();
}

} // namespace mapzero
