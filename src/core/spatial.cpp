#include "core/spatial.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "dfg/schedule.hpp"

namespace mapzero {

dfg::Dfg
stripLoopCarried(const dfg::Dfg &dfg)
{
    dfg::Dfg out;
    out.setName(dfg.name() + "_spatial");
    for (const auto &node : dfg.nodes())
        out.addNode(node.opcode, node.name);
    for (const auto &e : dfg.edges())
        if (e.distance == 0)
            out.addEdge(e.src, e.dst, 0);
    return out;
}

std::int32_t
criticalPathLength(const dfg::Dfg &dfg)
{
    const auto order = dfg::topologicalOrder(dfg);
    std::vector<std::int32_t> depth(
        static_cast<std::size_t>(dfg.nodeCount()), 0);
    std::int32_t longest = 1;
    for (dfg::NodeId v : order) {
        for (std::int32_t ei : dfg.outEdges(v)) {
            const dfg::DfgEdge &e =
                dfg.edges()[static_cast<std::size_t>(ei)];
            if (e.distance != 0)
                continue;
            auto &d = depth[static_cast<std::size_t>(e.dst)];
            d = std::max(d, depth[static_cast<std::size_t>(v)] + 1);
            longest = std::max(longest, d + 1);
        }
    }
    return longest;
}

SpatialResult
spatialMap(baselines::MapperBase &engine, const dfg::Dfg &dfg,
           const cgra::Architecture &arch, const SpatialOptions &options)
{
    SpatialResult result;
    Timer timer;
    const Deadline deadline(options.timeLimitSeconds);

    const dfg::Dfg one_shot = stripLoopCarried(dfg);
    result.criticalPath = criticalPathLength(one_shot);

    // The horizon must also give every node a slot: at least
    // ceil(nodes / PEs) cycles even if the graph were flat.
    const std::int32_t min_horizon = std::max(
        result.criticalPath,
        (one_shot.nodeCount() + arch.peCount() - 1) / arch.peCount());

    for (std::int32_t horizon = min_horizon;
         horizon <= min_horizon + options.maxExtraCycles; ++horizon) {
        if (deadline.expired())
            break;
        // II == horizon makes each time step its own resource slice,
        // so nothing wraps: a one-shot time-extended fabric.
        const Deadline slice(
            std::min(deadline.remaining(),
                     std::max(deadline.remaining() * 0.5, 0.05)));
        const auto attempt = engine.map(one_shot, arch, horizon, slice);
        result.searchOps += attempt.searchOps;
        if (attempt.success) {
            result.success = true;
            result.placements = attempt.placements;
            std::int32_t last = 0;
            for (const auto &p : attempt.placements)
                last = std::max(last, p.time);
            result.makespan = last + 1;
            break;
        }
    }
    result.seconds = timer.seconds();
    return result;
}

} // namespace mapzero
