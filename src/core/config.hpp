/**
 * @file
 * Paper-scale constants (kept verbatim from the publication) and the
 * scaled-down defaults the benchmark harness uses so the full suite runs
 * on a laptop. Every bench prints which configuration it ran with.
 */

#ifndef MAPZERO_CORE_CONFIG_HPP
#define MAPZERO_CORE_CONFIG_HPP

#include <cstdint>

namespace mapzero::config {

/// @name Values stated in the paper
/// @{

/** Replay buffer size (§4.4). */
constexpr std::size_t kPaperReplayCapacity = 10000;
/** Training batch size (§4.4). */
constexpr std::size_t kPaperBatchSize = 32;
/** MCTS expansions per stage (§4.2). */
constexpr std::int32_t kPaperMctsExpansions = 100;
/** MCTS expansions per stage on 16x16 fabrics (§4.5). */
constexpr std::int32_t kPaperMctsExpansions16 = 200;
/** Routing-conflict penalty per placement (§4.4). */
constexpr double kPaperRoutingFailurePenalty = 100.0;
/** Evaluation time limit (§4.2: 8 hours). */
constexpr double kPaperTimeLimitSeconds = 8.0 * 3600.0;
/** Pre-training DFG node range (§4.2: 3 to 30). */
constexpr std::int32_t kPaperPretrainMinNodes = 3;
constexpr std::int32_t kPaperPretrainMaxNodes = 30;

/// @}
/// @name Scaled defaults for the shipped harness
/// @{

/** Per-compilation time limit used by the benches. */
constexpr double kBenchTimeLimitSeconds = 4.0;
/** MCTS expansions used by the benches. */
constexpr std::int32_t kBenchMctsExpansions = 24;
/** Pre-training episodes per architecture in the benches. */
constexpr std::int32_t kBenchPretrainEpisodes = 16;
/** Pre-training wall-clock cap per architecture. */
constexpr double kBenchPretrainSeconds = 12.0;

/// @}

} // namespace mapzero::config

#endif // MAPZERO_CORE_CONFIG_HPP
