#include "baselines/lisa_mapper.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"
#include "dfg/schedule.hpp"
#include "mapper/router.hpp"

namespace mapzero::baselines {

LisaLabels
computeLisaLabels(const dfg::Dfg &dfg, const dfg::Schedule &schedule)
{
    LisaLabels labels;
    labels.order.assign(static_cast<std::size_t>(dfg.nodeCount()), 0);
    for (std::size_t i = 0; i < schedule.order.size(); ++i)
        labels.order[static_cast<std::size_t>(schedule.order[i])] =
            static_cast<std::int32_t>(i);

    labels.slack.reserve(static_cast<std::size_t>(dfg.edgeCount()));
    for (const auto &e : dfg.edges()) {
        const std::int32_t t_src =
            schedule.time[static_cast<std::size_t>(e.src)];
        const std::int32_t t_dst =
            schedule.time[static_cast<std::size_t>(e.dst)] +
            schedule.ii * e.distance;
        labels.slack.push_back(t_dst - t_src);
    }
    return labels;
}

LisaMapper::LisaMapper(SaConfig config)
    : SaMapper(config)
{}

double
LisaMapper::evaluate(const dfg::Dfg &dfg, const cgra::Architecture &arch,
                     const cgra::Mrrg &mrrg,
                     const dfg::Schedule &schedule,
                     const std::vector<cgra::PeId> &placement,
                     bool &all_routed, std::int32_t &hops)
{
    all_routed = false;
    hops = 0;

    // Label cost: Manhattan proximity of communicating nodes, with a
    // reachability term that assumes crossbar-style single-cycle
    // multi-hop (reach per cycle = chip span). This is the calibration
    // LISA's labels carry from its training fabrics.
    const std::int32_t span = std::max(arch.rows(), arch.cols());
    double label_cost = 0.0;
    for (std::int32_t ei = 0; ei < dfg.edgeCount(); ++ei) {
        const dfg::DfgEdge &e =
            dfg.edges()[static_cast<std::size_t>(ei)];
        const cgra::PeId a = placement[static_cast<std::size_t>(e.src)];
        const cgra::PeId b = placement[static_cast<std::size_t>(e.dst)];
        const std::int32_t d =
            std::abs(arch.rowOf(a) - arch.rowOf(b)) +
            std::abs(arch.colOf(a) - arch.colOf(b));
        label_cost += static_cast<double>(d);
        const std::int32_t reach =
            labels_.slack[static_cast<std::size_t>(ei)] * span;
        if (d > reach)
            label_cost += 10.0 * static_cast<double>(d - reach);
    }

    // Only candidates the labels consider near-optimal are worth a real
    // routability check (LISA's speed advantage over plain SA).
    if (label_cost <= verifyThreshold_) {
        mapper::MappingState state(dfg, mrrg, schedule);
        for (dfg::NodeId v : schedule.order)
            state.commitPlacement(
                v, placement[static_cast<std::size_t>(v)]);
        mapper::Router router(state);
        std::int32_t failed = 0;
        for (std::int32_t ei = 0; ei < dfg.edgeCount(); ++ei) {
            if (router.routeEdge(ei))
                hops += state.edgeRoute(ei).hops;
            else
                ++failed;
        }
        all_routed = failed == 0;
    }
    return label_cost;
}

AttemptResult
LisaMapper::map(const dfg::Dfg &dfg, const cgra::Architecture &arch,
                std::int32_t ii, const Deadline &deadline)
{
    auto schedule_opt =
        dfg::moduloSchedule(dfg, ii, arch.memoryIssueCapacity());
    if (!schedule_opt) {
        AttemptResult result;
        result.ii = ii;
        return result;
    }
    labels_ = computeLisaLabels(dfg, *schedule_opt);

    // Candidates within ~1.5 average hops per edge of the proximity
    // optimum trigger a routability check.
    verifyThreshold_ = 1.5 * static_cast<double>(dfg.edgeCount());

    return SaMapper::map(dfg, arch, ii, deadline);
}

} // namespace mapzero::baselines
