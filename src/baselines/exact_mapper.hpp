/**
 * @file
 * Exact branch-and-bound mapper - the stand-in for CGRA-ME's
 * Gurobi-backed ILP formulation (see DESIGN.md substitution table).
 *
 * Like the ILP, it is a complete systematic search at a fixed II: it
 * enumerates PE assignments for nodes in scheduled order with chronological
 * backtracking, pruning any branch whose incident edges cannot be routed.
 * It therefore shares the ILP's two observable behaviours the paper's
 * comparison relies on: it finds an MII mapping whenever one exists
 * (within its placement-order completeness) and its runtime explodes
 * combinatorially on large DFGs / tight fabrics.
 */

#ifndef MAPZERO_BASELINES_EXACT_MAPPER_HPP
#define MAPZERO_BASELINES_EXACT_MAPPER_HPP

#include "baselines/mapper_base.hpp"

namespace mapzero::baselines {

/** Configuration of the exact search. */
struct ExactMapperConfig {
    /**
     * Cap on backtrack operations (<= 0 means unlimited); the deadline
     * usually fires first, this is a belt-and-braces bound for tests.
     */
    std::int64_t maxBacktracks = 0;
};

/** Complete backtracking search over placements. */
class ExactMapper : public MapperBase
{
  public:
    explicit ExactMapper(ExactMapperConfig config = {});

    std::string name() const override { return "ILP(B&B)"; }

    AttemptResult map(const dfg::Dfg &dfg, const cgra::Architecture &arch,
                      std::int32_t ii,
                      const Deadline &deadline) override;

  private:
    ExactMapperConfig config_;
};

} // namespace mapzero::baselines

#endif // MAPZERO_BASELINES_EXACT_MAPPER_HPP
