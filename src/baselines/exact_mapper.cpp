#include "baselines/exact_mapper.hpp"

#include "common/log.hpp"
#include "dfg/schedule.hpp"
#include "mapper/environment.hpp"

namespace mapzero::baselines {

ExactMapper::ExactMapper(ExactMapperConfig config)
    : config_(config)
{}

AttemptResult
ExactMapper::map(const dfg::Dfg &dfg, const cgra::Architecture &arch,
                 std::int32_t ii, const Deadline &deadline)
{
    AttemptResult result;
    result.ii = ii;
    Timer timer;

    if (!mapper::MapEnv::feasible(dfg, ii)) {
        result.infeasible = true;
        result.seconds = timer.seconds();
        return result;
    }

    mapper::MapEnv env(dfg, arch, ii);
    if (!env.structurallyPlaceable()) {
        // Not enough function slots / memory-issue capacity somewhere:
        // no placement exists regardless of search effort.
        result.infeasible = true;
        result.seconds = timer.seconds();
        return result;
    }
    const std::int32_t n = dfg.nodeCount();
    const std::int32_t pe_count = arch.peCount();

    // Iterative DFS: nextAction[d] is the next PE to try at depth d.
    std::vector<cgra::PeId> next_action(static_cast<std::size_t>(n), 0);
    std::int32_t depth = 0;
    bool aborted = false;

    while (depth < n) {
        if (deadline.expired() ||
            (config_.maxBacktracks > 0 &&
             result.searchOps >= config_.maxBacktracks)) {
            aborted = true;
            break;
        }

        bool advanced = false;
        auto &cursor = next_action[static_cast<std::size_t>(depth)];
        while (cursor < pe_count) {
            if (config_.maxBacktracks > 0 &&
                result.searchOps >= config_.maxBacktracks) {
                break;
            }
            const cgra::PeId pe = cursor++;
            const dfg::NodeId node = env.currentNode();
            if (!env.state().placementLegal(node, pe))
                continue;
            const mapper::StepOutcome out = env.step(pe);
            if (out.routedOk) {
                advanced = true;
                break;
            }
            // Routing failed: revert and try the next PE.
            env.undo();
            ++result.searchOps;
        }

        if (advanced) {
            ++depth;
            continue;
        }

        // Exhausted every PE at this depth: backtrack. (cursor can stop
        // short of pe_count on the backtrack cap - that is an abort at
        // this depth, not evidence the node is unplaceable.)
        if (cursor >= pe_count)
            env.noteDeadEnd();
        next_action[static_cast<std::size_t>(depth)] = 0;
        if (depth == 0)
            break; // search space exhausted, II infeasible
        env.undo();
        ++result.searchOps;
        --depth;
    }

    result.timedOut = aborted;
    result.success = !aborted && depth == n && env.success();
    result.episodes = 1;
    result.failedEpisodes = result.success ? 0 : 1;
    if (!result.success)
        result.failure = env.failureStats();
    if (result.success) {
        result.placements = collectPlacements(env.state());
        for (std::int32_t ei = 0; ei < dfg.edgeCount(); ++ei)
            result.totalHops += env.state().edgeRoute(ei).hops;
    }
    result.seconds = timer.seconds();
    return result;
}

} // namespace mapzero::baselines
