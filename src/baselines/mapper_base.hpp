/**
 * @file
 * Common interface of every compiler in the evaluation: given a DFG, an
 * architecture, and a target II, attempt a complete placement + routing
 * within a deadline. The MII sweep (start at MII, increment on failure)
 * is driven by mapzero::Compiler on top of this interface.
 */

#ifndef MAPZERO_BASELINES_MAPPER_BASE_HPP
#define MAPZERO_BASELINES_MAPPER_BASE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "cgra/architecture.hpp"
#include "dfg/dfg.hpp"
#include "mapper/failure.hpp"
#include "mapper/mapping.hpp"

namespace mapzero::baselines {

/** Outcome of one fixed-II mapping attempt. */
struct AttemptResult {
    bool success = false;
    /** II this attempt targeted. */
    std::int32_t ii = 0;
    /** Wall-clock seconds consumed. */
    double seconds = 0.0;
    /**
     * Search effort: backtracks for tree searches, annealing steps for
     * SA-family mappers (paper Figs. 9/10 compare these).
     */
    std::int64_t searchOps = 0;
    /** True when the deadline expired before the search concluded. */
    bool timedOut = false;
    /** Final placements (meaningful when success). */
    std::vector<mapper::Placement> placements;
    /** Total committed route hops (mapping-quality detail). */
    std::int32_t totalHops = 0;
    /**
     * True when no modulo schedule exists at this II or the schedule is
     * structurally unplaceable - failure without any search.
     */
    bool infeasible = false;
    /** Episodes (restarts) the engine ran inside this attempt. */
    std::int64_t episodes = 0;
    /** Episodes that ended without a complete mapping. */
    std::int64_t failedEpisodes = 0;
    /**
     * Failure attribution gathered by the engine's MapEnv (empty for
     * engines that do not search per-node, e.g. SA). Meaningful when
     * !success; see mapper/failure.hpp.
     */
    mapper::FailureStats failure;
};

/** A compiler that attempts a mapping at a fixed II. */
class MapperBase
{
  public:
    virtual ~MapperBase() = default;

    /** Human-readable name used in benchmark tables. */
    virtual std::string name() const = 0;

    /**
     * Attempt to map @p dfg onto @p arch at initiation interval @p ii.
     * Implementations must poll @p deadline and give up when expired.
     */
    virtual AttemptResult map(const dfg::Dfg &dfg,
                              const cgra::Architecture &arch,
                              std::int32_t ii,
                              const Deadline &deadline) = 0;
};

/** Extract per-node placements out of a MappingState. */
std::vector<mapper::Placement> collectPlacements(
    const mapper::MappingState &state);

} // namespace mapzero::baselines

#endif // MAPZERO_BASELINES_MAPPER_BASE_HPP
