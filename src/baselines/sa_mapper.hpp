/**
 * @file
 * Simulated-annealing mapper in the style of CGRA-ME (SA) / DRESC.
 *
 * A complete placement is perturbed (random node moves / swaps) and each
 * candidate is evaluated by fully re-routing the DFG; the cost mixes hard
 * routing failures with route length. Following the paper's accounting,
 * 100 random perturbations are made per annealing step and the number of
 * annealing steps is the reported search effort (Fig. 10).
 */

#ifndef MAPZERO_BASELINES_SA_MAPPER_HPP
#define MAPZERO_BASELINES_SA_MAPPER_HPP

#include <memory>

#include "baselines/mapper_base.hpp"
#include "common/rng.hpp"

namespace mapzero::baselines {

/** Annealing-schedule knobs. */
struct SaConfig {
    double initialTemperature = 50.0;
    double minTemperature = 0.05;
    /** Geometric cooling factor per annealing step. */
    double cooling = 0.95;
    /** Perturbations per annealing step (paper: 100). */
    std::int32_t perturbationsPerStep = 100;
    /** Cost of one unroutable edge. */
    double failureCost = 100.0;
    /** Cost per route hop. */
    double hopCost = 1.0;
    /** Random restarts when the temperature floor is hit. */
    std::int32_t maxRestarts = 4;
    std::uint64_t seed = 1;
};

/** CGRA-ME-style simulated annealing. */
class SaMapper : public MapperBase
{
  public:
    explicit SaMapper(SaConfig config = {});

    std::string name() const override { return "SA"; }

    AttemptResult map(const dfg::Dfg &dfg, const cgra::Architecture &arch,
                      std::int32_t ii,
                      const Deadline &deadline) override;

  protected:
    /**
     * Evaluation hook: returns the SA cost of a complete placement and
     * reports whether every edge routed. The base class routes the full
     * DFG; LisaMapper overrides this with its cheap label-based guidance.
     */
    virtual double evaluate(const dfg::Dfg &dfg,
                            const cgra::Architecture &arch,
                            const cgra::Mrrg &mrrg,
                            const dfg::Schedule &schedule,
                            const std::vector<cgra::PeId> &placement,
                            bool &all_routed, std::int32_t &hops);

    SaConfig config_;
};

} // namespace mapzero::baselines

#endif // MAPZERO_BASELINES_SA_MAPPER_HPP
