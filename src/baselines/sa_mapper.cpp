#include "baselines/sa_mapper.hpp"

#include <cmath>

#include "common/log.hpp"
#include "dfg/schedule.hpp"
#include "mapper/router.hpp"

namespace mapzero::baselines {

namespace {

/**
 * Structural placement legality against an explicit assignment array
 * (capability, function-slot exclusivity, ADRES row bus), with node
 * @p ignore treated as unplaced (for move/swap proposals).
 */
bool
legalFor(const dfg::Dfg &dfg, const cgra::Architecture &arch,
         const dfg::Schedule &schedule,
         const std::vector<cgra::PeId> &placement, dfg::NodeId node,
         cgra::PeId pe, dfg::NodeId ignore)
{
    const auto op = dfg.node(node).opcode;
    if (!arch.pe(pe).supports(op))
        return false;
    const std::int32_t slot =
        schedule.moduloTime[static_cast<std::size_t>(node)];
    const bool node_is_mem =
        dfg::opClass(op) == dfg::OpClass::Memory;
    for (dfg::NodeId w = 0; w < dfg.nodeCount(); ++w) {
        if (w == node || w == ignore)
            continue;
        const cgra::PeId wpe = placement[static_cast<std::size_t>(w)];
        if (wpe < 0)
            continue;
        const std::int32_t wslot =
            schedule.moduloTime[static_cast<std::size_t>(w)];
        if (wslot != slot)
            continue;
        if (wpe == pe)
            return false;
        if (arch.rowSharedMemoryBus() && node_is_mem &&
            dfg::opClass(dfg.node(w).opcode) == dfg::OpClass::Memory &&
            arch.rowOf(wpe) == arch.rowOf(pe)) {
            return false;
        }
    }
    return true;
}

} // namespace

SaMapper::SaMapper(SaConfig config)
    : config_(config)
{}

double
SaMapper::evaluate(const dfg::Dfg &dfg, const cgra::Architecture &arch,
                   const cgra::Mrrg &mrrg, const dfg::Schedule &schedule,
                   const std::vector<cgra::PeId> &placement,
                   bool &all_routed, std::int32_t &hops)
{
    (void)arch;
    mapper::MappingState state(dfg, mrrg, schedule);
    for (dfg::NodeId v : schedule.order)
        state.commitPlacement(v, placement[static_cast<std::size_t>(v)]);

    mapper::Router router(state);
    std::int32_t failed = 0;
    hops = 0;
    for (std::int32_t ei = 0; ei < dfg.edgeCount(); ++ei) {
        if (router.routeEdge(ei))
            hops += state.edgeRoute(ei).hops;
        else
            ++failed;
    }
    all_routed = failed == 0;
    return config_.failureCost * static_cast<double>(failed) +
           config_.hopCost * static_cast<double>(hops);
}

AttemptResult
SaMapper::map(const dfg::Dfg &dfg, const cgra::Architecture &arch,
              std::int32_t ii, const Deadline &deadline)
{
    AttemptResult result;
    result.ii = ii;
    Timer timer;

    auto schedule_opt =
        dfg::moduloSchedule(dfg, ii, arch.memoryIssueCapacity());
    if (!schedule_opt) {
        result.seconds = timer.seconds();
        return result;
    }
    const dfg::Schedule schedule = std::move(*schedule_opt);
    const cgra::Mrrg mrrg(arch, ii);
    Rng rng(config_.seed);

    const std::int32_t n = dfg.nodeCount();
    const std::int32_t pe_count = arch.peCount();

    auto random_initial =
        [&](std::vector<cgra::PeId> &placement) -> bool {
        placement.assign(static_cast<std::size_t>(n), -1);
        for (dfg::NodeId v : schedule.order) {
            std::vector<cgra::PeId> options;
            for (cgra::PeId pe = 0; pe < pe_count; ++pe)
                if (legalFor(dfg, arch, schedule, placement, v, pe, -1))
                    options.push_back(pe);
            if (options.empty())
                return false;
            placement[static_cast<std::size_t>(v)] =
                options[rng.uniformInt(options.size())];
        }
        return true;
    };

    for (std::int32_t restart = 0;
         restart <= config_.maxRestarts && !deadline.expired();
         ++restart) {
        std::vector<cgra::PeId> placement;
        if (!random_initial(placement)) {
            // Not even a structurally legal assignment exists (e.g. more
            // ops in one modulo slot than PEs); higher II is required.
            result.seconds = timer.seconds();
            return result;
        }

        bool routed = false;
        std::int32_t hops = 0;
        double cost = evaluate(dfg, arch, mrrg, schedule, placement,
                               routed, hops);
        if (routed) {
            result.success = true;
            result.totalHops = hops;
            result.placements.reserve(static_cast<std::size_t>(n));
            for (dfg::NodeId v = 0; v < n; ++v)
                result.placements.push_back(mapper::Placement{
                    placement[static_cast<std::size_t>(v)],
                    schedule.time[static_cast<std::size_t>(v)]});
            result.seconds = timer.seconds();
            return result;
        }

        double temperature = config_.initialTemperature;
        while (temperature > config_.minTemperature) {
            if (deadline.expired()) {
                result.timedOut = true;
                result.seconds = timer.seconds();
                return result;
            }
            ++result.searchOps; // one annealing step
            for (std::int32_t k = 0; k < config_.perturbationsPerStep;
                 ++k) {
                // Propose a move (or a swap when the target is busy).
                const auto v = static_cast<dfg::NodeId>(
                    rng.uniformInt(static_cast<std::uint64_t>(n)));
                const auto pe = static_cast<cgra::PeId>(rng.uniformInt(
                    static_cast<std::uint64_t>(pe_count)));
                std::vector<cgra::PeId> candidate = placement;

                const std::int32_t vslot = schedule.moduloTime[
                    static_cast<std::size_t>(v)];
                dfg::NodeId occupant = -1;
                for (dfg::NodeId w = 0; w < n; ++w) {
                    if (w != v &&
                        placement[static_cast<std::size_t>(w)] == pe &&
                        schedule.moduloTime[
                            static_cast<std::size_t>(w)] == vslot) {
                        occupant = w;
                        break;
                    }
                }
                if (occupant < 0) {
                    if (!legalFor(dfg, arch, schedule, placement, v, pe,
                                  -1))
                        continue;
                    candidate[static_cast<std::size_t>(v)] = pe;
                } else {
                    const cgra::PeId vpe =
                        placement[static_cast<std::size_t>(v)];
                    if (!legalFor(dfg, arch, schedule, placement, v, pe,
                                  occupant) ||
                        !legalFor(dfg, arch, schedule, placement,
                                  occupant, vpe, v)) {
                        continue;
                    }
                    candidate[static_cast<std::size_t>(v)] = pe;
                    candidate[static_cast<std::size_t>(occupant)] = vpe;
                }

                bool cand_routed = false;
                std::int32_t cand_hops = 0;
                const double cand_cost =
                    evaluate(dfg, arch, mrrg, schedule, candidate,
                             cand_routed, cand_hops);
                const double delta = cand_cost - cost;
                if (delta < 0.0 ||
                    rng.uniformReal() < std::exp(-delta / temperature)) {
                    placement = std::move(candidate);
                    cost = cand_cost;
                    if (cand_routed) {
                        result.success = true;
                        result.totalHops = cand_hops;
                        result.placements.reserve(
                            static_cast<std::size_t>(n));
                        for (dfg::NodeId node = 0; node < n; ++node)
                            result.placements.push_back(
                                mapper::Placement{
                                    placement[static_cast<std::size_t>(
                                        node)],
                                    schedule.time[
                                        static_cast<std::size_t>(node)]});
                        result.seconds = timer.seconds();
                        return result;
                    }
                }
            }
            temperature *= config_.cooling;
        }
    }

    result.timedOut = deadline.expired();
    result.seconds = timer.seconds();
    return result;
}

} // namespace mapzero::baselines
