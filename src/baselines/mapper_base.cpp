#include "baselines/mapper_base.hpp"

namespace mapzero::baselines {

std::vector<mapper::Placement>
collectPlacements(const mapper::MappingState &state)
{
    std::vector<mapper::Placement> out;
    out.reserve(static_cast<std::size_t>(state.dfg().nodeCount()));
    for (dfg::NodeId v = 0; v < state.dfg().nodeCount(); ++v)
        out.push_back(state.placement(v));
    return out;
}

} // namespace mapzero::baselines
