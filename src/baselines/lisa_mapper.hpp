/**
 * @file
 * LISA-style label-guided simulated annealing (Li et al., HPCA 2022).
 *
 * LISA trains a GNN (offline, on crossbar fabrics) to emit per-node labels
 * that steer SA without evaluating routability on every perturbation. We
 * substitute the trained GNN with deterministic graph analysis producing
 * labels with the same information content (schedule depth, slack per
 * dependency, communication affinity) - see DESIGN.md.
 *
 * Crucially, the label model bakes in single-cycle multi-hop reachability:
 * it scores a candidate by Manhattan proximity, assuming any PE at
 * Manhattan distance <= slack x (chip span) is reachable, which is true on
 * HyCube's crossbar but wildly optimistic on plain mesh/1-hop fabrics.
 * That reproduces the paper's observation that "LISA is only applicable
 * to single-cycle multi-hop interconnect architectures ... and fails on
 * other topologies" (§4.2).
 */

#ifndef MAPZERO_BASELINES_LISA_MAPPER_HPP
#define MAPZERO_BASELINES_LISA_MAPPER_HPP

#include "baselines/sa_mapper.hpp"

namespace mapzero::baselines {

/** Per-DFG labels the (simulated) GNN produces. */
struct LisaLabels {
    /** Scheduling-order label per node (topological index). */
    std::vector<std::int32_t> order;
    /** Per-edge slack: cycles available between producer and consumer. */
    std::vector<std::int32_t> slack;
};

/** Derive labels from graph analysis. */
LisaLabels computeLisaLabels(const dfg::Dfg &dfg,
                             const dfg::Schedule &schedule);

/** Label-guided SA. */
class LisaMapper : public SaMapper
{
  public:
    explicit LisaMapper(SaConfig config = {});

    std::string name() const override { return "LISA"; }

    AttemptResult map(const dfg::Dfg &dfg, const cgra::Architecture &arch,
                      std::int32_t ii,
                      const Deadline &deadline) override;

  protected:
    double evaluate(const dfg::Dfg &dfg, const cgra::Architecture &arch,
                    const cgra::Mrrg &mrrg,
                    const dfg::Schedule &schedule,
                    const std::vector<cgra::PeId> &placement,
                    bool &all_routed, std::int32_t &hops) override;

  private:
    /** Labels of the DFG currently being mapped. */
    LisaLabels labels_;
    /** Label cost below which a full routing check is worth running. */
    double verifyThreshold_ = 0.0;
};

} // namespace mapzero::baselines

#endif // MAPZERO_BASELINES_LISA_MAPPER_HPP
