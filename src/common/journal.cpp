#include "common/journal.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>

#include "common/log.hpp"
#include "common/metrics.hpp"

namespace mapzero {

namespace {

/** Stable small integer for the calling thread (journal lane). */
std::uint64_t
currentTid()
{
    static std::atomic<std::uint64_t> next{1};
    thread_local std::uint64_t tid = next.fetch_add(1);
    return tid;
}

} // namespace

// --- JournalRecord -----------------------------------------------------

JournalRecord::JournalRecord(std::string_view type)
{
    body_.reserve(160);
    body_ += "{\"type\":\"";
    body_ += jsonEscape(std::string(type));
    body_ += '"';
}

void
JournalRecord::appendKey(std::string_view key)
{
    body_ += ",\"";
    body_ += jsonEscape(std::string(key));
    body_ += "\":";
}

JournalRecord &
JournalRecord::field(std::string_view key, bool value)
{
    appendKey(key);
    body_ += value ? "true" : "false";
    return *this;
}

JournalRecord &
JournalRecord::field(std::string_view key, double value)
{
    appendKey(key);
    body_ += jsonNumber(value);
    return *this;
}

JournalRecord &
JournalRecord::field(std::string_view key, std::string_view value)
{
    appendKey(key);
    body_ += '"';
    body_ += jsonEscape(std::string(value));
    body_ += '"';
    return *this;
}

JournalRecord &
JournalRecord::field(std::string_view key, const char *value)
{
    return field(key, std::string_view(value));
}

JournalRecord &
JournalRecord::intField(std::string_view key, std::int64_t value)
{
    appendKey(key);
    body_ += std::to_string(value);
    return *this;
}

JournalRecord &
JournalRecord::rawField(std::string_view key, std::string_view json)
{
    appendKey(key);
    body_ += json;
    return *this;
}

// --- Journal -----------------------------------------------------------

Journal &
Journal::global()
{
    static Journal instance;
    return instance;
}

void
Journal::setEnabled(bool enabled)
{
    enabled_.store(enabled, std::memory_order_relaxed);
}

void
Journal::setCapacity(std::size_t records)
{
    std::lock_guard<std::mutex> lock(centralMutex_);
    capacity_ = std::max<std::size_t>(records, 1);
    mergeLocked({});
}

std::size_t
Journal::capacity() const
{
    std::lock_guard<std::mutex> lock(centralMutex_);
    return capacity_;
}

std::int64_t
Journal::nowUs() const
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

Journal::ThreadBuffer &
Journal::threadBuffer()
{
    // The handle's destructor runs at thread exit and drains whatever
    // the thread still staged into the central ring.
    struct TlsHandle {
        Journal *owner = nullptr;
        std::shared_ptr<ThreadBuffer> buffer;

        ~TlsHandle()
        {
            if (owner != nullptr && buffer != nullptr)
                owner->retireBuffer(buffer);
        }
    };
    thread_local TlsHandle handle;
    if (handle.buffer == nullptr || handle.owner != this) {
        handle.owner = this;
        handle.buffer = std::make_shared<ThreadBuffer>();
        std::lock_guard<std::mutex> lock(registryMutex_);
        buffers_.push_back(handle.buffer);
    }
    return *handle.buffer;
}

void
Journal::emit(JournalRecord record)
{
    if (!enabled())
        return;
    static Counter &records = metrics().counter("journal.records");

    const std::uint64_t seq = seq_.fetch_add(1) + 1;
    std::string line = std::move(record.body_);
    line += ",\"seq\":";
    line += std::to_string(seq);
    line += ",\"ts_us\":";
    line += std::to_string(nowUs());
    line += ",\"tid\":";
    line += std::to_string(currentTid());
    line += '}';
    records.add();

    ThreadBuffer &buffer = threadBuffer();
    bool full = false;
    {
        std::lock_guard<std::mutex> lock(buffer.mutex);
        buffer.entries.emplace_back(seq, std::move(line));
        full = buffer.entries.size() >= kFlushBatch;
    }
    if (full)
        mergeBuffer(buffer);
}

void
Journal::mergeBuffer(ThreadBuffer &buffer)
{
    std::vector<std::pair<std::uint64_t, std::string>> staged;
    {
        std::lock_guard<std::mutex> lock(buffer.mutex);
        staged.swap(buffer.entries);
    }
    if (!staged.empty()) {
        std::lock_guard<std::mutex> lock(centralMutex_);
        mergeLocked(std::move(staged));
    }
}

void
Journal::mergeLocked(
    std::vector<std::pair<std::uint64_t, std::string>> entries)
{
    static Counter &drop_counter = metrics().counter("journal.dropped");

    central_.insert(central_.end(),
                    std::make_move_iterator(entries.begin()),
                    std::make_move_iterator(entries.end()));
    if (central_.size() > capacity_) {
        // Flight-recorder semantics: evict the *oldest* records so the
        // tail of a failing run - where the attribution lives - stays.
        const std::size_t excess = central_.size() - capacity_;
        const auto mid =
            central_.begin() + static_cast<std::ptrdiff_t>(excess);
        std::nth_element(central_.begin(), mid, central_.end(),
                         [](const auto &a, const auto &b) {
                             return a.first < b.first;
                         });
        central_.erase(central_.begin(), mid);
        dropped_.fetch_add(static_cast<std::int64_t>(excess),
                           std::memory_order_relaxed);
        drop_counter.add(static_cast<std::int64_t>(excess));
    }
}

void
Journal::retireBuffer(const std::shared_ptr<ThreadBuffer> &buffer)
{
    {
        std::lock_guard<std::mutex> lock(registryMutex_);
        buffers_.erase(
            std::remove(buffers_.begin(), buffers_.end(), buffer),
            buffers_.end());
    }
    mergeBuffer(*buffer);
}

std::int64_t
Journal::emitted() const
{
    return static_cast<std::int64_t>(
        seq_.load(std::memory_order_relaxed));
}

std::int64_t
Journal::dropped() const
{
    return dropped_.load(std::memory_order_relaxed);
}

std::vector<std::string>
Journal::lines()
{
    std::vector<std::shared_ptr<ThreadBuffer>> live;
    {
        std::lock_guard<std::mutex> lock(registryMutex_);
        live = buffers_;
    }
    for (const auto &buffer : live)
        mergeBuffer(*buffer);

    std::vector<std::pair<std::uint64_t, std::string>> snapshot;
    {
        std::lock_guard<std::mutex> lock(centralMutex_);
        snapshot = central_;
    }
    std::sort(snapshot.begin(), snapshot.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    std::vector<std::string> out;
    out.reserve(snapshot.size());
    for (auto &[seq, line] : snapshot)
        out.push_back(std::move(line));
    return out;
}

std::size_t
Journal::recordCount()
{
    return lines().size();
}

bool
Journal::tryWrite(const std::string &path) noexcept
{
    try {
        std::ofstream os(path);
        if (!os)
            return false;
        for (const std::string &line : lines())
            os << line << '\n';
        // Trailer so an offline reader knows the ring overflowed and
        // the oldest records are missing, not merely absent.
        const std::int64_t drops = dropped();
        if (drops > 0)
            os << "{\"type\":\"journal.dropped\",\"dropped\":" << drops
               << "}\n";
        os.flush();
        if (!os)
            return false;
        lastWriteSeq_.store(seq_.load(std::memory_order_relaxed));
        return true;
    } catch (...) {
        return false;
    }
}

void
Journal::writeTo(const std::string &path)
{
    if (!tryWrite(path))
        fatal("cannot write journal to " + path);
}

void
Journal::setOutputPath(std::string path)
{
    bool install_hooks = false;
    {
        std::lock_guard<std::mutex> lock(pathMutex_);
        outputPath_ = std::move(path);
        if (!outputPath_.empty() && !exitHookInstalled_) {
            exitHookInstalled_ = true;
            install_hooks = true;
        }
    }
    if (install_hooks) {
        // Flush on orderly exit and from fatal()/panic(): the journal
        // of a dying run is exactly the journal worth keeping. The
        // previous hook is chained so crash flushers installed by
        // other subsystems (the run report's, common/trace.hpp) keep
        // firing regardless of installation order.
        std::atexit(+[] { Journal::global().crashFlush(); });
        static FatalHook previous_hook = nullptr;
        previous_hook = setFatalHook(+[]() noexcept {
            Journal::global().crashFlush();
            if (previous_hook != nullptr)
                previous_hook();
        });
    }
}

std::string
Journal::outputPath() const
{
    std::lock_guard<std::mutex> lock(pathMutex_);
    return outputPath_;
}

void
Journal::crashFlush() noexcept
{
    // Reentry guard: a failing flush must not recurse through the
    // fatal hook, and concurrent fatal()s need only one writer.
    if (flushing_.exchange(true))
        return;
    std::string path;
    {
        std::lock_guard<std::mutex> lock(pathMutex_);
        path = outputPath_;
    }
    if (!path.empty() &&
        lastWriteSeq_.load(std::memory_order_relaxed) !=
            seq_.load(std::memory_order_relaxed)) {
        (void)tryWrite(path);
    }
    flushing_.store(false);
}

void
Journal::clear()
{
    std::vector<std::shared_ptr<ThreadBuffer>> live;
    {
        std::lock_guard<std::mutex> lock(registryMutex_);
        live = buffers_;
    }
    for (const auto &buffer : live) {
        std::lock_guard<std::mutex> lock(buffer->mutex);
        buffer->entries.clear();
    }
    std::lock_guard<std::mutex> lock(centralMutex_);
    central_.clear();
    seq_.store(0);
    dropped_.store(0);
    lastWriteSeq_.store(0);
}

} // namespace mapzero
