/**
 * @file
 * Small statistics helpers used by the training loop and the benchmark
 * harness: running means, geometric means (the paper reports geo-mean
 * speedups), and exponential smoothing for learning curves.
 */

#ifndef MAPZERO_COMMON_STATS_HPP
#define MAPZERO_COMMON_STATS_HPP

#include <cstddef>
#include <vector>

namespace mapzero {

/** Arithmetic mean; 0 for an empty range. */
double mean(const std::vector<double> &values);

/** Sample standard deviation; 0 when fewer than two values. */
double stddev(const std::vector<double> &values);

/**
 * Geometric mean of strictly positive values; 0 for an empty range.
 * Panics on non-positive values. Used for the paper's "geo-mean
 * compilation time reduction" numbers.
 */
double geoMean(const std::vector<double> &values);

/** Minimum / maximum; panics on an empty range. */
double minOf(const std::vector<double> &values);
double maxOf(const std::vector<double> &values);

/**
 * Exponential moving average smoothing, as used to draw the darker
 * learning-curve lines in the paper's Fig. 12.
 *
 * @param values raw series
 * @param alpha smoothing weight of the new sample in (0, 1]
 */
std::vector<double> emaSmooth(const std::vector<double> &values,
                              double alpha);

/** Incremental mean/min/max accumulator. */
class RunningStat
{
  public:
    /** Fold one observation in. */
    void add(double x);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
    double sum() const { return sum_; }
    double min() const { return min_; }
    double max() const { return max_; }

  private:
    std::size_t n_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace mapzero

#endif // MAPZERO_COMMON_STATS_HPP
