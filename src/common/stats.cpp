#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace mapzero {

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
stddev(const std::vector<double> &values)
{
    if (values.size() < 2)
        return 0.0;
    const double m = mean(values);
    double acc = 0.0;
    for (double v : values)
        acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

double
geoMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double logSum = 0.0;
    for (double v : values) {
        if (!(v > 0.0))
            panic(cat("geoMean requires strictly positive values, got ",
                      v));
        logSum += std::log(v);
    }
    return std::exp(logSum / static_cast<double>(values.size()));
}

double
minOf(const std::vector<double> &values)
{
    if (values.empty())
        panic("minOf of an empty range");
    return *std::min_element(values.begin(), values.end());
}

double
maxOf(const std::vector<double> &values)
{
    if (values.empty())
        panic("maxOf of an empty range");
    return *std::max_element(values.begin(), values.end());
}

std::vector<double>
emaSmooth(const std::vector<double> &values, double alpha)
{
    if (!(alpha > 0.0 && alpha <= 1.0))
        panic(cat("emaSmooth alpha must be in (0, 1], got ", alpha));
    std::vector<double> out;
    out.reserve(values.size());
    double ema = 0.0;
    bool first = true;
    for (double v : values) {
        ema = first ? v : alpha * v + (1.0 - alpha) * ema;
        first = false;
        out.push_back(ema);
    }
    return out;
}

void
RunningStat::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
}

} // namespace mapzero
