#include "common/persist.hpp"

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "common/bytecache.hpp"
#include "common/crc32.hpp"
#include "common/log.hpp"

namespace mapzero {

namespace {

constexpr char kMagic[4] = {'M', 'Z', 'D', 'C'};
constexpr std::uint32_t kVersion = 1;

void
appendU32(std::string &s, std::uint32_t v)
{
    s.append(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
appendU64(std::string &s, std::uint64_t v)
{
    s.append(reinterpret_cast<const char *>(&v), sizeof(v));
}

bool
readU32(std::string_view bytes, std::size_t &pos, std::uint32_t &v)
{
    if (bytes.size() - pos < sizeof(v))
        return false;
    std::memcpy(&v, bytes.data() + pos, sizeof(v));
    pos += sizeof(v);
    return true;
}

bool
readU64(std::string_view bytes, std::size_t &pos, std::uint64_t &v)
{
    if (bytes.size() - pos < sizeof(v))
        return false;
    std::memcpy(&v, bytes.data() + pos, sizeof(v));
    pos += sizeof(v);
    return true;
}

} // namespace

bool
atomicWriteFile(const std::string &path, std::string_view bytes)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            warn("persist: cannot open for writing: " + tmp);
            return false;
        }
        os.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size()));
        os.flush();
        if (!os) {
            warn("persist: failed writing: " + tmp);
            std::error_code ec;
            std::filesystem::remove(tmp, ec);
            return false;
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        warn(cat("persist: cannot move into place: ", tmp, " -> ", path,
                 " (", ec.message(), ")"));
        std::filesystem::remove(tmp, ec);
        return false;
    }
    return true;
}

std::string
frameDiskEntry(std::string_view key, std::string_view payload)
{
    std::string framed;
    framed.reserve(sizeof(kMagic) + 3 * sizeof(std::uint32_t) +
                   sizeof(std::uint64_t) + key.size() + payload.size());
    framed.append(kMagic, sizeof(kMagic));
    appendU32(framed, kVersion);
    appendU32(framed, static_cast<std::uint32_t>(key.size()));
    framed.append(key.data(), key.size());
    appendU64(framed, payload.size());
    framed.append(payload.data(), payload.size());
    appendU32(framed, crc32(framed));
    return framed;
}

std::optional<std::string>
parseDiskEntry(std::string_view bytes, std::string_view key)
{
    if (bytes.size() < sizeof(kMagic) + 3 * sizeof(std::uint32_t) +
                           sizeof(std::uint64_t)) {
        return std::nullopt;
    }
    if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
        return std::nullopt;
    std::uint32_t stored_crc = 0;
    std::size_t crc_pos = bytes.size() - sizeof(stored_crc);
    std::memcpy(&stored_crc, bytes.data() + crc_pos, sizeof(stored_crc));
    if (crc32(bytes.substr(0, crc_pos)) != stored_crc)
        return std::nullopt;

    std::size_t pos = sizeof(kMagic);
    std::uint32_t version = 0;
    std::uint32_t key_len = 0;
    if (!readU32(bytes, pos, version) || version != kVersion)
        return std::nullopt;
    if (!readU32(bytes, pos, key_len))
        return std::nullopt;
    if (crc_pos - pos < key_len)
        return std::nullopt;
    // Filenames are hash-derived; a hash collision shows up here as a
    // key mismatch and reads as a miss.
    if (key_len != key.size() ||
        std::memcmp(bytes.data() + pos, key.data(), key_len) != 0) {
        return std::nullopt;
    }
    pos += key_len;
    std::uint64_t payload_len = 0;
    if (!readU64(bytes, pos, payload_len))
        return std::nullopt;
    if (crc_pos - pos != payload_len)
        return std::nullopt;
    return std::string(bytes.substr(pos, payload_len));
}

DiskByteStore::DiskByteStore(std::string dir) : dir_(std::move(dir))
{
    if (dir_.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
        warn(cat("persist: cannot create cache dir ", dir_, " (",
                 ec.message(), "); disk tier disabled"));
        return;
    }
    ready_ = true;
}

std::string
DiskByteStore::pathOf(std::string_view key) const
{
    // 64-bit FNV + 32-bit CRC of the key: 96 bits of filename, and the
    // envelope still verifies the full key on load.
    std::ostringstream name;
    name << std::hex << byteHash64(key) << '-' << crc32(key) << ".mzc";
    return (std::filesystem::path(dir_) / name.str()).string();
}

std::optional<std::string>
DiskByteStore::load(std::string_view key) const
{
    if (!ready_)
        return std::nullopt;
    std::ifstream is(pathOf(key), std::ios::binary);
    if (!is)
        return std::nullopt;
    std::string bytes((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
    if (!is.good() && !is.eof())
        return std::nullopt;
    return parseDiskEntry(bytes, key);
}

bool
DiskByteStore::store(std::string_view key, std::string_view payload) const
{
    if (!ready_)
        return false;
    return atomicWriteFile(pathOf(key), frameDiskEntry(key, payload));
}

} // namespace mapzero
