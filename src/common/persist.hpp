/**
 * @file
 * On-disk byte store for cached results.
 *
 * DiskByteStore maps canonical byte keys to opaque payloads, one file
 * per entry under a cache directory. It reuses the checkpoint
 * machinery's durability idioms (see nn/serialize): every entry is a
 * CRC-32-framed envelope written to a temp file and renamed into place
 * atomically, so readers never observe a torn write and a crash
 * mid-store leaves at worst a stale .tmp file.
 *
 * Filenames are derived from the key hash; the full key is echoed
 * inside the envelope and verified on load, so a filename-hash
 * collision degrades to a miss instead of serving the wrong entry.
 * Any corruption (bad magic, bad CRC, truncation, key mismatch) is
 * likewise a miss - callers recompute and overwrite.
 *
 * The store itself is policy-free: invalidation is the caller's job
 * and happens by keying (e.g. CompileService folds a model-weight
 * fingerprint and the full arch geometry into the key, so a new
 * checkpoint or a changed arch simply misses).
 */

#ifndef MAPZERO_COMMON_PERSIST_HPP
#define MAPZERO_COMMON_PERSIST_HPP

#include <optional>
#include <string>
#include <string_view>

namespace mapzero {

/**
 * Write @p bytes to @p path via a temp file and atomic rename.
 * Returns false (after a warn) on any I/O failure - persistence is
 * best-effort and must never fail the operation that produced the
 * payload.
 */
bool atomicWriteFile(const std::string &path, std::string_view bytes);

/** Wrap @p payload in the CRC-framed envelope for @p key. */
std::string frameDiskEntry(std::string_view key, std::string_view payload);

/**
 * Unwrap an envelope previously produced by frameDiskEntry. Returns
 * the payload, or nullopt when the envelope is corrupt or was written
 * for a different key.
 */
std::optional<std::string> parseDiskEntry(std::string_view bytes,
                                          std::string_view key);

/** Directory of CRC-framed key -> payload entries. */
class DiskByteStore
{
  public:
    /**
     * @param dir cache directory (created if missing); empty disables
     *        the store
     */
    explicit DiskByteStore(std::string dir);

    /** False when no directory was given or it could not be created. */
    bool enabled() const { return ready_; }

    const std::string &directory() const { return dir_; }

    /** Load the payload stored under @p key, if present and intact. */
    std::optional<std::string> load(std::string_view key) const;

    /**
     * Persist @p payload under @p key (overwrites). Best-effort:
     * returns false on failure without raising.
     */
    bool store(std::string_view key, std::string_view payload) const;

    /** Path of the entry file for @p key (for tests/tools). */
    std::string pathOf(std::string_view key) const;

  private:
    std::string dir_;
    bool ready_ = false;
};

} // namespace mapzero

#endif // MAPZERO_COMMON_PERSIST_HPP
