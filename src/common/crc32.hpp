/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for checkpoint
 * integrity footers. Incremental: feed chunks with the running value.
 */

#ifndef MAPZERO_COMMON_CRC32_HPP
#define MAPZERO_COMMON_CRC32_HPP

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mapzero {

/**
 * Update a running CRC-32 with @p size bytes at @p data. Start a fresh
 * computation with @p crc = 0; the returned value is the final checksum
 * when all data has been fed (the pre/post inversion is handled here).
 */
std::uint32_t crc32(const void *data, std::size_t size,
                    std::uint32_t crc = 0);

/** CRC-32 of a byte string. */
inline std::uint32_t
crc32(std::string_view bytes, std::uint32_t crc = 0)
{
    return crc32(bytes.data(), bytes.size(), crc);
}

} // namespace mapzero

#endif // MAPZERO_COMMON_CRC32_HPP
