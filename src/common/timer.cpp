#include "common/timer.hpp"

#include <limits>

namespace mapzero {

double
Deadline::remaining() const
{
    if (cancelled())
        return 0.0;
    if (budgetSeconds_ <= 0.0)
        return std::numeric_limits<double>::infinity();
    const double left = budgetSeconds_ - timer_.seconds();
    return left > 0.0 ? left : 0.0;
}

} // namespace mapzero
