#include "common/crc32.hpp"

#include <array>

namespace mapzero {

namespace {

std::array<std::uint32_t, 256>
buildTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit)
            c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
        table[i] = c;
    }
    return table;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t size, std::uint32_t crc)
{
    static const std::array<std::uint32_t, 256> table = buildTable();
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint32_t c = crc ^ 0xFFFFFFFFu;
    for (std::size_t i = 0; i < size; ++i)
        c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

} // namespace mapzero
