/**
 * @file
 * Bounded multi-producer/multi-consumer job queue - the hand-off point
 * between the `mapzerod` accept loop and its compile worker pool
 * (svc/daemon.hpp), kept in common/ because it is a generic primitive.
 *
 * The shape follows the classic master/worker lock-queue servers (one
 * accept thread feeding N workers): producers *try* to push and get an
 * immediate false when the queue is full - that is the admission-control
 * signal the daemon turns into a BUSY reply - while consumers block in
 * pop() until an item or close() arrives. close() is the drain
 * primitive: producers are refused from that point on, but consumers
 * keep draining whatever is already queued and only then see
 * "finished", so no accepted job is ever orphaned by a shutdown.
 *
 * Cost model: one mutex + two condvars; push/pop are a lock, a deque
 * op, and at most one notify. Queue items are moved, never copied.
 */

#ifndef MAPZERO_COMMON_QUEUE_HPP
#define MAPZERO_COMMON_QUEUE_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace mapzero {

/** Bounded MPMC FIFO; see the file comment for the drain contract. */
template <typename T>
class BoundedQueue
{
  public:
    /** A queue holding at most @p capacity (>= 1) pending items. */
    explicit BoundedQueue(std::size_t capacity)
        : capacity_(capacity < 1 ? 1 : capacity)
    {}

    BoundedQueue(const BoundedQueue &) = delete;
    BoundedQueue &operator=(const BoundedQueue &) = delete;

    /**
     * Enqueue @p item unless the queue is full or closed; returns
     * whether the item was accepted. Never blocks - a full queue is
     * the caller's backpressure signal, not a wait.
     */
    bool
    tryPush(T item)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_ || items_.size() >= capacity_)
                return false;
            items_.push_back(std::move(item));
        }
        ready_.notify_one();
        return true;
    }

    /**
     * Block until an item is available and return it, or return
     * nullopt once the queue is closed *and* drained. Safe to call
     * from any number of consumers.
     */
    std::optional<T>
    pop()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        ready_.wait(lock,
                    [this] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        return item;
    }

    /**
     * Refuse all future pushes and wake every blocked consumer.
     * Already-queued items remain poppable (drain semantics).
     * Idempotent.
     */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        ready_.notify_all();
    }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    /** Items currently waiting (racy by nature; for metrics). */
    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    std::size_t capacity() const { return capacity_; }

  private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable ready_;
    std::deque<T> items_;
    bool closed_ = false;
};

} // namespace mapzero

#endif // MAPZERO_COMMON_QUEUE_HPP
