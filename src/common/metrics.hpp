/**
 * @file
 * Process-wide run metrics: counters, gauges, and log-bucketed
 * histograms behind a single thread-safe registry.
 *
 * The MapZero evaluation is all about where search effort goes - MCTS
 * expansions per move, routing conflicts, MII-sweep attempts - so the
 * hot paths (compiler sweep, MCTS inner loop, router) publish their
 * activity here and front ends snapshot the registry into a JSON "run
 * report" next to their results.
 *
 * Cost model: instruments are resolved once per call site (a mutex-
 * protected name lookup) and cached by reference; recording afterwards
 * is one relaxed atomic op, cheap enough for the MCTS inner loop. A
 * process-wide enable flag turns every record into a single relaxed
 * load + branch for overhead-sensitive benchmarking.
 *
 * Naming convention: "<subsystem>.<what>[_<unit>]", lower_snake_case,
 * e.g. "mcts.simulations", "router.route_failures",
 * "compiler.attempt_seconds". Durations are histograms in seconds.
 */

#ifndef MAPZERO_COMMON_METRICS_HPP
#define MAPZERO_COMMON_METRICS_HPP

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace mapzero {

/** Monotonically increasing event count. */
class Counter
{
  public:
    /** Add @p delta events (no-op while the registry is disabled). */
    void add(std::int64_t delta = 1);

    std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

    Counter() = default;

  private:
    friend class MetricsRegistry;

    const std::atomic<bool> *enabled_ = nullptr;
    std::atomic<std::int64_t> value_{0};
};

/** Last-written value (learning rate, buffer fill, ...). */
class Gauge
{
  public:
    /** Overwrite the value (no-op while the registry is disabled). */
    void set(double value);

    double value() const;

    Gauge() = default;

  private:
    friend class MetricsRegistry;

    const std::atomic<bool> *enabled_ = nullptr;
    /** Stored as bit pattern so reads/writes stay lock-free. */
    std::atomic<std::uint64_t> bits_{0};
};

/**
 * Log-bucketed histogram of non-negative samples.
 *
 * Buckets grow geometrically (factor 2 per bucket starting at
 * kFirstBucketBound), which keeps percentile readout within a factor
 * of 2 relative error across ~18 orders of magnitude - plenty for
 * wall-times in seconds or hop counts. Zero and negative samples land
 * in the underflow bucket.
 */
class Histogram
{
  public:
    /** Number of geometric buckets plus the underflow bucket. */
    static constexpr std::size_t kBucketCount = 64;
    /** Upper bound of the first geometric bucket. */
    static constexpr double kFirstBucketBound = 1e-9;

    /** Record one sample (no-op while the registry is disabled). */
    void record(double sample);

    std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
    double sum() const;
    double min() const;
    double max() const;
    double mean() const;

    /**
     * Value at quantile @p q in [0, 1], interpolated within the
     * winning bucket; 0 when empty.
     */
    double percentile(double q) const;

    Histogram() = default;

  private:
    friend class MetricsRegistry;

    /** Index of the bucket holding @p sample. */
    static std::size_t bucketOf(double sample);
    /** Upper bound of bucket @p index (underflow bucket bounds at 0). */
    static double bucketBound(std::size_t index);

    const std::atomic<bool> *enabled_ = nullptr;
    std::atomic<std::int64_t> buckets_[kBucketCount] = {};
    std::atomic<std::int64_t> count_{0};
    /** Sum/min/max under mutex: record() takes it only for these. */
    mutable std::mutex statMutex_;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Point-in-time copy of one histogram, detached from the live atomics.
 *
 * Carries the per-bucket counts with their upper bounds so consumers
 * can re-derive any view - cumulative Prometheus buckets, interpolated
 * percentiles - without re-reading (and racing) the live instrument.
 */
struct HistogramSnapshot {
    /** One log bucket: samples <= upperBound (and > the previous
     *  bucket's bound). The first bucket (bound 0) is the underflow. */
    struct Bucket {
        double upperBound = 0.0;
        std::int64_t count = 0;
    };

    std::int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    /** All buckets in bound order, including empty ones. */
    std::vector<Bucket> buckets;

    double mean() const
    {
        return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }

    /**
     * Value at quantile @p q in [0, 1], interpolated within the
     * winning log bucket and clamped to [min, max]; 0 when empty.
     */
    double percentile(double q) const;
};

/**
 * Point-in-time copy of every instrument in a registry: one consistent
 * read feeding every exposition surface (the JSON run report, the
 * Prometheus /metrics endpoint, the time-series recorder).
 */
struct MetricsSnapshot {
    std::vector<std::pair<std::string, std::int64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/**
 * The process-wide registry of named instruments.
 *
 * Instruments live for the lifetime of the process once created, so a
 * call site can cache the returned reference:
 *
 *     static Counter &sims = MetricsRegistry::global()
 *         .counter("mcts.simulations");
 *     sims.add();
 *
 * reset() zeroes values but never invalidates references.
 */
class MetricsRegistry
{
  public:
    /** The process-wide instance used by the library's call sites. */
    static MetricsRegistry &global();

    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Find-or-create the instrument named @p name. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /**
     * Master switch: while disabled, every add()/set()/record() is a
     * relaxed load + branch (the compile-out-equivalent path for
     * overhead-sensitive benchmarks). Enabled by default.
     */
    void setEnabled(bool enabled);
    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

    /** Zero all values; existing references stay valid. */
    void reset();

    /**
     * Consistent point-in-time copy of every instrument (names in
     * lexicographic order). The copy is detached: reading it never
     * touches the live atomics again.
     */
    MetricsSnapshot snapshot() const;

    /**
     * Snapshot of every instrument as a JSON object:
     * counters/gauges map name -> number; histograms map name ->
     * {count, sum, min, max, mean, p50, p90, p95, p99}.
     */
    std::string snapshotJson() const;

  private:
    friend class Counter;
    friend class Gauge;
    friend class Histogram;

    std::atomic<bool> enabled_{true};
    mutable std::mutex mutex_;
    /** node-based maps: element addresses are stable across inserts. */
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Histogram> histograms_;
};

/** Shorthand used by instrumented call sites. */
inline MetricsRegistry &
metrics()
{
    return MetricsRegistry::global();
}

/**
 * Escape @p text for embedding in a JSON string literal. Control
 * characters and non-ASCII content are emitted as \uXXXX escapes
 * (surrogate pairs above the BMP), and bytes that are not valid UTF-8
 * become U+FFFD - so writer output is always pure-ASCII valid JSON no
 * matter what ends up in a span or metric name.
 */
std::string jsonEscape(const std::string &text);

/** Format @p value as a JSON number (non-finite values become 0). */
std::string jsonNumber(double value);

} // namespace mapzero

#endif // MAPZERO_COMMON_METRICS_HPP
