/**
 * @file
 * Scoped-span tracing in the Chrome trace-event format.
 *
 * A TraceSpan is an RAII guard: construction stamps the start time,
 * destruction records a complete ("ph":"X") event into the process-wide
 * TraceCollector. Spans nest naturally with C++ scopes, and viewers
 * (chrome://tracing, https://ui.perfetto.dev) reconstruct the nesting
 * from timestamp containment per thread.
 *
 * Tracing is *off* by default: a disabled collector reduces each span
 * to one relaxed atomic load, so instrumentation can stay in the hot
 * paths permanently. Front ends opt in with
 * TraceCollector::global().setEnabled(true) (mapzero_cli does this for
 * --trace-out) and dump the buffer with toJson()/writeTo().
 *
 * The collector can also emit a combined "run report": the trace plus a
 * MetricsRegistry snapshot in one JSON document (writeRunReport()).
 */

#ifndef MAPZERO_COMMON_TRACE_HPP
#define MAPZERO_COMMON_TRACE_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mapzero {

/** One finished span or instant, in microseconds since collector start. */
struct TraceEvent {
    std::string name;
    /** Chrome "cat" field; we use the subsystem ("compiler", "mcts"). */
    std::string category;
    /** Optional pre-rendered JSON object for the "args" field. */
    std::string argsJson;
    std::int64_t startUs = 0;
    /** Duration; < 0 marks an instant ("ph":"i") event. */
    std::int64_t durationUs = -1;
    /** Thread lane of the event. */
    std::uint64_t tid = 0;
};

/** Process-wide buffer of trace events. */
class TraceCollector
{
  public:
    /** The process-wide instance used by TraceSpan. */
    static TraceCollector &global();

    TraceCollector() = default;
    TraceCollector(const TraceCollector &) = delete;
    TraceCollector &operator=(const TraceCollector &) = delete;

    /** Turn collection on/off (off by default). */
    void setEnabled(bool enabled);
    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

    /** Microseconds since the collector's epoch (first use). */
    std::int64_t nowUs() const;

    /** Append a finished event (no-op while disabled). */
    void add(TraceEvent event);

    /** Append an instant event at the current time (no-op while disabled). */
    void instant(const std::string &name, const std::string &category,
                 const std::string &args_json = "");

    /** Drop all buffered events. */
    void clear();

    /** Number of buffered events. */
    std::size_t eventCount() const;

    /** Copy of the buffered events (oldest first). */
    std::vector<TraceEvent> events() const;

    /** Chrome trace JSON: {"traceEvents": [...]}. */
    std::string toJson() const;

    /** Write toJson() to @p path; throws via fatal() on I/O failure. */
    void writeTo(const std::string &path) const;

  private:
    std::atomic<bool> enabled_{false};
    mutable std::mutex mutex_;
    std::vector<TraceEvent> events_;
    /** Epoch for timestamps, fixed at construction. */
    std::chrono::steady_clock::time_point epoch_ =
        std::chrono::steady_clock::now();
};

/**
 * RAII span: records [construction, destruction) into the global
 * collector. Cheap no-op when the collector is disabled.
 *
 *     void compile(...) {
 *         TraceSpan span("compile", "compiler");
 *         ...
 *     }
 */
class TraceSpan
{
  public:
    /**
     * @param name event name shown in the viewer
     * @param category subsystem tag (Chrome "cat")
     * @param args_json optional pre-rendered JSON object for "args",
     *        e.g. "{\"ii\": 3}"
     */
    TraceSpan(std::string name, std::string category,
              std::string args_json = "");
    ~TraceSpan();

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    /** Attach/replace the span's "args" JSON before it closes. */
    void setArgs(std::string args_json);

  private:
    bool active_ = false;
    std::int64_t startUs_ = 0;
    std::string name_;
    std::string category_;
    std::string argsJson_;
};

// ---------------------------------------------------------------------------
// Request-scoped tracing
//
// TraceContext is the per-request counterpart to the process-global
// TraceCollector: one context is created per daemon job at SUBMIT and
// rides along the compile pipeline, collecting a bounded timeline of
// named stages (queue wait, disk-cache lookup, per-(II,restart)
// attempts, routing, result render). Deep layers never see the context
// directly - they publish through a thread-local binding:
//
//     TraceBinding bind(options.trace);       // worker / pool thread
//     {
//         TraceScope stage("disk_cache");     // one timeline stage
//         ...
//         traceCountAdd(TraceCount::EvalCacheHits, 1);  // anywhere below
//     }
//
// Counters recorded via traceCountAdd() attach to the innermost open
// scope on the calling thread and are folded into that stage's "args"
// when it closes, so an attempt span carries its own wave/eval/TT-hit
// totals. When no binding is active every entry point is a
// thread-local load + branch, keeping the instrumentation permanently
// enabled within the < 2% overhead budget.
// ---------------------------------------------------------------------------

/** Fixed counter slots a stage can accumulate (see kTraceCountNames). */
enum class TraceCount : int {
    MctsWaves = 0,
    MctsLeaves,
    MctsSimulations,
    TtEvalHits,
    TtStepHits,
    EvalCacheHits,
    EvalCacheMisses,
    EvalBatches,
    RouteCalls,
    RouteUs,
    kCount
};

constexpr int kTraceCountSlots = static_cast<int>(TraceCount::kCount);

/** JSON key for each TraceCount slot, in enum order. */
extern const char *const kTraceCountNames[kTraceCountSlots];

/** One finished stage of a per-request timeline. */
struct TraceStage {
    std::string name;
    /** Pre-rendered JSON object for "args" ("" when none). */
    std::string argsJson;
    /** Offset from the context's epoch (job submit time). */
    std::int64_t startUs = 0;
    std::int64_t durationUs = 0;
    /** Recording thread's trace lane (Chrome "tid"). */
    std::uint64_t tid = 0;
    /** Nesting depth: 0 = top-level pipeline stage, 1 = attempt, ... */
    int depth = 0;
};

/** Aggregated per-stage view used by the slowlog. */
struct TraceStageSummary {
    /** Top-level stage with the largest aggregate duration ("" if none). */
    std::string dominantStage;
    /** (stage name, aggregate milliseconds) for depth-0 stages, in
     *  first-appearance order. */
    std::vector<std::pair<std::string, double>> stageMs;
};

/**
 * Bounded, thread-safe per-request stage timeline.
 *
 * The epoch is fixed at construction (job submit), so stage offsets
 * are directly "microseconds into the request" and a queue_wait stage
 * starting at offset 0 makes the timeline gap-free from SUBMIT.
 */
class TraceContext
{
  public:
    /** Hard cap on recorded stages; later stages are counted, not kept. */
    static constexpr std::size_t kMaxStages = 512;

    explicit TraceContext(std::string trace_id);

    TraceContext(const TraceContext &) = delete;
    TraceContext &operator=(const TraceContext &) = delete;

    const std::string &id() const { return traceId_; }

    /** Microseconds since this context's epoch. */
    std::int64_t nowUs() const;

    /**
     * Append a finished stage. Also feeds the process-wide
     * "compile.stage_seconds.<name>" histogram for depth-0 stages.
     * Stages beyond kMaxStages increment dropped() instead.
     */
    void addStage(const std::string &name, std::int64_t start_us,
                  std::int64_t duration_us, int depth,
                  const std::string &args_json = "");

    /**
     * Arm a pending depth-0 stage that stays open until the next
     * depth-0 TraceScope begins on a thread bound to this context;
     * that scope's own start timestamp closes it, so the two stages
     * share one clock reading and the boundary between them carries
     * no unattributed gap by construction. The daemon arms
     * "queue_wait" this way: the dispatch setup between a worker
     * dequeuing a job and the compile's first stage has tens of
     * microseconds of cold-start jitter - enough to sink a
     * sub-millisecond job's coverage if it were left between stages.
     * A pending stage that is never closed by a scope still shows up:
     * timelineJson() renders it as running until the render clock.
     */
    void setPending(std::string name, std::int64_t start_us);

    /** Close the armed pending stage (if any) ending at @p end_us. */
    void closePendingAt(std::int64_t end_us);

    std::size_t stageCount() const;
    std::size_t dropped() const;

    /** Copy of the recorded stages (record order). */
    std::vector<TraceStage> stages() const;

    /**
     * The request timeline as one JSON object:
     * {"trace_id", "total_us", "total_ms", "coverage",
     *  "dominant_stage", "dropped", "stages": [...]}.
     * total is the elapsed time at render; coverage is the fraction of
     * it attributed to depth-0 stages (clamped to [0, 1]).
     */
    std::string timelineJson() const;

    /** Aggregate depth-0 stages for the slowlog. */
    TraceStageSummary summarizeStages() const;

  private:
    std::string traceId_;
    std::chrono::steady_clock::time_point epoch_ =
        std::chrono::steady_clock::now();
    mutable std::mutex mutex_;
    std::vector<TraceStage> stages_;
    std::size_t dropped_ = 0;
    std::string pendingName_;
    std::int64_t pendingStartUs_ = 0;
    bool hasPending_ = false;
};

/**
 * RAII thread binding: routes TraceScope / traceCountAdd on the
 * current thread to @p context until destruction. Saves and restores
 * the previous binding, so pool threads reused across jobs (and
 * nested bindings) stay correct. A null context is a valid no-op
 * binding that masks any outer one.
 *
 * @p base_depth offsets the depth of scopes opened under this binding;
 * the portfolio uses 1 so attempt spans nest under the "compile" stage
 * regardless of which thread runs them.
 */
class TraceBinding
{
  public:
    explicit TraceBinding(TraceContext *context, int base_depth = 0);
    ~TraceBinding();

    TraceBinding(const TraceBinding &) = delete;
    TraceBinding &operator=(const TraceBinding &) = delete;

  private:
    TraceContext *prevContext_;
    int prevBaseDepth_;
    void *prevInnerScope_;
    int prevOpenScopes_;
};

/**
 * RAII timeline stage: records [construction, destruction) into the
 * thread-bound TraceContext, at depth base + number of enclosing open
 * scopes on this thread. Counters published via traceCountAdd() while
 * this is the innermost scope are folded into its "args" on close and
 * then propagated to the parent scope. Inert when no context is bound.
 */
class TraceScope
{
  public:
    explicit TraceScope(std::string name, std::string args_json = "");
    ~TraceScope();

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

    bool active() const { return context_ != nullptr; }

  private:
    friend void traceCountAdd(TraceCount count, std::int64_t delta);

    TraceContext *context_ = nullptr;
    TraceScope *parent_ = nullptr;
    std::int64_t startUs_ = 0;
    int depth_ = 0;
    std::string name_;
    std::string argsJson_;
    std::int64_t counts_[kTraceCountSlots] = {};
};

/**
 * Accumulate @p delta into slot @p count of the innermost open
 * TraceScope on this thread. No-op (one thread-local load + branch)
 * when no scope is open.
 */
void traceCountAdd(TraceCount count, std::int64_t delta);

/** True when the calling thread has an open TraceScope - use to gate
 *  timers whose cost is only worth paying under tracing. */
bool traceCountActive();

/**
 * Write a combined run report to @p path: {"metrics": <registry
 * snapshot>, "traceEventCount": N}. The trace itself goes to its own
 * file (writeTo) so viewers can open it directly.
 */
void writeRunReport(const std::string &path);

/**
 * Install @p path as the run report's crash-flush target, mirroring
 * Journal::setOutputPath: the report is best-effort (re)written at
 * process exit and from inside fatal()/panic(), so a run that dies
 * mid-search still leaves its --metrics-out file behind. Orderly
 * callers should still writeRunReport() at the end for the freshest
 * numbers; the hooks only guarantee a floor. An empty path uninstalls.
 */
void setRunReportOutputPath(std::string path);

/** The installed crash-flush path ("" when none). */
std::string runReportOutputPath();

/** The crash-flush entry point (idempotent, never throws). */
void crashFlushRunReport() noexcept;

} // namespace mapzero

#endif // MAPZERO_COMMON_TRACE_HPP
