/**
 * @file
 * Scoped-span tracing in the Chrome trace-event format.
 *
 * A TraceSpan is an RAII guard: construction stamps the start time,
 * destruction records a complete ("ph":"X") event into the process-wide
 * TraceCollector. Spans nest naturally with C++ scopes, and viewers
 * (chrome://tracing, https://ui.perfetto.dev) reconstruct the nesting
 * from timestamp containment per thread.
 *
 * Tracing is *off* by default: a disabled collector reduces each span
 * to one relaxed atomic load, so instrumentation can stay in the hot
 * paths permanently. Front ends opt in with
 * TraceCollector::global().setEnabled(true) (mapzero_cli does this for
 * --trace-out) and dump the buffer with toJson()/writeTo().
 *
 * The collector can also emit a combined "run report": the trace plus a
 * MetricsRegistry snapshot in one JSON document (writeRunReport()).
 */

#ifndef MAPZERO_COMMON_TRACE_HPP
#define MAPZERO_COMMON_TRACE_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace mapzero {

/** One finished span or instant, in microseconds since collector start. */
struct TraceEvent {
    std::string name;
    /** Chrome "cat" field; we use the subsystem ("compiler", "mcts"). */
    std::string category;
    /** Optional pre-rendered JSON object for the "args" field. */
    std::string argsJson;
    std::int64_t startUs = 0;
    /** Duration; < 0 marks an instant ("ph":"i") event. */
    std::int64_t durationUs = -1;
    /** Thread lane of the event. */
    std::uint64_t tid = 0;
};

/** Process-wide buffer of trace events. */
class TraceCollector
{
  public:
    /** The process-wide instance used by TraceSpan. */
    static TraceCollector &global();

    TraceCollector() = default;
    TraceCollector(const TraceCollector &) = delete;
    TraceCollector &operator=(const TraceCollector &) = delete;

    /** Turn collection on/off (off by default). */
    void setEnabled(bool enabled);
    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

    /** Microseconds since the collector's epoch (first use). */
    std::int64_t nowUs() const;

    /** Append a finished event (no-op while disabled). */
    void add(TraceEvent event);

    /** Append an instant event at the current time (no-op while disabled). */
    void instant(const std::string &name, const std::string &category,
                 const std::string &args_json = "");

    /** Drop all buffered events. */
    void clear();

    /** Number of buffered events. */
    std::size_t eventCount() const;

    /** Copy of the buffered events (oldest first). */
    std::vector<TraceEvent> events() const;

    /** Chrome trace JSON: {"traceEvents": [...]}. */
    std::string toJson() const;

    /** Write toJson() to @p path; throws via fatal() on I/O failure. */
    void writeTo(const std::string &path) const;

  private:
    std::atomic<bool> enabled_{false};
    mutable std::mutex mutex_;
    std::vector<TraceEvent> events_;
    /** Epoch for timestamps, fixed at construction. */
    std::chrono::steady_clock::time_point epoch_ =
        std::chrono::steady_clock::now();
};

/**
 * RAII span: records [construction, destruction) into the global
 * collector. Cheap no-op when the collector is disabled.
 *
 *     void compile(...) {
 *         TraceSpan span("compile", "compiler");
 *         ...
 *     }
 */
class TraceSpan
{
  public:
    /**
     * @param name event name shown in the viewer
     * @param category subsystem tag (Chrome "cat")
     * @param args_json optional pre-rendered JSON object for "args",
     *        e.g. "{\"ii\": 3}"
     */
    TraceSpan(std::string name, std::string category,
              std::string args_json = "");
    ~TraceSpan();

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    /** Attach/replace the span's "args" JSON before it closes. */
    void setArgs(std::string args_json);

  private:
    bool active_ = false;
    std::int64_t startUs_ = 0;
    std::string name_;
    std::string category_;
    std::string argsJson_;
};

/**
 * Write a combined run report to @p path: {"metrics": <registry
 * snapshot>, "traceEventCount": N}. The trace itself goes to its own
 * file (writeTo) so viewers can open it directly.
 */
void writeRunReport(const std::string &path);

/**
 * Install @p path as the run report's crash-flush target, mirroring
 * Journal::setOutputPath: the report is best-effort (re)written at
 * process exit and from inside fatal()/panic(), so a run that dies
 * mid-search still leaves its --metrics-out file behind. Orderly
 * callers should still writeRunReport() at the end for the freshest
 * numbers; the hooks only guarantee a floor. An empty path uninstalls.
 */
void setRunReportOutputPath(std::string path);

/** The installed crash-flush path ("" when none). */
std::string runReportOutputPath();

/** The crash-flush entry point (idempotent, never throws). */
void crashFlushRunReport() noexcept;

} // namespace mapzero

#endif // MAPZERO_COMMON_TRACE_HPP
