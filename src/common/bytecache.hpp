/**
 * @file
 * N-way sharded, open-addressing, byte-keyed LRU cache.
 *
 * The process-wide caches (network-output EvalCache, the MCTS
 * transposition table) are keyed by canonical byte strings and hit from
 * many threads at once. A single mutex-guarded map serializes every
 * portfolio restart on one lock; this container shards the key space so
 * concurrent lookups only contend when they land on the same shard.
 *
 * Layout per shard follows the btree24 HashNode idiom: a power-of-two
 * array of compact 24-byte slot headers (tick, hash fingerprint, key
 * offset/length, value index) probed linearly, with the variable-length
 * key bytes packed into a separate heap string and the values held in a
 * parallel vector with a free list. Shard selection is plain modula
 * dispatch on the 64-bit key hash (as in the modula_dispatch snippet);
 * the probe start comes from an independent mix of the same hash so the
 * bits spent on shard choice do not degrade probing.
 *
 * Recency is an exact per-shard LRU: every touch stamps the slot with a
 * strictly increasing tick, and eviction removes the minimum-tick live
 * slot. The tick scan is O(table) but only runs when a full shard
 * inserts a new key, which is noise next to the work being cached (a
 * network forward pass or an MCTS expansion).
 *
 * Semantics contract shared by all users: values are pure functions of
 * their key, so re-inserting an existing key refreshes recency but
 * keeps the stored value. A capacity of zero constructs a disabled
 * cache (every lookup misses, inserts are dropped) instead of
 * underflowing the eviction loop.
 *
 * Thread safety: all public methods are safe for concurrent use; each
 * shard is guarded by its own mutex.
 */

#ifndef MAPZERO_COMMON_BYTECACHE_HPP
#define MAPZERO_COMMON_BYTECACHE_HPP

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mapzero {

/** FNV-1a 64-bit hash of a byte string. */
inline std::uint64_t
byteHash64(std::string_view bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : bytes) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

/** splitmix64 finalizer; decorrelates probe bits from shard bits. */
inline std::uint64_t
byteHashMix(std::uint64_t h)
{
    h += 0x9e3779b97f4a7c15ull;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    return h ^ (h >> 31);
}

template <typename V>
class ShardedByteCache
{
  public:
    /** Outcome of insert(), for the caller's metric accounting. */
    struct InsertResult {
        /** A new entry was stored (false: key existed or disabled). */
        bool inserted = false;
        /** Entries evicted to make room (0 or 1). */
        std::size_t evicted = 0;
    };

    /**
     * @param capacity total live entries across all shards; 0 disables
     *        the cache entirely
     * @param shards requested shard count (rounded down to a power of
     *        two); 0 picks automatically so small caches collapse to a
     *        single shard and keep exact global LRU order
     */
    explicit ShardedByteCache(std::size_t capacity, std::size_t shards = 0)
        : capacity_(capacity)
    {
        const std::size_t n = pickShardCount(capacity, shards);
        shards_.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            std::size_t per = capacity / n + (i < capacity % n ? 1 : 0);
            shards_.push_back(std::make_unique<Shard>(per));
        }
    }

    /** True when capacity 0 turned the cache off. */
    bool enabled() const { return !shards_.empty(); }

    /**
     * Copy the value stored under @p key into @p out and mark the entry
     * most recently used. Returns false when absent (or disabled).
     */
    bool
    lookup(std::string_view key, V &out)
    {
        if (shards_.empty())
            return false;
        const std::uint64_t h = byteHash64(key);
        Shard &shard = *shards_[h % shards_.size()];
        std::lock_guard<std::mutex> lock(shard.mutex);
        const std::size_t i = shard.find(key, h);
        if (i == kNotFound)
            return false;
        Slot &slot = shard.slots[i];
        slot.tick = shard.nextTick++;
        out = shard.values[slot.valueIndex];
        return true;
    }

    /**
     * Store @p value under @p key. When the key is already present only
     * its recency is refreshed and the stored value is kept (values are
     * pure functions of the key). Evicts the shard's least recently
     * used entry when the shard is full.
     */
    InsertResult
    insert(std::string_view key, V value)
    {
        InsertResult result;
        if (shards_.empty())
            return result;
        const std::uint64_t h = byteHash64(key);
        Shard &shard = *shards_[h % shards_.size()];
        std::lock_guard<std::mutex> lock(shard.mutex);
        if (shard.capacity == 0)
            return result;
        const std::size_t existing = shard.find(key, h);
        if (existing != kNotFound) {
            shard.slots[existing].tick = shard.nextTick++;
            return result;
        }
        if (shard.live >= shard.capacity) {
            shard.evictLru();
            result.evicted = 1;
        }
        shard.place(key, h, std::move(value));
        result.inserted = true;
        return result;
    }

    /** Live entries across all shards. */
    std::size_t
    size() const
    {
        std::size_t total = 0;
        for (const auto &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard->mutex);
            total += shard->live;
        }
        return total;
    }

    std::size_t capacity() const { return capacity_; }
    std::size_t shardCount() const { return shards_.size(); }

  private:
    static constexpr std::size_t kNotFound = ~std::size_t{0};
    /** Ticks 0 and 1 are the empty / tombstone slot states. */
    static constexpr std::uint64_t kEmpty = 0;
    static constexpr std::uint64_t kTombstone = 1;
    static constexpr std::uint64_t kFirstTick = 2;
    static constexpr std::size_t kMaxShards = 16;
    /** Auto-sharding floor: below this per-shard size, fewer shards. */
    static constexpr std::size_t kMinShardCapacity = 64;

    static std::size_t
    pickShardCount(std::size_t capacity, std::size_t requested)
    {
        if (capacity == 0)
            return 0;
        std::size_t limit = requested > 0
                                ? requested
                                : std::min(kMaxShards,
                                           capacity / kMinShardCapacity);
        if (limit < 1)
            limit = 1;
        if (limit > capacity)
            limit = capacity;
        std::size_t n = 1;
        while (n * 2 <= limit)
            n *= 2;
        return n;
    }

    /** 24-byte slot header (btree24 HashNode style). */
    struct Slot {
        /** kEmpty, kTombstone, or the last-touch LRU tick. */
        std::uint64_t tick = kEmpty;
        /** High hash bits; cheap inequality filter before memcmp. */
        std::uint32_t fingerprint = 0;
        std::uint32_t keyOffset = 0;
        std::uint32_t keyLen = 0;
        std::uint32_t valueIndex = 0;
    };

    struct Shard {
        mutable std::mutex mutex;
        std::size_t capacity;
        std::vector<Slot> slots;
        /** Packed key bytes; slots address [keyOffset, keyOffset+keyLen). */
        std::string heap;
        /** Bytes of heap belonging to live slots (compaction trigger). */
        std::size_t heapLive = 0;
        std::vector<V> values;
        std::vector<std::uint32_t> freeValues;
        std::size_t live = 0;
        std::size_t tombstones = 0;
        std::uint64_t nextTick = kFirstTick;

        explicit Shard(std::size_t cap) : capacity(cap)
        {
            std::size_t table = 8;
            while (table < capacity * 2)
                table *= 2;
            slots.resize(table);
        }

        static std::uint32_t
        fingerprintOf(std::uint64_t h)
        {
            return static_cast<std::uint32_t>(h >> 32) | 1u;
        }

        std::size_t
        find(std::string_view key, std::uint64_t h) const
        {
            const std::size_t mask = slots.size() - 1;
            const std::uint32_t fp = fingerprintOf(h);
            std::size_t i = byteHashMix(h) & mask;
            for (std::size_t n = 0; n < slots.size(); ++n) {
                const Slot &slot = slots[i];
                if (slot.tick == kEmpty)
                    return kNotFound;
                if (slot.tick != kTombstone && slot.fingerprint == fp &&
                    slot.keyLen == key.size() &&
                    std::memcmp(heap.data() + slot.keyOffset, key.data(),
                                key.size()) == 0) {
                    return i;
                }
                i = (i + 1) & mask;
            }
            return kNotFound;
        }

        void
        place(std::string_view key, std::uint64_t h, V value)
        {
            const std::size_t mask = slots.size() - 1;
            std::size_t i = byteHashMix(h) & mask;
            while (slots[i].tick != kEmpty && slots[i].tick != kTombstone)
                i = (i + 1) & mask;
            Slot &slot = slots[i];
            if (slot.tick == kTombstone)
                --tombstones;
            slot.tick = nextTick++;
            slot.fingerprint = fingerprintOf(h);
            slot.keyOffset = static_cast<std::uint32_t>(heap.size());
            slot.keyLen = static_cast<std::uint32_t>(key.size());
            heap.append(key.data(), key.size());
            heapLive += key.size();
            if (!freeValues.empty()) {
                slot.valueIndex = freeValues.back();
                freeValues.pop_back();
                values[slot.valueIndex] = std::move(value);
            } else {
                slot.valueIndex =
                    static_cast<std::uint32_t>(values.size());
                values.push_back(std::move(value));
            }
            ++live;
            maybeCompact();
        }

        /** Tombstone the minimum-tick live slot (exact LRU victim). */
        void
        evictLru()
        {
            std::size_t victim = kNotFound;
            std::uint64_t best = ~std::uint64_t{0};
            for (std::size_t i = 0; i < slots.size(); ++i) {
                const std::uint64_t tick = slots[i].tick;
                if (tick >= kFirstTick && tick < best) {
                    best = tick;
                    victim = i;
                }
            }
            if (victim == kNotFound)
                return;
            Slot &slot = slots[victim];
            heapLive -= slot.keyLen;
            freeValues.push_back(slot.valueIndex);
            values[slot.valueIndex] = V{};
            slot.tick = kTombstone;
            ++tombstones;
            --live;
        }

        /**
         * Rebuild the table when tombstones clog probe chains or dead
         * key bytes dominate the heap. Rehashes live slots into fresh
         * slots of the same size (live <= capacity <= table/2, so the
         * load factor stays below 1/2) and compacts the key heap.
         */
        void
        maybeCompact()
        {
            const bool clogged = tombstones > slots.size() / 4;
            const bool bloated =
                heap.size() > 4096 && heap.size() > heapLive * 2;
            if (!clogged && !bloated)
                return;
            std::vector<Slot> fresh(slots.size());
            std::string packed;
            packed.reserve(heapLive);
            const std::size_t mask = fresh.size() - 1;
            for (const Slot &slot : slots) {
                if (slot.tick < kFirstTick)
                    continue;
                const std::string_view key(heap.data() + slot.keyOffset,
                                           slot.keyLen);
                const std::uint64_t h = byteHash64(key);
                std::size_t i = byteHashMix(h) & mask;
                while (fresh[i].tick != kEmpty)
                    i = (i + 1) & mask;
                fresh[i] = slot;
                fresh[i].keyOffset =
                    static_cast<std::uint32_t>(packed.size());
                packed.append(key.data(), key.size());
            }
            slots.swap(fresh);
            heap.swap(packed);
            heapLive = heap.size();
            tombstones = 0;
        }
    };

    std::size_t capacity_;
    std::vector<std::unique_ptr<Shard>> shards_;
};

} // namespace mapzero

#endif // MAPZERO_COMMON_BYTECACHE_HPP
