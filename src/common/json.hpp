/**
 * @file
 * Minimal JSON reader for the offline diagnostics tooling.
 *
 * The observability layer *writes* JSON by string concatenation
 * (metrics.cpp, trace.cpp, journal.cpp); the `mapzero_cli report`
 * subcommand must *read* those documents back - journals, run reports,
 * bench baselines - without growing a third-party dependency. This is a
 * small recursive-descent parser for exactly that: strict enough to
 * round-trip our own writers (and catch their bugs), small enough to
 * audit.
 *
 * Documents parse into an immutable JsonValue tree. Object member order
 * is preserved; duplicate keys keep the first occurrence on lookup.
 * Errors raise fatal() with a byte offset, so a truncated journal line
 * is reported, not silently misread.
 */

#ifndef MAPZERO_COMMON_JSON_HPP
#define MAPZERO_COMMON_JSON_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace mapzero {

/** One node of a parsed JSON document. */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    /**
     * Parse @p text as one complete JSON document (trailing whitespace
     * allowed, trailing garbage is an error). fatal() on malformed
     * input.
     */
    static JsonValue parse(const std::string &text);

    /**
     * Parse one JSONL stream: one JSON value per non-empty line.
     * fatal() when any line is malformed.
     */
    static std::vector<JsonValue> parseLines(const std::string &text);

    JsonValue() = default;

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Value accessors; fatal() on kind mismatch. */
    bool asBool() const;
    double asNumber() const;
    std::int64_t asInt() const;
    const std::string &asString() const;

    /** Array/object element count; fatal() on other kinds. */
    std::size_t size() const;

    /** Array element @p index; fatal() when out of range. */
    const JsonValue &at(std::size_t index) const;

    /** Whether the object has member @p key (false on non-objects). */
    bool has(const std::string &key) const;

    /** Object member @p key; fatal() when missing. */
    const JsonValue &at(const std::string &key) const;

    /** Object member @p key, or @p fallback when missing. */
    double numberOr(const std::string &key, double fallback) const;
    std::string stringOr(const std::string &key,
                         const std::string &fallback) const;

    /** Object members in document order (empty on non-objects). */
    const std::vector<std::pair<std::string, JsonValue>> &members() const;

  private:
    friend class JsonParser;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::vector<std::pair<std::string, JsonValue>> object_;
};

} // namespace mapzero

#endif // MAPZERO_COMMON_JSON_HPP
