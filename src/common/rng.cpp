#include "common/rng.hpp"

#include <cassert>
#include <cmath>

#include "common/log.hpp"

namespace mapzero {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

std::uint64_t
Rng::deriveSeed(std::uint64_t root, std::uint64_t stream)
{
    // Mix the stream id through splitmix64 before combining with the
    // root so that consecutive stream ids land far apart, then mix the
    // combination once more. stream 0 does NOT map back to root: the
    // derived family is disjoint from the root seed itself.
    std::uint64_t s = stream;
    const std::uint64_t mixed_stream = splitmix64(s);
    std::uint64_t x = root ^ mixed_stream;
    return splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::uniformInt(std::uint64_t bound)
{
    assert(bound > 0);
    // Lemire-style rejection-free-enough bounded draw: for our experiment
    // sizes the modulo bias of a 64-bit draw is negligible, but we still use
    // multiply-shift which is unbiased for bounds far below 2^64.
    __uint128_t m = static_cast<__uint128_t>(next()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    assert(lo <= hi);
    return lo + static_cast<std::int64_t>(
        uniformInt(static_cast<std::uint64_t>(hi - lo) + 1));
}

double
Rng::uniformReal()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniformReal(double lo, double hi)
{
    return lo + (hi - lo) * uniformReal();
}

double
Rng::normal()
{
    if (hasSpareNormal_) {
        hasSpareNormal_ = false;
        return spareNormal_;
    }
    double u1 = 0.0;
    do {
        u1 = uniformReal();
    } while (u1 <= 1e-300);
    const double u2 = uniformReal();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    spareNormal_ = r * std::sin(theta);
    hasSpareNormal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::bernoulli(double p)
{
    return uniformReal() < p;
}

double
Rng::gamma(double alpha)
{
    assert(alpha > 0.0);
    if (alpha < 1.0) {
        // Boost: if X ~ Gamma(alpha + 1) and U ~ Uniform(0, 1) then
        // X * U^(1/alpha) ~ Gamma(alpha).
        const double u = std::max(uniformReal(), 1e-300);
        return gamma(alpha + 1.0) * std::pow(u, 1.0 / alpha);
    }
    // Marsaglia & Tsang (2000): squeeze over v = (1 + c x)^3.
    const double d = alpha - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    while (true) {
        double x = 0.0;
        double v = 0.0;
        do {
            x = normal();
            v = 1.0 + c * x;
        } while (v <= 0.0);
        v = v * v * v;
        const double u = std::max(uniformReal(), 1e-300);
        if (u < 1.0 - 0.0331 * x * x * x * x)
            return d * v;
        if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
            return d * v;
    }
}

RngState
Rng::state() const
{
    RngState state;
    for (int i = 0; i < 4; ++i)
        state.s[i] = s_[i];
    state.hasSpareNormal = hasSpareNormal_;
    state.spareNormal = spareNormal_;
    return state;
}

void
Rng::setState(const RngState &state)
{
    for (int i = 0; i < 4; ++i)
        s_[i] = state.s[i];
    hasSpareNormal_ = state.hasSpareNormal;
    spareNormal_ = state.spareNormal;
}

std::size_t
Rng::weightedIndex(const std::vector<double> &weights)
{
    if (weights.empty())
        panic("weightedIndex over an empty weight vector");
    double total = 0.0;
    for (double w : weights)
        total += w;
    if (!(total > 0.0) || !std::isfinite(total)) {
        // Degenerate weights (all zero, underflowed, or NaN): a uniform
        // draw keeps sampling alive instead of silently starving every
        // entry but the last.
        return static_cast<std::size_t>(uniformInt(weights.size()));
    }
    double r = uniformReal() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        r -= weights[i];
        if (r <= 0.0)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xD1B54A32D192ED03ULL);
}

} // namespace mapzero
