/**
 * @file
 * Minimal leveled logging for the MapZero library.
 *
 * Follows the gem5 split between user-facing diagnostics (inform/warn/fatal)
 * and internal invariant violations (panic). Logging is stateless apart from
 * a global threshold so library code can emit progress without binding to a
 * particular front end.
 */

#ifndef MAPZERO_COMMON_LOG_HPP
#define MAPZERO_COMMON_LOG_HPP

#include <sstream>
#include <string>

namespace mapzero {

/** Severity of a log record, ordered from chattiest to most severe. */
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/**
 * Set the global threshold; records below it are dropped.
 *
 * The MAPZERO_LOG_LEVEL environment variable
 * (debug|info|warn|error|off) is applied once at the first logging
 * call, so consumers and CI can change verbosity without code changes;
 * an explicit setLogLevel() afterwards overrides it.
 */
void setLogLevel(LogLevel level);

/** Current global threshold. */
LogLevel logLevel();

/** Emit a record at @p level (no-op when below threshold). */
void logMessage(LogLevel level, const std::string &message);

/** Informative progress message for the user. */
void inform(const std::string &message);

/** Something is off but the run can continue. */
void warn(const std::string &message);

/**
 * Unrecoverable user-level error (bad configuration, impossible request).
 * Throws std::runtime_error so callers/tests can observe it.
 */
[[noreturn]] void fatal(const std::string &message);

/**
 * Internal invariant violation - a bug in this library.
 * Throws std::logic_error.
 */
[[noreturn]] void panic(const std::string &message);

/**
 * Install a hook invoked from fatal()/panic() just before they throw,
 * so crash-time state (e.g. the event journal) can be flushed while the
 * process is still coherent. The hook must be noexcept and reentrancy
 * safe: a fatal() raised *inside* the hook must not recurse. Passing
 * nullptr uninstalls. Returns the previously installed hook.
 */
using FatalHook = void (*)() noexcept;
FatalHook setFatalHook(FatalHook hook);

/** printf-free formatting helper: cat("x=", 3, " y=", 4.5). */
template <typename... Args>
std::string
cat(Args &&...args)
{
    std::ostringstream os;
    ((void)(os << ... << args));
    return os.str();
}

} // namespace mapzero

#endif // MAPZERO_COMMON_LOG_HPP
