#include "common/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace mapzero {

// --- Counter -----------------------------------------------------------

void
Counter::add(std::int64_t delta)
{
    if (enabled_ && !enabled_->load(std::memory_order_relaxed))
        return;
    value_.fetch_add(delta, std::memory_order_relaxed);
}

// --- Gauge -------------------------------------------------------------

void
Gauge::set(double value)
{
    if (enabled_ && !enabled_->load(std::memory_order_relaxed))
        return;
    bits_.store(std::bit_cast<std::uint64_t>(value),
                std::memory_order_relaxed);
}

double
Gauge::value() const
{
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

// --- Histogram ---------------------------------------------------------

std::size_t
Histogram::bucketOf(double sample)
{
    if (!(sample > 0.0))
        return 0; // underflow: zero, negative, NaN
    // Bucket i (i >= 1) covers (kFirstBucketBound * 2^(i-2),
    // kFirstBucketBound * 2^(i-1)].
    const double scaled = sample / kFirstBucketBound;
    if (scaled <= 1.0)
        return 1;
    const std::size_t index =
        2 + static_cast<std::size_t>(std::ceil(std::log2(scaled)) - 1.0);
    return std::min(index, kBucketCount - 1);
}

double
Histogram::bucketBound(std::size_t index)
{
    if (index == 0)
        return 0.0;
    return kFirstBucketBound * std::ldexp(1.0, static_cast<int>(index) - 1);
}

void
Histogram::record(double sample)
{
    if (enabled_ && !enabled_->load(std::memory_order_relaxed))
        return;
    buckets_[bucketOf(sample)].fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(statMutex_);
    const std::int64_t before =
        count_.fetch_add(1, std::memory_order_relaxed);
    if (before == 0) {
        min_ = max_ = sample;
    } else {
        min_ = std::min(min_, sample);
        max_ = std::max(max_, sample);
    }
    sum_ += sample;
}

double
Histogram::sum() const
{
    std::lock_guard<std::mutex> lock(statMutex_);
    return sum_;
}

double
Histogram::min() const
{
    std::lock_guard<std::mutex> lock(statMutex_);
    return min_;
}

double
Histogram::max() const
{
    std::lock_guard<std::mutex> lock(statMutex_);
    return max_;
}

double
Histogram::mean() const
{
    const std::int64_t n = count();
    return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

double
Histogram::percentile(double q) const
{
    const std::int64_t n = count();
    if (n <= 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const auto rank = static_cast<std::int64_t>(
        std::ceil(q * static_cast<double>(n)));
    std::int64_t seen = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
        const std::int64_t in_bucket =
            buckets_[i].load(std::memory_order_relaxed);
        if (in_bucket == 0)
            continue;
        seen += in_bucket;
        if (seen >= rank) {
            // Interpolate within the bucket; clamp to observed range so
            // coarse buckets never report beyond the real extremes.
            const double lo = i == 0 ? 0.0 : bucketBound(i - 1);
            const double hi = bucketBound(i);
            const double frac = in_bucket > 0
                ? static_cast<double>(rank - (seen - in_bucket)) /
                      static_cast<double>(in_bucket)
                : 1.0;
            const double value = lo + frac * (hi - lo);
            return std::clamp(value, min(), max());
        }
    }
    return max();
}

// --- MetricsRegistry ---------------------------------------------------

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry instance;
    return instance;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Counter &c = counters_[name];
    c.enabled_ = &enabled_;
    return c;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Gauge &g = gauges_[name];
    g.enabled_ = &enabled_;
    return g;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Histogram &h = histograms_[name];
    h.enabled_ = &enabled_;
    return h;
}

void
MetricsRegistry::setEnabled(bool enabled)
{
    enabled_.store(enabled, std::memory_order_relaxed);
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, c] : counters_)
        c.value_.store(0, std::memory_order_relaxed);
    for (auto &[name, g] : gauges_)
        g.bits_.store(0, std::memory_order_relaxed);
    for (auto &[name, h] : histograms_) {
        for (auto &bucket : h.buckets_)
            bucket.store(0, std::memory_order_relaxed);
        h.count_.store(0, std::memory_order_relaxed);
        std::lock_guard<std::mutex> stat_lock(h.statMutex_);
        h.sum_ = h.min_ = h.max_ = 0.0;
    }
}

namespace {

/** JSON number formatting: finite doubles only (NaN/inf become 0). */
std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "0";
    std::ostringstream os;
    os.precision(12);
    os << value;
    return os.str();
}

} // namespace

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 8);
    for (char c : text) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
                out += buffer;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
MetricsRegistry::snapshotJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream os;
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, c] : counters_) {
        os << (first ? "" : ",") << "\n    \"" << jsonEscape(name)
           << "\": " << c.value();
        first = false;
    }
    os << "\n  },\n  \"gauges\": {";
    first = true;
    for (const auto &[name, g] : gauges_) {
        os << (first ? "" : ",") << "\n    \"" << jsonEscape(name)
           << "\": " << jsonNumber(g.value());
        first = false;
    }
    os << "\n  },\n  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : histograms_) {
        os << (first ? "" : ",") << "\n    \"" << jsonEscape(name)
           << "\": {\"count\": " << h.count()
           << ", \"sum\": " << jsonNumber(h.sum())
           << ", \"min\": " << jsonNumber(h.min())
           << ", \"max\": " << jsonNumber(h.max())
           << ", \"mean\": " << jsonNumber(h.mean())
           << ", \"p50\": " << jsonNumber(h.percentile(0.50))
           << ", \"p95\": " << jsonNumber(h.percentile(0.95))
           << ", \"p99\": " << jsonNumber(h.percentile(0.99)) << "}";
        first = false;
    }
    os << "\n  }\n}\n";
    return os.str();
}

} // namespace mapzero
