#include "common/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace mapzero {

// --- Counter -----------------------------------------------------------

void
Counter::add(std::int64_t delta)
{
    if (enabled_ && !enabled_->load(std::memory_order_relaxed))
        return;
    value_.fetch_add(delta, std::memory_order_relaxed);
}

// --- Gauge -------------------------------------------------------------

void
Gauge::set(double value)
{
    if (enabled_ && !enabled_->load(std::memory_order_relaxed))
        return;
    bits_.store(std::bit_cast<std::uint64_t>(value),
                std::memory_order_relaxed);
}

double
Gauge::value() const
{
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

// --- Histogram ---------------------------------------------------------

std::size_t
Histogram::bucketOf(double sample)
{
    if (!(sample > 0.0))
        return 0; // underflow: zero, negative, NaN
    // Bucket i (i >= 1) covers (kFirstBucketBound * 2^(i-2),
    // kFirstBucketBound * 2^(i-1)].
    const double scaled = sample / kFirstBucketBound;
    if (scaled <= 1.0)
        return 1;
    const std::size_t index =
        2 + static_cast<std::size_t>(std::ceil(std::log2(scaled)) - 1.0);
    return std::min(index, kBucketCount - 1);
}

double
Histogram::bucketBound(std::size_t index)
{
    if (index == 0)
        return 0.0;
    return kFirstBucketBound * std::ldexp(1.0, static_cast<int>(index) - 1);
}

void
Histogram::record(double sample)
{
    if (enabled_ && !enabled_->load(std::memory_order_relaxed))
        return;
    buckets_[bucketOf(sample)].fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(statMutex_);
    const std::int64_t before =
        count_.fetch_add(1, std::memory_order_relaxed);
    if (before == 0) {
        min_ = max_ = sample;
    } else {
        min_ = std::min(min_, sample);
        max_ = std::max(max_, sample);
    }
    sum_ += sample;
}

double
Histogram::sum() const
{
    std::lock_guard<std::mutex> lock(statMutex_);
    return sum_;
}

double
Histogram::min() const
{
    std::lock_guard<std::mutex> lock(statMutex_);
    return min_;
}

double
Histogram::max() const
{
    std::lock_guard<std::mutex> lock(statMutex_);
    return max_;
}

double
Histogram::mean() const
{
    const std::int64_t n = count();
    return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

double
Histogram::percentile(double q) const
{
    const std::int64_t n = count();
    if (n <= 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const auto rank = static_cast<std::int64_t>(
        std::ceil(q * static_cast<double>(n)));
    std::int64_t seen = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
        const std::int64_t in_bucket =
            buckets_[i].load(std::memory_order_relaxed);
        if (in_bucket == 0)
            continue;
        seen += in_bucket;
        if (seen >= rank) {
            // Interpolate within the bucket; clamp to observed range so
            // coarse buckets never report beyond the real extremes.
            const double lo = i == 0 ? 0.0 : bucketBound(i - 1);
            const double hi = bucketBound(i);
            const double frac = in_bucket > 0
                ? static_cast<double>(rank - (seen - in_bucket)) /
                      static_cast<double>(in_bucket)
                : 1.0;
            const double value = lo + frac * (hi - lo);
            return std::clamp(value, min(), max());
        }
    }
    return max();
}

double
HistogramSnapshot::percentile(double q) const
{
    if (count <= 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const auto rank = static_cast<std::int64_t>(
        std::ceil(q * static_cast<double>(count)));
    std::int64_t seen = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        const std::int64_t in_bucket = buckets[i].count;
        if (in_bucket == 0)
            continue;
        seen += in_bucket;
        if (seen >= rank) {
            const double lo = i == 0 ? 0.0 : buckets[i - 1].upperBound;
            const double hi = buckets[i].upperBound;
            const double frac =
                static_cast<double>(rank - (seen - in_bucket)) /
                static_cast<double>(in_bucket);
            return std::clamp(lo + frac * (hi - lo), min, max);
        }
    }
    return max;
}

// --- MetricsRegistry ---------------------------------------------------

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry instance;
    return instance;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Counter &c = counters_[name];
    c.enabled_ = &enabled_;
    return c;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Gauge &g = gauges_[name];
    g.enabled_ = &enabled_;
    return g;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Histogram &h = histograms_[name];
    h.enabled_ = &enabled_;
    return h;
}

void
MetricsRegistry::setEnabled(bool enabled)
{
    enabled_.store(enabled, std::memory_order_relaxed);
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, c] : counters_)
        c.value_.store(0, std::memory_order_relaxed);
    for (auto &[name, g] : gauges_)
        g.bits_.store(0, std::memory_order_relaxed);
    for (auto &[name, h] : histograms_) {
        for (auto &bucket : h.buckets_)
            bucket.store(0, std::memory_order_relaxed);
        h.count_.store(0, std::memory_order_relaxed);
        std::lock_guard<std::mutex> stat_lock(h.statMutex_);
        h.sum_ = h.min_ = h.max_ = 0.0;
    }
}

std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "0";
    std::ostringstream os;
    os.precision(12);
    os << value;
    return os.str();
}

namespace {

void
appendEscaped(std::string &out, std::uint32_t cp)
{
    char buffer[16];
    if (cp < 0x10000) {
        std::snprintf(buffer, sizeof(buffer), "\\u%04x", cp);
    } else {
        // Outside the BMP: encode as a UTF-16 surrogate pair.
        cp -= 0x10000;
        std::snprintf(buffer, sizeof(buffer), "\\u%04x\\u%04x",
                      0xd800 + (cp >> 10), 0xdc00 + (cp & 0x3ff));
    }
    out += buffer;
}

/**
 * Decode one UTF-8 sequence starting at @p i; returns the codepoint and
 * advances @p i past it, or returns U+FFFD and advances one byte when
 * the sequence is malformed (truncated, overlong, surrogate, > U+10FFFF).
 */
std::uint32_t
decodeUtf8(const std::string &text, std::size_t &i)
{
    const auto byte = [&](std::size_t k) {
        return static_cast<std::uint32_t>(
            static_cast<unsigned char>(text[k]));
    };
    const std::uint32_t lead = byte(i);
    std::size_t len = 0;
    std::uint32_t cp = 0;
    if (lead < 0xc0) {
        ++i; // stray continuation byte (or 0x80..0xbf lead)
        return 0xfffd;
    } else if (lead < 0xe0) {
        len = 2;
        cp = lead & 0x1f;
    } else if (lead < 0xf0) {
        len = 3;
        cp = lead & 0x0f;
    } else if (lead < 0xf8) {
        len = 4;
        cp = lead & 0x07;
    } else {
        ++i;
        return 0xfffd;
    }
    if (i + len > text.size()) {
        ++i;
        return 0xfffd;
    }
    for (std::size_t k = 1; k < len; ++k) {
        const std::uint32_t cont = byte(i + k);
        if ((cont & 0xc0) != 0x80) {
            ++i;
            return 0xfffd;
        }
        cp = (cp << 6) | (cont & 0x3f);
    }
    static constexpr std::uint32_t kMinByLen[5] = {0, 0, 0x80, 0x800,
                                                   0x10000};
    if (cp < kMinByLen[len] || cp > 0x10ffff ||
        (cp >= 0xd800 && cp <= 0xdfff)) {
        ++i; // overlong / out of range / surrogate
        return 0xfffd;
    }
    i += len;
    return cp;
}

} // namespace

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 8);
    std::size_t i = 0;
    while (i < text.size()) {
        const char c = text[i];
        switch (c) {
          case '"':  out += "\\\""; ++i; continue;
          case '\\': out += "\\\\"; ++i; continue;
          case '\b': out += "\\b"; ++i; continue;
          case '\f': out += "\\f"; ++i; continue;
          case '\n': out += "\\n"; ++i; continue;
          case '\r': out += "\\r"; ++i; continue;
          case '\t': out += "\\t"; ++i; continue;
          default: break;
        }
        const auto u = static_cast<unsigned char>(c);
        if (u < 0x20) {
            appendEscaped(out, u);
            ++i;
        } else if (u < 0x80) {
            out += c;
            ++i;
        } else {
            appendEscaped(out, decodeUtf8(text, i));
        }
    }
    return out;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lock(mutex_);
    snap.counters.reserve(counters_.size());
    for (const auto &[name, c] : counters_)
        snap.counters.emplace_back(name, c.value());
    snap.gauges.reserve(gauges_.size());
    for (const auto &[name, g] : gauges_)
        snap.gauges.emplace_back(name, g.value());
    snap.histograms.reserve(histograms_.size());
    for (const auto &[name, h] : histograms_) {
        HistogramSnapshot hs;
        hs.count = h.count();
        hs.sum = h.sum();
        hs.min = h.min();
        hs.max = h.max();
        hs.buckets.resize(Histogram::kBucketCount);
        for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
            hs.buckets[i].upperBound = Histogram::bucketBound(i);
            hs.buckets[i].count =
                h.buckets_[i].load(std::memory_order_relaxed);
        }
        snap.histograms.emplace_back(name, std::move(hs));
    }
    return snap;
}

std::string
MetricsRegistry::snapshotJson() const
{
    const MetricsSnapshot snap = snapshot();
    std::ostringstream os;
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, value] : snap.counters) {
        os << (first ? "" : ",") << "\n    \"" << jsonEscape(name)
           << "\": " << value;
        first = false;
    }
    os << "\n  },\n  \"gauges\": {";
    first = true;
    for (const auto &[name, value] : snap.gauges) {
        os << (first ? "" : ",") << "\n    \"" << jsonEscape(name)
           << "\": " << jsonNumber(value);
        first = false;
    }
    os << "\n  },\n  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : snap.histograms) {
        os << (first ? "" : ",") << "\n    \"" << jsonEscape(name)
           << "\": {\"count\": " << h.count
           << ", \"sum\": " << jsonNumber(h.sum)
           << ", \"min\": " << jsonNumber(h.min)
           << ", \"max\": " << jsonNumber(h.max)
           << ", \"mean\": " << jsonNumber(h.mean())
           << ", \"p50\": " << jsonNumber(h.percentile(0.50))
           << ", \"p90\": " << jsonNumber(h.percentile(0.90))
           << ", \"p95\": " << jsonNumber(h.percentile(0.95))
           << ", \"p99\": " << jsonNumber(h.percentile(0.99)) << "}";
        first = false;
    }
    os << "\n  }\n}\n";
    return os.str();
}

} // namespace mapzero
