/**
 * @file
 * Portable process-resource sampling feeding the "proc.*" gauges.
 *
 * The telemetry plane (src/svc/telemetry_server.hpp) exposes live
 * internals of long compiles and training runs; the numbers an operator
 * reaches for first are not MapZero's own counters but the process
 * vitals - is it leaking memory, is it actually using its cores, is it
 * running out of file descriptors. sampleProcStat() reads those from
 * /proc/self (Linux) with a getrusage() fallback everywhere POSIX, so
 * the same call sites work in containers, CI, and on macOS (where the
 * /proc-only fields simply come back absent).
 *
 * Cost model: one sample is a handful of small /proc reads plus one
 * getrusage syscall - microseconds, cheap enough for the time-series
 * recorder to take every few hundred milliseconds.
 */

#ifndef MAPZERO_COMMON_PROCSTAT_HPP
#define MAPZERO_COMMON_PROCSTAT_HPP

#include <cstdint>

namespace mapzero {

/** One point-in-time reading of the process's resource usage. */
struct ProcStat {
    /** Resident set size in bytes (0 when unavailable). */
    std::int64_t rssBytes = 0;
    /** Peak resident set size in bytes (high-water mark). */
    std::int64_t peakRssBytes = 0;
    /** User-mode CPU time consumed so far, seconds. */
    double cpuUserSeconds = 0.0;
    /** Kernel-mode CPU time consumed so far, seconds. */
    double cpuSysSeconds = 0.0;
    /** Live threads in the process (-1 when unavailable). */
    std::int64_t threads = -1;
    /** Open file descriptors (-1 when unavailable). */
    std::int64_t openFds = -1;
    /** True when the /proc filesystem supplied the memory fields. */
    bool fromProc = false;

    double
    cpuSeconds() const
    {
        return cpuUserSeconds + cpuSysSeconds;
    }
};

/** Where sampleProcStat() is allowed to read from. */
enum class ProcStatSource {
    /**
     * /proc/self first, getrusage() fallback - the production path.
     * Setting the MAPZERO_PROCSTAT_FORCE_FALLBACK environment variable
     * (any non-empty value) demotes Auto to RusageOnly, so the
     * fallback path is testable on hosts that *do* have /proc.
     */
    Auto,
    /** Skip /proc entirely; getrusage() only (the macOS/container
     *  behaviour, exposed for tests). */
    RusageOnly,
};

/**
 * Sample the calling process: /proc/self/{status,fd} where available,
 * getrusage(RUSAGE_SELF) for CPU time and the peak-RSS fallback.
 * Never throws; unavailable fields keep their defaults.
 */
ProcStat sampleProcStat(ProcStatSource source = ProcStatSource::Auto);

/**
 * Sample and publish to the global metrics registry as gauges:
 * proc.rss_bytes, proc.peak_rss_bytes, proc.cpu_user_seconds,
 * proc.cpu_sys_seconds, proc.cpu_seconds, proc.threads, proc.open_fds
 * (the -1 "unavailable" markers are published as-is). Returns the
 * sample so callers can reuse it.
 */
ProcStat publishProcMetrics();

} // namespace mapzero

#endif // MAPZERO_COMMON_PROCSTAT_HPP
