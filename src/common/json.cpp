#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/log.hpp"

namespace mapzero {

namespace {

/** Append @p cp to @p out as UTF-8. */
void
appendUtf8(std::string &out, std::uint32_t cp)
{
    if (cp < 0x80) {
        out += static_cast<char>(cp);
    } else if (cp < 0x800) {
        out += static_cast<char>(0xc0 | (cp >> 6));
        out += static_cast<char>(0x80 | (cp & 0x3f));
    } else if (cp < 0x10000) {
        out += static_cast<char>(0xe0 | (cp >> 12));
        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
        out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
        out += static_cast<char>(0xf0 | (cp >> 18));
        out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
        out += static_cast<char>(0x80 | (cp & 0x3f));
    }
}

} // namespace

/** Recursive-descent parser over one document. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue
    document()
    {
        JsonValue value = parseValue(0);
        skipWhitespace();
        if (pos_ != text_.size())
            fail("trailing garbage after document");
        return value;
    }

  private:
    /** Nesting cap: our documents are shallow; a deeply nested input is
     *  corrupt and must not overflow the parser's stack. */
    static constexpr int kMaxDepth = 128;

    [[noreturn]] void
    fail(const std::string &what) const
    {
        fatal(cat("JSON parse error at byte ", pos_, ": ", what));
    }

    void
    skipWhitespace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(cat("expected '", c, "'"));
        ++pos_;
    }

    bool
    consumeLiteral(const char *literal)
    {
        const std::size_t n = std::char_traits<char>::length(literal);
        if (text_.compare(pos_, n, literal) != 0)
            return false;
        pos_ += n;
        return true;
    }

    JsonValue
    parseValue(int depth)
    {
        if (depth > kMaxDepth)
            fail("nesting too deep");
        skipWhitespace();
        switch (peek()) {
          case '{': return parseObject(depth);
          case '[': return parseArray(depth);
          case '"': return parseString();
          case 't':
          case 'f': return parseBool();
          case 'n': return parseNull();
          default:  return parseNumber();
        }
    }

    JsonValue
    parseNull()
    {
        if (!consumeLiteral("null"))
            fail("invalid literal");
        return JsonValue();
    }

    JsonValue
    parseBool()
    {
        JsonValue value;
        value.kind_ = JsonValue::Kind::Bool;
        if (consumeLiteral("true"))
            value.bool_ = true;
        else if (consumeLiteral("false"))
            value.bool_ = false;
        else
            fail("invalid literal");
        return value;
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++pos_;
        if (peek() == '.') {
            ++pos_;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (pos_ == start)
            fail("expected a value");
        const std::string token = text_.substr(start, pos_ - start);
        char *end = nullptr;
        const double parsed = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0')
            fail("malformed number '" + token + "'");
        JsonValue value;
        value.kind_ = JsonValue::Kind::Number;
        value.number_ = parsed;
        return value;
    }

    std::uint32_t
    parseHex4()
    {
        std::uint32_t cp = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = peek();
            cp <<= 4;
            if (c >= '0' && c <= '9')
                cp |= static_cast<std::uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                cp |= static_cast<std::uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                cp |= static_cast<std::uint32_t>(c - 'A' + 10);
            else
                fail("bad \\u escape");
            ++pos_;
        }
        return cp;
    }

    JsonValue
    parseString()
    {
        expect('"');
        JsonValue value;
        value.kind_ = JsonValue::Kind::String;
        std::string &out = value.string_;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return value;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out += c;
                ++pos_;
                continue;
            }
            ++pos_; // backslash
            const char esc = peek();
            ++pos_;
            switch (esc) {
              case '"':  out += '"'; break;
              case '\\': out += '\\'; break;
              case '/':  out += '/'; break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'u': {
                std::uint32_t cp = parseHex4();
                if (cp >= 0xd800 && cp <= 0xdbff) {
                    // Surrogate pair.
                    if (!consumeLiteral("\\u"))
                        fail("unpaired surrogate");
                    const std::uint32_t low = parseHex4();
                    if (low < 0xdc00 || low > 0xdfff)
                        fail("invalid low surrogate");
                    cp = 0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
                } else if (cp >= 0xdc00 && cp <= 0xdfff) {
                    fail("unpaired surrogate");
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                fail("bad escape");
            }
        }
    }

    JsonValue
    parseArray(int depth)
    {
        expect('[');
        JsonValue value;
        value.kind_ = JsonValue::Kind::Array;
        skipWhitespace();
        if (peek() == ']') {
            ++pos_;
            return value;
        }
        while (true) {
            value.array_.push_back(parseValue(depth + 1));
            skipWhitespace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return value;
        }
    }

    JsonValue
    parseObject(int depth)
    {
        expect('{');
        JsonValue value;
        value.kind_ = JsonValue::Kind::Object;
        skipWhitespace();
        if (peek() == '}') {
            ++pos_;
            return value;
        }
        while (true) {
            skipWhitespace();
            JsonValue key = parseString();
            skipWhitespace();
            expect(':');
            value.object_.emplace_back(std::move(key.string_),
                                       parseValue(depth + 1));
            skipWhitespace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return value;
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

JsonValue
JsonValue::parse(const std::string &text)
{
    return JsonParser(text).document();
}

std::vector<JsonValue>
JsonValue::parseLines(const std::string &text)
{
    std::vector<JsonValue> values;
    std::size_t begin = 0;
    while (begin <= text.size()) {
        std::size_t end = text.find('\n', begin);
        if (end == std::string::npos)
            end = text.size();
        std::string line = text.substr(begin, end - begin);
        bool blank = true;
        for (const char c : line)
            blank = blank && std::isspace(static_cast<unsigned char>(c));
        if (!blank)
            values.push_back(parse(line));
        if (end == text.size())
            break;
        begin = end + 1;
    }
    return values;
}

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool)
        fatal("JSON: not a bool");
    return bool_;
}

double
JsonValue::asNumber() const
{
    if (kind_ != Kind::Number)
        fatal("JSON: not a number");
    return number_;
}

std::int64_t
JsonValue::asInt() const
{
    return static_cast<std::int64_t>(std::llround(asNumber()));
}

const std::string &
JsonValue::asString() const
{
    if (kind_ != Kind::String)
        fatal("JSON: not a string");
    return string_;
}

std::size_t
JsonValue::size() const
{
    if (kind_ == Kind::Array)
        return array_.size();
    if (kind_ == Kind::Object)
        return object_.size();
    fatal("JSON: size() on a scalar");
}

const JsonValue &
JsonValue::at(std::size_t index) const
{
    if (kind_ != Kind::Array)
        fatal("JSON: not an array");
    if (index >= array_.size())
        fatal(cat("JSON: array index ", index, " out of range (size ",
                  array_.size(), ")"));
    return array_[index];
}

bool
JsonValue::has(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return false;
    for (const auto &[name, value] : object_) {
        if (name == key)
            return true;
    }
    return false;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    if (kind_ != Kind::Object)
        fatal("JSON: not an object");
    for (const auto &[name, value] : object_) {
        if (name == key)
            return value;
    }
    fatal("JSON: missing member '" + key + "'");
}

double
JsonValue::numberOr(const std::string &key, double fallback) const
{
    return has(key) && at(key).isNumber() ? at(key).asNumber() : fallback;
}

std::string
JsonValue::stringOr(const std::string &key,
                    const std::string &fallback) const
{
    return has(key) && at(key).isString() ? at(key).asString() : fallback;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    static const std::vector<std::pair<std::string, JsonValue>> empty;
    return kind_ == Kind::Object ? object_ : empty;
}

} // namespace mapzero
