#include "common/procstat.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <dirent.h>
#include <sys/resource.h>
#include <unistd.h>

#include "common/metrics.hpp"

namespace mapzero {

namespace {

/**
 * Parse one "Key:   12345 kB" line from /proc/self/status into bytes;
 * returns -1 when the line is not the requested key.
 */
std::int64_t
statusLineKb(const char *line, const char *key)
{
    const std::size_t key_len = std::strlen(key);
    if (std::strncmp(line, key, key_len) != 0 || line[key_len] != ':')
        return -1;
    long long kb = 0;
    if (std::sscanf(line + key_len + 1, " %lld", &kb) != 1)
        return -1;
    return static_cast<std::int64_t>(kb) * 1024;
}

/** Fill the /proc-sourced fields; returns false when /proc is absent. */
bool
sampleFromProc(ProcStat &stat)
{
    std::FILE *status = std::fopen("/proc/self/status", "r");
    if (status == nullptr)
        return false;
    char line[256];
    bool saw_rss = false;
    while (std::fgets(line, sizeof(line), status) != nullptr) {
        if (std::int64_t bytes = statusLineKb(line, "VmRSS");
            bytes >= 0) {
            stat.rssBytes = bytes;
            saw_rss = true;
        } else if (std::int64_t peak = statusLineKb(line, "VmHWM");
                   peak >= 0) {
            stat.peakRssBytes = peak;
        } else if (std::strncmp(line, "Threads:", 8) == 0) {
            long long threads = 0;
            if (std::sscanf(line + 8, " %lld", &threads) == 1)
                stat.threads = static_cast<std::int64_t>(threads);
        }
    }
    std::fclose(status);

    if (DIR *fds = opendir("/proc/self/fd"); fds != nullptr) {
        std::int64_t open_fds = 0;
        while (const dirent *entry = readdir(fds)) {
            if (entry->d_name[0] != '.')
                ++open_fds;
        }
        closedir(fds);
        // Exclude the directory stream's own descriptor.
        stat.openFds = open_fds > 0 ? open_fds - 1 : 0;
    }
    return saw_rss;
}

} // namespace

ProcStat
sampleProcStat(ProcStatSource source)
{
    // Checked per call, not cached: tests flip the variable at runtime.
    if (source == ProcStatSource::Auto) {
        const char *force =
            std::getenv("MAPZERO_PROCSTAT_FORCE_FALLBACK");
        if (force != nullptr && force[0] != '\0')
            source = ProcStatSource::RusageOnly;
    }
    ProcStat stat;
    stat.fromProc =
        source == ProcStatSource::Auto && sampleFromProc(stat);

    rusage usage = {};
    if (getrusage(RUSAGE_SELF, &usage) == 0) {
        stat.cpuUserSeconds =
            static_cast<double>(usage.ru_utime.tv_sec) +
            static_cast<double>(usage.ru_utime.tv_usec) * 1e-6;
        stat.cpuSysSeconds =
            static_cast<double>(usage.ru_stime.tv_sec) +
            static_cast<double>(usage.ru_stime.tv_usec) * 1e-6;
        // ru_maxrss is in kilobytes on Linux (bytes on macOS, where
        // /proc already failed us; the order-of-magnitude fallback is
        // still better than 0).
        const std::int64_t max_rss =
            static_cast<std::int64_t>(usage.ru_maxrss) * 1024;
        if (!stat.fromProc) {
            stat.peakRssBytes = max_rss;
            stat.rssBytes = max_rss;
        }
    }
    return stat;
}

ProcStat
publishProcMetrics()
{
    static Gauge &rss = metrics().gauge("proc.rss_bytes");
    static Gauge &peak_rss = metrics().gauge("proc.peak_rss_bytes");
    static Gauge &cpu_user = metrics().gauge("proc.cpu_user_seconds");
    static Gauge &cpu_sys = metrics().gauge("proc.cpu_sys_seconds");
    static Gauge &cpu_total = metrics().gauge("proc.cpu_seconds");
    static Gauge &threads = metrics().gauge("proc.threads");
    static Gauge &open_fds = metrics().gauge("proc.open_fds");

    const ProcStat stat = sampleProcStat();
    rss.set(static_cast<double>(stat.rssBytes));
    peak_rss.set(static_cast<double>(stat.peakRssBytes));
    cpu_user.set(stat.cpuUserSeconds);
    cpu_sys.set(stat.cpuSysSeconds);
    cpu_total.set(stat.cpuSeconds());
    threads.set(static_cast<double>(stat.threads));
    open_fds.set(static_cast<double>(stat.openFds));
    return stat;
}

} // namespace mapzero
