#include "common/parallel.hpp"

#include <atomic>
#include <cstdlib>

#include "common/log.hpp"
#include "common/metrics.hpp"

namespace mapzero {

namespace {

std::atomic<std::size_t> g_default_jobs{0};
std::atomic<bool> g_default_jobs_set{false};

std::size_t
hardwareJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

/** Identity of the pool worker running the current thread. */
thread_local const ThreadPool *t_worker_pool = nullptr;
thread_local int t_worker_index = -1;

} // namespace

void
setDefaultJobs(std::size_t jobs)
{
    g_default_jobs.store(jobs, std::memory_order_relaxed);
    g_default_jobs_set.store(true, std::memory_order_relaxed);
}

std::size_t
defaultJobs()
{
    return g_default_jobs_set.load(std::memory_order_relaxed)
        ? g_default_jobs.load(std::memory_order_relaxed)
        : 0;
}

void
clearDefaultJobs()
{
    g_default_jobs.store(0, std::memory_order_relaxed);
    g_default_jobs_set.store(false, std::memory_order_relaxed);
}

std::size_t
resolveJobs(std::size_t requested)
{
    if (requested > 0)
        return requested;
    if (g_default_jobs_set.load(std::memory_order_relaxed)) {
        const std::size_t jobs =
            g_default_jobs.load(std::memory_order_relaxed);
        return jobs > 0 ? jobs : hardwareJobs();
    }
    if (const char *env = std::getenv("MAPZERO_NUM_THREADS");
        env != nullptr && *env != '\0') {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed < 0)
            warn(cat("ignoring negative MAPZERO_NUM_THREADS=", env));
        else
            return parsed == 0 ? hardwareJobs()
                               : static_cast<std::size_t>(parsed);
    }
    return 1;
}

ThreadPool::ThreadPool(std::size_t threads)
{
    const std::size_t count = resolveJobs(threads);
    static Gauge &pool_size = metrics().gauge("parallel.pool_size");
    pool_size.set(static_cast<double>(count));
    workers_.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    ready_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

int
ThreadPool::currentWorker() const
{
    return t_worker_pool == this ? t_worker_index : -1;
}

void
ThreadPool::enqueue(std::function<void()> fn)
{
    static Counter &tasks = metrics().counter("parallel.tasks");
    static Gauge &queue_depth =
        metrics().gauge("threadpool.queue_depth");
    tasks.add();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stop_)
            panic("ThreadPool: submit after shutdown began");
        queue_.push_back(Task{std::move(fn), Timer()});
        queue_depth.set(static_cast<double>(queue_.size()));
    }
    ready_.notify_one();
}

void
ThreadPool::workerLoop(std::size_t index)
{
    static Histogram &queue_wait =
        metrics().histogram("parallel.queue_wait_seconds");
    static Histogram &task_run =
        metrics().histogram("parallel.task_run_seconds");
    static Gauge &queue_depth =
        metrics().gauge("threadpool.queue_depth");
    static Gauge &active_workers =
        metrics().gauge("threadpool.active_workers");

    t_worker_pool = this;
    t_worker_index = static_cast<int>(index);

    while (true) {
        Task task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
            queue_depth.set(static_cast<double>(queue_.size()));
        }
        queue_wait.record(task.queued.seconds());
        active_workers.set(static_cast<double>(
            active_.fetch_add(1, std::memory_order_relaxed) + 1));
        const Timer run_timer;
        // packaged_task routes any exception into the future.
        task.run();
        task_run.record(run_timer.seconds());
        active_workers.set(static_cast<double>(
            active_.fetch_sub(1, std::memory_order_relaxed) - 1));
    }
}

void
parallelFor(ThreadPool &pool, std::size_t count,
            const std::function<void(std::size_t)> &body)
{
    if (count == 0)
        return;
    if (count == 1 || pool.size() <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }
    std::vector<std::future<void>> futures;
    futures.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        futures.push_back(pool.submit([&body, i] { body(i); }));
    std::exception_ptr first_error;
    for (auto &future : futures) {
        try {
            future.get();
        } catch (...) {
            if (!first_error)
                first_error = std::current_exception();
        }
    }
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace mapzero
